// Micro-benchmarks of the DIFT engine primitives (google-benchmark):
//   * Taint<T> arithmetic vs plain integers (the per-instruction tax),
//   * dense precomputed LUB table vs an on-the-fly lattice walk (the
//     design-choice ablation from DESIGN.md),
//   * byte (de)serialisation used on the TLM path,
//   * lattice construction/validation cost by class count,
//   * shadow-summary queries and maintenance (the block fast path),
//   * end-to-end ISS instruction rate, plain vs tainted core.
//
// Run with --benchmark_format=json (or --benchmark_out=FILE
// --benchmark_out_format=json) for a machine-readable report; the ISS
// benchmarks attach the engine counters (lub/s, summary hits/s) as
// user counters so they appear in that JSON.
#include <benchmark/benchmark.h>

#include <vector>

#include "dift/context.hpp"
#include "dift/lattice.hpp"
#include "dift/shadow.hpp"
#include "dift/taint.hpp"
#include "fw/benchmarks.hpp"
#include "sa/analyze.hpp"
#include "vp/scenarios.hpp"
#include "vp/vp.hpp"

using namespace vpdift;
using dift::DiftContext;
using dift::Lattice;
using dift::Tag;
using dift::Taint;

namespace {

void BM_PlainAdd(benchmark::State& state) {
  std::uint32_t a = 123456, b = 789;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a = a + b);
    benchmark::DoNotOptimize(b = b ^ a);
  }
}
BENCHMARK(BM_PlainAdd);

void BM_TaintAddSameTag(benchmark::State& state) {
  const Lattice l = Lattice::ifp3();
  DiftContext ctx(l);
  Taint<std::uint32_t> a(123456, 2), b(789, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a = a + b);
    benchmark::DoNotOptimize(b = b ^ a);
  }
}
BENCHMARK(BM_TaintAddSameTag);

void BM_TaintAddMixedTags(benchmark::State& state) {
  const Lattice l = Lattice::ifp3();
  DiftContext ctx(l);
  Taint<std::uint32_t> a(123456, 1), b(789, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
    benchmark::DoNotOptimize(a ^ b);
  }
}
BENCHMARK(BM_TaintAddMixedTags);

// Ablation: dense table lookup vs recomputing the LUB by walking the lattice.
Tag slow_lub(const Lattice& l, Tag a, Tag b) {
  Tag best = 0;
  bool found = false;
  for (Tag c = 0; c < l.size(); ++c) {
    if (!l.allowed_flow(a, c) || !l.allowed_flow(b, c)) continue;
    if (!found || l.allowed_flow(c, best)) {
      best = c;
      found = true;
    }
  }
  return best;
}

void BM_LubDenseTable(benchmark::State& state) {
  const Lattice l = Lattice::with_per_byte_secret(
      Lattice::ifp3(), Lattice::ifp3().tag_of("(HC,HI)"), 16, "PIN");
  DiftContext ctx(l);
  Tag a = 0;
  for (auto _ : state) {
    a = static_cast<Tag>((a + 1) % l.size());
    benchmark::DoNotOptimize(dift::lub(a, 3));
  }
}
BENCHMARK(BM_LubDenseTable);

void BM_LubLatticeWalk(benchmark::State& state) {
  const Lattice l = Lattice::with_per_byte_secret(
      Lattice::ifp3(), Lattice::ifp3().tag_of("(HC,HI)"), 16, "PIN");
  Tag a = 0;
  for (auto _ : state) {
    a = static_cast<Tag>((a + 1) % l.size());
    benchmark::DoNotOptimize(slow_lub(l, a, 3));
  }
}
BENCHMARK(BM_LubLatticeWalk);

void BM_TaintToFromBytes(benchmark::State& state) {
  const Lattice l = Lattice::ifp1();
  DiftContext ctx(l);
  Taint<std::uint32_t> v(0xdeadbeef, 1);
  dift::TaintedByte bytes[4];
  for (auto _ : state) {
    v.to_bytes(bytes);
    Taint<std::uint32_t> back;
    back.from_bytes(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_TaintToFromBytes);

void BM_LatticeBuild(benchmark::State& state) {
  const auto levels = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(Lattice::linear(levels));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LatticeBuild)->Arg(4)->Arg(16)->Arg(64)->Arg(128)->Complexity();

// Shadow-summary primitives: a uniform-block query vs the per-byte LUB loop
// it replaces, and the maintenance cost of a store that splits a block.
void BM_ShadowUniformQuery(benchmark::State& state) {
  std::vector<Tag> plane(1 << 16, Tag(2));
  dift::ShadowSummary shadow;
  shadow.attach(plane.data(), plane.size());
  std::uint64_t off = 0;
  for (auto _ : state) {
    off = (off + 64) & 0xffff;
    Tag t = 0;
    benchmark::DoNotOptimize(shadow.uniform(off, 4, &t));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ShadowUniformQuery);

void BM_ShadowPerByteLub(benchmark::State& state) {
  const Lattice l = Lattice::ifp3();
  DiftContext ctx(l);
  std::vector<Tag> plane(1 << 16, Tag(2));
  std::uint64_t off = 0;
  for (auto _ : state) {
    off = (off + 64) & 0xffff;
    Tag t = plane[off];
    for (int i = 1; i < 4; ++i) t = dift::lub(t, plane[off + i]);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ShadowPerByteLub);

void BM_ShadowStoreSplit(benchmark::State& state) {
  std::vector<Tag> plane(1 << 16, Tag(0));
  dift::ShadowSummary shadow;
  shadow.attach(plane.data(), plane.size());
  std::uint64_t off = 0;
  for (auto _ : state) {
    off = (off + 64) & 0xffff;
    plane[off] = Tag(1);
    shadow.on_store(off, 1, Tag(1));  // block goes mixed
    plane[off] = Tag(0);
    shadow.on_store(off, 1, Tag(0));  // stays mixed until rescanned
    shadow.rescan_block(off >> dift::ShadowSummary::kBlockShift);
  }
}
BENCHMARK(BM_ShadowStoreSplit);

// End-to-end ISS rate: instructions per second on the primes kernel.
template <typename VpT>
void run_iss(benchmark::State& state, bool dift) {
  std::uint64_t instret = 0;
  dift::DiftStats stats;
  for (auto _ : state) {
    VpT v;
    v.load(fw::make_primes(4000));
    auto bundle = vp::scenarios::make_permissive_policy();
    if (dift) v.apply_policy(bundle.policy);
    const auto r = v.run(sysc::Time::sec(60));
    if (!r.exited() || r.exit_code != 0) state.SkipWithError("self-check failed");
    instret += r.instret;
    stats += r.stats;
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instret), benchmark::Counter::kIsRate);
  state.counters["lub/s"] = benchmark::Counter(
      static_cast<double>(stats.lub_calls), benchmark::Counter::kIsRate);
  state.counters["summary_hits/s"] = benchmark::Counter(
      static_cast<double>(stats.summary_hits()), benchmark::Counter::kIsRate);
  state.counters["decode_hit_pct"] =
      stats.decode_hits + stats.decode_misses
          ? 100.0 * static_cast<double>(stats.decode_hits) /
                static_cast<double>(stats.decode_hits + stats.decode_misses)
          : 0.0;
  const double block_lookups =
      static_cast<double>(stats.block_hits + stats.block_misses +
                          stats.block_invalidations + stats.chained_transfers);
  state.counters["block_hit_pct"] =
      block_lookups > 0
          ? 100.0 *
                static_cast<double>(stats.block_hits + stats.chained_transfers) /
                block_lookups
          : 0.0;
  state.counters["chained_pct"] =
      block_lookups > 0
          ? 100.0 * static_cast<double>(stats.chained_transfers) / block_lookups
          : 0.0;
  state.counters["block_invalidations"] =
      static_cast<double>(stats.block_invalidations);
  // Variant dispatch mix: what fraction of VP+ block dispatches ran the
  // plain-word (zero tag work) variant, and how often the gate had to
  // promote mid-block. Plain-VP runs report 0 for all three (the plain core
  // has no variants to pick between).
  const double variant_dispatches = static_cast<double>(
      stats.plain_variant_hits + stats.tainted_variant_hits);
  state.counters["plain_variant_pct"] =
      variant_dispatches > 0
          ? 100.0 * static_cast<double>(stats.plain_variant_hits) /
                variant_dispatches
          : 0.0;
  state.counters["variant_promotions"] =
      static_cast<double>(stats.variant_promotions);
  state.counters["superblock_hits"] =
      static_cast<double>(stats.superblock_hits);
  state.counters["superblock_transfers"] =
      static_cast<double>(stats.superblock_transfers);
}

void BM_IssPlainVp(benchmark::State& state) { run_iss<vp::Vp>(state, false); }
BENCHMARK(BM_IssPlainVp)->Unit(benchmark::kMillisecond);

void BM_IssDiftVp(benchmark::State& state) { run_iss<vp::VpDift>(state, true); }
BENCHMARK(BM_IssDiftVp)->Unit(benchmark::kMillisecond);

// The same DIFT run with the static analyzer's ahead-of-time pin set
// installed: pinned blocks skip plain_state() re-proofs and register
// rescans from their first dispatch. Compare against BM_IssDiftVp; the
// sa_* counters report how much of the dispatch stream the pins covered.
void BM_IssDiftVpPinned(benchmark::State& state) {
  const rvasm::Program prog = fw::make_primes(4000);
  auto bundle = vp::scenarios::make_permissive_policy();
  const sa::AnalysisResult analysis = sa::analyze(prog, &bundle.policy);
  std::uint64_t instret = 0;
  dift::DiftStats stats;
  for (auto _ : state) {
    vp::VpDift v;
    v.load(prog);
    v.apply_policy(bundle.policy);
    v.set_pinned_blocks(analysis.pinned_pcs);
    const auto r = v.run(sysc::Time::sec(60));
    if (!r.exited() || r.exit_code != 0) state.SkipWithError("self-check failed");
    instret += r.instret;
    stats += r.stats;
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instret), benchmark::Counter::kIsRate);
  state.counters["sa_pinned_blocks"] =
      static_cast<double>(analysis.pinned_pcs.size());
  state.counters["sa_pinned_hits/s"] = benchmark::Counter(
      static_cast<double>(stats.sa_pinned_hits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssDiftVpPinned)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
