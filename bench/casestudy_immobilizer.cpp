// Section VI-A reproduction: developing and validating the security policy
// for the car-engine-immobilizer ECU. Replays the paper's narrative:
//
//   1. Initial policy (IFP-3, PIN = (HC,HI), I/O clearance (LC,LI), AES
//      declassification) — the manual test suite finds the UART debug dump
//      leaking the PIN.
//   2. SW fix: the dump excludes the PIN region; normal operation validates.
//   3. Injected attack scenarios 1-3 are all detected.
//   4. Scenario 4 (overwrite the PIN with *trusted* PIN bytes) escapes the
//      policy, enabling a 256-candidate brute force of the PIN on the CAN
//      bus; the per-byte-PIN policy refinement closes the hole.
#include <cstdio>
#include <string>
#include <vector>

#include "fw/immobilizer.hpp"
#include "soc/aes128.hpp"
#include "vp/scenarios.hpp"
#include "vp/vp.hpp"

using namespace vpdift;

namespace {

const soc::AesKey kPin = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                          0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

struct Outcome {
  vp::RunResult r;
  std::uint64_t auth_ok = 0;
  std::vector<soc::CanFrame> responses;
};

Outcome run(fw::ImmoVariant variant, bool per_byte, const std::string& uart_in,
            std::uint32_t challenges = 3) {
  vp::VpConfig cfg;
  cfg.with_engine_ecu = true;
  cfg.engine_pin = kPin;
  cfg.engine_period = sysc::Time::ms(2);
  vp::VpDift v(cfg);
  const auto prog = fw::make_immobilizer(variant, kPin, challenges);
  v.load(prog);
  auto bundle = vp::scenarios::make_immobilizer_policy(prog, per_byte);
  v.apply_policy(bundle.policy);
  if (!uart_in.empty()) v.uart().feed_input(uart_in);
  Outcome out;
  v.can().set_on_tx([&](const soc::CanFrame& f) {
    v.engine()->on_frame(f);
    if (f.id == soc::EngineEcu::kResponseId) out.responses.push_back(f);
  });
  out.r = v.run(sysc::Time::sec(5));
  out.auth_ok = v.engine()->auth_ok();
  return out;
}

int checks = 0, failures = 0;
void check(bool ok, const char* what) {
  ++checks;
  if (!ok) ++failures;
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
}

}  // namespace

int main() {
  std::printf("Case study — car engine immobilizer (Section VI-A)\n");
  std::printf("Policy: IFP-3, PIN=(HC,HI), I/O clearance (LC,LI), AES key "
              "clearance (HC,HI) with declassification to (LC,LI)\n\n");

  std::printf("Step 1: manual test suite against the original firmware\n");
  {
    auto o = run(fw::ImmoVariant::kVulnerableDump, false, "d");
    check(o.r.violation() &&
              o.r.violation_kind == dift::ViolationKind::kOutputClearance,
          "debug memory dump leaks the PIN over the UART -> output-clearance "
          "violation raised");
    if (o.r.violation()) std::printf("      %s\n", o.r.violation_message.c_str());
  }

  std::printf("\nStep 2: SW fix — dump excludes the PIN region\n");
  {
    auto o = run(fw::ImmoVariant::kFixedDump, false, "d");
    check(!o.r.violation() && o.r.exited() && o.r.exit_code == 0,
          "fixed firmware passes the test suite");
    check(o.auth_ok >= 3, "challenge-response authentication succeeds");
  }

  std::printf("\nStep 3: injected attack scenarios\n");
  {
    auto o = run(fw::ImmoVariant::kAttackDirectLeak, false, "");
    check(o.r.violation() &&
              o.r.violation_kind == dift::ViolationKind::kOutputClearance,
          "scenario 1a: direct PIN write to UART detected");
  }
  {
    auto o = run(fw::ImmoVariant::kAttackIndirectLeak, false, "");
    check(o.r.violation() &&
              o.r.violation_kind == dift::ViolationKind::kOutputClearance,
          "scenario 1b: PIN through intermediate buffer to CAN detected");
  }
  {
    auto o = run(fw::ImmoVariant::kAttackOverflowLeak, false, "");
    check(o.r.violation() &&
              o.r.violation_kind == dift::ViolationKind::kOutputClearance,
          "scenario 1c: buffer-overflow read into the PIN detected");
  }
  {
    auto o = run(fw::ImmoVariant::kAttackBranchLeak, false, "");
    check(o.r.violation() &&
              o.r.violation_kind == dift::ViolationKind::kBranchClearance,
          "scenario 2: PIN-dependent control flow detected");
  }
  {
    auto o = run(fw::ImmoVariant::kAttackOverwriteExternal, false, "");
    check(o.r.violation() &&
              o.r.violation_kind == dift::ViolationKind::kStoreClearance,
          "scenario 3: PIN overwrite with external (LI) data detected");
  }

  std::printf("\nStep 4: the entropy-reduction attack (scenario 4)\n");
  {
    auto o = run(fw::ImmoVariant::kAttackOverwriteTrusted, false, "");
    check(!o.r.violation(),
          "overwriting PIN bytes with *trusted* PIN data escapes the policy");
    check(!o.responses.empty(), "immobilizer still answers challenges");
    // Brute force: all PIN bytes now equal pin[0] -> 256 candidates.
    int recovered = -1;
    if (!o.responses.empty()) {
      const auto& resp = o.responses.front();
      for (int cand = 0; cand < 256 && recovered < 0; ++cand) {
        soc::AesKey k;
        k.fill(static_cast<std::uint8_t>(cand));
        std::uint32_t lcg = 0xcafebabe;
        for (int tries = 0; tries < 8 && recovered < 0; ++tries) {
          soc::AesBlock block{};
          for (int i = 0; i < 8; ++i) {
            lcg = lcg * 1103515245u + 12345u;
            block[i] = static_cast<std::uint8_t>(lcg >> 16);
          }
          const auto enc = soc::aes128_encrypt(k, block);
          bool match = true;
          for (int i = 0; i < 8 && match; ++i) match = enc[i] == resp.data[i];
          if (match) recovered = cand;
        }
      }
    }
    check(recovered == kPin[0],
          "host-side brute force (256 candidates) recovers the degenerate key "
          "from one CAN response");
    if (recovered >= 0)
      std::printf("      recovered key byte: 0x%02x (PIN[0] = 0x%02x)\n",
                  recovered, kPin[0]);
  }

  std::printf("\nStep 5: policy fix — one security class per PIN byte\n");
  {
    auto o = run(fw::ImmoVariant::kAttackOverwriteTrusted, true, "");
    check(o.r.violation() &&
              o.r.violation_kind == dift::ViolationKind::kStoreClearance,
          "per-byte policy detects the trusted-data overwrite");
  }
  {
    auto o = run(fw::ImmoVariant::kFixedDump, true, "d");
    check(!o.r.violation() && o.r.exited() && o.r.exit_code == 0 && o.auth_ok >= 3,
          "per-byte policy still admits normal operation");
  }

  std::printf("\n%s: %d/%d case-study checks passed.\n",
              failures == 0 ? "OK" : "FAILED", checks - failures, checks);
  return failures == 0 ? 0 : 1;
}
