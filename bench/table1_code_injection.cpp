// Table I reproduction: the Wilander-Kamkar buffer-overflow suite under the
// IFP-2 code-injection policy (program memory HI, fetch clearance HI).
//
// For each applicable attack the harness runs it twice: once on the plain VP
// (to prove the exploit actually works without DIFT) and once on the VP+
// (expecting a fetch-clearance violation). N/A rows print the structural
// reason inherited from the RISC-V port.
//
// The runs go through the campaign engine (campaign/suites.hpp): one job per
// VP execution, executed serially by default, or on N worker threads with
// `--jobs N` / the VPDIFT_JOBS environment knob — the verdicts are identical
// either way, since every job is an isolated, thread-confined simulation.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "campaign/suites.hpp"
#include "campaign/thread_pool.hpp"

using namespace vpdift;

int main(int argc, char** argv) {
  std::size_t jobs = campaign::ThreadPool::jobs_from_env(1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!campaign::parse_u64(argv[++i], &n) || n < 1) {
        std::fprintf(stderr, "invalid value for --jobs: '%s'\n", argv[i]);
        return 2;
      }
      jobs = static_cast<std::size_t>(n);
    } else {
      std::fprintf(stderr, "usage: table1_code_injection [--jobs N]\n");
      return 2;
    }
  }

  std::printf("Table I — buffer-overflow test-suite results\n");
  std::printf("Policy: IFP-2; program image HI, UART input LI, attack payload "
              "LI, instruction-fetch clearance HI\n");
  std::printf("(%zu worker%s)\n\n", jobs, jobs == 1 ? "" : "s");
  std::printf("%-4s %-14s %-26s %-10s %-10s %-10s %s\n", "Atk", "Location",
              "Target", "Technique", "Result", "Paper", "Match");

  const campaign::CampaignSpec spec = campaign::suites::table1();
  campaign::RunnerOptions opts;
  opts.jobs = jobs;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = campaign::Runner(opts).run(spec);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  int mismatches = 0;
  for (const auto& row : campaign::suites::table1_rows(results)) {
    if (!row.match) ++mismatches;
    std::printf("%-4d %-14s %-26s %-10s %-10s %-10s %s%s\n", row.id,
                row.location, row.target, row.technique, row.result.c_str(),
                row.expected.c_str(), row.match ? "yes" : "NO",
                row.result != "N/A" && !row.exploit_works
                    ? "  [warning: exploit inert on plain VP]"
                    : "");
  }

  std::printf("\n%s: %d/18 rows match the paper's Table I. (%zu jobs, %.2f s)\n",
              mismatches == 0 ? "OK" : "FAILED", 18 - mismatches,
              spec.jobs.size(), wall);
  return mismatches == 0 ? 0 : 1;
}
