// Table I reproduction: the Wilander-Kamkar buffer-overflow suite under the
// IFP-2 code-injection policy (program memory HI, fetch clearance HI).
//
// For each applicable attack the harness runs it twice: once on the plain VP
// (to prove the exploit actually works without DIFT) and once on the VP+
// (expecting a fetch-clearance violation). N/A rows print the structural
// reason inherited from the RISC-V port.
#include <cstdio>
#include <cstring>
#include <string>

#include "fw/attacks.hpp"
#include "vp/scenarios.hpp"
#include "vp/vp.hpp"

using namespace vpdift;

namespace {

struct Row {
  const fw::AttackSpec* spec;
  std::string result;     // "Detected" / "N/A" / "MISSED"
  std::string expected;   // the paper's column
  bool exploit_works = false;
};

const char* paper_expected(int id) {
  switch (id) {
    case 3: case 5: case 6: case 7: case 9: case 10: case 11: case 13:
    case 14: case 17:
      return "Detected";
    default:
      return "N/A";
  }
}

}  // namespace

int main() {
  std::printf("Table I — buffer-overflow test-suite results\n");
  std::printf("Policy: IFP-2; program image HI, UART input LI, attack payload "
              "LI, instruction-fetch clearance HI\n\n");
  std::printf("%-4s %-14s %-26s %-10s %-10s %-10s %s\n", "Atk", "Location",
              "Target", "Technique", "Result", "Paper", "Match");

  int mismatches = 0;
  for (const auto& spec : fw::attack_specs()) {
    Row row{&spec, "N/A", paper_expected(spec.id)};
    if (spec.applicable) {
      auto atk = fw::make_attack(spec.id);
      {
        // Control run: the exploit must work on the unprotected VP.
        vp::Vp v;
        v.load(atk.program);
        v.uart().feed_input(atk.uart_input);
        auto r = v.run(sysc::Time::sec(10));
        row.exploit_works =
            r.exited && r.exit_code == 42 && r.markers.find('X') != std::string::npos;
      }
      {
        vp::VpDift v;
        v.load(atk.program);
        auto bundle = vp::scenarios::make_code_injection_policy(atk.program);
        v.apply_policy(bundle.policy);
        v.uart().feed_input(atk.uart_input);
        auto r = v.run(sysc::Time::sec(10));
        if (r.violation &&
            r.violation_kind == dift::ViolationKind::kFetchClearance &&
            r.markers.find('X') == std::string::npos) {
          row.result = "Detected";
        } else {
          row.result = "MISSED";
        }
      }
    }
    const bool match = row.result == row.expected;
    if (!match) ++mismatches;
    std::printf("%-4d %-14s %-26s %-10s %-10s %-10s %s%s\n", spec.id,
                spec.location, spec.target, spec.technique, row.result.c_str(),
                row.expected.c_str(), match ? "yes" : "NO",
                spec.applicable && !row.exploit_works
                    ? "  [warning: exploit inert on plain VP]"
                    : "");
  }

  std::printf("\n%s: %d/18 rows match the paper's Table I.\n",
              mismatches == 0 ? "OK" : "FAILED", 18 - mismatches);
  return mismatches == 0 ? 0 : 1;
}
