// Table II reproduction: performance overhead of the DIFT engine.
//
// Each benchmark runs twice — on the plain VP and on the VP+ with the
// permissive policy (every DIFT mechanism engaged, no violations) — and the
// harness reports executed instructions, static image size (LoC ASM),
// simulation wall time, MIPS and the VP+/VP overhead factor, mirroring the
// paper's columns. Instruction counts are scaled down from the paper's
// multi-billion runs (see EXPERIMENTS.md); the *shape* — overhead factors in
// the 1.2x-3x band, interrupt-bound workloads at the low end — is the
// reproduced quantity. Pass a scale factor >= 1 as argv[1] for longer runs.
//
// Besides the table, the harness writes a machine-readable report
// (BENCH_table2.json by default; override with argv[2]) carrying per-workload
// VP/VP+ MIPS, the overhead factor, the DIFT engine counters of the VP+ run,
// and the geometric-mean overhead of the paper's workload set — the number
// perf work is measured against.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "fw/benchmarks.hpp"
#include "fw/immobilizer.hpp"
#include "vp/scenarios.hpp"
#include "vp/vp.hpp"

using namespace vpdift;

namespace {

struct Workload {
  std::string name;
  std::function<rvasm::Program()> make;
  std::function<vp::VpConfig()> config = [] { return vp::VpConfig{}; };
  bool extra = false;  // beyond the paper's Table II set; excluded from averages
};

struct Measurement {
  std::uint64_t instret = 0;
  double wall = 0, mips = 0;
  bool ok = false;
  dift::DiftStats stats;
};

template <typename VpT>
Measurement run_one(const Workload& w, bool dift) {
  VpT v(w.config());
  const auto prog = w.make();
  v.load(prog);
  vp::scenarios::PolicyBundle bundle = vp::scenarios::make_permissive_policy();
  if (dift) v.apply_policy(bundle.policy);
  const auto r = v.run(sysc::Time::sec(600));
  Measurement m;
  m.instret = r.instret;
  m.wall = r.wall_seconds;
  m.mips = r.mips;
  m.ok = r.exited && r.exit_code == 0 && !r.violation;
  m.stats = r.stats;
  return m;
}

const soc::AesKey kPin = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                          0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t scale = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_table2.json";

  std::vector<Workload> workloads = {
      {"qsort", [=] { return fw::make_qsort(30000 * scale, 0xc0ffee); }},
      {"dhrystone", [=] { return fw::make_dhrystone(40000 * scale); }},
      {"primes", [=] { return fw::make_primes(60000 * scale); }},
      {"sha512", [=] { return fw::make_sha512(2048, 120 * scale); }},
      {"sha256*",
       [=] { return fw::make_sha256(4096, 1200 * scale); },
       [] { return vp::VpConfig{}; },
       /*extra=*/true},
      {"crc32*",
       [=] { return fw::make_crc32(4096, 60 * scale); },
       [] { return vp::VpConfig{}; },
       /*extra=*/true},
      {"matmul*",
       [=] { return fw::make_matmul(40 + 12 * scale); },
       [] { return vp::VpConfig{}; },
       /*extra=*/true},
      {"simple-sensor",
       [=] { return fw::make_simple_sensor(1500 * scale); },
       [] {
         vp::VpConfig cfg;
         cfg.sensor_period = sysc::Time::us(100);
         return cfg;
       }},
      {"rtos-tasks", [=] { return fw::make_rtos_tasks(1200 * scale, 50); }},
      {"immo-fixed",
       [=] {
         return fw::make_immobilizer(fw::ImmoVariant::kFixedDump, kPin,
                                     15 * scale);
       },
       [] {
         vp::VpConfig cfg;
         cfg.with_engine_ecu = true;
         cfg.engine_pin = kPin;
         cfg.engine_period = sysc::Time::ms(1);
         return cfg;
       }},
  };

  std::printf("Table II — performance overhead of VP-based DIFT (VP vs VP+)\n");
  std::printf("(workloads scaled for a laptop-class run; paper ran billions "
              "of instructions on native hardware)\n\n");
  std::printf("%-14s %14s %8s | %9s %9s | %7s %7s | %5s\n", "Benchmark",
              "#instr exec.", "LoC ASM", "VP [s]", "VP+ [s]", "VP", "VP+",
              "Ov");
  std::printf("%-14s %14s %8s | %9s %9s | %7s %7s | %5s\n", "", "", "", "", "",
              "MIPS", "MIPS", "");

  double sum_instr = 0, sum_loc = 0, sum_vp = 0, sum_vpd = 0, sum_mips_vp = 0,
         sum_mips_vpd = 0, sum_ov = 0, log_ov = 0;
  int n = 0;
  bool all_ok = true;
  std::string json_rows;
  for (const auto& w : workloads) {
    const std::size_t loc = w.make().instruction_slots();
    const Measurement plain = run_one<vp::Vp>(w, false);
    const Measurement dift = run_one<vp::VpDift>(w, true);
    const double ov = plain.mips > 0 && dift.mips > 0 ? plain.mips / dift.mips : 0;
    all_ok = all_ok && plain.ok && dift.ok;
    std::printf("%-14s %14llu %8zu | %9.2f %9.2f | %7.1f %7.1f | %4.1fx%s\n",
                w.name.c_str(),
                static_cast<unsigned long long>(plain.instret), loc, plain.wall,
                dift.wall, plain.mips, dift.mips, ov,
                plain.ok && dift.ok ? "" : "  [SELF-CHECK FAILED]");
    {
      char row[512];
      std::snprintf(row, sizeof row,
                    "    {\"name\":\"%s\",\"extra\":%s,\"ok\":%s,"
                    "\"instret\":%llu,\"loc_asm\":%zu,"
                    "\"vp\":{\"wall_s\":%.4f,\"mips\":%.2f},"
                    "\"vp_dift\":{\"wall_s\":%.4f,\"mips\":%.2f},"
                    "\"overhead\":%.4f,\"dift_stats\":",
                    w.name.c_str(), w.extra ? "true" : "false",
                    plain.ok && dift.ok ? "true" : "false",
                    static_cast<unsigned long long>(plain.instret), loc,
                    plain.wall, plain.mips, dift.wall, dift.mips, ov);
      if (!json_rows.empty()) json_rows += ",\n";
      json_rows += std::string(row) + dift::to_json(dift.stats) + "}";
    }
    if (w.extra) continue;  // extras reported but kept out of the averages
    sum_instr += static_cast<double>(plain.instret);
    sum_loc += static_cast<double>(loc);
    sum_vp += plain.wall;
    sum_vpd += dift.wall;
    sum_mips_vp += plain.mips;
    sum_mips_vpd += dift.mips;
    sum_ov += ov;
    log_ov += std::log(ov > 0 ? ov : 1.0);
    ++n;
  }
  const double geomean_ov = n ? std::exp(log_ov / n) : 0.0;
  std::printf("%-14s %14.0f %8.0f | %9.2f %9.2f | %7.1f %7.1f | %4.1fx\n",
              "- average -", sum_instr / n, sum_loc / n, sum_vp / n,
              sum_vpd / n, sum_mips_vp / n, sum_mips_vpd / n, sum_ov / n);
  std::printf("(* = extra workloads beyond the paper's set, excluded from the average)\n");
  std::printf("geomean overhead (paper set): %.2fx\n", geomean_ov);
  std::printf("\nPaper reference: average overhead 2.0x (range 1.2x-2.9x), "
              "interrupt-bound simple-sensor lowest.\n");

  std::ofstream out(json_path);
  if (out) {
    char head[256];
    std::snprintf(head, sizeof head,
                  "{\n  \"bench\": \"table2_overhead\",\n  \"scale\": %u,\n"
                  "  \"geomean_overhead\": %.4f,\n  \"all_ok\": %s,\n"
                  "  \"workloads\": [\n",
                  scale, geomean_ov, all_ok ? "true" : "false");
    out << head << json_rows << "\n  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  std::printf("%s\n", all_ok ? "OK: all self-checks passed."
                             : "FAILED: a workload self-check failed.");
  return all_ok ? 0 : 1;
}
