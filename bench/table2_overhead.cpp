// Table II reproduction: performance overhead of the DIFT engine.
//
// Each benchmark runs twice — on the plain VP and on the VP+ with the
// permissive policy (every DIFT mechanism engaged, no violations) — and the
// harness reports executed instructions, static image size (LoC ASM),
// simulation wall time, MIPS and the VP+/VP overhead factor, mirroring the
// paper's columns. Instruction counts are scaled down from the paper's
// multi-billion runs (see EXPERIMENTS.md); the *shape* — overhead factors in
// the 1.2x-3x band, interrupt-bound workloads at the low end — is the
// reproduced quantity. Pass a scale factor >= 1 as argv[1] for longer runs.
//
// Timing methodology: one unrecorded warmup pass of the whole suite, then
// --reps (default 3) recorded passes; the reported wall time per workload is
// the median across passes, which suppresses host scheduling noise. Executed
// instruction counts are deterministic and must agree across passes — the
// harness fails otherwise.
//
// Besides the table, the harness writes a machine-readable report
// (BENCH_table2.json by default; override with argv[2]) carrying per-workload
// VP/VP+ MIPS, the per-rep raw wall times, the overhead factor, the DIFT
// engine counters of the VP+ run, and the geometric-mean overhead of the
// paper's workload set — the number perf work is measured against.
//
// The runs execute through the campaign engine (campaign/suites.hpp);
// `--jobs N` / VPDIFT_JOBS runs them on N worker threads. NOTE: overhead
// factors are wall-clock ratios — run with --jobs 1 (the default) when the
// absolute MIPS numbers matter, since concurrent jobs share host cores.
// CI flags: `--only a,b,c` restricts the suite to a workload subset,
// `--max-overhead F` fails the run when any workload exceeds overhead F, and
// `--max-geomean F` fails the run when the geometric-mean overhead of the
// selected paper-set workloads exceeds F (the perf-regression gate).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "campaign/suites.hpp"
#include "campaign/thread_pool.hpp"
#include "dift/stats.hpp"

using namespace vpdift;

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n == 0) return 0.0;
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += *p;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string json_doubles(const std::vector<double>& v) {
  std::string s = "[";
  char buf[32];
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s%.4f", i ? "," : "", v[i]);
    s += buf;
  }
  return s + "]";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t scale = 4;
  std::string json_path = "BENCH_table2.json";
  std::size_t jobs = campaign::ThreadPool::jobs_from_env(1);
  std::uint32_t reps = 3;
  double max_overhead = 0.0;  // 0 = no gate
  double max_geomean = 0.0;   // 0 = no gate
  std::vector<std::string> only;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!campaign::parse_u64(argv[++i], &n) || n < 1) {
        std::fprintf(stderr, "invalid value for --jobs: '%s'\n", argv[i]);
        return 2;
      }
      jobs = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!campaign::parse_u64(argv[++i], &n) || n < 1) {
        std::fprintf(stderr, "invalid value for --reps: '%s'\n", argv[i]);
        return 2;
      }
      reps = static_cast<std::uint32_t>(n);
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = split_csv(argv[++i]);
      if (only.empty()) {
        std::fprintf(stderr, "empty workload list for --only\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--max-overhead") == 0 && i + 1 < argc) {
      char* end = nullptr;
      max_overhead = std::strtod(argv[++i], &end);
      if (!end || *end != '\0' || max_overhead <= 0) {
        std::fprintf(stderr, "invalid value for --max-overhead: '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--max-geomean") == 0 && i + 1 < argc) {
      char* end = nullptr;
      max_geomean = std::strtod(argv[++i], &end);
      if (!end || *end != '\0' || max_geomean <= 0) {
        std::fprintf(stderr, "invalid value for --max-geomean: '%s'\n", argv[i]);
        return 2;
      }
    } else if (positional == 0) {
      std::uint64_t s = 0;
      if (!campaign::parse_u64(argv[i], &s) || s < 1) {
        std::fprintf(stderr, "invalid scale '%s'\n", argv[i]);
        return 2;
      }
      scale = static_cast<std::uint32_t>(s);
      ++positional;
    } else if (positional == 1) {
      json_path = argv[i];
      ++positional;
    } else {
      std::fprintf(stderr,
                   "usage: table2_overhead [--jobs N] [--reps N] "
                   "[--only a,b,c] [--max-overhead F] [--max-geomean F] "
                   "[scale [json-path]]\n");
      return 2;
    }
  }

  std::printf("Table II — performance overhead of VP-based DIFT (VP vs VP+)\n");
  std::printf("(workloads scaled for a laptop-class run; paper ran billions "
              "of instructions on native hardware; %zu worker%s, "
              "median of %u rep%s after warmup)\n\n",
              jobs, jobs == 1 ? "" : "s", reps, reps == 1 ? "" : "s");
  std::printf("%-14s %14s %8s | %9s %9s | %7s %7s | %5s\n", "Benchmark",
              "#instr exec.", "LoC ASM", "VP [s]", "VP+ [s]", "VP", "VP+",
              "Ov");
  std::printf("%-14s %14s %8s | %9s %9s | %7s %7s | %5s\n", "", "", "", "", "",
              "MIPS", "MIPS", "");

  const campaign::CampaignSpec spec = campaign::suites::table2(scale, only);
  if (spec.jobs.empty()) {
    std::fprintf(stderr, "no workloads selected by --only\n");
    return 2;
  }
  campaign::RunnerOptions opts;
  opts.jobs = jobs;

  campaign::Runner(opts).run(spec);  // warmup pass, unrecorded
  std::vector<std::vector<campaign::suites::Table2Row>> per_rep;
  per_rep.reserve(reps);
  for (std::uint32_t r = 0; r < reps; ++r) {
    const auto results = campaign::Runner(opts).run(spec);
    per_rep.push_back(campaign::suites::table2_rows(results, scale, only));
  }

  double sum_instr = 0, sum_loc = 0, sum_vp = 0, sum_vpd = 0, sum_mips_vp = 0,
         sum_mips_vpd = 0, sum_ov = 0, log_ov = 0;
  int n = 0;
  bool all_ok = true;
  bool over_budget = false;
  std::string json_rows;
  for (std::size_t w = 0; w < per_rep[0].size(); ++w) {
    // Rep 0 carries the canonical (deterministic) run results; the other
    // reps only contribute wall-clock samples.
    const auto& row = per_rep[0][w];
    bool ok = true;
    std::vector<double> walls_vp, walls_vpd;
    for (const auto& rep : per_rep) {
      ok = ok && rep[w].plain.ok && rep[w].dift.ok &&
           rep[w].plain.run.instret == row.plain.run.instret &&
           rep[w].dift.run.instret == row.dift.run.instret;
      walls_vp.push_back(rep[w].plain.run.wall_seconds);
      walls_vpd.push_back(rep[w].dift.run.wall_seconds);
    }
    all_ok = all_ok && ok;
    const double wall_vp = median(walls_vp);
    const double wall_vpd = median(walls_vpd);
    const double mips_vp =
        wall_vp > 0 ? static_cast<double>(row.plain.run.instret) / wall_vp / 1e6 : 0;
    const double mips_vpd =
        wall_vpd > 0 ? static_cast<double>(row.dift.run.instret) / wall_vpd / 1e6 : 0;
    const double overhead = wall_vp > 0 ? wall_vpd / wall_vp : 0;
    if (max_overhead > 0 && overhead > max_overhead) over_budget = true;
    std::printf("%-14s %14llu %8zu | %9.2f %9.2f | %7.1f %7.1f | %4.1fx%s\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.plain.run.instret),
                row.loc_asm, wall_vp, wall_vpd, mips_vp, mips_vpd, overhead,
                ok ? "" : "  [SELF-CHECK FAILED]");
    {
      char buf[512];
      std::snprintf(buf, sizeof buf,
                    "    {\"name\":\"%s\",\"extra\":%s,\"ok\":%s,"
                    "\"instret\":%llu,\"loc_asm\":%zu,"
                    "\"vp\":{\"wall_s\":%.4f,\"mips\":%.2f},"
                    "\"vp_dift\":{\"wall_s\":%.4f,\"mips\":%.2f},"
                    "\"overhead\":%.4f,",
                    row.name.c_str(), row.extra ? "true" : "false",
                    ok ? "true" : "false",
                    static_cast<unsigned long long>(row.plain.run.instret),
                    row.loc_asm, wall_vp, mips_vp, wall_vpd, mips_vpd,
                    overhead);
      if (!json_rows.empty()) json_rows += ",\n";
      json_rows += std::string(buf) + "\"walls_raw\":{\"vp\":" +
                   json_doubles(walls_vp) + ",\"vp_dift\":" +
                   json_doubles(walls_vpd) +
                   "},\"dift_stats\":" + dift::to_json(row.dift.run.stats) + "}";
    }
    if (row.extra) continue;  // extras reported but kept out of the averages
    sum_instr += static_cast<double>(row.plain.run.instret);
    sum_loc += static_cast<double>(row.loc_asm);
    sum_vp += wall_vp;
    sum_vpd += wall_vpd;
    sum_mips_vp += mips_vp;
    sum_mips_vpd += mips_vpd;
    sum_ov += overhead;
    log_ov += std::log(overhead > 0 ? overhead : 1.0);
    ++n;
  }
  const double geomean_ov = n ? std::exp(log_ov / n) : 0.0;
  if (n) {
    std::printf("%-14s %14.0f %8.0f | %9.2f %9.2f | %7.1f %7.1f | %4.1fx\n",
                "- average -", sum_instr / n, sum_loc / n, sum_vp / n,
                sum_vpd / n, sum_mips_vp / n, sum_mips_vpd / n, sum_ov / n);
  }
  std::printf("(* = extra workloads beyond the paper's set, excluded from the average)\n");
  std::printf("geomean overhead (paper set): %.2fx\n", geomean_ov);
  std::printf("\nPaper reference: average overhead 2.0x (range 1.2x-2.9x), "
              "interrupt-bound simple-sensor lowest.\n");

  std::ofstream out(json_path);
  if (out) {
    char head[256];
    std::snprintf(head, sizeof head,
                  "{\n  \"bench\": \"table2_overhead\",\n  \"scale\": %u,\n"
                  "  \"jobs\": %zu,\n  \"reps\": %u,\n"
                  "  \"geomean_overhead\": %.4f,\n"
                  "  \"all_ok\": %s,\n  \"workloads\": [\n",
                  scale, jobs, reps, geomean_ov, all_ok ? "true" : "false");
    out << head << json_rows << "\n  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  const bool geomean_over = max_geomean > 0 && geomean_ov > max_geomean;
  if (over_budget)
    std::printf("FAILED: a workload exceeded --max-overhead %.2f.\n", max_overhead);
  if (geomean_over)
    std::printf("FAILED: geomean overhead %.4fx exceeded --max-geomean %.2f.\n",
                geomean_ov, max_geomean);
  std::printf("%s\n", all_ok ? "OK: all self-checks passed."
                             : "FAILED: a workload self-check failed.");
  return all_ok && !over_budget && !geomean_over ? 0 : 1;
}
