// Table II reproduction: performance overhead of the DIFT engine.
//
// Each benchmark runs twice — on the plain VP and on the VP+ with the
// permissive policy (every DIFT mechanism engaged, no violations) — and the
// harness reports executed instructions, static image size (LoC ASM),
// simulation wall time, MIPS and the VP+/VP overhead factor, mirroring the
// paper's columns. Instruction counts are scaled down from the paper's
// multi-billion runs (see EXPERIMENTS.md); the *shape* — overhead factors in
// the 1.2x-3x band, interrupt-bound workloads at the low end — is the
// reproduced quantity. Pass a scale factor >= 1 as argv[1] for longer runs.
//
// Besides the table, the harness writes a machine-readable report
// (BENCH_table2.json by default; override with argv[2]) carrying per-workload
// VP/VP+ MIPS, the overhead factor, the DIFT engine counters of the VP+ run,
// and the geometric-mean overhead of the paper's workload set — the number
// perf work is measured against.
//
// The 2x10 runs execute through the campaign engine (campaign/suites.hpp);
// `--jobs N` / VPDIFT_JOBS runs them on N worker threads. NOTE: overhead
// factors are wall-clock ratios — run with --jobs 1 (the default) when the
// absolute MIPS numbers matter, since concurrent jobs share host cores.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "campaign/suites.hpp"
#include "campaign/thread_pool.hpp"
#include "dift/stats.hpp"

using namespace vpdift;

int main(int argc, char** argv) {
  std::uint32_t scale = 4;
  std::string json_path = "BENCH_table2.json";
  std::size_t jobs = campaign::ThreadPool::jobs_from_env(1);

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!campaign::parse_u64(argv[++i], &n) || n < 1) {
        std::fprintf(stderr, "invalid value for --jobs: '%s'\n", argv[i]);
        return 2;
      }
      jobs = static_cast<std::size_t>(n);
    } else if (positional == 0) {
      std::uint64_t s = 0;
      if (!campaign::parse_u64(argv[i], &s) || s < 1) {
        std::fprintf(stderr, "invalid scale '%s'\n", argv[i]);
        return 2;
      }
      scale = static_cast<std::uint32_t>(s);
      ++positional;
    } else if (positional == 1) {
      json_path = argv[i];
      ++positional;
    } else {
      std::fprintf(stderr,
                   "usage: table2_overhead [--jobs N] [scale [json-path]]\n");
      return 2;
    }
  }

  std::printf("Table II — performance overhead of VP-based DIFT (VP vs VP+)\n");
  std::printf("(workloads scaled for a laptop-class run; paper ran billions "
              "of instructions on native hardware; %zu worker%s)\n\n",
              jobs, jobs == 1 ? "" : "s");
  std::printf("%-14s %14s %8s | %9s %9s | %7s %7s | %5s\n", "Benchmark",
              "#instr exec.", "LoC ASM", "VP [s]", "VP+ [s]", "VP", "VP+",
              "Ov");
  std::printf("%-14s %14s %8s | %9s %9s | %7s %7s | %5s\n", "", "", "", "", "",
              "MIPS", "MIPS", "");

  const campaign::CampaignSpec spec = campaign::suites::table2(scale);
  campaign::RunnerOptions opts;
  opts.jobs = jobs;
  const auto results = campaign::Runner(opts).run(spec);
  const auto rows = campaign::suites::table2_rows(results, scale);

  double sum_instr = 0, sum_loc = 0, sum_vp = 0, sum_vpd = 0, sum_mips_vp = 0,
         sum_mips_vpd = 0, sum_ov = 0, log_ov = 0;
  int n = 0;
  bool all_ok = true;
  std::string json_rows;
  for (const auto& row : rows) {
    const bool ok = row.plain.ok && row.dift.ok;
    all_ok = all_ok && ok;
    const vp::RunResult& plain = row.plain.run;
    const vp::RunResult& dift = row.dift.run;
    std::printf("%-14s %14llu %8zu | %9.2f %9.2f | %7.1f %7.1f | %4.1fx%s\n",
                row.name.c_str(),
                static_cast<unsigned long long>(plain.instret), row.loc_asm,
                plain.wall_seconds, dift.wall_seconds, plain.mips, dift.mips,
                row.overhead, ok ? "" : "  [SELF-CHECK FAILED]");
    {
      char buf[512];
      std::snprintf(buf, sizeof buf,
                    "    {\"name\":\"%s\",\"extra\":%s,\"ok\":%s,"
                    "\"instret\":%llu,\"loc_asm\":%zu,"
                    "\"vp\":{\"wall_s\":%.4f,\"mips\":%.2f},"
                    "\"vp_dift\":{\"wall_s\":%.4f,\"mips\":%.2f},"
                    "\"overhead\":%.4f,\"dift_stats\":",
                    row.name.c_str(), row.extra ? "true" : "false",
                    ok ? "true" : "false",
                    static_cast<unsigned long long>(plain.instret), row.loc_asm,
                    plain.wall_seconds, plain.mips, dift.wall_seconds,
                    dift.mips, row.overhead);
      if (!json_rows.empty()) json_rows += ",\n";
      json_rows += std::string(buf) + dift::to_json(dift.stats) + "}";
    }
    if (row.extra) continue;  // extras reported but kept out of the averages
    sum_instr += static_cast<double>(plain.instret);
    sum_loc += static_cast<double>(row.loc_asm);
    sum_vp += plain.wall_seconds;
    sum_vpd += dift.wall_seconds;
    sum_mips_vp += plain.mips;
    sum_mips_vpd += dift.mips;
    sum_ov += row.overhead;
    log_ov += std::log(row.overhead > 0 ? row.overhead : 1.0);
    ++n;
  }
  const double geomean_ov = n ? std::exp(log_ov / n) : 0.0;
  std::printf("%-14s %14.0f %8.0f | %9.2f %9.2f | %7.1f %7.1f | %4.1fx\n",
              "- average -", sum_instr / n, sum_loc / n, sum_vp / n,
              sum_vpd / n, sum_mips_vp / n, sum_mips_vpd / n, sum_ov / n);
  std::printf("(* = extra workloads beyond the paper's set, excluded from the average)\n");
  std::printf("geomean overhead (paper set): %.2fx\n", geomean_ov);
  std::printf("\nPaper reference: average overhead 2.0x (range 1.2x-2.9x), "
              "interrupt-bound simple-sensor lowest.\n");

  std::ofstream out(json_path);
  if (out) {
    char head[256];
    std::snprintf(head, sizeof head,
                  "{\n  \"bench\": \"table2_overhead\",\n  \"scale\": %u,\n"
                  "  \"jobs\": %zu,\n  \"geomean_overhead\": %.4f,\n"
                  "  \"all_ok\": %s,\n  \"workloads\": [\n",
                  scale, jobs, geomean_ov, all_ok ? "true" : "false");
    out << head << json_rows << "\n  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  std::printf("%s\n", all_ok ? "OK: all self-checks passed."
                             : "FAILED: a workload self-check failed.");
  return all_ok ? 0 : 1;
}
