// Fig. 1 reproduction: the three example IFPs (confidentiality, integrity,
// and their product), printed with their flow matrices, LUB tables and
// declassification edges, plus the paper's worked LUB example.
#include <cstdio>
#include <cstdlib>

#include "dift/lattice.hpp"

using vpdift::dift::Lattice;
using vpdift::dift::Tag;

namespace {

void print_lattice(const char* title, const Lattice& l) {
  std::printf("=== %s (%zu security classes) ===\n", title, l.size());
  std::printf("  classes:");
  for (Tag t = 0; t < l.size(); ++t) std::printf(" %u=%s", t, l.name_of(t).c_str());
  std::printf("\n  flow edges:");
  for (auto [a, b] : l.flow_edges())
    std::printf(" %s->%s", l.name_of(a).c_str(), l.name_of(b).c_str());
  std::printf("\n  declass edges (red dashed in Fig. 1):");
  for (auto [a, b] : l.declass_edges())
    std::printf(" %s=>%s", l.name_of(a).c_str(), l.name_of(b).c_str());
  std::printf("\n  allowedFlow matrix (row: from, col: to):\n        ");
  for (Tag b = 0; b < l.size(); ++b) std::printf(" %7s", l.name_of(b).c_str());
  std::printf("\n");
  for (Tag a = 0; a < l.size(); ++a) {
    std::printf("  %7s", l.name_of(a).c_str());
    for (Tag b = 0; b < l.size(); ++b)
      std::printf(" %7s", l.allowed_flow(a, b) ? "yes" : ".");
    std::printf("\n");
  }
  std::printf("  LUB table:\n        ");
  for (Tag b = 0; b < l.size(); ++b) std::printf(" %7s", l.name_of(b).c_str());
  std::printf("\n");
  for (Tag a = 0; a < l.size(); ++a) {
    std::printf("  %7s", l.name_of(a).c_str());
    for (Tag b = 0; b < l.size(); ++b)
      std::printf(" %7s", l.name_of(l.lub(a, b)).c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Fig. 1 — example Information Flow Policies\n\n");
  const Lattice ifp1 = Lattice::ifp1();
  const Lattice ifp2 = Lattice::ifp2();
  const Lattice ifp3 = Lattice::ifp3();
  print_lattice("IFP-1: confidentiality (LC -> HC)", ifp1);
  print_lattice("IFP-2: integrity (HI -> LI)", ifp2);
  print_lattice("IFP-3: product of IFP-1 and IFP-2", ifp3);

  // The paper's Example 1: LUB((LC,LI),(HC,HI)) = (HC,LI).
  const Tag a = ifp3.tag_of("(LC,LI)");
  const Tag b = ifp3.tag_of("(HC,HI)");
  const Tag c = ifp3.lub(a, b);
  std::printf("Paper Example 1: LUB(%s, %s) = %s   [expected (HC,LI)]\n",
              ifp3.name_of(a).c_str(), ifp3.name_of(b).c_str(),
              ifp3.name_of(c).c_str());
  if (ifp3.name_of(c) != "(HC,LI)") {
    std::fprintf(stderr, "FAILED: LUB example does not match the paper\n");
    return 1;
  }
  std::printf("OK: lattice semantics match the paper.\n");
  return 0;
}
