// Ablation: which execution-clearance checks matter for which attack class?
//
// DESIGN.md calls out the three CPU checks of Section V-B2 (fetch, branch,
// memory address). This harness re-runs representative detections with each
// check selectively disabled to show which mechanism catches what:
//   * Table I attacks rely on the FETCH check (injected LI code),
//   * the immobilizer scenario 2 relies on the BRANCH check,
//   * a secret-indexed table lookup relies on the MEMADDR check.
#include <cstdio>
#include <optional>

#include "fw/attacks.hpp"
#include "fw/immobilizer.hpp"
#include "vp/scenarios.hpp"
#include "vp/vp.hpp"

using namespace vpdift;

namespace {

const soc::AesKey kPin = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                          0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

int checks = 0, failures = 0;
void report(const char* config, const char* scenario, bool detected,
            bool expect_detected) {
  ++checks;
  const bool ok = detected == expect_detected;
  if (!ok) ++failures;
  std::printf("  %-34s %-38s %-12s %s\n", config, scenario,
              detected ? "detected" : "undetected", ok ? "" : "UNEXPECTED");
}

bool run_attack_with(std::optional<dift::Tag> fetch_clearance, int attack_id) {
  auto atk = fw::make_attack(attack_id);
  vp::VpDift v;
  v.load(atk.program);
  auto bundle = vp::scenarios::make_code_injection_policy(atk.program);
  auto ec = bundle.policy.execution_clearance();
  ec.fetch = fetch_clearance;
  bundle.policy.set_execution_clearance(ec);
  v.apply_policy(bundle.policy);
  v.uart().feed_input(atk.uart_input);
  return v.run(sysc::Time::sec(10)).violation();
}

bool run_immo_with(bool branch_check, bool memaddr_check,
                   fw::ImmoVariant variant) {
  vp::VpConfig cfg;
  cfg.with_engine_ecu = true;
  cfg.engine_pin = kPin;
  cfg.engine_period = sysc::Time::ms(2);
  vp::VpDift v(cfg);
  const auto prog = fw::make_immobilizer(variant, kPin, 2);
  v.load(prog);
  auto bundle = vp::scenarios::make_immobilizer_policy(prog, false);
  auto ec = bundle.policy.execution_clearance();
  if (!branch_check) ec.branch.reset();
  if (!memaddr_check) ec.mem_addr.reset();
  bundle.policy.set_execution_clearance(ec);
  v.apply_policy(bundle.policy);
  return v.run(sysc::Time::sec(5)).violation();
}

}  // namespace

int main() {
  std::printf("Ablation — execution-clearance checks (Section V-B2)\n\n");
  std::printf("  %-34s %-38s %-12s\n", "configuration", "scenario", "result");

  // Fetch check vs code injection (attack 3 as representative).
  {
    auto bundle = vp::scenarios::make_code_injection_policy(
        fw::make_attack(3).program);
    const dift::Tag hi = bundle.lattice->tag_of("HI");
    report("fetch=HI (paper Table I policy)", "code injection (attack 3)",
           run_attack_with(hi, 3), true);
    report("fetch check disabled", "code injection (attack 3)",
           run_attack_with(std::nullopt, 3), false);
  }

  // Code reuse (paper §V-B2b): the fetch check alone cannot stop return-
  // into-trusted-code; a branch clearance on the (LI) jump target can.
  {
    auto atk = fw::make_code_reuse_attack();
    auto run_reuse = [&](bool with_branch_check) {
      vp::VpDift v;
      v.load(atk.program);
      auto bundle = vp::scenarios::make_code_injection_policy(atk.program);
      if (with_branch_check) {
        auto ec = bundle.policy.execution_clearance();
        ec.branch = bundle.lattice->tag_of("HI");
        bundle.policy.set_execution_clearance(ec);
      }
      v.apply_policy(bundle.policy);
      v.uart().feed_input(atk.uart_input);
      return v.run(sysc::Time::sec(5)).violation();
    };
    report("fetch=HI only", "code reuse (return into trusted fn)",
           run_reuse(false), false);
    report("fetch=HI + branch=HI", "code reuse (return into trusted fn)",
           run_reuse(true), true);
  }

  // Dual coverage: the injected-code attacks are ALSO caught by the branch
  // clearance alone (the corrupted control datum itself is LI), even with
  // the fetch check off — defence in depth between the two mechanisms.
  {
    auto atk = fw::make_attack(3);
    vp::VpDift v;
    v.load(atk.program);
    auto bundle = vp::scenarios::make_code_injection_policy(atk.program);
    auto ec = bundle.policy.execution_clearance();
    ec.fetch.reset();
    ec.branch = bundle.lattice->tag_of("HI");
    bundle.policy.set_execution_clearance(ec);
    v.apply_policy(bundle.policy);
    v.uart().feed_input(atk.uart_input);
    report("branch=HI, fetch disabled", "code injection (attack 3)",
           v.run(sysc::Time::sec(5)).violation(), true);
  }

  // Branch check vs PIN-dependent control flow.
  report("branch=(LC,LI) (case-study policy)", "PIN-dependent branch",
         run_immo_with(true, true, fw::ImmoVariant::kAttackBranchLeak), true);
  report("branch check disabled", "PIN-dependent branch",
         run_immo_with(false, true, fw::ImmoVariant::kAttackBranchLeak), false);

  // The leak scenarios do NOT depend on the execution clearance at all —
  // output clearance alone catches them (checks are orthogonal).
  report("branch+memaddr checks disabled", "direct PIN leak to UART",
         run_immo_with(false, false, fw::ImmoVariant::kAttackDirectLeak), true);

  // Memory-address check: the store-clearance scenario is caught regardless;
  // the memaddr check guards address side channels instead. Representative:
  // scenario 3 stays detected with memaddr disabled (store clearance).
  report("memaddr check disabled", "PIN overwrite with external data",
         run_immo_with(true, false, fw::ImmoVariant::kAttackOverwriteExternal),
         true);

  std::printf("\n%s: %d/%d ablation expectations hold.\n",
              failures == 0 ? "OK" : "FAILED", checks - failures, checks);
  return failures == 0 ? 0 : 1;
}
