# Empty compiler generated dependencies file for vpdift_tests.
# This may be replaced when dependencies are built.
