
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attacks_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/attacks_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/attacks_test.cpp.o.d"
  "/root/repo/tests/coverage_gaps_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/coverage_gaps_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/coverage_gaps_test.cpp.o.d"
  "/root/repo/tests/dift_lattice_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/dift_lattice_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/dift_lattice_test.cpp.o.d"
  "/root/repo/tests/dift_policy_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/dift_policy_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/dift_policy_test.cpp.o.d"
  "/root/repo/tests/dift_taint_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/dift_taint_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/dift_taint_test.cpp.o.d"
  "/root/repo/tests/dual_ecu_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/dual_ecu_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/dual_ecu_test.cpp.o.d"
  "/root/repo/tests/elf_trace_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/elf_trace_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/elf_trace_test.cpp.o.d"
  "/root/repo/tests/fuzz_diff_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/fuzz_diff_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/fuzz_diff_test.cpp.o.d"
  "/root/repo/tests/fw_bench_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/fw_bench_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/fw_bench_test.cpp.o.d"
  "/root/repo/tests/gpio_flash_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/gpio_flash_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/gpio_flash_test.cpp.o.d"
  "/root/repo/tests/host_ref_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/host_ref_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/host_ref_test.cpp.o.d"
  "/root/repo/tests/immobilizer_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/immobilizer_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/immobilizer_test.cpp.o.d"
  "/root/repo/tests/policy_parser_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/policy_parser_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/policy_parser_test.cpp.o.d"
  "/root/repo/tests/rv_dift_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/rv_dift_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/rv_dift_test.cpp.o.d"
  "/root/repo/tests/rv_exec_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/rv_exec_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/rv_exec_test.cpp.o.d"
  "/root/repo/tests/rvasm_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/rvasm_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/rvasm_test.cpp.o.d"
  "/root/repo/tests/rvc_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/rvc_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/rvc_test.cpp.o.d"
  "/root/repo/tests/smoke_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/smoke_test.cpp.o.d"
  "/root/repo/tests/soc_periph_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/soc_periph_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/soc_periph_test.cpp.o.d"
  "/root/repo/tests/soc_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/soc_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/soc_test.cpp.o.d"
  "/root/repo/tests/sysc_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/sysc_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/sysc_test.cpp.o.d"
  "/root/repo/tests/tlm_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/tlm_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/tlm_test.cpp.o.d"
  "/root/repo/tests/vp_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/vp_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/vp_test.cpp.o.d"
  "/root/repo/tests/watchdog_test.cpp" "tests/CMakeFiles/vpdift_tests.dir/watchdog_test.cpp.o" "gcc" "tests/CMakeFiles/vpdift_tests.dir/watchdog_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vp/CMakeFiles/vpdift_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/fw/CMakeFiles/vpdift_fw.dir/DependInfo.cmake"
  "/root/repo/build/src/rv/CMakeFiles/vpdift_rv.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/vpdift_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/tlmlite/CMakeFiles/vpdift_tlm.dir/DependInfo.cmake"
  "/root/repo/build/src/dift/CMakeFiles/vpdift_dift.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/vpdift_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/rvasm/CMakeFiles/vpdift_rvasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
