file(REMOVE_RECURSE
  "CMakeFiles/vpdift_rvasm.dir/assembler.cpp.o"
  "CMakeFiles/vpdift_rvasm.dir/assembler.cpp.o.d"
  "CMakeFiles/vpdift_rvasm.dir/elf.cpp.o"
  "CMakeFiles/vpdift_rvasm.dir/elf.cpp.o.d"
  "libvpdift_rvasm.a"
  "libvpdift_rvasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpdift_rvasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
