file(REMOVE_RECURSE
  "libvpdift_rvasm.a"
)
