# Empty compiler generated dependencies file for vpdift_rvasm.
# This may be replaced when dependencies are built.
