file(REMOVE_RECURSE
  "libvpdift_fw.a"
)
