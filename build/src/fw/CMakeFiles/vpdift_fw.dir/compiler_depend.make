# Empty compiler generated dependencies file for vpdift_fw.
# This may be replaced when dependencies are built.
