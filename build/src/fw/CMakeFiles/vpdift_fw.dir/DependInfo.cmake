
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fw/attacks.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/attacks.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/attacks.cpp.o.d"
  "/root/repo/src/fw/bench_progs.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/bench_progs.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/bench_progs.cpp.o.d"
  "/root/repo/src/fw/bench_progs2.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/bench_progs2.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/bench_progs2.cpp.o.d"
  "/root/repo/src/fw/bench_progs3.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/bench_progs3.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/bench_progs3.cpp.o.d"
  "/root/repo/src/fw/bench_progs4.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/bench_progs4.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/bench_progs4.cpp.o.d"
  "/root/repo/src/fw/bench_sha512.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/bench_sha512.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/bench_sha512.cpp.o.d"
  "/root/repo/src/fw/engine_fw.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/engine_fw.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/engine_fw.cpp.o.d"
  "/root/repo/src/fw/hal.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/hal.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/hal.cpp.o.d"
  "/root/repo/src/fw/host_ref.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/host_ref.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/host_ref.cpp.o.d"
  "/root/repo/src/fw/immobilizer.cpp" "src/fw/CMakeFiles/vpdift_fw.dir/immobilizer.cpp.o" "gcc" "src/fw/CMakeFiles/vpdift_fw.dir/immobilizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rvasm/CMakeFiles/vpdift_rvasm.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/vpdift_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/tlmlite/CMakeFiles/vpdift_tlm.dir/DependInfo.cmake"
  "/root/repo/build/src/dift/CMakeFiles/vpdift_dift.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/vpdift_sysc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
