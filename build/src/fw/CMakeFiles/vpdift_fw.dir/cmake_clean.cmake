file(REMOVE_RECURSE
  "CMakeFiles/vpdift_fw.dir/attacks.cpp.o"
  "CMakeFiles/vpdift_fw.dir/attacks.cpp.o.d"
  "CMakeFiles/vpdift_fw.dir/bench_progs.cpp.o"
  "CMakeFiles/vpdift_fw.dir/bench_progs.cpp.o.d"
  "CMakeFiles/vpdift_fw.dir/bench_progs2.cpp.o"
  "CMakeFiles/vpdift_fw.dir/bench_progs2.cpp.o.d"
  "CMakeFiles/vpdift_fw.dir/bench_progs3.cpp.o"
  "CMakeFiles/vpdift_fw.dir/bench_progs3.cpp.o.d"
  "CMakeFiles/vpdift_fw.dir/bench_progs4.cpp.o"
  "CMakeFiles/vpdift_fw.dir/bench_progs4.cpp.o.d"
  "CMakeFiles/vpdift_fw.dir/bench_sha512.cpp.o"
  "CMakeFiles/vpdift_fw.dir/bench_sha512.cpp.o.d"
  "CMakeFiles/vpdift_fw.dir/engine_fw.cpp.o"
  "CMakeFiles/vpdift_fw.dir/engine_fw.cpp.o.d"
  "CMakeFiles/vpdift_fw.dir/hal.cpp.o"
  "CMakeFiles/vpdift_fw.dir/hal.cpp.o.d"
  "CMakeFiles/vpdift_fw.dir/host_ref.cpp.o"
  "CMakeFiles/vpdift_fw.dir/host_ref.cpp.o.d"
  "CMakeFiles/vpdift_fw.dir/immobilizer.cpp.o"
  "CMakeFiles/vpdift_fw.dir/immobilizer.cpp.o.d"
  "libvpdift_fw.a"
  "libvpdift_fw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpdift_fw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
