
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dift/context.cpp" "src/dift/CMakeFiles/vpdift_dift.dir/context.cpp.o" "gcc" "src/dift/CMakeFiles/vpdift_dift.dir/context.cpp.o.d"
  "/root/repo/src/dift/lattice.cpp" "src/dift/CMakeFiles/vpdift_dift.dir/lattice.cpp.o" "gcc" "src/dift/CMakeFiles/vpdift_dift.dir/lattice.cpp.o.d"
  "/root/repo/src/dift/policy.cpp" "src/dift/CMakeFiles/vpdift_dift.dir/policy.cpp.o" "gcc" "src/dift/CMakeFiles/vpdift_dift.dir/policy.cpp.o.d"
  "/root/repo/src/dift/policy_parser.cpp" "src/dift/CMakeFiles/vpdift_dift.dir/policy_parser.cpp.o" "gcc" "src/dift/CMakeFiles/vpdift_dift.dir/policy_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
