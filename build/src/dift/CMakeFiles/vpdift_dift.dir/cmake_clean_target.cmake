file(REMOVE_RECURSE
  "libvpdift_dift.a"
)
