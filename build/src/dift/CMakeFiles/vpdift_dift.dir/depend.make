# Empty dependencies file for vpdift_dift.
# This may be replaced when dependencies are built.
