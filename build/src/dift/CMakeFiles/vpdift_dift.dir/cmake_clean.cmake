file(REMOVE_RECURSE
  "CMakeFiles/vpdift_dift.dir/context.cpp.o"
  "CMakeFiles/vpdift_dift.dir/context.cpp.o.d"
  "CMakeFiles/vpdift_dift.dir/lattice.cpp.o"
  "CMakeFiles/vpdift_dift.dir/lattice.cpp.o.d"
  "CMakeFiles/vpdift_dift.dir/policy.cpp.o"
  "CMakeFiles/vpdift_dift.dir/policy.cpp.o.d"
  "CMakeFiles/vpdift_dift.dir/policy_parser.cpp.o"
  "CMakeFiles/vpdift_dift.dir/policy_parser.cpp.o.d"
  "libvpdift_dift.a"
  "libvpdift_dift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpdift_dift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
