# Empty dependencies file for vpdift_tlm.
# This may be replaced when dependencies are built.
