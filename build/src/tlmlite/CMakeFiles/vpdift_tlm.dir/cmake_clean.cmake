file(REMOVE_RECURSE
  "CMakeFiles/vpdift_tlm.dir/bus.cpp.o"
  "CMakeFiles/vpdift_tlm.dir/bus.cpp.o.d"
  "libvpdift_tlm.a"
  "libvpdift_tlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpdift_tlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
