file(REMOVE_RECURSE
  "libvpdift_tlm.a"
)
