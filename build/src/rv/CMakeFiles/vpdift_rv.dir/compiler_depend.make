# Empty compiler generated dependencies file for vpdift_rv.
# This may be replaced when dependencies are built.
