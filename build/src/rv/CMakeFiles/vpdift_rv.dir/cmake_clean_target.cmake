file(REMOVE_RECURSE
  "libvpdift_rv.a"
)
