file(REMOVE_RECURSE
  "CMakeFiles/vpdift_rv.dir/core.cpp.o"
  "CMakeFiles/vpdift_rv.dir/core.cpp.o.d"
  "CMakeFiles/vpdift_rv.dir/csr.cpp.o"
  "CMakeFiles/vpdift_rv.dir/csr.cpp.o.d"
  "CMakeFiles/vpdift_rv.dir/decode.cpp.o"
  "CMakeFiles/vpdift_rv.dir/decode.cpp.o.d"
  "CMakeFiles/vpdift_rv.dir/trace.cpp.o"
  "CMakeFiles/vpdift_rv.dir/trace.cpp.o.d"
  "libvpdift_rv.a"
  "libvpdift_rv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpdift_rv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
