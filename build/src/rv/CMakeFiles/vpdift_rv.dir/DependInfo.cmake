
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rv/core.cpp" "src/rv/CMakeFiles/vpdift_rv.dir/core.cpp.o" "gcc" "src/rv/CMakeFiles/vpdift_rv.dir/core.cpp.o.d"
  "/root/repo/src/rv/csr.cpp" "src/rv/CMakeFiles/vpdift_rv.dir/csr.cpp.o" "gcc" "src/rv/CMakeFiles/vpdift_rv.dir/csr.cpp.o.d"
  "/root/repo/src/rv/decode.cpp" "src/rv/CMakeFiles/vpdift_rv.dir/decode.cpp.o" "gcc" "src/rv/CMakeFiles/vpdift_rv.dir/decode.cpp.o.d"
  "/root/repo/src/rv/trace.cpp" "src/rv/CMakeFiles/vpdift_rv.dir/trace.cpp.o" "gcc" "src/rv/CMakeFiles/vpdift_rv.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dift/CMakeFiles/vpdift_dift.dir/DependInfo.cmake"
  "/root/repo/build/src/tlmlite/CMakeFiles/vpdift_tlm.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/vpdift_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/rvasm/CMakeFiles/vpdift_rvasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
