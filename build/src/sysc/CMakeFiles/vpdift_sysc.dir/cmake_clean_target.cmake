file(REMOVE_RECURSE
  "libvpdift_sysc.a"
)
