file(REMOVE_RECURSE
  "CMakeFiles/vpdift_sysc.dir/kernel.cpp.o"
  "CMakeFiles/vpdift_sysc.dir/kernel.cpp.o.d"
  "libvpdift_sysc.a"
  "libvpdift_sysc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpdift_sysc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
