# Empty compiler generated dependencies file for vpdift_sysc.
# This may be replaced when dependencies are built.
