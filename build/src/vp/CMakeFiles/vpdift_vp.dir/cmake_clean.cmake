file(REMOVE_RECURSE
  "CMakeFiles/vpdift_vp.dir/scenarios.cpp.o"
  "CMakeFiles/vpdift_vp.dir/scenarios.cpp.o.d"
  "CMakeFiles/vpdift_vp.dir/vp.cpp.o"
  "CMakeFiles/vpdift_vp.dir/vp.cpp.o.d"
  "libvpdift_vp.a"
  "libvpdift_vp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpdift_vp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
