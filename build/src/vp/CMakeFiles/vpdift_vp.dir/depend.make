# Empty dependencies file for vpdift_vp.
# This may be replaced when dependencies are built.
