file(REMOVE_RECURSE
  "libvpdift_vp.a"
)
