
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vp/scenarios.cpp" "src/vp/CMakeFiles/vpdift_vp.dir/scenarios.cpp.o" "gcc" "src/vp/CMakeFiles/vpdift_vp.dir/scenarios.cpp.o.d"
  "/root/repo/src/vp/vp.cpp" "src/vp/CMakeFiles/vpdift_vp.dir/vp.cpp.o" "gcc" "src/vp/CMakeFiles/vpdift_vp.dir/vp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rv/CMakeFiles/vpdift_rv.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/vpdift_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/dift/CMakeFiles/vpdift_dift.dir/DependInfo.cmake"
  "/root/repo/build/src/tlmlite/CMakeFiles/vpdift_tlm.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/vpdift_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/rvasm/CMakeFiles/vpdift_rvasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
