
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/aes128.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/aes128.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/aes128.cpp.o.d"
  "/root/repo/src/soc/aes_periph.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/aes_periph.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/aes_periph.cpp.o.d"
  "/root/repo/src/soc/can.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/can.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/can.cpp.o.d"
  "/root/repo/src/soc/clint.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/clint.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/clint.cpp.o.d"
  "/root/repo/src/soc/dma.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/dma.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/dma.cpp.o.d"
  "/root/repo/src/soc/gpio.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/gpio.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/gpio.cpp.o.d"
  "/root/repo/src/soc/memory.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/memory.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/memory.cpp.o.d"
  "/root/repo/src/soc/plic.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/plic.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/plic.cpp.o.d"
  "/root/repo/src/soc/sensor.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/sensor.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/sensor.cpp.o.d"
  "/root/repo/src/soc/spiflash.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/spiflash.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/spiflash.cpp.o.d"
  "/root/repo/src/soc/sysctrl.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/sysctrl.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/sysctrl.cpp.o.d"
  "/root/repo/src/soc/uart.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/uart.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/uart.cpp.o.d"
  "/root/repo/src/soc/watchdog.cpp" "src/soc/CMakeFiles/vpdift_soc.dir/watchdog.cpp.o" "gcc" "src/soc/CMakeFiles/vpdift_soc.dir/watchdog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dift/CMakeFiles/vpdift_dift.dir/DependInfo.cmake"
  "/root/repo/build/src/tlmlite/CMakeFiles/vpdift_tlm.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/vpdift_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/rvasm/CMakeFiles/vpdift_rvasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
