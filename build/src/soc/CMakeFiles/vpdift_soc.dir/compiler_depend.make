# Empty compiler generated dependencies file for vpdift_soc.
# This may be replaced when dependencies are built.
