file(REMOVE_RECURSE
  "CMakeFiles/vpdift_soc.dir/aes128.cpp.o"
  "CMakeFiles/vpdift_soc.dir/aes128.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/aes_periph.cpp.o"
  "CMakeFiles/vpdift_soc.dir/aes_periph.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/can.cpp.o"
  "CMakeFiles/vpdift_soc.dir/can.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/clint.cpp.o"
  "CMakeFiles/vpdift_soc.dir/clint.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/dma.cpp.o"
  "CMakeFiles/vpdift_soc.dir/dma.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/gpio.cpp.o"
  "CMakeFiles/vpdift_soc.dir/gpio.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/memory.cpp.o"
  "CMakeFiles/vpdift_soc.dir/memory.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/plic.cpp.o"
  "CMakeFiles/vpdift_soc.dir/plic.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/sensor.cpp.o"
  "CMakeFiles/vpdift_soc.dir/sensor.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/spiflash.cpp.o"
  "CMakeFiles/vpdift_soc.dir/spiflash.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/sysctrl.cpp.o"
  "CMakeFiles/vpdift_soc.dir/sysctrl.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/uart.cpp.o"
  "CMakeFiles/vpdift_soc.dir/uart.cpp.o.d"
  "CMakeFiles/vpdift_soc.dir/watchdog.cpp.o"
  "CMakeFiles/vpdift_soc.dir/watchdog.cpp.o.d"
  "libvpdift_soc.a"
  "libvpdift_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpdift_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
