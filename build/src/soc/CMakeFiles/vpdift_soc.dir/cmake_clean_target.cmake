file(REMOVE_RECURSE
  "libvpdift_soc.a"
)
