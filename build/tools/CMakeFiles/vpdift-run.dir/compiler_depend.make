# Empty compiler generated dependencies file for vpdift-run.
# This may be replaced when dependencies are built.
