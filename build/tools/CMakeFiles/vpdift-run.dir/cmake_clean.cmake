file(REMOVE_RECURSE
  "CMakeFiles/vpdift-run.dir/vpdift_run.cpp.o"
  "CMakeFiles/vpdift-run.dir/vpdift_run.cpp.o.d"
  "vpdift-run"
  "vpdift-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpdift-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
