# Empty dependencies file for policy_file_demo.
# This may be replaced when dependencies are built.
