file(REMOVE_RECURSE
  "CMakeFiles/policy_file_demo.dir/policy_file_demo.cpp.o"
  "CMakeFiles/policy_file_demo.dir/policy_file_demo.cpp.o.d"
  "policy_file_demo"
  "policy_file_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_file_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
