# Empty compiler generated dependencies file for dual_ecu_network.
# This may be replaced when dependencies are built.
