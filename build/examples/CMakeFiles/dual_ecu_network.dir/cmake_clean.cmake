file(REMOVE_RECURSE
  "CMakeFiles/dual_ecu_network.dir/dual_ecu_network.cpp.o"
  "CMakeFiles/dual_ecu_network.dir/dual_ecu_network.cpp.o.d"
  "dual_ecu_network"
  "dual_ecu_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_ecu_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
