# Empty dependencies file for sensor_dma_pipeline.
# This may be replaced when dependencies are built.
