file(REMOVE_RECURSE
  "CMakeFiles/sensor_dma_pipeline.dir/sensor_dma_pipeline.cpp.o"
  "CMakeFiles/sensor_dma_pipeline.dir/sensor_dma_pipeline.cpp.o.d"
  "sensor_dma_pipeline"
  "sensor_dma_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_dma_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
