# Empty dependencies file for immobilizer_demo.
# This may be replaced when dependencies are built.
