file(REMOVE_RECURSE
  "CMakeFiles/immobilizer_demo.dir/immobilizer_demo.cpp.o"
  "CMakeFiles/immobilizer_demo.dir/immobilizer_demo.cpp.o.d"
  "immobilizer_demo"
  "immobilizer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/immobilizer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
