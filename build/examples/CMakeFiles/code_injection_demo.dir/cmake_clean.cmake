file(REMOVE_RECURSE
  "CMakeFiles/code_injection_demo.dir/code_injection_demo.cpp.o"
  "CMakeFiles/code_injection_demo.dir/code_injection_demo.cpp.o.d"
  "code_injection_demo"
  "code_injection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_injection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
