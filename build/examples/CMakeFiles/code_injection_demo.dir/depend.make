# Empty dependencies file for code_injection_demo.
# This may be replaced when dependencies are built.
