# Empty compiler generated dependencies file for micro_dift.
# This may be replaced when dependencies are built.
