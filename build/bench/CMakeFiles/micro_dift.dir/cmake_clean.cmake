file(REMOVE_RECURSE
  "CMakeFiles/micro_dift.dir/micro_dift.cpp.o"
  "CMakeFiles/micro_dift.dir/micro_dift.cpp.o.d"
  "micro_dift"
  "micro_dift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
