file(REMOVE_RECURSE
  "CMakeFiles/ablation_exec_clearance.dir/ablation_exec_clearance.cpp.o"
  "CMakeFiles/ablation_exec_clearance.dir/ablation_exec_clearance.cpp.o.d"
  "ablation_exec_clearance"
  "ablation_exec_clearance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exec_clearance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
