# Empty compiler generated dependencies file for ablation_exec_clearance.
# This may be replaced when dependencies are built.
