# Empty compiler generated dependencies file for casestudy_immobilizer.
# This may be replaced when dependencies are built.
