file(REMOVE_RECURSE
  "CMakeFiles/casestudy_immobilizer.dir/casestudy_immobilizer.cpp.o"
  "CMakeFiles/casestudy_immobilizer.dir/casestudy_immobilizer.cpp.o.d"
  "casestudy_immobilizer"
  "casestudy_immobilizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casestudy_immobilizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
