file(REMOVE_RECURSE
  "CMakeFiles/table1_code_injection.dir/table1_code_injection.cpp.o"
  "CMakeFiles/table1_code_injection.dir/table1_code_injection.cpp.o.d"
  "table1_code_injection"
  "table1_code_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_code_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
