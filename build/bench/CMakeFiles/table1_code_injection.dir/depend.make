# Empty dependencies file for table1_code_injection.
# This may be replaced when dependencies are built.
