# Empty compiler generated dependencies file for fig1_ifp_lattices.
# This may be replaced when dependencies are built.
