file(REMOVE_RECURSE
  "CMakeFiles/fig1_ifp_lattices.dir/fig1_ifp_lattices.cpp.o"
  "CMakeFiles/fig1_ifp_lattices.dir/fig1_ifp_lattices.cpp.o.d"
  "fig1_ifp_lattices"
  "fig1_ifp_lattices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ifp_lattices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
