// TLM-2.0-style generic payload carrying tainted data.
//
// The paper embeds Taint<uint8_t> arrays into TLM generic payloads by
// casting the transaction's char data pointer. We keep the value and tag
// planes as two parallel pointers instead: `data` always points at the raw
// bytes, `tags` points at one dift::Tag per byte — or is nullptr when the
// initiator is the plain (non-DIFT) VP. Peripherals thus serve both the VP
// and the VP+ build from the same transport code.
#pragma once

#include <cstdint>

#include "dift/tag.hpp"

namespace vpdift::tlmlite {

enum class Command : std::uint8_t { kRead, kWrite };

enum class Response : std::uint8_t {
  kOk,
  kAddressError,  ///< no target mapped / offset out of range
  kGenericError,  ///< target rejected the transaction
};

/// One bus transaction. The initiator owns the data/tag buffers.
struct Payload {
  Command command = Command::kRead;
  std::uint64_t address = 0;   ///< bus address; routers rebase to target offset
  std::uint8_t* data = nullptr;
  dift::Tag* tags = nullptr;   ///< nullptr => initiator does not track taint
  std::uint32_t length = 0;
  Response response = Response::kGenericError;

  bool is_read() const { return command == Command::kRead; }
  bool is_write() const { return command == Command::kWrite; }
  bool tainted() const { return tags != nullptr; }
  bool ok() const { return response == Response::kOk; }
};

}  // namespace vpdift::tlmlite
