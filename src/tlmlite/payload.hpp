// TLM-2.0-style generic payload carrying tainted data.
//
// The paper embeds Taint<uint8_t> arrays into TLM generic payloads by
// casting the transaction's char data pointer. We keep the value and tag
// planes as two parallel pointers instead: `data` always points at the raw
// bytes, `tags` points at one dift::Tag per byte — or is nullptr when the
// initiator is the plain (non-DIFT) VP. Peripherals thus serve both the VP
// and the VP+ build from the same transport code.
#pragma once

#include <cstdint>

#include "dift/tag.hpp"

namespace vpdift::tlmlite {

enum class Command : std::uint8_t { kRead, kWrite };

enum class Response : std::uint8_t {
  kOk,
  kAddressError,  ///< no target mapped / offset out of range
  kGenericError,  ///< target rejected the transaction
};

/// One bus transaction. The initiator owns the data/tag buffers.
struct Payload {
  /// tag_summary sentinel: the tag bytes are not known to be uniform.
  static constexpr std::uint16_t kMixedTags = 0xffff;

  Command command = Command::kRead;
  std::uint64_t address = 0;   ///< bus address; routers rebase to target offset
  std::uint8_t* data = nullptr;
  dift::Tag* tags = nullptr;   ///< nullptr => initiator does not track taint
  std::uint32_t length = 0;
  Response response = Response::kGenericError;

  /// Shadow-summary hint (see dift/shadow.hpp): when != kMixedTags, every
  /// byte of `tags` carries this one tag. Targets set it on reads served
  /// from a uniform block; initiators set it on writes whose tag bytes they
  /// filled uniformly (the CPU store path, DMA forwarding a uniform burst).
  /// Whoever sets it vouches that it matches the tag plane — kMixedTags is
  /// always a safe default.
  std::uint16_t tag_summary = kMixedTags;

  bool is_read() const { return command == Command::kRead; }
  bool is_write() const { return command == Command::kWrite; }
  bool tainted() const { return tags != nullptr; }
  bool ok() const { return response == Response::kOk; }
  bool tags_uniform() const { return tag_summary != kMixedTags; }
  void set_tag_summary(dift::Tag t) { tag_summary = t; }
};

/// Fills a register-read payload from a 32-bit register value. Bytes beyond
/// the register's width read as zero — and the shift is clamped accordingly:
/// `v >> (8*i)` with i >= 4 is undefined behaviour on a 32-bit value, which
/// an oversized read (length > 4) would otherwise trigger.
inline void fill_reg_u32(Payload& p, std::uint32_t v,
                         dift::Tag tag = dift::kBottomTag) {
  for (std::uint32_t i = 0; i < p.length; ++i) {
    p.data[i] = i < 4 ? static_cast<std::uint8_t>(v >> (8 * i)) : 0;
    if (p.tainted()) p.tags[i] = tag;
  }
  p.set_tag_summary(tag);
}

/// Collects a 32-bit register value from a write payload, ignoring bytes
/// beyond the register's width (clamped for the same shift-UB reason).
inline std::uint32_t collect_reg_u32(const Payload& p) {
  std::uint32_t v = 0;
  const std::uint32_t n = p.length < 4 ? p.length : 4;
  for (std::uint32_t i = 0; i < n; ++i)
    v |= std::uint32_t(p.data[i]) << (8 * i);
  return v;
}

}  // namespace vpdift::tlmlite
