// Blocking-transport sockets (TLM-2.0 b_transport equivalent).
//
// A TargetSocket is registered with the target's transport function; an
// InitiatorSocket is bound to exactly one TargetSocket. Transport is
// synchronous: the target annotates access latency into `delay` rather than
// suspending (loosely-timed modelling style, as used by riscv-vp).
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "sysc/time.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::tlmlite {

class TargetSocket {
 public:
  using Transport = std::function<void(Payload&, sysc::Time&)>;

  /// Registers the target's transport callback (must be done before use).
  void register_transport(Transport fn) { transport_ = std::move(fn); }

  void b_transport(Payload& p, sysc::Time& delay) {
    if (!transport_) throw std::logic_error("TargetSocket: no transport registered");
    transport_(p, delay);
  }

  bool bound() const { return static_cast<bool>(transport_); }

 private:
  Transport transport_;
};

class InitiatorSocket {
 public:
  void bind(TargetSocket& target) { target_ = &target; }
  bool bound() const { return target_ != nullptr; }

  void b_transport(Payload& p, sysc::Time& delay) {
    if (!target_) throw std::logic_error("InitiatorSocket: unbound");
    target_->b_transport(p, delay);
  }

 private:
  TargetSocket* target_ = nullptr;
};

}  // namespace vpdift::tlmlite
