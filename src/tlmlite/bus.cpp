#include "tlmlite/bus.hpp"

#include <stdexcept>

namespace vpdift::tlmlite {

Bus::Bus(sysc::Simulation& sim, std::string name) : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](Payload& p, sysc::Time& delay) { transport(p, delay); });
}

void Bus::map(std::uint64_t base, std::uint64_t size, TargetSocket& target,
              std::string port_name) {
  if (size == 0) throw std::invalid_argument(name_ + ": empty bus mapping");
  for (const auto& r : ranges_)
    if (base < r.base + r.size && r.base < base + size)
      throw std::invalid_argument(name_ + ": overlapping bus mapping for '" +
                                  port_name + "' and '" + r.port_name + "'");
  ranges_.push_back(Range{base, size, &target, std::move(port_name)});
}

const Bus::Range* Bus::route(std::uint64_t address) const {
  for (const auto& r : ranges_)
    if (r.contains(address)) return &r;
  return nullptr;
}

void Bus::transport(Payload& p, sysc::Time& delay) {
  ++transactions_;
  const Range* r = route(p.address);
  if (r == nullptr || !r->contains(p.address + p.length - 1)) {
    p.response = Response::kAddressError;
    return;
  }
  const std::uint64_t original = p.address;
  p.address -= r->base;
  r->target->b_transport(p, delay);
  p.address = original;
}

std::string Bus::port_at(std::uint64_t address) const {
  const Range* r = route(address);
  return r ? r->port_name : std::string{};
}

}  // namespace vpdift::tlmlite
