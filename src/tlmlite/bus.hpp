// Address-routed interconnect (the VP's TLM bus).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::tlmlite {

/// Routes transactions to target sockets by address range. Transactions are
/// rebased: the target sees an address relative to its mapping base.
class Bus : public sysc::Module {
 public:
  Bus(sysc::Simulation& sim, std::string name);

  /// Maps [base, base+size) to `target`. Ranges must not overlap.
  void map(std::uint64_t base, std::uint64_t size, TargetSocket& target,
           std::string port_name = {});

  /// The socket initiators bind to.
  TargetSocket& target_socket() { return tsock_; }

  /// Direct routing entry point (equivalent to transport through tsock_).
  void transport(Payload& p, sysc::Time& delay);

  /// Number of mapped ranges.
  std::size_t mapping_count() const { return ranges_.size(); }

  /// Resolves the port name covering `address` (diagnostics), or "".
  std::string port_at(std::uint64_t address) const;

  /// Total transactions routed (cumulative; the VP reports per-run deltas).
  std::uint64_t transactions() const { return transactions_; }

 private:
  struct Range {
    std::uint64_t base;
    std::uint64_t size;
    TargetSocket* target;
    std::string port_name;
    bool contains(std::uint64_t a) const { return a - base < size; }
  };
  const Range* route(std::uint64_t address) const;

  TargetSocket tsock_;
  std::vector<Range> ranges_;
  std::uint64_t transactions_ = 0;
};

}  // namespace vpdift::tlmlite
