// Resilience verdicts: how one fault-injection run ended relative to the
// fault-free golden run.
#pragma once

#include <cstdint>

namespace vpdift::fi {

/// Ordered roughly worst-first for reporting. A fault run gets exactly one.
enum class Verdict : std::uint8_t {
  kDetectedByPolicy,       ///< the DIFT policy stopped the corrupted flow
  kDetectedByTrap,         ///< the CPU trapped (firmware trap handler or a
                           ///< fatal trap with no vector installed)
  kWatchdogRecovered,      ///< the watchdog reset the SoC and the firmware
                           ///< then reached the golden exit code
  kSilentDataCorruption,   ///< exited "normally" with wrong output — the
                           ///< outcome every detection mechanism exists to
                           ///< prevent
  kHang,                   ///< never exited (simulated-time budget ran out)
  kCrash,                  ///< the VP itself threw (a model bug, not a
                           ///< firmware outcome)
  kMasked,                 ///< output identical to golden; the fault had no
                           ///< architecturally visible effect
};

const char* to_string(Verdict verdict);
constexpr std::size_t kVerdictCount = 7;

}  // namespace vpdift::fi
