#include "fi/fault.hpp"

#include <cstdio>

namespace vpdift::fi {

const char* to_string(FaultModel model) {
  switch (model) {
    case FaultModel::kGprFlip: return "gpr-flip";
    case FaultModel::kRamFlip: return "ram-flip";
    case FaultModel::kTagCorrupt: return "tag-corrupt";
    case FaultModel::kUartRxDrop: return "uart-rx-drop";
    case FaultModel::kUartRxCorrupt: return "uart-rx-corrupt";
    case FaultModel::kCanErrorFrame: return "can-error-frame";
    case FaultModel::kCanBusOff: return "can-bus-off";
    case FaultModel::kSensorStuck: return "sensor-stuck";
    case FaultModel::kFlashCorrupt: return "flash-corrupt";
    case FaultModel::kIrqSpurious: return "irq-spurious";
    case FaultModel::kIrqSuppress: return "irq-suppress";
  }
  return "?";
}

std::string FaultSpec::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s seed=%llx @instret=%llu @us=%llu reg=x%u bits=%x "
                "off=%llx span=%u irq=%u",
                to_string(model), static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(trigger_instret),
                static_cast<unsigned long long>(trigger_us), reg, bits,
                static_cast<unsigned long long>(offset), span, irq_src);
  return buf;
}

}  // namespace vpdift::fi
