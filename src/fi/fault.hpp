// Fault models for the deterministic fault-injection campaign.
//
// A FaultSpec is a fully-serialisable description of ONE fault: what to
// corrupt, when (in retired instructions for architectural faults, in
// simulated microseconds for peripheral/wire faults), and with which
// deterministic seed. Specs are generated from a master seed by
// fi::build_suite() and applied to a live VP by fi::arm() — the same spec
// always produces the same corruption, which is what makes a campaign
// reproducible across serial and parallel execution.
#pragma once

#include <cstdint>
#include <string>

namespace vpdift::fi {

/// What gets corrupted. Architectural models (GPR/RAM/tag) trigger on a
/// retired-instruction count via rv::Core::arm_fault(); peripheral and IRQ
/// models trigger at a simulated time via sysc::Simulation::schedule_in().
enum class FaultModel : std::uint8_t {
  kGprFlip,       ///< XOR a bit mask into one general-purpose register
  kRamFlip,       ///< XOR a bit mask into one RAM data byte (tag untouched)
  kTagCorrupt,    ///< overwrite the taint tags of a tainted byte run —
                  ///< models a soft error in the DIFT shadow memory itself
  kUartRxDrop,    ///< drop pending UART RX bytes (lost frames on the wire)
  kUartRxCorrupt, ///< XOR pending UART RX bytes (bit errors on the wire)
  kCanErrorFrame, ///< an error frame destroys the head RX mailbox entry
  kCanBusOff,     ///< CAN controller enters bus-off: TX and RX go dead
  kSensorStuck,   ///< sensor data window freezes (interrupts keep firing)
  kFlashCorrupt,  ///< next SPI flash read transactions return flipped bits
  kIrqSpurious,   ///< a PLIC source pends without its peripheral raising it
  kIrqSuppress,   ///< a PLIC source line goes dead (raises are swallowed)
};

const char* to_string(FaultModel model);
constexpr std::size_t kFaultModelCount = 11;

/// One concrete fault. Only the fields relevant to `model` are meaningful;
/// the rest stay zero so equal specs compare (and print) equal.
struct FaultSpec {
  FaultModel model = FaultModel::kGprFlip;
  std::uint64_t seed = 0;             ///< per-fault PRNG seed (tag corruption)
  std::uint64_t trigger_instret = 0;  ///< architectural models: fire when
                                      ///< instret reaches this count
  std::uint64_t trigger_us = 0;       ///< peripheral models: fire at this
                                      ///< simulated time
  std::uint8_t reg = 0;               ///< kGprFlip: x1..x31
  std::uint32_t bits = 0;             ///< flip/XOR mask (model-dependent width)
  std::uint64_t offset = 0;           ///< kRamFlip: RAM offset
  std::uint32_t span = 1;             ///< run length (bytes / frames / reads)
  std::uint32_t irq_src = 0;          ///< kIrqSpurious / kIrqSuppress

  /// Stable one-line description; identical specs describe identically, so
  /// the determinism test can compare schedules as strings.
  std::string describe() const;
};

/// SplitMix64: tiny, fast, and fully deterministic from its seed — the only
/// randomness source of the FI subsystem (never wall clock, never libc rand).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be non-zero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

}  // namespace vpdift::fi
