// Fault-injection campaign suite: golden run, deterministic fault schedule,
// outcome classification, and the detection-coverage matrix.
//
// A suite reference "fi:<benchmark>:<n-faults>" expands to:
//   1. one fault-free golden run of <benchmark> (serial, on the caller's
//      thread) whose exit code / UART output / markers become the oracle,
//   2. <n-faults> fault jobs, each a normal campaign::JobSpec whose
//      pre_run_dift hook arms exactly one FaultSpec (plus a host-armed
//      watchdog so recovery is observable),
//   3. after the campaign ran (serial or --jobs N — the schedule and every
//      verdict are identical either way), classify() maps each JobResult to
//      a resilience Verdict and build_matrix() folds them into the
//      fault-model x verdict detection-coverage matrix.
//
// Determinism: the schedule derives only from (benchmark, n, master seed)
// and the golden run's instruction count / duration — never from the wall
// clock — and fault jobs get simulated-time budgets only (no wall budgets),
// so a loaded host cannot change a verdict.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "fi/fault.hpp"
#include "fi/verdict.hpp"

namespace vpdift::fi {

struct FiSuiteSpec {
  std::string benchmark;      ///< anything campaign::resolve_firmware accepts
  std::size_t n_faults = 0;
  std::uint64_t seed = 1;     ///< master seed for the fault schedule
};

/// Parses "fi:<benchmark>:<n-faults>". The count is taken from the LAST
/// colon-separated field, so benchmarks with colons ("fi:attack:3:40") work.
/// Returns false when `ref` does not start with "fi:" or the count is
/// malformed. The seed is not part of the ref (CLI flag --seed).
bool parse_fi_ref(const std::string& ref, FiSuiteSpec* out);

struct FiSuite {
  FiSuiteSpec spec;
  campaign::JobResult golden;     ///< the fault-free reference run
  std::uint64_t golden_us = 0;    ///< golden simulated duration
  std::uint32_t wdt_us = 0;       ///< watchdog timeout armed in fault runs
  std::vector<FaultSpec> faults;  ///< parallels jobs.jobs, index for index
  campaign::CampaignSpec jobs;    ///< ready for campaign::Runner::run()
};

/// The golden-reference JobSpec for `spec` — exactly what build_suite runs
/// first. Exposed so a caller (the service's golden-run cache) can execute
/// and keep the golden result independently of suite assembly.
campaign::JobSpec golden_job(const FiSuiteSpec& spec);

/// Runs the golden reference (throws std::runtime_error if it crashes) and
/// derives the fault schedule. Same spec in = bit-identical schedule out.
FiSuite build_suite(const FiSuiteSpec& spec);

/// Assembles the suite around an already-available golden result instead of
/// re-running it (the warm path: the service feeds its cached golden back
/// in). With a `golden` produced by running golden_job(spec), the derived
/// schedule and jobs are bit-identical to build_suite(spec). Throws
/// std::runtime_error if `golden` is a crash.
FiSuite suite_from_golden(const FiSuiteSpec& spec, campaign::JobResult golden);

/// Runs the golden reference and assembles campaign jobs for a handcrafted
/// fault list instead of a seed-derived schedule — build_suite's back half.
/// Callers are responsible for keeping trigger_instret within
/// [1, golden instret) and trigger_us within [0, golden_us] if they want the
/// fault to land inside the golden trajectory. spec.n_faults is ignored
/// (faults.size() wins).
FiSuite assemble_suite(const FiSuiteSpec& spec, std::vector<FaultSpec> faults);

/// Classifies one fault run against the golden reference.
Verdict classify(const campaign::JobResult& golden,
                 const campaign::JobResult& r);

/// Detection coverage: counts[fault model][verdict].
struct CoverageMatrix {
  std::array<std::array<std::size_t, kVerdictCount>, kFaultModelCount>
      counts{};
  std::size_t total = 0;

  std::size_t count(FaultModel m, Verdict v) const {
    return counts[static_cast<std::size_t>(m)][static_cast<std::size_t>(v)];
  }
  std::size_t verdict_total(Verdict v) const;
  std::size_t model_total(FaultModel m) const;
};

/// Classifies every result and folds the matrix. `verdicts` (optional)
/// receives the per-job verdict, index for index.
CoverageMatrix build_matrix(const FiSuite& suite,
                            const std::vector<campaign::JobResult>& results,
                            std::vector<Verdict>* verdicts = nullptr);

/// Human-readable fault-model x verdict table.
std::string matrix_table(const CoverageMatrix& m);

/// Machine-readable campaign report: suite parameters, golden reference,
/// per-fault {spec, verdict, run verdict}, and the coverage matrix.
/// `extra`, if non-empty, is raw `"key": value` JSON text spliced in as
/// additional top-level fields at the end of the document (the service uses
/// it for its cache-counter block); it does not perturb any existing field.
std::string matrix_json(const FiSuite& suite,
                        const std::vector<campaign::JobResult>& results,
                        const std::vector<Verdict>& verdicts,
                        std::size_t workers, double wall_s,
                        const std::string& extra = {});

}  // namespace vpdift::fi
