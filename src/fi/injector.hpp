// Arms one FaultSpec on a live (not yet running) virtual prototype.
//
// Architectural faults (GPR / RAM / tag) land on the core's block-boundary
// fault hook: rv::Core::arm_fault() clamps the block-execution budget so the
// fault fires at exactly the requested retired-instruction count, without
// invalidating the translation cache (the affected block merely re-enters
// through a fresh lookup). Peripheral and IRQ faults are scheduled on the
// simulation clock and applied through the peripherals' fi_* hooks.
//
// Everything here is deterministic: the corruption drawn from FaultSpec.seed
// is the same on every run, serial or parallel.
#pragma once

#include <cstdint>

#include "fi/fault.hpp"
#include "vp/vp.hpp"

namespace vpdift::fi {

/// Arms `fault` on `v`. Call after load()/apply_policy()/feed_input() and
/// before run() — the campaign runner's pre_run_dift hook is the intended
/// call site. The spec is copied; nothing must outlive the VP.
void arm(vp::VpDift& v, const FaultSpec& fault);

/// Applies `fault`'s corruption to `v` immediately, instead of arming a
/// trigger. The fork engine's call site: the VP has just been restored from
/// a snapshot captured at the fault's exact trigger point, so applying now
/// is equivalent to the cold run's trigger firing. arm() routes its own
/// trigger callbacks through this function — one mutation path, two clocks.
void apply_now(vp::VpDift& v, const FaultSpec& fault);

/// Programs and enables the watchdog from the host side (LOAD + CTRL writes
/// straight into the register file), so fault campaigns can observe
/// watchdog-recovered outcomes on firmware that never touches the watchdog
/// itself.
void arm_watchdog(vp::VpDift& v, std::uint32_t timeout_us);

}  // namespace vpdift::fi
