#include "fi/fork.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "campaign/thread_pool.hpp"
#include "fi/injector.hpp"

namespace vpdift::fi {

namespace {

bool is_arch(FaultModel m) {
  return m == FaultModel::kGprFlip || m == FaultModel::kRamFlip ||
         m == FaultModel::kTagCorrupt;
}

/// Everything a worker needs to build a VP equivalent to one of the suite's
/// cold fault jobs, minus the fault itself. One template per worker: the
/// resolved policy owns the lattice, which must stay thread-confined.
struct JobTemplate {
  rvasm::Program program;
  std::string uart_input;
  vp::VpConfig cfg;
  campaign::ResolvedPolicy policy;
  std::uint64_t max_ms = 0;
  std::uint32_t wdt_us = 0;
};

JobTemplate make_template(const FiSuite& suite) {
  JobTemplate t;
  t.program = campaign::resolve_firmware(suite.spec.benchmark);
  t.uart_input = campaign::default_uart_input(suite.spec.benchmark);
  if (suite.spec.benchmark == "immobilizer") {
    t.cfg.with_engine_ecu = true;
    t.cfg.engine_pin = campaign::demo_pin();
    t.cfg.engine_period = sysc::Time::ms(1);
  }
  t.policy = campaign::resolve_policy("code-injection", t.program);
  t.max_ms = suite.jobs.jobs.empty() ? 10000 : suite.jobs.jobs.front().max_ms;
  t.wdt_us = suite.wdt_us;
  return t;
}

/// A VP set up exactly like a cold fault job at t=0: image, policy, UART
/// stream, host-armed watchdog. The cursor runs this as-is; tails restore a
/// snapshot over it (which overwrites the UART/watchdog setup with the
/// captured state — the setup only matters for state equality pre-restore).
std::unique_ptr<vp::VpDift> make_vp(const JobTemplate& t) {
  auto v = std::make_unique<vp::VpDift>(t.cfg);
  v->load(t.program);
  if (const auto* p = t.policy.policy()) v->apply_policy(*p);
  if (!t.uart_input.empty()) v->uart().feed_input(t.uart_input);
  arm_watchdog(*v, t.wdt_us);
  return v;
}

/// Runs one fault's tail from `snap` and composes the cold-equivalent
/// JobResult. `tail_executed` receives the instructions the tail actually
/// retired (the fork engine's share of this job's cost).
campaign::JobResult run_tail(const JobTemplate& t, const FiSuite& suite,
                             std::size_t index, const vp::VpSnapshot& snap,
                             std::uint64_t* tail_executed) {
  const campaign::JobSpec& job = suite.jobs.jobs[index];
  campaign::JobResult res;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    auto w = make_vp(t);
    w->restore(snap);
    apply_now(*w, suite.faults[index]);
    // The cold job's deadline is an absolute ms(max_ms); the tail starts at
    // captured_at, so it gets the remainder of that same absolute budget.
    const sysc::Time budget = sysc::Time::ms(job.max_ms);
    res.run = w->run(budget > snap.captured_at ? budget - snap.captured_at
                                               : sysc::Time());
    *tail_executed = res.run.instret;
    // Compose the cold-equivalent instruction count. run() reported the
    // delta from snap.instret; a cold run reports the delta from zero — add
    // the golden prefix back, UNLESS a watchdog reset restarted the counter
    // (then run() already clamped to the cold-equal since-last-reset value,
    // and the identity below does not hold).
    if (w->core().instret() == snap.instret + res.run.instret)
      res.run.instret += snap.instret;
    // Engine counters: golden-prefix cumulative + tail delta = cold total.
    res.run.stats += snap.stats;
    res.verdict = campaign::verdict_of(res.run);
  } catch (const std::exception& e) {
    res = campaign::JobResult{};
    res.verdict = "crash";
    res.error = e.what();
  } catch (...) {
    res = campaign::JobResult{};
    res.verdict = "crash";
    res.error = "non-std exception";
  }
  res.name = job.name;
  res.attempts = 1;
  res.history = {{res.verdict, res.error}};
  res.ok = campaign::verdict_matches(job.expect, res.verdict);
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

/// Site key for the warm-path cache (same grouping the cursor snapshots by).
std::pair<bool, std::uint64_t> site_key(const FaultSpec& f) {
  return {is_arch(f.model),
          is_arch(f.model) ? f.trigger_instret : f.trigger_us};
}

/// One worker: a golden cursor over a contiguous slice of the fault list.
/// `cache` (optional, single-threaded — only the serial subset path passes
/// one) serves already-seen sites without the cursor and absorbs the sites
/// this run visits.
void run_chunk(const FiSuite& suite, const std::vector<std::size_t>& chunk,
               std::vector<campaign::JobResult>& results,
               const std::function<void(const campaign::JobResult&)>& on_done,
               std::mutex& done_m, ForkStats* stats, std::mutex& stats_m,
               const std::atomic<bool>* cancel = nullptr,
               FiSiteCache* cache = nullptr) {
  const auto cancelled = [cancel] {
    return cancel && cancel->load(std::memory_order_relaxed);
  };

  std::vector<bool> visited(suite.faults.size(), false);
  std::size_t snapshots = 0;
  std::uint64_t tail_instret = 0, replay_instret = 0;

  auto emit = [&](std::size_t i, campaign::JobResult r) {
    if (on_done) {
      std::lock_guard lk(done_m);
      on_done(r);
    }
    results[i] = std::move(r);
  };

  // Skipped (cancelled before start): verdict "skipped", on_done NOT called
  // — the same contract as campaign::Runner's cancellation.
  auto skip_one = [&](std::size_t i) {
    campaign::JobResult r;
    r.name = suite.jobs.jobs[i].name;
    r.verdict = "skipped";
    results[i] = std::move(r);
  };

  auto flush_stats = [&](std::uint64_t golden_instret) {
    if (!stats) return;
    std::lock_guard lk(stats_m);
    stats->golden_instret += golden_instret;
    stats->tail_instret += tail_instret;
    stats->replay_instret += replay_instret;
    stats->snapshots += snapshots;
  };

  if (cancelled()) {
    for (std::size_t i : chunk) skip_one(i);
    return;
  }

  const JobTemplate t = make_template(suite);

  // Synthesizes one fault's result from a golden outcome (the cold job whose
  // trigger never fired ran the fault-free trajectory).
  auto emit_golden = [&](std::size_t i, const campaign::JobResult& golden_res) {
    campaign::JobResult r = golden_res;
    r.name = suite.jobs.jobs[i].name;
    r.ok = campaign::verdict_matches(suite.jobs.jobs[i].expect, r.verdict);
    r.history = {{r.verdict, r.error}};
    if (r.verdict != "crash") replay_instret += r.run.instret;
    emit(i, std::move(r));
  };

  // Runs one fault's tail from `snap` and accounts for it.
  auto emit_tail = [&](std::size_t i, const vp::VpSnapshot& snap) {
    std::uint64_t executed = 0;
    campaign::JobResult r = run_tail(t, suite, i, snap, &executed);
    tail_instret += executed;
    replay_instret += r.verdict == "crash" ? 0 : r.run.instret;
    emit(i, std::move(r));
  };

  // Group the chunk's faults by trigger site: one snapshot per site.
  std::map<std::uint64_t, std::vector<std::size_t>> arch_sites;
  std::map<std::uint64_t, std::vector<std::size_t>> time_sites;
  for (std::size_t i : chunk) {
    const FaultSpec& f = suite.faults[i];
    auto& group = is_arch(f.model) ? arch_sites[f.trigger_instret]
                                   : time_sites[f.trigger_us];
    group.push_back(i);
  }

  // Warm path: sites already in the cache replay their tails (or synthesize
  // their unreached result) right away — those never touch the cursor.
  auto serve_cached = [&](bool arch,
                          std::map<std::uint64_t, std::vector<std::size_t>>&
                              sites_map) {
    if (!cache) return;
    for (auto it = sites_map.begin(); it != sites_map.end();) {
      const auto ce = cache->sites.find({arch, it->first});
      const bool usable =
          ce != cache->sites.end() &&
          (ce->second.snap || (ce->second.unreached && cache->have_golden));
      if (!usable) {
        ++cache->misses;
        ++it;
        continue;
      }
      ++cache->hits;
      for (std::size_t i : it->second) {
        visited[i] = true;
        if (cancelled()) {
          skip_one(i);
          continue;
        }
        if (ce->second.unreached)
          emit_golden(i, cache->golden);
        else
          emit_tail(i, *ce->second.snap);
      }
      it = sites_map.erase(it);
    }
  };
  serve_cached(true, arch_sites);
  serve_cached(false, time_sites);

  if (arch_sites.empty() && time_sites.empty()) {
    flush_stats(0);  // fully warm: no cursor ran at all
    return;
  }

  auto cursor = make_vp(t);

  auto process_site = [&](bool arch, std::uint64_t trigger,
                          const std::vector<std::size_t>& faults_here) {
    if (cancelled()) {
      // Skip this site's jobs and wind the cursor down — remaining sites
      // fall through to the skip loop below.
      cursor->sim().stop();
      for (std::size_t i : faults_here) {
        visited[i] = true;
        skip_one(i);
      }
      return;
    }
    auto snap = std::make_shared<const vp::VpSnapshot>(cursor->snapshot());
    ++snapshots;
    if (cache && cache->stored < cache->snapshot_cap) {
      cache->sites[{arch, trigger}] = FiSiteCache::Entry{snap, false};
      ++cache->stored;
    }
    for (std::size_t i : faults_here) {
      visited[i] = true;
      if (cancelled()) {
        skip_one(i);
        continue;
      }
      emit_tail(i, *snap);
    }
  };

  // Chain the architectural sites along the retired-instruction axis: the
  // core disarms before invoking a callback, so each callback arms the next
  // site. Triggers are in [1, golden instret), so every site is reached.
  std::vector<std::pair<std::uint64_t, const std::vector<std::size_t>*>> chain;
  chain.reserve(arch_sites.size());
  for (const auto& [at, group] : arch_sites) chain.push_back({at, &group});
  std::size_t next_arch = 0;
  std::function<void()> arm_next = [&] {
    if (next_arch >= chain.size()) return;
    const auto site = chain[next_arch++];
    cursor->core().arm_fault(
        site.first, [&, site](rv::Core<rv::TaintedWord>&) {
          process_site(true, site.first, *site.second);
          arm_next();
        });
  };
  arm_next();

  // Time sites are scheduled before the run starts, like fi::arm() does for
  // a cold job — setup-time scheduling keeps the same event order at equal
  // timestamps. A site past the firmware's exit simply never fires, exactly
  // as the cold job's fault never fires.
  for (const auto& [us, group] : time_sites) {
    const std::uint64_t trigger = us;
    const std::vector<std::size_t>* site = &group;
    cursor->sim().schedule_in(sysc::Time::us(us), [&, trigger, site] {
      process_site(false, trigger, *site);
    });
  }

  std::string cursor_error;
  vp::RunResult golden;
  try {
    golden = cursor->run(sysc::Time::ms(t.max_ms));
  } catch (const std::exception& e) {
    cursor_error = e.what();
  } catch (...) {
    cursor_error = "non-std exception";
  }

  // Unvisited sites: the cursor ended before the trigger, so the cold job's
  // fault would never have fired — its result IS the golden outcome. (If the
  // run was cancelled mid-cursor, "unvisited" instead means "skipped": the
  // truncated golden is not a valid outcome, and nothing gets cached.)
  campaign::JobResult golden_res;
  golden_res.run = golden;
  golden_res.verdict =
      cursor_error.empty() ? campaign::verdict_of(golden) : "crash";
  golden_res.error = cursor_error;
  golden_res.attempts = 1;
  const bool golden_valid = cursor_error.empty() && !cancelled();
  if (cache && golden_valid && !cache->have_golden) {
    cache->golden = golden_res;
    cache->have_golden = true;
  }
  for (std::size_t i : chunk) {
    if (visited[i]) continue;
    if (cancelled()) {
      skip_one(i);
      continue;
    }
    if (cache && golden_valid) {
      FiSiteCache::Entry& e = cache->sites[site_key(suite.faults[i])];
      if (!e.snap) e.unreached = true;
    }
    emit_golden(i, golden_res);
  }

  flush_stats(golden.instret);
}

}  // namespace

std::vector<campaign::JobResult> run_forked(
    const FiSuite& suite, std::size_t jobs,
    const std::function<void(const campaign::JobResult&)>& on_done,
    ForkStats* stats, const std::atomic<bool>* cancel) {
  const std::size_t n = suite.faults.size();
  if (stats) *stats = ForkStats{};
  std::vector<campaign::JobResult> results(n);
  if (n == 0) return results;

  const std::size_t workers = std::max<std::size_t>(1, std::min(jobs, n));
  std::vector<std::vector<std::size_t>> chunks(workers);
  for (std::size_t i = 0; i < n; ++i) chunks[i * workers / n].push_back(i);

  std::mutex done_m, stats_m;
  if (workers <= 1) {
    run_chunk(suite, chunks[0], results, on_done, done_m, stats, stats_m,
              cancel);
    return results;
  }
  campaign::ThreadPool pool(workers);
  pool.parallel_for(workers, [&](std::size_t c) {
    run_chunk(suite, chunks[c], results, on_done, done_m, stats, stats_m,
              cancel);
  });
  return results;
}

std::vector<campaign::JobResult> run_forked_subset(
    const FiSuite& suite, const std::vector<std::size_t>& indices,
    const std::function<void(const campaign::JobResult&)>& on_done,
    ForkStats* stats, FiSiteCache* cache, const std::atomic<bool>* cancel) {
  if (stats) *stats = ForkStats{};
  std::vector<campaign::JobResult> results(suite.faults.size());

  std::vector<std::size_t> chunk = indices;
  std::sort(chunk.begin(), chunk.end());
  chunk.erase(std::unique(chunk.begin(), chunk.end()), chunk.end());
  if (!chunk.empty() && chunk.back() >= suite.faults.size())
    throw std::invalid_argument("run_forked_subset: index out of range");
  if (chunk.empty()) return results;

  std::mutex done_m, stats_m;
  run_chunk(suite, chunk, results, on_done, done_m, stats, stats_m, cancel,
            cache);
  return results;
}

}  // namespace vpdift::fi
