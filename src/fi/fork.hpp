// Fork-based execution of a fault-injection suite.
//
// The cold (replay) path re-runs the firmware from reset for every fault, so
// a campaign of N faults costs O(N x full run). The fork engine instead runs
// the fault-free golden trajectory ONCE per worker ("the cursor"), snapshots
// the full VP state at each fault site (vp::VpSnapshot: architectural state,
// RAM + tag plane, every peripheral, kernel process phases), and runs only
// the post-fault tail of each job on a fresh VP restored from that snapshot —
// O(golden + sum of tails).
//
// Equivalence contract: for every fault, the composed JobResult (verdict,
// instret, DiftStats, watchdog resets, UART output, markers) is
// bit-identical to what campaign::Runner::run(suite.jobs) would produce for
// the same suite, serial or parallel. The fork-vs-replay tests pin this for
// all fault models.
//
// Mechanics per worker:
//  * architectural sites (GPR/RAM/tag faults) are visited by chaining
//    rv::Core::arm_fault callbacks along the cursor's retired-instruction
//    axis (the core disarms before invoking a callback, so the callback can
//    arm the next site);
//  * time sites (peripheral/IRQ faults) are visited by scheduling callbacks
//    at their trigger times before the cursor starts — the same setup-time
//    scheduling order fi::arm() uses for a cold job;
//  * each visited site takes ONE snapshot (faults sharing a site share it)
//    and runs its tails inline via a nested simulation run;
//  * sites the cursor never reaches (the firmware exited first — exactly the
//    cold runs whose trigger never fires) synthesize their result from the
//    cursor's own outcome.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/runner.hpp"
#include "fi/suite.hpp"

namespace vpdift::fi {

/// Work accounting of one forked campaign — the basis of the reported
/// golden-vs-tail speedup.
struct ForkStats {
  std::uint64_t golden_instret = 0;  ///< retired by the golden cursors
  std::uint64_t tail_instret = 0;    ///< retired by the forked tails
  std::uint64_t replay_instret = 0;  ///< what full replay would have retired
  std::size_t snapshots = 0;         ///< distinct fault sites snapshotted

  std::uint64_t executed() const { return golden_instret + tail_instret; }
  double speedup() const {
    return executed() ? static_cast<double>(replay_instret) /
                            static_cast<double>(executed())
                      : 0.0;
  }
};

/// Executes `suite`'s fault jobs in fork mode on `jobs` workers (<=1 =
/// serial on the calling thread; each worker runs its own golden cursor over
/// a contiguous slice of the fault list). The result vector parallels
/// suite.faults index for index. `on_done` is called as each job finishes
/// (serialized). Never throws per-job — failures become verdict "crash".
std::vector<campaign::JobResult> run_forked(
    const FiSuite& suite, std::size_t jobs,
    const std::function<void(const campaign::JobResult&)>& on_done = {},
    ForkStats* stats = nullptr);

}  // namespace vpdift::fi
