// Fork-based execution of a fault-injection suite.
//
// The cold (replay) path re-runs the firmware from reset for every fault, so
// a campaign of N faults costs O(N x full run). The fork engine instead runs
// the fault-free golden trajectory ONCE per worker ("the cursor"), snapshots
// the full VP state at each fault site (vp::VpSnapshot: architectural state,
// RAM + tag plane, every peripheral, kernel process phases), and runs only
// the post-fault tail of each job on a fresh VP restored from that snapshot —
// O(golden + sum of tails).
//
// Equivalence contract: for every fault, the composed JobResult (verdict,
// instret, DiftStats, watchdog resets, UART output, markers) is
// bit-identical to what campaign::Runner::run(suite.jobs) would produce for
// the same suite, serial or parallel. The fork-vs-replay tests pin this for
// all fault models.
//
// Mechanics per worker:
//  * architectural sites (GPR/RAM/tag faults) are visited by chaining
//    rv::Core::arm_fault callbacks along the cursor's retired-instruction
//    axis (the core disarms before invoking a callback, so the callback can
//    arm the next site);
//  * time sites (peripheral/IRQ faults) are visited by scheduling callbacks
//    at their trigger times before the cursor starts — the same setup-time
//    scheduling order fi::arm() uses for a cold job;
//  * each visited site takes ONE snapshot (faults sharing a site share it)
//    and runs its tails inline via a nested simulation run;
//  * sites the cursor never reaches (the firmware exited first — exactly the
//    cold runs whose trigger never fires) synthesize their result from the
//    cursor's own outcome.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "campaign/runner.hpp"
#include "fi/suite.hpp"
#include "vp/vp.hpp"

namespace vpdift::fi {

/// Work accounting of one forked campaign — the basis of the reported
/// golden-vs-tail speedup.
struct ForkStats {
  std::uint64_t golden_instret = 0;  ///< retired by the golden cursors
  std::uint64_t tail_instret = 0;    ///< retired by the forked tails
  std::uint64_t replay_instret = 0;  ///< what full replay would have retired
  std::size_t snapshots = 0;         ///< distinct fault sites snapshotted

  std::uint64_t executed() const { return golden_instret + tail_instret; }
  double speedup() const {
    return executed() ? static_cast<double>(replay_instret) /
                            static_cast<double>(executed())
                      : 0.0;
  }
};

/// Per-suite cache of fault-site snapshots and the golden cursor outcome —
/// the warm path of a repeated fork campaign. A site already cached replays
/// its tails straight from the stored snapshot (or synthesizes its result
/// from the stored golden outcome for sites the cursor never reached)
/// without running a cursor at all. Single-threaded by design: snapshots
/// are heavyweight (~RAM size each) and the golden JobResult embeds
/// thread-confined provenance, so a cache must only ever be driven from one
/// thread — the serial run_forked_subset path (the service's worker
/// processes each own one per suite).
struct FiSiteCache {
  struct Entry {
    std::shared_ptr<const vp::VpSnapshot> snap;  ///< null when unreached
    bool unreached = false;  ///< cursor exited before this trigger
  };

  /// Site key: (is-architectural, trigger instret-or-us) — the same grouping
  /// the fork engine snapshots by, so faults sharing a site share an entry.
  std::map<std::pair<bool, std::uint64_t>, Entry> sites;
  /// The golden cursor's composed outcome (synthesizes unreached sites).
  campaign::JobResult golden;
  bool have_golden = false;

  /// Stored-snapshot bound: a full-fidelity snapshot is about the size of
  /// the VP's RAM + tag plane, so an unbounded cache would grow by ~8 MB per
  /// distinct site. When full, further sites run cold (deterministically) —
  /// they are simply never stored, not evicted.
  std::size_t snapshot_cap = 64;
  std::size_t stored = 0;   ///< snapshots currently held
  std::uint64_t hits = 0;   ///< sites served from the cache
  std::uint64_t misses = 0; ///< sites that needed the cursor
};

/// Executes `suite`'s fault jobs in fork mode on `jobs` workers (<=1 =
/// serial on the calling thread; each worker runs its own golden cursor over
/// a contiguous slice of the fault list). The result vector parallels
/// suite.faults index for index. `on_done` is called as each job finishes
/// (serialized). Never throws per-job — failures become verdict "crash".
/// `cancel` (optional) requests graceful cancellation: fault sites not yet
/// processed are skipped (verdict "skipped", ok = false, on_done NOT
/// called) while in-flight tails finish normally.
std::vector<campaign::JobResult> run_forked(
    const FiSuite& suite, std::size_t jobs,
    const std::function<void(const campaign::JobResult&)>& on_done = {},
    ForkStats* stats = nullptr, const std::atomic<bool>* cancel = nullptr);

/// Executes only `indices` of `suite`'s fault jobs, serially on the calling
/// thread, consulting (and filling) `cache` when given. The result vector
/// still parallels suite.faults full-size — entries outside `indices` stay
/// default-constructed (empty name). Cold with an empty cache, the filled
/// entries are bit-identical to run_forked / Runner::run for the same
/// faults; warm, the cursor is skipped entirely for cached sites, which is
/// where the service's repeat-submission speedup comes from. Out-of-range
/// indices throw std::invalid_argument; duplicates are processed once.
std::vector<campaign::JobResult> run_forked_subset(
    const FiSuite& suite, const std::vector<std::size_t>& indices,
    const std::function<void(const campaign::JobResult&)>& on_done = {},
    ForkStats* stats = nullptr, FiSiteCache* cache = nullptr,
    const std::atomic<bool>* cancel = nullptr);

}  // namespace vpdift::fi
