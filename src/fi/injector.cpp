#include "fi/injector.hpp"

#include <cstring>

#include "dift/shadow.hpp"
#include "soc/addrmap.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::fi {

namespace {

/// Corrupts a run of taint tags, picked deterministically from the fault's
/// seed and the machine state at the moment the fault fires. Three equally
/// likely sub-modes model the ways shadow-memory soft errors matter:
///
///   pc-local    — tags of the code the core is executing right now (the
///                 shadow words with the hottest access pattern),
///   tag-region  — a contiguous same-tag run somewhere in RAM (a burst
///                 error over one classified object: a key, a payload),
///   random byte — anywhere in the tainted portion of RAM.
///
/// Half of all corruptions drop to kBottomTag — the fail-open direction,
/// where the question is whether the DIFT protection silently disappears —
/// and half jump to an arbitrary lattice class (fail-closed: spurious
/// violations). No tainted bytes at fire time = the fault is masked.
///
/// The corruption goes through the coherence contract — plane write, then
/// on_store() — so the engine's fetch memo and summary fast paths observe
/// the corrupted tags exactly like DIFT hardware would observe a real
/// shadow-memory bit error. The shadow summary also keeps the scans cheap:
/// blocks summarised as uniform kBottomTag (summary 0) are skipped.
void corrupt_tags(vp::VpDift& v, const FaultSpec& f, std::uint32_t pc) {
  soc::Memory& mem = v.ram();
  dift::Tag* tags = mem.tags();
  if (!tags) return;
  const dift::ShadowSummary& sh = mem.shadow();
  constexpr std::size_t kBlock = dift::ShadowSummary::kBlockBytes;

  Rng rng(f.seed);
  const std::size_t classes =
      v.policy() ? v.policy()->lattice().size() : std::size_t(2);
  const std::uint64_t mode = rng.below(3);
  // Drawn up front so every mode consumes the same rng stream length.
  const std::size_t span_draw = std::size_t(1) << rng.below(7);  // 1..64
  const dift::Tag nt = (rng.next() & 1)
                           ? dift::kBottomTag
                           : static_cast<dift::Tag>(rng.below(classes));

  auto apply = [&](std::size_t start, std::size_t len) {
    if (start >= mem.size() || len == 0) return;
    len = std::min(len, mem.size() - start);
    for (std::size_t i = start; i < start + len; ++i) tags[i] = nt;
    mem.shadow().on_store(start, len, nt);
  };

  if (mode == 0) {
    // pc-local: corrupt the shadow of the code being executed.
    const std::uint64_t base = soc::addrmap::kRamBase;
    if (pc >= base && pc - base < mem.size()) apply(pc - base, span_draw);
    return;
  }

  if (mode == 1) {
    // tag-region: pick one of the distinct non-bottom tag values present,
    // then a random byte carrying it, then wipe its contiguous same-tag run.
    bool present[256] = {};
    std::size_t per_tag[256] = {};
    for (std::size_t b = 0; b < sh.block_count(); ++b) {
      if (sh.block_summary(b) == 0) continue;
      const std::size_t end = std::min((b + 1) * kBlock, mem.size());
      for (std::size_t i = b * kBlock; i < end; ++i)
        if (tags[i] != dift::kBottomTag) {
          present[tags[i]] = true;
          ++per_tag[tags[i]];
        }
    }
    std::size_t distinct = 0;
    for (bool p : present) distinct += p;
    if (distinct == 0) return;
    std::uint64_t pick = rng.below(distinct);
    dift::Tag t = dift::kBottomTag;
    for (std::size_t i = 0; i < 256; ++i)
      if (present[i] && pick-- == 0) { t = static_cast<dift::Tag>(i); break; }
    std::size_t k = rng.below(per_tag[t]);
    std::size_t hit = 0;
    bool found = false;
    for (std::size_t b = 0; b < sh.block_count() && !found; ++b) {
      if (sh.block_summary(b) == 0) continue;
      const std::size_t end = std::min((b + 1) * kBlock, mem.size());
      for (std::size_t i = b * kBlock; i < end; ++i) {
        if (tags[i] != t) continue;
        if (k == 0) { hit = i; found = true; break; }
        --k;
      }
    }
    if (!found) return;
    std::size_t lo = hit, hi = hit + 1;
    while (lo > 0 && hit - (lo - 1) < 256 && tags[lo - 1] == t) --lo;
    while (hi < mem.size() && hi - lo < 256 && tags[hi] == t) ++hi;
    apply(lo, hi - lo);
    return;
  }

  // random byte: anywhere tainted, a short span.
  std::size_t tainted = 0;
  for (std::size_t b = 0; b < sh.block_count(); ++b) {
    if (sh.block_summary(b) == 0) continue;
    const std::size_t end = std::min((b + 1) * kBlock, mem.size());
    for (std::size_t i = b * kBlock; i < end; ++i)
      if (tags[i] != dift::kBottomTag) ++tainted;
  }
  if (tainted == 0) return;
  std::size_t k = rng.below(tainted);
  for (std::size_t b = 0; b < sh.block_count(); ++b) {
    if (sh.block_summary(b) == 0) continue;
    const std::size_t end = std::min((b + 1) * kBlock, mem.size());
    for (std::size_t i = b * kBlock; i < end; ++i) {
      if (tags[i] == dift::kBottomTag) continue;
      if (k == 0) { apply(i, span_draw); return; }
      --k;
    }
  }
}

}  // namespace

void apply_now(vp::VpDift& v, const FaultSpec& f) {
  switch (f.model) {
    case FaultModel::kGprFlip: {
      if (f.reg == 0) break;  // x0 is hardwired
      using Ops = rv::WordOps<rv::TaintedWord>;
      rv::Core<rv::TaintedWord>& c = v.core();
      const auto w = c.reg(f.reg & 31);
      c.set_reg(f.reg & 31, Ops::make(Ops::value(w) ^ f.bits, Ops::tag(w)));
      break;
    }
    case FaultModel::kRamFlip:
      if (f.offset < v.ram().size())
        v.ram().data()[f.offset] ^= static_cast<std::uint8_t>(f.bits);
      break;
    case FaultModel::kTagCorrupt:
      corrupt_tags(v, f, v.core().pc());
      break;
    case FaultModel::kUartRxDrop:
      v.uart().fi_drop_rx(f.span);
      break;
    case FaultModel::kUartRxCorrupt:
      v.uart().fi_corrupt_rx(f.span, static_cast<std::uint8_t>(f.bits));
      break;
    case FaultModel::kCanErrorFrame:
      v.can().fi_drop_rx_frame();
      break;
    case FaultModel::kCanBusOff:
      v.can().fi_set_bus_off(true);
      break;
    case FaultModel::kSensorStuck:
      v.sensor().fi_set_stuck(true);
      break;
    case FaultModel::kFlashCorrupt:
      if (v.flash())
        v.flash()->fi_corrupt_reads(f.span, static_cast<std::uint8_t>(f.bits));
      break;
    case FaultModel::kIrqSpurious:
      v.plic().raise(f.irq_src & 31);
      break;
    case FaultModel::kIrqSuppress:
      v.plic().fi_set_suppressed(1u << (f.irq_src & 31));
      break;
  }
}

void arm(vp::VpDift& v, const FaultSpec& fault) {
  vp::VpDift* vp = &v;
  const FaultSpec f = fault;
  switch (f.model) {
    case FaultModel::kGprFlip:
    case FaultModel::kRamFlip:
    case FaultModel::kTagCorrupt:
      // Architectural faults: block-boundary hook at the exact retired-
      // instruction count. The callback's machine state is what apply_now
      // mutates — identical to the fork engine applying after a restore of
      // a snapshot captured at the same point.
      v.core().arm_fault(f.trigger_instret,
                         [vp, f](rv::Core<rv::TaintedWord>&) { apply_now(*vp, f); });
      break;
    default:
      // Peripheral/IRQ faults: fire at the simulated-time trigger.
      vp->sim().schedule_in(sysc::Time::us(f.trigger_us),
                            [vp, f] { apply_now(*vp, f); });
      break;
  }
}

void arm_watchdog(vp::VpDift& v, std::uint32_t timeout_us) {
  auto write32 = [&v](std::uint64_t reg, std::uint32_t value) {
    std::uint8_t buf[4];
    std::memcpy(buf, &value, 4);
    tlmlite::Payload p;
    p.command = tlmlite::Command::kWrite;
    p.address = reg;
    p.data = buf;
    p.length = 4;
    sysc::Time d;
    v.watchdog().socket().b_transport(p, d);
  };
  write32(soc::Watchdog::kLoad, timeout_us);
  write32(soc::Watchdog::kCtrl, 1);
}

}  // namespace vpdift::fi
