#include "fi/suite.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "campaign/aggregator.hpp"  // json_escape
#include "fi/injector.hpp"
#include "soc/addrmap.hpp"

namespace vpdift::fi {

namespace {

/// Fault-model mix per 100 faults. Tag corruption is deliberately the
/// largest share — it is the model the DIFT angle of this campaign exists
/// to study (does the protection fail open or fail closed when its own
/// shadow state takes a hit?).
struct ModelWeight {
  FaultModel model;
  unsigned weight;
};
constexpr ModelWeight kMix[] = {
    {FaultModel::kGprFlip, 18},       {FaultModel::kRamFlip, 14},
    {FaultModel::kTagCorrupt, 30},    {FaultModel::kUartRxDrop, 5},
    {FaultModel::kUartRxCorrupt, 5},  {FaultModel::kCanErrorFrame, 3},
    {FaultModel::kCanBusOff, 3},      {FaultModel::kSensorStuck, 4},
    {FaultModel::kFlashCorrupt, 3},   {FaultModel::kIrqSpurious, 7},
    {FaultModel::kIrqSuppress, 8},
};
constexpr unsigned kMixTotal = 100;

FaultModel pick_model(Rng& rng) {
  unsigned roll = static_cast<unsigned>(rng.below(kMixTotal));
  for (const auto& mw : kMix) {
    if (roll < mw.weight) return mw.model;
    roll -= mw.weight;
  }
  return FaultModel::kGprFlip;  // unreachable
}

std::uint32_t pick_irq_src(Rng& rng) {
  constexpr std::uint32_t srcs[] = {soc::addrmap::kIrqSensor,
                                    soc::addrmap::kIrqUartRx,
                                    soc::addrmap::kIrqDma,
                                    soc::addrmap::kIrqCanRx};
  return srcs[rng.below(4)];
}

}  // namespace

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kDetectedByPolicy: return "detected-by-policy";
    case Verdict::kDetectedByTrap: return "detected-by-trap";
    case Verdict::kWatchdogRecovered: return "watchdog-recovered";
    case Verdict::kSilentDataCorruption: return "silent-data-corruption";
    case Verdict::kHang: return "hang";
    case Verdict::kCrash: return "crash";
    case Verdict::kMasked: return "masked";
  }
  return "?";
}

bool parse_fi_ref(const std::string& ref, FiSuiteSpec* out) {
  if (ref.rfind("fi:", 0) != 0) return false;
  const std::string body = ref.substr(3);
  const std::size_t colon = body.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  std::uint64_t n = 0;
  if (!campaign::parse_u64(body.substr(colon + 1), &n) || n == 0) return false;
  out->benchmark = body.substr(0, colon);
  out->n_faults = static_cast<std::size_t>(n);
  return true;
}

namespace {

/// The shared JobSpec skeleton of the golden run and every fault job.
campaign::JobSpec base_job(const FiSuiteSpec& spec) {
  campaign::JobSpec base;
  base.firmware = spec.benchmark;
  base.policy = "code-injection";
  base.mode = campaign::VpMode::kDift;
  base.engine_ecu = spec.benchmark == "immobilizer";
  base.max_ms = 10000;
  base.retries = 0;
  return base;
}

/// Derives the budgets from an already-run golden result — shared by the
/// run-it-here path (make_golden) and the cached-golden path
/// (suite_from_golden). Throws if the golden crashed.
void derive_budgets(FiSuite& s) {
  if (s.golden.verdict == "crash")
    throw std::runtime_error("fi golden run crashed: " + s.golden.error);
  s.golden_us = std::max<std::uint64_t>(s.golden.run.sim_time.micros(), 1);
  s.wdt_us = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(3 * s.golden_us + 1000, ~std::uint32_t(0)));
}

/// Runs the golden reference and fills in the derived budgets — the part of
/// suite construction that is independent of where the faults come from.
FiSuite make_golden(const FiSuiteSpec& spec) {
  FiSuite s;
  s.spec = spec;
  s.golden = campaign::Runner::run_job(golden_job(spec));
  derive_budgets(s);
  return s;
}

/// Simulated-time budget per fault job: the watchdog may bite once and the
/// firmware re-run from reset a few times before we call it a hang.
std::uint64_t fault_budget_ms(const FiSuite& s) {
  return (s.wdt_us + 4 * s.golden_us) / 1000 + 20;
}

/// Turns a fault list into campaign jobs on `s` (replay path: each job's
/// pre_run_dift hook arms the watchdog and the one fault).
void add_fault_jobs(FiSuite& s, std::vector<FaultSpec> faults) {
  const campaign::JobSpec base = base_job(s.spec);
  const std::uint64_t max_ms = fault_budget_ms(s);
  s.jobs.name = "fi:" + s.spec.benchmark;
  s.faults = std::move(faults);
  s.jobs.jobs.reserve(s.faults.size());
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    const FaultSpec& f = s.faults[i];
    campaign::JobSpec j = base;
    char name[64];
    std::snprintf(name, sizeof name, "fi%04zu:%s", i, to_string(f.model));
    j.name = name;
    j.max_ms = max_ms;
    const FaultSpec fc = f;
    const std::uint32_t wdt_us = s.wdt_us;
    j.pre_run_dift = [fc, wdt_us](vp::VpDift& v) {
      arm_watchdog(v, wdt_us);
      arm(v, fc);
    };
    s.jobs.jobs.push_back(std::move(j));
  }
}

/// The seed-derived fault schedule for a suite whose golden budgets are
/// already in place. Deterministic: depends only on (benchmark, n, seed)
/// and the golden run's instret / duration.
std::vector<FaultSpec> derive_schedule(const FiSuite& s) {
  const FiSuiteSpec& spec = s.spec;

  // Image extent (throws early on an unknown benchmark). RAM bit flips
  // target the heap window past the image and the stack page, never the
  // text/data image itself — code corruption is a different experiment and
  // would churn the translation cache this campaign asserts is untouched.
  const rvasm::Program program = campaign::resolve_firmware(spec.benchmark);
  std::uint64_t image_end = 0;
  for (const auto& seg : program.segments)
    image_end = std::max(image_end, seg.end());
  const std::uint64_t ram_size = vp::VpConfig{}.ram_size;
  std::uint64_t heap_off = image_end > soc::addrmap::kRamBase
                               ? image_end - soc::addrmap::kRamBase
                               : 0;
  heap_off = std::min<std::uint64_t>(heap_off, ram_size - 1);
  const std::uint64_t heap_len =
      std::min<std::uint64_t>(64 * 1024, ram_size - heap_off);
  const std::uint64_t stack_off = ram_size - 4096;

  const std::uint64_t instret = std::max<std::uint64_t>(s.golden.run.instret, 2);

  Rng rng(spec.seed);
  std::vector<FaultSpec> faults;
  faults.reserve(spec.n_faults);
  for (std::size_t i = 0; i < spec.n_faults; ++i) {
    FaultSpec f;
    f.model = pick_model(rng);
    f.seed = rng.next();
    f.trigger_instret = 1 + rng.below(instret - 1);
    f.trigger_us = rng.below(s.golden_us + 1);
    switch (f.model) {
      case FaultModel::kGprFlip:
        f.reg = static_cast<std::uint8_t>(1 + rng.below(31));
        f.bits = 1u << rng.below(32);
        if (rng.below(4) == 0) f.bits |= 1u << rng.below(32);  // double flip
        break;
      case FaultModel::kRamFlip:
        f.bits = 1u << rng.below(8);
        if (rng.below(4) == 0) f.bits |= 1u << rng.below(8);
        f.offset = (rng.next() & 1) ? heap_off + rng.below(heap_len)
                                    : stack_off + rng.below(4096);
        break;
      case FaultModel::kTagCorrupt:
        break;  // everything derives from f.seed at fire time
      case FaultModel::kUartRxDrop:
        f.span = static_cast<std::uint32_t>(1 + rng.below(4));
        break;
      case FaultModel::kUartRxCorrupt:
        f.span = static_cast<std::uint32_t>(1 + rng.below(4));
        f.bits = 1u << rng.below(8);
        break;
      case FaultModel::kCanErrorFrame:
      case FaultModel::kCanBusOff:
      case FaultModel::kSensorStuck:
        break;
      case FaultModel::kFlashCorrupt:
        f.span = static_cast<std::uint32_t>(1 + rng.below(8));
        f.bits = 1u << rng.below(8);
        break;
      case FaultModel::kIrqSpurious:
      case FaultModel::kIrqSuppress:
        f.irq_src = pick_irq_src(rng);
        break;
    }
    faults.push_back(f);
  }
  return faults;
}

}  // namespace

campaign::JobSpec golden_job(const FiSuiteSpec& spec) {
  campaign::JobSpec j = base_job(spec);
  j.name = "golden:" + spec.benchmark;
  return j;
}

FiSuite assemble_suite(const FiSuiteSpec& spec, std::vector<FaultSpec> faults) {
  FiSuite s = make_golden(spec);
  s.spec.n_faults = faults.size();
  add_fault_jobs(s, std::move(faults));
  return s;
}

FiSuite build_suite(const FiSuiteSpec& spec) {
  FiSuite s = make_golden(spec);
  add_fault_jobs(s, derive_schedule(s));
  return s;
}

FiSuite suite_from_golden(const FiSuiteSpec& spec,
                          campaign::JobResult golden) {
  FiSuite s;
  s.spec = spec;
  s.golden = std::move(golden);
  derive_budgets(s);
  add_fault_jobs(s, derive_schedule(s));
  return s;
}

Verdict classify(const campaign::JobResult& golden,
                 const campaign::JobResult& r) {
  if (r.verdict == "crash") return Verdict::kCrash;
  if (r.run.violation()) {
    // A golden run that is itself a violation (attack benchmarks under the
    // code-injection policy): the same violation again means the fault did
    // not defeat the protection.
    if (golden.run.violation() && r.verdict == golden.verdict)
      return Verdict::kMasked;
    return Verdict::kDetectedByPolicy;
  }
  if (r.run.reason == vp::ExitReason::kTrap) return Verdict::kDetectedByTrap;
  if (!r.run.exited()) return Verdict::kHang;

  // Exited. The crt0 default trap handler logs marker 'T' and exits 0xff —
  // that is detection, unless the golden run ends the same way.
  const bool golden_trapped =
      golden.run.exited() && golden.run.exit_code == 0xffu &&
      golden.run.markers.find('T') != std::string::npos;
  if (!golden_trapped && r.run.exit_code == 0xffu &&
      r.run.markers.find('T') != std::string::npos)
    return Verdict::kDetectedByTrap;

  const bool exit_match =
      golden.run.exited() && r.run.exit_code == golden.run.exit_code;
  const bool output_match = exit_match &&
                            r.run.uart_output == golden.run.uart_output &&
                            r.run.markers == golden.run.markers;
  if (output_match)
    return r.run.watchdog_resets > 0 ? Verdict::kWatchdogRecovered
                                     : Verdict::kMasked;
  // A reset replays the firmware, so UART output duplicates — reaching the
  // golden exit code after a reset still counts as recovered.
  if (exit_match && r.run.watchdog_resets > 0)
    return Verdict::kWatchdogRecovered;
  return Verdict::kSilentDataCorruption;
}

std::size_t CoverageMatrix::verdict_total(Verdict v) const {
  std::size_t n = 0;
  for (const auto& row : counts) n += row[static_cast<std::size_t>(v)];
  return n;
}

std::size_t CoverageMatrix::model_total(FaultModel m) const {
  std::size_t n = 0;
  for (std::size_t v = 0; v < kVerdictCount; ++v)
    n += counts[static_cast<std::size_t>(m)][v];
  return n;
}

CoverageMatrix build_matrix(const FiSuite& suite,
                            const std::vector<campaign::JobResult>& results,
                            std::vector<Verdict>* verdicts) {
  if (results.size() != suite.faults.size())
    throw std::invalid_argument("fi matrix: results/faults size mismatch");
  CoverageMatrix m;
  if (verdicts) verdicts->clear();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Verdict v = classify(suite.golden, results[i]);
    ++m.counts[static_cast<std::size_t>(suite.faults[i].model)]
              [static_cast<std::size_t>(v)];
    ++m.total;
    if (verdicts) verdicts->push_back(v);
  }
  return m;
}

std::string matrix_table(const CoverageMatrix& m) {
  // Short column heads keep the table inside 100 columns.
  static const char* kHeads[kVerdictCount] = {
      "policy", "trap", "wdog", "sdc", "hang", "crash", "masked"};
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof line, "%-16s %7s %7s %7s %7s %7s %7s %7s %7s\n",
                "fault model", kHeads[0], kHeads[1], kHeads[2], kHeads[3],
                kHeads[4], kHeads[5], kHeads[6], "total");
  out << line;
  for (std::size_t mi = 0; mi < kFaultModelCount; ++mi) {
    const FaultModel model = static_cast<FaultModel>(mi);
    if (m.model_total(model) == 0) continue;
    std::snprintf(line, sizeof line,
                  "%-16s %7zu %7zu %7zu %7zu %7zu %7zu %7zu %7zu\n",
                  to_string(model), m.counts[mi][0], m.counts[mi][1],
                  m.counts[mi][2], m.counts[mi][3], m.counts[mi][4],
                  m.counts[mi][5], m.counts[mi][6], m.model_total(model));
    out << line;
  }
  std::snprintf(line, sizeof line,
                "%-16s %7zu %7zu %7zu %7zu %7zu %7zu %7zu %7zu\n", "total",
                m.verdict_total(Verdict::kDetectedByPolicy),
                m.verdict_total(Verdict::kDetectedByTrap),
                m.verdict_total(Verdict::kWatchdogRecovered),
                m.verdict_total(Verdict::kSilentDataCorruption),
                m.verdict_total(Verdict::kHang),
                m.verdict_total(Verdict::kCrash),
                m.verdict_total(Verdict::kMasked), m.total);
  out << line;
  return out.str();
}

std::string matrix_json(const FiSuite& suite,
                        const std::vector<campaign::JobResult>& results,
                        const std::vector<Verdict>& verdicts,
                        std::size_t workers, double wall_s,
                        const std::string& extra) {
  std::ostringstream out;
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\n  \"suite\": \"fi:%s:%zu\",\n  \"benchmark\": \"%s\",\n"
      "  \"seed\": %llu,\n  \"workers\": %zu,\n  \"wall_s\": %.4f,\n"
      "  \"golden\": {\"verdict\": \"%s\", \"exit_code\": %u,\n"
      "    \"instret\": %llu, \"sim_us\": %llu},\n  \"wdt_us\": %u,\n",
      campaign::json_escape(suite.spec.benchmark).c_str(),
      suite.spec.n_faults,
      campaign::json_escape(suite.spec.benchmark).c_str(),
      static_cast<unsigned long long>(suite.spec.seed), workers, wall_s,
      campaign::json_escape(suite.golden.verdict).c_str(),
      suite.golden.run.exit_code,
      static_cast<unsigned long long>(suite.golden.run.instret),
      static_cast<unsigned long long>(suite.golden_us), suite.wdt_us);
  out << buf;

  const CoverageMatrix m = build_matrix(suite, results);
  out << "  \"matrix\": {\n";
  bool first_row = true;
  for (std::size_t mi = 0; mi < kFaultModelCount; ++mi) {
    const FaultModel model = static_cast<FaultModel>(mi);
    if (m.model_total(model) == 0) continue;
    out << (first_row ? "" : ",\n") << "    \"" << to_string(model)
        << "\": {";
    first_row = false;
    bool first_cell = true;
    for (std::size_t v = 0; v < kVerdictCount; ++v) {
      if (m.counts[mi][v] == 0) continue;
      out << (first_cell ? "" : ", ") << "\""
          << to_string(static_cast<Verdict>(v)) << "\": " << m.counts[mi][v];
      first_cell = false;
    }
    out << "}";
  }
  out << "\n  },\n  \"verdict_totals\": {";
  for (std::size_t v = 0; v < kVerdictCount; ++v)
    out << (v ? ", " : "") << "\"" << to_string(static_cast<Verdict>(v))
        << "\": " << m.verdict_total(static_cast<Verdict>(v));
  out << "},\n  \"faults\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"name\":\"%s\",\"model\":\"%s\",\"verdict\":\"%s\","
                  "\"run_verdict\":\"%s\",\"watchdog_resets\":%u,"
                  "\"spec\":\"%s\"}%s\n",
                  campaign::json_escape(results[i].name).c_str(),
                  to_string(suite.faults[i].model),
                  to_string(verdicts[i]),
                  campaign::json_escape(results[i].verdict).c_str(),
                  results[i].run.watchdog_resets,
                  campaign::json_escape(suite.faults[i].describe()).c_str(),
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  if (extra.empty())
    out << "  ]\n}\n";
  else
    out << "  ],\n  " << extra << "\n}\n";
  return out.str();
}

}  // namespace vpdift::fi
