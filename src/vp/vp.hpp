// The virtual prototype: CPU + bus + peripherals, assembled and runnable.
//
// VirtualPrototype<rv::PlainWord> is the original VP of the paper's Table II;
// VirtualPrototype<rv::TaintedWord> is the VP+ with the DIFT engine. Both are
// built from the same peripheral models (the payload's tag pointer is simply
// null in the plain build) — mirroring how the paper patches one code base.
//
// Typical use:
//   vp::Vp plain;                         // or vp::VpDift tainted;
//   plain.load(program);
//   auto result = plain.run(sysc::Time::sec(10));
//
// DIFT use adds a policy (and the lattice must outlive the run):
//   vp::VpDift v;
//   v.load(program);
//   v.apply_policy(policy);
//   auto result = v.run(sysc::Time::sec(10));
//   if (result.violation()) ... result.violation_kind / message ...
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "dift/context.hpp"
#include "dift/policy.hpp"
#include "dift/stats.hpp"
#include "rv/core.hpp"
#include "rvasm/program.hpp"
#include "soc/addrmap.hpp"
#include "soc/aes_periph.hpp"
#include "soc/can.hpp"
#include "soc/clint.hpp"
#include "soc/dma.hpp"
#include "soc/gpio.hpp"
#include "soc/memory.hpp"
#include "soc/spiflash.hpp"
#include "soc/watchdog.hpp"
#include "soc/plic.hpp"
#include "soc/sensor.hpp"
#include "soc/sysctrl.hpp"
#include "soc/uart.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/bus.hpp"

namespace vpdift::vp {

/// Why a VP run ended. Exactly one reason per run — the old overlapping
/// `exited` / `timed_out` / `violation` booleans survive as derived
/// accessors on RunResult.
enum class ExitReason : std::uint8_t {
  kSimTimeout,     ///< the simulated-time budget ran out
  kExit,           ///< firmware wrote the EXIT register
  kViolation,      ///< the DIFT engine stopped the run (enforcement mode)
  kWallTimeout,    ///< a wall-clock guard stopped the simulation
  kWatchdogReset,  ///< budget ran out while the watchdog was reset-cycling
  kTrap,           ///< fatal trap: the core trapped with a null trap vector
  /// A decoded result carried a reason this build does not know (a newer
  /// peer on the wire). Never produced by a local run; the raw name
  /// survives in RunResult::reason_raw so the round trip is lossless.
  kUnknown,
};
const char* to_string(ExitReason reason);

/// Outcome of one VP run.
struct RunResult {
  ExitReason reason = ExitReason::kSimTimeout;
  /// The verbatim reason string a decode could not map (reason == kUnknown
  /// only); empty for every locally produced result.
  std::string reason_raw;
  std::uint32_t exit_code = 0;
  /// Watchdog resets fired during this run (RAM survives each one).
  std::uint32_t watchdog_resets = 0;

  // Derived views of `reason`, kept for the historical three-bool API.
  bool exited() const { return reason == ExitReason::kExit; }
  bool violation() const { return reason == ExitReason::kViolation; }
  bool timed_out() const { return !exited() && !violation(); }

  dift::ViolationKind violation_kind{};
  dift::Tag violation_source = 0;
  dift::Tag violation_required = 0;
  std::uint64_t violation_pc = 0;
  std::string violation_where;
  std::string violation_message;

  /// Violations captured in monitor mode (empty in enforcement mode).
  std::vector<dift::ViolationRecord> recorded_violations;

  /// Formatted tail of the execution trace at the moment a violation fired
  /// (only when tracing was enabled via enable_trace()).
  std::string trace_dump;

  std::uint64_t instret = 0;      ///< executed instructions
  double wall_seconds = 0.0;      ///< host wall-clock time of the run
  double mips = 0.0;              ///< instret / wall_seconds / 1e6
  sysc::Time sim_time;            ///< simulated time consumed
  std::string uart_output;        ///< everything the firmware printed
  std::string markers;            ///< SysCtrl marker log (attack oracles)

  /// DIFT engine counters for this run (all zero in the plain VP build).
  dift::DiftStats stats;
};

struct VpConfig {
  std::size_t ram_size = 4u << 20;
  std::uint64_t quantum_instructions = 8192;
  sysc::Time instruction_period = sysc::Time::ns(10);  // 100 MHz
  sysc::Time sensor_period = sysc::Time::ms(25);
  bool with_engine_ecu = false;
  soc::AesKey engine_pin{};
  sysc::Time engine_period = sysc::Time::ms(10);
  /// Non-empty: map an XIP SPI flash with this image at addrmap::kFlashBase.
  std::vector<std::uint8_t> flash_image;
  dift::Tag flash_tag = dift::kBottomTag;
};

/// True iff two configs produce structurally identical VPs — the test a
/// warm-VP pool uses to decide between re-arming (reset + load_firmware)
/// and rebuilding. Field-by-field equality, including the flash image.
bool config_equivalent(const VpConfig& a, const VpConfig& b);

/// Full-fidelity VP checkpoint: architectural CPU state, RAM (with tag
/// plane), every peripheral's internal state, and the scheduling phase of
/// each kernel process (CPU quantum progress, pending wake times).
///
/// Contract:
///  * snapshot() may be taken at any point — pre-start, between runs, or
///    from inside a running simulation (e.g. an arm_fault callback or a
///    scheduled time callback). The capture is synchronous and complete.
///  * restore() onto a FRESH VP (constructed, load()ed, not yet started)
///    rewinds the target's simulation clock to `captured_at` and re-arms
///    every peripheral process so the continuation is equivalent to the
///    source simply having kept running — the basis of fork-based fault
///    campaigns.
///  * restore() onto a STARTED VP keeps the legacy in-place semantics:
///    architectural state (registers, pc, CSRs, counters, RAM, tags) is
///    restored, the translated-block cache is invalidated, and any armed
///    fault is cleared; simulated time and peripheral processes are left
///    alone. Use a fresh VP for faithful re-execution.
///  * An armed-but-unfired rv::Core::arm_fault trigger is never inherited:
///    `fault_was_armed`/`fault_trigger` record that one existed (the
///    callback itself is not serialisable) and restore() disarms.
///
/// The struct is deliberately not a template: a plain-VP snapshot has an
/// empty `ram_tags`; restoring it into a DIFT VP clears the target's tag
/// plane to kBottomTag (and rebuilds the shadow summary) rather than
/// silently keeping stale tags.
struct VpSnapshot {
  std::array<std::uint32_t, 32> reg_values{};
  std::array<dift::Tag, 32> reg_tags{};
  std::uint32_t pc = 0;
  rv::CsrFile csrs;
  std::uint64_t instret = 0;
  bool wfi = false;
  std::vector<std::uint8_t> ram;
  std::vector<dift::Tag> ram_tags;
  sysc::Time captured_at;

  // CPU process phase: instructions already retired inside the interrupted
  // quantum, the absolute wake time of the pending quantum delay, and
  // whether a stop request was outstanding at capture time.
  std::uint64_t quantum_carry = 0;
  sysc::Time cpu_wake;
  bool stop_pending = false;

  // Armed-fault bookkeeping (informational; restore() always disarms).
  bool fault_was_armed = false;
  std::uint64_t fault_trigger = 0;

  /// Cumulative engine counters at capture time. For a VP that has run
  /// from reset under one DiftContext (the fork engine's golden cursor),
  /// this is the golden-prefix contribution to a composed run's stats.
  dift::DiftStats stats;

  // Peripheral-internal state (see each peripheral's State type).
  soc::Uart::State uart;
  soc::CanPeriph::State can;
  soc::Dma::State dma;
  soc::Clint::State clint;
  soc::Plic::State plic;
  soc::Sensor::State sensor;
  soc::Watchdog::State watchdog;
  soc::SysCtrl::State sysctrl;
  soc::Gpio::State gpio;
  soc::AesPeriph::State aes;
  std::optional<soc::EngineEcu::State> engine;
  std::optional<soc::SpiFlash::State> flash;
};

template <typename W>
class VirtualPrototype {
 public:
  static constexpr bool kTainted = rv::WordOps<W>::kTainted;

  explicit VirtualPrototype(VpConfig config = {});

  /// Multi-ECU form: builds this VP inside an external simulation so several
  /// prototypes can share one kernel (e.g. two ECUs on a CAN link). The
  /// caller drives `sim` itself: call start() on each VP, wire the links,
  /// then sim.run(...). run() must not be used on a shared-simulation VP.
  /// `instance` prefixes the module names ("ecu1.uart0", ...).
  VirtualPrototype(sysc::Simulation& sim, VpConfig config,
                   const std::string& instance = {});

  /// Spawns the VP's processes (CPU quantum thread, peripherals). run() does
  /// this implicitly; shared-simulation setups call it explicitly.
  void start();

  /// Rewinds this VP to its just-constructed state so it can be re-armed
  /// with load_firmware()/apply_policy() instead of rebuilt: kernel reset
  /// (all processes destroyed, clock back to zero), full CPU reset, RAM and
  /// tag plane cleared, every peripheral back to power-on state, policy
  /// configuration dropped. Construction wiring (bus map, IRQ routing, the
  /// optional engine ECU and flash) is preserved — that is exactly what the
  /// VpConfig determines, so a pool may reuse a VP across jobs whose
  /// configs are config_equivalent(). Only valid on a VP that owns its
  /// simulation (throws std::logic_error for shared-kernel multi-ECU VPs).
  /// `keep_translations` keeps the core's translated-block cache (and its
  /// superblocks) warm across the re-arm — sound only when the subsequently
  /// loaded firmware is byte-identical (the pool gates this on the firmware
  /// content hash); translations revalidate against the raw bytes on every
  /// dispatch regardless.
  void reset(bool keep_translations = false);

  /// Loads a program image into RAM and points the core at its entry.
  /// On a warm (reset) VP this is the re-arm step of the service's
  /// construction/load split.
  void load_firmware(const rvasm::Program& program);

  /// Historical name of load_firmware().
  void load(const rvasm::Program& program) { load_firmware(program); }

  /// Installs the security policy: memory classification, peripheral
  /// clearances, declassification rights, and CPU execution clearance.
  /// Call after load() (classification tags the loaded image). The lattice
  /// referenced by the policy must outlive this object.
  void apply_policy(const dift::SecurityPolicy& policy);

  /// Monitor mode: violations are recorded into RunResult instead of
  /// stopping the simulation — one run surfaces every forbidden flow, which
  /// is the mode of choice while a policy is being developed.
  void set_monitor_mode(bool on) { monitor_mode_ = on; }

  /// Installs an ahead-of-time pin set from the static analyzer (absolute
  /// guest addresses of pinned block heads; non-RAM addresses are ignored).
  /// Call after apply_policy() — installing a policy voids a previous pin
  /// set. RunResult.stats.sa_pinned_blocks reports the installed count as a
  /// gauge (run stats are otherwise deltas). reset() and restore() drop the
  /// set: a re-armed or rewound VP is outside the analyzed behaviour until
  /// the runner re-installs a (cached) analysis result.
  void set_pinned_blocks(const std::vector<std::uint64_t>& addrs);

  /// Keeps the last `depth` executed instructions (with result values and
  /// tags); a violation's RunResult then carries the formatted history.
  void enable_trace(std::size_t depth = 32) {
    trace_ = std::make_unique<rv::TraceBuffer>(depth);
    core_.set_trace(trace_.get());
  }
  const rv::TraceBuffer* trace() const { return trace_.get(); }

  /// Runs until firmware exit, a policy violation, or `max_sim_time`.
  RunResult run(sysc::Time max_sim_time = sysc::Time::sec(100));

  /// Full-fidelity VP checkpoint — see VpSnapshot for the contract.
  using Snapshot = VpSnapshot;
  Snapshot snapshot();
  void restore(const Snapshot& s);

  // ---- component access (tests, experiment harnesses) ----
  const VpConfig& config() const { return cfg_; }
  sysc::Simulation& sim() { return *sim_; }
  rv::Core<W>& core() { return core_; }
  soc::Memory& ram() { return ram_; }
  soc::Uart& uart() { return uart_; }
  soc::Sensor& sensor() { return sensor_; }
  soc::Dma& dma() { return dma_; }
  soc::AesPeriph& aes() { return aes_; }
  soc::CanPeriph& can() { return can_; }
  soc::Clint& clint() { return clint_; }
  soc::Plic& plic() { return plic_; }
  soc::SysCtrl& sysctrl() { return sysctrl_; }
  soc::Gpio& gpio() { return gpio_; }
  soc::Watchdog& watchdog() { return wdt_; }
  soc::SpiFlash* flash() { return flash_.get(); }
  soc::EngineEcu* engine() { return engine_.get(); }
  tlmlite::Bus& bus() { return bus_; }
  const dift::SecurityPolicy* policy() const {
    return policy_ ? &*policy_ : nullptr;
  }

 private:
  VirtualPrototype(sysc::Simulation* external, VpConfig config,
                   const std::string& instance);
  sysc::Task cpu_thread();
  dift::DiftStats capture_stats() const;

  VpConfig cfg_;
  std::unique_ptr<sysc::Simulation> owned_sim_;  // engaged unless shared
  sysc::Simulation* sim_;
  tlmlite::Bus bus_;
  soc::Memory ram_;
  soc::Uart uart_;
  soc::Sensor sensor_;
  soc::Dma dma_;
  soc::AesPeriph aes_;
  soc::CanPeriph can_;
  soc::Clint clint_;
  soc::Plic plic_;
  soc::SysCtrl sysctrl_;
  soc::Gpio gpio_;
  soc::Watchdog wdt_;
  std::unique_ptr<soc::SpiFlash> flash_;
  std::unique_ptr<soc::EngineEcu> engine_;
  rv::Core<W> core_;
  sysc::Event irq_event_;
  std::optional<dift::SecurityPolicy> policy_;
  std::unique_ptr<rv::TraceBuffer> trace_;
  bool started_ = false;
  bool monitor_mode_ = false;
  std::uint32_t boot_pc_ = soc::addrmap::kRamBase;
  std::uint64_t pin_count_ = 0;  ///< installed pin-set size (stats gauge)

  // CPU quantum-phase tracking, so a snapshot taken mid-quantum (from an
  // arm_fault callback) records how far into the quantum the core is, and
  // so a restored cpu_thread can re-enter the interrupted quantum.
  std::uint64_t quantum_start_ = 0;  ///< instret at the current quantum's start
  bool in_quantum_ = false;          ///< inside core_.run() right now
  sysc::Time cpu_wake_;              ///< absolute end of the pending CPU delay
  bool resume_ = false;              ///< first cpu_thread activation is a resume
  sysc::Time resume_wake_;           ///< wake time to honour on resume
  std::uint64_t resume_carry_ = 0;   ///< instructions already retired in the quantum
  bool resume_stop_ = false;         ///< re-issue sim_->stop() after the resumed quantum
};

/// The original VP (plain machine words).
using Vp = VirtualPrototype<rv::PlainWord>;
/// The VP+ with the DIFT engine.
using VpDift = VirtualPrototype<rv::TaintedWord>;

extern template class VirtualPrototype<rv::PlainWord>;
extern template class VirtualPrototype<rv::TaintedWord>;

}  // namespace vpdift::vp
