#include "vp/scenarios.hpp"

namespace vpdift::vp::scenarios {

using dift::ExecutionClearance;
using dift::Lattice;
using dift::Tag;

PolicyBundle make_permissive_policy() {
  PolicyBundle b(Lattice::ifp1());
  const Tag lc = b.lattice->tag_of("LC");
  const Tag hc = b.lattice->tag_of("HC");
  b.policy.classify_input("uart0.rx", lc)
      .classify_input("can0.rx", lc)
      .classify_input("sensor0", lc)
      .clear_output("uart0.tx", hc)
      .clear_output("can0.tx", hc)
      .clear_unit("aes0", hc)
      .declassify_output("aes0", lc)
      .set_execution_clearance(ExecutionClearance{hc, hc, hc});
  return b;
}

PolicyBundle make_code_injection_policy(const rvasm::Program& program) {
  PolicyBundle b(Lattice::ifp2());
  const Tag hi = b.lattice->tag_of("HI");
  const Tag li = b.lattice->tag_of("LI");
  // The program image is trusted (HI) at load time...
  for (const auto& seg : program.segments)
    b.policy.classify_memory(seg.base, seg.bytes.size(), hi);
  // ...except the well-defined stand-in for injected malicious code. A
  // program without the marker symbols (a plain benchmark under this policy,
  // e.g. a fault-injection run) simply has no pre-tainted payload region.
  if (program.symbols.count("attack_payload") &&
      program.symbols.count("attack_payload_end")) {
    const std::uint64_t payload = program.symbol("attack_payload");
    const std::uint64_t payload_end = program.symbol("attack_payload_end");
    b.policy.classify_memory(payload, payload_end - payload, li);
  }
  // Everything entering over the serial console is untrusted.
  b.policy.classify_input("uart0.rx", li);
  // The instruction-fetch unit refuses LI code.
  ExecutionClearance ec;
  ec.fetch = hi;
  b.policy.set_execution_clearance(ec);
  return b;
}

dift::SecurityPolicy make_immobilizer_policy_on(const Lattice& lattice,
                                                const rvasm::Program& program,
                                                bool per_byte_pin) {
  dift::SecurityPolicy policy(lattice);
  const Tag lc_li = lattice.tag_of("(LC,LI)");
  const Tag pin_tag = lattice.tag_of("(HC,HI)");

  const std::uint64_t pin = program.symbol("pin");
  if (per_byte_pin) {
    for (int i = 0; i < 16; ++i) {
      const Tag t = lattice.tag_of("PIN" + std::to_string(i));
      policy.classify_memory(pin + i, 1, t).protect_store(pin + i, 1, t);
    }
  } else {
    policy.classify_memory(pin, 16, pin_tag).protect_store(pin, 16, pin_tag);
  }

  policy.classify_input("uart0.rx", lc_li)
      .classify_input("can0.rx", lc_li)
      .classify_input("sensor0", lc_li)
      .clear_output("uart0.tx", lc_li)
      .clear_output("can0.tx", lc_li)
      .clear_unit("aes0", pin_tag)
      .declassify_output("aes0", lc_li)
      .set_execution_clearance(ExecutionClearance{lc_li, lc_li, lc_li});
  return policy;
}

PolicyBundle make_immobilizer_policy(const rvasm::Program& program,
                                     bool per_byte_pin) {
  Lattice base = Lattice::ifp3();
  const Tag hc_hi = base.tag_of("(HC,HI)");
  PolicyBundle b(per_byte_pin
                     ? Lattice::with_per_byte_secret(base, hc_hi, 16, "PIN")
                     : std::move(base));
  b.policy = make_immobilizer_policy_on(*b.lattice, program, per_byte_pin);
  return b;
}

}  // namespace vpdift::vp::scenarios
