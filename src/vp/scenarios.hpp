// Ready-made security policies for the paper's three experiments.
#pragma once

#include <memory>

#include "dift/lattice.hpp"
#include "dift/policy.hpp"
#include "rvasm/program.hpp"

namespace vpdift::vp::scenarios {

/// A policy together with the lattice it references (kept alive alongside).
/// Move-only: the policy holds a pointer into `lattice`.
struct PolicyBundle {
  explicit PolicyBundle(dift::Lattice l)
      : lattice(std::make_unique<dift::Lattice>(std::move(l))), policy(*lattice) {}
  PolicyBundle(PolicyBundle&&) = default;
  PolicyBundle& operator=(PolicyBundle&&) = default;

  std::unique_ptr<dift::Lattice> lattice;
  dift::SecurityPolicy policy;
};

/// Table II (performance overhead): a benign IFP-1 policy that keeps every
/// DIFT mechanism engaged — classification of all inputs, output clearances,
/// and all three execution-clearance checks — with clearances chosen so that
/// no check ever fires. This measures the cost of tracking, not of failing.
PolicyBundle make_permissive_policy();

/// Table I (code injection): IFP-2; UART input and the `attack_payload`
/// function are classified LI, the instruction-fetch unit requires HI.
PolicyBundle make_code_injection_policy(const rvasm::Program& program);

/// Section VI-A (immobilizer case study): IFP-3; PIN classified (HC,HI) —
/// or one fresh class per PIN byte when `per_byte_pin` — with (LC,LI)
/// clearance on all I/O, (HC,HI) AES key clearance, AES declassification to
/// (LC,LI), (LC,LI) execution clearance, and store protection over the PIN.
PolicyBundle make_immobilizer_policy(const rvasm::Program& program,
                                     bool per_byte_pin);

/// Same policy content, but built over a caller-provided lattice — used when
/// several ECUs in one simulation must share the active IFP (the DIFT engine
/// has one active lattice at a time). `lattice` must be IFP-3-shaped (or the
/// per-byte refinement) and outlive the returned policy.
dift::SecurityPolicy make_immobilizer_policy_on(const dift::Lattice& lattice,
                                                const rvasm::Program& program,
                                                bool per_byte_pin);

}  // namespace vpdift::vp::scenarios
