#include "vp/vp.hpp"
#include <cstdio>
#include <cstring>

namespace vpdift::vp {

namespace am = soc::addrmap;

const char* to_string(ExitReason reason) {
  switch (reason) {
    case ExitReason::kSimTimeout: return "sim-timeout";
    case ExitReason::kExit: return "exit";
    case ExitReason::kViolation: return "violation";
    case ExitReason::kWallTimeout: return "wall-timeout";
    case ExitReason::kWatchdogReset: return "watchdog-reset";
    case ExitReason::kTrap: return "trap";
    case ExitReason::kUnknown: return "unknown";
  }
  return "?";
}

template <typename W>
VirtualPrototype<W>::VirtualPrototype(VpConfig config)
    : VirtualPrototype(nullptr, std::move(config), {}) {}

template <typename W>
VirtualPrototype<W>::VirtualPrototype(sysc::Simulation& sim, VpConfig config,
                                      const std::string& instance)
    : VirtualPrototype(&sim, std::move(config), instance) {}

namespace {
std::string qualify(const std::string& instance, const char* name) {
  return instance.empty() ? std::string(name) : instance + "." + name;
}
}  // namespace

template <typename W>
VirtualPrototype<W>::VirtualPrototype(sysc::Simulation* external, VpConfig config,
                                      const std::string& instance)
    : cfg_(config),
      owned_sim_(external ? nullptr : std::make_unique<sysc::Simulation>()),
      sim_(external ? external : owned_sim_.get()),
      bus_(*sim_, qualify(instance, "bus0")),
      ram_(*sim_, qualify(instance, "ram0"), cfg_.ram_size, kTainted),
      uart_(*sim_, qualify(instance, "uart0")),
      sensor_(*sim_, qualify(instance, "sensor0"), cfg_.sensor_period),
      dma_(*sim_, qualify(instance, "dma0"), kTainted),
      aes_(*sim_, qualify(instance, "aes0")),
      can_(*sim_, qualify(instance, "can0")),
      clint_(*sim_, qualify(instance, "clint0")),
      plic_(*sim_, qualify(instance, "plic0")),
      sysctrl_(*sim_, qualify(instance, "sysctrl0")),
      gpio_(*sim_, qualify(instance, "gpio0")),
      wdt_(*sim_, qualify(instance, "wdt0")),
      irq_event_(*sim_) {
  // Address map.
  bus_.map(am::kRamBase, ram_.size(), ram_.socket(), "ram0");
  bus_.map(am::kClintBase, am::kClintSize, clint_.socket(), "clint0");
  bus_.map(am::kPlicBase, am::kPlicSize, plic_.socket(), "plic0");
  bus_.map(am::kUartBase, am::kUartSize, uart_.socket(), "uart0");
  bus_.map(am::kSysCtrlBase, am::kSysCtrlSize, sysctrl_.socket(), "sysctrl0");
  bus_.map(am::kSensorBase, am::kSensorSize, sensor_.socket(), "sensor0");
  bus_.map(am::kAesBase, am::kAesSize, aes_.socket(), "aes0");
  bus_.map(am::kCanBase, am::kCanSize, can_.socket(), "can0");
  bus_.map(am::kDmaBase, am::kDmaSize, dma_.socket(), "dma0");
  bus_.map(am::kGpioBase, am::kGpioSize, gpio_.socket(), "gpio0");
  bus_.map(am::kWdtBase, am::kWdtSize, wdt_.socket(), "wdt0");
  if (!cfg_.flash_image.empty()) {
    flash_ = std::make_unique<soc::SpiFlash>(*sim_, "flash0", cfg_.flash_image,
                                             cfg_.flash_tag);
    bus_.map(am::kFlashBase, flash_->size(), flash_->socket(), "flash0");
  }

  // Initiators.
  core_.bus_socket().bind(bus_.target_socket());
  dma_.bus_socket().bind(bus_.target_socket());
  core_.set_dmi(ram_.data(), ram_.tags(), am::kRamBase, ram_.size(),
                ram_.tags() ? &ram_.shadow() : nullptr);
  core_.set_pc(am::kRamBase);
  core_.set_time_source([this] { return sim_->now().micros(); });

  // Interrupt wiring.
  auto wire_core_irq = [this](std::uint32_t bit) {
    return [this, bit](bool level) {
      core_.set_irq(bit, level);
      if (level) irq_event_.notify();
    };
  };
  clint_.set_timer_irq(wire_core_irq(rv::kIrqMtimer));
  clint_.set_soft_irq(wire_core_irq(rv::kIrqMsoft));
  plic_.set_ext_irq(wire_core_irq(rv::kIrqMext));
  sensor_.set_irq([this] { plic_.raise(am::kIrqSensor); });
  uart_.set_irq([this](bool level) { plic_.set_level(am::kIrqUartRx, level); });
  dma_.set_irq([this] { plic_.raise(am::kIrqDma); });
  wdt_.set_on_timeout([this] {
    // Watchdog reset: architectural CPU reset back to the boot entry; RAM
    // contents survive (as on real silicon).
    core_.reset(boot_pc_);
    core_.set_reg(2, rv::WordOps<W>::make(
                         static_cast<std::uint32_t>(am::kRamBase + ram_.size()),
                         dift::kBottomTag));
  });
  can_.set_irq([this](bool level) { plic_.set_level(am::kIrqCanRx, level); });

  // Optional engine ECU across the CAN link.
  if (cfg_.with_engine_ecu) {
    engine_ = std::make_unique<soc::EngineEcu>(*sim_, "engine-ecu", can_,
                                               cfg_.engine_pin, cfg_.engine_period);
    can_.set_on_tx([this](const soc::CanFrame& f) { engine_->on_frame(f); });
  }
}

bool config_equivalent(const VpConfig& a, const VpConfig& b) {
  return a.ram_size == b.ram_size &&
         a.quantum_instructions == b.quantum_instructions &&
         a.instruction_period == b.instruction_period &&
         a.sensor_period == b.sensor_period &&
         a.with_engine_ecu == b.with_engine_ecu &&
         a.engine_pin == b.engine_pin && a.engine_period == b.engine_period &&
         a.flash_image == b.flash_image && a.flash_tag == b.flash_tag;
}

template <typename W>
void VirtualPrototype<W>::reset(bool keep_translations) {
  if (!owned_sim_)
    throw std::logic_error(
        "VirtualPrototype::reset() requires an owned simulation "
        "(shared-kernel multi-ECU VPs cannot be individually reset)");
  sim_->reset();

  // CPU: full architectural reset (registers, CSRs, counters, WFI, fatal
  // trap), pending fault trigger disarmed, policy detached, translation
  // cache dropped (the next image has different bytes) — unless the caller
  // promised byte-identical firmware, in which case the translations (and
  // superblocks) stay warm and only the policy-bound fetch memos are wiped.
  core_.reset(am::kRamBase, keep_translations);
  core_.disarm_fault();
  core_.set_policy(nullptr);  // also drops an installed pin set
  pin_count_ = 0;
  if (!keep_translations) core_.invalidate_blocks();
  boot_pc_ = am::kRamBase;

  // Memory: zero data, bottom tags, fresh summaries.
  std::memset(ram_.data(), 0, ram_.size());
  if (ram_.tags()) {
    std::memset(ram_.tags(), dift::kBottomTag, ram_.size());
    ram_.rebuild_summary();
  }

  // Peripherals: power-on state (State{} defaults equal the member
  // initializers — pinned by the warm re-arm tests).
  uart_.load_state({});
  can_.load_state({});
  dma_.load_state({});
  clint_.load_state({});
  plic_.load_state({});
  sensor_.load_state({});
  wdt_.load_state({});
  sysctrl_.load_state({});
  gpio_.load_state({});
  aes_.load_state({});
  if (engine_) engine_->load_state({});
  if (flash_) flash_->load_state({});

  // Policy residue: everything apply_policy() configures must revert, or a
  // warm VP re-armed with a weaker policy would keep the old one's
  // clearances/declassification rights.
  uart_.set_input_tag(dift::kBottomTag);
  uart_.set_output_clearance(std::nullopt);
  can_.set_input_tag(dift::kBottomTag);
  can_.set_output_clearance(std::nullopt);
  sensor_.set_data_tag(dift::kBottomTag);
  gpio_.set_input_tag(dift::kBottomTag);
  gpio_.set_output_clearance(std::nullopt);
  aes_.set_unit_clearance(std::nullopt);
  aes_.set_declass(dift::DeclassRight{}, dift::kBottomTag);
  if (flash_) flash_->set_image_tag(cfg_.flash_tag);
  policy_.reset();

  monitor_mode_ = false;
  started_ = false;
  quantum_start_ = 0;
  in_quantum_ = false;
  cpu_wake_ = sysc::Time();
  resume_ = false;
  resume_wake_ = sysc::Time();
  resume_carry_ = 0;
  resume_stop_ = false;
}

template <typename W>
void VirtualPrototype<W>::load_firmware(const rvasm::Program& program) {
  ram_.load_image(program, am::kRamBase);
  core_.set_pc(static_cast<std::uint32_t>(program.entry));
  boot_pc_ = static_cast<std::uint32_t>(program.entry);
  // ABI setup: stack grows down from the top of RAM.
  core_.set_reg(2, rv::WordOps<W>::make(
                       static_cast<std::uint32_t>(am::kRamBase + ram_.size()),
                       dift::kBottomTag));
}

template <typename W>
void VirtualPrototype<W>::apply_policy(const dift::SecurityPolicy& policy) {
  policy_ = policy;
  core_.set_policy(&*policy_);

  // (i) classification of memory regions.
  for (const auto& mc : policy_->memory_classification()) {
    if (mc.base >= am::kRamBase && mc.base + mc.size <= am::kRamBase + ram_.size())
      ram_.classify(mc.base - am::kRamBase, mc.size, mc.tag);
  }
  // (i) classification of peripheral inputs.
  uart_.set_input_tag(policy_->input_class("uart0.rx"));
  can_.set_input_tag(policy_->input_class("can0.rx"));
  sensor_.set_data_tag(policy_->input_class("sensor0"));

  // (iii) clearance of outputs and execution units.
  uart_.set_output_clearance(policy_->output_clearance("uart0.tx"));
  can_.set_output_clearance(policy_->output_clearance("can0.tx"));
  gpio_.set_output_clearance(policy_->output_clearance("gpio0.out"));
  gpio_.set_input_tag(policy_->input_class("gpio0.in"));
  aes_.set_unit_clearance(policy_->unit_clearance("aes0"));
  if (flash_) {
    // No flash class in the new policy: fall back to the config's tag, so
    // re-applying a weaker policy on a warm VP sheds the old one's class.
    flash_->set_image_tag(policy_->has_input_class("flash0")
                              ? policy_->input_class("flash0")
                              : cfg_.flash_tag);
  }

  // Declassification rights for trusted peripherals. Explicitly disengage
  // when the policy grants none — a warm VP must not keep the previous
  // policy's right.
  if (auto to = policy_->declass_output("aes0"))
    aes_.set_declass(policy_->grant_declass("aes0"), *to);
  else
    aes_.set_declass(dift::DeclassRight{}, dift::kBottomTag);
}

template <typename W>
void VirtualPrototype<W>::set_pinned_blocks(
    const std::vector<std::uint64_t>& addrs) {
  std::vector<std::uint64_t> offs;
  offs.reserve(addrs.size());
  for (const std::uint64_t a : addrs)
    if (a >= am::kRamBase && a - am::kRamBase < ram_.size())
      offs.push_back(a - am::kRamBase);
  pin_count_ = offs.size();
  core_.set_pinned_blocks(std::move(offs));
}

template <typename W>
dift::DiftStats VirtualPrototype<W>::capture_stats() const {
  dift::DiftStats s = core_.stats();
  s.lub_calls = dift::detail::g_active.lub_calls;
  s.flow_checks = dift::detail::g_active.flow_checks;
  s.mem_summary_hits = ram_.summary_hits();
  s.dma_summary_hits = dma_.summary_hits();
  s.bus_transactions = bus_.transactions();
  return s;
}

template <typename W>
auto VirtualPrototype<W>::snapshot() -> Snapshot {
  Snapshot s;
  for (int r = 0; r < 32; ++r) {
    const W w = core_.reg(static_cast<std::uint8_t>(r));
    s.reg_values[r] = rv::WordOps<W>::value(w);
    s.reg_tags[r] = rv::WordOps<W>::tag(w);
  }
  s.pc = core_.pc();
  s.csrs = core_.csrs();
  s.instret = core_.instret();
  s.wfi = core_.in_wfi();
  s.ram.assign(ram_.data(), ram_.data() + ram_.size());
  if (ram_.tags()) s.ram_tags.assign(ram_.tags(), ram_.tags() + ram_.size());
  s.captured_at = sim_->now();

  // CPU process phase. Mid-quantum (arm_fault callback): the quantum's
  // remaining instructions resume immediately at captured_at. Suspended
  // (timed callback, between runs, pre-start): honour the pending wake.
  s.quantum_carry = in_quantum_ ? core_.instret() - quantum_start_ : 0;
  s.cpu_wake = in_quantum_ ? sim_->now() : cpu_wake_;
  s.stop_pending = sim_->stop_requested();

  s.fault_was_armed = core_.fault_armed();
  s.fault_trigger = core_.fault_at();
  s.stats = capture_stats();

  s.uart = uart_.save_state();
  s.can = can_.save_state();
  s.dma = dma_.save_state();
  s.clint = clint_.save_state();
  s.plic = plic_.save_state();
  s.sensor = sensor_.save_state();
  s.watchdog = wdt_.save_state();
  s.sysctrl = sysctrl_.save_state();
  s.gpio = gpio_.save_state();
  s.aes = aes_.save_state();
  if (engine_) s.engine = engine_->save_state();
  if (flash_) s.flash = flash_->save_state();
  return s;
}

template <typename W>
void VirtualPrototype<W>::restore(const Snapshot& s) {
  if (s.ram.size() != ram_.size())
    throw std::invalid_argument("snapshot RAM size mismatch");
  for (int r = 1; r < 32; ++r)
    core_.set_reg(static_cast<std::uint8_t>(r),
                  rv::WordOps<W>::make(s.reg_values[r], s.reg_tags[r]));
  core_.set_pc(s.pc);
  core_.csrs() = s.csrs;
  core_.restore_counters(s.instret, s.wfi);
  std::memcpy(ram_.data(), s.ram.data(), s.ram.size());
  if (ram_.tags()) {
    if (!s.ram_tags.empty()) {
      std::memcpy(ram_.tags(), s.ram_tags.data(), s.ram_tags.size());
    } else {
      // Snapshot from a plain VP: it carries no tag plane. Stale tags from
      // the pre-restore run must not leak into the restored world — clear
      // to the bottom element instead.
      std::memset(ram_.tags(), dift::kBottomTag, ram_.size());
    }
    ram_.rebuild_summary();  // block summaries must mirror the restored plane
  }
  // RAM changed behind the store path: cached translations (and chained
  // block successors) may now point at stale code bytes, and smc_break_
  // never fired for them.
  core_.invalidate_blocks();
  // A forked tail must not inherit the parent's pending fault trigger.
  core_.disarm_fault();
  // A restored state (possibly a mutated fault tail) is outside the
  // statically analyzed behaviour: drop any ahead-of-time pins.
  core_.clear_pins();
  pin_count_ = 0;

  if (!started_ && sim_->idle()) {
    // Fresh VP: full-fidelity resume. Rewind the clock to the capture
    // instant and re-arm every peripheral process so the continuation is
    // equivalent to the source having kept running.
    uart_.load_state(s.uart);
    can_.load_state(s.can);
    dma_.load_state(s.dma);
    clint_.load_state(s.clint);
    plic_.load_state(s.plic);
    sensor_.load_state(s.sensor);
    wdt_.load_state(s.watchdog);
    sysctrl_.load_state(s.sysctrl);
    gpio_.load_state(s.gpio);
    aes_.load_state(s.aes);
    if (engine_ && s.engine) engine_->load_state(*s.engine);
    if (flash_ && s.flash) flash_->load_state(*s.flash);
    sim_->set_now(s.captured_at);
    resume_ = true;
    resume_wake_ = s.cpu_wake;
    resume_carry_ = s.quantum_carry;
    resume_stop_ = s.stop_pending;
  }
  // Started VP: legacy in-place semantics — architectural state only;
  // simulated time and peripheral processes are left alone.
}

template <typename W>
sysc::Task VirtualPrototype<W>::cpu_thread() {
  std::uint64_t carry = 0;
  if (resume_) {
    // First activation after a full-fidelity restore: re-enter the CPU
    // process exactly where the snapshot interrupted it. A mid-quantum
    // capture resumes the quantum's remainder immediately (before any
    // peripheral's timed wake at this instant, matching the cold order of
    // a quantum in flight); a suspended capture honours the pending wake.
    resume_ = false;
    carry = resume_carry_;
    if (resume_wake_ > sim_->now())
      co_await sim_->delay(resume_wake_ - sim_->now());
    if (core_.in_wfi() && !core_.irq_pending() && !sim_->stop_requested())
      co_await irq_event_;
  }
  while (!sim_->stop_requested()) {
    quantum_start_ = core_.instret() - carry;
    in_quantum_ = true;
    const rv::RunExit exit = core_.run(cfg_.quantum_instructions - carry);
    in_quantum_ = false;
    if (resume_stop_) {
      // The snapshot was taken after a stop request (e.g. the firmware's
      // EXIT write) in this same quantum; re-issue it so the simulation
      // halts at the quantum boundary like the cold run did.
      resume_stop_ = false;
      sim_->stop();
    }
    if (core_.fatal_trap()) {
      // The core trapped into a null trap vector — it would spin on
      // instruction-access faults at pc 0 until the simulated-time budget
      // burned down. Halt the CPU process instead; run() reports kTrap.
      sim_->stop();
      break;
    }
    // The post-quantum delay covers the whole quantum including any carry,
    // so quantum boundaries stay on the cold run's absolute schedule.
    const std::uint64_t executed = core_.instret() - quantum_start_;
    carry = 0;
    cpu_wake_ = sim_->now() + cfg_.instruction_period * (executed ? executed : 1);
    co_await sim_->delay(cpu_wake_ - sim_->now());
    if (exit == rv::RunExit::kWfi && !core_.irq_pending()) co_await irq_event_;
  }
}

template <typename W>
void VirtualPrototype<W>::start() {
  if (started_) return;
  started_ = true;
  sensor_.start();
  dma_.start();
  clint_.start();
  wdt_.start();
  if (engine_) engine_->start();
  sim_->spawn(cpu_thread());
}

template <typename W>
RunResult VirtualPrototype<W>::run(sysc::Time max_sim_time) {
  start();
  RunResult r;
  // Activate the policy's IFP for the duration of the run (nests with any
  // caller-provided context).
  std::optional<dift::DiftContext> ctx;
  if (policy_) {
    ctx.emplace(policy_->lattice());
    ctx->set_monitor_mode(monitor_mode_);
  }
  // Counter snapshot AFTER the context activates (its constructor zeroes the
  // lattice-table counters); the run's stats are the delta from here.
  const dift::DiftStats stats_before = capture_stats();
  const std::uint64_t instret_before = core_.instret();
  const std::uint32_t resets_before = wdt_.resets_fired();
  const sysc::Time deadline = sim_->now() + max_sim_time;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    sim_->run(deadline);
  } catch (const dift::PolicyViolation& v) {
    r.reason = ExitReason::kViolation;
    r.violation_kind = v.kind();
    r.violation_source = v.source();
    r.violation_required = v.required();
    r.violation_pc = v.pc();
    r.violation_where = v.where();
    r.violation_message = v.what();
    if (trace_) {
      r.trace_dump = trace_->format();
      // The offending instruction itself never retired (the check threw
      // mid-execution); reconstruct it from the faulting pc.
      if (v.pc() >= am::kRamBase && v.pc() + 4 <= am::kRamBase + ram_.size()) {
        char line[160];
        std::snprintf(line, sizeof line, "[violation] %08x: %s   <-- %s\n",
                      static_cast<std::uint32_t>(v.pc()),
                      rv::disassemble(ram_.read_u32(v.pc() - am::kRamBase)).c_str(),
                      dift::to_string(v.kind()));
        r.trace_dump += line;
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (ctx) r.recorded_violations = ctx->recorded();
  r.watchdog_resets = wdt_.resets_fired() - resets_before;
  if (r.reason != ExitReason::kViolation) {
    if (sysctrl_.exited())
      r.reason = ExitReason::kExit;
    else if (core_.fatal_trap())
      r.reason = ExitReason::kTrap;
    else if (r.watchdog_resets > 0)
      r.reason = ExitReason::kWatchdogReset;
    else
      r.reason = ExitReason::kSimTimeout;
  }
  r.exit_code = sysctrl_.exit_code();
  // A watchdog reset zeroes the retirement counter; clamp so the delta stays
  // meaningful on a multi-run VP whose counter restarted below the snapshot.
  r.instret = core_.instret() >= instret_before ? core_.instret() - instret_before
                                                : core_.instret();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mips = r.wall_seconds > 0 ? r.instret / r.wall_seconds / 1e6 : 0.0;
  r.sim_time = sim_->now();
  r.uart_output = uart_.output();
  r.markers = sysctrl_.markers();
  r.stats = capture_stats() - stats_before;
  // Gauge, not a delta: the size of the pin set installed for this run.
  r.stats.sa_pinned_blocks = pin_count_;
  return r;
}

template class VirtualPrototype<rv::PlainWord>;
template class VirtualPrototype<rv::TaintedWord>;

}  // namespace vpdift::vp
