#include "rvasm/assembler.hpp"

#include <cassert>

namespace vpdift::rvasm {

namespace {

// Base opcodes (RISC-V unprivileged spec, table 24.1).
constexpr std::uint32_t kOpLui = 0x37, kOpAuipc = 0x17, kOpJal = 0x6f,
                        kOpJalr = 0x67, kOpBranch = 0x63, kOpLoad = 0x03,
                        kOpStore = 0x23, kOpImm = 0x13, kOpReg = 0x33,
                        kOpFence = 0x0f, kOpSystem = 0x73;

void check_reg(Reg r) {
  if (r > 31) throw AsmError("register out of range");
}

void check_reg_public(Reg r) { check_reg(r); }

void check_imm12(std::int64_t imm) {
  if (imm < -2048 || imm > 2047)
    throw AsmError("immediate out of 12-bit range: " + std::to_string(imm));
}

std::uint32_t enc_r(std::uint32_t f7, Reg rs2, Reg rs1, std::uint32_t f3, Reg rd,
                    std::uint32_t op) {
  check_reg(rd); check_reg(rs1); check_reg(rs2);
  return (f7 << 25) | (std::uint32_t(rs2) << 20) | (std::uint32_t(rs1) << 15) |
         (f3 << 12) | (std::uint32_t(rd) << 7) | op;
}

std::uint32_t enc_i(std::int32_t imm, Reg rs1, std::uint32_t f3, Reg rd,
                    std::uint32_t op) {
  check_reg(rd); check_reg(rs1); check_imm12(imm);
  return (static_cast<std::uint32_t>(imm & 0xfff) << 20) |
         (std::uint32_t(rs1) << 15) | (f3 << 12) | (std::uint32_t(rd) << 7) | op;
}

std::uint32_t enc_csr(std::uint32_t csr, std::uint32_t rs1_or_uimm, std::uint32_t f3,
                      Reg rd, std::uint32_t op) {
  if (csr > 0xfff) throw AsmError("CSR number out of range");
  if (rs1_or_uimm > 31) throw AsmError("CSR rs1/uimm out of range");
  return (csr << 20) | (rs1_or_uimm << 15) | (f3 << 12) | (std::uint32_t(rd) << 7) | op;
}

std::uint32_t enc_s(std::int32_t imm, Reg rs2, Reg rs1, std::uint32_t f3,
                    std::uint32_t op) {
  check_reg(rs1); check_reg(rs2); check_imm12(imm);
  const auto u = static_cast<std::uint32_t>(imm & 0xfff);
  return ((u >> 5) << 25) | (std::uint32_t(rs2) << 20) | (std::uint32_t(rs1) << 15) |
         (f3 << 12) | ((u & 0x1f) << 7) | op;
}

std::uint32_t enc_b(std::int32_t imm, Reg rs2, Reg rs1, std::uint32_t f3) {
  check_reg(rs1); check_reg(rs2);
  if (imm % 2 != 0) throw AsmError("branch target misaligned");
  if (imm < -4096 || imm > 4094)
    throw AsmError("branch displacement out of range: " + std::to_string(imm));
  const auto u = static_cast<std::uint32_t>(imm);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
         (std::uint32_t(rs2) << 20) | (std::uint32_t(rs1) << 15) | (f3 << 12) |
         (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | kOpBranch;
}

std::uint32_t enc_u(std::int32_t imm20, Reg rd, std::uint32_t op) {
  check_reg(rd);
  if (imm20 < -(1 << 19) || imm20 >= (1 << 20))
    throw AsmError("U-type immediate out of 20-bit range");
  return (static_cast<std::uint32_t>(imm20 & 0xfffff) << 12) |
         (std::uint32_t(rd) << 7) | op;
}

std::uint32_t enc_j(std::int32_t imm, Reg rd) {
  check_reg(rd);
  if (imm % 2 != 0) throw AsmError("jump target misaligned");
  if (imm < -(1 << 20) || imm >= (1 << 20))
    throw AsmError("jal displacement out of range: " + std::to_string(imm));
  const auto u = static_cast<std::uint32_t>(imm);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
         (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) |
         (std::uint32_t(rd) << 7) | kOpJal;
}

std::uint32_t enc_shift(std::uint32_t f7, std::uint32_t shamt, Reg rs1,
                        std::uint32_t f3, Reg rd) {
  if (shamt > 31) throw AsmError("shift amount out of range");
  return enc_r(f7, static_cast<Reg>(shamt), rs1, f3, rd, kOpImm);
}

}  // namespace

HiLo split_hi_lo(std::uint32_t value) {
  std::int32_t lo = static_cast<std::int32_t>(value << 20) >> 20;  // sext low 12
  std::uint32_t hi = (value - static_cast<std::uint32_t>(lo)) >> 12;
  return {static_cast<std::int32_t>(static_cast<std::int32_t>(hi << 12) >> 12), lo};
}

const char* reg_name(Reg r) {
  static const char* names[32] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  return r < 32 ? names[r] : "??";
}

Assembler::Assembler(std::uint64_t base) { segments_.push_back({base, {}}); }

std::uint64_t Assembler::here() const {
  const Segment& s = segments_.back();
  return s.base + s.bytes.size();
}

void Assembler::org(std::uint64_t address) { segments_.push_back({address, {}}); }

void Assembler::label(const std::string& name) { equ(name, here()); }

void Assembler::equ(const std::string& name, std::uint64_t address) {
  if (!symbols_.emplace(name, address).second)
    throw AsmError("duplicate label: " + name);
}

void Assembler::align(std::uint32_t alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)))
    throw AsmError("alignment must be a power of two");
  while (here() % alignment != 0) byte(0);
}

void Assembler::byte(std::uint8_t v) { segments_.back().bytes.push_back(v); }
void Assembler::half(std::uint16_t v) { byte(v & 0xff); byte(v >> 8); }
void Assembler::word(std::uint32_t v) { half(v & 0xffff); half(v >> 16); }

void Assembler::word_of(const std::string& lbl) {
  fixups_.push_back({segments_.size() - 1, segments_.back().bytes.size(),
                     FixKind::kWord, lbl});
  word(0);
}

void Assembler::bytes(const std::uint8_t* data, std::size_t n) {
  segments_.back().bytes.insert(segments_.back().bytes.end(), data, data + n);
}

void Assembler::ascii(std::string_view s) {
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void Assembler::asciiz(std::string_view s) { ascii(s); byte(0); }

void Assembler::zero_fill(std::size_t n) {
  segments_.back().bytes.insert(segments_.back().bytes.end(), n, 0);
}

void Assembler::emit32(std::uint32_t v) {
  if (here() % 2 != 0) throw AsmError("instruction at unaligned address");
  word(v);
  text_bytes_ += 4;
}

void Assembler::emit16(std::uint16_t v) {
  if (here() % 2 != 0) throw AsmError("instruction at unaligned address");
  half(v);
  text_bytes_ += 2;
}

// ---- RV32I ----

void Assembler::lui(Reg rd, std::int32_t imm20) { emit32(enc_u(imm20, rd, kOpLui)); }
void Assembler::auipc(Reg rd, std::int32_t imm20) { emit32(enc_u(imm20, rd, kOpAuipc)); }

void Assembler::jal(Reg rd, const std::string& lbl) {
  fixups_.push_back({segments_.size() - 1, segments_.back().bytes.size(),
                     FixKind::kJal, lbl});
  emit32(enc_j(0, rd));
}

void Assembler::jalr(Reg rd, Reg rs1, std::int32_t imm) {
  emit32(enc_i(imm, rs1, 0, rd, kOpJalr));
}

void Assembler::emit_branch(std::uint32_t f3, Reg rs1, Reg rs2,
                            const std::string& lbl) {
  fixups_.push_back({segments_.size() - 1, segments_.back().bytes.size(),
                     FixKind::kBranch, lbl});
  emit32(enc_b(0, rs2, rs1, f3));
}

void Assembler::beq(Reg a, Reg b, const std::string& l) { emit_branch(0, a, b, l); }
void Assembler::bne(Reg a, Reg b, const std::string& l) { emit_branch(1, a, b, l); }
void Assembler::blt(Reg a, Reg b, const std::string& l) { emit_branch(4, a, b, l); }
void Assembler::bge(Reg a, Reg b, const std::string& l) { emit_branch(5, a, b, l); }
void Assembler::bltu(Reg a, Reg b, const std::string& l) { emit_branch(6, a, b, l); }
void Assembler::bgeu(Reg a, Reg b, const std::string& l) { emit_branch(7, a, b, l); }

void Assembler::lb(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 0, rd, kOpLoad)); }
void Assembler::lh(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 1, rd, kOpLoad)); }
void Assembler::lw(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 2, rd, kOpLoad)); }
void Assembler::lbu(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 4, rd, kOpLoad)); }
void Assembler::lhu(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 5, rd, kOpLoad)); }

void Assembler::sb(Reg rs2, Reg rs1, std::int32_t imm) { emit32(enc_s(imm, rs2, rs1, 0, kOpStore)); }
void Assembler::sh(Reg rs2, Reg rs1, std::int32_t imm) { emit32(enc_s(imm, rs2, rs1, 1, kOpStore)); }
void Assembler::sw(Reg rs2, Reg rs1, std::int32_t imm) { emit32(enc_s(imm, rs2, rs1, 2, kOpStore)); }

void Assembler::addi(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 0, rd, kOpImm)); }
void Assembler::slti(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 2, rd, kOpImm)); }
void Assembler::sltiu(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 3, rd, kOpImm)); }
void Assembler::xori(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 4, rd, kOpImm)); }
void Assembler::ori(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 6, rd, kOpImm)); }
void Assembler::andi(Reg rd, Reg rs1, std::int32_t imm) { emit32(enc_i(imm, rs1, 7, rd, kOpImm)); }

void Assembler::slli(Reg rd, Reg rs1, std::uint32_t s) { emit32(enc_shift(0x00, s, rs1, 1, rd)); }
void Assembler::srli(Reg rd, Reg rs1, std::uint32_t s) { emit32(enc_shift(0x00, s, rs1, 5, rd)); }
void Assembler::srai(Reg rd, Reg rs1, std::uint32_t s) { emit32(enc_shift(0x20, s, rs1, 5, rd)); }

void Assembler::add(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x00, rs2, rs1, 0, rd, kOpReg)); }
void Assembler::sub(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x20, rs2, rs1, 0, rd, kOpReg)); }
void Assembler::sll(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x00, rs2, rs1, 1, rd, kOpReg)); }
void Assembler::slt(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x00, rs2, rs1, 2, rd, kOpReg)); }
void Assembler::sltu(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x00, rs2, rs1, 3, rd, kOpReg)); }
void Assembler::xor_(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x00, rs2, rs1, 4, rd, kOpReg)); }
void Assembler::srl(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x00, rs2, rs1, 5, rd, kOpReg)); }
void Assembler::sra(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x20, rs2, rs1, 5, rd, kOpReg)); }
void Assembler::or_(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x00, rs2, rs1, 6, rd, kOpReg)); }
void Assembler::and_(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x00, rs2, rs1, 7, rd, kOpReg)); }

void Assembler::fence() { emit32(0x0ff0000f); }
void Assembler::ecall() { emit32(0x00000073); }
void Assembler::ebreak() { emit32(0x00100073); }

// ---- RV32M ----

void Assembler::mul(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x01, rs2, rs1, 0, rd, kOpReg)); }
void Assembler::mulh(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x01, rs2, rs1, 1, rd, kOpReg)); }
void Assembler::mulhsu(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x01, rs2, rs1, 2, rd, kOpReg)); }
void Assembler::mulhu(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x01, rs2, rs1, 3, rd, kOpReg)); }
void Assembler::div_(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x01, rs2, rs1, 4, rd, kOpReg)); }
void Assembler::divu(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x01, rs2, rs1, 5, rd, kOpReg)); }
void Assembler::rem(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x01, rs2, rs1, 6, rd, kOpReg)); }
void Assembler::remu(Reg rd, Reg rs1, Reg rs2) { emit32(enc_r(0x01, rs2, rs1, 7, rd, kOpReg)); }

// ---- Zicsr + privileged ----

void Assembler::csrrw(Reg rd, std::uint32_t csr, Reg rs1) { emit32(enc_csr(csr, rs1, 1, rd, kOpSystem)); }
void Assembler::csrrs(Reg rd, std::uint32_t csr, Reg rs1) { emit32(enc_csr(csr, rs1, 2, rd, kOpSystem)); }
void Assembler::csrrc(Reg rd, std::uint32_t csr, Reg rs1) { emit32(enc_csr(csr, rs1, 3, rd, kOpSystem)); }
void Assembler::csrrwi(Reg rd, std::uint32_t csr, std::uint32_t u) { emit32(enc_csr(csr, u, 5, rd, kOpSystem)); }
void Assembler::csrrsi(Reg rd, std::uint32_t csr, std::uint32_t u) { emit32(enc_csr(csr, u, 6, rd, kOpSystem)); }
void Assembler::csrrci(Reg rd, std::uint32_t csr, std::uint32_t u) { emit32(enc_csr(csr, u, 7, rd, kOpSystem)); }
void Assembler::mret() { emit32(0x30200073); }
void Assembler::wfi() { emit32(0x10500073); }

// ---- pseudo-instructions ----

void Assembler::nop() { addi(reg::x0, reg::x0, 0); }
void Assembler::mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
void Assembler::not_(Reg rd, Reg rs) { xori(rd, rs, -1); }
void Assembler::neg(Reg rd, Reg rs) { sub(rd, reg::x0, rs); }
void Assembler::seqz(Reg rd, Reg rs) { sltiu(rd, rs, 1); }
void Assembler::snez(Reg rd, Reg rs) { sltu(rd, reg::x0, rs); }

void Assembler::li(Reg rd, std::int64_t imm) {
  if (imm < INT32_MIN || imm > static_cast<std::int64_t>(UINT32_MAX))
    throw AsmError("li immediate exceeds 32 bits");
  const auto v = static_cast<std::uint32_t>(imm);
  if (static_cast<std::int32_t>(v) >= -2048 && static_cast<std::int32_t>(v) <= 2047) {
    addi(rd, reg::x0, static_cast<std::int32_t>(v));
    return;
  }
  const HiLo hl = split_hi_lo(v);
  lui(rd, hl.hi20);
  if (hl.lo12 != 0) addi(rd, rd, hl.lo12);
}

void Assembler::la(Reg rd, const std::string& lbl) {
  fixups_.push_back({segments_.size() - 1, segments_.back().bytes.size(),
                     FixKind::kHiLoPair, lbl});
  lui(rd, 0);
  addi(rd, rd, 0);
}

void Assembler::j(const std::string& lbl) { jal(reg::x0, lbl); }
void Assembler::call(const std::string& lbl) { jal(reg::ra, lbl); }
void Assembler::ret() { jalr(reg::x0, reg::ra, 0); }
void Assembler::jr(Reg rs) { jalr(reg::x0, rs, 0); }

void Assembler::beqz(Reg rs, const std::string& l) { beq(rs, reg::x0, l); }
void Assembler::bnez(Reg rs, const std::string& l) { bne(rs, reg::x0, l); }
void Assembler::blez(Reg rs, const std::string& l) { bge(reg::x0, rs, l); }
void Assembler::bgez(Reg rs, const std::string& l) { bge(rs, reg::x0, l); }
void Assembler::bltz(Reg rs, const std::string& l) { blt(rs, reg::x0, l); }
void Assembler::bgtz(Reg rs, const std::string& l) { blt(reg::x0, rs, l); }
void Assembler::bgt(Reg a, Reg b, const std::string& l) { blt(b, a, l); }
void Assembler::ble(Reg a, Reg b, const std::string& l) { bge(b, a, l); }
void Assembler::bgtu(Reg a, Reg b, const std::string& l) { bltu(b, a, l); }
void Assembler::bleu(Reg a, Reg b, const std::string& l) { bgeu(b, a, l); }

void Assembler::insn(std::uint32_t encoded) { emit32(encoded); }


// ---- RVC (compressed) ----

namespace {

std::uint8_t cprime(Reg r) {
  if (r < 8 || r > 15) throw AsmError("compressed form needs x8..x15");
  return static_cast<std::uint8_t>(r - 8);
}

void check_imm6(std::int32_t imm) {
  if (imm < -32 || imm > 31) throw AsmError("compressed immediate out of 6-bit range");
}

std::uint16_t enc_cj(std::uint32_t f3, std::int32_t imm) {
  if (imm % 2 != 0 || imm < -2048 || imm > 2046)
    throw AsmError("compressed jump displacement out of range: " + std::to_string(imm));
  const auto u = static_cast<std::uint32_t>(imm);
  auto b = [u](int pos) { return (u >> pos) & 1u; };
  return static_cast<std::uint16_t>(
      (f3 << 13) | (b(11) << 12) | (b(4) << 11) | (((u >> 8) & 3) << 9) |
      (b(10) << 8) | (b(6) << 7) | (b(7) << 6) | (((u >> 1) & 7) << 3) |
      (b(5) << 2) | 0x1);
}

std::uint16_t enc_cb(std::uint32_t f3, std::uint8_t rs1p, std::int32_t imm) {
  if (imm % 2 != 0 || imm < -256 || imm > 254)
    throw AsmError("compressed branch displacement out of range: " + std::to_string(imm));
  const auto u = static_cast<std::uint32_t>(imm);
  auto b = [u](int pos) { return (u >> pos) & 1u; };
  return static_cast<std::uint16_t>(
      (f3 << 13) | (b(8) << 12) | (((u >> 3) & 3) << 10) |
      (std::uint16_t(rs1p) << 7) | (((u >> 6) & 3) << 5) |
      (((u >> 1) & 3) << 3) | (b(5) << 2) | 0x1);
}

}  // namespace

void Assembler::c_nop() { emit16(0x0001); }

void Assembler::c_addi(Reg rd, std::int32_t imm) {
  check_reg_public(rd);
  check_imm6(imm);
  const auto u = static_cast<std::uint32_t>(imm) & 0x3f;
  emit16(static_cast<std::uint16_t>((0u << 13) | ((u >> 5) << 12) |
                                    (std::uint16_t(rd) << 7) | ((u & 0x1f) << 2) | 0x1));
}

void Assembler::c_li(Reg rd, std::int32_t imm) {
  check_reg_public(rd);
  check_imm6(imm);
  const auto u = static_cast<std::uint32_t>(imm) & 0x3f;
  emit16(static_cast<std::uint16_t>((2u << 13) | ((u >> 5) << 12) |
                                    (std::uint16_t(rd) << 7) | ((u & 0x1f) << 2) | 0x1));
}

void Assembler::c_lui(Reg rd, std::int32_t imm) {
  if (rd == 0 || rd == 2) throw AsmError("c.lui: rd must not be x0/x2");
  check_imm6(imm);
  if (imm == 0) throw AsmError("c.lui: immediate must be nonzero");
  const auto u = static_cast<std::uint32_t>(imm) & 0x3f;
  emit16(static_cast<std::uint16_t>((3u << 13) | ((u >> 5) << 12) |
                                    (std::uint16_t(rd) << 7) | ((u & 0x1f) << 2) | 0x1));
}

void Assembler::c_addi16sp(std::int32_t imm) {
  if (imm == 0 || imm % 16 != 0 || imm < -512 || imm > 496)
    throw AsmError("c.addi16sp immediate invalid");
  const auto u = static_cast<std::uint32_t>(imm);
  auto b = [u](int pos) { return (u >> pos) & 1u; };
  emit16(static_cast<std::uint16_t>((3u << 13) | (b(9) << 12) | (2u << 7) |
                                    (b(4) << 6) | (b(6) << 5) |
                                    (((u >> 7) & 3) << 3) | (b(5) << 2) | 0x1));
}

void Assembler::c_addi4spn(Reg rd_p, std::uint32_t imm) {
  if (imm == 0 || imm % 4 != 0 || imm > 1020)
    throw AsmError("c.addi4spn immediate invalid");
  auto b = [imm](unsigned pos) { return (imm >> pos) & 1u; };
  emit16(static_cast<std::uint16_t>((0u << 13) | (((imm >> 4) & 3) << 11) |
                                    (((imm >> 6) & 0xf) << 7) | (b(2) << 6) |
                                    (b(3) << 5) | (std::uint16_t(cprime(rd_p)) << 2) |
                                    0x0));
}

void Assembler::c_lw(Reg rd_p, Reg rs1_p, std::uint32_t offset) {
  if (offset % 4 != 0 || offset > 124) throw AsmError("c.lw offset invalid");
  emit16(static_cast<std::uint16_t>(
      (2u << 13) | (((offset >> 3) & 7) << 10) |
      (std::uint16_t(cprime(rs1_p)) << 7) | (((offset >> 2) & 1) << 6) |
      (((offset >> 6) & 1) << 5) | (std::uint16_t(cprime(rd_p)) << 2) | 0x0));
}

void Assembler::c_sw(Reg rs2_p, Reg rs1_p, std::uint32_t offset) {
  if (offset % 4 != 0 || offset > 124) throw AsmError("c.sw offset invalid");
  emit16(static_cast<std::uint16_t>(
      (6u << 13) | (((offset >> 3) & 7) << 10) |
      (std::uint16_t(cprime(rs1_p)) << 7) | (((offset >> 2) & 1) << 6) |
      (((offset >> 6) & 1) << 5) | (std::uint16_t(cprime(rs2_p)) << 2) | 0x0));
}

void Assembler::c_lwsp(Reg rd, std::uint32_t offset) {
  if (rd == 0) throw AsmError("c.lwsp: rd must not be x0");
  if (offset % 4 != 0 || offset > 252) throw AsmError("c.lwsp offset invalid");
  emit16(static_cast<std::uint16_t>(
      (2u << 13) | (((offset >> 5) & 1) << 12) | (std::uint16_t(rd) << 7) |
      (((offset >> 2) & 7) << 4) | (((offset >> 6) & 3) << 2) | 0x2));
}

void Assembler::c_swsp(Reg rs2, std::uint32_t offset) {
  if (offset % 4 != 0 || offset > 252) throw AsmError("c.swsp offset invalid");
  emit16(static_cast<std::uint16_t>((6u << 13) | (((offset >> 2) & 0xf) << 9) |
                                    (((offset >> 6) & 3) << 7) |
                                    (std::uint16_t(rs2) << 2) | 0x2));
}

void Assembler::c_mv(Reg rd, Reg rs2) {
  if (rd == 0 || rs2 == 0) throw AsmError("c.mv operands must not be x0");
  emit16(static_cast<std::uint16_t>((4u << 13) | (0u << 12) |
                                    (std::uint16_t(rd) << 7) |
                                    (std::uint16_t(rs2) << 2) | 0x2));
}

void Assembler::c_add(Reg rd, Reg rs2) {
  if (rd == 0 || rs2 == 0) throw AsmError("c.add operands must not be x0");
  emit16(static_cast<std::uint16_t>((4u << 13) | (1u << 12) |
                                    (std::uint16_t(rd) << 7) |
                                    (std::uint16_t(rs2) << 2) | 0x2));
}

namespace {
std::uint16_t enc_calu(std::uint32_t f2, std::uint8_t rdp, std::uint8_t rs2p) {
  return static_cast<std::uint16_t>((4u << 13) | (3u << 10) | (f2 << 5) |
                                    (std::uint16_t(rdp) << 7) |
                                    (std::uint16_t(rs2p) << 2) | 0x1);
}
}  // namespace

void Assembler::c_sub(Reg rd_p, Reg rs2_p) { emit16(enc_calu(0, cprime(rd_p), cprime(rs2_p))); }
void Assembler::c_xor(Reg rd_p, Reg rs2_p) { emit16(enc_calu(1, cprime(rd_p), cprime(rs2_p))); }
void Assembler::c_or(Reg rd_p, Reg rs2_p) { emit16(enc_calu(2, cprime(rd_p), cprime(rs2_p))); }
void Assembler::c_and(Reg rd_p, Reg rs2_p) { emit16(enc_calu(3, cprime(rd_p), cprime(rs2_p))); }

void Assembler::c_andi(Reg rd_p, std::int32_t imm) {
  check_imm6(imm);
  const auto u = static_cast<std::uint32_t>(imm) & 0x3f;
  emit16(static_cast<std::uint16_t>((4u << 13) | ((u >> 5) << 12) | (2u << 10) |
                                    (std::uint16_t(cprime(rd_p)) << 7) |
                                    ((u & 0x1f) << 2) | 0x1));
}

void Assembler::c_srli(Reg rd_p, std::uint32_t shamt) {
  if (shamt == 0 || shamt > 31) throw AsmError("c.srli shamt invalid (RV32)");
  emit16(static_cast<std::uint16_t>((4u << 13) | (0u << 10) |
                                    (std::uint16_t(cprime(rd_p)) << 7) |
                                    ((shamt & 0x1f) << 2) | 0x1));
}

void Assembler::c_srai(Reg rd_p, std::uint32_t shamt) {
  if (shamt == 0 || shamt > 31) throw AsmError("c.srai shamt invalid (RV32)");
  emit16(static_cast<std::uint16_t>((4u << 13) | (1u << 10) |
                                    (std::uint16_t(cprime(rd_p)) << 7) |
                                    ((shamt & 0x1f) << 2) | 0x1));
}

void Assembler::c_slli(Reg rd, std::uint32_t shamt) {
  if (rd == 0 || shamt == 0 || shamt > 31) throw AsmError("c.slli invalid (RV32)");
  emit16(static_cast<std::uint16_t>((0u << 13) | (std::uint16_t(rd) << 7) |
                                    ((shamt & 0x1f) << 2) | 0x2));
}

void Assembler::c_jr(Reg rs1) {
  if (rs1 == 0) throw AsmError("c.jr: rs1 must not be x0");
  emit16(static_cast<std::uint16_t>((4u << 13) | (0u << 12) |
                                    (std::uint16_t(rs1) << 7) | 0x2));
}

void Assembler::c_jalr(Reg rs1) {
  if (rs1 == 0) throw AsmError("c.jalr: rs1 must not be x0");
  emit16(static_cast<std::uint16_t>((4u << 13) | (1u << 12) |
                                    (std::uint16_t(rs1) << 7) | 0x2));
}

void Assembler::c_j(const std::string& lbl) {
  fixups_.push_back({segments_.size() - 1, segments_.back().bytes.size(),
                     FixKind::kCJump, lbl});
  emit16(enc_cj(5, 0));
}

void Assembler::c_jal(const std::string& lbl) {
  fixups_.push_back({segments_.size() - 1, segments_.back().bytes.size(),
                     FixKind::kCJump, lbl});
  emit16(enc_cj(1, 0));
}

void Assembler::c_beqz(Reg rs1_p, const std::string& lbl) {
  fixups_.push_back({segments_.size() - 1, segments_.back().bytes.size(),
                     FixKind::kCBranch, lbl});
  emit16(enc_cb(6, cprime(rs1_p), 0));
}

void Assembler::c_bnez(Reg rs1_p, const std::string& lbl) {
  fixups_.push_back({segments_.size() - 1, segments_.back().bytes.size(),
                     FixKind::kCBranch, lbl});
  emit16(enc_cb(7, cprime(rs1_p), 0));
}

void Assembler::c_ebreak() { emit16(0x9002); }

void Assembler::insn16(std::uint16_t encoded) { emit16(encoded); }

// ---- finalisation ----

void Assembler::entry(const std::string& lbl) { entry_label_ = lbl; }

std::uint64_t Assembler::resolve(const std::string& lbl) const {
  auto it = symbols_.find(lbl);
  if (it == symbols_.end()) throw AsmError("undefined label: " + lbl);
  return it->second;
}

std::uint32_t Assembler::read32(const Segment& seg, std::size_t off) const {
  return std::uint32_t(seg.bytes[off]) | (std::uint32_t(seg.bytes[off + 1]) << 8) |
         (std::uint32_t(seg.bytes[off + 2]) << 16) |
         (std::uint32_t(seg.bytes[off + 3]) << 24);
}

void Assembler::patch32(Segment& seg, std::size_t off, std::uint32_t v) {
  seg.bytes[off] = v & 0xff;
  seg.bytes[off + 1] = (v >> 8) & 0xff;
  seg.bytes[off + 2] = (v >> 16) & 0xff;
  seg.bytes[off + 3] = (v >> 24) & 0xff;
}

Program Assembler::assemble() {
  for (const Fixup& f : fixups_) {
    Segment& seg = segments_[f.segment];
    const std::uint64_t site = seg.base + f.offset;
    const std::uint64_t target = resolve(f.label);
    const auto disp =
        static_cast<std::int64_t>(target) - static_cast<std::int64_t>(site);
    switch (f.kind) {
      case FixKind::kBranch: {
        const std::uint32_t base = read32(seg, f.offset);
        const std::uint32_t f3 = (base >> 12) & 7;
        const Reg rs1 = static_cast<Reg>((base >> 15) & 0x1f);
        const Reg rs2 = static_cast<Reg>((base >> 20) & 0x1f);
        patch32(seg, f.offset, enc_b(static_cast<std::int32_t>(disp), rs2, rs1, f3));
        break;
      }
      case FixKind::kJal: {
        const std::uint32_t base = read32(seg, f.offset);
        const Reg rd = static_cast<Reg>((base >> 7) & 0x1f);
        patch32(seg, f.offset, enc_j(static_cast<std::int32_t>(disp), rd));
        break;
      }
      case FixKind::kHiLoPair: {
        const std::uint32_t lui_insn = read32(seg, f.offset);
        const Reg rd = static_cast<Reg>((lui_insn >> 7) & 0x1f);
        const HiLo hl = split_hi_lo(static_cast<std::uint32_t>(target));
        patch32(seg, f.offset, enc_u(hl.hi20, rd, kOpLui));
        patch32(seg, f.offset + 4, enc_i(hl.lo12, rd, 0, rd, kOpImm));
        break;
      }
      case FixKind::kWord:
        patch32(seg, f.offset, static_cast<std::uint32_t>(target));
        break;
      case FixKind::kCJump: {
        const std::uint16_t base = static_cast<std::uint16_t>(
            seg.bytes[f.offset] | (seg.bytes[f.offset + 1] << 8));
        const std::uint32_t f3 = (base >> 13) & 7;
        const std::uint16_t enc = enc_cj(f3, static_cast<std::int32_t>(disp));
        seg.bytes[f.offset] = enc & 0xff;
        seg.bytes[f.offset + 1] = enc >> 8;
        break;
      }
      case FixKind::kCBranch: {
        const std::uint16_t base = static_cast<std::uint16_t>(
            seg.bytes[f.offset] | (seg.bytes[f.offset + 1] << 8));
        const std::uint32_t f3 = (base >> 13) & 7;
        const auto rs1p = static_cast<std::uint8_t>((base >> 7) & 7);
        const std::uint16_t enc = enc_cb(f3, rs1p, static_cast<std::int32_t>(disp));
        seg.bytes[f.offset] = enc & 0xff;
        seg.bytes[f.offset + 1] = enc >> 8;
        break;
      }
    }
  }
  Program p;
  p.segments = segments_;
  p.symbols = symbols_;
  p.entry = entry_label_.empty() ? segments_.front().base : resolve(entry_label_);
  p.text_bytes = text_bytes_;
  return p;
}

}  // namespace vpdift::rvasm
