// RV32IM + Zicsr assembler, usable as a C++ DSL.
//
// Firmware in this repo is authored directly against this class (there is no
// offline RISC-V cross-compiler): each emit method appends one instruction at
// the current location; labels may be referenced before they are defined and
// are resolved by assemble(). `org()` starts a new segment (e.g. a data
// section at a different address).
//
//   Assembler a(0x80000000);
//   using namespace vpdift::rvasm::reg;
//   a.li(a0, 10);
//   a.label("loop");
//   a.addi(a0, a0, -1);
//   a.bnez(a0, "loop");
//   Program p = a.assemble();
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rvasm/program.hpp"
#include "rvasm/reg.hpp"

namespace vpdift::rvasm {

class AsmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Assembler {
 public:
  explicit Assembler(std::uint64_t base = 0x80000000ull);

  // ---- location control ----

  /// Current emit address.
  std::uint64_t here() const;
  /// Starts a new segment at `address`.
  void org(std::uint64_t address);
  /// Defines `name` at the current address.
  void label(const std::string& name);
  /// Defines `name` at a fixed address (for external/MMIO symbols).
  void equ(const std::string& name, std::uint64_t address);
  /// Pads with zero bytes until the address is `alignment`-aligned.
  void align(std::uint32_t alignment);

  // ---- data directives ----

  void byte(std::uint8_t v);
  void half(std::uint16_t v);
  void word(std::uint32_t v);
  /// Emits a 32-bit word holding the address of `label` (resolved late).
  void word_of(const std::string& label);
  void bytes(const std::uint8_t* data, std::size_t n);
  void ascii(std::string_view s);
  void asciiz(std::string_view s);
  void zero_fill(std::size_t n);

  // ---- RV32I ----

  void lui(Reg rd, std::int32_t imm20);
  void auipc(Reg rd, std::int32_t imm20);
  void jal(Reg rd, const std::string& label);
  void jalr(Reg rd, Reg rs1, std::int32_t imm);
  void beq(Reg rs1, Reg rs2, const std::string& label);
  void bne(Reg rs1, Reg rs2, const std::string& label);
  void blt(Reg rs1, Reg rs2, const std::string& label);
  void bge(Reg rs1, Reg rs2, const std::string& label);
  void bltu(Reg rs1, Reg rs2, const std::string& label);
  void bgeu(Reg rs1, Reg rs2, const std::string& label);
  void lb(Reg rd, Reg rs1, std::int32_t imm);
  void lh(Reg rd, Reg rs1, std::int32_t imm);
  void lw(Reg rd, Reg rs1, std::int32_t imm);
  void lbu(Reg rd, Reg rs1, std::int32_t imm);
  void lhu(Reg rd, Reg rs1, std::int32_t imm);
  void sb(Reg rs2, Reg rs1, std::int32_t imm);
  void sh(Reg rs2, Reg rs1, std::int32_t imm);
  void sw(Reg rs2, Reg rs1, std::int32_t imm);
  void addi(Reg rd, Reg rs1, std::int32_t imm);
  void slti(Reg rd, Reg rs1, std::int32_t imm);
  void sltiu(Reg rd, Reg rs1, std::int32_t imm);
  void xori(Reg rd, Reg rs1, std::int32_t imm);
  void ori(Reg rd, Reg rs1, std::int32_t imm);
  void andi(Reg rd, Reg rs1, std::int32_t imm);
  void slli(Reg rd, Reg rs1, std::uint32_t shamt);
  void srli(Reg rd, Reg rs1, std::uint32_t shamt);
  void srai(Reg rd, Reg rs1, std::uint32_t shamt);
  void add(Reg rd, Reg rs1, Reg rs2);
  void sub(Reg rd, Reg rs1, Reg rs2);
  void sll(Reg rd, Reg rs1, Reg rs2);
  void slt(Reg rd, Reg rs1, Reg rs2);
  void sltu(Reg rd, Reg rs1, Reg rs2);
  void xor_(Reg rd, Reg rs1, Reg rs2);
  void srl(Reg rd, Reg rs1, Reg rs2);
  void sra(Reg rd, Reg rs1, Reg rs2);
  void or_(Reg rd, Reg rs1, Reg rs2);
  void and_(Reg rd, Reg rs1, Reg rs2);
  void fence();
  void ecall();
  void ebreak();

  // ---- RV32M ----

  void mul(Reg rd, Reg rs1, Reg rs2);
  void mulh(Reg rd, Reg rs1, Reg rs2);
  void mulhsu(Reg rd, Reg rs1, Reg rs2);
  void mulhu(Reg rd, Reg rs1, Reg rs2);
  void div_(Reg rd, Reg rs1, Reg rs2);
  void divu(Reg rd, Reg rs1, Reg rs2);
  void rem(Reg rd, Reg rs1, Reg rs2);
  void remu(Reg rd, Reg rs1, Reg rs2);

  // ---- Zicsr + privileged ----

  void csrrw(Reg rd, std::uint32_t csr, Reg rs1);
  void csrrs(Reg rd, std::uint32_t csr, Reg rs1);
  void csrrc(Reg rd, std::uint32_t csr, Reg rs1);
  void csrrwi(Reg rd, std::uint32_t csr, std::uint32_t uimm);
  void csrrsi(Reg rd, std::uint32_t csr, std::uint32_t uimm);
  void csrrci(Reg rd, std::uint32_t csr, std::uint32_t uimm);
  void mret();
  void wfi();

  // ---- pseudo-instructions ----

  void nop();
  void mv(Reg rd, Reg rs);
  void not_(Reg rd, Reg rs);
  void neg(Reg rd, Reg rs);
  void seqz(Reg rd, Reg rs);
  void snez(Reg rd, Reg rs);
  /// Loads a 32-bit constant (1 or 2 instructions).
  void li(Reg rd, std::int64_t imm);
  /// Loads the address of `label` (always lui+addi, 8 bytes).
  void la(Reg rd, const std::string& label);
  void j(const std::string& label);
  void call(const std::string& label);  ///< jal ra, label
  void ret();                           ///< jalr x0, ra, 0
  void jr(Reg rs);                      ///< jalr x0, rs, 0
  void beqz(Reg rs, const std::string& label);
  void bnez(Reg rs, const std::string& label);
  void blez(Reg rs, const std::string& label);
  void bgez(Reg rs, const std::string& label);
  void bltz(Reg rs, const std::string& label);
  void bgtz(Reg rs, const std::string& label);
  void bgt(Reg rs1, Reg rs2, const std::string& label);   ///< blt swapped
  void ble(Reg rs1, Reg rs2, const std::string& label);   ///< bge swapped
  void bgtu(Reg rs1, Reg rs2, const std::string& label);  ///< bltu swapped
  void bleu(Reg rs1, Reg rs2, const std::string& label);  ///< bgeu swapped

  // ---- RVC (compressed, 2-byte parcels) ----
  // Registers marked ' must be x8..x15 (s0,s1,a0-a5); immediates follow the
  // natural units of each form (bytes for memory offsets).

  void c_nop();
  void c_addi(Reg rd, std::int32_t imm6);         ///< rd += sext imm6 (nonzero)
  void c_li(Reg rd, std::int32_t imm6);
  void c_lui(Reg rd, std::int32_t imm6);          ///< rd = sext(imm6) << 12
  void c_addi16sp(std::int32_t imm);              ///< sp += imm (16-aligned)
  void c_addi4spn(Reg rd_p, std::uint32_t imm);   ///< rd' = sp + imm (4-aligned)
  void c_lw(Reg rd_p, Reg rs1_p, std::uint32_t offset);
  void c_sw(Reg rs2_p, Reg rs1_p, std::uint32_t offset);
  void c_lwsp(Reg rd, std::uint32_t offset);
  void c_swsp(Reg rs2, std::uint32_t offset);
  void c_mv(Reg rd, Reg rs2);
  void c_add(Reg rd, Reg rs2);
  void c_sub(Reg rd_p, Reg rs2_p);
  void c_xor(Reg rd_p, Reg rs2_p);
  void c_or(Reg rd_p, Reg rs2_p);
  void c_and(Reg rd_p, Reg rs2_p);
  void c_andi(Reg rd_p, std::int32_t imm6);
  void c_srli(Reg rd_p, std::uint32_t shamt);
  void c_srai(Reg rd_p, std::uint32_t shamt);
  void c_slli(Reg rd, std::uint32_t shamt);
  void c_jr(Reg rs1);
  void c_jalr(Reg rs1);
  void c_j(const std::string& label);
  void c_jal(const std::string& label);
  void c_beqz(Reg rs1_p, const std::string& label);
  void c_bnez(Reg rs1_p, const std::string& label);
  void c_ebreak();

  /// Raw 32-bit instruction escape hatch.
  void insn(std::uint32_t encoded);
  /// Raw 16-bit compressed parcel escape hatch.
  void insn16(std::uint16_t encoded);

  // ---- finalisation ----

  /// Sets the program entry point (defaults to the first segment base).
  void entry(const std::string& label);
  /// Resolves all fixups and returns the image. Throws AsmError on undefined
  /// labels or out-of-range displacements.
  Program assemble();

 private:
  enum class FixKind : std::uint8_t {
    kBranch, kJal, kHiLoPair, kWord, kCJump, kCBranch
  };
  struct Fixup {
    std::size_t segment;
    std::size_t offset;
    FixKind kind;
    std::string label;
  };

  void emit32(std::uint32_t v);
  void emit16(std::uint16_t v);
  void emit_branch(std::uint32_t funct3, Reg rs1, Reg rs2, const std::string& label);
  std::uint64_t resolve(const std::string& label) const;
  void patch32(Segment& seg, std::size_t off, std::uint32_t v);
  std::uint32_t read32(const Segment& seg, std::size_t off) const;

  std::vector<Segment> segments_;
  std::map<std::string, std::uint64_t> symbols_;
  std::vector<Fixup> fixups_;
  std::string entry_label_;
  std::size_t text_bytes_ = 0;
};

/// Splits a 32-bit value into the (hi20, lo12) pair used by lui+addi so that
/// hi20<<12 + sext(lo12) == value.
struct HiLo {
  std::int32_t hi20;
  std::int32_t lo12;
};
HiLo split_hi_lo(std::uint32_t value);

}  // namespace vpdift::rvasm
