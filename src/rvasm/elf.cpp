#include "rvasm/elf.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

namespace vpdift::rvasm {

namespace {

// ELF constants (System V ABI).
constexpr std::uint8_t kMagic[4] = {0x7f, 'E', 'L', 'F'};
constexpr std::uint8_t kClass32 = 1;
constexpr std::uint8_t kDataLsb = 1;
constexpr std::uint16_t kTypeExec = 2;
constexpr std::uint16_t kMachineRiscv = 243;
constexpr std::uint32_t kPtLoad = 1;

struct Reader {
  const std::uint8_t* data;
  std::size_t size;

  void require(std::size_t off, std::size_t n, const char* what) const {
    if (off + n > size || off + n < off)
      throw ElfError(std::string("ELF truncated reading ") + what);
  }
  std::uint16_t u16(std::size_t off, const char* what) const {
    require(off, 2, what);
    return static_cast<std::uint16_t>(data[off] | (data[off + 1] << 8));
  }
  std::uint32_t u32(std::size_t off, const char* what) const {
    require(off, 4, what);
    std::uint32_t v;
    std::memcpy(&v, data + off, 4);
    return v;  // host is little-endian
  }
};

}  // namespace

Program load_elf32(const std::uint8_t* data, std::size_t size) {
  const Reader r{data, size};
  r.require(0, 52, "ELF header");
  if (std::memcmp(data, kMagic, 4) != 0) throw ElfError("not an ELF file");
  if (data[4] != kClass32) throw ElfError("not an ELF32 file");
  if (data[5] != kDataLsb) throw ElfError("not little-endian");
  const std::uint16_t type = r.u16(16, "e_type");
  if (type != kTypeExec) throw ElfError("not an executable (ET_EXEC expected)");
  const std::uint16_t machine = r.u16(18, "e_machine");
  if (machine != kMachineRiscv)
    throw ElfError("not a RISC-V binary (e_machine=" + std::to_string(machine) + ")");

  Program p;
  p.entry = r.u32(24, "e_entry");
  const std::uint32_t phoff = r.u32(28, "e_phoff");
  const std::uint16_t phentsize = r.u16(42, "e_phentsize");
  const std::uint16_t phnum = r.u16(44, "e_phnum");
  if (phentsize < 32) throw ElfError("bad e_phentsize");

  // A crafted header must not be able to allocate unbounded memory or
  // produce an image the loader's flat-RAM model cannot represent: each
  // segment's [vaddr, vaddr+memsz) must fit the 32-bit address space
  // without wrapping, the total load size is capped, and PT_LOAD ranges
  // must not overlap (two segments claiming the same address would load
  // order-dependently — always a linker or header corruption).
  constexpr std::uint64_t kMaxLoadBytes = 256u << 20;
  std::uint64_t total = 0;
  for (std::uint16_t i = 0; i < phnum; ++i) {
    const std::size_t ph = phoff + std::size_t(i) * phentsize;
    r.require(ph, 32, "program header");
    if (r.u32(ph + 0, "p_type") != kPtLoad) continue;
    const std::uint32_t offset = r.u32(ph + 4, "p_offset");
    const std::uint32_t vaddr = r.u32(ph + 8, "p_vaddr");
    const std::uint32_t filesz = r.u32(ph + 16, "p_filesz");
    const std::uint32_t memsz = r.u32(ph + 20, "p_memsz");
    if (memsz == 0) continue;
    if (filesz > memsz) throw ElfError("p_filesz exceeds p_memsz");
    if (std::uint64_t(vaddr) + memsz > 0x100000000ull)
      throw ElfError("PT_LOAD segment wraps the 32-bit address space");
    total += memsz;
    if (total > kMaxLoadBytes)
      throw ElfError("PT_LOAD segments exceed the load-size cap");
    for (const Segment& prev : p.segments) {
      const std::uint64_t lo = std::max<std::uint64_t>(prev.base, vaddr);
      const std::uint64_t hi = std::min<std::uint64_t>(
          prev.base + prev.bytes.size(), std::uint64_t(vaddr) + memsz);
      if (lo < hi) throw ElfError("overlapping PT_LOAD segments");
    }
    r.require(offset, filesz, "segment bytes");
    Segment seg;
    seg.base = vaddr;
    seg.bytes.assign(data + offset, data + offset + filesz);
    seg.bytes.resize(memsz, 0);  // .bss tail
    p.segments.push_back(std::move(seg));
  }
  if (p.segments.empty()) throw ElfError("no PT_LOAD segments");
  return p;
}

Program load_elf32_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ElfError("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return load_elf32(bytes.data(), bytes.size());
}

}  // namespace vpdift::rvasm
