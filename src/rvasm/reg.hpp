// RISC-V integer register names (x-names and ABI aliases).
#pragma once

#include <cstdint>

namespace vpdift::rvasm {

/// Register number 0..31.
using Reg = std::uint8_t;

namespace reg {
inline constexpr Reg x0 = 0, x1 = 1, x2 = 2, x3 = 3, x4 = 4, x5 = 5, x6 = 6,
                     x7 = 7, x8 = 8, x9 = 9, x10 = 10, x11 = 11, x12 = 12,
                     x13 = 13, x14 = 14, x15 = 15, x16 = 16, x17 = 17, x18 = 18,
                     x19 = 19, x20 = 20, x21 = 21, x22 = 22, x23 = 23, x24 = 24,
                     x25 = 25, x26 = 26, x27 = 27, x28 = 28, x29 = 29, x30 = 30,
                     x31 = 31;
// ABI aliases.
inline constexpr Reg zero = x0, ra = x1, sp = x2, gp = x3, tp = x4;
inline constexpr Reg t0 = x5, t1 = x6, t2 = x7;
inline constexpr Reg s0 = x8, fp = x8, s1 = x9;
inline constexpr Reg a0 = x10, a1 = x11, a2 = x12, a3 = x13, a4 = x14, a5 = x15,
                     a6 = x16, a7 = x17;
inline constexpr Reg s2 = x18, s3 = x19, s4 = x20, s5 = x21, s6 = x22, s7 = x23,
                     s8 = x24, s9 = x25, s10 = x26, s11 = x27;
inline constexpr Reg t3 = x28, t4 = x29, t5 = x30, t6 = x31;
}  // namespace reg

/// ABI name of register `r` ("zero", "ra", "sp", ...).
const char* reg_name(Reg r);

}  // namespace vpdift::rvasm
