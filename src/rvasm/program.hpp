// Assembled program images.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vpdift::rvasm {

/// A contiguous run of bytes placed at a fixed address.
struct Segment {
  std::uint64_t base = 0;
  std::vector<std::uint8_t> bytes;
  std::uint64_t end() const { return base + bytes.size(); }
};

/// The loadable result of an Assembler run.
struct Program {
  std::vector<Segment> segments;
  std::map<std::string, std::uint64_t> symbols;
  std::uint64_t entry = 0;
  std::size_t text_bytes = 0;  ///< bytes emitted as instructions (not data)

  /// Address of `symbol`; throws std::out_of_range if undefined.
  std::uint64_t symbol(const std::string& name) const { return symbols.at(name); }
  /// Total loadable size in bytes.
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : segments) n += s.bytes.size();
    return n;
  }
  /// Number of emitted instructions (the static LoC-ASM measure of Table II).
  std::size_t instruction_slots() const { return text_bytes / 4; }
};

}  // namespace vpdift::rvasm
