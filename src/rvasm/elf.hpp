// Minimal ELF32 loader for RV32 executables.
//
// Firmware in this repo is normally authored with the Assembler, but a
// downstream user with a RISC-V cross-toolchain will have real ELF binaries.
// This parser turns a little-endian ELF32 executable for EM_RISCV into the
// same rvasm::Program representation the loader already consumes: one
// Segment per PT_LOAD header (file bytes plus zero-filled .bss tail) and the
// ELF entry point. Section headers and symbols beyond the entry are ignored
// — the VP does not need them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "rvasm/program.hpp"

namespace vpdift::rvasm {

class ElfError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses an ELF32 image from memory. Throws ElfError on malformed input,
/// wrong class/endianness/machine, or truncated headers.
Program load_elf32(const std::uint8_t* data, std::size_t size);

/// Convenience: reads and parses a file. Throws ElfError (also on I/O).
Program load_elf32_file(const std::string& path);

}  // namespace vpdift::rvasm
