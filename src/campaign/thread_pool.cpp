#include "campaign/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

namespace vpdift::campaign {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(state_m_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  std::size_t slot;
  {
    std::lock_guard lk(state_m_);
    slot = next_++ % workers_.size();
    ++queued_;
    ++pending_;
  }
  {
    std::lock_guard lk(workers_[slot]->m);
    workers_[slot]->q.push_back(std::move(fn));
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest-first; then sweep the others oldest-first.
  {
    Worker& w = *workers_[self];
    std::lock_guard lk(w.m);
    if (!w.q.empty()) {
      out = std::move(w.q.back());
      w.q.pop_back();
      std::lock_guard slk(state_m_);
      --queued_;
      return true;
    }
  }
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& v = *workers_[(self + k) % workers_.size()];
    std::lock_guard lk(v.m);
    if (!v.q.empty()) {
      out = std::move(v.q.front());
      v.q.pop_front();
      std::lock_guard slk(state_m_);
      --queued_;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> job;
    if (!try_pop(self, job)) {
      std::unique_lock lk(state_m_);
      wake_.wait(lk, [this] { return stop_ || queued_ > 0; });
      if (stop_ && queued_ == 0) return;
      continue;
    }
    job();
    job = nullptr;  // release captures before reporting completion
    {
      std::lock_guard lk(state_m_);
      if (--pending_ == 0) idle_.notify_all();
    }
    // A finished task may have submitted follow-ups; other workers could
    // still be asleep from before. Cheap insurance against a lost wakeup:
    wake_.notify_one();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(state_m_);
  idle_.wait(lk, [this] { return pending_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::mutex done_m;
  std::condition_variable done_cv;
  std::size_t done = 0;  // guarded by done_m
  std::exception_ptr first;
  for (std::size_t i = 0; i < n; ++i) {
    submit([&, i] {
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard lk(done_m);
      if (err && !first) first = err;
      if (++done == n) done_cv.notify_all();
    });
  }
  std::unique_lock lk(done_m);
  done_cv.wait(lk, [&] { return done == n; });
  if (first) std::rethrow_exception(first);
}

std::size_t ThreadPool::jobs_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("VPDIFT_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<std::size_t>(v);
  }
  if (fallback) return fallback;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

}  // namespace vpdift::campaign
