#include "campaign/spec.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "campaign/json.hpp"

namespace vpdift::campaign {

const char* to_string(VpMode mode) {
  switch (mode) {
    case VpMode::kPlain: return "plain";
    case VpMode::kDift: return "dift";
    case VpMode::kMonitor: return "monitor";
  }
  return "?";
}

// ---------------------------------------------------------------- numerics

namespace {
// strtoull/strtol/strtod silently skip leading whitespace; strict parsing
// must not.
bool leading_space(std::string_view s) {
  return !s.empty() && std::isspace(static_cast<unsigned char>(s[0]));
}
}  // namespace

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty() || leading_space(s)) return false;
  const std::string z(s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(z.c_str(), &end, 0);
  if (errno != 0 || end != z.c_str() + z.size() || z[0] == '-') return false;
  *out = v;
  return true;
}

bool parse_i32(std::string_view s, std::int32_t* out) {
  if (s.empty() || leading_space(s)) return false;
  const std::string z(s);
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(z.c_str(), &end, 0);
  if (errno != 0 || end != z.c_str() + z.size()) return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<std::int32_t>(v);
  return true;
}

bool parse_f64(std::string_view s, double* out) {
  if (s.empty() || leading_space(s)) return false;
  const std::string z(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(z.c_str(), &end);
  if (errno != 0 || end != z.c_str() + z.size()) return false;
  *out = v;
  return true;
}

std::string decode_escapes(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size())
      throw std::invalid_argument("dangling backslash in escaped string");
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case '0': out += '\0'; break;
      case '\\': out += '\\'; break;
      case 'x': {
        if (i + 2 >= s.size() || !std::isxdigit(static_cast<unsigned char>(s[i + 1])) ||
            !std::isxdigit(static_cast<unsigned char>(s[i + 2])))
          throw std::invalid_argument("malformed \\xNN escape");
        const std::string hex(s.substr(i + 1, 2));
        out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
        i += 2;
        break;
      }
      default:
        throw std::invalid_argument(std::string("unknown escape \\") + s[i]);
    }
  }
  return out;
}

// ------------------------------------------------------------- text format

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

VpMode parse_mode(std::string_view v, std::size_t line) {
  if (v == "plain") return VpMode::kPlain;
  if (v == "dift") return VpMode::kDift;
  if (v == "monitor") return VpMode::kMonitor;
  throw SpecParseError(line, "unknown mode '" + std::string(v) +
                                 "' (plain | dift | monitor)");
}

bool parse_bool(std::string_view v, std::size_t line) {
  if (v == "on" || v == "true" || v == "1") return true;
  if (v == "off" || v == "false" || v == "0") return false;
  throw SpecParseError(line, "expected on/off, got '" + std::string(v) + "'");
}

/// Applies one `key value` line to `job`. Returns false if the key is unknown.
bool apply_field(JobSpec& job, std::string_view key, std::string_view value,
                 std::size_t line) {
  if (key == "firmware") {
    job.firmware = std::string(value);
  } else if (key == "policy") {
    job.policy = std::string(value);
  } else if (key == "mode") {
    job.mode = parse_mode(value, line);
  } else if (key == "uart-input" || key == "uart_input") {
    try {
      job.uart_input = decode_escapes(value);
    } catch (const std::invalid_argument& e) {
      throw SpecParseError(line, e.what());
    }
  } else if (key == "max-ms" || key == "max_ms") {
    if (!parse_u64(value, &job.max_ms))
      throw SpecParseError(line, "max-ms: not a number: '" + std::string(value) + "'");
  } else if (key == "wall-budget-s" || key == "wall_budget_s") {
    if (!parse_f64(value, &job.wall_budget_s) || job.wall_budget_s < 0)
      throw SpecParseError(line, "wall-budget-s: not a non-negative number: '" +
                                     std::string(value) + "'");
  } else if (key == "mem-budget-mb" || key == "mem_budget_mb") {
    if (!parse_u64(value, &job.mem_budget_mb))
      throw SpecParseError(line, "mem-budget-mb: not a number: '" +
                                     std::string(value) + "'");
  } else if (key == "retries") {
    if (!parse_i32(value, &job.retries) || job.retries < 0)
      throw SpecParseError(line, "retries: not a non-negative integer: '" +
                                     std::string(value) + "'");
  } else if (key == "engine-ecu" || key == "engine_ecu") {
    job.engine_ecu = parse_bool(value, line);
  } else if (key == "analyze") {
    job.analyze = parse_bool(value, line);
  } else if (key == "expect") {
    job.expect = std::string(value);
  } else {
    return false;
  }
  return true;
}

CampaignSpec parse_text(std::string_view text) {
  CampaignSpec spec;
  JobSpec defaults;
  JobSpec* target = nullptr;  // nullptr until `defaults` or `job` opens a block
  bool in_defaults = false;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    if (const std::size_t hash = raw.find('#'); hash != std::string_view::npos)
      raw = raw.substr(0, hash);
    const std::string_view line = trim(raw);
    if (line.empty()) continue;

    const std::size_t sp = line.find_first_of(" \t");
    const std::string_view key = sp == std::string_view::npos ? line : line.substr(0, sp);
    const std::string_view value =
        sp == std::string_view::npos ? std::string_view{} : trim(line.substr(sp + 1));

    if (key == "campaign") {
      spec.name = std::string(value);
    } else if (key == "defaults") {
      target = &defaults;
      in_defaults = true;
    } else if (key == "job") {
      if (value.empty()) throw SpecParseError(line_no, "job needs a name");
      spec.jobs.push_back(defaults);
      spec.jobs.back().name = std::string(value);
      target = &spec.jobs.back();
      in_defaults = false;
    } else {
      if (!target)
        throw SpecParseError(line_no, "field '" + std::string(key) +
                                          "' outside a job/defaults block");
      if (!apply_field(*target, key, value, line_no))
        throw SpecParseError(line_no, "unknown field '" + std::string(key) + "'");
      (void)in_defaults;
    }
  }

  for (const JobSpec& j : spec.jobs)
    if (j.firmware.empty())
      throw SpecParseError(0, "job '" + j.name + "' has no firmware");
  return spec;
}

// ------------------------------------------------------------- JSON format
//
// The document parser lives in campaign/json.hpp (shared with the service
// protocol); this section only maps parsed objects onto JobSpecs.

}  // namespace

void job_spec_from_json(JobSpec& job, const JsonValue& obj) {
  for (const auto& [key, v] : obj.object) {
    if (key == "name") {
      job.name = v.string;
      continue;
    }
    std::string text;
    switch (v.kind) {
      case JsonValue::Kind::kString: text = v.string; break;
      case JsonValue::Kind::kBool: text = v.boolean ? "on" : "off"; break;
      case JsonValue::Kind::kNumber: {
        // Integral values must re-render as integers at full precision:
        // default ostream formatting turns 1e8 into "1e+08", which the
        // u64 field parsers reject (a max-ms of 100000000 would fail to
        // round-trip through the service wire).
        const double d = v.number;
        if (d >= 0 && d < 9007199254740992.0 &&  // exactly representable
            d == static_cast<double>(static_cast<std::uint64_t>(d))) {
          text = std::to_string(static_cast<std::uint64_t>(d));
        } else {
          std::ostringstream os;
          os.precision(17);
          os << d;
          text = os.str();
        }
        break;
      }
      default:
        throw SpecParseError(0, "job field '" + key + "' has an unsupported type");
    }
    // JSON strings arrive already unescaped; apply_field would re-decode
    // backslashes in uart input, so set that one directly.
    if (key == "uart_input" || key == "uart-input") {
      job.uart_input = text;
      continue;
    }
    if (!apply_field(job, key, text, 0))
      throw SpecParseError(0, "unknown job field '" + key + "'");
  }
}

std::string job_spec_to_json(const JobSpec& job) {
  std::ostringstream out;
  out << "{\"name\":" << json_quote(job.name)
      << ",\"firmware\":" << json_quote(job.firmware)
      << ",\"policy\":" << json_quote(job.policy)
      << ",\"mode\":" << json_quote(to_string(job.mode))
      << ",\"uart_input\":" << json_quote(job.uart_input)
      << ",\"max_ms\":" << job.max_ms
      << ",\"wall_budget_s\":" << job.wall_budget_s
      << ",\"mem_budget_mb\":" << job.mem_budget_mb
      << ",\"retries\":" << job.retries
      << ",\"engine_ecu\":" << (job.engine_ecu ? "true" : "false")
      << ",\"analyze\":" << (job.analyze ? "true" : "false")
      << ",\"expect\":" << json_quote(job.expect) << "}";
  return out.str();
}

namespace {

CampaignSpec parse_json(std::string_view text) {
  JsonValue root;
  try {
    root = json_parse(text);
  } catch (const JsonError& e) {
    throw SpecParseError(e.line(), e.message());
  }
  if (root.kind != JsonValue::Kind::kObject)
    throw SpecParseError(1, "top-level JSON value must be an object");
  CampaignSpec spec;
  if (const JsonValue* name = root.find("campaign"); name)
    spec.name = name->string;
  else if (const JsonValue* n2 = root.find("name"); n2)
    spec.name = n2->string;

  JobSpec defaults;
  if (const JsonValue* d = root.find("defaults"); d)
    job_spec_from_json(defaults, *d);

  const JsonValue* jobs = root.find("jobs");
  if (!jobs || jobs->kind != JsonValue::Kind::kArray)
    throw SpecParseError(1, "spec needs a \"jobs\" array");
  for (const JsonValue& j : jobs->array) {
    if (j.kind != JsonValue::Kind::kObject)
      throw SpecParseError(1, "every job must be an object");
    JobSpec job = defaults;
    job_spec_from_json(job, j);
    if (job.name.empty())
      job.name = "job" + std::to_string(spec.jobs.size());
    if (job.firmware.empty())
      throw SpecParseError(1, "job '" + job.name + "' has no firmware");
    spec.jobs.push_back(std::move(job));
  }
  return spec;
}

}  // namespace

CampaignSpec CampaignSpec::parse(std::string_view text) {
  const std::string_view body = trim(text);
  if (!body.empty() && body.front() == '{') return parse_json(body);
  return parse_text(text);
}

CampaignSpec CampaignSpec::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open campaign spec: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace vpdift::campaign
