// Batch execution of campaign jobs on worker threads.
//
// Each job is one self-contained VP simulation: the worker thread builds the
// firmware, the policy and the VirtualPrototype locally, runs it, and folds
// the outcome into a JobResult. Nothing is shared between jobs — the
// thread_local active-context refactor (dift/context.hpp, sysc/kernel.hpp)
// makes a VP thread-confined, and the runner never lets two threads touch
// the same VP. With jobs == 1 the runner degrades to a plain serial loop on
// the calling thread, which is the bit-identical reference the parallel
// paths are tested against.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "dift/policy_parser.hpp"
#include "sa/analyze.hpp"
#include "vp/scenarios.hpp"
#include "vp/vp.hpp"

namespace vpdift::campaign {

/// One retry attempt's outcome, kept so the aggregate report can show what
/// the retries actually absorbed (a job that crashed twice and then passed
/// looks identical to a clean pass in the final verdict alone).
struct AttemptRecord {
  std::string verdict;
  std::string error;  ///< empty unless the attempt crashed
  /// Instructions retired when the attempt ended — for deadline-expired
  /// attempts this is the retirement count at kill time, which is what
  /// deterministic_hang() compares across attempts.
  std::uint64_t instret = 0;
};

/// Outcome of one job (last attempt, if it was retried).
struct JobResult {
  std::string name;
  std::string verdict;  ///< exit:N | violation:<kind> | timeout | wall-timeout
                        ///< | watchdog-reset | trap | crash | hung
                        ///< | unknown(<raw>) for a foreign exit reason
  bool ok = false;      ///< verdict matches the job's `expect` (no crash, if empty)
  int attempts = 0;     ///< 1 + retries actually consumed
  std::string error;    ///< exception message when verdict == "crash"
  std::vector<AttemptRecord> history;  ///< every attempt, in order
  vp::RunResult run;    ///< full VP run result (default-constructed on crash)
  double wall_seconds = 0.0;  ///< host time across all attempts
  /// Static-analysis result for jobs with analyze = true (shared with the
  /// service's analysis cache; null otherwise).
  std::shared_ptr<const sa::AnalysisResult> analysis;
};

struct ResolvedPolicy;

/// Caches one constructed VP per flavour and re-arms it (reset +
/// load_firmware) for the next job instead of rebuilding — the service
/// worker's warm path. Single-threaded by design: a VP is thread-confined,
/// so a pool must only ever be driven from one thread (the service's
/// worker processes each own one).
class VpPool {
 public:
  /// A reset VP matching `cfg` — reused when the cached instance's config
  /// is config_equivalent(), rebuilt otherwise. The reference stays valid
  /// until the next acquire of the same flavour. `fw_key` is the content
  /// hash of the firmware about to be loaded (program_content_key; 0 =
  /// unknown): when it matches the previous acquire of the same flavour,
  /// the re-arm keeps the core's translated-block cache warm — the reload
  /// is byte-identical, so the translations (and superblocks) revalidate —
  /// and the reuse is counted in translation_reuses().
  template <typename VpT>
  VpT& acquire(const vp::VpConfig& cfg, std::uint64_t fw_key = 0);

  std::uint64_t builds() const { return builds_; }
  std::uint64_t reuses() const { return reuses_; }
  /// Re-arms that kept the translated-block cache warm (firmware content
  /// hash unchanged since the previous acquire of that flavour).
  std::uint64_t translation_reuses() const { return translation_reuses_; }

 private:
  std::unique_ptr<vp::Vp> plain_;
  std::unique_ptr<vp::VpDift> dift_;
  std::uint64_t plain_fw_key_ = 0;
  std::uint64_t dift_fw_key_ = 0;
  std::uint64_t builds_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t translation_reuses_ = 0;
};

/// Pluggable execution environment for run_job: resolver overrides (how
/// the service's content-hash caches slot in under the runner) and an
/// optional warm-VP pool. Everything here may hold single-threaded state —
/// pass an env only on serial (jobs == 1) runs or per-worker.
struct RunnerEnv {
  /// Override of campaign::resolve_firmware (e.g. an ELF-image cache).
  std::function<rvasm::Program(const std::string&)> resolve_firmware;
  /// Override of campaign::resolve_policy (e.g. a parsed-policy cache).
  /// The returned pointer must stay valid for the duration of the job; a
  /// shared_ptr so a cache can hand out its entry without copying (a
  /// ResolvedPolicy owns its lattice and is move-only).
  std::function<std::shared_ptr<const ResolvedPolicy>(
      const std::string& name, const rvasm::Program& program)>
      resolve_policy;
  /// Override of the static-analysis step for analyze = true jobs (the
  /// service's content-hash analysis cache). Receives the already-resolved
  /// program and policy plus the VP's RAM size; a null return falls back to
  /// running sa::analyze locally.
  std::function<std::shared_ptr<const sa::AnalysisResult>(
      const std::string& firmware, const std::string& policy_name,
      const rvasm::Program& program, const dift::SecurityPolicy* policy,
      std::uint64_t ram_size)>
      resolve_analysis;
  /// Warm-VP pool; nullptr = build a fresh VP per job (the cold path).
  VpPool* pool = nullptr;
  /// Live retirement counter, published every simulated millisecond while a
  /// job runs (and once more with the final count). A service worker points
  /// this at an atomic its heartbeat thread reads, so the supervising parent
  /// can tell a slow job (instret advancing) from a wedged one (stuck).
  /// Null = no progress reporting. The extra observer task never perturbs
  /// the run: execution is a function of simulated time only.
  std::atomic<std::uint64_t>* progress = nullptr;
};

struct RunnerOptions {
  std::size_t jobs = 1;  ///< worker threads; 1 = serial on the calling thread
  /// Called as each job finishes (any worker thread; calls are serialized).
  std::function<void(const JobResult&)> on_done;
  /// Cooperative cancellation (graceful SIGINT/SIGTERM): once set, jobs not
  /// yet started are skipped (verdict "skipped", ok = false, on_done NOT
  /// called) while in-flight jobs finish normally.
  const std::atomic<bool>* cancel = nullptr;
  /// Execution environment forwarded to every run_job call. Environments
  /// hold single-threaded state; only honoured when jobs == 1.
  const RunnerEnv* env = nullptr;
};

class Runner {
 public:
  explicit Runner(RunnerOptions opts = {}) : opts_(std::move(opts)) {}

  /// Executes every job of `spec`; the result vector parallels spec.jobs
  /// regardless of completion order.
  std::vector<JobResult> run(const CampaignSpec& spec);

  /// Executes one job on the calling thread (the worker body; also the
  /// serial path). Never throws — failures become verdict "crash".
  /// `env` (optional) supplies resolver overrides and a warm-VP pool.
  static JobResult run_job(const JobSpec& job, const RunnerEnv* env = nullptr);

 private:
  RunnerOptions opts_;
};

/// Resolves a firmware reference: a builtin name (primes, qsort, dhrystone,
/// sha256, sha512, simple-sensor, rtos-tasks, immobilizer,
/// immobilizer-vulnerable, spin), "attack:N" (Table I row N), "code-reuse",
/// or a path to an ELF32 file.
rvasm::Program resolve_firmware(const std::string& name);

/// FNV-1a content hash of a resolved program (entry point + every segment's
/// base and bytes) — the identity VpPool::acquire uses to decide whether a
/// warm VP's translated blocks are still valid for the next job. The
/// service's WarmCache::program_key delegates here so both layers agree.
std::uint64_t program_content_key(const rvasm::Program& program);

/// True iff `verdict` satisfies `expect` ("" matches anything but "crash"
/// or "hung"; "exit" / "violation" match any exit code / violation kind;
/// otherwise the comparison is exact).
bool verdict_matches(const std::string& expect, const std::string& verdict);

/// True when the last two attempts both expired their deadline
/// ("wall-timeout" or "hung") with the same retirement count — the job is
/// deterministically stuck, and further retries would burn the same budget
/// to reach the same place. Runner::run_job stops retrying and relabels the
/// result "hung" when this fires.
bool deterministic_hang(const std::vector<AttemptRecord>& history);

/// Sleep before retry number `attempt` (1 = the first retry): exponential
/// base doubling from 25 ms, capped at 400 ms, with a deterministic +-25%
/// jitter derived from `seed` so a fleet of retrying jobs doesn't
/// resynchronize into thundering herds.
std::chrono::milliseconds retry_backoff(int attempt, std::uint64_t seed);

/// A resolved policy keeps whatever owns the lattice alive for the run
/// (scenario bundles own their lattice; parsed files own theirs).
struct ResolvedPolicy {
  std::optional<vp::scenarios::PolicyBundle> bundle;
  std::optional<dift::PolicySpec> file;

  /// The policy to apply, or nullptr for "no policy". Derived on demand:
  /// the SecurityPolicy lives by value inside `bundle`/`file`, so a cached
  /// pointer would dangle as soon as a ResolvedPolicy is moved.
  const dift::SecurityPolicy* policy() const {
    if (bundle) return &bundle->policy;
    if (file) return &file->policy();
    return nullptr;
  }
};

/// Resolves a policy name (permissive, code-injection, immobilizer[-per-byte],
/// or a policy file path) against `program`. Empty name → null policy.
ResolvedPolicy resolve_policy(const std::string& name,
                              const rvasm::Program& program);

/// Canonical attacker byte stream for the attack firmwares ("" otherwise) —
/// what a job without an explicit uart-input receives.
std::string default_uart_input(const std::string& firmware);

/// Maps a finished run to its campaign verdict string
/// (exit:N | violation:<kind> | timeout | wall-timeout | watchdog-reset | trap).
std::string verdict_of(const vp::RunResult& run);

/// The demo AES PIN shared by the immobilizer firmware and engine-ECU config.
const soc::AesKey& demo_pin();

}  // namespace vpdift::campaign
