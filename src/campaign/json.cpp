#include "campaign/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace vpdift::campaign {

std::uint64_t JsonValue::u64_or(const std::string& key,
                                std::uint64_t fallback) const {
  // JSON numbers are doubles: exact for the counter magnitudes the reports
  // carry (< 2^53), which covers every instret/time field the VP produces.
  const JsonValue* v = find(key);
  if (!v || v->kind != Kind::kNumber || v->number < 0) return fallback;
  return static_cast<std::uint64_t>(v->number);
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw JsonError(line_, msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      }
      case 't': case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out += c; continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          char* end = nullptr;
          const unsigned long cp = std::strtoul(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) fail("malformed \\u escape");
          if (cp > 0xff) fail("non-latin1 \\u escape unsupported");
          out += static_cast<char>(cp);
          pos_ += 4;
          break;
        }
        default: fail("unknown string escape");
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") { v.boolean = true; pos_ += 4; }
    else if (text_.substr(pos_, 5) == "false") { v.boolean = false; pos_ += 5; }
    else fail("bad literal");
    return v;
  }

  JsonValue null() {
    if (text_.substr(pos_, 4) != "null") fail("bad literal");
    pos_ += 4;
    return {};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    const std::string z(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(z.c_str(), &end);
    if (z.empty() || errno != 0 || end != z.c_str() + z.size())
      fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

JsonValue json_parse(std::string_view text) { return JsonParser(text).parse(); }

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace vpdift::campaign
