// Minimal JSON document model and recursive-descent parser.
//
// Extracted from the campaign-spec parser so every JSON consumer in the
// tree (campaign specs, the service protocol, report checkers) shares one
// implementation: objects, arrays, strings (with the usual escapes),
// numbers, true/false/null. No external dependency; errors carry the
// 1-based line number of the offending input.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vpdift::campaign {

/// Malformed JSON. `line()` is 1-based; `message()` is the bare description
/// (what() prefixes it with the location).
class JsonError : public std::runtime_error {
 public:
  JsonError(std::size_t line, const std::string& message)
      : std::runtime_error("JSON line " + std::to_string(line) + ": " +
                           message),
        line_(line),
        message_(message) {}
  std::size_t line() const { return line_; }
  const std::string& message() const { return message_; }

 private:
  std::size_t line_;
  std::string message_;
};

/// One parsed JSON value. A plain tagged struct (no variant gymnastics):
/// only the members matching `kind` are meaningful.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // ordered

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }

  // Typed lookups with defaults — the service protocol reads optional
  // fields all over; missing or mistyped keys fall back to `fallback`.
  std::string str_or(const std::string& key, std::string fallback = {}) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kString ? v->string : std::move(fallback);
  }
  double num_or(const std::string& key, double fallback = 0) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::uint64_t u64_or(const std::string& key, std::uint64_t fallback = 0) const;
  bool bool_or(const std::string& key, bool fallback = false) const {
    const JsonValue* v = find(key);
    return v && v->kind == Kind::kBool ? v->boolean : fallback;
  }
};

/// Parses one JSON document (the whole input must be consumed).
/// Throws JsonError on malformed input.
JsonValue json_parse(std::string_view text);

/// Escapes a string for embedding in a JSON document (shared with the
/// aggregator's report writer).
std::string json_quote(const std::string& s);

}  // namespace vpdift::campaign
