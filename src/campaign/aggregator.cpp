#include "campaign/aggregator.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sa/analyze.hpp"

namespace vpdift::campaign {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Aggregator::add(const JobResult& r) {
  results_.push_back(r);
  if (r.ok) ++ok_;
  if (r.verdict == "crash") ++crashed_;
  instret_ += r.run.instret;
  job_wall_ += r.wall_seconds;
  stats_ += r.run.stats;
}

std::string Aggregator::summary(const std::string& campaign_name,
                                double wall_s) const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "campaign %s: %zu jobs, %zu ok, %zu crashed, %.2f s wall",
                campaign_name.c_str(), results_.size(), ok_, crashed_, wall_s);
  return buf;
}

std::string Aggregator::to_json(const std::string& campaign_name,
                                std::size_t workers, double wall_s,
                                const std::string& extra) const {
  std::ostringstream out;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n  \"campaign\": \"%s\",\n  \"workers\": %zu,\n"
                "  \"jobs\": %zu,\n  \"ok\": %zu,\n  \"crashed\": %zu,\n"
                "  \"all_ok\": %s,\n  \"wall_s\": %.4f,\n"
                "  \"job_wall_s\": %.4f,\n  \"total_instret\": %llu,\n"
                "  \"agg_mips\": %.2f,\n",
                json_escape(campaign_name).c_str(), workers, results_.size(),
                ok_, crashed_, all_ok() ? "true" : "false", wall_s, job_wall_,
                static_cast<unsigned long long>(instret_),
                wall_s > 0 ? instret_ / wall_s / 1e6 : 0.0);
  out << buf;
  if (interrupted_) out << "  \"interrupted\": true,\n";
  if (!extra.empty()) out << "  " << extra << ",\n";
  out << "  \"dift_stats\": " << dift::to_json(stats_) << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const JobResult& r = results_[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\":\"%s\",\"verdict\":\"%s\",\"ok\":%s,"
                  "\"attempts\":%d,\"reason\":\"%s\",\"exited\":%s,"
                  "\"exit_code\":%u,\"violation\":%s,\"timed_out\":%s,"
                  "\"watchdog_resets\":%u,\"instret\":%llu,"
                  "\"wall_s\":%.4f,\"mips\":%.2f,\"sim_ms\":%llu,"
                  "\"recorded_violations\":%zu,",
                  json_escape(r.name).c_str(), json_escape(r.verdict).c_str(),
                  r.ok ? "true" : "false", r.attempts,
                  vp::to_string(r.run.reason),
                  r.run.exited() ? "true" : "false", r.run.exit_code,
                  r.run.violation() ? "true" : "false",
                  r.run.timed_out() ? "true" : "false", r.run.watchdog_resets,
                  static_cast<unsigned long long>(r.run.instret),
                  r.wall_seconds, r.run.mips,
                  static_cast<unsigned long long>(r.run.sim_time.millis()),
                  r.run.recorded_violations.size());
    out << buf;
    if (!r.error.empty()) out << "\"error\":\"" << json_escape(r.error) << "\",";
    if (r.history.size() > 1 ||
        (!r.history.empty() && r.history.front().verdict == "crash")) {
      out << "\"history\":[";
      for (std::size_t a = 0; a < r.history.size(); ++a) {
        out << (a ? "," : "") << "{\"verdict\":\""
            << json_escape(r.history[a].verdict) << "\"";
        if (!r.history[a].error.empty())
          out << ",\"error\":\"" << json_escape(r.history[a].error) << "\"";
        out << "}";
      }
      out << "],";
    }
    if (r.analysis) out << "\"analysis\":" << sa::to_json(*r.analysis) << ",";
    out << "\"dift_stats\":" << dift::to_json(r.run.stats) << "}"
        << (i + 1 < results_.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

bool Aggregator::write_json(const std::string& path,
                            const std::string& campaign_name,
                            std::size_t workers, double wall_s,
                            const std::string& extra) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(campaign_name, workers, wall_s, extra);
  return static_cast<bool>(out);
}

}  // namespace vpdift::campaign
