#include "campaign/runner.hpp"

#include <chrono>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <type_traits>

#include "campaign/thread_pool.hpp"
#include "dift/policy_parser.hpp"
#include "fw/attacks.hpp"
#include "fw/benchmarks.hpp"
#include "fw/immobilizer.hpp"
#include "rvasm/elf.hpp"
#include "vp/scenarios.hpp"

namespace vpdift::campaign {

namespace {

const soc::AesKey kDemoPin = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                              0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

}  // namespace

const soc::AesKey& demo_pin() { return kDemoPin; }

ResolvedPolicy resolve_policy(const std::string& name,
                              const rvasm::Program& program) {
  ResolvedPolicy r;
  if (name.empty()) return r;
  if (name == "permissive") {
    r.bundle.emplace(vp::scenarios::make_permissive_policy());
  } else if (name == "code-injection") {
    r.bundle.emplace(vp::scenarios::make_code_injection_policy(program));
  } else if (name == "immobilizer") {
    r.bundle.emplace(
        vp::scenarios::make_immobilizer_policy(program, /*per_byte_pin=*/false));
  } else if (name == "immobilizer-per-byte") {
    r.bundle.emplace(
        vp::scenarios::make_immobilizer_policy(program, /*per_byte_pin=*/true));
  } else {
    // Anything else is a policy file (optionally "file:PATH").
    const std::string path =
        name.rfind("file:", 0) == 0 ? name.substr(5) : name;
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open policy file: " + path);
    std::stringstream buf;
    buf << in.rdbuf();
    r.file.emplace(dift::PolicySpec::parse(buf.str(), &program.symbols));
    return r;
  }
  return r;
}

/// The attack firmwares come with a canonical attacker byte stream; a spec
/// file that names them without an explicit uart-input gets it by default
/// (otherwise the firmware blocks on the UART and idles to its timeout).
std::string default_uart_input(const std::string& firmware) {
  if (firmware == "code-reuse") return fw::make_code_reuse_attack().uart_input;
  if (firmware.rfind("attack:", 0) == 0) {
    std::int32_t id = 0;
    if (parse_i32(firmware.substr(7), &id)) return fw::make_attack(id).uart_input;
  }
  return {};
}

std::string verdict_of(const vp::RunResult& run) {
  switch (run.reason) {
    case vp::ExitReason::kViolation:
      return std::string("violation:") + dift::to_string(run.violation_kind);
    case vp::ExitReason::kExit:
      return "exit:" + std::to_string(run.exit_code);
    case vp::ExitReason::kWallTimeout:
      return "wall-timeout";
    case vp::ExitReason::kWatchdogReset:
      return "watchdog-reset";
    case vp::ExitReason::kTrap:
      return "trap";
    case vp::ExitReason::kSimTimeout:
      return "timeout";
    case vp::ExitReason::kUnknown:
      // A decoded foreign reason (newer peer); surface the raw name instead
      // of silently reclassifying it as one of ours.
      return "unknown(" + run.reason_raw + ")";
  }
  return "?";
}

namespace {

/// Watches the host clock from inside the simulation: between CPU quanta it
/// wakes every simulated millisecond and stops the run once the wall-clock
/// deadline passed. Granularity is one quantum / one simulated ms, so a
/// runaway job overshoots its budget by at most a few scheduler turns.
sysc::Task wall_guard(sysc::Simulation& sim,
                      std::chrono::steady_clock::time_point deadline,
                      bool* fired) {
  for (;;) {
    co_await sim.delay(sysc::Time::ms(1));
    if (sim.stop_requested()) co_return;
    if (std::chrono::steady_clock::now() >= deadline) {
      *fired = true;
      sim.stop();
      co_return;
    }
  }
}

/// Publishes the core's live retirement counter every simulated millisecond.
/// A pure observer: it reads state and stores to an atomic, so the
/// simulation's event order and the architectural execution are unchanged —
/// results stay bit-identical with and without it.
template <typename VpT>
sysc::Task progress_guard(sysc::Simulation& sim, VpT& v,
                          std::atomic<std::uint64_t>* out) {
  for (;;) {
    co_await sim.delay(sysc::Time::ms(1));
    out->store(v.core().instret(), std::memory_order_relaxed);
    if (sim.stop_requested()) co_return;
  }
}

template <typename VpT>
JobResult execute_once(const JobSpec& job, const RunnerEnv* env) {
  JobResult res;
  res.name = job.name;

  const rvasm::Program program =
      job.make_program                   ? job.make_program()
      : env && env->resolve_firmware     ? env->resolve_firmware(job.firmware)
                                         : resolve_firmware(job.firmware);
  const std::string uart_input =
      !job.uart_input.empty() || job.make_program
          ? job.uart_input
          : default_uart_input(job.firmware);

  vp::VpConfig cfg;
  if (job.make_config) {
    cfg = job.make_config();
  } else if (job.engine_ecu) {
    cfg.with_engine_ecu = true;
    cfg.engine_pin = kDemoPin;
    cfg.engine_period = sysc::Time::ms(1);
  }

  bool wall_fired = false;  // outlives the VP (the guard coroutine reads it)
  // Warm path: a pooled VP is reset + re-armed; cold path builds one here.
  std::unique_ptr<VpT> local;
  VpT* vp = nullptr;
  if (env && env->pool) {
    vp = &env->pool->acquire<VpT>(cfg, program_content_key(program));
  } else {
    local = std::make_unique<VpT>(cfg);
    vp = local.get();
  }
  VpT& v = *vp;
  v.load_firmware(program);
  std::shared_ptr<const ResolvedPolicy> cached_policy;
  ResolvedPolicy owned_policy;
  const ResolvedPolicy* policy = &owned_policy;
  if (env && env->resolve_policy) {
    cached_policy = env->resolve_policy(job.policy, program);
    if (cached_policy) policy = cached_policy.get();
  } else {
    owned_policy = resolve_policy(job.policy, program);
  }
  if (const auto* p = policy->policy()) v.apply_policy(*p);
  if (job.analyze) {
    // Static pre-pass: lint report rides on the result; the pin set (if the
    // analyzer proved one) installs after the policy (apply_policy voids
    // pins). The service env supplies a content-hash cache here.
    std::shared_ptr<const sa::AnalysisResult> analysis;
    if (env && env->resolve_analysis)
      analysis = env->resolve_analysis(job.firmware, job.policy, program,
                                       policy->policy(), cfg.ram_size);
    if (!analysis) {
      sa::AnalyzeOptions aopts;
      aopts.ram_size = cfg.ram_size;
      analysis = std::make_shared<sa::AnalysisResult>(
          sa::analyze(program, policy->policy(), aopts));
    }
    if (!analysis->pinned_pcs.empty())
      v.set_pinned_blocks(analysis->pinned_pcs);
    res.analysis = std::move(analysis);
  }
  if (job.mode == VpMode::kMonitor) v.set_monitor_mode(true);
  if (!uart_input.empty()) v.uart().feed_input(uart_input);
  // Fault-injection (or any other) setup runs after the image, policy and
  // UART stream are in place but before simulated time starts.
  if constexpr (std::is_same_v<VpT, vp::VpDift>) {
    if (job.pre_run_dift) job.pre_run_dift(v);
  } else {
    if (job.pre_run_plain) job.pre_run_plain(v);
  }
  if (job.wall_budget_s > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(job.wall_budget_s));
    v.sim().spawn(wall_guard(v.sim(), deadline, &wall_fired));
  }
  if (env && env->progress) {
    env->progress->store(0, std::memory_order_relaxed);
    v.sim().spawn(progress_guard(v.sim(), v, env->progress));
  }

  res.run = v.run(sysc::Time::ms(job.max_ms));
  if (env && env->progress)
    env->progress->store(res.run.instret, std::memory_order_relaxed);

  // The VP cannot tell a wall-budget stop from a sim-budget one (both end the
  // simulation from outside the core); reclassify using the guard's flag.
  if (wall_fired && res.run.reason == vp::ExitReason::kSimTimeout)
    res.run.reason = vp::ExitReason::kWallTimeout;

  res.verdict = verdict_of(res.run);
  res.ok = verdict_matches(job.expect, res.verdict);
  return res;
}

}  // namespace

std::uint64_t program_content_key(const rvasm::Program& program) {
  // FNV-1a64, seeded with a domain string. Must stay in sync with
  // service::WarmCache::program_key, which delegates here.
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix_bytes = [&](const void* p, std::size_t n) {
    const auto* s = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) h = (h ^ s[i]) * kPrime;
  };
  auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) h = (h ^ ((v >> (8 * i)) & 0xff)) * kPrime;
  };
  mix_bytes("program:", 8);
  mix_u64(program.entry);
  for (const auto& seg : program.segments) {
    mix_u64(seg.base);
    mix_bytes(seg.bytes.data(), seg.bytes.size());
  }
  return h;
}

template <typename VpT>
VpT& VpPool::acquire(const vp::VpConfig& cfg, std::uint64_t fw_key) {
  std::unique_ptr<VpT>* slot;
  std::uint64_t* last_key;
  if constexpr (std::is_same_v<VpT, vp::VpDift>) {
    slot = &dift_;
    last_key = &dift_fw_key_;
  } else {
    slot = &plain_;
    last_key = &plain_fw_key_;
  }
  if (*slot && vp::config_equivalent((*slot)->config(), cfg)) {
    // Unchanged firmware content → the translated blocks stay valid after
    // the re-arm reloads the identical bytes; keep them warm. (Translations
    // revalidate against the raw bytes on dispatch regardless, so a key
    // collision degrades to correctness-preserving rebuild-on-mismatch.)
    const bool warm_code = fw_key != 0 && fw_key == *last_key;
    (*slot)->reset(warm_code);
    ++reuses_;
    if (warm_code) ++translation_reuses_;
  } else {
    *slot = std::make_unique<VpT>(cfg);
    ++builds_;
  }
  *last_key = fw_key;
  return **slot;
}

template vp::Vp& VpPool::acquire<vp::Vp>(const vp::VpConfig&, std::uint64_t);
template vp::VpDift& VpPool::acquire<vp::VpDift>(const vp::VpConfig&,
                                                 std::uint64_t);

bool verdict_matches(const std::string& expect, const std::string& verdict) {
  // Crashes never satisfy anything; neither do hangs — "hung" means a
  // supervisor had to kill the run, which no expectation can legitimately
  // ask for (a job that wants a stuck firmware bounded should expect
  // "wall-timeout" under a wall budget instead).
  if (verdict == "crash" || verdict == "hung") return false;
  if (expect.empty()) return true;
  if (expect == "exit") return verdict.rfind("exit:", 0) == 0;
  if (expect == "violation") return verdict.rfind("violation:", 0) == 0;
  return verdict == expect;
}

rvasm::Program resolve_firmware(const std::string& name) {
  if (name == "primes") return fw::make_primes(10000);
  if (name == "spin") return fw::make_spin();
  if (name == "qsort") return fw::make_qsort(5000, 1);
  if (name == "dhrystone") return fw::make_dhrystone(20000);
  if (name == "sha256") return fw::make_sha256(1024, 64);
  if (name == "sha512") return fw::make_sha512(1024, 16);
  if (name == "simple-sensor") return fw::make_simple_sensor(20);
  if (name == "rtos-tasks") return fw::make_rtos_tasks(100, 200);
  if (name == "immobilizer")
    return fw::make_immobilizer(fw::ImmoVariant::kFixedDump, kDemoPin, 5);
  if (name == "immobilizer-vulnerable")
    return fw::make_immobilizer(fw::ImmoVariant::kVulnerableDump, kDemoPin, 5);
  if (name == "code-reuse") return fw::make_code_reuse_attack().program;
  if (name.rfind("attack:", 0) == 0) {
    std::int32_t id = 0;
    if (!parse_i32(name.substr(7), &id))
      throw std::invalid_argument("bad attack id in '" + name + "'");
    return fw::make_attack(id).program;
  }
  return rvasm::load_elf32_file(name);  // throws ElfError if not loadable
}

bool deterministic_hang(const std::vector<AttemptRecord>& history) {
  if (history.size() < 2) return false;
  const auto expired = [](const AttemptRecord& r) {
    return r.verdict == "wall-timeout" || r.verdict == "hung";
  };
  const AttemptRecord& prev = history[history.size() - 2];
  const AttemptRecord& last = history.back();
  return expired(prev) && expired(last) && prev.instret == last.instret;
}

std::chrono::milliseconds retry_backoff(int attempt, std::uint64_t seed) {
  if (attempt < 1) attempt = 1;
  const std::uint64_t base = 25ull << std::min(attempt - 1, 4);  // cap 400 ms
  // splitmix64 of (seed, attempt): deterministic jitter without touching any
  // global RNG state (reproducible runs stay reproducible).
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(attempt);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  // [0.75 * base, 1.25 * base]
  return std::chrono::milliseconds(base * 3 / 4 + z % (base / 2 + 1));
}

JobResult Runner::run_job(const JobSpec& job, const RunnerEnv* env) {
  JobResult res;
  std::vector<AttemptRecord> history;
  const auto t0 = std::chrono::steady_clock::now();
  const int max_attempts = job.retries + 1;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    try {
      res = job.mode == VpMode::kPlain ? execute_once<vp::Vp>(job, env)
                                       : execute_once<vp::VpDift>(job, env);
    } catch (const std::exception& e) {
      res = JobResult{};
      res.name = job.name;
      res.verdict = "crash";
      res.error = e.what();
    } catch (...) {
      // A worker must never let anything escape — an uncaught throw on a
      // pool thread would terminate the whole campaign process.
      res = JobResult{};
      res.name = job.name;
      res.verdict = "crash";
      res.error = "non-std exception";
    }
    history.push_back({res.verdict, res.error, res.run.instret});
    res.attempts = attempt;
    // Retries absorb crashes and UNexpected deadline expiries (a transiently
    // overloaded host can wall-time-out a healthy job). An expected
    // wall-timeout — or any other satisfied verdict — is final.
    const bool deadline_expired =
        !res.ok && (res.verdict == "wall-timeout" || res.verdict == "hung");
    if (res.verdict != "crash" && !deadline_expired) break;
    if (deadline_expired && deterministic_hang(history)) {
      // Identical retirement count at the deadline twice in a row: the job
      // is stuck at the same place every time. Stop burning budget on it and
      // say so — "hung" is terminal (verdict_matches always fails it).
      res.verdict = "hung";
      res.ok = false;
      if (res.error.empty())
        res.error = "deterministic hang: " + std::to_string(res.run.instret) +
                    " instructions at deadline on consecutive attempts";
      break;
    }
    if (attempt < max_attempts) {
      // FNV-1a of the job name seeds the jitter: two different jobs back
      // off on different schedules, the same job backs off reproducibly.
      std::uint64_t seed = 0xcbf29ce484222325ull;
      for (const char c : job.name)
        seed = (seed ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
      std::this_thread::sleep_for(retry_backoff(attempt, seed));
    }
  }
  res.history = std::move(history);
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

std::vector<JobResult> Runner::run(const CampaignSpec& spec) {
  std::vector<JobResult> results(spec.jobs.size());
  const auto cancelled = [this] {
    return opts_.cancel && opts_.cancel->load(std::memory_order_relaxed);
  };
  const auto skip = [&](std::size_t i) {
    results[i].name = spec.jobs[i].name;
    results[i].verdict = "skipped";
  };
  if (opts_.jobs <= 1) {
    // Serial reference path: same thread, same order as the spec.
    // Environments (warm pools, cached resolvers) hold single-threaded
    // state, so this is the only path that honours opts_.env.
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
      if (cancelled()) {
        skip(i);
        continue;
      }
      results[i] = run_job(spec.jobs[i], opts_.env);
      if (opts_.on_done) opts_.on_done(results[i]);
    }
    return results;
  }

  std::mutex done_m;
  ThreadPool pool(opts_.jobs);
  pool.parallel_for(spec.jobs.size(), [&](std::size_t i) {
    if (cancelled()) {
      skip(i);
      return;
    }
    results[i] = run_job(spec.jobs[i]);
    if (opts_.on_done) {
      std::lock_guard lk(done_m);
      opts_.on_done(results[i]);
    }
  });
  return results;
}

}  // namespace vpdift::campaign
