// The paper's evaluation suites expressed as campaigns.
//
// Table I (18-attack code-injection suite) and Table II (VP vs VP+ overhead)
// are embarrassingly parallel: every table cell is an independent VP run.
// These builders turn each table into a CampaignSpec — one job per VP
// execution — plus pairing helpers that fold the flat JobResult list back
// into the paper's rows. The bench harnesses and the vpdift-campaign CLI
// share this code, so "bench serial" and "campaign --jobs N" are the same
// computation by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace vpdift::campaign::suites {

/// Table I as a campaign: per applicable attack, a control job on the plain
/// VP ("atkN-plain": the exploit must actually work, exit 42 + marker 'X')
/// and a detection job on the VP+ ("atkN-dift": code-injection policy,
/// expecting a fetch-clearance violation). 2 x 10 applicable rows = 20 jobs.
CampaignSpec table1();

struct Table1Row {
  int id = 0;
  const char* location = "";
  const char* target = "";
  const char* technique = "";
  std::string result;    ///< "Detected" / "N/A" / "MISSED"
  std::string expected;  ///< the paper's column
  bool match = false;
  bool exploit_works = false;  ///< control run reached the payload
};

/// Folds table1() results (any execution order) into the 18 paper rows.
std::vector<Table1Row> table1_rows(const std::vector<JobResult>& results);

/// Table II as a campaign: per workload a plain-VP job ("name-vp") and a
/// VP+ job under the permissive policy ("name-vpd"), both expecting exit:0.
/// A non-empty `only` restricts the suite to the named workloads (names match
/// with or without the trailing '*' marking extra workloads).
CampaignSpec table2(std::uint32_t scale,
                    const std::vector<std::string>& only = {});

struct Table2Row {
  std::string name;
  bool extra = false;        ///< beyond the paper's set; out of averages
  std::size_t loc_asm = 0;   ///< static instruction slots
  JobResult plain, dift;
  double overhead = 0.0;     ///< plain MIPS / dift MIPS
};

/// Pairs table2() results back into workload rows (order = workload table).
/// `only` must match the filter the campaign was built with.
std::vector<Table2Row> table2_rows(const std::vector<JobResult>& results,
                                   std::uint32_t scale,
                                   const std::vector<std::string>& only = {});

}  // namespace vpdift::campaign::suites
