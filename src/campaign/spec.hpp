// Campaign specifications: what to run.
//
// A campaign is a list of jobs, each one VP execution: firmware x policy x
// mode x UART input x time budget. Specs come from three places:
//   * programmatic construction (the Table I / Table II suite builders),
//   * a line-oriented text file (the policy-parser idiom: keyword lines,
//     '#' comments),
//   * a JSON file (detected by a leading '{'), for machine-written sweeps.
//
// Text format:
//
//   campaign my-sweep          # optional, names the report
//   defaults                   # optional, applies to every later job
//     max-ms 10000
//     retries 1
//   job atk3
//     firmware attack:3        # builtin name, attack:N, code-reuse,
//                              # or a path to an ELF32 file
//     policy code-injection    # permissive | code-injection | immobilizer |
//                              # immobilizer-per-byte | path to a policy file
//     mode dift                # plain | dift | monitor
//     uart-input AAAA\x2a\n    # \xNN, \n, \r, \t, \0, \\ escapes
//     max-ms 10000             # simulated-time budget
//     wall-budget-s 5.0        # wall-clock budget (0 = none)
//     mem-budget-mb 256        # RLIMIT_AS headroom in a service worker
//     retries 0                # re-run attempts after a crash
//     engine-ecu on            # attach the engine ECU across the CAN link
//     analyze on               # static pre-pass: lint report + AOT pin set
//     expect violation:fetch-clearance   # exit[:N] | violation[:kind] |
//                                        # timeout | wall-timeout
//
// The JSON form mirrors the same keys:
//   {"campaign": "my-sweep",
//    "defaults": {"max_ms": 10000},
//    "jobs": [{"name": "atk3", "firmware": "attack:3", "mode": "dift",
//              "policy": "code-injection", "expect": "violation"}]}
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/json.hpp"
#include "rvasm/program.hpp"
#include "vp/vp.hpp"

namespace vpdift::campaign {

/// Which VP instantiation executes the job.
enum class VpMode { kPlain, kDift, kMonitor };
const char* to_string(VpMode mode);

struct JobSpec {
  std::string name;
  std::string firmware;   ///< builtin | attack:N | code-reuse | ELF path
  std::string policy;     ///< "" | builtin scenario name | policy-file path
  VpMode mode = VpMode::kPlain;
  /// Bytes fed into the UART before the run. Empty + an attack:N /
  /// code-reuse firmware = the attack's canonical payload.
  std::string uart_input;
  std::uint64_t max_ms = 10000;   ///< simulated-time budget
  double wall_budget_s = 0.0;     ///< wall-clock budget; 0 = unlimited
  /// Memory headroom the job may allocate on top of the process baseline
  /// (MiB; 0 = unlimited). Enforced via RLIMIT_AS by the service worker for
  /// the duration of the job — an oversized ELF fails as a contained crash
  /// verdict instead of OOMing the host. The one-shot CLI ignores it.
  std::uint64_t mem_budget_mb = 0;
  int retries = 0;                ///< extra attempts after a crash
  bool engine_ecu = false;        ///< attach the engine ECU (immobilizer)
  /// Run the static analyzer over firmware x policy before execution: the
  /// job result carries the lint report, and (dift/monitor modes) the
  /// analyzer's plain-block pin set is installed ahead of time.
  bool analyze = false;
  std::string expect;             ///< verdict pattern; empty = "did not crash"

  /// Programmatic overrides (suite builders only; not settable from files).
  std::function<rvasm::Program()> make_program;
  std::function<vp::VpConfig()> make_config;
  /// Run right before simulated time starts (image, policy and UART input
  /// are already applied). The fault-injection suite uses these to arm the
  /// fault; only the hook matching the job's VP flavour is called.
  std::function<void(vp::VpDift&)> pre_run_dift;
  std::function<void(vp::Vp&)> pre_run_plain;
};

class SpecParseError : public std::runtime_error {
 public:
  SpecParseError(std::size_t line, const std::string& message)
      : std::runtime_error("campaign spec line " + std::to_string(line) +
                           ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::vector<JobSpec> jobs;

  /// Parses a text or JSON spec (JSON when the first non-space char is '{').
  /// Throws SpecParseError with a line number on malformed input.
  static CampaignSpec parse(std::string_view text);

  /// parse() over a file's contents; throws std::runtime_error if unreadable.
  static CampaignSpec load_file(const std::string& path);
};

/// Strict numeric parsing (whole string must convert; no silent-zero like
/// atoi). Shared with the CLI front ends.
bool parse_u64(std::string_view s, std::uint64_t* out);
bool parse_i32(std::string_view s, std::int32_t* out);
bool parse_f64(std::string_view s, double* out);

/// Decodes \xNN, \n, \r, \t, \0, \\ escapes (UART input payloads).
/// Throws std::invalid_argument on a malformed escape.
std::string decode_escapes(std::string_view s);

/// Applies the fields of a parsed JSON job object to `job` (same field
/// names as the JSON spec format). Throws SpecParseError on an unknown
/// field or unsupported value type.
void job_spec_from_json(JobSpec& job, const JsonValue& obj);

/// Serializes the file-settable fields of `job` as one JSON object. The
/// programmatic hooks (make_program / make_config / pre_run_*) cannot cross
/// a file or process boundary and are deliberately not represented — a
/// round-tripped JobSpec is the declarative subset only.
std::string job_spec_to_json(const JobSpec& job);

}  // namespace vpdift::campaign
