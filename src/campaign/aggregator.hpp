// Campaign report aggregation.
//
// Folds per-job JobResults (with their vp::RunResult / dift::DiftStats) into
// one machine-readable JSON report, the campaign-level analogue of
// BENCH_table2.json: top-level metadata + aggregate counters + a per-job
// results array. Benchmark drivers and the vpdift-campaign CLI both emit it,
// so downstream tooling reads one shape regardless of how a sweep was run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "dift/stats.hpp"

namespace vpdift::campaign {

class Aggregator {
 public:
  /// Folds one finished job into the report (call from one thread, or
  /// serialize externally — RunnerOptions::on_done already is).
  void add(const JobResult& r);

  std::size_t total() const { return results_.size(); }
  std::size_t ok() const { return ok_; }
  std::size_t crashed() const { return crashed_; }
  bool all_ok() const { return !interrupted_ && ok_ == results_.size(); }
  std::uint64_t total_instret() const { return instret_; }
  const dift::DiftStats& stats() const { return stats_; }

  /// Marks the report as cut short (graceful SIGINT/SIGTERM): the JSON gains
  /// an `"interrupted": true` field and `all_ok` is forced false.
  void set_interrupted(bool v) { interrupted_ = v; }
  bool interrupted() const { return interrupted_; }

  /// One human line: "campaign x: 36 jobs, 36 ok, 0 crashed, 1.2 s wall".
  std::string summary(const std::string& campaign_name, double wall_s) const;

  /// The full JSON report. `workers` and `wall_s` describe the run that
  /// produced the results (they are campaign-level facts the aggregator
  /// cannot know itself). `extra`, if non-empty, is raw `"key": value` JSON
  /// text spliced in as additional top-level fields (the service uses it for
  /// its cache-counter block).
  std::string to_json(const std::string& campaign_name, std::size_t workers,
                      double wall_s, const std::string& extra = {}) const;

  /// to_json() to a file; returns false (and leaves no file guarantee) on
  /// I/O failure.
  bool write_json(const std::string& path, const std::string& campaign_name,
                  std::size_t workers, double wall_s,
                  const std::string& extra = {}) const;

 private:
  std::vector<JobResult> results_;
  std::size_t ok_ = 0;
  std::size_t crashed_ = 0;
  std::uint64_t instret_ = 0;
  double job_wall_ = 0;
  bool interrupted_ = false;
  dift::DiftStats stats_;
};

/// Escapes a string for embedding in a JSON document.
std::string json_escape(const std::string& s);

}  // namespace vpdift::campaign
