#include "campaign/suites.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "fw/attacks.hpp"
#include "fw/benchmarks.hpp"
#include "fw/immobilizer.hpp"

namespace vpdift::campaign::suites {

namespace {

const char* paper_expected(int id) {
  switch (id) {
    case 3: case 5: case 6: case 7: case 9: case 10: case 11: case 13:
    case 14: case 17:
      return "Detected";
    default:
      return "N/A";
  }
}

const JobResult* find_result(const std::vector<JobResult>& results,
                             const std::string& name) {
  for (const JobResult& r : results)
    if (r.name == name) return &r;
  return nullptr;
}

}  // namespace

CampaignSpec table1() {
  CampaignSpec spec;
  spec.name = "table1-code-injection";
  for (const auto& s : fw::attack_specs()) {
    if (!s.applicable) continue;
    const auto atk = fw::make_attack(s.id);
    const std::string base = "atk" + std::to_string(s.id);

    JobSpec control;
    control.name = base + "-plain";
    control.firmware = "attack:" + std::to_string(s.id);
    control.mode = VpMode::kPlain;
    control.uart_input = atk.uart_input;
    control.expect = "exit:42";
    spec.jobs.push_back(std::move(control));

    JobSpec detect;
    detect.name = base + "-dift";
    detect.firmware = "attack:" + std::to_string(s.id);
    detect.mode = VpMode::kDift;
    detect.policy = "code-injection";
    detect.uart_input = atk.uart_input;
    detect.expect = "violation:fetch-clearance";
    spec.jobs.push_back(std::move(detect));
  }
  return spec;
}

std::vector<Table1Row> table1_rows(const std::vector<JobResult>& results) {
  std::vector<Table1Row> rows;
  for (const auto& s : fw::attack_specs()) {
    Table1Row row;
    row.id = s.id;
    row.location = s.location;
    row.target = s.target;
    row.technique = s.technique;
    row.expected = paper_expected(s.id);
    row.result = "N/A";
    if (s.applicable) {
      const std::string base = "atk" + std::to_string(s.id);
      const JobResult* control = find_result(results, base + "-plain");
      const JobResult* detect = find_result(results, base + "-dift");
      if (!control || !detect)
        throw std::invalid_argument("table1_rows: missing results for " + base);
      row.exploit_works = control->run.exited() && control->run.exit_code == 42 &&
                          control->run.markers.find('X') != std::string::npos;
      const bool detected =
          detect->run.violation() &&
          detect->run.violation_kind == dift::ViolationKind::kFetchClearance &&
          detect->run.markers.find('X') == std::string::npos;
      row.result = detected ? "Detected" : "MISSED";
    }
    row.match = row.result == row.expected;
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

const soc::AesKey kPin = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                          0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

struct Table2Workload {
  std::string name;
  std::function<rvasm::Program(std::uint32_t)> make;
  std::function<vp::VpConfig()> config = [] { return vp::VpConfig{}; };
  bool extra = false;
};

std::vector<Table2Workload> table2_workloads() {
  return {
      {"qsort", [](std::uint32_t s) { return fw::make_qsort(30000 * s, 0xc0ffee); }},
      {"dhrystone", [](std::uint32_t s) { return fw::make_dhrystone(40000 * s); }},
      {"primes", [](std::uint32_t s) { return fw::make_primes(60000 * s); }},
      {"sha512", [](std::uint32_t s) { return fw::make_sha512(2048, 120 * s); }},
      {"sha256*",
       [](std::uint32_t s) { return fw::make_sha256(4096, 1200 * s); },
       [] { return vp::VpConfig{}; },
       /*extra=*/true},
      {"crc32*",
       [](std::uint32_t s) { return fw::make_crc32(4096, 60 * s); },
       [] { return vp::VpConfig{}; },
       /*extra=*/true},
      {"matmul*",
       [](std::uint32_t s) { return fw::make_matmul(40 + 12 * s); },
       [] { return vp::VpConfig{}; },
       /*extra=*/true},
      {"simple-sensor",
       [](std::uint32_t s) { return fw::make_simple_sensor(1500 * s); },
       [] {
         vp::VpConfig cfg;
         cfg.sensor_period = sysc::Time::us(100);
         return cfg;
       }},
      {"rtos-tasks",
       [](std::uint32_t s) { return fw::make_rtos_tasks(1200 * s, 50); }},
      {"immo-fixed",
       [](std::uint32_t s) {
         return fw::make_immobilizer(fw::ImmoVariant::kFixedDump, kPin, 15 * s);
       },
       [] {
         vp::VpConfig cfg;
         cfg.with_engine_ecu = true;
         cfg.engine_pin = kPin;
         cfg.engine_period = sysc::Time::ms(1);
         return cfg;
       }},
  };
}

// `only` matching tolerates the trailing '*' marking extra workloads, so CI
// subsets can say "sha256" rather than "sha256*".
bool selected(const std::string& name, const std::vector<std::string>& only) {
  if (only.empty()) return true;
  std::string bare = name;
  if (!bare.empty() && bare.back() == '*') bare.pop_back();
  for (const std::string& f : only)
    if (f == name || f == bare) return true;
  return false;
}

}  // namespace

CampaignSpec table2(std::uint32_t scale, const std::vector<std::string>& only) {
  CampaignSpec spec;
  spec.name = "table2-overhead";
  for (const Table2Workload& w : table2_workloads()) {
    if (!selected(w.name, only)) continue;
    for (const bool dift : {false, true}) {
      JobSpec job;
      job.name = w.name + (dift ? "-vpd" : "-vp");
      job.firmware = "table2:" + w.name;  // informational; make_program wins
      job.mode = dift ? VpMode::kDift : VpMode::kPlain;
      if (dift) job.policy = "permissive";
      job.max_ms = 600'000;  // the bench's 600-second simulated budget
      job.expect = "exit:0";
      job.make_program = [make = w.make, scale] { return make(scale); };
      job.make_config = w.config;
      spec.jobs.push_back(std::move(job));
    }
  }
  return spec;
}

std::vector<Table2Row> table2_rows(const std::vector<JobResult>& results,
                                   std::uint32_t scale,
                                   const std::vector<std::string>& only) {
  std::vector<Table2Row> rows;
  for (const Table2Workload& w : table2_workloads()) {
    if (!selected(w.name, only)) continue;
    const JobResult* plain = find_result(results, w.name + "-vp");
    const JobResult* dift = find_result(results, w.name + "-vpd");
    if (!plain || !dift)
      throw std::invalid_argument("table2_rows: missing results for " + w.name);
    Table2Row row;
    row.name = w.name;
    row.extra = w.extra;
    row.loc_asm = w.make(scale).instruction_slots();
    row.plain = *plain;
    row.dift = *dift;
    row.overhead = plain->run.mips > 0 && dift->run.mips > 0
                       ? plain->run.mips / dift->run.mips
                       : 0.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace vpdift::campaign::suites
