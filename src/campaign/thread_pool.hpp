// Work-stealing thread pool for the campaign runner.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and, when
// empty, steals FIFO from the other workers — the classic Chase-Lev shape,
// implemented with per-deque mutexes (campaign jobs run for milliseconds to
// seconds, so queue-operation cost is irrelevant; simplicity and TSan-clean
// correctness win).
//
// Tasks must be independent: a task must not block waiting for another task
// submitted to the same pool (no nested parallel_for), because workers do
// not re-enter the scheduler while a task runs. Campaign jobs satisfy this
// by construction — each is a self-contained, thread-confined VP simulation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vpdift::campaign {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to >= 1).
  explicit ThreadPool(std::size_t workers);

  /// Finishes all queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues `fn` (round-robin across worker deques; idle thieves even it
  /// out). May be called from any thread, including from inside a task.
  void submit(std::function<void()> fn);

  /// Blocks the calling thread until every submitted task has finished.
  void wait_idle();

  /// Runs fn(0) .. fn(n-1) across the pool and waits for all of them.
  /// Rethrows the first exception a task raised (after all tasks finish).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Worker count from the VPDIFT_JOBS environment knob; falls back to
  /// `fallback` (or hardware_concurrency when 0). Always >= 1.
  static std::size_t jobs_from_env(std::size_t fallback = 0);

 private:
  struct Worker {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  bool try_pop(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex state_m_;          // guards queued_/pending_/next_/stop_
  std::condition_variable wake_;  // queued work available (or stopping)
  std::condition_variable idle_;  // pending_ reached zero
  std::size_t queued_ = 0;        // tasks sitting in deques
  std::size_t pending_ = 0;       // tasks submitted but not yet finished
  std::size_t next_ = 0;          // round-robin submit cursor
  bool stop_ = false;
};

}  // namespace vpdift::campaign
