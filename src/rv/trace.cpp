#include "rv/trace.hpp"

#include <cstdio>

#include "rvasm/reg.hpp"

namespace vpdift::rv {

std::vector<TraceEntry> TraceBuffer::snapshot() const {
  std::vector<TraceEntry> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = next_ - n;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(entries_[(first + i) % entries_.size()]);
  return out;
}

std::string TraceBuffer::format() const {
  std::string out;
  char line[160];
  for (const TraceEntry& e : snapshot()) {
    const std::string dis = disassemble(e.raw);
    if (e.rd != 0) {
      std::snprintf(line, sizeof line,
                    "[%8llu] %08x: %-28s %s=%08x tag=%u\n",
                    static_cast<unsigned long long>(e.instret), e.pc,
                    dis.c_str(), rvasm::reg_name(e.rd), e.rd_value,
                    static_cast<unsigned>(e.rd_tag));
    } else {
      std::snprintf(line, sizeof line, "[%8llu] %08x: %s\n",
                    static_cast<unsigned long long>(e.instret), e.pc,
                    dis.c_str());
    }
    out += line;
  }
  return out;
}

}  // namespace vpdift::rv
