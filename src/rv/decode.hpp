// RV32IM + Zicsr instruction decoder and disassembler.
#pragma once

#include <cstdint>
#include <string>

namespace vpdift::rv {

enum class Op : std::uint8_t {
  kIllegal,
  // RV32I
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // RV32M
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // Zicsr
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // privileged
  kMret, kWfi,
};

/// Number of distinct Op values (handler tables are indexed by Op).
inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kWfi) + 1;

/// One decoded instruction. For CSR ops, `imm` holds the CSR number and
/// `rs1` the source register / zimm. Compressed (RVC) instructions are
/// expanded to their base-ISA equivalent with `len == 2`.
struct Insn {
  Op op = Op::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t len = 4;  ///< encoded length in bytes (2 for RVC)
  std::int32_t imm = 0;
  std::uint32_t raw = 0;
};

/// Decodes a 32-bit instruction word.
Insn decode(std::uint32_t raw);

/// Decodes a 16-bit RVC parcel into its expanded base-ISA form (len = 2).
/// Unsupported encodings (FP, RV64-only) decode to kIllegal.
Insn decode16(std::uint16_t raw);

/// Decodes the parcel at hand: compressed if the low two bits differ from
/// 0b11, otherwise the full 32-bit word.
inline Insn decode_any(std::uint32_t raw) {
  return (raw & 3) == 3 ? decode(raw) : decode16(static_cast<std::uint16_t>(raw));
}

/// True for ops that end a translated block: unconditional control transfers
/// (jal/jalr/mret), traps (ecall/ebreak/illegal), CSR accesses, fence and
/// wfi. Conditional branches are NOT terminators (a not-taken branch falls
/// through inside the block). This is the single source of truth shared by
/// the core's block builder and the static analyzer's window replication —
/// if they disagreed, an ahead-of-time pin could cover a different window
/// than the one the core actually executes. (constexpr so the core's
/// handler table can bake it in at compile time.)
constexpr bool is_block_terminator(Op op) {
  switch (op) {
    case Op::kJal:
    case Op::kJalr:
    case Op::kFence:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci:
    case Op::kMret:
    case Op::kWfi:
    case Op::kIllegal:
      return true;
    default:
      return false;
  }
}

/// Mnemonic of `op` ("addi", "beq", ...).
const char* mnemonic(Op op);

/// Human-readable rendering, e.g. "addi a0, a0, -1".
std::string disassemble(const Insn& insn);
std::string disassemble(std::uint32_t raw);

}  // namespace vpdift::rv
