#include "rv/decode.hpp"

#include <cstdio>

#include "rvasm/reg.hpp"

namespace vpdift::rv {

namespace {

std::int32_t imm_i(std::uint32_t r) { return static_cast<std::int32_t>(r) >> 20; }

std::int32_t imm_s(std::uint32_t r) {
  return ((static_cast<std::int32_t>(r) >> 25) << 5) |
         static_cast<std::int32_t>((r >> 7) & 0x1f);
}

std::int32_t imm_b(std::uint32_t r) {
  std::int32_t v = ((static_cast<std::int32_t>(r) >> 31) << 12) |
                   static_cast<std::int32_t>(((r >> 25) & 0x3f) << 5) |
                   static_cast<std::int32_t>(((r >> 8) & 0xf) << 1) |
                   static_cast<std::int32_t>(((r >> 7) & 1) << 11);
  return v;
}

std::int32_t imm_u(std::uint32_t r) { return static_cast<std::int32_t>(r & 0xfffff000u); }

std::int32_t imm_j(std::uint32_t r) {
  std::int32_t v = ((static_cast<std::int32_t>(r) >> 31) << 20) |
                   static_cast<std::int32_t>(((r >> 21) & 0x3ff) << 1) |
                   static_cast<std::int32_t>(((r >> 20) & 1) << 11) |
                   static_cast<std::int32_t>(((r >> 12) & 0xff) << 12);
  return v;
}

}  // namespace

Insn decode(std::uint32_t raw) {
  Insn d;
  d.raw = raw;
  d.rd = (raw >> 7) & 0x1f;
  d.rs1 = (raw >> 15) & 0x1f;
  d.rs2 = (raw >> 20) & 0x1f;
  const std::uint32_t opcode = raw & 0x7f;
  const std::uint32_t f3 = (raw >> 12) & 7;
  const std::uint32_t f7 = raw >> 25;

  switch (opcode) {
    case 0x37: d.op = Op::kLui; d.imm = imm_u(raw); break;
    case 0x17: d.op = Op::kAuipc; d.imm = imm_u(raw); break;
    case 0x6f: d.op = Op::kJal; d.imm = imm_j(raw); break;
    case 0x67:
      if (f3 == 0) { d.op = Op::kJalr; d.imm = imm_i(raw); }
      break;
    case 0x63:
      d.imm = imm_b(raw);
      d.rd = 0;  // B-format: bits 7..11 are immediate, not a destination
      switch (f3) {
        case 0: d.op = Op::kBeq; break;
        case 1: d.op = Op::kBne; break;
        case 4: d.op = Op::kBlt; break;
        case 5: d.op = Op::kBge; break;
        case 6: d.op = Op::kBltu; break;
        case 7: d.op = Op::kBgeu; break;
        default: break;
      }
      break;
    case 0x03:
      d.imm = imm_i(raw);
      switch (f3) {
        case 0: d.op = Op::kLb; break;
        case 1: d.op = Op::kLh; break;
        case 2: d.op = Op::kLw; break;
        case 4: d.op = Op::kLbu; break;
        case 5: d.op = Op::kLhu; break;
        default: break;
      }
      break;
    case 0x23:
      d.imm = imm_s(raw);
      d.rd = 0;  // S-format: bits 7..11 are immediate, not a destination
      switch (f3) {
        case 0: d.op = Op::kSb; break;
        case 1: d.op = Op::kSh; break;
        case 2: d.op = Op::kSw; break;
        default: break;
      }
      break;
    case 0x13:
      d.imm = imm_i(raw);
      switch (f3) {
        case 0: d.op = Op::kAddi; break;
        case 2: d.op = Op::kSlti; break;
        case 3: d.op = Op::kSltiu; break;
        case 4: d.op = Op::kXori; break;
        case 6: d.op = Op::kOri; break;
        case 7: d.op = Op::kAndi; break;
        case 1:
          if (f7 == 0x00) { d.op = Op::kSlli; d.imm = d.rs2; }
          break;
        case 5:
          if (f7 == 0x00) { d.op = Op::kSrli; d.imm = d.rs2; }
          else if (f7 == 0x20) { d.op = Op::kSrai; d.imm = d.rs2; }
          break;
        default: break;
      }
      break;
    case 0x33:
      if (f7 == 0x00) {
        switch (f3) {
          case 0: d.op = Op::kAdd; break;
          case 1: d.op = Op::kSll; break;
          case 2: d.op = Op::kSlt; break;
          case 3: d.op = Op::kSltu; break;
          case 4: d.op = Op::kXor; break;
          case 5: d.op = Op::kSrl; break;
          case 6: d.op = Op::kOr; break;
          case 7: d.op = Op::kAnd; break;
        }
      } else if (f7 == 0x20) {
        if (f3 == 0) d.op = Op::kSub;
        else if (f3 == 5) d.op = Op::kSra;
      } else if (f7 == 0x01) {
        switch (f3) {
          case 0: d.op = Op::kMul; break;
          case 1: d.op = Op::kMulh; break;
          case 2: d.op = Op::kMulhsu; break;
          case 3: d.op = Op::kMulhu; break;
          case 4: d.op = Op::kDiv; break;
          case 5: d.op = Op::kDivu; break;
          case 6: d.op = Op::kRem; break;
          case 7: d.op = Op::kRemu; break;
        }
      }
      break;
    case 0x0f: d.op = Op::kFence; break;
    case 0x73:
      if (f3 == 0) {
        if (raw == 0x00000073) d.op = Op::kEcall;
        else if (raw == 0x00100073) d.op = Op::kEbreak;
        else if (raw == 0x30200073) d.op = Op::kMret;
        else if (raw == 0x10500073) d.op = Op::kWfi;
      } else {
        d.imm = static_cast<std::int32_t>(raw >> 20);  // CSR number
        switch (f3) {
          case 1: d.op = Op::kCsrrw; break;
          case 2: d.op = Op::kCsrrs; break;
          case 3: d.op = Op::kCsrrc; break;
          case 5: d.op = Op::kCsrrwi; break;
          case 6: d.op = Op::kCsrrsi; break;
          case 7: d.op = Op::kCsrrci; break;
          default: break;
        }
      }
      break;
    default: break;
  }
  return d;
}

namespace {

// Sign-extends the low `bits` of v.
std::int32_t sext(std::uint32_t v, int bits) {
  const int sh = 32 - bits;
  return static_cast<std::int32_t>(v << sh) >> sh;
}

std::uint32_t bit(std::uint16_t raw, int pos) { return (raw >> pos) & 1u; }

std::uint8_t creg(std::uint16_t raw, int pos) {  // 3-bit register x8..x15
  return static_cast<std::uint8_t>(8 + ((raw >> pos) & 7));
}

}  // namespace

Insn decode16(std::uint16_t raw) {
  Insn d;
  d.raw = raw;
  d.len = 2;
  d.op = Op::kIllegal;
  const std::uint32_t quadrant = raw & 3;
  const std::uint32_t f3 = (raw >> 13) & 7;
  const auto full_rd = static_cast<std::uint8_t>((raw >> 7) & 0x1f);
  const auto full_rs2 = static_cast<std::uint8_t>((raw >> 2) & 0x1f);

  if (raw == 0) return d;  // all-zero parcel is defined illegal

  switch (quadrant) {
    case 0:
      switch (f3) {
        case 0: {  // C.ADDI4SPN: addi rd', x2, nzuimm
          const std::uint32_t imm = (bit(raw, 5) << 3) | (bit(raw, 6) << 2) |
                                    (((raw >> 7) & 0xf) << 6) |
                                    (((raw >> 11) & 3) << 4);
          if (imm == 0) break;
          d.op = Op::kAddi;
          d.rd = creg(raw, 2);
          d.rs1 = 2;
          d.imm = static_cast<std::int32_t>(imm);
          break;
        }
        case 2: {  // C.LW: lw rd', offset(rs1')
          d.op = Op::kLw;
          d.rd = creg(raw, 2);
          d.rs1 = creg(raw, 7);
          d.imm = static_cast<std::int32_t>((bit(raw, 6) << 2) |
                                            (((raw >> 10) & 7) << 3) |
                                            (bit(raw, 5) << 6));
          break;
        }
        case 6: {  // C.SW: sw rs2', offset(rs1')
          d.op = Op::kSw;
          d.rs2 = creg(raw, 2);
          d.rs1 = creg(raw, 7);
          d.imm = static_cast<std::int32_t>((bit(raw, 6) << 2) |
                                            (((raw >> 10) & 7) << 3) |
                                            (bit(raw, 5) << 6));
          break;
        }
        default:
          break;  // FP loads/stores: unsupported
      }
      break;

    case 1:
      switch (f3) {
        case 0:  // C.ADDI (C.NOP when rd=0)
          d.op = Op::kAddi;
          d.rd = full_rd;
          d.rs1 = full_rd;
          d.imm = sext((bit(raw, 12) << 5) | ((raw >> 2) & 0x1f), 6);
          break;
        case 1:  // C.JAL (RV32)
        case 5: {  // C.J
          d.op = Op::kJal;
          d.rd = f3 == 1 ? 1 : 0;
          d.imm = sext((bit(raw, 12) << 11) | (bit(raw, 11) << 4) |
                           (((raw >> 9) & 3) << 8) | (bit(raw, 8) << 10) |
                           (bit(raw, 7) << 6) | (bit(raw, 6) << 7) |
                           (((raw >> 3) & 7) << 1) | (bit(raw, 2) << 5),
                       12);
          break;
        }
        case 2:  // C.LI: addi rd, x0, imm
          d.op = Op::kAddi;
          d.rd = full_rd;
          d.rs1 = 0;
          d.imm = sext((bit(raw, 12) << 5) | ((raw >> 2) & 0x1f), 6);
          break;
        case 3:
          if (full_rd == 2) {  // C.ADDI16SP
            const std::int32_t imm =
                sext((bit(raw, 12) << 9) | (bit(raw, 6) << 4) |
                         (bit(raw, 5) << 6) | (((raw >> 3) & 3) << 7) |
                         (bit(raw, 2) << 5),
                     10);
            if (imm == 0) break;
            d.op = Op::kAddi;
            d.rd = 2;
            d.rs1 = 2;
            d.imm = imm;
          } else {  // C.LUI
            const std::int32_t imm =
                sext((bit(raw, 12) << 17) | (((raw >> 2) & 0x1f) << 12), 18);
            if (imm == 0 || full_rd == 0) break;
            d.op = Op::kLui;
            d.rd = full_rd;
            d.imm = imm;
          }
          break;
        case 4: {  // ALU group on rd'
          const std::uint32_t f2 = (raw >> 10) & 3;
          d.rd = creg(raw, 7);
          d.rs1 = d.rd;
          const std::uint32_t shamt = (bit(raw, 12) << 5) | ((raw >> 2) & 0x1f);
          switch (f2) {
            case 0:  // C.SRLI
              if (shamt >= 32) break;  // RV32: shamt[5] must be 0
              d.op = Op::kSrli;
              d.imm = static_cast<std::int32_t>(shamt);
              break;
            case 1:  // C.SRAI
              if (shamt >= 32) break;
              d.op = Op::kSrai;
              d.imm = static_cast<std::int32_t>(shamt);
              break;
            case 2:  // C.ANDI
              d.op = Op::kAndi;
              d.imm = sext((bit(raw, 12) << 5) | ((raw >> 2) & 0x1f), 6);
              break;
            case 3: {
              if (bit(raw, 12)) break;  // RV64 C.SUBW/C.ADDW
              d.rs2 = creg(raw, 2);
              switch ((raw >> 5) & 3) {
                case 0: d.op = Op::kSub; break;
                case 1: d.op = Op::kXor; break;
                case 2: d.op = Op::kOr; break;
                case 3: d.op = Op::kAnd; break;
              }
              break;
            }
          }
          break;
        }
        case 6:   // C.BEQZ
        case 7: {  // C.BNEZ
          d.op = f3 == 6 ? Op::kBeq : Op::kBne;
          d.rs1 = creg(raw, 7);
          d.rs2 = 0;
          d.imm = sext((bit(raw, 12) << 8) | (((raw >> 10) & 3) << 3) |
                           (((raw >> 5) & 3) << 6) | (((raw >> 3) & 3) << 1) |
                           (bit(raw, 2) << 5),
                       9);
          break;
        }
      }
      break;

    case 2:
      switch (f3) {
        case 0: {  // C.SLLI
          const std::uint32_t shamt = (bit(raw, 12) << 5) | ((raw >> 2) & 0x1f);
          if (shamt >= 32 || full_rd == 0) break;
          d.op = Op::kSlli;
          d.rd = full_rd;
          d.rs1 = full_rd;
          d.imm = static_cast<std::int32_t>(shamt);
          break;
        }
        case 2: {  // C.LWSP
          if (full_rd == 0) break;
          d.op = Op::kLw;
          d.rd = full_rd;
          d.rs1 = 2;
          d.imm = static_cast<std::int32_t>((bit(raw, 12) << 5) |
                                            (((raw >> 4) & 7) << 2) |
                                            (((raw >> 2) & 3) << 6));
          break;
        }
        case 4:
          if (!bit(raw, 12)) {
            if (full_rs2 == 0) {  // C.JR
              if (full_rd == 0) break;
              d.op = Op::kJalr;
              d.rd = 0;
              d.rs1 = full_rd;
              d.imm = 0;
            } else {  // C.MV: add rd, x0, rs2
              d.op = Op::kAdd;
              d.rd = full_rd;
              d.rs1 = 0;
              d.rs2 = full_rs2;
            }
          } else {
            if (full_rd == 0 && full_rs2 == 0) {  // C.EBREAK
              d.op = Op::kEbreak;
            } else if (full_rs2 == 0) {  // C.JALR
              d.op = Op::kJalr;
              d.rd = 1;
              d.rs1 = full_rd;
              d.imm = 0;
            } else {  // C.ADD
              d.op = Op::kAdd;
              d.rd = full_rd;
              d.rs1 = full_rd;
              d.rs2 = full_rs2;
            }
          }
          break;
        case 6: {  // C.SWSP
          d.op = Op::kSw;
          d.rs2 = full_rs2;
          d.rs1 = 2;
          d.imm = static_cast<std::int32_t>((((raw >> 9) & 0xf) << 2) |
                                            (((raw >> 7) & 3) << 6));
          break;
        }
        default:
          break;
      }
      break;

    default:
      break;  // quadrant 3 is the 32-bit space; not a compressed parcel
  }
  return d;
}

const char* mnemonic(Op op) {
  switch (op) {
    case Op::kIllegal: return "illegal";
    case Op::kLui: return "lui"; case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal"; case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq"; case Op::kBne: return "bne";
    case Op::kBlt: return "blt"; case Op::kBge: return "bge";
    case Op::kBltu: return "bltu"; case Op::kBgeu: return "bgeu";
    case Op::kLb: return "lb"; case Op::kLh: return "lh"; case Op::kLw: return "lw";
    case Op::kLbu: return "lbu"; case Op::kLhu: return "lhu";
    case Op::kSb: return "sb"; case Op::kSh: return "sh"; case Op::kSw: return "sw";
    case Op::kAddi: return "addi"; case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu"; case Op::kXori: return "xori";
    case Op::kOri: return "ori"; case Op::kAndi: return "andi";
    case Op::kSlli: return "slli"; case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add"; case Op::kSub: return "sub";
    case Op::kSll: return "sll"; case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu"; case Op::kXor: return "xor";
    case Op::kSrl: return "srl"; case Op::kSra: return "sra";
    case Op::kOr: return "or"; case Op::kAnd: return "and";
    case Op::kFence: return "fence"; case Op::kEcall: return "ecall";
    case Op::kEbreak: return "ebreak";
    case Op::kMul: return "mul"; case Op::kMulh: return "mulh";
    case Op::kMulhsu: return "mulhsu"; case Op::kMulhu: return "mulhu";
    case Op::kDiv: return "div"; case Op::kDivu: return "divu";
    case Op::kRem: return "rem"; case Op::kRemu: return "remu";
    case Op::kCsrrw: return "csrrw"; case Op::kCsrrs: return "csrrs";
    case Op::kCsrrc: return "csrrc"; case Op::kCsrrwi: return "csrrwi";
    case Op::kCsrrsi: return "csrrsi"; case Op::kCsrrci: return "csrrci";
    case Op::kMret: return "mret"; case Op::kWfi: return "wfi";
  }
  return "?";
}

std::string disassemble(const Insn& d) {
  using rvasm::reg_name;
  char buf[96];
  switch (d.op) {
    case Op::kLui: case Op::kAuipc:
      std::snprintf(buf, sizeof buf, "%s %s, 0x%x", mnemonic(d.op), reg_name(d.rd),
                    static_cast<std::uint32_t>(d.imm) >> 12);
      break;
    case Op::kJal:
      std::snprintf(buf, sizeof buf, "jal %s, %d", reg_name(d.rd), d.imm);
      break;
    case Op::kJalr:
      std::snprintf(buf, sizeof buf, "jalr %s, %s, %d", reg_name(d.rd),
                    reg_name(d.rs1), d.imm);
      break;
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %d", mnemonic(d.op),
                    reg_name(d.rs1), reg_name(d.rs2), d.imm);
      break;
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      std::snprintf(buf, sizeof buf, "%s %s, %d(%s)", mnemonic(d.op),
                    reg_name(d.rd), d.imm, reg_name(d.rs1));
      break;
    case Op::kSb: case Op::kSh: case Op::kSw:
      std::snprintf(buf, sizeof buf, "%s %s, %d(%s)", mnemonic(d.op),
                    reg_name(d.rs2), d.imm, reg_name(d.rs1));
      break;
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli: case Op::kSrai:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %d", mnemonic(d.op),
                    reg_name(d.rd), reg_name(d.rs1), d.imm);
      break;
    case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt: case Op::kSltu:
    case Op::kXor: case Op::kSrl: case Op::kSra: case Op::kOr: case Op::kAnd:
    case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
    case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu:
      std::snprintf(buf, sizeof buf, "%s %s, %s, %s", mnemonic(d.op),
                    reg_name(d.rd), reg_name(d.rs1), reg_name(d.rs2));
      break;
    case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
      std::snprintf(buf, sizeof buf, "%s %s, 0x%x, %s", mnemonic(d.op),
                    reg_name(d.rd), d.imm, reg_name(d.rs1));
      break;
    case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
      std::snprintf(buf, sizeof buf, "%s %s, 0x%x, %u", mnemonic(d.op),
                    reg_name(d.rd), d.imm, d.rs1);
      break;
    default:
      std::snprintf(buf, sizeof buf, "%s", mnemonic(d.op));
      break;
  }
  return buf;
}

std::string disassemble(std::uint32_t raw) { return disassemble(decode(raw)); }

}  // namespace vpdift::rv
