// Machine-word abstraction: the one type parameter distinguishing the plain
// VP from the DIFT-enabled VP+ (paper, Section V-B1, modification no. 1).
#pragma once

#include <cstdint>

#include "dift/context.hpp"
#include "dift/tag.hpp"
#include "dift/taint.hpp"

namespace vpdift::rv {

template <typename W>
struct WordOps;

/// Plain VP: registers are native 32-bit words, tags are compile-time zero.
template <>
struct WordOps<std::uint32_t> {
  static constexpr bool kTainted = false;
  static std::uint32_t value(std::uint32_t w) { return w; }
  static dift::Tag tag(std::uint32_t) { return dift::kBottomTag; }
  static std::uint32_t make(std::uint32_t v, dift::Tag) { return v; }
  /// Tag combination: compiles away entirely.
  static dift::Tag combine(dift::Tag, dift::Tag) { return dift::kBottomTag; }
};

/// VP+: registers are Taint<uint32_t>; tag combination is the IFP's LUB.
template <>
struct WordOps<dift::Taint<std::uint32_t>> {
  static constexpr bool kTainted = true;
  static std::uint32_t value(const dift::Taint<std::uint32_t>& w) { return w.value(); }
  static dift::Tag tag(const dift::Taint<std::uint32_t>& w) { return w.tag(); }
  static dift::Taint<std::uint32_t> make(std::uint32_t v, dift::Tag t) {
    return dift::Taint<std::uint32_t>(v, t);
  }
  static dift::Tag combine(dift::Tag a, dift::Tag b) { return dift::lub(a, b); }
};

/// The plain machine word of the original VP.
using PlainWord = std::uint32_t;
/// The tainted machine word of the VP+.
using TaintedWord = dift::Taint<std::uint32_t>;

}  // namespace vpdift::rv
