// RV32IM machine-mode CPU core, templated on the machine word.
//
// Core<PlainWord> is the original VP's ISS; Core<TaintedWord> is the VP+ with
// the DIFT engine woven in: every register carries a tag, ALU results take
// the LUB of their operand tags, and the three execution-clearance checks of
// the paper (instruction fetch, branch/indirect-jump/trap-vector, memory-
// access address) plus store-clearance protection are enforced. All checks
// compile away completely in the plain instantiation.
//
// Memory is reached through a TLM initiator socket; a DMI (direct memory
// interface) window over the main RAM provides the fast path, exactly like
// riscv-vp. The core is driven in instruction quanta by the VP's CPU thread:
// run(n) executes up to n instructions and returns early on WFI or when the
// simulation must stop.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dift/policy.hpp"
#include "dift/shadow.hpp"
#include "dift/stats.hpp"
#include "rv/csr.hpp"
#include "rv/decode.hpp"
#include "rv/trace.hpp"
#include "rv/word.hpp"
#include "sysc/time.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::rv {

/// Why Core::run() returned before exhausting its quantum.
enum class RunExit : std::uint8_t {
  kQuantumExhausted,
  kWfi,  ///< core executed WFI and no enabled interrupt is pending
};

template <typename W>
class Core {
 public:
  using Ops = WordOps<W>;
  static constexpr bool kTainted = Ops::kTainted;

  explicit Core(std::string name = "core0");

  // ---- wiring ----

  /// Socket for data/fetch transactions that miss the DMI window.
  tlmlite::InitiatorSocket& bus_socket() { return bus_; }
  /// Direct-memory-interface window over main RAM (`tags` may be null in the
  /// plain build). `shadow` is the optional block-summary layer over `tags`
  /// (see dift/shadow.hpp); when given, the tainted core's load/fetch paths
  /// skip the per-byte LUB loop on uniform blocks.
  void set_dmi(std::uint8_t* data, dift::Tag* tags, std::uint64_t base,
               std::uint64_t size, dift::ShadowSummary* shadow = nullptr);
  /// Installs the security policy (execution clearance + store protection).
  /// Only meaningful for the tainted instantiation.
  void set_policy(const dift::SecurityPolicy* policy);
  /// Source for the `time` CSR, in microseconds of simulated time.
  void set_time_source(std::function<std::uint64_t()> fn) { time_us_ = std::move(fn); }
  /// Attaches an execution trace ring buffer (nullptr detaches). Costs one
  /// predictable branch per instruction while attached.
  void set_trace(TraceBuffer* trace) { trace_ = trace; }

  // ---- architectural state ----

  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }
  W reg(std::uint8_t r) const { return regs_[r]; }
  void set_reg(std::uint8_t r, W v) {
    if (r != 0) regs_[r] = v;
  }
  CsrFile& csrs() { return csrs_; }
  std::uint64_t instret() const { return instret_; }

  /// Raises/clears an interrupt-pending bit (kIrqMsoft/kIrqMtimer/kIrqMext).
  void set_irq(std::uint32_t bit, bool level);
  /// True while the core sleeps in WFI.
  bool in_wfi() const { return wfi_; }
  /// True iff an enabled interrupt is pending (what wakes WFI).
  bool irq_pending() const { return (csrs_.mip & csrs_.mie) != 0; }

  // ---- execution ----

  /// Executes up to `max_instructions`; returns the reason for stopping.
  /// Policy violations (VP+ only) propagate as dift::PolicyViolation.
  RunExit run(std::uint64_t max_instructions);

  /// Architectural reset: clears registers, CSRs, pending interrupts, the
  /// WFI state, the decode cache, and the retirement counter; pc moves to
  /// `reset_pc`. Wiring (bus, DMI, policy, trace) is preserved.
  void reset(std::uint32_t reset_pc);

  /// Checkpoint support: restores the retirement counter and WFI state
  /// (registers/pc/CSRs are restored through their accessors).
  void restore_counters(std::uint64_t instret, bool wfi) {
    instret_ = instret;
    wfi_ = wfi;
  }

  /// Single-step convenience for tests.
  void step() { run(1); }

  /// Cumulative engine counters (decode cache, summary fast paths). The VP
  /// snapshots these around run() to report per-run deltas.
  const dift::DiftStats& stats() const { return stats_; }

 private:
  struct MemAccess {
    std::uint32_t value;
    dift::Tag tag;
    bool fault;
  };

  void execute(const Insn& d);
  void transport_with_pc(tlmlite::Payload& p, sysc::Time& delay);
  MemAccess load(std::uint32_t addr, std::uint32_t size, bool sign_extend);
  bool store(std::uint32_t addr, std::uint32_t value, dift::Tag tag,
             std::uint32_t size);
  MemAccess fetch32(std::uint32_t addr);
  void take_trap(std::uint32_t cause, std::uint32_t tval);
  void check_interrupts();
  void do_csr(const Insn& d);

  dift::Tag combine(dift::Tag a, dift::Tag b) { return Ops::combine(a, b); }
  std::uint32_t rv(std::uint8_t r) const { return Ops::value(regs_[r]); }
  dift::Tag rt(std::uint8_t r) const { return Ops::tag(regs_[r]); }
  void wr(std::uint8_t rd, std::uint32_t v, dift::Tag t) {
    if (rd != 0) regs_[rd] = Ops::make(v, t);
  }
  void wrw(std::uint8_t rd, W w) {
    if (rd != 0) regs_[rd] = w;
  }

  std::string name_;
  std::array<W, 32> regs_{};
  std::uint32_t pc_ = 0;
  std::uint32_t next_pc_ = 0;
  CsrFile csrs_;
  std::uint64_t instret_ = 0;
  bool wfi_ = false;

  tlmlite::InitiatorSocket bus_;
  std::uint8_t* dmi_data_ = nullptr;
  dift::Tag* dmi_tags_ = nullptr;
  std::uint64_t dmi_base_ = 0;
  std::uint64_t dmi_size_ = 0;
  dift::ShadowSummary* shadow_ = nullptr;

  // Fetch-clearance memo: while the summary generation, flow table and
  // clearance are unchanged, a fetch from this uniform block is known to be
  // allowed — the whole per-instruction check collapses to four compares.
  // Only successful (allowed) checks are memoised, so enforcement throws and
  // monitor-mode records are never suppressed.
  struct FetchMemo {
    std::uint64_t block = ~std::uint64_t{0};
    std::uint64_t generation = ~std::uint64_t{0};
    const std::uint8_t* flow = nullptr;
    dift::Tag clearance{};
  };
  FetchMemo fetch_memo_;
  void invalidate_fetch_memo() { fetch_memo_ = FetchMemo{}; }

  dift::DiftStats stats_;
  bool trapped_ = false;  ///< execute() took a trap (no rd write happened)

  // Decode cache over the low part of the DMI window (riscv-vp-style): one
  // pre-decoded entry per halfword, revalidated against the raw instruction
  // bytes so that self-modifying code stays correct.
  static constexpr std::uint64_t kDecodeCacheWindow = 256u << 10;
  struct DecodeEntry {
    std::uint32_t raw = 0;
    Insn insn;
  };
  std::vector<DecodeEntry> decode_cache_;

  const dift::SecurityPolicy* policy_ = nullptr;
  dift::ExecutionClearance exec_;
  bool has_store_prot_ = false;

  std::function<std::uint64_t()> time_us_;
  TraceBuffer* trace_ = nullptr;
};

extern template class Core<PlainWord>;
extern template class Core<TaintedWord>;

}  // namespace vpdift::rv
