// RV32IM machine-mode CPU core, templated on the machine word.
//
// Core<PlainWord> is the original VP's ISS; Core<TaintedWord> is the VP+ with
// the DIFT engine woven in: every register carries a tag, ALU results take
// the LUB of their operand tags, and the three execution-clearance checks of
// the paper (instruction fetch, branch/indirect-jump/trap-vector, memory-
// access address) plus store-clearance protection are enforced. All checks
// compile away completely in the plain instantiation.
//
// Memory is reached through a TLM initiator socket; a DMI (direct memory
// interface) window over the main RAM provides the fast path, exactly like
// riscv-vp. The core is driven in instruction quanta by the VP's CPU thread:
// run(n) executes up to n instructions and returns early on WFI or when the
// simulation must stop.
//
// The hot loop is a basic-block translation cache (see docs/perf.md): code
// in the DMI window is decoded once per straight-line region into micro-ops
// with per-instruction handler function pointers, and per-instruction
// overheads (interrupt-pending test, fetch-clearance check, trace test) are
// hoisted to block boundaries. Blocks revalidate against the raw instruction
// bytes so self-modifying code stays correct.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dift/policy.hpp"
#include "dift/shadow.hpp"
#include "dift/stats.hpp"
#include "rv/csr.hpp"
#include "rv/decode.hpp"
#include "rv/trace.hpp"
#include "rv/word.hpp"
#include "sysc/time.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::rv {

/// Why Core::run() returned before exhausting its quantum.
enum class RunExit : std::uint8_t {
  kQuantumExhausted,
  kWfi,  ///< core executed WFI and no enabled interrupt is pending
};

template <typename W>
struct CoreOps;  // per-instruction handler tables (defined in core.cpp)

template <typename W>
class Core {
 public:
  using Ops = WordOps<W>;
  static constexpr bool kTainted = Ops::kTainted;

  explicit Core(std::string name = "core0");

  // ---- wiring ----

  /// Socket for data/fetch transactions that miss the DMI window.
  tlmlite::InitiatorSocket& bus_socket() { return bus_; }
  /// Direct-memory-interface window over main RAM (`tags` may be null in the
  /// plain build). `shadow` is the optional block-summary layer over `tags`
  /// (see dift/shadow.hpp); when given, the tainted core's load/fetch paths
  /// skip the per-byte LUB loop on uniform blocks.
  void set_dmi(std::uint8_t* data, dift::Tag* tags, std::uint64_t base,
               std::uint64_t size, dift::ShadowSummary* shadow = nullptr);
  /// Installs the security policy (execution clearance + store protection).
  /// Only meaningful for the tainted instantiation.
  void set_policy(const dift::SecurityPolicy* policy);
  /// Source for the `time` CSR, in microseconds of simulated time.
  void set_time_source(std::function<std::uint64_t()> fn) { time_us_ = std::move(fn); }
  /// Attaches an execution trace ring buffer (nullptr detaches). While
  /// attached, blocks execute on the careful (per-instruction) path so the
  /// trace is bit-identical to single-step execution.
  void set_trace(TraceBuffer* trace) { trace_ = trace; }

  // ---- ahead-of-time plain-block pinning (src/sa) ----

  /// Installs the pin set computed by the static analyzer: DMI byte offsets
  /// of block-head boundaries whose translated window provably never touches
  /// taint under the installed policy (see docs/analysis.md for the
  /// obligations). A pinned dispatch skips the plain_state() re-proof — the
  /// shadow-plane scan and the register-tag rescan — and needs only the
  /// sticky reg-tag OR to still read ⊥ plus the memoised clearance check.
  /// The set binds to the (firmware, policy) pair: set_policy() drops it,
  /// and a fired injected fault suspends it for the rest of the run (the
  /// mutated state is outside the analyzed behaviour). Installing a set
  /// resets superblock state so fused traces can never mix pinned and
  /// unpinned constituents, and clears a previous suspension.
  void set_pinned_blocks(std::vector<std::uint64_t> offs);
  /// Drops the pin set and clears every per-block pin flag.
  void clear_pins();
  std::size_t pinned_block_count() const { return pinned_offs_.size(); }
  /// True once a fired injected fault invalidated the pin set for this run.
  bool pins_suspended() const { return pins_suspended_; }

  // ---- architectural state ----

  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }
  W reg(std::uint8_t r) const { return regs_[r]; }
  void set_reg(std::uint8_t r, W v) {
    if (r != 0) {
      regs_[r] = v;
      if constexpr (kTainted)
        reg_tag_or_ = static_cast<dift::Tag>(reg_tag_or_ | Ops::tag(v));
    }
  }
  CsrFile& csrs() { return csrs_; }
  std::uint64_t instret() const { return instret_; }

  /// Raises/clears an interrupt-pending bit (kIrqMsoft/kIrqMtimer/kIrqMext).
  void set_irq(std::uint32_t bit, bool level);
  /// True while the core sleeps in WFI.
  bool in_wfi() const { return wfi_; }
  /// True iff an enabled interrupt is pending (what wakes WFI).
  bool irq_pending() const { return (csrs_.mip & csrs_.mie) != 0; }

  // ---- execution ----

  /// Executes up to `max_instructions`; returns the reason for stopping.
  /// Policy violations (VP+ only) propagate as dift::PolicyViolation.
  RunExit run(std::uint64_t max_instructions);

  /// True once the core trapped with a null trap vector (mtvec == 0): the
  /// machine has no handler and would spin on access faults at pc 0. The VP
  /// polls this after each quantum and halts the run (ExitReason::kTrap)
  /// instead of burning simulated time. Cleared by reset().
  bool fatal_trap() const { return fatal_trap_; }

  /// Fault injection (src/fi): arms a one-shot state-mutation callback that
  /// fires at the first instruction boundary at or after `at_instret`
  /// retired instructions. While armed, the dispatch loop clamps each
  /// block's execution budget to the trigger distance, so a block holding
  /// the trigger point executes partially and stops exactly there — the
  /// cache degrades to a shorter run of the same block instead of being
  /// invalidated (re-entry mid-block translates a fresh block at that pc;
  /// `block_invalidations` is untouched by injection). The callback runs
  /// between instructions with the core architecturally quiescent; tag-plane
  /// mutations must keep the shadow summary coherent themselves. An armed
  /// fault survives reset() (the trigger re-applies against the restarted
  /// retirement counter), which keeps post-watchdog schedules deterministic.
  void arm_fault(std::uint64_t at_instret, std::function<void(Core&)> fn) {
    fault_at_ = at_instret;
    fault_fn_ = std::move(fn);
    fault_armed_ = static_cast<bool>(fault_fn_);
  }
  bool fault_armed() const { return fault_armed_; }
  /// Trigger point of the armed fault (meaningful while fault_armed()).
  std::uint64_t fault_at() const { return fault_at_; }
  /// Drops an armed-but-unfired fault. Snapshot restore calls this so a
  /// forked tail never inherits the parent's pending trigger.
  void disarm_fault() {
    fault_armed_ = false;
    fault_fn_ = nullptr;
  }

  /// Drops every cached block translation (and the current-block bounds).
  /// Required after any RAM mutation that bypasses the store path — e.g.
  /// snapshot restore memcpys new code bytes straight into the DMI window,
  /// so `smc_break_` never fires and chained blocks would keep executing
  /// stale translations.
  void invalidate_blocks() {
    blocks_.clear();
    cur_block_lo_ = cur_block_hi_ = 0;
    smc_break_ = false;
  }

  /// Architectural reset: clears registers, CSRs, pending interrupts, the
  /// WFI state, the block cache, and the retirement counter; pc moves to
  /// `reset_pc`. Wiring (bus, DMI, policy, trace) is preserved.
  /// `keep_translations` keeps the translated blocks (and their chains and
  /// superblocks) warm — sound only when the DMI code bytes are reloaded
  /// with identical content (campaign re-arm with an unchanged firmware
  /// hash): translations are content-keyed and revalidate against the raw
  /// bytes anyway, but the per-block fetch memos bind to a policy's flow
  /// table and are wiped to avoid pointer-reuse ABA across policies.
  void reset(std::uint32_t reset_pc, bool keep_translations = false);

  /// Checkpoint support: restores the retirement counter and WFI state
  /// (registers/pc/CSRs are restored through their accessors).
  void restore_counters(std::uint64_t instret, bool wfi) {
    instret_ = instret;
    wfi_ = wfi;
  }

  /// Single-step convenience for tests.
  void step() { run(1); }

  /// Cumulative engine counters (block cache, summary fast paths). The VP
  /// snapshots these around run() to report per-run deltas.
  const dift::DiftStats& stats() const { return stats_; }

  /// Result of a data/fetch memory access.
  struct MemAccess {
    std::uint32_t value;
    dift::Tag tag;
    bool fault;
  };

  /// Fetch-path read of one 32-bit parcel. Shadow-summary hits on the DMI
  /// window count as `fetch_summary_hits` (fetch-path attribution), unlike
  /// load(), whose hits count as `load_summary_hits`.
  MemAccess fetch32(std::uint32_t addr);

 private:
  friend struct CoreOps<W>;
  /// Handler signature for one decoded instruction: executes the operation,
  /// leaving `next_pc_` at the successor pc (handlers of control-flow ops
  /// overwrite it). Shared by the block dispatch loop and execute().
  using ExecFn = void (*)(Core&, const Insn&);

  /// One pre-decoded instruction of a translated block.
  ///
  /// Every op carries two resolved handlers: `fn` is the full (tainted)
  /// semantics, `fast` the taint-liveness-specialized plain variant that
  /// skips all tag work — valid only while plain_state() holds (shadow plane
  /// uniformly ⊥, register tags ⊥, every clearance admits ⊥). Terminators
  /// and the plain instantiation alias fast == fn. `chk`/`expect` are used
  /// only by trace (superblock) copies of an op: after a part-boundary op
  /// retires, the dispatch loop verifies pc_ == expect before falling
  /// through into the next fused block.
  struct MicroOp {
    Insn insn;
    ExecFn fn;
    ExecFn fast;
    bool mem;  ///< load/store: may raise an IRQ or modify code mid-block
    bool cf;   ///< conditional branch: exits the block only when taken
    bool chk = false;          ///< trace boundary: verify successor pc
    std::uint32_t expect = 0;  ///< predicted successor pc (chk only)
  };

  /// A superblock: several chained blocks fused into one straight-line run
  /// of micro-ops (see docs/perf.md). Owned by its head Block and executed
  /// only on the plain path (Core<PlainWord>, or Core<TaintedWord> while
  /// plain_state() holds), so no flow-check or memo state is fused. Every
  /// constituent's raw bytes are revalidated on entry; `lo`/`hi` span the
  /// hull of all parts so stores into any constituent (or a gap) raise
  /// smc_break_ mid-trace.
  struct Trace {
    struct Part {
      std::uint64_t off;       ///< DMI offset of the constituent block head
      std::uint32_t len;       ///< its byte length
      std::uint32_t raw_off;   ///< offset of its snapshot inside `raw`
      std::uint32_t first_op;  ///< index of its first micro-op in `ops`
    };
    std::vector<MicroOp> ops;
    std::vector<Part> parts;
    std::vector<std::uint8_t> raw;
    std::uint64_t lo = 0;  ///< hull of constituent spans (DMI offsets)
    std::uint64_t hi = 0;
    bool all_pinned = false;  ///< every constituent block is pinned
  };

  /// One translated basic block: a run of micro-ops ending at the first
  /// unconditional-control-flow/CSR/fence/WFI terminator (or kMaxBlockOps).
  /// Conditional branches stay inside the block — they fall through to the
  /// next micro-op when not taken and exit the block when taken, which keeps
  /// branch-dense inner loops in one block instead of fragmenting them.
  /// `raw` snapshots the encoded bytes; a byte compare on entry revalidates
  /// against self-modifying code. `chain` caches the successor block reached last time the block ran
  /// to completion. The fetch memo generalizes the old single-shadow-block
  /// memo to the whole block span: while the shadow generation, flow table
  /// and clearance are unchanged, fetching this block is known to be allowed.
  /// Only successful (allowed) checks are memoised, so enforcement throws and
  /// monitor-mode records are never suppressed.
  struct Block {
    std::uint64_t start_off = 0;  ///< DMI offset of the block head
    std::uint32_t byte_len = 0;
    Block* chain = nullptr;
    std::uint64_t chain_off = ~std::uint64_t{0};
    std::uint64_t fetch_gen = ~std::uint64_t{0};
    const std::uint8_t* fetch_flow = nullptr;
    dift::Tag fetch_clearance{};
    bool fetch_memo = false;
    std::vector<MicroOp> ops;
    std::vector<std::uint8_t> raw;
    // Superblock state: after kTraceHeat plain dispatches, chained
    // successors are fused into `trace`. `no_trace` latches heads that can
    // never fuse (terminator kind, self-loop) until the block is rebuilt.
    std::unique_ptr<Trace> trace;
    std::uint32_t heat = 0;
    bool no_trace = false;
    bool pinned = false;  ///< head is in the analyzer's pin set
  };

  /// Upper bound on micro-ops per block (straight-line runs longer than this
  /// split into consecutive blocks).
  static constexpr std::size_t kMaxBlockOps = 64;
  /// Plain dispatches of a block before superblock formation is attempted.
  static constexpr std::uint32_t kTraceHeat = 16;
  /// Upper bounds on fused blocks / micro-ops per superblock.
  static constexpr std::size_t kMaxTraceParts = 8;
  static constexpr std::size_t kMaxTraceOps = 256;

  void execute(const Insn& d);
  void transport_with_pc(tlmlite::Payload& p, sysc::Time& delay);
  MemAccess load(std::uint32_t addr, std::uint32_t size, bool sign_extend);
  bool store(std::uint32_t addr, std::uint32_t value, dift::Tag tag,
             std::uint32_t size);
  void take_trap(std::uint32_t cause, std::uint32_t tval);
  void check_interrupts();
  void do_csr(const Insn& d);

  Block* lookup_block(std::uint64_t off, bool& fresh);
  void build_into(Block& b, std::uint64_t off);
  std::uint64_t exec_block(Block& b, std::uint64_t budget, bool fresh,
                           bool plain);
  void step_slow();

  // Taint-liveness gate + superblock engine (see docs/perf.md).
  bool plain_state();
  bool plain_clearances_ok();
  void wipe_fetch_memos();
  void build_trace(Block& head);
  bool trace_valid(const Trace& t) const;
  std::uint64_t exec_trace(Trace& t, std::uint64_t budget);

  dift::Tag combine(dift::Tag a, dift::Tag b) { return Ops::combine(a, b); }
  std::uint32_t rv(std::uint8_t r) const { return Ops::value(regs_[r]); }
  dift::Tag rt(std::uint8_t r) const { return Ops::tag(regs_[r]); }
  void wr(std::uint8_t rd, std::uint32_t v, dift::Tag t) {
    if (rd != 0) {
      regs_[rd] = Ops::make(v, t);
      if constexpr (kTainted)
        reg_tag_or_ = static_cast<dift::Tag>(reg_tag_or_ | t);
    }
  }
  void wrw(std::uint8_t rd, W w) {
    if (rd != 0) {
      regs_[rd] = w;
      if constexpr (kTainted)
        reg_tag_or_ = static_cast<dift::Tag>(reg_tag_or_ | Ops::tag(w));
    }
  }

  std::string name_;
  std::array<W, 32> regs_{};
  std::uint32_t pc_ = 0;
  std::uint32_t next_pc_ = 0;
  CsrFile csrs_;
  std::uint64_t instret_ = 0;
  bool wfi_ = false;

  tlmlite::InitiatorSocket bus_;
  std::uint8_t* dmi_data_ = nullptr;
  dift::Tag* dmi_tags_ = nullptr;
  std::uint64_t dmi_base_ = 0;
  std::uint64_t dmi_size_ = 0;
  dift::ShadowSummary* shadow_ = nullptr;

  dift::DiftStats stats_;
  bool trapped_ = false;  ///< execute() took a trap (no rd write happened)
  bool fatal_trap_ = false;  ///< trapped into mtvec == 0 (no handler installed)

  // One-shot injected fault (see arm_fault()).
  bool fault_armed_ = false;
  std::uint64_t fault_at_ = 0;
  std::function<void(Core&)> fault_fn_;

  // Block translation cache over the DMI window, keyed by halfword offset
  // (IALIGN=16 with the C extension) and grown lazily up to one slot per
  // halfword of the window. Block objects live on the heap so chain pointers
  // survive vector growth; invalidated blocks are rebuilt in place.
  std::vector<std::unique_ptr<Block>> blocks_;

  // Bounds (DMI offsets) of the block currently executing, so store() can
  // flag forward stores into the remainder of the block; `smc_break_` makes
  // the dispatch loop leave the block and re-translate at the new pc. Bus
  // (MMIO) stores set the flag unconditionally: a peripheral register write
  // may trigger DMA into code memory.
  std::uint64_t cur_block_lo_ = 0;
  std::uint64_t cur_block_hi_ = 0;
  bool smc_break_ = false;

  // Taint-liveness gate state. `reg_tag_or_` is a sticky OR of every tag
  // written to a register: 0 proves all register tags are ⊥; non-zero is
  // re-verified (and cleared) by a 32-register rescan at the next gate
  // evaluation, so the gate stays a pure function of architectural state.
  // `taint_break_` is raised by a plain-variant handler whose result
  // introduced taint (tagged MMIO read / DMA side effect): the dispatch
  // loop leaves the plain loop before the next op so everything downstream
  // runs with full tag semantics. The plain_ok_* memo caches "every
  // execution clearance and store protection admits ⊥-tagged execution"
  // against the active flow table (invalidated by set_policy()).
  dift::Tag reg_tag_or_ = dift::kBottomTag;
  bool taint_break_ = false;
  const std::uint8_t* plain_ok_flow_ = nullptr;
  bool plain_ok_ = false;
  bool plain_ok_valid_ = false;

  // Ahead-of-time pin set (sorted DMI byte offsets of pinned block heads).
  // Blocks mark themselves pinned at (re)translation via binary search;
  // pins_suspended_ latches once a fired injected fault leaves the analyzed
  // behaviour envelope.
  std::vector<std::uint64_t> pinned_offs_;
  bool pins_suspended_ = false;
  bool is_pinned_off(std::uint64_t off) const {
    return std::binary_search(pinned_offs_.begin(), pinned_offs_.end(), off);
  }

  const dift::SecurityPolicy* policy_ = nullptr;
  dift::ExecutionClearance exec_;
  bool has_store_prot_ = false;

  std::function<std::uint64_t()> time_us_;
  TraceBuffer* trace_ = nullptr;
};

extern template class Core<PlainWord>;
extern template class Core<TaintedWord>;

}  // namespace vpdift::rv
