// Machine-mode CSR file.
//
// CSRs carry a security tag alongside their value so that, e.g., a tainted
// trap vector (mtvec) written from attacker-influenced data is caught by the
// branch execution clearance when a trap dispatches through it.
#pragma once

#include <cstdint>

#include "dift/tag.hpp"

namespace vpdift::rv {

namespace csr {
inline constexpr std::uint32_t kMstatus = 0x300, kMisa = 0x301, kMie = 0x304,
                               kMtvec = 0x305, kMscratch = 0x340, kMepc = 0x341,
                               kMcause = 0x342, kMtval = 0x343, kMip = 0x344,
                               kMcycle = 0xb00, kMinstret = 0xb02,
                               kCycle = 0xc00, kTime = 0xc01, kInstret = 0xc02,
                               kMvendorid = 0xf11, kMarchid = 0xf12,
                               kMimpid = 0xf13, kMhartid = 0xf14;
}  // namespace csr

// mstatus bits.
inline constexpr std::uint32_t kMstatusMie = 1u << 3;
inline constexpr std::uint32_t kMstatusMpie = 1u << 7;
inline constexpr std::uint32_t kMstatusMpp = 3u << 11;

// mip/mie bits.
inline constexpr std::uint32_t kIrqMsoft = 1u << 3;
inline constexpr std::uint32_t kIrqMtimer = 1u << 7;
inline constexpr std::uint32_t kIrqMext = 1u << 11;

// mcause values.
inline constexpr std::uint32_t kCauseInsnMisaligned = 0;
inline constexpr std::uint32_t kCauseInsnAccessFault = 1;
inline constexpr std::uint32_t kCauseIllegalInsn = 2;
inline constexpr std::uint32_t kCauseBreakpoint = 3;
inline constexpr std::uint32_t kCauseLoadMisaligned = 4;
inline constexpr std::uint32_t kCauseLoadAccessFault = 5;
inline constexpr std::uint32_t kCauseStoreMisaligned = 6;
inline constexpr std::uint32_t kCauseStoreAccessFault = 7;
inline constexpr std::uint32_t kCauseEcallM = 11;
inline constexpr std::uint32_t kIrqBit = 0x80000000u;

/// A tagged CSR value.
struct CsrValue {
  std::uint32_t value = 0;
  dift::Tag tag = dift::kBottomTag;
};

/// Machine-mode CSR register file (the subset riscv-vp firmware uses).
class CsrFile {
 public:
  /// True iff `number` names an implemented CSR.
  bool exists(std::uint32_t number) const;
  /// Read for the CSR instruction path; counters are materialised from the
  /// core's cycle/instret arguments.
  CsrValue read(std::uint32_t number, std::uint64_t cycle, std::uint64_t instret,
                std::uint64_t time_us) const;
  /// Write for the CSR instruction path; read-only CSRs ignore writes.
  void write(std::uint32_t number, CsrValue v);

  // Direct accessors for the trap/interrupt machinery.
  CsrValue mstatus, mtvec, mscratch, mepc, mcause, mtval;
  std::uint32_t mie = 0;
  std::uint32_t mip = 0;

 private:
  static constexpr std::uint32_t kWritableMstatus =
      kMstatusMie | kMstatusMpie | kMstatusMpp;
};

}  // namespace vpdift::rv
