#include "rv/core.hpp"
#include <algorithm>
#include <cstring>

#include "dift/context.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::rv {

using dift::Tag;
using dift::ViolationKind;

// ---------------------------------------------------------------------------
// Per-instruction handlers.
//
// Every Op has one handler function per Core instantiation; the block engine
// stores the resolved function pointer in each micro-op so the dispatch loop
// is just `op.fn(core, op.insn)`. execute() routes through the same table, so
// the slow (bus-fetch) path and the block path share semantics by
// construction. Handlers read the current instruction pc from `c.pc_` and
// leave the successor pc in `c.next_pc_` (pre-set to pc + len by the caller).
//
// Taint semantics mirror the Taint<T> operators (paper Fig. 3): reg-reg ALU
// results take the LUB of the operand tags — with an untainted-operand fast
// path that skips the LUB machinery when both tags are ⊥ — while reg-imm
// forms propagate rs1's tag (immediates are untagged). In the plain
// instantiation all tag code compiles away.
// ---------------------------------------------------------------------------

template <typename W>
struct CoreOps {
  using C = Core<W>;
  using Ops = WordOps<W>;
  static constexpr bool kT = Ops::kTainted;
  using Fn = typename C::ExecFn;

  struct OpInfo {
    Fn fn;
    bool mem;         ///< load/store: can raise IRQs / modify code mid-block
    bool cf;          ///< conditional branch: exits the block only when taken
    bool terminator;  ///< ends a translated block
  };

  // ---- ALU value functions ----
  static constexpr std::uint32_t f_add(std::uint32_t a, std::uint32_t b) { return a + b; }
  static constexpr std::uint32_t f_sub(std::uint32_t a, std::uint32_t b) { return a - b; }
  static constexpr std::uint32_t f_xor(std::uint32_t a, std::uint32_t b) { return a ^ b; }
  static constexpr std::uint32_t f_or(std::uint32_t a, std::uint32_t b) { return a | b; }
  static constexpr std::uint32_t f_and(std::uint32_t a, std::uint32_t b) { return a & b; }
  static constexpr std::uint32_t f_sll(std::uint32_t a, std::uint32_t b) { return a << (b & 31); }
  static constexpr std::uint32_t f_srl(std::uint32_t a, std::uint32_t b) { return a >> (b & 31); }
  static constexpr std::uint32_t f_sra(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
  }
  static constexpr std::uint32_t f_slt(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b) ? 1u : 0u;
  }
  static constexpr std::uint32_t f_sltu(std::uint32_t a, std::uint32_t b) {
    return a < b ? 1u : 0u;
  }
  static constexpr std::uint32_t f_mul(std::uint32_t a, std::uint32_t b) { return a * b; }
  static constexpr std::uint32_t f_mulh(std::uint32_t a, std::uint32_t b) {
    const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                           static_cast<std::int64_t>(static_cast<std::int32_t>(b));
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
  }
  static constexpr std::uint32_t f_mulhsu(std::uint32_t a, std::uint32_t b) {
    const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                           static_cast<std::int64_t>(std::uint64_t(b));
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
  }
  static constexpr std::uint32_t f_mulhu(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::uint32_t>((std::uint64_t(a) * std::uint64_t(b)) >> 32);
  }
  static constexpr std::uint32_t f_div(std::uint32_t a, std::uint32_t b) {
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    if (sb == 0) return 0xffffffffu;
    if (sa == INT32_MIN && sb == -1) return static_cast<std::uint32_t>(INT32_MIN);
    return static_cast<std::uint32_t>(sa / sb);
  }
  static constexpr std::uint32_t f_divu(std::uint32_t a, std::uint32_t b) {
    return b == 0 ? 0xffffffffu : a / b;
  }
  static constexpr std::uint32_t f_rem(std::uint32_t a, std::uint32_t b) {
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    if (sb == 0) return a;
    if (sa == INT32_MIN && sb == -1) return 0;
    return static_cast<std::uint32_t>(sa % sb);
  }
  static constexpr std::uint32_t f_remu(std::uint32_t a, std::uint32_t b) {
    return b == 0 ? a : a % b;
  }

  // ---- branch predicates ----
  static constexpr bool p_eq(std::uint32_t a, std::uint32_t b) { return a == b; }
  static constexpr bool p_ne(std::uint32_t a, std::uint32_t b) { return a != b; }
  static constexpr bool p_lt(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
  }
  static constexpr bool p_ge(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
  }
  static constexpr bool p_ltu(std::uint32_t a, std::uint32_t b) { return a < b; }
  static constexpr bool p_geu(std::uint32_t a, std::uint32_t b) { return a >= b; }

  // ---- handler templates ----

  template <std::uint32_t (*F)(std::uint32_t, std::uint32_t)>
  static void h_rr(C& c, const Insn& d) {
    const std::uint32_t v = F(c.rv(d.rs1), c.rv(d.rs2));
    if constexpr (kT) {
      const Tag t1 = c.rt(d.rs1), t2 = c.rt(d.rs2);
      if ((t1 | t2) == 0)  // untainted fast path: no LUB needed
        c.wr(d.rd, v, dift::kBottomTag);
      else
        c.wr(d.rd, v, dift::lub(t1, t2));
    } else {
      c.wr(d.rd, v, dift::kBottomTag);
    }
  }

  template <std::uint32_t (*F)(std::uint32_t, std::uint32_t)>
  static void h_ri(C& c, const Insn& d) {
    c.wr(d.rd, F(c.rv(d.rs1), static_cast<std::uint32_t>(d.imm)), c.rt(d.rs1));
  }

  template <bool (*P)(std::uint32_t, std::uint32_t)>
  static void h_br(C& c, const Insn& d) {
    const bool taken = P(c.rv(d.rs1), c.rv(d.rs2));
    if constexpr (kT) {
      const Tag cond = Ops::combine(c.rt(d.rs1), c.rt(d.rs2));
      if (c.exec_.branch)
        dift::check_flow(cond, *c.exec_.branch, ViolationKind::kBranchClearance,
                         c.pc_, 0, "core.branch");
    }
    if (taken) {
      const std::uint32_t target = c.pc_ + static_cast<std::uint32_t>(d.imm);
      if (target & 1) c.take_trap(kCauseInsnMisaligned, target);
      else c.next_pc_ = target;
    }
  }

  template <std::uint32_t SZ, bool SIGN>
  static void h_load(C& c, const Insn& d) {
    const std::uint32_t addr = c.rv(d.rs1) + static_cast<std::uint32_t>(d.imm);
    if constexpr (kT) {
      if (c.exec_.mem_addr)
        dift::check_flow(c.rt(d.rs1), *c.exec_.mem_addr,
                         ViolationKind::kMemAddrClearance, c.pc_, addr, "core.lsu");
    }
    const auto m = c.load(addr, SZ, SIGN);
    if (m.fault) c.take_trap(kCauseLoadAccessFault, addr);
    else c.wr(d.rd, m.value, m.tag);
  }

  template <std::uint32_t SZ>
  static void h_store(C& c, const Insn& d) {
    const std::uint32_t addr = c.rv(d.rs1) + static_cast<std::uint32_t>(d.imm);
    if constexpr (kT) {
      if (c.exec_.mem_addr)
        dift::check_flow(c.rt(d.rs1), *c.exec_.mem_addr,
                         ViolationKind::kMemAddrClearance, c.pc_, addr, "core.lsu");
    }
    if (c.store(addr, c.rv(d.rs2), c.rt(d.rs2), SZ))
      c.take_trap(kCauseStoreAccessFault, addr);
  }

  static void h_lui(C& c, const Insn& d) {
    c.wr(d.rd, static_cast<std::uint32_t>(d.imm), dift::kBottomTag);
  }
  static void h_auipc(C& c, const Insn& d) {
    c.wr(d.rd, c.pc_ + static_cast<std::uint32_t>(d.imm), dift::kBottomTag);
  }
  static void h_jal(C& c, const Insn& d) {
    const std::uint32_t target = c.pc_ + static_cast<std::uint32_t>(d.imm);
    if (target & 1) { c.take_trap(kCauseInsnMisaligned, target); return; }
    c.wr(d.rd, c.pc_ + d.len, dift::kBottomTag);
    c.next_pc_ = target;
  }
  static void h_jalr(C& c, const Insn& d) {
    const std::uint32_t target =
        (c.rv(d.rs1) + static_cast<std::uint32_t>(d.imm)) & ~1u;
    if constexpr (kT) {
      // Indirect jump: the target address acts as the "branch condition".
      if (c.exec_.branch)
        dift::check_flow(c.rt(d.rs1), *c.exec_.branch, ViolationKind::kBranchClearance,
                         c.pc_, target, "core.jalr");
    }
    if (target & 1) { c.take_trap(kCauseInsnMisaligned, target); return; }
    c.wr(d.rd, c.pc_ + d.len, dift::kBottomTag);
    c.next_pc_ = target;
  }
  static void h_fence(C&, const Insn&) {}  // single hart, loosely timed: no-op
  static void h_ecall(C& c, const Insn&) { c.take_trap(kCauseEcallM, 0); }
  static void h_ebreak(C& c, const Insn&) { c.take_trap(kCauseBreakpoint, c.pc_); }
  static void h_csr(C& c, const Insn& d) { c.do_csr(d); }
  static void h_mret(C& c, const Insn&) {
    auto& s = c.csrs_;
    std::uint32_t m = s.mstatus.value;
    const bool mpie = (m & kMstatusMpie) != 0;
    m &= ~kMstatusMie;
    if (mpie) m |= kMstatusMie;
    m |= kMstatusMpie;
    s.mstatus.value = m;
    if constexpr (kT) {
      if (c.exec_.branch)
        dift::check_flow(s.mepc.tag, *c.exec_.branch, ViolationKind::kBranchClearance,
                         c.pc_, s.mepc.value, "core.mret");
    }
    c.next_pc_ = s.mepc.value;
  }
  static void h_wfi(C& c, const Insn&) {
    if ((c.csrs_.mip & c.csrs_.mie) == 0) c.wfi_ = true;
  }
  static void h_illegal(C& c, const Insn& d) { c.take_trap(kCauseIllegalInsn, d.raw); }

  // ---- dispatch table, indexed by Op ----
  static constexpr std::array<OpInfo, kNumOps> make_table() {
    std::array<OpInfo, kNumOps> t{};
    for (auto& e : t) e = {&h_illegal, false, false, true};
    auto set = [&](Op op, Fn fn, bool mem, bool term, bool cf = false) {
      t[static_cast<std::size_t>(op)] = {fn, mem, cf, term};
    };
    set(Op::kLui, &h_lui, false, false);
    set(Op::kAuipc, &h_auipc, false, false);
    set(Op::kJal, &h_jal, false, true);
    set(Op::kJalr, &h_jalr, false, true);
    set(Op::kBeq, &h_br<&p_eq>, false, false, true);
    set(Op::kBne, &h_br<&p_ne>, false, false, true);
    set(Op::kBlt, &h_br<&p_lt>, false, false, true);
    set(Op::kBge, &h_br<&p_ge>, false, false, true);
    set(Op::kBltu, &h_br<&p_ltu>, false, false, true);
    set(Op::kBgeu, &h_br<&p_geu>, false, false, true);
    set(Op::kLb, &h_load<1, true>, true, false);
    set(Op::kLh, &h_load<2, true>, true, false);
    set(Op::kLw, &h_load<4, false>, true, false);
    set(Op::kLbu, &h_load<1, false>, true, false);
    set(Op::kLhu, &h_load<2, false>, true, false);
    set(Op::kSb, &h_store<1>, true, false);
    set(Op::kSh, &h_store<2>, true, false);
    set(Op::kSw, &h_store<4>, true, false);
    set(Op::kAddi, &h_ri<&f_add>, false, false);
    set(Op::kSlti, &h_ri<&f_slt>, false, false);
    set(Op::kSltiu, &h_ri<&f_sltu>, false, false);
    set(Op::kXori, &h_ri<&f_xor>, false, false);
    set(Op::kOri, &h_ri<&f_or>, false, false);
    set(Op::kAndi, &h_ri<&f_and>, false, false);
    set(Op::kSlli, &h_ri<&f_sll>, false, false);
    set(Op::kSrli, &h_ri<&f_srl>, false, false);
    set(Op::kSrai, &h_ri<&f_sra>, false, false);
    set(Op::kAdd, &h_rr<&f_add>, false, false);
    set(Op::kSub, &h_rr<&f_sub>, false, false);
    set(Op::kSll, &h_rr<&f_sll>, false, false);
    set(Op::kSlt, &h_rr<&f_slt>, false, false);
    set(Op::kSltu, &h_rr<&f_sltu>, false, false);
    set(Op::kXor, &h_rr<&f_xor>, false, false);
    set(Op::kSrl, &h_rr<&f_srl>, false, false);
    set(Op::kSra, &h_rr<&f_sra>, false, false);
    set(Op::kOr, &h_rr<&f_or>, false, false);
    set(Op::kAnd, &h_rr<&f_and>, false, false);
    set(Op::kFence, &h_fence, false, true);
    set(Op::kEcall, &h_ecall, false, true);
    set(Op::kEbreak, &h_ebreak, false, true);
    set(Op::kMul, &h_rr<&f_mul>, false, false);
    set(Op::kMulh, &h_rr<&f_mulh>, false, false);
    set(Op::kMulhsu, &h_rr<&f_mulhsu>, false, false);
    set(Op::kMulhu, &h_rr<&f_mulhu>, false, false);
    set(Op::kDiv, &h_rr<&f_div>, false, false);
    set(Op::kDivu, &h_rr<&f_divu>, false, false);
    set(Op::kRem, &h_rr<&f_rem>, false, false);
    set(Op::kRemu, &h_rr<&f_remu>, false, false);
    set(Op::kCsrrw, &h_csr, false, true);
    set(Op::kCsrrs, &h_csr, false, true);
    set(Op::kCsrrc, &h_csr, false, true);
    set(Op::kCsrrwi, &h_csr, false, true);
    set(Op::kCsrrsi, &h_csr, false, true);
    set(Op::kCsrrci, &h_csr, false, true);
    set(Op::kMret, &h_mret, false, true);
    set(Op::kWfi, &h_wfi, false, true);
    return t;
  }
  static constexpr std::array<OpInfo, kNumOps> kTable = make_table();

  static const OpInfo& entry(Op op) { return kTable[static_cast<std::size_t>(op)]; }
};

template <typename W>
Core<W>::Core(std::string name) : name_(std::move(name)) {}

template <typename W>
void Core<W>::set_dmi(std::uint8_t* data, Tag* tags, std::uint64_t base,
                      std::uint64_t size, dift::ShadowSummary* shadow) {
  dmi_data_ = data;
  dmi_tags_ = tags;
  dmi_base_ = base;
  dmi_size_ = size;
  shadow_ = shadow;
  invalidate_blocks();
}

template <typename W>
void Core<W>::set_policy(const dift::SecurityPolicy* policy) {
  policy_ = policy;
  exec_ = policy ? policy->execution_clearance() : dift::ExecutionClearance{};
  has_store_prot_ = policy && !policy->store_protection().empty();
  invalidate_blocks();
}

template <typename W>
void Core<W>::reset(std::uint32_t reset_pc) {
  regs_.fill(W{});
  csrs_ = CsrFile{};
  pc_ = reset_pc;
  next_pc_ = reset_pc;
  instret_ = 0;
  wfi_ = false;
  fatal_trap_ = false;
  invalidate_blocks();
}

template <typename W>
void Core<W>::set_irq(std::uint32_t bit, bool level) {
  if (level)
    csrs_.mip |= bit;
  else
    csrs_.mip &= ~bit;
}

template <typename W>
auto Core<W>::load(std::uint32_t addr, std::uint32_t size, bool sign_extend)
    -> MemAccess {
  std::uint32_t value = 0;
  Tag tag = dift::kBottomTag;
  if (addr >= dmi_base_ && std::uint64_t(addr) - dmi_base_ + size <= dmi_size_) {
    const std::uint64_t off = addr - dmi_base_;
    for (std::uint32_t i = 0; i < size; ++i)
      value |= std::uint32_t(dmi_data_[off + i]) << (8 * i);
    if constexpr (kTainted) {
      if (shadow_ && shadow_->uniform(off, size, &tag)) {
        ++stats_.load_summary_hits;
      } else {
        tag = dmi_tags_[off];
        for (std::uint32_t i = 1; i < size; ++i)
          tag = dift::lub(tag, dmi_tags_[off + i]);
      }
    }
  } else {
    std::uint8_t buf[4] = {};
    Tag tbuf[4] = {};
    tlmlite::Payload p;
    p.command = tlmlite::Command::kRead;
    p.address = addr;
    p.data = buf;
    p.tags = kTainted ? tbuf : nullptr;
    p.length = size;
    sysc::Time delay;
    transport_with_pc(p, delay);
    if (!p.ok()) return {0, dift::kBottomTag, true};
    for (std::uint32_t i = 0; i < size; ++i) value |= std::uint32_t(buf[i]) << (8 * i);
    if constexpr (kTainted) {
      if (p.tags_uniform()) {
        tag = static_cast<Tag>(p.tag_summary);
        ++stats_.load_summary_hits;
      } else {
        tag = tbuf[0];
        for (std::uint32_t i = 1; i < size; ++i) tag = dift::lub(tag, tbuf[i]);
      }
    }
  }
  if (sign_extend) {
    if (size == 1) value = static_cast<std::uint32_t>(static_cast<std::int8_t>(value));
    else if (size == 2)
      value = static_cast<std::uint32_t>(static_cast<std::int16_t>(value));
  }
  return {value, tag, false};
}

template <typename W>
bool Core<W>::store(std::uint32_t addr, std::uint32_t value, Tag tag,
                    std::uint32_t size) {
  if constexpr (kTainted) {
    if (has_store_prot_) {
      if (auto clearance = policy_->store_clearance_at(addr))
        dift::check_flow(tag, *clearance, ViolationKind::kStoreClearance, pc_, addr,
                         "core.store");
    }
  }
  if (addr >= dmi_base_ && std::uint64_t(addr) - dmi_base_ + size <= dmi_size_) {
    const std::uint64_t off = addr - dmi_base_;
    // Forward store into the remainder of the executing block: the dispatch
    // loop must abandon its stale micro-ops and re-translate.
    if (off < cur_block_hi_ && off + size > cur_block_lo_) smc_break_ = true;
    for (std::uint32_t i = 0; i < size; ++i)
      dmi_data_[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
    if constexpr (kTainted) {
      for (std::uint32_t i = 0; i < size; ++i) dmi_tags_[off + i] = tag;
      if (shadow_) shadow_->on_store(off, size, tag);
    }
    return false;
  }
  std::uint8_t buf[4];
  Tag tbuf[4];
  for (std::uint32_t i = 0; i < size; ++i) {
    buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
    tbuf[i] = tag;
  }
  tlmlite::Payload p;
  p.command = tlmlite::Command::kWrite;
  p.address = addr;
  p.data = buf;
  p.tags = kTainted ? tbuf : nullptr;
  p.length = size;
  p.set_tag_summary(tag);  // tbuf was filled uniformly above
  sysc::Time delay;
  transport_with_pc(p, delay);
  // A peripheral register write may have side effects on code memory (e.g.
  // starting a DMA transfer into RAM); end the current block conservatively.
  smc_break_ = true;
  return !p.ok();
}

template <typename W>
void Core<W>::transport_with_pc(tlmlite::Payload& p, sysc::Time& delay) {
  if constexpr (!kTainted) {
    bus_.b_transport(p, delay);
  } else {
    // Peripherals raise clearance violations without knowing the program
    // counter; publish it as a hint (used by monitor-mode records) and
    // re-throw enforcement violations with the faulting pc attached.
    dift::set_pc_hint(pc_);
    try {
      bus_.b_transport(p, delay);
    } catch (const dift::PolicyViolation& v) {
      if (v.pc() != 0) throw;
      throw dift::PolicyViolation(v.kind(), v.source(), v.required(), pc_,
                                  v.address() ? v.address() : p.address,
                                  v.where());
    }
  }
}

template <typename W>
auto Core<W>::fetch32(std::uint32_t addr) -> MemAccess {
  if (addr >= dmi_base_ && std::uint64_t(addr) - dmi_base_ + 4 <= dmi_size_) {
    const std::uint64_t off = addr - dmi_base_;
    std::uint32_t value;
    std::memcpy(&value, dmi_data_ + off, 4);  // host is little-endian
    Tag tag = dift::kBottomTag;
    if constexpr (kTainted) {
      if (shadow_ && shadow_->uniform(off, 4, &tag)) {
        ++stats_.fetch_summary_hits;  // fetch-path attribution
      } else {
        tag = dmi_tags_[off];
        for (std::uint32_t i = 1; i < 4; ++i)
          tag = dift::lub(tag, dmi_tags_[off + i]);
      }
    }
    return {value, tag, false};
  }
  return load(addr, 4, false);
}

template <typename W>
void Core<W>::take_trap(std::uint32_t cause, std::uint32_t tval) {
  trapped_ = true;
  auto& s = csrs_;
  std::uint32_t m = s.mstatus.value;
  const bool mie = (m & kMstatusMie) != 0;
  m &= ~(kMstatusMie | kMstatusMpie);
  if (mie) m |= kMstatusMpie;
  m |= kMstatusMpp;  // previous privilege: machine
  s.mstatus.value = m;
  s.mepc = {pc_, dift::kBottomTag};
  s.mcause = {cause, dift::kBottomTag};
  s.mtval = {tval, dift::kBottomTag};
  // No trap vector installed: the machine is wedged (pc 0 faults forever).
  // Latch it so the VP can end the run with a defined reason instead of
  // spinning to its simulated-time budget.
  if ((s.mtvec.value & ~3u) == 0) fatal_trap_ = true;
  if constexpr (kTainted) {
    if (exec_.branch)
      dift::check_flow(s.mtvec.tag, *exec_.branch, ViolationKind::kBranchClearance,
                       pc_, s.mtvec.value, "core.trap-vector");
  }
  next_pc_ = s.mtvec.value & ~3u;
}

template <typename W>
void Core<W>::check_interrupts() {
  const std::uint32_t pending = csrs_.mip & csrs_.mie;
  if (pending == 0) return;
  wfi_ = false;
  if (!(csrs_.mstatus.value & kMstatusMie)) return;
  std::uint32_t cause;
  if (pending & kIrqMext) cause = 11;
  else if (pending & kIrqMsoft) cause = 3;
  else cause = 7;
  take_trap(kIrqBit | cause, 0);
  pc_ = next_pc_;
}

template <typename W>
void Core<W>::do_csr(const Insn& d) {
  const auto csrnum = static_cast<std::uint32_t>(d.imm) & 0xfff;
  if (!csrs_.exists(csrnum)) {
    take_trap(kCauseIllegalInsn, d.raw);
    return;
  }
  const bool imm_form =
      d.op == Op::kCsrrwi || d.op == Op::kCsrrsi || d.op == Op::kCsrrci;
  const std::uint32_t src_v = imm_form ? d.rs1 : rv(d.rs1);
  const Tag src_t = imm_form ? dift::kBottomTag : rt(d.rs1);

  const bool is_write_form = d.op == Op::kCsrrw || d.op == Op::kCsrrwi;
  // csrrs/csrrc with rs1=x0 (or zimm=0) do not write.
  const bool writes = is_write_form || d.rs1 != 0;

  if (writes && ((csrnum >> 10) & 3) == 3) {  // read-only CSR space
    take_trap(kCauseIllegalInsn, d.raw);
    return;
  }

  const CsrValue old = csrs_.read(csrnum, instret_, instret_,
                                  time_us_ ? time_us_() : 0);
  if (writes) {
    std::uint32_t nv;
    Tag nt;
    if (is_write_form) {
      nv = src_v;
      nt = src_t;
    } else if (d.op == Op::kCsrrs || d.op == Op::kCsrrsi) {
      nv = old.value | src_v;
      nt = combine(old.tag, src_t);
    } else {
      nv = old.value & ~src_v;
      nt = combine(old.tag, src_t);
    }
    csrs_.write(csrnum, {nv, nt});
  }
  wr(d.rd, old.value, old.tag);
}

template <typename W>
void Core<W>::execute(const Insn& d) {
  CoreOps<W>::entry(d.op).fn(*this, d);
}

// ---------------------------------------------------------------------------
// Block translation engine.
// ---------------------------------------------------------------------------

namespace {

// Byte-exact revalidation of a cached block against the current code bytes —
// memcmp semantics, but inlined word-wise: block entry is the hottest edge in
// the ISS and the libc call overhead is measurable on 2-4 op blocks.
inline bool raw_match(const std::uint8_t* mem, const std::uint8_t* snap,
                      std::uint32_t len) {
  std::uint32_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, mem + i, 8);
    std::memcpy(&b, snap + i, 8);
    if (a != b) return false;
  }
  for (; i < len; ++i)
    if (mem[i] != snap[i]) return false;
  return true;
}

}  // namespace

template <typename W>
void Core<W>::build_into(Block& b, std::uint64_t off) {
  b.start_off = off;
  b.chain = nullptr;
  b.chain_off = ~std::uint64_t{0};
  b.fetch_memo = false;
  b.ops.clear();
  std::uint64_t cur = off;
  // A full 32-bit parcel must be readable even for a 16-bit instruction
  // (mirroring the old fast-path condition); pcs in the last 2 bytes of the
  // window fall back to the slow path.
  while (b.ops.size() < kMaxBlockOps && cur + 4 <= dmi_size_) {
    std::uint32_t raw;
    std::memcpy(&raw, dmi_data_ + cur, 4);  // host is little-endian
    const Insn insn = decode_any(raw);
    const auto& e = CoreOps<W>::entry(insn.op);
    b.ops.push_back(MicroOp{insn, e.fn, e.mem, e.cf});
    cur += insn.len;
    ++stats_.decode_misses;
    if (e.terminator) break;
  }
  b.byte_len = static_cast<std::uint32_t>(cur - off);
  b.raw.assign(dmi_data_ + off, dmi_data_ + cur);
}

template <typename W>
auto Core<W>::lookup_block(std::uint64_t off, bool& fresh) -> Block* {
  const auto slot = static_cast<std::size_t>(off >> 1);
  if (slot >= blocks_.size()) {
    // Lazily size the cache to the DMI window: geometric growth, one slot
    // per halfword at most. Block objects are heap-allocated, so chain
    // pointers survive the resize.
    const auto cap = static_cast<std::size_t>(dmi_size_ / 2);
    std::size_t want = blocks_.empty() ? std::size_t{4096} : blocks_.size();
    while (want <= slot) want *= 2;
    blocks_.resize(std::min(want, cap));
    if (slot >= blocks_.size()) return nullptr;  // beyond the DMI window
  }
  auto& up = blocks_[slot];
  if (!up) {
    up = std::make_unique<Block>();
    build_into(*up, off);
    ++stats_.block_misses;
    fresh = true;
    return up.get();
  }
  Block* b = up.get();
  if (raw_match(dmi_data_ + off, b->raw.data(), b->byte_len)) {
    ++stats_.block_hits;
    fresh = false;
    return b;
  }
  build_into(*b, off);  // self-modified: re-translate in place
  ++stats_.block_invalidations;
  fresh = true;
  return b;
}

template <typename W>
std::uint64_t Core<W>::exec_block(Block& b, std::uint64_t budget, bool fresh) {
  // One fetch-clearance check covering the whole block span (the old
  // per-instruction memo generalized): if the span is uniformly tagged and
  // the flow is allowed, memoise and skip per-instruction checks entirely.
  bool cleared = true;
  if constexpr (kTainted) {
    if (exec_.fetch) {
      cleared = false;
      if (b.fetch_memo && shadow_ && b.fetch_gen == shadow_->generation() &&
          b.fetch_flow == dift::detail::g_active.flow &&
          b.fetch_clearance == *exec_.fetch) {
        cleared = true;
      } else {
        Tag tag = dift::kBottomTag;
        if (shadow_ && shadow_->uniform(b.start_off, b.byte_len, &tag) &&
            dift::allowed_flow(tag, *exec_.fetch)) {
          b.fetch_memo = true;
          b.fetch_gen = shadow_->generation();
          b.fetch_flow = dift::detail::g_active.flow;
          b.fetch_clearance = *exec_.fetch;
          cleared = true;
        }
      }
    }
  }

  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(b.ops.size(), budget));
  cur_block_lo_ = b.start_off;
  cur_block_hi_ = b.start_off + b.byte_len;
  smc_break_ = false;
  const MicroOp* ops = b.ops.data();
  std::uint64_t done = 0;

  if (cleared && !trace_) {
    // Fast path: no per-instruction fetch checks, no trace test. Loads and
    // stores can raise interrupts synchronously (CLINT) or modify code, so
    // they re-test the block-exit conditions.
    try {
      while (done < n) {
        const MicroOp& op = ops[done];
        const std::uint32_t seq = pc_ + op.insn.len;
        next_pc_ = seq;
        trapped_ = false;
        op.fn(*this, op.insn);
        pc_ = next_pc_;
        ++instret_;
        ++done;
        if (trapped_) break;
        if (op.cf && pc_ != seq) break;  // taken branch left the block
        if (op.mem && ((csrs_.mip & csrs_.mie) != 0 || smc_break_)) break;
      }
      if (!fresh) stats_.decode_hits += done;
      if constexpr (kTainted) {
        if (exec_.fetch) stats_.fetch_summary_hits += done;
      }
    } catch (...) {
      // Enforcement violation inside a handler: the instruction was fetched
      // and decoded but did not retire — count it like the per-insn engine.
      if (!fresh) stats_.decode_hits += done + 1;
      if constexpr (kTainted) {
        if (exec_.fetch) stats_.fetch_summary_hits += done + 1;
      }
      cur_block_lo_ = cur_block_hi_ = 0;
      throw;
    }
  } else {
    // Careful path: trace attached, or the block span is not uniformly
    // cleared for fetch — fall back to exact per-instruction checks so
    // violation pcs and monitor-mode records match single-step execution.
    try {
      while (done < n) {
        const MicroOp& op = ops[done];
        if (!fresh) ++stats_.decode_hits;
        if constexpr (kTainted) {
          if (exec_.fetch) {
            if (cleared) {
              ++stats_.fetch_summary_hits;
            } else {
              const std::uint64_t off = std::uint64_t(pc_) - dmi_base_;
              const std::uint64_t blk = off >> dift::ShadowSummary::kBlockShift;
              const bool one_block =
                  ((off + op.insn.len - 1) >> dift::ShadowSummary::kBlockShift) == blk;
              Tag tag = dift::kBottomTag;
              const bool uniform =
                  shadow_ && one_block && shadow_->uniform(off, op.insn.len, &tag);
              if (!uniform) {
                tag = dmi_tags_[off];
                for (std::uint32_t i = 1; i < op.insn.len; ++i)
                  tag = dift::lub(tag, dmi_tags_[off + i]);
              }
              if (uniform && dift::allowed_flow(tag, *exec_.fetch)) {
                ++stats_.fetch_summary_hits;
              } else {
                dift::check_flow(tag, *exec_.fetch, ViolationKind::kFetchClearance,
                                 pc_, pc_, "core.fetch");
              }
            }
          }
        }
        const std::uint32_t seq = pc_ + op.insn.len;
        next_pc_ = seq;
        trapped_ = false;
        op.fn(*this, op.insn);
        if (trace_) {
          // A trapping instruction never wrote rd; record x0 (0, untainted)
          // instead of the stale pre-trap register contents.
          const std::uint8_t rd = trapped_ ? 0 : op.insn.rd;
          trace_->push({instret_, pc_, op.insn.raw, rd, Ops::value(regs_[rd]),
                        Ops::tag(regs_[rd])});
        }
        pc_ = next_pc_;
        ++instret_;
        ++done;
        if (trapped_) break;
        if (op.cf && pc_ != seq) break;  // taken branch left the block
        if (op.mem && ((csrs_.mip & csrs_.mie) != 0 || smc_break_)) break;
      }
    } catch (...) {
      cur_block_lo_ = cur_block_hi_ = 0;
      throw;
    }
  }
  cur_block_lo_ = cur_block_hi_ = 0;
  return done;
}

template <typename W>
void Core<W>::step_slow() {
  // Slow path (XIP flash etc.): read one parcel over the bus, extend to 32
  // bits when it is an uncompressed instruction.
  next_pc_ = pc_ + 4;
  MemAccess f = load(pc_, 2, false);
  if (!f.fault && (f.value & 3) == 3) {
    const MemAccess hi = load(pc_ + 2, 2, false);
    if (hi.fault) {
      f.fault = true;
    } else {
      f.value |= hi.value << 16;
      f.tag = Ops::combine(f.tag, hi.tag);
    }
  }
  if (f.fault) {
    take_trap(kCauseInsnAccessFault, pc_);
  } else {
    if constexpr (kTainted) {
      if (exec_.fetch)
        dift::check_flow(f.tag, *exec_.fetch, ViolationKind::kFetchClearance,
                         pc_, pc_, "core.fetch");
    }
    const Insn d = decode_any(f.value);
    next_pc_ = pc_ + d.len;
    trapped_ = false;
    execute(d);
    if (trace_) {
      const std::uint8_t rd = trapped_ ? 0 : d.rd;
      trace_->push({instret_, pc_, d.raw, rd, Ops::value(regs_[rd]),
                    Ops::tag(regs_[rd])});
    }
  }
  pc_ = next_pc_;
  ++instret_;
}

template <typename W>
RunExit Core<W>::run(std::uint64_t max_instructions) {
  std::uint64_t executed = 0;
  Block* prev = nullptr;  // last block that ran to completion (chain source)
  while (executed < max_instructions) {
    // Armed injected fault (arm_fault()): fire once the retirement counter
    // reaches the trigger. This sits at the block-boundary check point the
    // per-instruction hot loop already funnels through, so the test costs
    // one predictable branch per block entry.
    if (fault_armed_ && instret_ >= fault_at_) {
      fault_armed_ = false;
      auto fn = std::move(fault_fn_);
      fault_fn_ = nullptr;
      prev = nullptr;  // the mutation may have redirected control flow
      if (fn) fn(*this);
    }
    // One interrupt-pending test per block entry. Mid-block, mip can only
    // change through a load/store (CLINT et al.), and memory micro-ops end
    // the block when an enabled interrupt became pending — so the trap is
    // taken at the same instruction boundary as with per-insn checking.
    if (csrs_.mip & csrs_.mie) check_interrupts();
    if (wfi_) return RunExit::kWfi;

    if (pc_ & 1) {
      next_pc_ = pc_ + 4;
      take_trap(kCauseInsnMisaligned, pc_);
      pc_ = next_pc_;
      ++instret_;
      ++executed;
      prev = nullptr;
      continue;
    }
    if (pc_ >= dmi_base_ && std::uint64_t(pc_) - dmi_base_ + 4 <= dmi_size_) {
      const std::uint64_t off = std::uint64_t(pc_) - dmi_base_;
      bool fresh = false;
      Block* b = nullptr;
      if (prev && prev->chain && prev->chain_off == off) {
        // Chained transfer: skip the cache lookup, but still revalidate the
        // raw bytes (self-modifying code) before trusting the micro-ops.
        b = prev->chain;
        if (raw_match(dmi_data_ + off, b->raw.data(), b->byte_len)) {
          ++stats_.chained_transfers;
        } else {
          build_into(*b, off);
          ++stats_.block_invalidations;
          fresh = true;
        }
      }
      if (!b) {
        b = lookup_block(off, fresh);
        if (b && prev) {
          prev->chain = b;
          prev->chain_off = off;
        }
      }
      if (b) {
        // Pending-fault clamp: never execute past the trigger point. The
        // holding block runs partially and falls back to the loop top where
        // the fault fires at the exact boundary — a graceful single-step-
        // style degradation of that one block, not a cache invalidation.
        std::uint64_t budget = max_instructions - executed;
        if (fault_armed_ && fault_at_ - instret_ < budget)
          budget = fault_at_ - instret_;
        const std::uint64_t done = exec_block(*b, budget, fresh);
        executed += done;
        // The chain is a prediction, not a guarantee — the chain_off match
        // and the raw revalidation on the next entry keep it honest — so any
        // exit (terminator, taken branch, mem break) may install one.
        prev = b;
        continue;
      }
    }
    step_slow();
    ++executed;
    prev = nullptr;
  }
  return RunExit::kQuantumExhausted;
}

template class Core<PlainWord>;
template class Core<TaintedWord>;

}  // namespace vpdift::rv
