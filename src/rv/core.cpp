#include "rv/core.hpp"
#include <algorithm>
#include <cstring>

#include "dift/context.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::rv {

using dift::Tag;
using dift::ViolationKind;

// ---------------------------------------------------------------------------
// Per-instruction handlers.
//
// Every Op has one handler function per Core instantiation; the block engine
// stores the resolved function pointer in each micro-op so the dispatch loop
// is just `op.fn(core, op.insn)`. execute() routes through the same table, so
// the slow (bus-fetch) path and the block path share semantics by
// construction. Handlers read the current instruction pc from `c.pc_` and
// leave the successor pc in `c.next_pc_` (pre-set to pc + len by the caller).
//
// Taint semantics mirror the Taint<T> operators (paper Fig. 3): reg-reg ALU
// results take the LUB of the operand tags — with an untainted-operand fast
// path that skips the LUB machinery when both tags are ⊥ — while reg-imm
// forms propagate rs1's tag (immediates are untagged). In the plain
// instantiation all tag code compiles away.
// ---------------------------------------------------------------------------

template <typename W>
struct CoreOps {
  using C = Core<W>;
  using Ops = WordOps<W>;
  static constexpr bool kT = Ops::kTainted;
  using Fn = typename C::ExecFn;

  struct OpInfo {
    Fn fn;            ///< full (tainted) handler
    Fn fast;          ///< plain-variant handler (aliases fn for terminators)
    bool mem;         ///< load/store: can raise IRQs / modify code mid-block
    bool cf;          ///< conditional branch: exits the block only when taken
    bool terminator;  ///< ends a translated block
  };

  // ---- ALU value functions ----
  static constexpr std::uint32_t f_add(std::uint32_t a, std::uint32_t b) { return a + b; }
  static constexpr std::uint32_t f_sub(std::uint32_t a, std::uint32_t b) { return a - b; }
  static constexpr std::uint32_t f_xor(std::uint32_t a, std::uint32_t b) { return a ^ b; }
  static constexpr std::uint32_t f_or(std::uint32_t a, std::uint32_t b) { return a | b; }
  static constexpr std::uint32_t f_and(std::uint32_t a, std::uint32_t b) { return a & b; }
  static constexpr std::uint32_t f_sll(std::uint32_t a, std::uint32_t b) { return a << (b & 31); }
  static constexpr std::uint32_t f_srl(std::uint32_t a, std::uint32_t b) { return a >> (b & 31); }
  static constexpr std::uint32_t f_sra(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
  }
  static constexpr std::uint32_t f_slt(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b) ? 1u : 0u;
  }
  static constexpr std::uint32_t f_sltu(std::uint32_t a, std::uint32_t b) {
    return a < b ? 1u : 0u;
  }
  static constexpr std::uint32_t f_mul(std::uint32_t a, std::uint32_t b) { return a * b; }
  static constexpr std::uint32_t f_mulh(std::uint32_t a, std::uint32_t b) {
    const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                           static_cast<std::int64_t>(static_cast<std::int32_t>(b));
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
  }
  static constexpr std::uint32_t f_mulhsu(std::uint32_t a, std::uint32_t b) {
    const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                           static_cast<std::int64_t>(std::uint64_t(b));
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
  }
  static constexpr std::uint32_t f_mulhu(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::uint32_t>((std::uint64_t(a) * std::uint64_t(b)) >> 32);
  }
  static constexpr std::uint32_t f_div(std::uint32_t a, std::uint32_t b) {
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    if (sb == 0) return 0xffffffffu;
    if (sa == INT32_MIN && sb == -1) return static_cast<std::uint32_t>(INT32_MIN);
    return static_cast<std::uint32_t>(sa / sb);
  }
  static constexpr std::uint32_t f_divu(std::uint32_t a, std::uint32_t b) {
    return b == 0 ? 0xffffffffu : a / b;
  }
  static constexpr std::uint32_t f_rem(std::uint32_t a, std::uint32_t b) {
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    if (sb == 0) return a;
    if (sa == INT32_MIN && sb == -1) return 0;
    return static_cast<std::uint32_t>(sa % sb);
  }
  static constexpr std::uint32_t f_remu(std::uint32_t a, std::uint32_t b) {
    return b == 0 ? a : a % b;
  }

  // ---- branch predicates ----
  static constexpr bool p_eq(std::uint32_t a, std::uint32_t b) { return a == b; }
  static constexpr bool p_ne(std::uint32_t a, std::uint32_t b) { return a != b; }
  static constexpr bool p_lt(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
  }
  static constexpr bool p_ge(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
  }
  static constexpr bool p_ltu(std::uint32_t a, std::uint32_t b) { return a < b; }
  static constexpr bool p_geu(std::uint32_t a, std::uint32_t b) { return a >= b; }

  // ---- handler templates ----
  //
  // The PLAIN=true instantiations are the taint-liveness-specialized
  // variants: valid only while Core::plain_state() holds (whole shadow plane
  // uniformly ⊥, all register tags ⊥, every clearance admits ⊥-tagged
  // execution), where each tag-related check is statically known to pass and
  // each produced tag is statically known to be ⊥ — so dropping them keeps
  // enforcement throws and monitor records exact (only the flow_checks
  // counter stops ticking for the elided always-allowed checks). Ops that
  // can *introduce* taint (bus loads: tagged peripheral data, DMA side
  // effects) run the full semantics and raise taint_break_ so no later op
  // of the block executes plainly. For the plain instantiation both
  // variants compile to the same code.

  template <std::uint32_t (*F)(std::uint32_t, std::uint32_t), bool PLAIN = false>
  static void h_rr(C& c, const Insn& d) {
    const std::uint32_t v = F(c.rv(d.rs1), c.rv(d.rs2));
    if constexpr (kT && !PLAIN) {
      const Tag t1 = c.rt(d.rs1), t2 = c.rt(d.rs2);
      if ((t1 | t2) == 0)  // untainted fast path: no LUB needed
        c.wr(d.rd, v, dift::kBottomTag);
      else
        c.wr(d.rd, v, dift::lub(t1, t2));
    } else {
      c.wr(d.rd, v, dift::kBottomTag);
    }
  }

  template <std::uint32_t (*F)(std::uint32_t, std::uint32_t), bool PLAIN = false>
  static void h_ri(C& c, const Insn& d) {
    if constexpr (kT && !PLAIN)
      c.wr(d.rd, F(c.rv(d.rs1), static_cast<std::uint32_t>(d.imm)), c.rt(d.rs1));
    else
      c.wr(d.rd, F(c.rv(d.rs1), static_cast<std::uint32_t>(d.imm)),
           dift::kBottomTag);
  }

  template <bool (*P)(std::uint32_t, std::uint32_t), bool PLAIN = false>
  static void h_br(C& c, const Insn& d) {
    const bool taken = P(c.rv(d.rs1), c.rv(d.rs2));
    if constexpr (kT && !PLAIN) {
      const Tag cond = Ops::combine(c.rt(d.rs1), c.rt(d.rs2));
      if (c.exec_.branch)
        dift::check_flow(cond, *c.exec_.branch, ViolationKind::kBranchClearance,
                         c.pc_, 0, "core.branch");
    }
    if (taken) {
      const std::uint32_t target = c.pc_ + static_cast<std::uint32_t>(d.imm);
      if (target & 1) c.take_trap(kCauseInsnMisaligned, target);
      else c.next_pc_ = target;
    }
  }

  template <std::uint32_t SZ, bool SIGN, bool PLAIN = false>
  static void h_load(C& c, const Insn& d) {
    const std::uint32_t addr = c.rv(d.rs1) + static_cast<std::uint32_t>(d.imm);
    if constexpr (kT && PLAIN) {
      if (addr >= c.dmi_base_ &&
          std::uint64_t(addr) - c.dmi_base_ + SZ <= c.dmi_size_) {
        // DMI fast path: the plane is uniformly ⊥ (plain-state invariant),
        // so the result tag is ⊥ and the summary hit is unconditional —
        // the counter stays in lockstep with the tainted variant.
        const std::uint64_t off = addr - c.dmi_base_;
        std::uint32_t value = 0;
        for (std::uint32_t i = 0; i < SZ; ++i)
          value |= std::uint32_t(c.dmi_data_[off + i]) << (8 * i);
        ++c.stats_.load_summary_hits;
        if constexpr (SIGN) {
          if constexpr (SZ == 1)
            value = static_cast<std::uint32_t>(static_cast<std::int8_t>(value));
          else if constexpr (SZ == 2)
            value = static_cast<std::uint32_t>(static_cast<std::int16_t>(value));
        }
        c.wr(d.rd, value, dift::kBottomTag);
        return;
      }
      // Bus/MMIO load: full tag semantics (the device may hand back tagged
      // data, or DMA behind our back) and promotion before the next op.
      const auto m = c.load(addr, SZ, SIGN);
      if (m.fault) {
        c.take_trap(kCauseLoadAccessFault, addr);
        return;
      }
      c.wr(d.rd, m.value, m.tag);
      if (m.tag != dift::kBottomTag || (c.shadow_ && !c.shadow_->all_bottom()))
        c.taint_break_ = true;
      return;
    } else {
      if constexpr (kT) {
        if (c.exec_.mem_addr)
          dift::check_flow(c.rt(d.rs1), *c.exec_.mem_addr,
                           ViolationKind::kMemAddrClearance, c.pc_, addr,
                           "core.lsu");
      }
      const auto m = c.load(addr, SZ, SIGN);
      if (m.fault) c.take_trap(kCauseLoadAccessFault, addr);
      else c.wr(d.rd, m.value, m.tag);
    }
  }

  template <std::uint32_t SZ, bool PLAIN = false>
  static void h_store(C& c, const Insn& d) {
    const std::uint32_t addr = c.rv(d.rs1) + static_cast<std::uint32_t>(d.imm);
    if constexpr (kT && PLAIN) {
      if (addr >= c.dmi_base_ &&
          std::uint64_t(addr) - c.dmi_base_ + SZ <= c.dmi_size_) {
        // DMI fast path: storing ⊥-tagged data over a ⊥ plane leaves both
        // the plane and the summary untouched, and plain_state() verified
        // every store-protection clearance admits ⊥ — no checks needed.
        const std::uint64_t off = addr - c.dmi_base_;
        if (off < c.cur_block_hi_ && off + SZ > c.cur_block_lo_)
          c.smc_break_ = true;
        const std::uint32_t value = c.rv(d.rs2);
        for (std::uint32_t i = 0; i < SZ; ++i)
          c.dmi_data_[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
        return;
      }
      // MMIO store: full path (peripheral clearances, smc_break_).
      if (c.store(addr, c.rv(d.rs2), dift::kBottomTag, SZ))
        c.take_trap(kCauseStoreAccessFault, addr);
      return;
    } else {
      if constexpr (kT) {
        if (c.exec_.mem_addr)
          dift::check_flow(c.rt(d.rs1), *c.exec_.mem_addr,
                           ViolationKind::kMemAddrClearance, c.pc_, addr,
                           "core.lsu");
      }
      if (c.store(addr, c.rv(d.rs2), c.rt(d.rs2), SZ))
        c.take_trap(kCauseStoreAccessFault, addr);
    }
  }

  static void h_lui(C& c, const Insn& d) {
    c.wr(d.rd, static_cast<std::uint32_t>(d.imm), dift::kBottomTag);
  }
  static void h_auipc(C& c, const Insn& d) {
    c.wr(d.rd, c.pc_ + static_cast<std::uint32_t>(d.imm), dift::kBottomTag);
  }
  static void h_jal(C& c, const Insn& d) {
    const std::uint32_t target = c.pc_ + static_cast<std::uint32_t>(d.imm);
    if (target & 1) { c.take_trap(kCauseInsnMisaligned, target); return; }
    c.wr(d.rd, c.pc_ + d.len, dift::kBottomTag);
    c.next_pc_ = target;
  }
  static void h_jalr(C& c, const Insn& d) {
    const std::uint32_t target =
        (c.rv(d.rs1) + static_cast<std::uint32_t>(d.imm)) & ~1u;
    if constexpr (kT) {
      // Indirect jump: the target address acts as the "branch condition".
      if (c.exec_.branch)
        dift::check_flow(c.rt(d.rs1), *c.exec_.branch, ViolationKind::kBranchClearance,
                         c.pc_, target, "core.jalr");
    }
    if (target & 1) { c.take_trap(kCauseInsnMisaligned, target); return; }
    c.wr(d.rd, c.pc_ + d.len, dift::kBottomTag);
    c.next_pc_ = target;
  }
  static void h_fence(C&, const Insn&) {}  // single hart, loosely timed: no-op
  static void h_ecall(C& c, const Insn&) { c.take_trap(kCauseEcallM, 0); }
  static void h_ebreak(C& c, const Insn&) { c.take_trap(kCauseBreakpoint, c.pc_); }
  static void h_csr(C& c, const Insn& d) { c.do_csr(d); }
  static void h_mret(C& c, const Insn&) {
    auto& s = c.csrs_;
    std::uint32_t m = s.mstatus.value;
    const bool mpie = (m & kMstatusMpie) != 0;
    m &= ~kMstatusMie;
    if (mpie) m |= kMstatusMie;
    m |= kMstatusMpie;
    s.mstatus.value = m;
    if constexpr (kT) {
      if (c.exec_.branch)
        dift::check_flow(s.mepc.tag, *c.exec_.branch, ViolationKind::kBranchClearance,
                         c.pc_, s.mepc.value, "core.mret");
    }
    c.next_pc_ = s.mepc.value;
  }
  static void h_wfi(C& c, const Insn&) {
    if ((c.csrs_.mip & c.csrs_.mie) == 0) c.wfi_ = true;
  }
  static void h_illegal(C& c, const Insn& d) { c.take_trap(kCauseIllegalInsn, d.raw); }

  // ---- dispatch table, indexed by Op ----
  //
  // Terminators (jal/jalr/mret/csr/fence/ecall/ebreak/wfi/illegal) keep the
  // full handler in the fast slot: they run at most once per block, and
  // their tag checks (mepc/mtvec tags, CSR tag propagation into rd) depend
  // on CSR state the plain-state gate does not track.
  static constexpr std::array<OpInfo, kNumOps> make_table() {
    std::array<OpInfo, kNumOps> t{};
    for (auto& e : t) e = {&h_illegal, &h_illegal, false, false, true};
    // The terminator flag is derived from rv::is_block_terminator so the
    // block builder and the static analyzer's window replication can never
    // disagree about where a translated block ends.
    auto set = [&](Op op, Fn fn, Fn fast, bool mem, bool cf = false) {
      t[static_cast<std::size_t>(op)] = {fn, fast, mem, cf,
                                         is_block_terminator(op)};
    };
    auto set1 = [&](Op op, Fn fn, bool mem) { set(op, fn, fn, mem); };
    set1(Op::kLui, &h_lui, false);
    set1(Op::kAuipc, &h_auipc, false);
    set1(Op::kJal, &h_jal, false);
    set1(Op::kJalr, &h_jalr, false);
    set(Op::kBeq, &h_br<&p_eq>, &h_br<&p_eq, true>, false, true);
    set(Op::kBne, &h_br<&p_ne>, &h_br<&p_ne, true>, false, true);
    set(Op::kBlt, &h_br<&p_lt>, &h_br<&p_lt, true>, false, true);
    set(Op::kBge, &h_br<&p_ge>, &h_br<&p_ge, true>, false, true);
    set(Op::kBltu, &h_br<&p_ltu>, &h_br<&p_ltu, true>, false, true);
    set(Op::kBgeu, &h_br<&p_geu>, &h_br<&p_geu, true>, false, true);
    set(Op::kLb, &h_load<1, true>, &h_load<1, true, true>, true);
    set(Op::kLh, &h_load<2, true>, &h_load<2, true, true>, true);
    set(Op::kLw, &h_load<4, false>, &h_load<4, false, true>, true);
    set(Op::kLbu, &h_load<1, false>, &h_load<1, false, true>, true);
    set(Op::kLhu, &h_load<2, false>, &h_load<2, false, true>, true);
    set(Op::kSb, &h_store<1>, &h_store<1, true>, true);
    set(Op::kSh, &h_store<2>, &h_store<2, true>, true);
    set(Op::kSw, &h_store<4>, &h_store<4, true>, true);
    set(Op::kAddi, &h_ri<&f_add>, &h_ri<&f_add, true>, false);
    set(Op::kSlti, &h_ri<&f_slt>, &h_ri<&f_slt, true>, false);
    set(Op::kSltiu, &h_ri<&f_sltu>, &h_ri<&f_sltu, true>, false);
    set(Op::kXori, &h_ri<&f_xor>, &h_ri<&f_xor, true>, false);
    set(Op::kOri, &h_ri<&f_or>, &h_ri<&f_or, true>, false);
    set(Op::kAndi, &h_ri<&f_and>, &h_ri<&f_and, true>, false);
    set(Op::kSlli, &h_ri<&f_sll>, &h_ri<&f_sll, true>, false);
    set(Op::kSrli, &h_ri<&f_srl>, &h_ri<&f_srl, true>, false);
    set(Op::kSrai, &h_ri<&f_sra>, &h_ri<&f_sra, true>, false);
    set(Op::kAdd, &h_rr<&f_add>, &h_rr<&f_add, true>, false);
    set(Op::kSub, &h_rr<&f_sub>, &h_rr<&f_sub, true>, false);
    set(Op::kSll, &h_rr<&f_sll>, &h_rr<&f_sll, true>, false);
    set(Op::kSlt, &h_rr<&f_slt>, &h_rr<&f_slt, true>, false);
    set(Op::kSltu, &h_rr<&f_sltu>, &h_rr<&f_sltu, true>, false);
    set(Op::kXor, &h_rr<&f_xor>, &h_rr<&f_xor, true>, false);
    set(Op::kSrl, &h_rr<&f_srl>, &h_rr<&f_srl, true>, false);
    set(Op::kSra, &h_rr<&f_sra>, &h_rr<&f_sra, true>, false);
    set(Op::kOr, &h_rr<&f_or>, &h_rr<&f_or, true>, false);
    set(Op::kAnd, &h_rr<&f_and>, &h_rr<&f_and, true>, false);
    set1(Op::kFence, &h_fence, false);
    set1(Op::kEcall, &h_ecall, false);
    set1(Op::kEbreak, &h_ebreak, false);
    set(Op::kMul, &h_rr<&f_mul>, &h_rr<&f_mul, true>, false);
    set(Op::kMulh, &h_rr<&f_mulh>, &h_rr<&f_mulh, true>, false);
    set(Op::kMulhsu, &h_rr<&f_mulhsu>, &h_rr<&f_mulhsu, true>, false);
    set(Op::kMulhu, &h_rr<&f_mulhu>, &h_rr<&f_mulhu, true>, false);
    set(Op::kDiv, &h_rr<&f_div>, &h_rr<&f_div, true>, false);
    set(Op::kDivu, &h_rr<&f_divu>, &h_rr<&f_divu, true>, false);
    set(Op::kRem, &h_rr<&f_rem>, &h_rr<&f_rem, true>, false);
    set(Op::kRemu, &h_rr<&f_remu>, &h_rr<&f_remu, true>, false);
    set1(Op::kCsrrw, &h_csr, false);
    set1(Op::kCsrrs, &h_csr, false);
    set1(Op::kCsrrc, &h_csr, false);
    set1(Op::kCsrrwi, &h_csr, false);
    set1(Op::kCsrrsi, &h_csr, false);
    set1(Op::kCsrrci, &h_csr, false);
    set1(Op::kMret, &h_mret, false);
    set1(Op::kWfi, &h_wfi, false);
    return t;
  }
  static constexpr std::array<OpInfo, kNumOps> kTable = make_table();

  static const OpInfo& entry(Op op) { return kTable[static_cast<std::size_t>(op)]; }
};

template <typename W>
Core<W>::Core(std::string name) : name_(std::move(name)) {}

template <typename W>
void Core<W>::set_dmi(std::uint8_t* data, Tag* tags, std::uint64_t base,
                      std::uint64_t size, dift::ShadowSummary* shadow) {
  dmi_data_ = data;
  dmi_tags_ = tags;
  dmi_base_ = base;
  dmi_size_ = size;
  shadow_ = shadow;
  invalidate_blocks();
}

template <typename W>
void Core<W>::wipe_fetch_memos() {
  for (auto& up : blocks_) {
    if (!up) continue;
    up->fetch_memo = false;
    up->fetch_gen = ~std::uint64_t{0};
    up->fetch_flow = nullptr;
  }
}

template <typename W>
void Core<W>::set_pinned_blocks(std::vector<std::uint64_t> offs) {
  std::sort(offs.begin(), offs.end());
  pinned_offs_ = std::move(offs);
  pins_suspended_ = false;
  // Refresh existing translations and drop superblock state: a fused trace
  // carries one all_pinned bit over its constituents, so traces built
  // against a stale pin set must not survive the install.
  for (auto& up : blocks_) {
    if (!up) continue;
    up->pinned = is_pinned_off(up->start_off);
    up->trace.reset();
    up->heat = 0;
  }
}

template <typename W>
void Core<W>::clear_pins() {
  pinned_offs_.clear();
  pins_suspended_ = false;
  for (auto& up : blocks_) {
    if (!up) continue;
    up->pinned = false;
  }
}

template <typename W>
void Core<W>::set_policy(const dift::SecurityPolicy* policy) {
  policy_ = policy;
  exec_ = policy ? policy->execution_clearance() : dift::ExecutionClearance{};
  has_store_prot_ = policy && !policy->store_protection().empty();
  // Pins are facts about (firmware, policy); any policy change voids them.
  // The campaign runner re-installs the (cached) analysis result after
  // apply_policy() when analysis is requested.
  clear_pins();
  // Translations themselves are policy-independent (handler pointers are
  // fixed per instantiation); only the per-block fetch memos and the
  // plain-state clearance memo bind to a policy's flow table. Wiping those
  // instead of the whole cache keeps warm translations valid across a
  // campaign re-arm (reset + load_firmware + apply_policy) and closes the
  // pointer-reuse ABA a new lattice allocated at a freed table's address
  // would otherwise open.
  wipe_fetch_memos();
  plain_ok_valid_ = false;
}

template <typename W>
void Core<W>::reset(std::uint32_t reset_pc, bool keep_translations) {
  regs_.fill(W{});
  csrs_ = CsrFile{};
  pc_ = reset_pc;
  next_pc_ = reset_pc;
  instret_ = 0;
  wfi_ = false;
  fatal_trap_ = false;
  reg_tag_or_ = dift::kBottomTag;
  taint_break_ = false;
  if (keep_translations) {
    wipe_fetch_memos();
    cur_block_lo_ = cur_block_hi_ = 0;
    smc_break_ = false;
  } else {
    invalidate_blocks();
  }
}

template <typename W>
void Core<W>::set_irq(std::uint32_t bit, bool level) {
  if (level)
    csrs_.mip |= bit;
  else
    csrs_.mip &= ~bit;
}

template <typename W>
auto Core<W>::load(std::uint32_t addr, std::uint32_t size, bool sign_extend)
    -> MemAccess {
  std::uint32_t value = 0;
  Tag tag = dift::kBottomTag;
  if (addr >= dmi_base_ && std::uint64_t(addr) - dmi_base_ + size <= dmi_size_) {
    const std::uint64_t off = addr - dmi_base_;
    for (std::uint32_t i = 0; i < size; ++i)
      value |= std::uint32_t(dmi_data_[off + i]) << (8 * i);
    if constexpr (kTainted) {
      if (shadow_ && shadow_->uniform(off, size, &tag)) {
        ++stats_.load_summary_hits;
      } else {
        tag = dmi_tags_[off];
        for (std::uint32_t i = 1; i < size; ++i)
          tag = dift::lub(tag, dmi_tags_[off + i]);
      }
    }
  } else {
    std::uint8_t buf[4] = {};
    Tag tbuf[4] = {};
    tlmlite::Payload p;
    p.command = tlmlite::Command::kRead;
    p.address = addr;
    p.data = buf;
    p.tags = kTainted ? tbuf : nullptr;
    p.length = size;
    sysc::Time delay;
    transport_with_pc(p, delay);
    if (!p.ok()) return {0, dift::kBottomTag, true};
    for (std::uint32_t i = 0; i < size; ++i) value |= std::uint32_t(buf[i]) << (8 * i);
    if constexpr (kTainted) {
      if (p.tags_uniform()) {
        tag = static_cast<Tag>(p.tag_summary);
        ++stats_.load_summary_hits;
      } else {
        tag = tbuf[0];
        for (std::uint32_t i = 1; i < size; ++i) tag = dift::lub(tag, tbuf[i]);
      }
    }
  }
  if (sign_extend) {
    if (size == 1) value = static_cast<std::uint32_t>(static_cast<std::int8_t>(value));
    else if (size == 2)
      value = static_cast<std::uint32_t>(static_cast<std::int16_t>(value));
  }
  return {value, tag, false};
}

template <typename W>
bool Core<W>::store(std::uint32_t addr, std::uint32_t value, Tag tag,
                    std::uint32_t size) {
  if constexpr (kTainted) {
    if (has_store_prot_) {
      if (auto clearance = policy_->store_clearance_at(addr))
        dift::check_flow(tag, *clearance, ViolationKind::kStoreClearance, pc_, addr,
                         "core.store");
    }
  }
  if (addr >= dmi_base_ && std::uint64_t(addr) - dmi_base_ + size <= dmi_size_) {
    const std::uint64_t off = addr - dmi_base_;
    // Forward store into the remainder of the executing block: the dispatch
    // loop must abandon its stale micro-ops and re-translate.
    if (off < cur_block_hi_ && off + size > cur_block_lo_) smc_break_ = true;
    for (std::uint32_t i = 0; i < size; ++i)
      dmi_data_[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
    if constexpr (kTainted) {
      for (std::uint32_t i = 0; i < size; ++i) dmi_tags_[off + i] = tag;
      if (shadow_) shadow_->on_store(off, size, tag);
    }
    return false;
  }
  std::uint8_t buf[4];
  Tag tbuf[4];
  for (std::uint32_t i = 0; i < size; ++i) {
    buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
    tbuf[i] = tag;
  }
  tlmlite::Payload p;
  p.command = tlmlite::Command::kWrite;
  p.address = addr;
  p.data = buf;
  p.tags = kTainted ? tbuf : nullptr;
  p.length = size;
  p.set_tag_summary(tag);  // tbuf was filled uniformly above
  sysc::Time delay;
  transport_with_pc(p, delay);
  // A peripheral register write may have side effects on code memory (e.g.
  // starting a DMA transfer into RAM); end the current block conservatively.
  smc_break_ = true;
  return !p.ok();
}

template <typename W>
void Core<W>::transport_with_pc(tlmlite::Payload& p, sysc::Time& delay) {
  if constexpr (!kTainted) {
    bus_.b_transport(p, delay);
  } else {
    // Peripherals raise clearance violations without knowing the program
    // counter; publish it as a hint (used by monitor-mode records) and
    // re-throw enforcement violations with the faulting pc attached.
    dift::set_pc_hint(pc_);
    try {
      bus_.b_transport(p, delay);
    } catch (const dift::PolicyViolation& v) {
      if (v.pc() != 0) throw;
      throw dift::PolicyViolation(v.kind(), v.source(), v.required(), pc_,
                                  v.address() ? v.address() : p.address,
                                  v.where());
    }
  }
}

template <typename W>
auto Core<W>::fetch32(std::uint32_t addr) -> MemAccess {
  if (addr >= dmi_base_ && std::uint64_t(addr) - dmi_base_ + 4 <= dmi_size_) {
    const std::uint64_t off = addr - dmi_base_;
    std::uint32_t value;
    std::memcpy(&value, dmi_data_ + off, 4);  // host is little-endian
    Tag tag = dift::kBottomTag;
    if constexpr (kTainted) {
      if (shadow_ && shadow_->uniform(off, 4, &tag)) {
        ++stats_.fetch_summary_hits;  // fetch-path attribution
      } else {
        tag = dmi_tags_[off];
        for (std::uint32_t i = 1; i < 4; ++i)
          tag = dift::lub(tag, dmi_tags_[off + i]);
      }
    }
    return {value, tag, false};
  }
  return load(addr, 4, false);
}

template <typename W>
void Core<W>::take_trap(std::uint32_t cause, std::uint32_t tval) {
  trapped_ = true;
  auto& s = csrs_;
  std::uint32_t m = s.mstatus.value;
  const bool mie = (m & kMstatusMie) != 0;
  m &= ~(kMstatusMie | kMstatusMpie);
  if (mie) m |= kMstatusMpie;
  m |= kMstatusMpp;  // previous privilege: machine
  s.mstatus.value = m;
  s.mepc = {pc_, dift::kBottomTag};
  s.mcause = {cause, dift::kBottomTag};
  s.mtval = {tval, dift::kBottomTag};
  // No trap vector installed: the machine is wedged (pc 0 faults forever).
  // Latch it so the VP can end the run with a defined reason instead of
  // spinning to its simulated-time budget.
  if ((s.mtvec.value & ~3u) == 0) fatal_trap_ = true;
  if constexpr (kTainted) {
    if (exec_.branch)
      dift::check_flow(s.mtvec.tag, *exec_.branch, ViolationKind::kBranchClearance,
                       pc_, s.mtvec.value, "core.trap-vector");
  }
  next_pc_ = s.mtvec.value & ~3u;
}

template <typename W>
void Core<W>::check_interrupts() {
  const std::uint32_t pending = csrs_.mip & csrs_.mie;
  if (pending == 0) return;
  wfi_ = false;
  if (!(csrs_.mstatus.value & kMstatusMie)) return;
  std::uint32_t cause;
  if (pending & kIrqMext) cause = 11;
  else if (pending & kIrqMsoft) cause = 3;
  else cause = 7;
  take_trap(kIrqBit | cause, 0);
  pc_ = next_pc_;
}

template <typename W>
void Core<W>::do_csr(const Insn& d) {
  const auto csrnum = static_cast<std::uint32_t>(d.imm) & 0xfff;
  if (!csrs_.exists(csrnum)) {
    take_trap(kCauseIllegalInsn, d.raw);
    return;
  }
  const bool imm_form =
      d.op == Op::kCsrrwi || d.op == Op::kCsrrsi || d.op == Op::kCsrrci;
  const std::uint32_t src_v = imm_form ? d.rs1 : rv(d.rs1);
  const Tag src_t = imm_form ? dift::kBottomTag : rt(d.rs1);

  const bool is_write_form = d.op == Op::kCsrrw || d.op == Op::kCsrrwi;
  // csrrs/csrrc with rs1=x0 (or zimm=0) do not write.
  const bool writes = is_write_form || d.rs1 != 0;

  if (writes && ((csrnum >> 10) & 3) == 3) {  // read-only CSR space
    take_trap(kCauseIllegalInsn, d.raw);
    return;
  }

  const CsrValue old = csrs_.read(csrnum, instret_, instret_,
                                  time_us_ ? time_us_() : 0);
  if (writes) {
    std::uint32_t nv;
    Tag nt;
    if (is_write_form) {
      nv = src_v;
      nt = src_t;
    } else if (d.op == Op::kCsrrs || d.op == Op::kCsrrsi) {
      nv = old.value | src_v;
      nt = combine(old.tag, src_t);
    } else {
      nv = old.value & ~src_v;
      nt = combine(old.tag, src_t);
    }
    csrs_.write(csrnum, {nv, nt});
  }
  wr(d.rd, old.value, old.tag);
}

template <typename W>
void Core<W>::execute(const Insn& d) {
  CoreOps<W>::entry(d.op).fn(*this, d);
}

// ---------------------------------------------------------------------------
// Block translation engine.
// ---------------------------------------------------------------------------

namespace {

// Byte-exact revalidation of a cached block against the current code bytes —
// memcmp semantics, but inlined word-wise: block entry is the hottest edge in
// the ISS and the libc call overhead is measurable on 2-4 op blocks.
inline bool raw_match(const std::uint8_t* mem, const std::uint8_t* snap,
                      std::uint32_t len) {
  std::uint32_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, mem + i, 8);
    std::memcpy(&b, snap + i, 8);
    if (a != b) return false;
  }
  for (; i < len; ++i)
    if (mem[i] != snap[i]) return false;
  return true;
}

}  // namespace

template <typename W>
void Core<W>::build_into(Block& b, std::uint64_t off) {
  b.start_off = off;
  b.chain = nullptr;
  b.chain_off = ~std::uint64_t{0};
  b.fetch_memo = false;
  b.ops.clear();
  b.trace.reset();
  b.heat = 0;
  b.no_trace = false;
  std::uint64_t cur = off;
  // A full 32-bit parcel must be readable even for a 16-bit instruction
  // (mirroring the old fast-path condition); pcs in the last 2 bytes of the
  // window fall back to the slow path.
  while (b.ops.size() < kMaxBlockOps && cur + 4 <= dmi_size_) {
    std::uint32_t raw;
    std::memcpy(&raw, dmi_data_ + cur, 4);  // host is little-endian
    const Insn insn = decode_any(raw);
    const auto& e = CoreOps<W>::entry(insn.op);
    b.ops.push_back(MicroOp{insn, e.fn, e.fast, e.mem, e.cf});
    cur += insn.len;
    ++stats_.decode_misses;
    if (e.terminator) break;
  }
  b.byte_len = static_cast<std::uint32_t>(cur - off);
  b.raw.assign(dmi_data_ + off, dmi_data_ + cur);
  b.pinned = !pinned_offs_.empty() && is_pinned_off(off);
}

template <typename W>
auto Core<W>::lookup_block(std::uint64_t off, bool& fresh) -> Block* {
  const auto slot = static_cast<std::size_t>(off >> 1);
  if (slot >= blocks_.size()) {
    // Lazily size the cache to the DMI window: geometric growth, one slot
    // per halfword at most. Block objects are heap-allocated, so chain
    // pointers survive the resize.
    const auto cap = static_cast<std::size_t>(dmi_size_ / 2);
    std::size_t want = blocks_.empty() ? std::size_t{4096} : blocks_.size();
    while (want <= slot) want *= 2;
    blocks_.resize(std::min(want, cap));
    if (slot >= blocks_.size()) return nullptr;  // beyond the DMI window
  }
  auto& up = blocks_[slot];
  if (!up) {
    up = std::make_unique<Block>();
    build_into(*up, off);
    ++stats_.block_misses;
    fresh = true;
    return up.get();
  }
  Block* b = up.get();
  if (raw_match(dmi_data_ + off, b->raw.data(), b->byte_len)) {
    ++stats_.block_hits;
    fresh = false;
    return b;
  }
  build_into(*b, off);  // self-modified: re-translate in place
  ++stats_.block_invalidations;
  fresh = true;
  return b;
}

// ---------------------------------------------------------------------------
// Taint-liveness gate.
// ---------------------------------------------------------------------------

template <typename W>
bool Core<W>::plain_clearances_ok() {
  // Memoised against the active flow table: does every execution clearance
  // and store protection admit ⊥-tagged execution? Evaluated with the
  // non-counting peek so gate queries never perturb the flow_checks ledger
  // (elided checks are exactly the always-allowed ones, so enforcement and
  // monitor records are unchanged). set_policy() invalidates the memo.
  const std::uint8_t* flow = dift::detail::g_active.flow;
  if (!plain_ok_valid_ || plain_ok_flow_ != flow) {
    bool ok = true;
    if (exec_.fetch) ok = ok && dift::allowed_flow_peek(dift::kBottomTag, *exec_.fetch);
    if (exec_.branch) ok = ok && dift::allowed_flow_peek(dift::kBottomTag, *exec_.branch);
    if (exec_.mem_addr)
      ok = ok && dift::allowed_flow_peek(dift::kBottomTag, *exec_.mem_addr);
    if (policy_) {
      for (const auto& mc : policy_->store_protection())
        ok = ok && dift::allowed_flow_peek(dift::kBottomTag, mc.tag);
    }
    plain_ok_ = ok;
    plain_ok_flow_ = flow;
    plain_ok_valid_ = true;
  }
  return plain_ok_;
}

template <typename W>
bool Core<W>::plain_state() {
  // Pure function of architectural state (the sticky reg_tag_or_ bit is
  // re-verified by a full register rescan before it can disable the plain
  // path), so warm/cold caches, snapshot forks and replays all make the
  // same per-dispatch variant decision.
  if constexpr (!kTainted) {
    return trace_ == nullptr;  // plain core: everything but traced runs
  } else {
    if (trace_) return false;  // careful path owns trace-attached runs
    if (!shadow_ || !shadow_->all_bottom()) return false;
    if (reg_tag_or_ != dift::kBottomTag) {
      Tag t = dift::kBottomTag;
      for (const auto& r : regs_) t = static_cast<Tag>(t | Ops::tag(r));
      if (t != dift::kBottomTag) return false;
      reg_tag_or_ = dift::kBottomTag;
    }
    return plain_clearances_ok();
  }
}

template <typename W>
std::uint64_t Core<W>::exec_block(Block& b, std::uint64_t budget, bool fresh,
                                  bool plain) {
  if constexpr (kTainted) {
    if (plain) {
      // Plain variant: plain_state() proved the whole plane ⊥ and every
      // clearance admits ⊥-tagged execution, so the block is cleared for
      // fetch by construction (span uniformly ⊥) and the fetch memo is
      // neither consulted nor established. Handlers run with zero tag
      // work; a bus load that introduces taint raises taint_break_ so the
      // next op re-dispatches on the tainted variant.
      const auto np = static_cast<std::size_t>(
          std::min<std::uint64_t>(b.ops.size(), budget));
      cur_block_lo_ = b.start_off;
      cur_block_hi_ = b.start_off + b.byte_len;
      smc_break_ = false;
      taint_break_ = false;
      const MicroOp* pops = b.ops.data();
      std::uint64_t pdone = 0;
      try {
        while (pdone < np) {
          const MicroOp& op = pops[pdone];
          const std::uint32_t seq = pc_ + op.insn.len;
          next_pc_ = seq;
          trapped_ = false;
          op.fast(*this, op.insn);
          pc_ = next_pc_;
          ++instret_;
          ++pdone;
          if (trapped_) break;
          if (op.cf && pc_ != seq) break;  // taken branch left the block
          if (op.mem && ((csrs_.mip & csrs_.mie) != 0 || smc_break_ ||
                         taint_break_))
            break;
        }
        if (!fresh) stats_.decode_hits += pdone;
        if (exec_.fetch) stats_.fetch_summary_hits += pdone;
      } catch (...) {
        if (!fresh) stats_.decode_hits += pdone + 1;
        if (exec_.fetch) stats_.fetch_summary_hits += pdone + 1;
        cur_block_lo_ = cur_block_hi_ = 0;
        throw;
      }
      cur_block_lo_ = cur_block_hi_ = 0;
      return pdone;
    }
  } else {
    (void)plain;  // the plain instantiation has no variant split
  }

  // One fetch-clearance check covering the whole block span (the old
  // per-instruction memo generalized): if the span is uniformly tagged and
  // the flow is allowed, memoise and skip per-instruction checks entirely.
  bool cleared = true;
  if constexpr (kTainted) {
    if (exec_.fetch) {
      cleared = false;
      if (b.fetch_memo && shadow_ && b.fetch_gen == shadow_->generation() &&
          b.fetch_flow == dift::detail::g_active.flow &&
          b.fetch_clearance == *exec_.fetch) {
        cleared = true;
      } else {
        Tag tag = dift::kBottomTag;
        if (shadow_ && shadow_->uniform(b.start_off, b.byte_len, &tag) &&
            dift::allowed_flow(tag, *exec_.fetch)) {
          b.fetch_memo = true;
          b.fetch_gen = shadow_->generation();
          b.fetch_flow = dift::detail::g_active.flow;
          b.fetch_clearance = *exec_.fetch;
          cleared = true;
        }
      }
    }
  }

  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(b.ops.size(), budget));
  cur_block_lo_ = b.start_off;
  cur_block_hi_ = b.start_off + b.byte_len;
  smc_break_ = false;
  const MicroOp* ops = b.ops.data();
  std::uint64_t done = 0;

  if (cleared && !trace_) {
    // Fast path: no per-instruction fetch checks, no trace test. Loads and
    // stores can raise interrupts synchronously (CLINT) or modify code, so
    // they re-test the block-exit conditions.
    try {
      while (done < n) {
        const MicroOp& op = ops[done];
        const std::uint32_t seq = pc_ + op.insn.len;
        next_pc_ = seq;
        trapped_ = false;
        op.fn(*this, op.insn);
        pc_ = next_pc_;
        ++instret_;
        ++done;
        if (trapped_) break;
        if (op.cf && pc_ != seq) break;  // taken branch left the block
        if (op.mem && ((csrs_.mip & csrs_.mie) != 0 || smc_break_)) break;
      }
      if (!fresh) stats_.decode_hits += done;
      if constexpr (kTainted) {
        if (exec_.fetch) stats_.fetch_summary_hits += done;
      }
    } catch (...) {
      // Enforcement violation inside a handler: the instruction was fetched
      // and decoded but did not retire — count it like the per-insn engine.
      if (!fresh) stats_.decode_hits += done + 1;
      if constexpr (kTainted) {
        if (exec_.fetch) stats_.fetch_summary_hits += done + 1;
      }
      cur_block_lo_ = cur_block_hi_ = 0;
      throw;
    }
  } else {
    // Careful path: trace attached, or the block span is not uniformly
    // cleared for fetch — fall back to exact per-instruction checks so
    // violation pcs and monitor-mode records match single-step execution.
    try {
      while (done < n) {
        const MicroOp& op = ops[done];
        if (!fresh) ++stats_.decode_hits;
        if constexpr (kTainted) {
          if (exec_.fetch) {
            if (cleared) {
              ++stats_.fetch_summary_hits;
            } else {
              const std::uint64_t off = std::uint64_t(pc_) - dmi_base_;
              const std::uint64_t blk = off >> dift::ShadowSummary::kBlockShift;
              const bool one_block =
                  ((off + op.insn.len - 1) >> dift::ShadowSummary::kBlockShift) == blk;
              Tag tag = dift::kBottomTag;
              const bool uniform =
                  shadow_ && one_block && shadow_->uniform(off, op.insn.len, &tag);
              if (!uniform) {
                tag = dmi_tags_[off];
                for (std::uint32_t i = 1; i < op.insn.len; ++i)
                  tag = dift::lub(tag, dmi_tags_[off + i]);
              }
              if (uniform && dift::allowed_flow(tag, *exec_.fetch)) {
                ++stats_.fetch_summary_hits;
              } else {
                dift::check_flow(tag, *exec_.fetch, ViolationKind::kFetchClearance,
                                 pc_, pc_, "core.fetch");
              }
            }
          }
        }
        const std::uint32_t seq = pc_ + op.insn.len;
        next_pc_ = seq;
        trapped_ = false;
        op.fn(*this, op.insn);
        if (trace_) {
          // A trapping instruction never wrote rd; record x0 (0, untainted)
          // instead of the stale pre-trap register contents.
          const std::uint8_t rd = trapped_ ? 0 : op.insn.rd;
          trace_->push({instret_, pc_, op.insn.raw, rd, Ops::value(regs_[rd]),
                        Ops::tag(regs_[rd])});
        }
        pc_ = next_pc_;
        ++instret_;
        ++done;
        if (trapped_) break;
        if (op.cf && pc_ != seq) break;  // taken branch left the block
        if (op.mem && ((csrs_.mip & csrs_.mie) != 0 || smc_break_)) break;
      }
    } catch (...) {
      cur_block_lo_ = cur_block_hi_ = 0;
      throw;
    }
  }
  cur_block_lo_ = cur_block_hi_ = 0;
  return done;
}

// ---------------------------------------------------------------------------
// Superblock (trace) formation.
//
// A hot block whose successors are predictable (static jal targets, chain
// predictions for jalr/mret, straight fall-through) is fused with them into
// one straight-line run of micro-ops, turning per-iteration chained_transfers
// into in-trace fall-through. Traces execute only on the plain path, so no
// fetch-memo or flow-check state needs trace-scope treatment; the block
// rules from docs/perf.md extend naturally: every constituent's raw bytes
// are revalidated on entry, boundary ops are marked `mem` so an interrupt
// (or SMC/taint break) raised by a fused call is re-tested before the next
// block's ops run (exact mepc), and `chk`/`expect` verify each predicted
// successor before falling through into it.
// ---------------------------------------------------------------------------

template <typename W>
void Core<W>::build_trace(Block& head) {
  auto t = std::make_unique<Trace>();
  bool fusable = true;   // head itself can start a trace
  bool transient = false;  // stopped on a cold/stale successor: retry later
  const Block* cur = &head;
  while (true) {
    if (t->parts.size() >= kMaxTraceParts ||
        t->ops.size() + cur->ops.size() > kMaxTraceOps)
      break;
    // Fuse only translations that match memory right now; a stale
    // constituent would fuse dead code.
    if (!raw_match(dmi_data_ + cur->start_off, cur->raw.data(),
                   cur->byte_len)) {
      transient = true;
      break;
    }
    typename Trace::Part part{cur->start_off, cur->byte_len,
                     static_cast<std::uint32_t>(t->raw.size()),
                     static_cast<std::uint32_t>(t->ops.size())};
    t->ops.insert(t->ops.end(), cur->ops.begin(), cur->ops.end());
    t->raw.insert(t->raw.end(), cur->raw.begin(), cur->raw.end());
    t->parts.push_back(part);

    // Predict the successor reached when the block runs to completion.
    const MicroOp& last = cur->ops.back();
    std::uint64_t next_off;
    if (CoreOps<W>::entry(last.insn.op).terminator) {
      if (last.insn.op == Op::kJal) {
        const std::uint32_t jal_pc = static_cast<std::uint32_t>(
            dmi_base_ + cur->start_off + cur->byte_len - last.insn.len);
        const std::uint32_t target =
            jal_pc + static_cast<std::uint32_t>(last.insn.imm);
        if ((target & 1) || target < dmi_base_ ||
            std::uint64_t(target) - dmi_base_ >= dmi_size_) {
          if (t->parts.size() < 2) fusable = false;
          break;
        }
        next_off = std::uint64_t(target) - dmi_base_;
      } else if (last.insn.op == Op::kJalr || last.insn.op == Op::kMret) {
        if (cur->chain_off == ~std::uint64_t{0}) {
          transient = true;
          break;
        }
        next_off = cur->chain_off;
      } else {
        // csr/fence/ecall/ebreak/wfi/illegal: never fuse past these.
        if (t->parts.size() < 2) fusable = false;
        break;
      }
    } else {
      // Block ended by kMaxBlockOps or the window edge: fall through.
      next_off = cur->start_off + cur->byte_len;
    }
    // Close at loop edges: re-entering the head (or any part) goes back
    // through the dispatch loop, which revalidates and re-enters the trace.
    bool closes = next_off == head.start_off;
    for (const auto& p : t->parts) closes = closes || next_off == p.off;
    if (closes) break;
    const auto slot = static_cast<std::size_t>(next_off >> 1);
    const Block* next = slot < blocks_.size() ? blocks_[slot].get() : nullptr;
    if (!next || next->ops.empty()) {
      transient = true;  // successor not translated yet
      break;
    }
    // Mark the boundary: verify the predicted successor pc, and re-test the
    // block-exit conditions (pending interrupt, smc/taint break) exactly as
    // a dispatch-loop re-entry would before running the next block's ops.
    MicroOp& bop = t->ops.back();
    bop.chk = true;
    bop.expect = static_cast<std::uint32_t>(dmi_base_ + next_off);
    bop.mem = true;
    cur = next;
  }
  if (t->parts.size() >= 2) {
    std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
    bool all_pinned = true;
    for (const auto& p : t->parts) {
      lo = std::min(lo, p.off);
      hi = std::max(hi, p.off + p.len);
      all_pinned = all_pinned && is_pinned_off(p.off);
    }
    t->lo = lo;
    t->hi = hi;
    t->all_pinned = all_pinned && !pinned_offs_.empty();
    head.trace = std::move(t);
  } else if (!transient && !fusable) {
    head.no_trace = true;  // shape can never fuse until the block rebuilds
  }
}

template <typename W>
bool Core<W>::trace_valid(const Trace& t) const {
  for (const auto& p : t.parts)
    if (!raw_match(dmi_data_ + p.off, t.raw.data() + p.raw_off, p.len))
      return false;
  return true;
}

template <typename W>
std::uint64_t Core<W>::exec_trace(Trace& t, std::uint64_t budget) {
  const auto n =
      static_cast<std::size_t>(std::min<std::uint64_t>(t.ops.size(), budget));
  // The store-into-executing-code test covers the hull of all parts; a
  // store into a gap between parts breaks out spuriously, which is safe
  // (the dispatch loop revalidates and resumes).
  cur_block_lo_ = t.lo;
  cur_block_hi_ = t.hi;
  smc_break_ = false;
  taint_break_ = false;
  const MicroOp* ops = t.ops.data();
  std::uint64_t done = 0;
  try {
    while (done < n) {
      const MicroOp& op = ops[done];
      const std::uint32_t seq = pc_ + op.insn.len;
      next_pc_ = seq;
      trapped_ = false;
      op.fast(*this, op.insn);
      pc_ = next_pc_;
      ++instret_;
      ++done;
      if (trapped_) break;
      if (op.chk && pc_ != op.expect) break;  // prediction miss: leave trace
      if (op.cf && pc_ != seq) break;         // taken branch left the trace
      if (op.mem &&
          ((csrs_.mip & csrs_.mie) != 0 || smc_break_ || taint_break_))
        break;
    }
    stats_.decode_hits += done;  // trace ops always come from cached blocks
    if constexpr (kTainted) {
      if (exec_.fetch) stats_.fetch_summary_hits += done;
    }
  } catch (...) {
    stats_.decode_hits += done + 1;
    if constexpr (kTainted) {
      if (exec_.fetch) stats_.fetch_summary_hits += done + 1;
    }
    cur_block_lo_ = cur_block_hi_ = 0;
    throw;
  }
  cur_block_lo_ = cur_block_hi_ = 0;
  // Count block transitions taken inside the trace (parts entered beyond
  // the head) — these are the dispatch-loop transfers the fusion elided.
  std::uint64_t transfers = 0;
  for (std::size_t k = 1; k < t.parts.size() && t.parts[k].first_op < done; ++k)
    ++transfers;
  stats_.superblock_transfers += transfers;
  return done;
}

template <typename W>
void Core<W>::step_slow() {
  // Slow path (XIP flash etc.): read one parcel over the bus, extend to 32
  // bits when it is an uncompressed instruction.
  next_pc_ = pc_ + 4;
  MemAccess f = load(pc_, 2, false);
  if (!f.fault && (f.value & 3) == 3) {
    const MemAccess hi = load(pc_ + 2, 2, false);
    if (hi.fault) {
      f.fault = true;
    } else {
      f.value |= hi.value << 16;
      f.tag = Ops::combine(f.tag, hi.tag);
    }
  }
  if (f.fault) {
    take_trap(kCauseInsnAccessFault, pc_);
  } else {
    if constexpr (kTainted) {
      if (exec_.fetch)
        dift::check_flow(f.tag, *exec_.fetch, ViolationKind::kFetchClearance,
                         pc_, pc_, "core.fetch");
    }
    const Insn d = decode_any(f.value);
    next_pc_ = pc_ + d.len;
    trapped_ = false;
    execute(d);
    if (trace_) {
      const std::uint8_t rd = trapped_ ? 0 : d.rd;
      trace_->push({instret_, pc_, d.raw, rd, Ops::value(regs_[rd]),
                    Ops::tag(regs_[rd])});
    }
  }
  pc_ = next_pc_;
  ++instret_;
}

template <typename W>
RunExit Core<W>::run(std::uint64_t max_instructions) {
  std::uint64_t executed = 0;
  Block* prev = nullptr;  // last block that ran to completion (chain source)
  while (executed < max_instructions) {
    // Armed injected fault (arm_fault()): fire once the retirement counter
    // reaches the trigger. This sits at the block-boundary check point the
    // per-instruction hot loop already funnels through, so the test costs
    // one predictable branch per block entry.
    if (fault_armed_ && instret_ >= fault_at_) {
      fault_armed_ = false;
      auto fn = std::move(fault_fn_);
      fault_fn_ = nullptr;
      prev = nullptr;  // the mutation may have redirected control flow
      // The callback mutates architectural state (possibly the tag plane)
      // outside the statically analyzed behaviour: ahead-of-time pins are
      // void from here to the end of the run.
      pins_suspended_ = true;
      if (fn) fn(*this);
    }
    // One interrupt-pending test per block entry. Mid-block, mip can only
    // change through a load/store (CLINT et al.), and memory micro-ops end
    // the block when an enabled interrupt became pending — so the trap is
    // taken at the same instruction boundary as with per-insn checking.
    if (csrs_.mip & csrs_.mie) check_interrupts();
    if (wfi_) return RunExit::kWfi;

    if (pc_ & 1) {
      next_pc_ = pc_ + 4;
      take_trap(kCauseInsnMisaligned, pc_);
      pc_ = next_pc_;
      ++instret_;
      ++executed;
      prev = nullptr;
      continue;
    }
    if (pc_ >= dmi_base_ && std::uint64_t(pc_) - dmi_base_ + 4 <= dmi_size_) {
      const std::uint64_t off = std::uint64_t(pc_) - dmi_base_;
      bool fresh = false;
      Block* b = nullptr;
      if (prev && prev->chain && prev->chain_off == off) {
        // Chained transfer: skip the cache lookup, but still revalidate the
        // raw bytes (self-modifying code) before trusting the micro-ops.
        b = prev->chain;
        if (raw_match(dmi_data_ + off, b->raw.data(), b->byte_len)) {
          ++stats_.chained_transfers;
        } else {
          build_into(*b, off);
          ++stats_.block_invalidations;
          fresh = true;
        }
      }
      if (!b) {
        b = lookup_block(off, fresh);
        if (b && prev) {
          prev->chain = b;
          prev->chain_off = off;
        }
      }
      if (b) {
        // Pending-fault clamp: never execute past the trigger point. The
        // holding block runs partially and falls back to the loop top where
        // the fault fires at the exact boundary — a graceful single-step-
        // style degradation of that one block, not a cache invalidation.
        std::uint64_t budget = max_instructions - executed;
        if (fault_armed_ && fault_at_ - instret_ < budget)
          budget = fault_at_ - instret_;
        // Taint-liveness gate: while no taint is live anywhere and every
        // clearance admits ⊥, dispatch the zero-tag-work plain variant and
        // form/execute superblocks. The plain core takes the trace path
        // whenever no trace buffer is attached.
        //
        // Ahead-of-time pin fast path: a pinned block's window was proven
        // (statically, against the installed policy) to only ever load from
        // never-tainted memory, so the plain_state() re-proof — the shadow
        // all-⊥ scan and the register rescan — is skipped. The residual
        // runtime obligations are exactly the sticky reg-tag OR still
        // reading ⊥ (covers every register-sourced tag the fast variants
        // drop, including values an interrupt handler left behind) and the
        // memoised every-clearance-admits-⊥ check.
        bool via_pin = false;
        bool plain;
        if constexpr (kTainted) {
          if (b->pinned && !pins_suspended_ && trace_ == nullptr &&
              reg_tag_or_ == dift::kBottomTag && plain_clearances_ok()) {
            plain = true;
            via_pin = true;
            ++stats_.sa_pinned_hits;
          } else {
            plain = plain_state();
          }
        } else {
          plain = plain_state();
        }
        if (plain) {
          Trace* t = b->trace.get();
          if (t && !trace_valid(*t)) {
            // SMC hit a constituent: drop the trace and re-heat. The
            // constituent's own slot revalidates (and rebuilds) on its
            // next direct dispatch as usual.
            b->trace.reset();
            b->heat = 0;
            t = nullptr;
          }
          if (!t && !fresh && !b->no_trace && ++b->heat >= kTraceHeat) {
            build_trace(*b);
            b->heat = 0;
            t = b->trace.get();
          }
          // A pin only covers the head block's window; unless every fused
          // constituent is pinned too, a via-pin dispatch must not run the
          // trace (its tail could load from memory the analysis did not
          // clear for those windows).
          if (t && via_pin && !t->all_pinned) t = nullptr;
          if (t) {
            ++stats_.superblock_hits;
            const std::uint64_t done = exec_trace(*t, budget);
            executed += done;
            if constexpr (kTainted) {
              if (taint_break_) {
                ++stats_.variant_promotions;
                taint_break_ = false;
              }
            }
            // A trace exit pc does not correspond to a completed head
            // block, so no chain is installed from it.
            prev = nullptr;
            continue;
          }
        }
        const std::uint64_t done = exec_block(*b, budget, fresh, plain);
        executed += done;
        if constexpr (kTainted) {
          if (plain) {
            ++stats_.plain_variant_hits;
            if (taint_break_) {
              ++stats_.variant_promotions;
              taint_break_ = false;
            }
          } else {
            ++stats_.tainted_variant_hits;
          }
        }
        // The chain is a prediction, not a guarantee — the chain_off match
        // and the raw revalidation on the next entry keep it honest — so any
        // exit (terminator, taken branch, mem break) may install one.
        prev = b;
        continue;
      }
    }
    step_slow();
    ++executed;
    prev = nullptr;
  }
  return RunExit::kQuantumExhausted;
}

template class Core<PlainWord>;
template class Core<TaintedWord>;

}  // namespace vpdift::rv
