#include "rv/core.hpp"
#include <algorithm>
#include <cstring>

#include "dift/context.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::rv {

using dift::Tag;
using dift::ViolationKind;

template <typename W>
Core<W>::Core(std::string name) : name_(std::move(name)) {}

template <typename W>
void Core<W>::set_dmi(std::uint8_t* data, Tag* tags, std::uint64_t base,
                      std::uint64_t size, dift::ShadowSummary* shadow) {
  dmi_data_ = data;
  dmi_tags_ = tags;
  dmi_base_ = base;
  dmi_size_ = size;
  shadow_ = shadow;
  invalidate_fetch_memo();
  // One entry per halfword (IALIGN=16 with the C extension), capped to the
  // low window of RAM where program text lives — fetches beyond it simply
  // decode each time. Entries start as {raw=0, insn=decode16(0)}, which is
  // exactly correct for zero-filled memory, so no validity flag is needed.
  decode_cache_.assign(std::min<std::uint64_t>(size, kDecodeCacheWindow) / 2,
                       DecodeEntry{0, decode16(0)});
}

template <typename W>
void Core<W>::set_policy(const dift::SecurityPolicy* policy) {
  policy_ = policy;
  exec_ = policy ? policy->execution_clearance() : dift::ExecutionClearance{};
  has_store_prot_ = policy && !policy->store_protection().empty();
  invalidate_fetch_memo();
}

template <typename W>
void Core<W>::reset(std::uint32_t reset_pc) {
  regs_.fill(W{});
  csrs_ = CsrFile{};
  pc_ = reset_pc;
  next_pc_ = reset_pc;
  instret_ = 0;
  wfi_ = false;
  invalidate_fetch_memo();
  if (!decode_cache_.empty())
    decode_cache_.assign(decode_cache_.size(), DecodeEntry{0, decode16(0)});
}

template <typename W>
void Core<W>::set_irq(std::uint32_t bit, bool level) {
  if (level)
    csrs_.mip |= bit;
  else
    csrs_.mip &= ~bit;
}

template <typename W>
auto Core<W>::load(std::uint32_t addr, std::uint32_t size, bool sign_extend)
    -> MemAccess {
  std::uint32_t value = 0;
  Tag tag = dift::kBottomTag;
  if (addr >= dmi_base_ && std::uint64_t(addr) - dmi_base_ + size <= dmi_size_) {
    const std::uint64_t off = addr - dmi_base_;
    for (std::uint32_t i = 0; i < size; ++i)
      value |= std::uint32_t(dmi_data_[off + i]) << (8 * i);
    if constexpr (kTainted) {
      if (shadow_ && shadow_->uniform(off, size, &tag)) {
        ++stats_.load_summary_hits;
      } else {
        tag = dmi_tags_[off];
        for (std::uint32_t i = 1; i < size; ++i)
          tag = dift::lub(tag, dmi_tags_[off + i]);
      }
    }
  } else {
    std::uint8_t buf[4] = {};
    Tag tbuf[4] = {};
    tlmlite::Payload p;
    p.command = tlmlite::Command::kRead;
    p.address = addr;
    p.data = buf;
    p.tags = kTainted ? tbuf : nullptr;
    p.length = size;
    sysc::Time delay;
    transport_with_pc(p, delay);
    if (!p.ok()) return {0, dift::kBottomTag, true};
    for (std::uint32_t i = 0; i < size; ++i) value |= std::uint32_t(buf[i]) << (8 * i);
    if constexpr (kTainted) {
      if (p.tags_uniform()) {
        tag = static_cast<Tag>(p.tag_summary);
        ++stats_.load_summary_hits;
      } else {
        tag = tbuf[0];
        for (std::uint32_t i = 1; i < size; ++i) tag = dift::lub(tag, tbuf[i]);
      }
    }
  }
  if (sign_extend) {
    if (size == 1) value = static_cast<std::uint32_t>(static_cast<std::int8_t>(value));
    else if (size == 2)
      value = static_cast<std::uint32_t>(static_cast<std::int16_t>(value));
  }
  return {value, tag, false};
}

template <typename W>
bool Core<W>::store(std::uint32_t addr, std::uint32_t value, Tag tag,
                    std::uint32_t size) {
  if constexpr (kTainted) {
    if (has_store_prot_) {
      if (auto clearance = policy_->store_clearance_at(addr))
        dift::check_flow(tag, *clearance, ViolationKind::kStoreClearance, pc_, addr,
                         "core.store");
    }
  }
  if (addr >= dmi_base_ && std::uint64_t(addr) - dmi_base_ + size <= dmi_size_) {
    const std::uint64_t off = addr - dmi_base_;
    for (std::uint32_t i = 0; i < size; ++i)
      dmi_data_[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
    if constexpr (kTainted) {
      for (std::uint32_t i = 0; i < size; ++i) dmi_tags_[off + i] = tag;
      if (shadow_) shadow_->on_store(off, size, tag);
    }
    return false;
  }
  std::uint8_t buf[4];
  Tag tbuf[4];
  for (std::uint32_t i = 0; i < size; ++i) {
    buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
    tbuf[i] = tag;
  }
  tlmlite::Payload p;
  p.command = tlmlite::Command::kWrite;
  p.address = addr;
  p.data = buf;
  p.tags = kTainted ? tbuf : nullptr;
  p.length = size;
  p.set_tag_summary(tag);  // tbuf was filled uniformly above
  sysc::Time delay;
  transport_with_pc(p, delay);
  return !p.ok();
}

template <typename W>
void Core<W>::transport_with_pc(tlmlite::Payload& p, sysc::Time& delay) {
  if constexpr (!kTainted) {
    bus_.b_transport(p, delay);
  } else {
    // Peripherals raise clearance violations without knowing the program
    // counter; publish it as a hint (used by monitor-mode records) and
    // re-throw enforcement violations with the faulting pc attached.
    dift::set_pc_hint(pc_);
    try {
      bus_.b_transport(p, delay);
    } catch (const dift::PolicyViolation& v) {
      if (v.pc() != 0) throw;
      throw dift::PolicyViolation(v.kind(), v.source(), v.required(), pc_,
                                  v.address() ? v.address() : p.address,
                                  v.where());
    }
  }
}

template <typename W>
auto Core<W>::fetch32(std::uint32_t addr) -> MemAccess {
  if (addr >= dmi_base_ && std::uint64_t(addr) - dmi_base_ + 4 <= dmi_size_) {
    const std::uint64_t off = addr - dmi_base_;
    std::uint32_t value;
    std::memcpy(&value, dmi_data_ + off, 4);  // host is little-endian
    Tag tag = dift::kBottomTag;
    if constexpr (kTainted) {
      if (shadow_ && shadow_->uniform(off, 4, &tag)) {
        ++stats_.load_summary_hits;
      } else {
        tag = dmi_tags_[off];
        for (std::uint32_t i = 1; i < 4; ++i)
          tag = dift::lub(tag, dmi_tags_[off + i]);
      }
    }
    return {value, tag, false};
  }
  return load(addr, 4, false);
}

template <typename W>
void Core<W>::take_trap(std::uint32_t cause, std::uint32_t tval) {
  trapped_ = true;
  auto& s = csrs_;
  std::uint32_t m = s.mstatus.value;
  const bool mie = (m & kMstatusMie) != 0;
  m &= ~(kMstatusMie | kMstatusMpie);
  if (mie) m |= kMstatusMpie;
  m |= kMstatusMpp;  // previous privilege: machine
  s.mstatus.value = m;
  s.mepc = {pc_, dift::kBottomTag};
  s.mcause = {cause, dift::kBottomTag};
  s.mtval = {tval, dift::kBottomTag};
  if constexpr (kTainted) {
    if (exec_.branch)
      dift::check_flow(s.mtvec.tag, *exec_.branch, ViolationKind::kBranchClearance,
                       pc_, s.mtvec.value, "core.trap-vector");
  }
  next_pc_ = s.mtvec.value & ~3u;
}

template <typename W>
void Core<W>::check_interrupts() {
  const std::uint32_t pending = csrs_.mip & csrs_.mie;
  if (pending == 0) return;
  wfi_ = false;
  if (!(csrs_.mstatus.value & kMstatusMie)) return;
  std::uint32_t cause;
  if (pending & kIrqMext) cause = 11;
  else if (pending & kIrqMsoft) cause = 3;
  else cause = 7;
  take_trap(kIrqBit | cause, 0);
  pc_ = next_pc_;
}

template <typename W>
void Core<W>::do_csr(const Insn& d) {
  const auto csrnum = static_cast<std::uint32_t>(d.imm) & 0xfff;
  if (!csrs_.exists(csrnum)) {
    take_trap(kCauseIllegalInsn, d.raw);
    return;
  }
  const bool imm_form =
      d.op == Op::kCsrrwi || d.op == Op::kCsrrsi || d.op == Op::kCsrrci;
  const std::uint32_t src_v = imm_form ? d.rs1 : rv(d.rs1);
  const Tag src_t = imm_form ? dift::kBottomTag : rt(d.rs1);

  const bool is_write_form = d.op == Op::kCsrrw || d.op == Op::kCsrrwi;
  // csrrs/csrrc with rs1=x0 (or zimm=0) do not write.
  const bool writes = is_write_form || d.rs1 != 0;

  if (writes && ((csrnum >> 10) & 3) == 3) {  // read-only CSR space
    take_trap(kCauseIllegalInsn, d.raw);
    return;
  }

  const CsrValue old = csrs_.read(csrnum, instret_, instret_,
                                  time_us_ ? time_us_() : 0);
  if (writes) {
    std::uint32_t nv;
    Tag nt;
    if (is_write_form) {
      nv = src_v;
      nt = src_t;
    } else if (d.op == Op::kCsrrs || d.op == Op::kCsrrsi) {
      nv = old.value | src_v;
      nt = combine(old.tag, src_t);
    } else {
      nv = old.value & ~src_v;
      nt = combine(old.tag, src_t);
    }
    csrs_.write(csrnum, {nv, nt});
  }
  wr(d.rd, old.value, old.tag);
}

template <typename W>
void Core<W>::execute(const Insn& d) {
  auto branch = [this, &d](bool taken, Tag cond_tag) {
    if constexpr (kTainted) {
      if (exec_.branch)
        dift::check_flow(cond_tag, *exec_.branch, ViolationKind::kBranchClearance,
                         pc_, 0, "core.branch");
    } else {
      (void)cond_tag;
    }
    if (taken) {
      const std::uint32_t target = pc_ + static_cast<std::uint32_t>(d.imm);
      if (target & 1) take_trap(kCauseInsnMisaligned, target);
      else next_pc_ = target;
    }
  };
  auto mem_addr_check = [this](std::uint32_t addr, Tag addr_tag) {
    if constexpr (kTainted) {
      if (exec_.mem_addr)
        dift::check_flow(addr_tag, *exec_.mem_addr, ViolationKind::kMemAddrClearance,
                         pc_, addr, "core.lsu");
    } else {
      (void)addr;
      (void)addr_tag;
    }
  };
  auto do_load = [&](std::uint32_t size, bool sign) {
    const std::uint32_t addr = rv(d.rs1) + static_cast<std::uint32_t>(d.imm);
    mem_addr_check(addr, rt(d.rs1));
    const MemAccess m = load(addr, size, sign);
    if (m.fault) take_trap(kCauseLoadAccessFault, addr);
    else wr(d.rd, m.value, m.tag);
  };
  auto do_store = [&](std::uint32_t size) {
    const std::uint32_t addr = rv(d.rs1) + static_cast<std::uint32_t>(d.imm);
    mem_addr_check(addr, rt(d.rs1));
    if (store(addr, rv(d.rs2), rt(d.rs2), size))
      take_trap(kCauseStoreAccessFault, addr);
  };

  switch (d.op) {
    case Op::kLui: wr(d.rd, static_cast<std::uint32_t>(d.imm), dift::kBottomTag); break;
    case Op::kAuipc:
      wr(d.rd, pc_ + static_cast<std::uint32_t>(d.imm), dift::kBottomTag);
      break;

    case Op::kJal: {
      const std::uint32_t target = pc_ + static_cast<std::uint32_t>(d.imm);
      if (target & 1) { take_trap(kCauseInsnMisaligned, target); break; }
      wr(d.rd, pc_ + d.len, dift::kBottomTag);
      next_pc_ = target;
      break;
    }
    case Op::kJalr: {
      const std::uint32_t target =
          (rv(d.rs1) + static_cast<std::uint32_t>(d.imm)) & ~1u;
      if constexpr (kTainted) {
        // Indirect jump: the target address acts as the "branch condition".
        if (exec_.branch)
          dift::check_flow(rt(d.rs1), *exec_.branch, ViolationKind::kBranchClearance,
                           pc_, target, "core.jalr");
      }
      if (target & 1) { take_trap(kCauseInsnMisaligned, target); break; }
      wr(d.rd, pc_ + d.len, dift::kBottomTag);
      next_pc_ = target;
      break;
    }

    case Op::kBeq: branch(rv(d.rs1) == rv(d.rs2), combine(rt(d.rs1), rt(d.rs2))); break;
    case Op::kBne: branch(rv(d.rs1) != rv(d.rs2), combine(rt(d.rs1), rt(d.rs2))); break;
    case Op::kBlt:
      branch(static_cast<std::int32_t>(rv(d.rs1)) < static_cast<std::int32_t>(rv(d.rs2)),
             combine(rt(d.rs1), rt(d.rs2)));
      break;
    case Op::kBge:
      branch(static_cast<std::int32_t>(rv(d.rs1)) >= static_cast<std::int32_t>(rv(d.rs2)),
             combine(rt(d.rs1), rt(d.rs2)));
      break;
    case Op::kBltu: branch(rv(d.rs1) < rv(d.rs2), combine(rt(d.rs1), rt(d.rs2))); break;
    case Op::kBgeu: branch(rv(d.rs1) >= rv(d.rs2), combine(rt(d.rs1), rt(d.rs2))); break;

    case Op::kLb: do_load(1, true); break;
    case Op::kLh: do_load(2, true); break;
    case Op::kLw: do_load(4, false); break;
    case Op::kLbu: do_load(1, false); break;
    case Op::kLhu: do_load(2, false); break;
    case Op::kSb: do_store(1); break;
    case Op::kSh: do_store(2); break;
    case Op::kSw: do_store(4); break;

    // Immediate ALU ops — expressed directly on the machine word W so the
    // tainted build combines tags through the overloaded operators (paper
    // Fig. 3) and the plain build compiles to bare integer ops.
    case Op::kAddi: wrw(d.rd, regs_[d.rs1] + static_cast<std::uint32_t>(d.imm)); break;
    case Op::kXori: wrw(d.rd, regs_[d.rs1] ^ static_cast<std::uint32_t>(d.imm)); break;
    case Op::kOri: wrw(d.rd, regs_[d.rs1] | static_cast<std::uint32_t>(d.imm)); break;
    case Op::kAndi: wrw(d.rd, regs_[d.rs1] & static_cast<std::uint32_t>(d.imm)); break;
    case Op::kSlti:
      wr(d.rd,
         static_cast<std::int32_t>(rv(d.rs1)) < d.imm ? 1u : 0u, rt(d.rs1));
      break;
    case Op::kSltiu:
      wr(d.rd, rv(d.rs1) < static_cast<std::uint32_t>(d.imm) ? 1u : 0u, rt(d.rs1));
      break;
    case Op::kSlli: wr(d.rd, rv(d.rs1) << (d.imm & 31), rt(d.rs1)); break;
    case Op::kSrli: wr(d.rd, rv(d.rs1) >> (d.imm & 31), rt(d.rs1)); break;
    case Op::kSrai:
      wr(d.rd,
         static_cast<std::uint32_t>(static_cast<std::int32_t>(rv(d.rs1)) >> (d.imm & 31)),
         rt(d.rs1));
      break;

    // Register ALU ops — same machine-word style as the paper's example
    // `regs[RD] = regs[RS1] + regs[RS2]`.
    case Op::kAdd: wrw(d.rd, regs_[d.rs1] + regs_[d.rs2]); break;
    case Op::kSub: wrw(d.rd, regs_[d.rs1] - regs_[d.rs2]); break;
    case Op::kXor: wrw(d.rd, regs_[d.rs1] ^ regs_[d.rs2]); break;
    case Op::kOr: wrw(d.rd, regs_[d.rs1] | regs_[d.rs2]); break;
    case Op::kAnd: wrw(d.rd, regs_[d.rs1] & regs_[d.rs2]); break;
    case Op::kSll:
      wr(d.rd, rv(d.rs1) << (rv(d.rs2) & 31), combine(rt(d.rs1), rt(d.rs2)));
      break;
    case Op::kSrl:
      wr(d.rd, rv(d.rs1) >> (rv(d.rs2) & 31), combine(rt(d.rs1), rt(d.rs2)));
      break;
    case Op::kSra:
      wr(d.rd,
         static_cast<std::uint32_t>(static_cast<std::int32_t>(rv(d.rs1)) >>
                                    (rv(d.rs2) & 31)),
         combine(rt(d.rs1), rt(d.rs2)));
      break;
    case Op::kSlt:
      wr(d.rd,
         static_cast<std::int32_t>(rv(d.rs1)) < static_cast<std::int32_t>(rv(d.rs2))
             ? 1u : 0u,
         combine(rt(d.rs1), rt(d.rs2)));
      break;
    case Op::kSltu:
      wr(d.rd, rv(d.rs1) < rv(d.rs2) ? 1u : 0u, combine(rt(d.rs1), rt(d.rs2)));
      break;

    case Op::kMul:
      wr(d.rd, rv(d.rs1) * rv(d.rs2), combine(rt(d.rs1), rt(d.rs2)));
      break;
    case Op::kMulh: {
      const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(rv(d.rs1))) *
                             static_cast<std::int64_t>(static_cast<std::int32_t>(rv(d.rs2)));
      wr(d.rd, static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32),
         combine(rt(d.rs1), rt(d.rs2)));
      break;
    }
    case Op::kMulhsu: {
      const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(rv(d.rs1))) *
                             static_cast<std::int64_t>(std::uint64_t(rv(d.rs2)));
      wr(d.rd, static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32),
         combine(rt(d.rs1), rt(d.rs2)));
      break;
    }
    case Op::kMulhu: {
      const std::uint64_t p = std::uint64_t(rv(d.rs1)) * std::uint64_t(rv(d.rs2));
      wr(d.rd, static_cast<std::uint32_t>(p >> 32), combine(rt(d.rs1), rt(d.rs2)));
      break;
    }
    case Op::kDiv: {
      const auto a = static_cast<std::int32_t>(rv(d.rs1));
      const auto b = static_cast<std::int32_t>(rv(d.rs2));
      std::uint32_t r;
      if (b == 0) r = 0xffffffffu;
      else if (a == INT32_MIN && b == -1) r = static_cast<std::uint32_t>(INT32_MIN);
      else r = static_cast<std::uint32_t>(a / b);
      wr(d.rd, r, combine(rt(d.rs1), rt(d.rs2)));
      break;
    }
    case Op::kDivu: {
      const std::uint32_t a = rv(d.rs1), b = rv(d.rs2);
      wr(d.rd, b == 0 ? 0xffffffffu : a / b, combine(rt(d.rs1), rt(d.rs2)));
      break;
    }
    case Op::kRem: {
      const auto a = static_cast<std::int32_t>(rv(d.rs1));
      const auto b = static_cast<std::int32_t>(rv(d.rs2));
      std::uint32_t r;
      if (b == 0) r = static_cast<std::uint32_t>(a);
      else if (a == INT32_MIN && b == -1) r = 0;
      else r = static_cast<std::uint32_t>(a % b);
      wr(d.rd, r, combine(rt(d.rs1), rt(d.rs2)));
      break;
    }
    case Op::kRemu: {
      const std::uint32_t a = rv(d.rs1), b = rv(d.rs2);
      wr(d.rd, b == 0 ? a : a % b, combine(rt(d.rs1), rt(d.rs2)));
      break;
    }

    case Op::kFence: break;  // single hart, loosely timed: no-op
    case Op::kEcall: take_trap(kCauseEcallM, 0); break;
    case Op::kEbreak: take_trap(kCauseBreakpoint, pc_); break;

    case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
    case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
      do_csr(d);
      break;

    case Op::kMret: {
      auto& s = csrs_;
      std::uint32_t m = s.mstatus.value;
      const bool mpie = (m & kMstatusMpie) != 0;
      m &= ~kMstatusMie;
      if (mpie) m |= kMstatusMie;
      m |= kMstatusMpie;
      s.mstatus.value = m;
      if constexpr (kTainted) {
        if (exec_.branch)
          dift::check_flow(s.mepc.tag, *exec_.branch, ViolationKind::kBranchClearance,
                           pc_, s.mepc.value, "core.mret");
      }
      next_pc_ = s.mepc.value;
      break;
    }
    case Op::kWfi:
      if ((csrs_.mip & csrs_.mie) == 0) wfi_ = true;
      break;

    case Op::kIllegal:
    default:
      take_trap(kCauseIllegalInsn, d.raw);
      break;
  }
}

template <typename W>
RunExit Core<W>::run(std::uint64_t max_instructions) {
  for (std::uint64_t i = 0; i < max_instructions; ++i) {
    if (csrs_.mip & csrs_.mie) check_interrupts();
    if (wfi_) return RunExit::kWfi;

    if (pc_ & 1) {
      next_pc_ = pc_ + 4;
      take_trap(kCauseInsnMisaligned, pc_);
    } else if (pc_ >= dmi_base_ && std::uint64_t(pc_) - dmi_base_ + 4 <= dmi_size_) {
      // Fast path: fetch + decode cache over the DMI window. The key is the
      // full 32-bit read even for a 16-bit parcel — a changed second half
      // merely forces a harmless re-decode.
      const std::uint64_t off = pc_ - dmi_base_;
      std::uint32_t raw;
      std::memcpy(&raw, dmi_data_ + off, 4);  // host is little-endian
      Insn scratch;
      const Insn* insn;
      if (const std::size_t slot = off / 2; slot < decode_cache_.size()) {
        DecodeEntry& e = decode_cache_[slot];
        if (e.raw != raw) {
          e.raw = raw;
          e.insn = decode_any(raw);
          ++stats_.decode_misses;
        } else {
          ++stats_.decode_hits;
        }
        insn = &e.insn;
      } else {
        scratch = decode_any(raw);
        insn = &scratch;
        ++stats_.decode_misses;
      }
      if constexpr (kTainted) {
        if (exec_.fetch) {
          const std::uint64_t block = off >> dift::ShadowSummary::kBlockShift;
          const bool one_block =
              ((off + insn->len - 1) >> dift::ShadowSummary::kBlockShift) == block;
          if (one_block && fetch_memo_.block == block && shadow_ &&
              fetch_memo_.generation == shadow_->generation() &&
              fetch_memo_.flow == dift::detail::g_active.flow &&
              fetch_memo_.clearance == *exec_.fetch) {
            ++stats_.fetch_summary_hits;  // memoised: uniform block, flow allowed
          } else {
            Tag tag = dift::kBottomTag;
            const bool uniform =
                shadow_ && one_block && shadow_->uniform(off, insn->len, &tag);
            if (!uniform) {
              tag = dmi_tags_[off];
              for (std::uint32_t i = 1; i < insn->len; ++i)
                tag = dift::lub(tag, dmi_tags_[off + i]);
            }
            if (uniform && dift::allowed_flow(tag, *exec_.fetch)) {
              fetch_memo_ = {block, shadow_->generation(),
                             dift::detail::g_active.flow, *exec_.fetch};
              ++stats_.fetch_summary_hits;
            } else {
              dift::check_flow(tag, *exec_.fetch, ViolationKind::kFetchClearance,
                               pc_, pc_, "core.fetch");
            }
          }
        }
      }
      next_pc_ = pc_ + insn->len;
      trapped_ = false;
      execute(*insn);
      if (trace_) {
        // A trapping instruction never wrote rd; record x0 (0, untainted)
        // instead of the stale pre-trap register contents.
        const std::uint8_t rd = trapped_ ? 0 : insn->rd;
        trace_->push({instret_, pc_, insn->raw, rd, Ops::value(regs_[rd]),
                      Ops::tag(regs_[rd])});
      }
    } else {
      // Slow path (XIP flash etc.): read one parcel, extend to 32 bits when
      // it is an uncompressed instruction.
      next_pc_ = pc_ + 4;
      MemAccess f = load(pc_, 2, false);
      if (!f.fault && (f.value & 3) == 3) {
        const MemAccess hi = load(pc_ + 2, 2, false);
        if (hi.fault) {
          f.fault = true;
        } else {
          f.value |= hi.value << 16;
          f.tag = Ops::combine(f.tag, hi.tag);
        }
      }
      if (f.fault) {
        take_trap(kCauseInsnAccessFault, pc_);
      } else {
        if constexpr (kTainted) {
          if (exec_.fetch)
            dift::check_flow(f.tag, *exec_.fetch, ViolationKind::kFetchClearance,
                             pc_, pc_, "core.fetch");
        }
        const Insn d = decode_any(f.value);
        next_pc_ = pc_ + d.len;
        trapped_ = false;
        execute(d);
        if (trace_) {
          const std::uint8_t rd = trapped_ ? 0 : d.rd;
          trace_->push({instret_, pc_, d.raw, rd, Ops::value(regs_[rd]),
                        Ops::tag(regs_[rd])});
        }
      }
    }
    pc_ = next_pc_;
    ++instret_;
  }
  return RunExit::kQuantumExhausted;
}

template class Core<PlainWord>;
template class Core<TaintedWord>;

}  // namespace vpdift::rv
