#include "rv/csr.hpp"

namespace vpdift::rv {

bool CsrFile::exists(std::uint32_t n) const {
  switch (n) {
    case csr::kMstatus: case csr::kMisa: case csr::kMie: case csr::kMtvec:
    case csr::kMscratch: case csr::kMepc: case csr::kMcause: case csr::kMtval:
    case csr::kMip: case csr::kMcycle: case csr::kMinstret: case csr::kCycle:
    case csr::kTime: case csr::kInstret: case csr::kMvendorid:
    case csr::kMarchid: case csr::kMimpid: case csr::kMhartid:
      return true;
    default:
      return false;
  }
}

CsrValue CsrFile::read(std::uint32_t n, std::uint64_t cycle, std::uint64_t instret,
                       std::uint64_t time_us) const {
  switch (n) {
    case csr::kMstatus: return mstatus;
    case csr::kMisa: return {0x40001100u, dift::kBottomTag};  // RV32IM
    case csr::kMie: return {mie, dift::kBottomTag};
    case csr::kMtvec: return mtvec;
    case csr::kMscratch: return mscratch;
    case csr::kMepc: return mepc;
    case csr::kMcause: return mcause;
    case csr::kMtval: return mtval;
    case csr::kMip: return {mip, dift::kBottomTag};
    case csr::kMcycle: case csr::kCycle:
      return {static_cast<std::uint32_t>(cycle), dift::kBottomTag};
    case csr::kMinstret: case csr::kInstret:
      return {static_cast<std::uint32_t>(instret), dift::kBottomTag};
    case csr::kTime: return {static_cast<std::uint32_t>(time_us), dift::kBottomTag};
    default: return {};  // mvendorid/marchid/mimpid/mhartid read as 0
  }
}

void CsrFile::write(std::uint32_t n, CsrValue v) {
  switch (n) {
    case csr::kMstatus:
      mstatus = {v.value & kWritableMstatus, v.tag};
      break;
    case csr::kMie: mie = v.value; break;
    case csr::kMtvec: mtvec = v; break;
    case csr::kMscratch: mscratch = v; break;
    case csr::kMepc: mepc = {v.value & ~1u, v.tag}; break;
    case csr::kMcause: mcause = v; break;
    case csr::kMtval: mtval = v; break;
    default: break;  // read-only or unimplemented-writable: ignore
  }
}

}  // namespace vpdift::rv
