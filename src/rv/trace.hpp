// Execution tracing: a ring buffer of recently executed instructions with
// their results and taint tags — attached to violation reports so a policy
// developer sees *how* classified data reached the check that fired.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dift/tag.hpp"
#include "rv/decode.hpp"

namespace vpdift::rv {

struct TraceEntry {
  std::uint64_t instret = 0;   ///< retirement index
  std::uint32_t pc = 0;
  std::uint32_t raw = 0;       ///< instruction word
  std::uint8_t rd = 0;         ///< destination register (0 if none)
  std::uint32_t rd_value = 0;  ///< value written to rd
  dift::Tag rd_tag = 0;        ///< security class of that value
};

/// Fixed-capacity ring buffer of TraceEntry.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 32)
      : entries_(capacity ? capacity : 1) {}

  void push(const TraceEntry& e) {
    entries_[next_ % entries_.size()] = e;
    ++next_;
  }

  std::size_t capacity() const { return entries_.size(); }
  /// Number of entries currently held (<= capacity).
  std::size_t size() const { return next_ < entries_.size() ? next_ : entries_.size(); }
  /// Total instructions ever pushed.
  std::uint64_t pushed() const { return next_; }
  void clear() { next_ = 0; }

  /// Entries oldest-to-newest.
  std::vector<TraceEntry> snapshot() const;

  /// Human-readable rendering with disassembly, e.g.
  ///   [   1234] 80000040: lbu t1, 0(t0)        t1=0000002b tag=2
  std::string format() const;

 private:
  std::vector<TraceEntry> entries_;
  std::uint64_t next_ = 0;
};

}  // namespace vpdift::rv
