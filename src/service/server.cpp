#include "service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <deque>
#include <map>
#include <stdexcept>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "campaign/aggregator.hpp"
#include "campaign/json.hpp"
#include "campaign/spec.hpp"
#include "fi/fork.hpp"
#include "fi/suite.hpp"
#include "service/cache.hpp"
#include "service/hash.hpp"
#include "service/protocol.hpp"
#include "service/worker.hpp"

namespace vpdift::service {

namespace {

using campaign::JsonValue;

// Self-pipe signal plumbing: handlers only set a flag and poke the pipe so
// the poll() loop wakes up — everything else happens on the loop thread.
volatile sig_atomic_t g_sigchld = 0;
volatile sig_atomic_t g_sigterm = 0;
int g_sigpipe_wr = -1;

void on_signal(int sig) {
  if (sig == SIGCHLD)
    g_sigchld = 1;
  else
    g_sigterm = 1;
  if (g_sigpipe_wr >= 0) {
    const char c = 1;
    [[maybe_unused]] ssize_t n = ::write(g_sigpipe_wr, &c, 1);
  }
}

void set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

/// Writes as much of `q` as the socket accepts right now; the residue stays
/// queued for the next POLLOUT. False only on a fatal error (the peer is
/// gone), never on EAGAIN — the parent must never block in write(): a
/// worker mid-way through a large reply, or a client that stopped reading,
/// would deadlock the whole single-threaded loop.
bool flush_queue(int fd, std::string& q) {
  std::size_t off = 0;
  while (off < q.size()) {
    const ssize_t n = ::write(fd, q.data() + off, q.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const bool fatal = errno != EAGAIN && errno != EWOULDBLOCK;
      q.erase(0, off);
      return !fatal;
    }
    off += static_cast<std::size_t>(n);
  }
  q.erase(0, off);
  return true;
}

struct WorkerProc {
  pid_t pid = -1;
  int fd = -1;  ///< parent end of the socketpair, O_NONBLOCK
  LineBuffer buf;
  std::string out;  ///< queued outbound bytes, drained on POLLOUT
  std::vector<std::uint64_t> outstanding;  ///< op ids sent, awaiting reply
  /// Admission queue: op ids accepted but not yet sent. Ops move to
  /// `outstanding` one at a time (pump_worker), so a job's deadline clock
  /// starts when it actually reaches the worker, and a dying worker loses
  /// only its in-flight op — the backlog requeues onto the respawn.
  std::deque<std::uint64_t> queued;
  /// Timestamp of the last parsed line from this worker (heartbeats count);
  /// the liveness check compares it against the heartbeat timeout.
  std::chrono::steady_clock::time_point last_line;
  /// Kill escalation: 0 = healthy, 1 = SIGTERM sent, 2 = SIGKILL sent.
  int escalation = 0;
  std::chrono::steady_clock::time_point escalated_at;
  /// True when the server itself killed this worker (hang escalation) —
  /// its lost jobs report verdict "hung", not "crash".
  bool killed_for_hang = false;
};

struct ClientConn {
  LineBuffer buf;
  std::string out;  ///< queued outbound bytes, drained on POLLOUT
};

struct Submission;

/// One request queued on or in flight on some worker.
struct PendingOp {
  std::uint64_t sub = 0;
  enum class Kind { kJob, kGolden, kFiChunk } kind = Kind::kJob;
  std::size_t worker = 0;
  std::size_t job_index = 0;             ///< kJob: results slot
  std::vector<std::size_t> indices;      ///< kFiChunk: fault indices
  std::set<std::size_t> received;        ///< kFiChunk: already streamed
  std::string line;                      ///< wire message, id substituted
  bool sent = false;
  /// kJob with a wall budget: when the server stops waiting for the worker
  /// to enforce the budget itself and escalates (send time + budget +
  /// deadline grace).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  double wall_budget_s = 0;
  /// Last instret the worker heartbeated for this op — lets a hung job
  /// report how far it got before the kill.
  std::uint64_t progress_instret = 0;
};

struct Submission {
  std::uint64_t key = 0;        ///< server-internal
  std::uint64_t client_id = 0;  ///< client-chosen, echoed in every event
  int client_fd = -1;           ///< -1 once the client vanished
  bool is_fi = false;

  // fi submissions
  fi::FiSuiteSpec fspec;
  std::size_t shard_workers = 1;
  std::optional<fi::FiSuite> suite;  ///< built once the golden arrives
  std::map<std::string, std::size_t> name_to_index;
  fi::ForkStats fork;

  // spec submissions
  campaign::CampaignSpec cspec;

  std::vector<campaign::JobResult> results;
  std::size_t outstanding_ops = 0;
  CacheStats service;  ///< summed worker deltas for this submission
  std::chrono::steady_clock::time_point t0;
  /// A drain cut this submission short: queued-but-unsent jobs were skipped
  /// and the report carries "interrupted": true.
  bool interrupted = false;
};

class Server {
 public:
  explicit Server(const ServerOptions& opts) : opts_(opts) {}
  int run();

 private:
  // -- lifecycle --
  bool setup();
  void teardown();
  void spawn_worker(std::size_t slot);
  void close_fds_in_child(int keep);

  // -- event handling --
  void handle_signals();
  void handle_timers();
  void accept_client();
  void read_client(int fd);
  void read_worker(std::size_t w);
  void handle_client_line(int fd, const std::string& line);
  void handle_worker_line(std::size_t w, const std::string& line);
  void worker_gone(std::size_t w);
  void drop_client(int fd);
  void escalate_worker(std::size_t w, const char* reason);
  std::optional<std::chrono::steady_clock::time_point> next_deadline() const;

  // -- submissions --
  void submit_ref(int fd, std::uint64_t id, const std::string& ref,
                  std::uint64_t seed, std::size_t want_workers);
  void submit_spec(int fd, std::uint64_t id, const std::string& text,
                   bool analyze);
  void golden_arrived(Submission& sub, const campaign::JobResult& golden);
  void op_failed(std::uint64_t op_id, const std::string& error,
                 const char* verdict = "crash");
  void maybe_finish(Submission& sub);
  void finish_fi(Submission& sub);
  void finish_spec(Submission& sub);
  void fail_submission(Submission& sub, const std::string& error);
  void drop_submission(std::uint64_t key);
  void begin_drain();
  void shed_backlog();
  std::size_t total_load() const;
  bool shed_if_overloaded(int fd, std::uint64_t id, std::size_t new_ops);

  // -- plumbing --
  std::uint64_t send_op(std::size_t w, PendingOp op, const std::string& line);
  void pump_worker(std::size_t w);
  bool send_worker(std::size_t w, const std::string& line);
  void send_client(int fd, const std::string& line);
  void to_client(const Submission& sub, const std::string& line);
  void relay_job(const Submission& sub, const campaign::JobResult& r);
  void note(const char* fmt, ...);
  bool draining_done() const { return draining_ && subs_.empty(); }

  ServerOptions opts_;
  int listen_fd_ = -1;
  int sigpipe_rd_ = -1;
  std::vector<WorkerProc> workers_;
  std::map<int, ClientConn> clients_;
  std::map<std::uint64_t, PendingOp> ops_;
  std::map<std::uint64_t, Submission> subs_;
  std::uint64_t next_op_ = 1;
  std::uint64_t next_sub_ = 1;
  CacheStats totals_;
  bool draining_ = false;
  std::chrono::steady_clock::time_point last_client_hb_;

  /// A client whose outbound queue exceeds this stopped reading long ago;
  /// it gets dropped rather than accumulating reports without bound.
  static constexpr std::size_t kMaxClientQueue = 64u << 20;
  /// Ops in flight per worker. One: workers execute serially anyway, and a
  /// single in-flight op keeps job-deadline clocks honest (a buffered
  /// second job's budget must not tick while the first still runs) and
  /// bounds what a worker death can lose.
  static constexpr std::size_t kMaxInflight = 1;
};

void Server::note(const char* fmt, ...) {
  if (opts_.quiet) return;
  va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "vpdift-serve: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
}

void Server::close_fds_in_child(int keep) {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (sigpipe_rd_ >= 0) ::close(sigpipe_rd_);
  if (g_sigpipe_wr >= 0) ::close(g_sigpipe_wr);
  for (const WorkerProc& w : workers_)
    if (w.fd >= 0 && w.fd != keep) ::close(w.fd);
  for (const auto& [fd, c] : clients_) ::close(fd);
}

void Server::spawn_worker(std::size_t slot) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
    throw std::runtime_error("socketpair failed");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw std::runtime_error("fork failed");
  }
  if (pid == 0) {
    // Child: drop every parent-side fd, restore default signal dispositions
    // (the worker should die on SIGINT like any batch process; the parent
    // handles campaign-level grace), run the loop.
    ::close(sv[0]);
    close_fds_in_child(sv[1]);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGCHLD, SIG_DFL);
    WorkerConfig wcfg;
    wcfg.heartbeat_ms = opts_.heartbeat_ms;
    ::_exit(worker_main(sv[1], wcfg));
  }
  ::close(sv[1]);
  set_nonblocking(sv[0]);
  workers_[slot].pid = pid;
  workers_[slot].fd = sv[0];
  workers_[slot].buf = LineBuffer();
  workers_[slot].out.clear();  // queued lines belonged to the dead worker
  workers_[slot].outstanding.clear();
  workers_[slot].queued.clear();
  workers_[slot].last_line = std::chrono::steady_clock::now();
  workers_[slot].escalation = 0;
  workers_[slot].killed_for_hang = false;
}

bool Server::setup() {
  ::signal(SIGPIPE, SIG_IGN);

  int sp[2];
  if (::pipe(sp) != 0) {
    std::fprintf(stderr, "vpdift-serve: pipe failed\n");
    return false;
  }
  // Both ends nonblocking: the drain loop must stop at an empty pipe (a
  // blocking read here would freeze the daemon until the NEXT signal), and
  // the handler's write must never block on a full pipe.
  set_nonblocking(sp[0]);
  set_nonblocking(sp[1]);
  sigpipe_rd_ = sp[0];
  g_sigpipe_wr = sp[1];

  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGCHLD, &sa, nullptr);
  sa.sa_flags = 0;  // interrupt poll() so the drain check runs promptly
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "vpdift-serve: socket failed\n");
    return false;
  }
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "vpdift-serve: socket path too long: %s\n",
                 opts_.socket_path.c_str());
    return false;
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);
  ::unlink(opts_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    std::fprintf(stderr, "vpdift-serve: cannot listen on %s: %s\n",
                 opts_.socket_path.c_str(), std::strerror(errno));
    return false;
  }

  workers_.resize(std::max<std::size_t>(1, opts_.workers));
  for (std::size_t i = 0; i < workers_.size(); ++i) spawn_worker(i);
  note("listening on %s, %zu workers", opts_.socket_path.c_str(),
       workers_.size());
  return true;
}

void Server::teardown() {
  for (WorkerProc& w : workers_) {
    if (w.fd >= 0) {
      w.out += "{\"op\":\"quit\"}\n";
      flush_queue(w.fd, w.out);  // best effort; close() is EOF = quit too
      ::close(w.fd);
      w.fd = -1;
    }
  }
  // Bounded reap: workers normally exit on quit/EOF, but one that is
  // stopped or wedged would block a plain waitpid forever — after the grace
  // it is SIGKILLed, so shutdown always completes and leaves no zombies.
  const auto reap_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max<std::uint64_t>(opts_.kill_grace_ms, 100));
  for (WorkerProc& w : workers_) {
    while (w.pid > 0) {
      int status = 0;
      const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
      if (got == w.pid || (got < 0 && errno != EINTR)) {
        w.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= reap_deadline) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, &status, 0);
        w.pid = -1;
        break;
      }
      struct timespec ts {0, 5 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
    }
  }
  for (auto& [fd, c] : clients_) ::close(fd);
  clients_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(opts_.socket_path.c_str());
  if (sigpipe_rd_ >= 0) ::close(sigpipe_rd_);
  if (g_sigpipe_wr >= 0) {
    ::close(g_sigpipe_wr);
    g_sigpipe_wr = -1;
  }
}

int Server::run() {
  if (!setup()) return 2;
  while (!draining_done()) {
    std::vector<struct pollfd> pfds;
    std::vector<int> what;  // -1 = listen, -2 = sigpipe, >=0 worker, else client
    pfds.push_back({listen_fd_, POLLIN, 0});
    what.push_back(-1);
    pfds.push_back({sigpipe_rd_, POLLIN, 0});
    what.push_back(-2);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (workers_[w].fd < 0) continue;
      const short ev =
          static_cast<short>(POLLIN | (workers_[w].out.empty() ? 0 : POLLOUT));
      pfds.push_back({workers_[w].fd, ev, 0});
      what.push_back(static_cast<int>(w));
    }
    for (const auto& [fd, c] : clients_) {
      const short ev =
          static_cast<short>(POLLIN | (c.out.empty() ? 0 : POLLOUT));
      pfds.push_back({fd, ev, 0});
      what.push_back(-3 - fd);  // encode client fd
    }

    // Timer wheel: sleep until the nearest liveness/deadline/heartbeat
    // event instead of forever (-1 only when nothing is armed).
    int timeout = -1;
    if (const auto next = next_deadline()) {
      const auto d = std::chrono::duration_cast<std::chrono::milliseconds>(
                         *next - std::chrono::steady_clock::now())
                         .count();
      timeout = static_cast<int>(
          std::min<long long>(std::max<long long>(d, 0) + 1, 60000));
    }
    const int rc = ::poll(pfds.data(), pfds.size(), timeout);
    if (rc < 0) {
      if (errno == EINTR) {
        handle_signals();
        handle_timers();
        continue;
      }
      break;
    }
    handle_signals();
    handle_timers();
    for (std::size_t i = 0; i < pfds.size() && !draining_done(); ++i) {
      const short re = pfds[i].revents;
      if (!re) continue;
      const int tag = what[i];
      if (tag == -1) {
        if (re & POLLIN) accept_client();
      } else if (tag == -2) {
        char buf[64];
        while (::read(sigpipe_rd_, buf, sizeof buf) > 0) {
        }
        // flags already handled above
      } else if (tag >= 0) {
        const auto w = static_cast<std::size_t>(tag);
        // handle_signals() (or an earlier entry this pass) may have reaped
        // and respawned this worker; its old fd's revents are stale — never
        // apply them to the fresh socket. An fd-number reuse slips past the
        // compare, but the fds are nonblocking so a stale POLLIN/POLLHUP
        // just reads EAGAIN instead of wedging the loop.
        if (workers_[w].fd != pfds[i].fd) continue;
        if ((re & POLLOUT) &&
            !flush_queue(workers_[w].fd, workers_[w].out)) {
          worker_gone(w);
          continue;
        }
        if (re & (POLLIN | POLLHUP | POLLERR)) read_worker(w);
      } else {
        const int fd = -3 - tag;
        auto it = clients_.find(fd);
        if (it == clients_.end()) continue;  // dropped earlier this pass
        if ((re & POLLOUT) && !flush_queue(fd, it->second.out)) {
          drop_client(fd);
          continue;
        }
        if (re & (POLLIN | POLLHUP | POLLERR)) read_client(fd);
      }
    }
  }
  note("shutting down");
  teardown();
  return 0;
}

void Server::begin_drain() {
  if (draining_) return;
  draining_ = true;
  note("drain requested: finishing %zu in-flight submission(s)",
       subs_.size());
  shed_backlog();
}

void Server::shed_backlog() {
  // Resolve every accepted-but-unsent op without running it: spec jobs and
  // fi faults become verdict "skipped" and their submissions finish as
  // partial reports marked "interrupted". In-flight ops keep running.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    std::deque<std::uint64_t> backlog;
    backlog.swap(workers_[w].queued);
    for (const std::uint64_t op_id : backlog) {
      auto it = ops_.find(op_id);
      if (it == ops_.end()) continue;  // submission already torn down
      const PendingOp op = std::move(it->second);
      ops_.erase(it);
      auto sit = subs_.find(op.sub);
      if (sit == subs_.end()) continue;
      Submission& sub = sit->second;
      sub.interrupted = true;
      switch (op.kind) {
        case PendingOp::Kind::kGolden:
          fail_submission(sub, "server draining before the golden run started");
          break;
        case PendingOp::Kind::kJob: {
          campaign::JobResult r;
          r.name = sub.cspec.jobs[op.job_index].name;
          r.verdict = "skipped";
          r.error = "server draining";
          // Deliberately not relayed: the job never ran, and the final
          // report already says so via "interrupted".
          sub.results[op.job_index] = std::move(r);
          --sub.outstanding_ops;
          maybe_finish(sub);
          break;
        }
        case PendingOp::Kind::kFiChunk: {
          for (const std::size_t i : op.indices) {
            if (op.received.count(i)) continue;
            sub.results[i].name = sub.suite->jobs.jobs[i].name;
            sub.results[i].verdict = "skipped";
          }
          --sub.outstanding_ops;
          maybe_finish(sub);
          break;
        }
      }
    }
  }
}

void Server::handle_signals() {
  if (g_sigterm) {
    g_sigterm = 0;
    begin_drain();
  }
  if (g_sigchld) {
    g_sigchld = 0;
    for (;;) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid <= 0) break;
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        if (workers_[w].pid == pid) {
          workers_[w].pid = -1;
          worker_gone(w);
          break;
        }
      }
    }
  }
}

void Server::escalate_worker(std::size_t w, const char* reason) {
  WorkerProc& wp = workers_[w];
  if (wp.pid <= 0 || wp.escalation > 0) return;
  note("worker %zu: %s; sending SIGTERM", w, reason);
  wp.killed_for_hang = true;
  wp.escalation = 1;
  wp.escalated_at = std::chrono::steady_clock::now();
  ::kill(wp.pid, SIGTERM);
}

std::optional<std::chrono::steady_clock::time_point> Server::next_deadline()
    const {
  std::optional<std::chrono::steady_clock::time_point> next;
  const auto consider = [&](std::chrono::steady_clock::time_point t) {
    if (!next || t < *next) next = t;
  };
  const bool hb_on = opts_.heartbeat_ms > 0 && opts_.heartbeat_timeout_ms > 0;
  for (const WorkerProc& wp : workers_) {
    if (wp.pid <= 0) continue;
    if (wp.escalation == 1)
      consider(wp.escalated_at +
               std::chrono::milliseconds(opts_.kill_grace_ms));
    else if (wp.escalation == 0 && hb_on && !wp.outstanding.empty())
      consider(wp.last_line +
               std::chrono::milliseconds(opts_.heartbeat_timeout_ms));
  }
  for (const auto& [id, op] : ops_)
    if (op.sent && op.deadline) consider(*op.deadline);
  if (opts_.heartbeat_ms > 0) {
    for (const auto& [key, sub] : subs_) {
      if (sub.client_fd < 0) continue;
      consider(last_client_hb_ + std::chrono::milliseconds(opts_.heartbeat_ms));
      break;
    }
  }
  return next;
}

void Server::handle_timers() {
  const auto now = std::chrono::steady_clock::now();
  const bool hb_on = opts_.heartbeat_ms > 0 && opts_.heartbeat_timeout_ms > 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerProc& wp = workers_[w];
    if (wp.pid <= 0) continue;
    if (wp.escalation == 1) {
      if (now - wp.escalated_at >=
          std::chrono::milliseconds(opts_.kill_grace_ms)) {
        // SIGTERM pends forever on a stopped process; SIGKILL does not.
        note("worker %zu ignored SIGTERM; sending SIGKILL", w);
        ::kill(wp.pid, SIGKILL);
        wp.escalation = 2;
        wp.escalated_at = now;
      }
      continue;
    }
    if (wp.escalation >= 2) continue;  // death arrives via SIGCHLD
    if (hb_on && !wp.outstanding.empty() &&
        now - wp.last_line >=
            std::chrono::milliseconds(opts_.heartbeat_timeout_ms)) {
      ++totals_.heartbeat_misses;
      escalate_worker(w, "busy but silent past the heartbeat timeout");
      continue;
    }
    for (const std::uint64_t op_id : wp.outstanding) {
      const auto it = ops_.find(op_id);
      if (it == ops_.end()) continue;
      if (it->second.deadline && now >= *it->second.deadline) {
        escalate_worker(w, "job ran past its wall budget plus grace");
        break;
      }
    }
  }
  // Keep clients with active submissions assured the server is alive even
  // when no job has finished in a while (their idle timers reset on any
  // line, heartbeats included).
  if (opts_.heartbeat_ms > 0 &&
      now - last_client_hb_ >= std::chrono::milliseconds(opts_.heartbeat_ms)) {
    last_client_hb_ = now;
    for (auto& [key, sub] : subs_) {
      if (sub.client_fd < 0) continue;
      send_client(sub.client_fd,
                  "{\"event\":\"hb\",\"id\":" + std::to_string(sub.client_id) +
                      "}");
    }
  }
}

std::size_t Server::total_load() const {
  std::size_t n = 0;
  for (const WorkerProc& wp : workers_)
    n += wp.outstanding.size() + wp.queued.size();
  return n;
}

bool Server::shed_if_overloaded(int fd, std::uint64_t id,
                                std::size_t new_ops) {
  if (opts_.max_queued == 0) return false;
  const std::size_t cap = opts_.max_queued * workers_.size();
  const std::size_t load = total_load();
  if (load + new_ops <= cap) return false;
  ++totals_.shed_submissions;
  const std::uint64_t retry_ms =
      200 + 150 * (load / std::max<std::size_t>(1, workers_.size()));
  send_client(fd, "{\"event\":\"error\",\"id\":" + std::to_string(id) +
                      ",\"error\":\"overloaded\",\"retry_after_ms\":" +
                      std::to_string(retry_ms) + "}");
  note("shed submission %llu: %zu queued + %zu new > cap %zu",
       static_cast<unsigned long long>(id), load, new_ops, cap);
  return true;
}

void Server::accept_client() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;
  set_nonblocking(fd);
  clients_[fd];
}

void Server::drop_client(int fd) {
  // Orphan this client's submissions: they finish, results are dropped.
  for (auto& [key, sub] : subs_)
    if (sub.client_fd == fd) sub.client_fd = -1;
  ::close(fd);
  clients_.erase(fd);
}

void Server::read_client(int fd) {
  char buf[8192];
  const ssize_t n = ::read(fd, buf, sizeof buf);
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
    return;  // stale or spurious wakeup on the nonblocking fd
  if (n <= 0) {
    drop_client(fd);
    return;
  }
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  it->second.buf.feed(buf, static_cast<std::size_t>(n));
  std::string line;
  while (clients_.count(fd) && it->second.buf.pop(&line))
    handle_client_line(fd, line);
}

void Server::read_worker(std::size_t w) {
  char buf[65536];
  const ssize_t n = ::read(workers_[w].fd, buf, sizeof buf);
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
    return;  // stale wakeup (e.g. a respawn reused the old fd number)
  if (n <= 0) {
    worker_gone(w);
    return;
  }
  workers_[w].buf.feed(buf, static_cast<std::size_t>(n));
  std::string line;
  while (workers_[w].fd >= 0 && workers_[w].buf.pop(&line))
    handle_worker_line(w, line);
  // Retired ops opened send slots; move the backlog along.
  if (workers_[w].fd >= 0) pump_worker(w);
}

void Server::handle_client_line(int fd, const std::string& line) {
  JsonValue msg;
  try {
    msg = campaign::json_parse(line);
  } catch (const std::exception& e) {
    send_client(fd, std::string("{\"event\":\"error\",\"id\":0,\"error\":") +
                        campaign::json_quote(e.what()) + "}");
    return;
  }
  const std::string op = msg.str_or("op");
  const std::uint64_t id = msg.u64_or("id", 0);
  if (op == "ping") {
    send_client(fd, "{\"event\":\"pong\"}");
    return;
  }
  if (op == "stats") {
    CacheStats live = totals_;
    send_client(fd,
                "{\"event\":\"stats\",\"service\":" + live.to_json() + "}");
    return;
  }
  if (op == "shutdown") {
    send_client(fd, "{\"event\":\"bye\"}");
    begin_drain();
    return;
  }
  if (op != "submit") {
    send_client(fd, "{\"event\":\"error\",\"id\":" + std::to_string(id) +
                        ",\"error\":\"unknown op\"}");
    return;
  }
  if (draining_) {
    send_client(fd, "{\"event\":\"error\",\"id\":" + std::to_string(id) +
                        ",\"error\":\"server is draining\"}");
    return;
  }
  if (const JsonValue* ref = msg.find("ref");
      ref && ref->kind == JsonValue::Kind::kString) {
    submit_ref(fd, id, ref->string, msg.u64_or("seed", 1),
               static_cast<std::size_t>(
                   msg.u64_or("workers", workers_.size())));
    return;
  }
  if (const JsonValue* spec = msg.find("spec");
      spec && spec->kind == JsonValue::Kind::kString) {
    submit_spec(fd, id, spec->string, msg.bool_or("analyze", false));
    return;
  }
  send_client(fd, "{\"event\":\"error\",\"id\":" + std::to_string(id) +
                      ",\"error\":\"submit needs a ref or a spec\"}");
}

std::uint64_t Server::send_op(std::size_t w, PendingOp op,
                              const std::string& line) {
  const std::uint64_t op_id = next_op_++;
  op.worker = w;
  // The line carries a %ID% placeholder so callers can build the message
  // before the id exists.
  std::string out = line;
  const std::size_t at = out.find("%ID%");
  if (at != std::string::npos)
    out.replace(at, 4, std::to_string(op_id));
  op.line = std::move(out);
  ops_[op_id] = std::move(op);
  workers_[w].queued.push_back(op_id);
  // NOTE: pumping can fail the op synchronously (dead worker, fatal send),
  // which can tear down the whole submission; callers must not touch a
  // Submission& across a send_op without re-checking subs_.
  pump_worker(w);
  return op_id;
}

void Server::pump_worker(std::size_t w) {
  WorkerProc& wp = workers_[w];
  if (wp.fd < 0) {
    // Dead and not respawned (drain, or a failed respawn): nothing will
    // ever drain this queue, so fail it now.
    std::deque<std::uint64_t> dead;
    dead.swap(wp.queued);
    for (const std::uint64_t op_id : dead)
      op_failed(op_id, "worker unavailable");
    return;
  }
  while (wp.fd >= 0 && !wp.queued.empty() &&
         wp.outstanding.size() < kMaxInflight) {
    const std::uint64_t op_id = wp.queued.front();
    wp.queued.pop_front();
    const auto it = ops_.find(op_id);
    if (it == ops_.end()) continue;  // dropped while queued
    PendingOp& op = it->second;
    op.sent = true;
    if (op.kind == PendingOp::Kind::kJob && op.wall_budget_s > 0) {
      op.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(op.wall_budget_s)) +
          std::chrono::milliseconds(opts_.deadline_grace_ms);
    }
    wp.outstanding.push_back(op_id);
    // On failure send_worker runs worker_gone, which fails every op on
    // this worker (including this one) and requeues nothing sendable — so
    // just stop pumping.
    if (!send_worker(w, op.line)) return;
  }
}

bool Server::send_worker(std::size_t w, const std::string& line) {
  WorkerProc& wp = workers_[w];
  if (wp.fd < 0) return false;
  wp.out += line;
  wp.out += '\n';
  // Opportunistic flush; whatever the pipe doesn't take now drains on
  // POLLOUT. Crucially this never blocks, even when the worker is itself
  // blocked writing a large reply the parent hasn't read yet.
  if (!flush_queue(wp.fd, wp.out)) {
    worker_gone(w);
    return false;
  }
  return true;
}

void Server::send_client(int fd, const std::string& line) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;  // client already vanished
  std::string& q = it->second.out;
  q += line;
  q += '\n';
  if (!flush_queue(fd, q) || q.size() > kMaxClientQueue) drop_client(fd);
}

void Server::submit_ref(int fd, std::uint64_t id, const std::string& ref,
                        std::uint64_t seed, std::size_t want_workers) {
  fi::FiSuiteSpec fspec;
  if (!fi::parse_fi_ref(ref, &fspec)) {
    send_client(fd, "{\"event\":\"error\",\"id\":" + std::to_string(id) +
                        ",\"error\":\"bad ref (want fi:<benchmark>:<n>)\"}");
    return;
  }
  fspec.seed = seed;
  // Admission estimate: the golden op now plus one chunk per shard later.
  if (shed_if_overloaded(
          fd, id,
          1 + std::min({want_workers, workers_.size(), fspec.n_faults})))
    return;
  const std::uint64_t key = next_sub_++;
  Submission& sub = subs_[key];
  sub.key = key;
  sub.client_id = id;
  sub.client_fd = fd;
  sub.is_fi = true;
  sub.fspec = fspec;
  sub.shard_workers =
      std::max<std::size_t>(1, std::min({want_workers, workers_.size(),
                                         fspec.n_faults}));
  sub.t0 = std::chrono::steady_clock::now();
  send_client(fd, "{\"event\":\"accepted\",\"id\":" + std::to_string(id) +
                      ",\"jobs\":" + std::to_string(fspec.n_faults) + "}");
  if (!clients_.count(fd)) sub.client_fd = -1;  // dropped while accepting
  // The golden runs on the suite's owner worker — the one whose warm caches
  // accumulate this suite's snapshots — picked by content hash so repeat
  // submissions land on the same process.
  const std::size_t owner = static_cast<std::size_t>(
      fnv1a64_u64(seed, fnv1a64(fspec.benchmark)) % workers_.size());
  PendingOp op;
  op.sub = key;
  op.kind = PendingOp::Kind::kGolden;
  sub.outstanding_ops = 1;
  send_op(owner, std::move(op),
          "{\"op\":\"fi-golden\",\"id\":%ID%,\"benchmark\":" +
              campaign::json_quote(fspec.benchmark) +
              ",\"seed\":" + std::to_string(fspec.seed) +
              ",\"n\":" + std::to_string(fspec.n_faults) + "}");
  // A failed send has already failed (and freed) the submission.
  if (!subs_.count(key)) return;
  note("sub %llu: %s seed %llu -> golden on worker %zu",
       static_cast<unsigned long long>(key), ref.c_str(),
       static_cast<unsigned long long>(seed), owner);
}

void Server::submit_spec(int fd, std::uint64_t id, const std::string& text,
                         bool analyze) {
  campaign::CampaignSpec cspec;
  try {
    cspec = campaign::CampaignSpec::parse(text);
  } catch (const std::exception& e) {
    send_client(fd, "{\"event\":\"error\",\"id\":" + std::to_string(id) +
                        ",\"error\":" + campaign::json_quote(e.what()) + "}");
    return;
  }
  if (analyze)
    for (campaign::JobSpec& j : cspec.jobs) j.analyze = true;
  // Server-side resource caps clamp every client budget BEFORE the spec is
  // serialized for the workers, so the wire jobs, the affinity hashes and
  // the enforced limits all agree. A job with no budget of its own gets the
  // cap outright — no submission may hold a worker forever.
  for (campaign::JobSpec& j : cspec.jobs) {
    if (opts_.max_job_wall_s > 0 &&
        (j.wall_budget_s == 0 || j.wall_budget_s > opts_.max_job_wall_s))
      j.wall_budget_s = opts_.max_job_wall_s;
    if (opts_.max_job_mem_mb > 0 &&
        (j.mem_budget_mb == 0 || j.mem_budget_mb > opts_.max_job_mem_mb))
      j.mem_budget_mb = opts_.max_job_mem_mb;
  }
  if (shed_if_overloaded(fd, id, cspec.jobs.size())) return;
  const std::uint64_t key = next_sub_++;
  Submission& sub = subs_[key];
  sub.key = key;
  sub.client_id = id;
  sub.client_fd = fd;
  sub.cspec = std::move(cspec);
  sub.results.resize(sub.cspec.jobs.size());
  sub.shard_workers = workers_.size();
  sub.t0 = std::chrono::steady_clock::now();
  send_client(fd, "{\"event\":\"accepted\",\"id\":" + std::to_string(id) +
                      ",\"jobs\":" + std::to_string(sub.cspec.jobs.size()) +
                      "}");
  if (!clients_.count(fd)) sub.client_fd = -1;  // dropped while accepting
  if (sub.cspec.jobs.empty()) {
    finish_spec(sub);
    return;
  }
  sub.outstanding_ops = sub.cspec.jobs.size();
  // Build the whole fan-out before sending any of it: a failing send_op
  // fails its op synchronously, and when every op has failed the submission
  // finishes and is freed mid-loop — `sub` must not be read after that.
  std::vector<std::pair<std::size_t, std::string>> fan;
  fan.reserve(sub.cspec.jobs.size());
  for (std::size_t i = 0; i < sub.cspec.jobs.size(); ++i) {
    const std::string spec_json =
        campaign::job_spec_to_json(sub.cspec.jobs[i]);
    // Content-hash affinity: an identical job resubmitted later lands on
    // the same worker and hits that worker's warm caches.
    const std::size_t w =
        static_cast<std::size_t>(fnv1a64(spec_json) % workers_.size());
    fan.emplace_back(w,
                     "{\"op\":\"job\",\"id\":%ID%,\"spec\":" + spec_json + "}");
  }
  for (std::size_t i = 0; i < fan.size(); ++i) {
    PendingOp op;
    op.sub = key;
    op.kind = PendingOp::Kind::kJob;
    op.job_index = i;
    op.wall_budget_s = sub.cspec.jobs[i].wall_budget_s;
    send_op(fan[i].first, std::move(op), fan[i].second);
    if (!subs_.count(key)) return;  // every op failed; already reported
  }
}

void Server::golden_arrived(Submission& sub,
                            const campaign::JobResult& golden) {
  try {
    sub.suite.emplace(fi::suite_from_golden(sub.fspec, golden));
  } catch (const std::exception& e) {
    fail_submission(sub, e.what());
    return;
  }
  const fi::FiSuite& suite = *sub.suite;
  const std::size_t n = suite.faults.size();
  sub.results.assign(n, campaign::JobResult{});
  for (std::size_t i = 0; i < n; ++i)
    sub.name_to_index[suite.jobs.jobs[i].name] = i;

  const std::string golden_json = job_result_to_json(suite.golden);
  const std::size_t shards = std::max<std::size_t>(
      1, std::min(sub.shard_workers, n));
  const std::uint64_t key = sub.key;
  // Build every chunk before sending any: a failing send_op can fail the
  // last outstanding chunk, finish the submission and free `sub` mid-loop.
  struct Chunk {
    std::size_t worker = 0;
    PendingOp op;
    std::string line;
  };
  std::vector<Chunk> chunks(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    Chunk& c = chunks[s];
    c.worker = s % workers_.size();
    c.op.sub = key;
    c.op.kind = PendingOp::Kind::kFiChunk;
    std::string idx;
    for (std::size_t i = 0; i < n; ++i) {
      if (i * shards / n != s) continue;
      c.op.indices.push_back(i);
      idx += (idx.empty() ? "" : ",") + std::to_string(i);
    }
    c.line = "{\"op\":\"fi\",\"id\":%ID%,\"benchmark\":" +
             campaign::json_quote(sub.fspec.benchmark) +
             ",\"seed\":" + std::to_string(sub.fspec.seed) +
             ",\"n\":" + std::to_string(sub.fspec.n_faults) +
             ",\"golden\":" + golden_json + ",\"indices\":[" + idx + "]}";
  }
  sub.outstanding_ops = shards;
  for (Chunk& c : chunks) {
    send_op(c.worker, std::move(c.op), c.line);
    if (!subs_.count(key)) return;  // chunk failures ended the submission
  }
  note("sub %llu: golden done, %zu faults across %zu workers",
       static_cast<unsigned long long>(key), n, shards);
}

void Server::handle_worker_line(std::size_t w, const std::string& line) {
  // Any parsed line proves the worker alive — results and heartbeats alike
  // reset its liveness clock.
  workers_[w].last_line = std::chrono::steady_clock::now();
  JsonValue msg;
  try {
    msg = campaign::json_parse(line);
  } catch (const std::exception&) {
    return;  // a garbled worker line; the op times out via worker death
  }
  const std::string ev = msg.str_or("ev");
  const std::uint64_t op_id = msg.u64_or("id", 0);
  auto oit = ops_.find(op_id);
  if (ev == "hb") {
    // Heartbeat: id 0 = idle (clock reset above is all it carries); a
    // nonzero id names the executing op, whose live progress feeds the
    // "hung at N instructions" diagnostics.
    if (oit != ops_.end())
      oit->second.progress_instret = msg.u64_or("instret", 0);
    return;
  }
  if (oit == ops_.end()) return;  // late event for a dropped submission
  PendingOp& op = oit->second;
  auto sit = subs_.find(op.sub);

  if (ev == "job") {
    // Streaming fi fault result.
    if (sit == subs_.end()) return;
    Submission& sub = sit->second;
    const JsonValue* rv = msg.find("result");
    if (!rv) return;
    campaign::JobResult r;
    try {
      r = job_result_from_json(*rv);
    } catch (const std::exception&) {
      return;
    }
    const auto ni = sub.name_to_index.find(r.name);
    if (ni == sub.name_to_index.end()) return;
    op.received.insert(ni->second);
    relay_job(sub, r);
    sub.results[ni->second] = std::move(r);
    return;
  }

  if (ev == "error") {
    op_failed(op_id, msg.str_or("error", "worker error"));
    return;
  }
  if (ev != "result") return;

  // Final event: the op is complete — retire it from the worker's FIFO.
  // (The next queued op is pumped by read_worker once this batch of lines
  // is drained; pumping here would invalidate the references below.)
  auto& fifo = workers_[op.worker].outstanding;
  for (std::size_t i = 0; i < fifo.size(); ++i) {
    if (fifo[i] == op_id) {
      fifo.erase(fifo.begin() + i);
      break;
    }
  }
  if (const JsonValue* st = msg.find("stats");
      st && st->kind == JsonValue::Kind::kObject) {
    const CacheStats delta = cache_stats_from_json(*st);
    totals_ += delta;
    if (sit != subs_.end()) sit->second.service += delta;
  }
  if (sit == subs_.end()) {
    ops_.erase(oit);
    return;
  }
  Submission& sub = sit->second;

  switch (op.kind) {
    case PendingOp::Kind::kGolden: {
      ops_.erase(oit);
      sub.outstanding_ops = 0;
      const JsonValue* rv = msg.find("result");
      campaign::JobResult golden;
      try {
        if (!rv) throw std::runtime_error("golden result missing");
        golden = job_result_from_json(*rv);
      } catch (const std::exception& e) {
        fail_submission(sub, e.what());
        return;
      }
      if (golden.verdict == "crash") {
        fail_submission(sub, "fi golden run crashed: " + golden.error);
        return;
      }
      golden_arrived(sub, golden);
      return;
    }
    case PendingOp::Kind::kJob: {
      const JsonValue* rv = msg.find("result");
      campaign::JobResult r;
      try {
        if (!rv) throw std::runtime_error("result missing");
        r = job_result_from_json(*rv);
      } catch (const std::exception& e) {
        r = campaign::JobResult{};
        r.name = sub.cspec.jobs[op.job_index].name;
        r.verdict = "crash";
        r.error = e.what();
        r.attempts = 1;
        r.history = {{r.verdict, r.error}};
      }
      relay_job(sub, r);
      sub.results[op.job_index] = std::move(r);
      ops_.erase(oit);
      --sub.outstanding_ops;
      maybe_finish(sub);
      return;
    }
    case PendingOp::Kind::kFiChunk: {
      if (const JsonValue* fk = msg.find("fork");
          fk && fk->kind == JsonValue::Kind::kObject) {
        const fi::ForkStats f = fork_stats_from_json(*fk);
        sub.fork.golden_instret += f.golden_instret;
        sub.fork.tail_instret += f.tail_instret;
        sub.fork.replay_instret += f.replay_instret;
        sub.fork.snapshots += f.snapshots;
      }
      if (const JsonValue* sk = msg.find("skipped");
          sk && sk->kind == JsonValue::Kind::kArray) {
        for (const JsonValue& e : sk->array) {
          const auto i = static_cast<std::size_t>(e.number);
          if (i < sub.results.size() &&
              sub.results[i].verdict.empty()) {
            sub.results[i].name = sub.suite->jobs.jobs[i].name;
            sub.results[i].verdict = "skipped";
          }
        }
      }
      ops_.erase(oit);
      --sub.outstanding_ops;
      maybe_finish(sub);
      return;
    }
  }
}

void Server::op_failed(std::uint64_t op_id, const std::string& error,
                       const char* verdict) {
  auto oit = ops_.find(op_id);
  if (oit == ops_.end()) return;
  const PendingOp op = std::move(oit->second);
  ops_.erase(oit);
  auto& fifo = workers_[op.worker].outstanding;
  for (std::size_t i = 0; i < fifo.size(); ++i) {
    if (fifo[i] == op_id) {
      fifo.erase(fifo.begin() + i);
      break;
    }
  }
  auto& q = workers_[op.worker].queued;
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (*it == op_id) {
      q.erase(it);
      break;
    }
  }
  pump_worker(op.worker);  // a slot may have opened; `op` is a copy, safe
  const bool hung = std::strcmp(verdict, "hung") == 0;
  auto sit = subs_.find(op.sub);
  if (sit == subs_.end()) return;
  Submission& sub = sit->second;
  switch (op.kind) {
    case PendingOp::Kind::kGolden:
      if (hung) ++totals_.hung_jobs;
      fail_submission(sub, error);
      return;
    case PendingOp::Kind::kJob: {
      campaign::JobResult r;
      r.name = sub.cspec.jobs[op.job_index].name;
      r.verdict = verdict;
      r.error = error;
      r.attempts = 1;
      if (hung) {
        // How far the job got before the kill, from the worker's last
        // heartbeat — the "same instret twice = deterministic hang" signal
        // the retry policy keys on.
        r.run.instret = op.progress_instret;
        ++totals_.hung_jobs;
        ++sub.service.hung_jobs;
      }
      r.history = {{r.verdict, r.error, r.run.instret}};
      relay_job(sub, r);
      sub.results[op.job_index] = std::move(r);
      --sub.outstanding_ops;
      maybe_finish(sub);
      return;
    }
    case PendingOp::Kind::kFiChunk: {
      // Faults the chunk had not streamed yet inherit the failure verdict —
      // the submission still completes with a full matrix.
      for (std::size_t i : op.indices) {
        if (op.received.count(i)) continue;
        campaign::JobResult r;
        r.name = sub.suite->jobs.jobs[i].name;
        r.verdict = verdict;
        r.error = error;
        r.attempts = 1;
        r.history = {{r.verdict, r.error}};
        if (hung) {
          ++totals_.hung_jobs;
          ++sub.service.hung_jobs;
        }
        relay_job(sub, r);
        sub.results[i] = std::move(r);
      }
      --sub.outstanding_ops;
      maybe_finish(sub);
      return;
    }
  }
}

void Server::worker_gone(std::size_t w) {
  WorkerProc& wp = workers_[w];
  const bool hang = wp.killed_for_hang;
  if (wp.fd >= 0) {
    ::close(wp.fd);
    wp.fd = -1;
  }
  // Every path here is an involuntary death (clean quits only happen in
  // teardown, which never comes through worker_gone).
  ++totals_.killed_workers;
  const std::vector<std::uint64_t> lost = wp.outstanding;
  wp.outstanding.clear();
  // Unsent backlog survives the death: it requeues onto the respawn. Swap
  // it out first so the op_failed cascade below can't touch it.
  std::deque<std::uint64_t> backlog;
  backlog.swap(wp.queued);
  wp.escalation = 0;
  wp.killed_for_hang = false;
  if (!lost.empty())
    note("worker %zu died with %zu op(s) in flight%s", w, lost.size(),
         hang ? " (killed by escalation)" : "");
  for (std::uint64_t op_id : lost)
    op_failed(op_id,
              hang ? "killed: job exceeded its deadline or the worker went "
                     "silent"
                   : "worker crashed",
              hang ? "hung" : "crash");
  if (wp.pid > 0) {
    int status = 0;
    ::waitpid(wp.pid, &status, WNOHANG);
    wp.pid = -1;
  }
  if (!draining_) {
    try {
      spawn_worker(w);
      note("worker %zu respawned", w);
    } catch (const std::exception& e) {
      note("worker %zu respawn failed: %s", w, e.what());
    }
  }
  if (wp.fd >= 0) {
    wp.queued = std::move(backlog);
    pump_worker(w);
  } else {
    // No respawn (draining, or the fork failed): the backlog has no home.
    for (std::uint64_t op_id : backlog)
      op_failed(op_id, "worker unavailable");
  }
}

void Server::to_client(const Submission& sub, const std::string& line) {
  if (sub.client_fd < 0) return;
  send_client(sub.client_fd, line);
}

void Server::relay_job(const Submission& sub, const campaign::JobResult& r) {
  to_client(sub,
            "{\"event\":\"job\",\"id\":" + std::to_string(sub.client_id) +
                ",\"name\":" + campaign::json_quote(r.name) +
                ",\"verdict\":" + campaign::json_quote(r.verdict) +
                ",\"ok\":" + (r.ok ? "true" : "false") + "}");
}

void Server::maybe_finish(Submission& sub) {
  if (sub.outstanding_ops != 0) return;
  if (sub.is_fi)
    finish_fi(sub);
  else
    finish_spec(sub);
}

void Server::finish_fi(Submission& sub) {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sub.t0)
          .count();
  std::string report;
  bool ok = false;
  try {
    std::vector<fi::Verdict> verdicts;
    const fi::CoverageMatrix m =
        fi::build_matrix(*sub.suite, sub.results, &verdicts);
    ok = m.verdict_total(fi::Verdict::kCrash) == 0 && !sub.interrupted;
    const std::string extra =
        std::string(sub.interrupted ? "\"interrupted\": true,\n  " : "") +
        "\"service\": " + sub.service.to_json() +
        ",\n  \"fork\": " + fork_stats_to_json(sub.fork);
    report = fi::matrix_json(*sub.suite, sub.results, verdicts,
                             sub.shard_workers, wall, extra);
  } catch (const std::exception& e) {
    fail_submission(sub, e.what());
    return;
  }
  to_client(sub,
            "{\"event\":\"done\",\"id\":" + std::to_string(sub.client_id) +
                ",\"ok\":" + (ok ? "true" : "false") +
                ",\"report\":" + campaign::json_quote(report) +
                ",\"service\":" + sub.service.to_json() + "}");
  note("sub %llu: done (%.2fs)", static_cast<unsigned long long>(sub.key),
       wall);
  drop_submission(sub.key);
}

void Server::finish_spec(Submission& sub) {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sub.t0)
          .count();
  campaign::Aggregator agg;
  agg.set_interrupted(sub.interrupted);
  for (const campaign::JobResult& r : sub.results) {
    // Drain-skipped jobs never ran; the partial report counts only what did
    // (the "interrupted" flag says the list is incomplete).
    if (sub.interrupted && r.verdict == "skipped") continue;
    agg.add(r);
  }
  const std::string extra = "\"service\": " + sub.service.to_json();
  const std::string report =
      agg.to_json(sub.cspec.name, sub.shard_workers, wall, extra);
  to_client(sub,
            "{\"event\":\"done\",\"id\":" + std::to_string(sub.client_id) +
                ",\"ok\":" + (agg.all_ok() ? "true" : "false") +
                ",\"report\":" + campaign::json_quote(report) +
                ",\"service\":" + sub.service.to_json() + "}");
  note("sub %llu: done (%.2fs)", static_cast<unsigned long long>(sub.key),
       wall);
  drop_submission(sub.key);
}

void Server::fail_submission(Submission& sub, const std::string& error) {
  to_client(sub,
            "{\"event\":\"error\",\"id\":" + std::to_string(sub.client_id) +
                ",\"error\":" + campaign::json_quote(error) + "}");
  note("sub %llu: failed: %s", static_cast<unsigned long long>(sub.key),
       error.c_str());
  drop_submission(sub.key);
}

void Server::drop_submission(std::uint64_t key) {
  // Orphan any ops still pointing here (late worker events are ignored via
  // the subs_ lookup), then forget the submission.
  for (auto it = ops_.begin(); it != ops_.end();) {
    if (it->second.sub == key)
      it = ops_.erase(it);
    else
      ++it;
  }
  for (WorkerProc& w : workers_) {
    auto& fifo = w.outstanding;
    for (std::size_t i = 0; i < fifo.size();) {
      if (!ops_.count(fifo[i]))
        fifo.erase(fifo.begin() + i);
      else
        ++i;
    }
    auto& q = w.queued;
    for (auto it = q.begin(); it != q.end();) {
      if (!ops_.count(*it))
        it = q.erase(it);
      else
        ++it;
    }
  }
  subs_.erase(key);
}

}  // namespace

int run_server(const ServerOptions& opts) { return Server(opts).run(); }

}  // namespace vpdift::service
