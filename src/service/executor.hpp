// Cache-aware job execution — the body of a service worker.
//
// An Executor wraps a WarmCache and runs the three op kinds a worker
// receives: declarative campaign jobs (with a finished-result cache),
// fault-injection golden runs (the same result cache — this is the
// `golden_cache_hits` counter the warm-resubmission acceptance check
// watches), and fault-injection chunks (fork engine + per-suite fault-site
// snapshot cache). It is transport-agnostic: worker.cpp drives it over a
// socketpair, tests drive it in-process.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/runner.hpp"
#include "fi/fork.hpp"
#include "fi/suite.hpp"
#include "service/cache.hpp"

namespace vpdift::service {

class Executor {
 public:
  explicit Executor(WarmCache& cache) : cache_(cache) {}

  /// Installs a live-progress sink: while a job executes, the simulation's
  /// retired-instruction count is published here roughly once per simulated
  /// millisecond (plus once with the final count). The worker's heartbeat
  /// thread reads it; pass nullptr to detach. Purely observational — it
  /// never changes what a job computes.
  void set_progress(std::atomic<std::uint64_t>* progress) {
    progress_ = progress;
  }

  /// Runs one declarative job through the warm cache: resolver overrides,
  /// VP pool, and — for cacheable jobs — the finished-result cache (a hit
  /// replays the stored result without executing anything). Never throws;
  /// failures become verdict "crash".
  campaign::JobResult run_job(const campaign::JobSpec& job);

  /// The golden reference run for an fi suite (run_job of
  /// fi::golden_job(spec) — cached like any declarative job).
  campaign::JobResult fi_golden(const fi::FiSuiteSpec& spec);

  /// Runs `indices` of the suite derived from (spec, golden) in fork mode
  /// against the per-suite fault-site cache. The result vector parallels
  /// the full fault list (entries outside `indices` stay empty). `golden`
  /// must be the (possibly decoded) result of fi_golden for the same spec.
  std::vector<campaign::JobResult> fi_run(
      const fi::FiSuiteSpec& spec, const campaign::JobResult& golden,
      const std::vector<std::size_t>& indices,
      const std::function<void(const campaign::JobResult&)>& on_done = {},
      fi::ForkStats* fork = nullptr,
      const std::atomic<bool>* cancel = nullptr);

  WarmCache& cache() { return cache_; }

 private:
  WarmCache& cache_;
  std::atomic<std::uint64_t>* progress_ = nullptr;
};

}  // namespace vpdift::service
