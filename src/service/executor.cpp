#include "service/executor.hpp"

namespace vpdift::service {

campaign::JobResult Executor::run_job(const campaign::JobSpec& job) {
  const bool cacheable = WarmCache::cacheable(job);
  std::uint64_t key = 0;
  if (cacheable) {
    try {
      key = cache_.job_key(job);
    } catch (const std::exception& e) {
      // Unhashable input (e.g. unreadable firmware path) fails the same way
      // the run itself would — as a crash verdict, never an escape.
      campaign::JobResult r;
      r.name = job.name;
      r.verdict = "crash";
      r.error = e.what();
      r.attempts = 1;
      r.history = {{r.verdict, r.error}};
      return r;
    }
    if (const campaign::JobResult* hit = cache_.find_result(key)) {
      cache_.note_golden(true);
      return *hit;
    }
    cache_.note_golden(false);
  }
  const campaign::RunnerEnv env = cache_.env();
  campaign::JobResult res = campaign::Runner::run_job(job, &env);
  cache_.note_executed(res.run.instret);
  // Only deterministic outcomes are worth replaying: a crash might be
  // transient (and is what retries exist for).
  if (cacheable && res.verdict != "crash") cache_.store_result(key, res);
  return res;
}

campaign::JobResult Executor::fi_golden(const fi::FiSuiteSpec& spec) {
  return run_job(fi::golden_job(spec));
}

std::vector<campaign::JobResult> Executor::fi_run(
    const fi::FiSuiteSpec& spec, const campaign::JobResult& golden,
    const std::vector<std::size_t>& indices,
    const std::function<void(const campaign::JobResult&)>& on_done,
    fi::ForkStats* fork, const std::atomic<bool>* cancel) {
  const fi::FiSuite suite = fi::suite_from_golden(spec, golden);
  fi::FiSiteCache& sites = cache_.site_cache(cache_.suite_key(spec));
  fi::ForkStats local;
  std::vector<campaign::JobResult> results =
      fi::run_forked_subset(suite, indices, on_done, &local, &sites, cancel);
  cache_.note_executed(local.executed());
  if (fork) *fork = local;
  return results;
}

}  // namespace vpdift::service
