#include "service/executor.hpp"

#include <sys/resource.h>
#include <sys/time.h>

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <unistd.h>

namespace vpdift::service {

namespace {

// Address-space limits and sanitizers do not mix: ASan/TSan reserve huge
// shadow mappings up front, so any RLIMIT_AS small enough to be useful
// kills the runtime itself. Sandbox enforcement is therefore compiled out
// of sanitized builds (the chaos CI job gates the *counters*, which come
// from the server's supervision loop, not from rlimits).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VPDIFT_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define VPDIFT_SANITIZED_BUILD 1
#endif
#endif

/// Current virtual-memory size of this process in bytes (0 if unreadable).
std::uint64_t current_vm_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long pages = 0;
  const int n = std::fscanf(f, "%llu", &pages);
  std::fclose(f);
  if (n != 1) return 0;
  return pages * static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
}

/// CPU seconds this process has consumed so far (user + system).
double cpu_seconds_used() {
  rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  const auto secs = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
  };
  return secs(ru.ru_utime) + secs(ru.ru_stime);
}

/// Scoped resource sandbox for one job. Soft limits are set relative to the
/// process's CURRENT consumption — a worker that has grown a warm cache is
/// not penalised for it, and the budget bounds only what the job itself may
/// add. The soft limit is restored on destruction so a contained failure
/// (sim allocation throwing bad_alloc) leaves the worker reusable.
class ScopedJobLimits {
 public:
  ScopedJobLimits(std::uint64_t mem_budget_mb, double wall_budget_s) {
#ifndef VPDIFT_SANITIZED_BUILD
    if (mem_budget_mb > 0) {
      const std::uint64_t base = current_vm_bytes();
      if (base > 0 && ::getrlimit(RLIMIT_AS, &saved_as_) == 0) {
        rlimit lim = saved_as_;
        std::uint64_t cap = base + (mem_budget_mb << 20);
        if (saved_as_.rlim_max != RLIM_INFINITY && cap > saved_as_.rlim_max)
          cap = saved_as_.rlim_max;
        lim.rlim_cur = cap;
        as_set_ = ::setrlimit(RLIMIT_AS, &lim) == 0;
      }
    }
    if (wall_budget_s > 0) {
      // Backstop, not the primary deadline: the runner's wall guard and the
      // server's kill escalation fire first. This catches only a worker so
      // wedged it burns CPU without ever reaching either.
      if (::getrlimit(RLIMIT_CPU, &saved_cpu_) == 0) {
        rlimit lim = saved_cpu_;
        const double cap = cpu_seconds_used() + 3 * std::ceil(wall_budget_s) + 5;
        auto cur = static_cast<rlim_t>(cap);
        if (saved_cpu_.rlim_max != RLIM_INFINITY && cur > saved_cpu_.rlim_max)
          cur = saved_cpu_.rlim_max;
        lim.rlim_cur = cur;
        cpu_set_ = ::setrlimit(RLIMIT_CPU, &lim) == 0;
      }
    }
#else
    (void)mem_budget_mb;
    (void)wall_budget_s;
#endif
  }

  ~ScopedJobLimits() {
#ifndef VPDIFT_SANITIZED_BUILD
    if (as_set_) ::setrlimit(RLIMIT_AS, &saved_as_);
    if (cpu_set_) ::setrlimit(RLIMIT_CPU, &saved_cpu_);
#endif
  }

  ScopedJobLimits(const ScopedJobLimits&) = delete;
  ScopedJobLimits& operator=(const ScopedJobLimits&) = delete;

 private:
  rlimit saved_as_{};
  rlimit saved_cpu_{};
  bool as_set_ = false;
  bool cpu_set_ = false;
};

}  // namespace

campaign::JobResult Executor::run_job(const campaign::JobSpec& job) {
  const bool cacheable = WarmCache::cacheable(job);
  std::uint64_t key = 0;
  if (cacheable) {
    try {
      key = cache_.job_key(job);
    } catch (const std::exception& e) {
      // Unhashable input (e.g. unreadable firmware path) fails the same way
      // the run itself would — as a crash verdict, never an escape.
      campaign::JobResult r;
      r.name = job.name;
      r.verdict = "crash";
      r.error = e.what();
      r.attempts = 1;
      r.history = {{r.verdict, r.error}};
      return r;
    }
    if (const campaign::JobResult* hit = cache_.find_result(key)) {
      cache_.note_golden(true);
      return *hit;
    }
    cache_.note_golden(false);
  }
  campaign::RunnerEnv env = cache_.env();
  env.progress = progress_;
  campaign::JobResult res;
  {
    const ScopedJobLimits limits(job.mem_budget_mb, job.wall_budget_s);
    res = campaign::Runner::run_job(job, &env);
  }
  cache_.note_executed(res.run.instret);
  // Only deterministic outcomes are worth replaying: a crash might be
  // transient (retries exist for it), and a hung verdict depends on the
  // deadline that killed it, not on the job alone.
  if (cacheable && res.verdict != "crash" && res.verdict != "hung")
    cache_.store_result(key, res);
  return res;
}

campaign::JobResult Executor::fi_golden(const fi::FiSuiteSpec& spec) {
  return run_job(fi::golden_job(spec));
}

std::vector<campaign::JobResult> Executor::fi_run(
    const fi::FiSuiteSpec& spec, const campaign::JobResult& golden,
    const std::vector<std::size_t>& indices,
    const std::function<void(const campaign::JobResult&)>& on_done,
    fi::ForkStats* fork, const std::atomic<bool>* cancel) {
  const fi::FiSuite suite = fi::suite_from_golden(spec, golden);
  fi::FiSiteCache& sites = cache_.site_cache(cache_.suite_key(spec));
  fi::ForkStats local;
  std::vector<campaign::JobResult> results =
      fi::run_forked_subset(suite, indices, on_done, &local, &sites, cancel);
  cache_.note_executed(local.executed());
  if (fork) *fork = local;
  return results;
}

}  // namespace vpdift::service
