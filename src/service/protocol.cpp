#include "service/protocol.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "dift/violation.hpp"
#include "vp/vp.hpp"

namespace vpdift::service {

namespace {

constexpr std::size_t kExitReasonCount = 7;
constexpr std::size_t kViolationKindCount = 8;

/// Enum round trips scan the existing to_string tables instead of keeping a
/// parallel name list that could drift. A reason this build has no name for
/// (a newer peer) decodes to kUnknown with the raw string preserved — NOT to
/// some default, which would silently reclassify the run.
vp::ExitReason exit_reason_from_string(const std::string& s,
                                       std::string* raw_out) {
  for (std::size_t i = 0; i < kExitReasonCount; ++i) {
    const auto r = static_cast<vp::ExitReason>(i);
    if (s == vp::to_string(r)) return r;
  }
  if (raw_out) *raw_out = s;
  return vp::ExitReason::kUnknown;
}

dift::ViolationKind violation_kind_from_string(const std::string& s) {
  for (std::size_t i = 0; i < kViolationKindCount; ++i) {
    const auto k = static_cast<dift::ViolationKind>(i);
    if (s == dift::to_string(k)) return k;
  }
  throw std::runtime_error("unknown violation kind: " + s);
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string num(std::uint64_t v) { return std::to_string(v); }

std::string pc_list(const std::vector<std::uint64_t>& pcs) {
  std::string out = "[";
  for (std::size_t i = 0; i < pcs.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(pcs[i]);
  }
  return out + "]";
}

std::vector<std::uint64_t> pc_list_from(const campaign::JsonValue* v) {
  std::vector<std::uint64_t> out;
  if (!v || v->kind != campaign::JsonValue::Kind::kArray) return out;
  out.reserve(v->array.size());
  for (const campaign::JsonValue& e : v->array)
    if (e.kind == campaign::JsonValue::Kind::kNumber)
      out.push_back(static_cast<std::uint64_t>(e.number));
  return out;
}

}  // namespace

std::string analysis_to_json(const sa::AnalysisResult& r) {
  using campaign::json_quote;
  std::ostringstream o;
  o << "{\"entry\":" << num(r.entry)
    << ",\"reachable_instructions\":" << r.reachable_instructions
    << ",\"linear_sweep_instructions\":" << r.linear_sweep_instructions
    << ",\"unreachable_bytes\":" << r.unreachable_bytes << ",\"blocks\":[";
  for (std::size_t i = 0; i < r.blocks.size(); ++i) {
    const sa::BlockSummary& b = r.blocks[i];
    o << (i ? "," : "") << "{\"start\":" << num(b.start)
      << ",\"end\":" << num(b.end)
      << ",\"taint\":" << (b.touches_taint ? "true" : "false")
      << ",\"pinned\":" << (b.pinned ? "true" : "false") << "}";
  }
  o << "],\"trap_entries\":" << pc_list(r.trap_entries)
    << ",\"call_entries\":" << pc_list(r.call_entries)
    << ",\"unresolved_indirects\":" << pc_list(r.unresolved_indirects)
    << ",\"smc_stores\":" << pc_list(r.smc_stores)
    << ",\"complete\":" << (r.complete ? "true" : "false")
    << ",\"taint_free\":" << (r.taint_free ? "true" : "false")
    << ",\"findings\":[";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const sa::Finding& f = r.findings[i];
    o << (i ? "," : "") << "{\"kind\":" << json_quote(f.kind)
      << ",\"where\":" << json_quote(f.where) << ",\"pc\":" << num(f.pc)
      << ",\"reachable\":" << (f.reachable ? "true" : "false")
      << ",\"detail\":" << json_quote(f.detail) << "}";
  }
  o << "],\"reachable_violations\":" << r.reachable_violations
    << ",\"pin_mode\":" << json_quote(r.pin_mode)
    << ",\"pinned_pcs\":" << pc_list(r.pinned_pcs) << "}";
  return o.str();
}

sa::AnalysisResult analysis_from_json(const campaign::JsonValue& obj) {
  using campaign::JsonValue;
  sa::AnalysisResult r;
  r.entry = obj.u64_or("entry", 0);
  r.reachable_instructions =
      static_cast<std::size_t>(obj.u64_or("reachable_instructions", 0));
  r.linear_sweep_instructions =
      static_cast<std::size_t>(obj.u64_or("linear_sweep_instructions", 0));
  r.unreachable_bytes =
      static_cast<std::size_t>(obj.u64_or("unreachable_bytes", 0));
  if (const JsonValue* bs = obj.find("blocks");
      bs && bs->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& e : bs->array) {
      sa::BlockSummary b;
      b.start = e.u64_or("start", 0);
      b.end = e.u64_or("end", 0);
      b.touches_taint = e.bool_or("taint", false);
      b.pinned = e.bool_or("pinned", false);
      r.blocks.push_back(b);
    }
  }
  r.trap_entries = pc_list_from(obj.find("trap_entries"));
  r.call_entries = pc_list_from(obj.find("call_entries"));
  r.unresolved_indirects = pc_list_from(obj.find("unresolved_indirects"));
  r.smc_stores = pc_list_from(obj.find("smc_stores"));
  r.complete = obj.bool_or("complete", false);
  r.taint_free = obj.bool_or("taint_free", false);
  if (const JsonValue* fs = obj.find("findings");
      fs && fs->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& e : fs->array) {
      sa::Finding f;
      f.kind = e.str_or("kind", "");
      f.where = e.str_or("where", "");
      f.pc = e.u64_or("pc", 0);
      f.reachable = e.bool_or("reachable", false);
      f.detail = e.str_or("detail", "");
      r.findings.push_back(std::move(f));
    }
  }
  r.reachable_violations =
      static_cast<std::size_t>(obj.u64_or("reachable_violations", 0));
  r.pin_mode = obj.str_or("pin_mode", "none");
  r.pinned_pcs = pc_list_from(obj.find("pinned_pcs"));
  return r;
}

std::string job_result_to_json(const campaign::JobResult& r) {
  using campaign::json_quote;
  std::ostringstream o;
  o << "{\"name\":" << json_quote(r.name)
    << ",\"verdict\":" << json_quote(r.verdict)
    << ",\"ok\":" << (r.ok ? "true" : "false")
    << ",\"attempts\":" << r.attempts
    << ",\"error\":" << json_quote(r.error)
    << ",\"wall_seconds\":" << num(r.wall_seconds) << ",\"history\":[";
  for (std::size_t i = 0; i < r.history.size(); ++i)
    o << (i ? "," : "") << "{\"verdict\":" << json_quote(r.history[i].verdict)
      << ",\"error\":" << json_quote(r.history[i].error)
      << ",\"instret\":" << num(r.history[i].instret) << "}";
  const vp::RunResult& run = r.run;
  // A kUnknown result re-emits the verbatim foreign name so a relay through
  // this build is lossless.
  const std::string reason_name =
      run.reason == vp::ExitReason::kUnknown && !run.reason_raw.empty()
          ? run.reason_raw
          : vp::to_string(run.reason);
  o << "],\"run\":{\"reason\":" << json_quote(reason_name)
    << ",\"exit_code\":" << run.exit_code
    << ",\"watchdog_resets\":" << run.watchdog_resets
    << ",\"violation_kind\":" << json_quote(dift::to_string(run.violation_kind))
    << ",\"violation_source\":" << unsigned(run.violation_source)
    << ",\"violation_required\":" << unsigned(run.violation_required)
    << ",\"violation_pc\":" << num(run.violation_pc)
    << ",\"violation_where\":" << json_quote(run.violation_where)
    << ",\"violation_message\":" << json_quote(run.violation_message)
    << ",\"recorded_violations\":[";
  for (std::size_t i = 0; i < run.recorded_violations.size(); ++i) {
    const dift::ViolationRecord& v = run.recorded_violations[i];
    o << (i ? "," : "") << "{\"kind\":" << json_quote(dift::to_string(v.kind))
      << ",\"source\":" << unsigned(v.source)
      << ",\"required\":" << unsigned(v.required) << ",\"pc\":" << num(v.pc)
      << ",\"address\":" << num(v.address)
      << ",\"where\":" << json_quote(v.where) << "}";
  }
  o << "],\"trace_dump\":" << json_quote(run.trace_dump)
    << ",\"instret\":" << num(run.instret)
    << ",\"wall_s\":" << num(run.wall_seconds) << ",\"mips\":" << num(run.mips)
    << ",\"sim_ps\":" << num(run.sim_time.picos())
    << ",\"uart_output\":" << json_quote(run.uart_output)
    << ",\"markers\":" << json_quote(run.markers)
    << ",\"stats\":" << dift::to_json(run.stats) << "}";
  if (r.analysis) o << ",\"analysis\":" << analysis_to_json(*r.analysis);
  o << "}";
  return o.str();
}

campaign::JobResult job_result_from_json(const campaign::JsonValue& obj) {
  using campaign::JsonValue;
  campaign::JobResult r;
  r.name = obj.str_or("name", "");
  r.verdict = obj.str_or("verdict", "");
  r.ok = obj.bool_or("ok", false);
  r.attempts = static_cast<int>(obj.u64_or("attempts", 0));
  r.error = obj.str_or("error", "");
  r.wall_seconds = obj.num_or("wall_seconds", 0.0);
  if (const JsonValue* av = obj.find("analysis");
      av && av->kind == JsonValue::Kind::kObject)
    r.analysis =
        std::make_shared<const sa::AnalysisResult>(analysis_from_json(*av));
  if (const JsonValue* h = obj.find("history");
      h && h->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& e : h->array)
      r.history.push_back({e.str_or("verdict", ""), e.str_or("error", ""),
                           e.u64_or("instret", 0)});
  }
  const JsonValue* runv = obj.find("run");
  if (!runv || runv->kind != JsonValue::Kind::kObject) return r;
  vp::RunResult& run = r.run;
  run.reason = exit_reason_from_string(runv->str_or("reason", "sim-timeout"),
                                       &run.reason_raw);
  run.exit_code = static_cast<std::uint32_t>(runv->u64_or("exit_code", 0));
  run.watchdog_resets =
      static_cast<std::uint32_t>(runv->u64_or("watchdog_resets", 0));
  run.violation_kind = violation_kind_from_string(
      runv->str_or("violation_kind", "output-clearance"));
  run.violation_source =
      static_cast<dift::Tag>(runv->u64_or("violation_source", 0));
  run.violation_required =
      static_cast<dift::Tag>(runv->u64_or("violation_required", 0));
  run.violation_pc = runv->u64_or("violation_pc", 0);
  run.violation_where = runv->str_or("violation_where", "");
  run.violation_message = runv->str_or("violation_message", "");
  if (const JsonValue* rv = runv->find("recorded_violations");
      rv && rv->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& e : rv->array) {
      dift::ViolationRecord v;
      v.kind =
          violation_kind_from_string(e.str_or("kind", "output-clearance"));
      v.source = static_cast<dift::Tag>(e.u64_or("source", 0));
      v.required = static_cast<dift::Tag>(e.u64_or("required", 0));
      v.pc = e.u64_or("pc", 0);
      v.address = e.u64_or("address", 0);
      v.where = e.str_or("where", "");
      run.recorded_violations.push_back(std::move(v));
    }
  }
  run.trace_dump = runv->str_or("trace_dump", "");
  run.instret = runv->u64_or("instret", 0);
  run.wall_seconds = runv->num_or("wall_s", 0.0);
  run.mips = runv->num_or("mips", 0.0);
  run.sim_time = sysc::Time::ps(runv->u64_or("sim_ps", 0));
  run.uart_output = runv->str_or("uart_output", "");
  run.markers = runv->str_or("markers", "");
  if (const JsonValue* st = runv->find("stats");
      st && st->kind == JsonValue::Kind::kObject) {
    dift::DiftStats& s = run.stats;
    s.lub_calls = st->u64_or("lub_calls", 0);
    s.flow_checks = st->u64_or("flow_checks", 0);
    s.decode_hits = st->u64_or("decode_hits", 0);
    s.decode_misses = st->u64_or("decode_misses", 0);
    s.block_hits = st->u64_or("block_hits", 0);
    s.block_misses = st->u64_or("block_misses", 0);
    s.block_invalidations = st->u64_or("block_invalidations", 0);
    s.chained_transfers = st->u64_or("chained_transfers", 0);
    s.fetch_summary_hits = st->u64_or("fetch_summary_hits", 0);
    s.load_summary_hits = st->u64_or("load_summary_hits", 0);
    s.mem_summary_hits = st->u64_or("mem_summary_hits", 0);
    s.dma_summary_hits = st->u64_or("dma_summary_hits", 0);
    s.bus_transactions = st->u64_or("bus_transactions", 0);
    s.plain_variant_hits = st->u64_or("plain_variant_hits", 0);
    s.tainted_variant_hits = st->u64_or("tainted_variant_hits", 0);
    s.variant_promotions = st->u64_or("variant_promotions", 0);
    s.superblock_hits = st->u64_or("superblock_hits", 0);
    s.superblock_transfers = st->u64_or("superblock_transfers", 0);
    s.sa_pinned_blocks = st->u64_or("sa_pinned_blocks", 0);
    s.sa_pinned_hits = st->u64_or("sa_pinned_hits", 0);
  }
  return r;
}

std::string fork_stats_to_json(const fi::ForkStats& s) {
  std::ostringstream o;
  o << "{\"golden_instret\":" << s.golden_instret
    << ",\"tail_instret\":" << s.tail_instret
    << ",\"replay_instret\":" << s.replay_instret
    << ",\"snapshots\":" << s.snapshots << "}";
  return o.str();
}

fi::ForkStats fork_stats_from_json(const campaign::JsonValue& obj) {
  fi::ForkStats s;
  s.golden_instret = obj.u64_or("golden_instret", 0);
  s.tail_instret = obj.u64_or("tail_instret", 0);
  s.replay_instret = obj.u64_or("replay_instret", 0);
  s.snapshots = static_cast<std::size_t>(obj.u64_or("snapshots", 0));
  return s;
}

bool LineReader::read_line(std::string* out) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n;
    do {
      n = ::read(fd_, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool DeadlineLineReader::read_line(std::string* out) {
  timed_out_ = false;
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (timeout_ms_ > 0) {
      struct pollfd pfd {fd_, POLLIN, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms_));
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        timed_out_ = true;
        return false;
      }
      if (rc < 0) return false;
    }
    char chunk[4096];
    ssize_t n;
    do {
      n = ::read(fd_, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool LineBuffer::pop(std::string* line) {
  const std::size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  line->assign(buf_, 0, nl);
  buf_.erase(0, nl + 1);
  return true;
}

bool write_line(int fd, const std::string& line) {
  std::string data = line;
  data += '\n';
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace vpdift::service
