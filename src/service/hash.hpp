// Content hashing for the service's warm caches.
//
// Every cache in the service layer is keyed by what the submission actually
// contains, not by when or how it arrived: an ELF image by its file bytes, a
// policy by its text, a fault-injection suite by (firmware content, seed).
// Resubmitting identical content therefore hits, and changing a single byte
// anywhere in an input deterministically misses — there is no TTL and no
// mtime heuristic to go stale. FNV-1a 64 is enough: keys live in one
// process, collisions only cost a wrong cache hit among a handful of
// entries, and the hash is trivially reproducible from the docs
// (docs/service.md documents every key derivation).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace vpdift::service {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a 64 over `bytes`, continuing from `seed` — chain calls to hash a
/// composite key field by field.
constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Mixes a 64-bit value into a running hash (little-endian byte order).
constexpr std::uint64_t fnv1a64_u64(std::uint64_t v, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

/// 16 lowercase hex digits.
std::string hash_hex(std::uint64_t h);

/// FNV-1a 64 of a file's contents; throws std::runtime_error if unreadable.
std::uint64_t hash_file(const std::string& path);

}  // namespace vpdift::service
