#include "service/worker.hpp"

#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "campaign/spec.hpp"
#include "service/executor.hpp"
#include "service/protocol.hpp"

namespace vpdift::service {

namespace {

using campaign::JsonValue;

std::string ev_head(const char* ev, std::uint64_t id) {
  return std::string("{\"ev\":\"") + ev +
         "\",\"id\":" + std::to_string(id);
}

}  // namespace

int worker_main(int fd) {
  WarmCache cache;
  Executor exec(cache);
  LineReader in(fd);
  std::string line;
  while (in.read_line(&line)) {
    if (line.empty()) continue;
    std::uint64_t id = 0;
    try {
      const JsonValue msg = campaign::json_parse(line);
      const std::string op = msg.str_or("op");
      id = msg.u64_or("id", 0);
      if (op == "quit") return 0;

      const CacheStats before = cache.stats();
      auto delta = [&] { return (cache.stats() - before).to_json(); };

      if (op == "job") {
        const JsonValue* spec = msg.find("spec");
        if (!spec || spec->kind != JsonValue::Kind::kObject)
          throw std::runtime_error("job op without a spec object");
        campaign::JobSpec job;
        campaign::job_spec_from_json(job, *spec);
        const campaign::JobResult res = exec.run_job(job);
        write_line(fd, ev_head("result", id) +
                           ",\"result\":" + job_result_to_json(res) +
                           ",\"stats\":" + delta() + "}");
      } else if (op == "fi-golden") {
        fi::FiSuiteSpec spec;
        spec.benchmark = msg.str_or("benchmark");
        spec.seed = msg.u64_or("seed", 1);
        spec.n_faults = static_cast<std::size_t>(msg.u64_or("n", 0));
        const campaign::JobResult res = exec.fi_golden(spec);
        write_line(fd, ev_head("result", id) +
                           ",\"result\":" + job_result_to_json(res) +
                           ",\"stats\":" + delta() + "}");
      } else if (op == "fi") {
        fi::FiSuiteSpec spec;
        spec.benchmark = msg.str_or("benchmark");
        spec.seed = msg.u64_or("seed", 1);
        spec.n_faults = static_cast<std::size_t>(msg.u64_or("n", 0));
        const JsonValue* goldenv = msg.find("golden");
        if (!goldenv || goldenv->kind != JsonValue::Kind::kObject)
          throw std::runtime_error("fi op without a golden object");
        const campaign::JobResult golden = job_result_from_json(*goldenv);
        std::vector<std::size_t> indices;
        if (const JsonValue* iv = msg.find("indices");
            iv && iv->kind == JsonValue::Kind::kArray) {
          for (const JsonValue& e : iv->array)
            indices.push_back(static_cast<std::size_t>(e.number));
        }
        // Stream each finished fault up immediately — the server relays it
        // to the client, which is where "incremental per-job results" on a
        // long fi submission come from.
        const auto on_done = [&](const campaign::JobResult& r) {
          write_line(fd, ev_head("job", id) +
                             ",\"result\":" + job_result_to_json(r) + "}");
        };
        fi::ForkStats fork;
        const std::vector<campaign::JobResult> results =
            exec.fi_run(spec, golden, indices, on_done, &fork);
        std::string skipped;
        for (std::size_t i : indices)
          if (i < results.size() && results[i].verdict == "skipped")
            skipped += (skipped.empty() ? "" : ",") + std::to_string(i);
        write_line(fd, ev_head("result", id) +
                           ",\"fork\":" + fork_stats_to_json(fork) +
                           ",\"skipped\":[" + skipped +
                           "],\"stats\":" + delta() + "}");
      } else if (op == "stats") {
        write_line(fd, ev_head("result", id) +
                           ",\"stats\":" + cache.stats().to_json() + "}");
      } else {
        throw std::runtime_error("unknown op: " + op);
      }
    } catch (const std::exception& e) {
      write_line(fd, ev_head("error", id) +
                         ",\"error\":" + campaign::json_quote(e.what()) + "}");
    } catch (...) {
      write_line(fd, ev_head("error", id) +
                         ",\"error\":\"non-std exception\"}");
    }
  }
  return 0;
}

}  // namespace vpdift::service
