#include "service/worker.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/json.hpp"
#include "campaign/spec.hpp"
#include "service/executor.hpp"
#include "service/protocol.hpp"

namespace vpdift::service {

namespace {

using campaign::JsonValue;

std::string ev_head(const char* ev, std::uint64_t id) {
  return std::string("{\"ev\":\"") + ev +
         "\",\"id\":" + std::to_string(id);
}

}  // namespace

int worker_main(int fd, const WorkerConfig& cfg) {
  WarmCache cache;
  Executor exec(cache);

  // The heartbeat thread shares the reply socket with the op loop; frames
  // are whole lines, so one mutex around every write keeps them intact.
  std::mutex write_mu;
  const auto send = [&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(write_mu);
    write_line(fd, line);
  };

  // `current_op` is the id of the op executing right now (0 when idle);
  // `progress` is the live instret of its simulation, published by the
  // runner's progress guard. Together they let the parent tell a slow but
  // advancing job from a wedged one.
  std::atomic<std::uint64_t> current_op{0};
  std::atomic<std::uint64_t> progress{0};
  exec.set_progress(&progress);

  std::atomic<bool> stop{false};
  std::thread hb;
  if (cfg.heartbeat_ms > 0) {
    hb = std::thread([&] {
      // Sleep in short slices so quit/EOF joins promptly even with a long
      // heartbeat period.
      const auto slice = std::chrono::milliseconds(20);
      auto next = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(cfg.heartbeat_ms);
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(slice);
        const auto now = std::chrono::steady_clock::now();
        if (now < next) continue;
        next = now + std::chrono::milliseconds(cfg.heartbeat_ms);
        send(ev_head("hb", current_op.load(std::memory_order_relaxed)) +
             ",\"instret\":" +
             std::to_string(progress.load(std::memory_order_relaxed)) + "}");
      }
    });
  }
  const auto shut_down = [&](int rc) {
    stop.store(true, std::memory_order_relaxed);
    if (hb.joinable()) hb.join();
    return rc;
  };

  LineReader in(fd);
  std::string line;
  while (in.read_line(&line)) {
    if (line.empty()) continue;
    std::uint64_t id = 0;
    try {
      const JsonValue msg = campaign::json_parse(line);
      const std::string op = msg.str_or("op");
      id = msg.u64_or("id", 0);
      if (op == "quit") return shut_down(0);

      current_op.store(id, std::memory_order_relaxed);
      progress.store(0, std::memory_order_relaxed);

      const CacheStats before = cache.stats();
      auto delta = [&] { return (cache.stats() - before).to_json(); };

      if (op == "job") {
        const JsonValue* spec = msg.find("spec");
        if (!spec || spec->kind != JsonValue::Kind::kObject)
          throw std::runtime_error("job op without a spec object");
        campaign::JobSpec job;
        campaign::job_spec_from_json(job, *spec);
        const campaign::JobResult res = exec.run_job(job);
        send(ev_head("result", id) +
             ",\"result\":" + job_result_to_json(res) +
             ",\"stats\":" + delta() + "}");
      } else if (op == "fi-golden") {
        fi::FiSuiteSpec spec;
        spec.benchmark = msg.str_or("benchmark");
        spec.seed = msg.u64_or("seed", 1);
        spec.n_faults = static_cast<std::size_t>(msg.u64_or("n", 0));
        const campaign::JobResult res = exec.fi_golden(spec);
        send(ev_head("result", id) +
             ",\"result\":" + job_result_to_json(res) +
             ",\"stats\":" + delta() + "}");
      } else if (op == "fi") {
        fi::FiSuiteSpec spec;
        spec.benchmark = msg.str_or("benchmark");
        spec.seed = msg.u64_or("seed", 1);
        spec.n_faults = static_cast<std::size_t>(msg.u64_or("n", 0));
        const JsonValue* goldenv = msg.find("golden");
        if (!goldenv || goldenv->kind != JsonValue::Kind::kObject)
          throw std::runtime_error("fi op without a golden object");
        const campaign::JobResult golden = job_result_from_json(*goldenv);
        std::vector<std::size_t> indices;
        if (const JsonValue* iv = msg.find("indices");
            iv && iv->kind == JsonValue::Kind::kArray) {
          for (const JsonValue& e : iv->array)
            indices.push_back(static_cast<std::size_t>(e.number));
        }
        // Stream each finished fault up immediately — the server relays it
        // to the client, which is where "incremental per-job results" on a
        // long fi submission come from.
        const auto on_done = [&](const campaign::JobResult& r) {
          send(ev_head("job", id) +
               ",\"result\":" + job_result_to_json(r) + "}");
        };
        fi::ForkStats fork;
        const std::vector<campaign::JobResult> results =
            exec.fi_run(spec, golden, indices, on_done, &fork);
        std::string skipped;
        for (std::size_t i : indices)
          if (i < results.size() && results[i].verdict == "skipped")
            skipped += (skipped.empty() ? "" : ",") + std::to_string(i);
        send(ev_head("result", id) +
             ",\"fork\":" + fork_stats_to_json(fork) +
             ",\"skipped\":[" + skipped +
             "],\"stats\":" + delta() + "}");
      } else if (op == "stats") {
        send(ev_head("result", id) +
             ",\"stats\":" + cache.stats().to_json() + "}");
      } else {
        throw std::runtime_error("unknown op: " + op);
      }
    } catch (const std::exception& e) {
      send(ev_head("error", id) +
           ",\"error\":" + campaign::json_quote(e.what()) + "}");
    } catch (...) {
      send(ev_head("error", id) + ",\"error\":\"non-std exception\"}");
    }
    current_op.store(0, std::memory_order_relaxed);
    progress.store(0, std::memory_order_relaxed);
  }
  return shut_down(0);
}

}  // namespace vpdift::service
