// Client side of the service protocol: connect to a running vpdift-serve,
// submit a campaign (fi suite reference or declarative spec text), block
// until the final report arrives, streaming per-job events to a callback on
// the way. vpdift-campaign --connect and vpdift-serve --self-test are thin
// wrappers over this class.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "service/cache.hpp"

namespace vpdift::service {

/// The final outcome of one submission.
struct Outcome {
  bool ok = false;          ///< server-side "ok" (all jobs ok / no crashes)
  std::string report;       ///< the full JSON report, bit-identical to the
                            ///< one-shot CLI's plus the "service" block
  std::string error;        ///< non-empty when the submission failed
  CacheStats service;       ///< the submission's cache-counter delta
  std::size_t jobs = 0;     ///< job count the server accepted
  /// Server backoff hint when error == "overloaded" (the submit retry loop
  /// already honoured it submit_retries times before giving up).
  std::uint64_t retry_after_ms = 0;
};

/// Client-side resilience knobs.
struct ClientOptions {
  /// Deadline for connect() and for every control-plane reply (ping, stats,
  /// accepted, shutdown). 0 = block forever.
  std::uint64_t timeout_ms = 30000;
  /// Max gap between events while a submission runs. The server heartbeats
  /// active submissions, so a healthy-but-slow campaign resets this on
  /// every hb line; only a truly silent server trips it. 0 = forever.
  std::uint64_t idle_timeout_ms = 120000;
  /// Extra attempts when the server sheds a submission with "overloaded"
  /// (capped exponential backoff, honouring the server's retry_after_ms).
  int submit_retries = 4;
};

/// Per-job progress event streamed while a submission runs.
struct JobEvent {
  std::string name;
  std::string verdict;
  bool ok = false;
};

class Client {
 public:
  /// Connects to the daemon's AF_UNIX socket with the options' connect
  /// deadline (a listener that accepts but never answers cannot hang the
  /// client past timeout_ms). Throws std::runtime_error on failure.
  Client(const std::string& socket_path, const ClientOptions& opts);
  /// Default options.
  explicit Client(const std::string& socket_path)
      : Client(socket_path, ClientOptions{}) {}
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trip liveness check.
  bool ping();

  /// Submits "fi:<benchmark>:<n>" with `seed`; `workers` caps the fault
  /// shard fan-out (0 = the server's worker count). Blocks until done.
  Outcome submit_ref(const std::string& ref, std::uint64_t seed,
                     std::size_t workers = 0,
                     const std::function<void(const JobEvent&)>& on_job = {});

  /// Submits declarative campaign-spec text (CampaignSpec::parse format).
  /// `analyze` forces the static pre-pass on every job in the spec, as if
  /// each carried `analyze on` (vpdift-campaign --connect --analyze).
  Outcome submit_spec(const std::string& spec_text,
                      const std::function<void(const JobEvent&)>& on_job = {},
                      bool analyze = false);

  /// Cumulative server-wide cache counters.
  CacheStats server_stats();

  /// Asks the daemon to drain and exit.
  void shutdown_server();

 private:
  Outcome await_done(std::uint64_t id,
                     const std::function<void(const JobEvent&)>& on_job);
  Outcome submit(const std::string& body,
                 const std::function<void(const JobEvent&)>& on_job);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  ClientOptions opts_;
};

}  // namespace vpdift::service
