// Client side of the service protocol: connect to a running vpdift-serve,
// submit a campaign (fi suite reference or declarative spec text), block
// until the final report arrives, streaming per-job events to a callback on
// the way. vpdift-campaign --connect and vpdift-serve --self-test are thin
// wrappers over this class.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "service/cache.hpp"

namespace vpdift::service {

/// The final outcome of one submission.
struct Outcome {
  bool ok = false;          ///< server-side "ok" (all jobs ok / no crashes)
  std::string report;       ///< the full JSON report, bit-identical to the
                            ///< one-shot CLI's plus the "service" block
  std::string error;        ///< non-empty when the submission failed
  CacheStats service;       ///< the submission's cache-counter delta
  std::size_t jobs = 0;     ///< job count the server accepted
};

/// Per-job progress event streamed while a submission runs.
struct JobEvent {
  std::string name;
  std::string verdict;
  bool ok = false;
};

class Client {
 public:
  /// Connects to the daemon's AF_UNIX socket.
  /// Throws std::runtime_error when the connection fails.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trip liveness check.
  bool ping();

  /// Submits "fi:<benchmark>:<n>" with `seed`; `workers` caps the fault
  /// shard fan-out (0 = the server's worker count). Blocks until done.
  Outcome submit_ref(const std::string& ref, std::uint64_t seed,
                     std::size_t workers = 0,
                     const std::function<void(const JobEvent&)>& on_job = {});

  /// Submits declarative campaign-spec text (CampaignSpec::parse format).
  /// `analyze` forces the static pre-pass on every job in the spec, as if
  /// each carried `analyze on` (vpdift-campaign --connect --analyze).
  Outcome submit_spec(const std::string& spec_text,
                      const std::function<void(const JobEvent&)>& on_job = {},
                      bool analyze = false);

  /// Cumulative server-wide cache counters.
  CacheStats server_stats();

  /// Asks the daemon to drain and exit.
  void shutdown_server();

 private:
  Outcome await_done(std::uint64_t id,
                     const std::function<void(const JobEvent&)>& on_job);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace vpdift::service
