#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "campaign/json.hpp"
#include "service/protocol.hpp"

namespace vpdift::service {

using campaign::JsonValue;

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to " + socket_path + ": " +
                             std::strerror(errno));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::ping() {
  if (!write_line(fd_, "{\"op\":\"ping\"}")) return false;
  LineReader in(fd_);
  std::string line;
  if (!in.read_line(&line)) return false;
  try {
    return campaign::json_parse(line).str_or("event") == "pong";
  } catch (const std::exception&) {
    return false;
  }
}

Outcome Client::await_done(
    std::uint64_t id, const std::function<void(const JobEvent&)>& on_job) {
  Outcome out;
  LineReader in(fd_);
  std::string line;
  while (in.read_line(&line)) {
    JsonValue msg;
    try {
      msg = campaign::json_parse(line);
    } catch (const std::exception& e) {
      out.error = std::string("garbled server line: ") + e.what();
      return out;
    }
    const std::string ev = msg.str_or("event");
    const std::uint64_t ev_id = msg.u64_or("id", id);
    if (ev == "error") {
      // Only this submission's errors end it. id 0 is the server's
      // connection-level reply (e.g. a garbled request line) — also fatal;
      // another submission's error on a shared connection is not ours.
      if (ev_id != id && ev_id != 0) continue;
      out.error = msg.str_or("error", "unknown server error");
      return out;
    }
    if (ev_id != id) continue;
    if (ev == "accepted") {
      out.jobs = static_cast<std::size_t>(msg.u64_or("jobs", 0));
      continue;
    }
    if (ev == "job") {
      if (on_job) {
        JobEvent je;
        je.name = msg.str_or("name");
        je.verdict = msg.str_or("verdict");
        je.ok = msg.bool_or("ok");
        on_job(je);
      }
      continue;
    }
    if (ev == "done") {
      out.ok = msg.bool_or("ok");
      out.report = msg.str_or("report");
      if (const JsonValue* sv = msg.find("service");
          sv && sv->kind == JsonValue::Kind::kObject)
        out.service = cache_stats_from_json(*sv);
      return out;
    }
  }
  out.error = "server closed the connection";
  return out;
}

Outcome Client::submit_ref(
    const std::string& ref, std::uint64_t seed, std::size_t workers,
    const std::function<void(const JobEvent&)>& on_job) {
  const std::uint64_t id = next_id_++;
  std::string req = "{\"op\":\"submit\",\"id\":" + std::to_string(id) +
                    ",\"ref\":" + campaign::json_quote(ref) +
                    ",\"seed\":" + std::to_string(seed);
  if (workers) req += ",\"workers\":" + std::to_string(workers);
  req += "}";
  Outcome out;
  if (!write_line(fd_, req)) {
    out.error = "cannot write to server";
    return out;
  }
  return await_done(id, on_job);
}

Outcome Client::submit_spec(
    const std::string& spec_text,
    const std::function<void(const JobEvent&)>& on_job, bool analyze) {
  const std::uint64_t id = next_id_++;
  const std::string req = "{\"op\":\"submit\",\"id\":" + std::to_string(id) +
                          ",\"spec\":" + campaign::json_quote(spec_text) +
                          (analyze ? ",\"analyze\":true" : "") + "}";
  Outcome out;
  if (!write_line(fd_, req)) {
    out.error = "cannot write to server";
    return out;
  }
  return await_done(id, on_job);
}

CacheStats Client::server_stats() {
  CacheStats s;
  if (!write_line(fd_, "{\"op\":\"stats\"}")) return s;
  LineReader in(fd_);
  std::string line;
  while (in.read_line(&line)) {
    try {
      const JsonValue msg = campaign::json_parse(line);
      if (msg.str_or("event") != "stats") continue;
      if (const JsonValue* sv = msg.find("service");
          sv && sv->kind == JsonValue::Kind::kObject)
        return cache_stats_from_json(*sv);
      return s;
    } catch (const std::exception&) {
      return s;
    }
  }
  return s;
}

void Client::shutdown_server() {
  write_line(fd_, "{\"op\":\"shutdown\"}");
  LineReader in(fd_);
  std::string line;
  in.read_line(&line);  // "bye" (or EOF)
}

}  // namespace vpdift::service
