#include "service/client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "campaign/json.hpp"
#include "service/protocol.hpp"

namespace vpdift::service {

using campaign::JsonValue;

Client::Client(const std::string& socket_path, const ClientOptions& opts)
    : opts_(opts) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  // Deadline-bounded connect: go nonblocking, poll for writability, read
  // SO_ERROR. A dead-but-bound socket path fails here instead of hanging.
  const int fl = ::fcntl(fd_, F_GETFL, 0);
  if (opts_.timeout_ms > 0 && fl >= 0)
    ::fcntl(fd_, F_SETFL, fl | O_NONBLOCK);
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (opts_.timeout_ms > 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
      struct pollfd pfd {fd_, POLLOUT, 0};
      int pr;
      do {
        pr = ::poll(&pfd, 1, static_cast<int>(opts_.timeout_ms));
      } while (pr < 0 && errno == EINTR);
      int err = 0;
      socklen_t len = sizeof err;
      if (pr <= 0 ||
          ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error(
            "cannot connect to " + socket_path + ": " +
            (pr == 0 ? "connect timed out" : std::strerror(err ? err : errno)));
      }
    } else {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("cannot connect to " + socket_path + ": " +
                               std::strerror(saved));
    }
  }
  // Reads go through DeadlineLineReader (poll-before-read), so the fd can
  // stay blocking for the small request writes.
  if (opts_.timeout_ms > 0 && fl >= 0) ::fcntl(fd_, F_SETFL, fl);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::ping() {
  if (!write_line(fd_, "{\"op\":\"ping\"}")) return false;
  DeadlineLineReader in(fd_, opts_.timeout_ms);
  std::string line;
  if (!in.read_line(&line)) return false;
  try {
    return campaign::json_parse(line).str_or("event") == "pong";
  } catch (const std::exception&) {
    return false;
  }
}

Outcome Client::await_done(
    std::uint64_t id, const std::function<void(const JobEvent&)>& on_job) {
  Outcome out;
  // Until "accepted" this is a control-plane wait (short deadline); after
  // it the submission may legitimately run for a long time, so the clock
  // relaxes to the idle timeout — which any event resets, server
  // heartbeats included.
  DeadlineLineReader in(fd_, opts_.timeout_ms);
  std::string line;
  bool accepted = false;
  for (;;) {
    if (!in.read_line(&line)) {
      if (in.timed_out())
        out.error = accepted ? "server went silent mid-submission"
                             : "timed out waiting for the server";
      else
        out.error = "server closed the connection";
      return out;
    }
    JsonValue msg;
    try {
      msg = campaign::json_parse(line);
    } catch (const std::exception& e) {
      out.error = std::string("garbled server line: ") + e.what();
      return out;
    }
    const std::string ev = msg.str_or("event");
    const std::uint64_t ev_id = msg.u64_or("id", id);
    if (ev == "error") {
      // Only this submission's errors end it. id 0 is the server's
      // connection-level reply (e.g. a garbled request line) — also fatal;
      // another submission's error on a shared connection is not ours.
      if (ev_id != id && ev_id != 0) continue;
      out.error = msg.str_or("error", "unknown server error");
      out.retry_after_ms = msg.u64_or("retry_after_ms", 0);
      return out;
    }
    if (ev_id != id) continue;
    if (ev == "hb") continue;  // liveness only; the read above reset the clock
    if (ev == "accepted") {
      out.jobs = static_cast<std::size_t>(msg.u64_or("jobs", 0));
      accepted = true;
      in.set_timeout(opts_.idle_timeout_ms);
      continue;
    }
    if (ev == "job") {
      if (on_job) {
        JobEvent je;
        je.name = msg.str_or("name");
        je.verdict = msg.str_or("verdict");
        je.ok = msg.bool_or("ok");
        on_job(je);
      }
      continue;
    }
    if (ev == "done") {
      out.ok = msg.bool_or("ok");
      out.report = msg.str_or("report");
      if (const JsonValue* sv = msg.find("service");
          sv && sv->kind == JsonValue::Kind::kObject)
        out.service = cache_stats_from_json(*sv);
      return out;
    }
  }
}

Outcome Client::submit(const std::string& body,
                       const std::function<void(const JobEvent&)>& on_job) {
  Outcome out;
  for (int attempt = 0;; ++attempt) {
    const std::uint64_t id = next_id_++;
    const std::string req =
        "{\"op\":\"submit\",\"id\":" + std::to_string(id) + "," + body + "}";
    if (!write_line(fd_, req)) {
      out.error = "cannot write to server";
      return out;
    }
    out = await_done(id, on_job);
    if (out.error != "overloaded" || attempt >= opts_.submit_retries)
      return out;
    // Shed: back off and retry. The server's hint seeds a capped
    // exponential so a whole fleet of shed clients doesn't return in step.
    std::uint64_t wait = out.retry_after_ms ? out.retry_after_ms : 100;
    wait = std::min<std::uint64_t>(wait << std::min(attempt, 4), 5000);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
  }
}

Outcome Client::submit_ref(
    const std::string& ref, std::uint64_t seed, std::size_t workers,
    const std::function<void(const JobEvent&)>& on_job) {
  std::string body = "\"ref\":" + campaign::json_quote(ref) +
                     ",\"seed\":" + std::to_string(seed);
  if (workers) body += ",\"workers\":" + std::to_string(workers);
  return submit(body, on_job);
}

Outcome Client::submit_spec(
    const std::string& spec_text,
    const std::function<void(const JobEvent&)>& on_job, bool analyze) {
  const std::string body = "\"spec\":" + campaign::json_quote(spec_text) +
                           (analyze ? ",\"analyze\":true" : "");
  return submit(body, on_job);
}

CacheStats Client::server_stats() {
  CacheStats s;
  if (!write_line(fd_, "{\"op\":\"stats\"}")) return s;
  DeadlineLineReader in(fd_, opts_.timeout_ms);
  std::string line;
  while (in.read_line(&line)) {
    try {
      const JsonValue msg = campaign::json_parse(line);
      if (msg.str_or("event") != "stats") continue;
      if (const JsonValue* sv = msg.find("service");
          sv && sv->kind == JsonValue::Kind::kObject)
        return cache_stats_from_json(*sv);
      return s;
    } catch (const std::exception&) {
      return s;
    }
  }
  return s;
}

void Client::shutdown_server() {
  write_line(fd_, "{\"op\":\"shutdown\"}");
  DeadlineLineReader in(fd_, opts_.timeout_ms);
  std::string line;
  in.read_line(&line);  // "bye" (or EOF / timeout)
}

}  // namespace vpdift::service
