// The campaign service daemon (vpdift-serve's engine).
//
// A single-threaded poll() loop in the parent process:
//   * listens on an AF_UNIX stream socket for clients (NDJSON protocol,
//     see docs/service.md),
//   * pre-forks N worker processes, each a worker_main() loop over a
//     socketpair with its own WarmCache — process isolation is what lets
//     thread-confined simulations run in parallel AND stay warm,
//   * shards submissions across the workers: declarative campaign jobs by
//     content-hash affinity (the same job lands on the same worker, so its
//     warm caches hit), fault-injection suites as one golden op to the
//     suite's owner worker followed by contiguous fault chunks fanned out
//     to every worker,
//   * streams per-job results back to the submitting client as they
//     complete, then a final report (bit-identical to the one-shot CLI's,
//     plus a "service" cache-counter block).
//
// A crashed worker is reaped via SIGCHLD: its in-flight jobs resolve to
// verdict "crash" (the submission still completes) and a fresh worker is
// forked in its slot. SIGINT/SIGTERM drain gracefully: no new submissions,
// in-flight ones finish, then the workers are told to quit.
#pragma once

#include <cstddef>
#include <string>

namespace vpdift::service {

struct ServerOptions {
  std::string socket_path;   ///< AF_UNIX path to listen on
  std::size_t workers = 2;   ///< pre-forked worker processes
  bool quiet = false;        ///< suppress stderr progress lines
};

/// Runs the daemon until a shutdown request or SIGINT/SIGTERM; returns the
/// process exit code (0 on clean shutdown).
int run_server(const ServerOptions& opts);

}  // namespace vpdift::service
