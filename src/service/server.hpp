// The campaign service daemon (vpdift-serve's engine).
//
// A single-threaded poll() loop in the parent process:
//   * listens on an AF_UNIX stream socket for clients (NDJSON protocol,
//     see docs/service.md),
//   * pre-forks N worker processes, each a worker_main() loop over a
//     socketpair with its own WarmCache — process isolation is what lets
//     thread-confined simulations run in parallel AND stay warm,
//   * shards submissions across the workers: declarative campaign jobs by
//     content-hash affinity (the same job lands on the same worker, so its
//     warm caches hit), fault-injection suites as one golden op to the
//     suite's owner worker followed by contiguous fault chunks fanned out
//     to every worker,
//   * streams per-job results back to the submitting client as they
//     complete, then a final report (bit-identical to the one-shot CLI's,
//     plus a "service" cache-counter block).
//
// A crashed worker is reaped via SIGCHLD: its in-flight jobs resolve to
// verdict "crash" (the submission still completes) and a fresh worker is
// forked in its slot. SIGINT/SIGTERM drain gracefully: no new submissions,
// in-flight ops finish (queued-but-unsent jobs are skipped and the partial
// report is marked "interrupted"), then the workers are told to quit.
//
// Liveness supervision rides the same loop: workers heartbeat over their
// socketpair, and a busy worker that goes silent past the heartbeat timeout
// — or a job that overruns its wall budget past a grace period — is
// escalated SIGTERM -> SIGKILL -> respawn, its job resolving to verdict
// "hung" instead of "crash". Per-worker admission queues bound memory; with
// --max-queued set, excess submissions are shed with a structured
// "overloaded" error carrying a retry_after_ms hint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace vpdift::service {

struct ServerOptions {
  std::string socket_path;   ///< AF_UNIX path to listen on
  std::size_t workers = 2;   ///< pre-forked worker processes
  bool quiet = false;        ///< suppress stderr progress lines

  /// Server-side cap on a job's wall-clock budget (seconds; 0 = none).
  /// Client budgets above the cap — or absent entirely — are clamped down
  /// to it, so no submission can hold a worker forever.
  double max_job_wall_s = 0;
  /// Server-side cap on a job's memory headroom (MiB; 0 = none), clamped
  /// onto client budgets the same way and enforced via RLIMIT_AS in the
  /// worker.
  std::uint64_t max_job_mem_mb = 0;
  /// Admission bound: at most this many ops queued-or-running per worker on
  /// average (0 = unbounded). A submission that would exceed the bound is
  /// rejected with error "overloaded" + retry_after_ms.
  std::size_t max_queued = 0;

  /// Worker heartbeat period (ms; 0 disables liveness supervision).
  std::uint64_t heartbeat_ms = 500;
  /// A busy worker silent for this long is presumed wedged and escalated.
  std::uint64_t heartbeat_timeout_ms = 10000;
  /// SIGTERM -> SIGKILL grace during escalation.
  std::uint64_t kill_grace_ms = 2000;
  /// Slack added to a job's wall budget before the server gives up on the
  /// worker delivering the result itself (the in-worker wall guard should
  /// fire well within this).
  std::uint64_t deadline_grace_ms = 3000;
};

/// Runs the daemon until a shutdown request or SIGINT/SIGTERM; returns the
/// process exit code (0 on clean shutdown).
int run_server(const ServerOptions& opts);

}  // namespace vpdift::service
