// The service's content-hash warm cache.
//
// One WarmCache lives in each worker process and persists across
// submissions. It layers four caches, all keyed by content (see hash.hpp):
//
//   * firmware   — resolved rvasm::Programs. Builtin names (primes, qsort,
//                  attack:N, ...) key by name; ELF paths key by file BYTES,
//                  so editing the file misses while resubmitting it hits.
//   * policy     — campaign::ResolvedPolicy keyed by (policy content,
//                  program content): a policy resolves against the
//                  firmware's symbols, so the same text against a different
//                  image is a different object. Entries are shared_ptr —
//                  a ResolvedPolicy owns its lattice and is move-only.
//   * result     — finished JobResults for deterministic jobs (no wall
//                  budget, not a crash), keyed by the full job identity.
//                  This is what makes a repeated fi golden run free.
//   * analysis   — sa::AnalysisResult keyed by (program content, policy
//                  content, RAM size): a warm resubmission of an analyze
//                  job reuses the lint report and pin set without re-running
//                  the abstract interpreter.
//   * fault site — one fi::FiSiteCache per (firmware content, seed): the
//                  snapshots taken along a suite's golden cursor plus the
//                  cursor outcome. The fault schedule is a deterministic
//                  prefix sequence in n, so fi:qsort:10 and fi:qsort:20
//                  under one seed share entries.
//
// Everything here is single-threaded by design (lattices and snapshots are
// thread-confined); the service gets its parallelism from running one
// WarmCache per worker *process*.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "campaign/runner.hpp"
#include "fi/fork.hpp"
#include "fi/suite.hpp"
#include "rvasm/program.hpp"

namespace vpdift::service {

/// Counter block describing the cache behaviour of some span of work (one
/// op, one submission, or a worker's lifetime — deltas subtract cleanly).
struct CacheStats {
  std::uint64_t elf_hits = 0, elf_misses = 0;
  std::uint64_t policy_hits = 0, policy_misses = 0;
  std::uint64_t golden_cache_hits = 0, golden_cache_misses = 0;
  std::uint64_t analysis_hits = 0, analysis_misses = 0;
  std::uint64_t snapshot_hits = 0, snapshot_misses = 0;
  std::uint64_t vp_builds = 0, vp_reuses = 0;
  /// VP re-arms that also kept the core's translated-block cache warm
  /// (firmware content hash unchanged — see VpPool::acquire).
  std::uint64_t translation_reuses = 0;
  /// Instructions actually retired (cache hits retire none) — the number
  /// the warm-vs-cold acceptance check compares.
  std::uint64_t executed_instret = 0;

  // Resilience counters (incremented by the server's supervision loop, not
  // by the caches; they ride in the same block so the report JSON and the
  // CI smoke gates see one consistent counter schema).
  std::uint64_t hung_jobs = 0;         ///< jobs killed by deadline/heartbeat
                                       ///< escalation (verdict "hung")
  std::uint64_t killed_workers = 0;    ///< involuntary worker deaths: crashed,
                                       ///< killed externally, or escalated
  std::uint64_t shed_submissions = 0;  ///< submissions rejected "overloaded"
  std::uint64_t heartbeat_misses = 0;  ///< busy workers silent past the
                                       ///< heartbeat timeout

  CacheStats& operator+=(const CacheStats& o);
  CacheStats operator-(const CacheStats& o) const;

  /// One flat JSON object, e.g. {"elf_hits":3,...,"executed_instret":12}.
  std::string to_json() const;
};

/// Parses a CacheStats from the JSON object `to_json` produced (absent or
/// mistyped fields read as 0) — the client side of the counter round trip.
CacheStats cache_stats_from_json(const campaign::JsonValue& obj);

class WarmCache {
 public:
  /// Content key of a firmware reference (builtin name or ELF path).
  /// Throws std::runtime_error when a path is unreadable.
  std::uint64_t firmware_key(const std::string& name);

  /// Content key of a resolved program (segments + entry point).
  static std::uint64_t program_key(const rvasm::Program& program);

  /// Content key of a policy reference (builtin scenario name or file).
  std::uint64_t policy_content_key(const std::string& name);

  /// The resolved program for `name`, cached by content key.
  const rvasm::Program& firmware(const std::string& name);

  /// The resolved policy for `name` against `program`, cached by
  /// (policy content, program content).
  std::shared_ptr<const campaign::ResolvedPolicy> policy(
      const std::string& name, const rvasm::Program& program);

  /// The static-analysis result for `program` under the policy named
  /// `policy_name`, cached by (program content, policy content, RAM size).
  /// `policy` is the already-resolved policy the analysis runs against.
  std::shared_ptr<const sa::AnalysisResult> analysis(
      const std::string& policy_name, const rvasm::Program& program,
      const dift::SecurityPolicy* policy, std::uint64_t ram_size);

  /// Identity of a declarative job: name, firmware content, policy content,
  /// mode, uart input and budgets. Hook-carrying jobs have no stable
  /// identity (see cacheable()).
  std::uint64_t job_key(const campaign::JobSpec& job);

  /// True when a finished result for `job` may be replayed from the cache:
  /// declarative (no programmatic hooks) and free of wall-clock budgets —
  /// the two ways a re-run could legitimately differ.
  static bool cacheable(const campaign::JobSpec& job);

  const campaign::JobResult* find_result(std::uint64_t key) const;
  void store_result(std::uint64_t key, const campaign::JobResult& r);

  /// Suite identity for the fault-site cache: (firmware content, seed).
  /// Deliberately excludes n_faults — the schedule is a prefix sequence.
  std::uint64_t suite_key(const fi::FiSuiteSpec& spec);

  fi::FiSiteCache& site_cache(std::uint64_t key) { return sites_[key]; }

  campaign::VpPool& pool() { return pool_; }

  /// A RunnerEnv whose resolvers and pool are backed by this cache. The
  /// returned object captures `this`; it must not outlive the cache.
  campaign::RunnerEnv env();

  void note_executed(std::uint64_t instret) {
    counters_.executed_instret += instret;
  }
  void note_golden(bool hit) {
    ++(hit ? counters_.golden_cache_hits : counters_.golden_cache_misses);
  }

  /// Cumulative counters (live site-cache and VP-pool numbers folded in).
  CacheStats stats() const;

 private:
  std::map<std::uint64_t, rvasm::Program> firmware_;
  std::map<std::uint64_t, std::shared_ptr<const campaign::ResolvedPolicy>>
      policies_;
  std::map<std::uint64_t, campaign::JobResult> results_;
  std::map<std::uint64_t, std::shared_ptr<const sa::AnalysisResult>> analyses_;
  std::map<std::uint64_t, fi::FiSiteCache> sites_;
  campaign::VpPool pool_;
  CacheStats counters_;
};

}  // namespace vpdift::service
