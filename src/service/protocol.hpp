// Wire encoding for the service: newline-delimited JSON (NDJSON).
//
// Both hops — client <-> server over the AF_UNIX listen socket, and
// server <-> worker over each pre-forked worker's socketpair — speak one
// JSON object per line. This module provides the two halves every endpoint
// needs:
//
//   * value encoding: a full-fidelity campaign::JobResult round trip
//     (including the embedded vp::RunResult, violation record and DIFT
//     counters — a decoded golden run must drive fi::suite_from_golden and
//     fi::classify to the same verdicts as the in-process original), plus
//     fi::ForkStats;
//   * line transport: a blocking reader for the single-threaded worker and
//     client loops, an incremental buffer for the server's poll() loop, and
//     a partial-write-safe line writer.
//
// Message *shapes* (which fields each op carries) are documented in
// docs/service.md and assembled inline by server.cpp / worker.cpp /
// client.cpp — they are one-liner compositions of these primitives.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/json.hpp"
#include "campaign/runner.hpp"
#include "fi/fork.hpp"

namespace vpdift::service {

/// One-line JSON object encoding of a JobResult, full fidelity.
std::string job_result_to_json(const campaign::JobResult& r);

/// Inverse of job_result_to_json. Absent fields decode to their defaults.
/// An exit reason this build has no name for decodes to
/// vp::ExitReason::kUnknown with the raw string preserved in
/// RunResult::reason_raw (and re-emitted verbatim on the next encode — the
/// round trip is lossless even through an older relay). Unknown violation
/// kinds still throw std::runtime_error.
campaign::JobResult job_result_from_json(const campaign::JsonValue& obj);

std::string fork_stats_to_json(const fi::ForkStats& s);
fi::ForkStats fork_stats_from_json(const campaign::JsonValue& obj);

/// Full-fidelity sa::AnalysisResult round trip (unlike sa::to_json, which
/// is the summary-level report schema): block/entry/pin lists survive, so
/// a client-side aggregator reproduces the same report the worker would.
std::string analysis_to_json(const sa::AnalysisResult& r);
sa::AnalysisResult analysis_from_json(const campaign::JsonValue& obj);

/// Blocking newline-delimited reader over a file descriptor (worker and
/// client loops — one request or event at a time).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads one line (without the trailing newline). False on EOF or error.
  bool read_line(std::string* out);

 private:
  int fd_;
  std::string buf_;
};

/// LineReader variant with a poll()-based deadline, for clients that must
/// not hang on a server that accepted the connection but never answers.
/// The timeout bounds each wait for NEW bytes (not the whole line), so a
/// slowly streaming peer that keeps making progress never trips it.
class DeadlineLineReader {
 public:
  /// `timeout_ms` 0 = block forever (plain LineReader behaviour).
  DeadlineLineReader(int fd, std::uint64_t timeout_ms)
      : fd_(fd), timeout_ms_(timeout_ms) {}

  /// Reads one line (without the trailing newline). False on EOF, error,
  /// or deadline expiry — check timed_out() to tell the last apart.
  bool read_line(std::string* out);

  bool timed_out() const { return timed_out_; }
  void set_timeout(std::uint64_t ms) { timeout_ms_ = ms; }

 private:
  int fd_;
  std::uint64_t timeout_ms_;
  bool timed_out_ = false;
  std::string buf_;
};

/// Incremental newline splitter for the server's poll() loop: feed whatever
/// read() returned, pop complete lines.
class LineBuffer {
 public:
  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  bool pop(std::string* line);

 private:
  std::string buf_;
};

/// Writes `line` plus a newline, riding out partial writes and EINTR.
/// False on error (e.g. EPIPE after the peer vanished).
bool write_line(int fd, const std::string& line);

}  // namespace vpdift::service
