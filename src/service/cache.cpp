#include "service/cache.hpp"

#include <utility>

#include "service/hash.hpp"

namespace vpdift::service {

CacheStats& CacheStats::operator+=(const CacheStats& o) {
  elf_hits += o.elf_hits;
  elf_misses += o.elf_misses;
  policy_hits += o.policy_hits;
  policy_misses += o.policy_misses;
  golden_cache_hits += o.golden_cache_hits;
  golden_cache_misses += o.golden_cache_misses;
  analysis_hits += o.analysis_hits;
  analysis_misses += o.analysis_misses;
  snapshot_hits += o.snapshot_hits;
  snapshot_misses += o.snapshot_misses;
  vp_builds += o.vp_builds;
  vp_reuses += o.vp_reuses;
  translation_reuses += o.translation_reuses;
  executed_instret += o.executed_instret;
  hung_jobs += o.hung_jobs;
  killed_workers += o.killed_workers;
  shed_submissions += o.shed_submissions;
  heartbeat_misses += o.heartbeat_misses;
  return *this;
}

CacheStats CacheStats::operator-(const CacheStats& o) const {
  CacheStats d;
  d.elf_hits = elf_hits - o.elf_hits;
  d.elf_misses = elf_misses - o.elf_misses;
  d.policy_hits = policy_hits - o.policy_hits;
  d.policy_misses = policy_misses - o.policy_misses;
  d.golden_cache_hits = golden_cache_hits - o.golden_cache_hits;
  d.golden_cache_misses = golden_cache_misses - o.golden_cache_misses;
  d.analysis_hits = analysis_hits - o.analysis_hits;
  d.analysis_misses = analysis_misses - o.analysis_misses;
  d.snapshot_hits = snapshot_hits - o.snapshot_hits;
  d.snapshot_misses = snapshot_misses - o.snapshot_misses;
  d.vp_builds = vp_builds - o.vp_builds;
  d.vp_reuses = vp_reuses - o.vp_reuses;
  d.translation_reuses = translation_reuses - o.translation_reuses;
  d.executed_instret = executed_instret - o.executed_instret;
  d.hung_jobs = hung_jobs - o.hung_jobs;
  d.killed_workers = killed_workers - o.killed_workers;
  d.shed_submissions = shed_submissions - o.shed_submissions;
  d.heartbeat_misses = heartbeat_misses - o.heartbeat_misses;
  return d;
}

std::string CacheStats::to_json() const {
  auto f = [](const char* k, std::uint64_t v, bool last = false) {
    return "\"" + std::string(k) + "\":" + std::to_string(v) +
           (last ? "" : ",");
  };
  return "{" + f("elf_hits", elf_hits) + f("elf_misses", elf_misses) +
         f("policy_hits", policy_hits) + f("policy_misses", policy_misses) +
         f("golden_cache_hits", golden_cache_hits) +
         f("golden_cache_misses", golden_cache_misses) +
         f("analysis_hits", analysis_hits) +
         f("analysis_misses", analysis_misses) +
         f("snapshot_hits", snapshot_hits) +
         f("snapshot_misses", snapshot_misses) + f("vp_builds", vp_builds) +
         f("vp_reuses", vp_reuses) +
         f("translation_reuses", translation_reuses) +
         f("executed_instret", executed_instret) + f("hung_jobs", hung_jobs) +
         f("killed_workers", killed_workers) +
         f("shed_submissions", shed_submissions) +
         f("heartbeat_misses", heartbeat_misses, true) + "}";
}

CacheStats cache_stats_from_json(const campaign::JsonValue& obj) {
  CacheStats s;
  s.elf_hits = obj.u64_or("elf_hits", 0);
  s.elf_misses = obj.u64_or("elf_misses", 0);
  s.policy_hits = obj.u64_or("policy_hits", 0);
  s.policy_misses = obj.u64_or("policy_misses", 0);
  s.golden_cache_hits = obj.u64_or("golden_cache_hits", 0);
  s.golden_cache_misses = obj.u64_or("golden_cache_misses", 0);
  s.analysis_hits = obj.u64_or("analysis_hits", 0);
  s.analysis_misses = obj.u64_or("analysis_misses", 0);
  s.snapshot_hits = obj.u64_or("snapshot_hits", 0);
  s.snapshot_misses = obj.u64_or("snapshot_misses", 0);
  s.vp_builds = obj.u64_or("vp_builds", 0);
  s.vp_reuses = obj.u64_or("vp_reuses", 0);
  s.translation_reuses = obj.u64_or("translation_reuses", 0);
  s.executed_instret = obj.u64_or("executed_instret", 0);
  s.hung_jobs = obj.u64_or("hung_jobs", 0);
  s.killed_workers = obj.u64_or("killed_workers", 0);
  s.shed_submissions = obj.u64_or("shed_submissions", 0);
  s.heartbeat_misses = obj.u64_or("heartbeat_misses", 0);
  return s;
}

namespace {

/// Builtin firmware references resolve by NAME (their content is compiled
/// into this binary and can only change with it); anything else is a path
/// whose bytes are the identity. Must mirror campaign::resolve_firmware.
bool is_builtin_firmware(const std::string& name) {
  return name == "primes" || name == "qsort" || name == "dhrystone" ||
         name == "sha256" || name == "sha512" || name == "simple-sensor" ||
         name == "rtos-tasks" || name == "immobilizer" ||
         name == "immobilizer-vulnerable" || name == "code-reuse" ||
         name == "spin" || name.rfind("attack:", 0) == 0;
}

/// Builtin policy scenarios, mirroring campaign::resolve_policy.
bool is_builtin_policy(const std::string& name) {
  return name.empty() || name == "permissive" || name == "code-injection" ||
         name == "immobilizer" || name == "immobilizer-per-byte";
}

}  // namespace

std::uint64_t WarmCache::firmware_key(const std::string& name) {
  if (is_builtin_firmware(name)) return fnv1a64(name, fnv1a64("builtin-fw:"));
  const std::string path = name.rfind("file:", 0) == 0 ? name.substr(5) : name;
  return hash_file(path);
}

std::uint64_t WarmCache::program_key(const rvasm::Program& program) {
  // Single source of truth: the pool's warm-translation gate hashes the
  // resolved program the same way, so a policy-cache key and a translation
  // reuse decision can never disagree about firmware identity.
  return campaign::program_content_key(program);
}

std::uint64_t WarmCache::policy_content_key(const std::string& name) {
  if (is_builtin_policy(name))
    return fnv1a64(name, fnv1a64("builtin-policy:"));
  const std::string path = name.rfind("file:", 0) == 0 ? name.substr(5) : name;
  return hash_file(path);
}

const rvasm::Program& WarmCache::firmware(const std::string& name) {
  const std::uint64_t key = firmware_key(name);
  auto it = firmware_.find(key);
  if (it != firmware_.end()) {
    ++counters_.elf_hits;
    return it->second;
  }
  ++counters_.elf_misses;
  return firmware_.emplace(key, campaign::resolve_firmware(name))
      .first->second;
}

std::shared_ptr<const campaign::ResolvedPolicy> WarmCache::policy(
    const std::string& name, const rvasm::Program& program) {
  const std::uint64_t key =
      fnv1a64_u64(program_key(program), policy_content_key(name));
  auto it = policies_.find(key);
  if (it != policies_.end()) {
    ++counters_.policy_hits;
    return it->second;
  }
  ++counters_.policy_misses;
  auto resolved = std::make_shared<campaign::ResolvedPolicy>(
      campaign::resolve_policy(name, program));
  policies_.emplace(key, resolved);
  return resolved;
}

std::shared_ptr<const sa::AnalysisResult> WarmCache::analysis(
    const std::string& policy_name, const rvasm::Program& program,
    const dift::SecurityPolicy* policy, std::uint64_t ram_size) {
  const std::uint64_t key = fnv1a64_u64(
      ram_size, fnv1a64_u64(program_key(program),
                            fnv1a64_u64(policy_content_key(policy_name),
                                        fnv1a64("analysis:"))));
  auto it = analyses_.find(key);
  if (it != analyses_.end()) {
    ++counters_.analysis_hits;
    return it->second;
  }
  ++counters_.analysis_misses;
  sa::AnalyzeOptions opts;
  opts.ram_size = ram_size;
  auto result = std::make_shared<const sa::AnalysisResult>(
      sa::analyze(program, policy, opts));
  analyses_.emplace(key, result);
  return result;
}

std::uint64_t WarmCache::job_key(const campaign::JobSpec& job) {
  std::uint64_t h = fnv1a64("job:");
  h = fnv1a64(job.name, h);
  h = fnv1a64_u64(firmware_key(job.firmware), h);
  h = fnv1a64_u64(policy_content_key(job.policy), h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(job.mode), h);
  h = fnv1a64(job.uart_input, h);
  h = fnv1a64_u64(job.max_ms, h);
  h = fnv1a64_u64(job.mem_budget_mb, h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(job.retries), h);
  h = fnv1a64_u64(job.engine_ecu ? 1 : 0, h);
  h = fnv1a64_u64(job.analyze ? 1 : 0, h);
  h = fnv1a64(job.expect, h);
  return h;
}

bool WarmCache::cacheable(const campaign::JobSpec& job) {
  return !job.make_program && !job.make_config && !job.pre_run_dift &&
         !job.pre_run_plain && job.wall_budget_s == 0.0;
}

const campaign::JobResult* WarmCache::find_result(std::uint64_t key) const {
  auto it = results_.find(key);
  return it == results_.end() ? nullptr : &it->second;
}

void WarmCache::store_result(std::uint64_t key, const campaign::JobResult& r) {
  results_[key] = r;
}

std::uint64_t WarmCache::suite_key(const fi::FiSuiteSpec& spec) {
  return fnv1a64_u64(spec.seed,
                     fnv1a64_u64(firmware_key(spec.benchmark),
                                 fnv1a64("fi-suite:")));
}

campaign::RunnerEnv WarmCache::env() {
  campaign::RunnerEnv e;
  e.resolve_firmware = [this](const std::string& name) {
    return firmware(name);
  };
  e.resolve_policy = [this](const std::string& name,
                            const rvasm::Program& program) {
    return policy(name, program);
  };
  e.resolve_analysis = [this](const std::string& /*firmware*/,
                              const std::string& policy_name,
                              const rvasm::Program& program,
                              const dift::SecurityPolicy* policy,
                              std::uint64_t ram_size) {
    return analysis(policy_name, program, policy, ram_size);
  };
  e.pool = &pool_;
  return e;
}

CacheStats WarmCache::stats() const {
  CacheStats s = counters_;
  s.vp_builds = pool_.builds();
  s.vp_reuses = pool_.reuses();
  s.translation_reuses = pool_.translation_reuses();
  for (const auto& [key, c] : sites_) {
    s.snapshot_hits += c.hits;
    s.snapshot_misses += c.misses;
  }
  return s;
}

}  // namespace vpdift::service
