// Worker-process entry point.
//
// A worker is a single-threaded loop over one socketpair to the server:
// read an NDJSON request, execute it through a process-local
// Executor/WarmCache (simulations are thread-confined — process isolation
// is what lets the service shard without sharing), write the reply. The
// caches live for the process lifetime, which is exactly the warm state a
// repeat submission hits.
//
// Requests (parent -> worker), one JSON object per line:
//   {"op":"job","id":N,"spec":{...}}            declarative campaign job
//   {"op":"fi-golden","id":N,"benchmark":B,"seed":S,"n":K}
//   {"op":"fi","id":N,"benchmark":B,"seed":S,"n":K,
//    "golden":{...},"indices":[...]}            fork-mode fault chunk
//   {"op":"stats","id":N}                       cumulative cache counters
//   {"op":"quit"}                               exit 0
//
// Replies (worker -> parent):
//   {"ev":"job","id":N,"result":{...}}          one fi fault finished
//   {"ev":"result","id":N,...}                  op finished; carries
//       "result" (job/fi-golden), or "fork" + "skipped" (fi), and always
//       "stats" (the op's CacheStats delta; cumulative for op "stats")
//   {"ev":"error","id":N,"error":"..."}         op failed
//   {"ev":"hb","id":N,"instret":I}              liveness heartbeat, every
//       WorkerConfig::heartbeat_ms from a dedicated thread. N is the op
//       currently executing (0 when idle) and I the live retirement count
//       of that op's simulation — a silent-but-busy worker is distinguish-
//       able from a wedged one by whether I still advances.
//
// The heartbeat thread and the op loop share the socket; every write goes
// through one mutex so frames never interleave mid-line. Everything else in
// the worker stays single-threaded (simulations are thread-confined).
#pragma once

#include <cstdint>

namespace vpdift::service {

struct WorkerConfig {
  /// Heartbeat period; 0 disables the heartbeat thread entirely (the
  /// pre-resilience wire behaviour, used by tests that count exact frames).
  std::uint64_t heartbeat_ms = 500;
};

/// Runs the worker loop on `fd` until EOF or a quit op; returns the process
/// exit code. Never throws.
int worker_main(int fd, const WorkerConfig& cfg = {});

}  // namespace vpdift::service
