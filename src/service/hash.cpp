#include "service/hash.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vpdift::service {

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::uint64_t hash_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for hashing: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return fnv1a64(buf.str());
}

}  // namespace vpdift::service
