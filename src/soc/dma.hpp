// DMA controller: tag-preserving memory-to-memory copies behind the CPU's
// back — the classic fine-grained HW/SW interaction a source-level DIFT
// misses. The copy runs in a kernel thread, moving one burst per delta of
// simulated time, and raises an interrupt on completion.
//
// Register map:
//   0x00 SRC   (rw) source bus address
//   0x04 DST   (rw) destination bus address
//   0x08 LEN   (rw) byte count
//   0x0c CTRL  (w)  write 1: start transfer
//   0x10 STATUS(r)  bit0: busy, bit1: done
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "dift/tag.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class Dma : public sysc::Module {
 public:
  static constexpr std::uint64_t kSrc = 0x00, kDst = 0x04, kLen = 0x08,
                                 kCtrl = 0x0c, kStatus = 0x10;
  static constexpr std::uint32_t kBurstBytes = 16;

  Dma(sysc::Simulation& sim, std::string name, bool tainted_mode);

  tlmlite::TargetSocket& socket() { return tsock_; }
  /// Initiator used for the actual copies (bind to the bus).
  tlmlite::InitiatorSocket& bus_socket() { return isock_; }
  /// Completion interrupt (pulsed).
  void set_irq(std::function<void()> fn) { irq_ = std::move(fn); }

  void start() { sim_->spawn(run()); }

  std::uint64_t transfers_completed() const { return transfers_; }
  /// Bursts whose tags were forwarded as one uniform summary.
  std::uint64_t summary_hits() const { return summary_hits_; }

 private:
  sysc::Task run();
  void transport(tlmlite::Payload& p, sysc::Time& delay);

  tlmlite::TargetSocket tsock_;
  tlmlite::InitiatorSocket isock_;
  sysc::Event start_event_;
  std::uint32_t src_ = 0, dst_ = 0, len_ = 0;
  bool busy_ = false, done_ = false;
  bool tainted_mode_;
  std::uint64_t transfers_ = 0;
  std::uint64_t summary_hits_ = 0;
  std::function<void()> irq_;
};

}  // namespace vpdift::soc
