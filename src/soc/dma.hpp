// DMA controller: tag-preserving memory-to-memory copies behind the CPU's
// back — the classic fine-grained HW/SW interaction a source-level DIFT
// misses. The copy runs in a kernel thread, moving one burst per delta of
// simulated time, and raises an interrupt on completion.
//
// Register map:
//   0x00 SRC   (rw) source bus address
//   0x04 DST   (rw) destination bus address
//   0x08 LEN   (rw) byte count
//   0x0c CTRL  (w)  write 1: start transfer
//   0x10 STATUS(r)  bit0: busy, bit1: done
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "dift/tag.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class Dma : public sysc::Module {
 public:
  static constexpr std::uint64_t kSrc = 0x00, kDst = 0x04, kLen = 0x08,
                                 kCtrl = 0x0c, kStatus = 0x10;
  static constexpr std::uint32_t kBurstBytes = 16;

  Dma(sysc::Simulation& sim, std::string name, bool tainted_mode);

  tlmlite::TargetSocket& socket() { return tsock_; }
  /// Initiator used for the actual copies (bind to the bus).
  tlmlite::InitiatorSocket& bus_socket() { return isock_; }
  /// Completion interrupt (pulsed).
  void set_irq(std::function<void()> fn) { irq_ = std::move(fn); }

  void start() { sim_->spawn(run()); }

  std::uint64_t transfers_completed() const { return transfers_; }
  /// Bursts whose tags were forwarded as one uniform summary.
  std::uint64_t summary_hits() const { return summary_hits_; }

  /// Snapshotable device state, including an in-flight transfer: cursor
  /// positions, remaining byte count, and the absolute due time of the next
  /// burst, so a restored copy resumes burst-exact.
  struct State {
    std::uint32_t src = 0, dst = 0, len = 0;
    bool busy = false, done = false;
    std::uint64_t transfers = 0;
    std::uint64_t summary_hits = 0;
    std::uint32_t cur_src = 0, cur_dst = 0, remaining = 0;
    sysc::Time next_burst_due;
  };
  State save_state() const {
    return {src_,      dst_,     len_,      busy_,    done_,          transfers_,
            summary_hits_, cur_src_, cur_dst_, remaining_, next_burst_due_};
  }
  void load_state(const State& s) {
    src_ = s.src;
    dst_ = s.dst;
    len_ = s.len;
    busy_ = s.busy;
    done_ = s.done;
    transfers_ = s.transfers;
    summary_hits_ = s.summary_hits;
    cur_src_ = s.cur_src;
    cur_dst_ = s.cur_dst;
    remaining_ = s.remaining;
    next_burst_due_ = s.next_burst_due;
    resume_hop_ = true;
  }

 private:
  sysc::Task run();
  void burst();
  void transport(tlmlite::Payload& p, sysc::Time& delay);

  tlmlite::TargetSocket tsock_;
  tlmlite::InitiatorSocket isock_;
  sysc::Event start_event_;
  std::uint32_t src_ = 0, dst_ = 0, len_ = 0;
  bool busy_ = false, done_ = false;
  bool tainted_mode_;
  std::uint64_t transfers_ = 0;
  std::uint64_t summary_hits_ = 0;
  // In-flight transfer progress (members, not locals, so snapshots can
  // capture a copy mid-burst).
  std::uint32_t cur_src_ = 0, cur_dst_ = 0, remaining_ = 0;
  sysc::Time next_burst_due_;
  bool resume_hop_ = false;
  std::function<void()> irq_;
};

}  // namespace vpdift::soc
