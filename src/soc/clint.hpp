// Core-local interruptor (CLINT): machine timer and software interrupts.
//
// mtime advances with simulated time (1 tick = 1 microsecond); a kernel
// thread asserts MTIP exactly when mtime reaches mtimecmp.
//
// Register map (as in riscv-vp / SiFive CLINT):
//   0x0000 MSIP      (rw) bit0: software interrupt
//   0x4000 MTIMECMP  (rw) 64-bit
//   0xbff8 MTIME     (r)  64-bit
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class Clint : public sysc::Module {
 public:
  static constexpr std::uint64_t kMsip = 0x0000, kMtimecmp = 0x4000,
                                 kMtime = 0xbff8;

  Clint(sysc::Simulation& sim, std::string name);

  tlmlite::TargetSocket& socket() { return tsock_; }

  /// Timer interrupt line (level) into the core.
  void set_timer_irq(std::function<void(bool)> fn) { timer_irq_ = std::move(fn); }
  /// Software interrupt line (level) into the core.
  void set_soft_irq(std::function<void(bool)> fn) { soft_irq_ = std::move(fn); }

  /// Current mtime in ticks (1 tick = 1 us of simulated time).
  std::uint64_t mtime() const { return sim_->now().micros(); }
  std::uint64_t mtimecmp() const { return mtimecmp_; }

  void start() { sim_->spawn(run()); }

  /// Snapshotable device state. The timer process's phase is pinned by
  /// `parked` (awaiting a compare rewrite) and `next_wake` (absolute end of
  /// the current polling slice), so a restored process re-joins the exact
  /// wake chain a cold run would execute. Does NOT re-derive the interrupt
  /// lines on load: the restored CSR mip is authoritative.
  struct State {
    std::uint64_t mtimecmp = ~0ull;
    std::uint32_t msip = 0;
    bool parked = false;
    sysc::Time next_wake;
  };
  State save_state() const { return {mtimecmp_, msip_, parked_, next_wake_}; }
  void load_state(const State& s) {
    mtimecmp_ = s.mtimecmp;
    msip_ = s.msip;
    parked_ = s.parked;
    next_wake_ = s.next_wake;
    resume_hop_ = true;
  }

 private:
  sysc::Task run();
  void transport(tlmlite::Payload& p, sysc::Time& delay);
  void update_timer_irq();

  tlmlite::TargetSocket tsock_;
  sysc::Event cmp_changed_;
  std::uint64_t mtimecmp_ = ~0ull;
  std::uint32_t msip_ = 0;
  bool parked_ = false;
  sysc::Time next_wake_;
  bool resume_hop_ = false;
  std::function<void(bool)> timer_irq_;
  std::function<void(bool)> soft_irq_;
};

}  // namespace vpdift::soc
