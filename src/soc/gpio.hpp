// GPIO port: 32 output pins with output-clearance checking, 32 host-driven
// input pins classified with a configurable tag. Models the "unsecured debug
// port" of the paper's threat model: a forgotten debug pin wired to the
// outside is an output interface, and the policy's clearance applies to it
// like to any UART.
//
// Register map:
//   0x00 OUT (rw)  output pin levels (clearance-checked on write)
//   0x04 IN  (r)   input pin levels (classified)
//   0x08 DIR (rw)  direction mask (1 = output); informational in this model
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "dift/tag.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class Gpio : public sysc::Module {
 public:
  static constexpr std::uint64_t kOut = 0x00, kIn = 0x04, kDir = 0x08;

  Gpio(sysc::Simulation& sim, std::string name);

  tlmlite::TargetSocket& socket() { return tsock_; }

  void set_output_clearance(std::optional<dift::Tag> tag) { out_clearance_ = tag; }
  void set_input_tag(dift::Tag tag) { in_tag_ = tag; }
  /// Called whenever the output register changes.
  void set_on_output(std::function<void(std::uint32_t)> fn) { on_out_ = std::move(fn); }

  /// Host-side stimulus.
  void set_input_pins(std::uint32_t levels) { in_ = levels; }
  std::uint32_t output_pins() const { return out_; }
  std::uint32_t direction() const { return dir_; }

  /// Snapshotable device state (pin levels and direction; clearances are
  /// policy configuration).
  struct State {
    std::uint32_t out = 0, in = 0, dir = 0;
  };
  State save_state() const { return {out_, in_, dir_}; }
  void load_state(const State& s) {
    out_ = s.out;
    in_ = s.in;
    dir_ = s.dir;
  }

 private:
  void transport(tlmlite::Payload& p, sysc::Time& delay);

  tlmlite::TargetSocket tsock_;
  std::uint32_t out_ = 0, in_ = 0, dir_ = 0;
  std::optional<dift::Tag> out_clearance_;
  dift::Tag in_tag_ = dift::kBottomTag;
  std::function<void(std::uint32_t)> on_out_;
};

}  // namespace vpdift::soc
