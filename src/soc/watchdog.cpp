#include "soc/watchdog.hpp"

#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Watchdog::Watchdog(sysc::Simulation& sim, std::string name)
    : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

sysc::Task Watchdog::run() {
  // Poll in bounded slices (same pattern as the CLINT: a re-arm while we
  // sleep cannot wake us, so the slice bounds the detection latency).
  while (true) {
    co_await sim_->delay(sysc::Time::us(50));
    if (!enabled_) continue;
    if (sim_->now().micros() >= deadline_us_) {
      ++resets_;
      deadline_us_ = sim_->now().micros() + timeout_us_;  // re-arm
      if (on_timeout_) on_timeout_();
    }
  }
}

void Watchdog::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(20);
  p.response = tlmlite::Response::kOk;
  auto rd_u32 = [&](std::uint32_t v) { tlmlite::fill_reg_u32(p, v); };
  auto payload_u32 = [&] { return tlmlite::collect_reg_u32(p); };
  switch (p.address) {
    case kLoad:
      if (p.is_read()) {
        rd_u32(timeout_us_);
      } else {
        timeout_us_ = payload_u32();
        deadline_us_ = sim_->now().micros() + timeout_us_;
      }
      break;
    case kPet:
      if (p.is_write() && payload_u32() == kPetMagic)
        deadline_us_ = sim_->now().micros() + timeout_us_;
      break;
    case kCtrl:
      if (p.is_read()) {
        rd_u32(enabled_ ? 1u : 0u);
      } else {
        enabled_ = (payload_u32() & 1) != 0;
        if (enabled_) deadline_us_ = sim_->now().micros() + timeout_us_;
      }
      break;
    case kStatus:
      if (p.is_read()) rd_u32(resets_);
      break;
    default:
      p.response = tlmlite::Response::kAddressError;
      break;
  }
}

}  // namespace vpdift::soc
