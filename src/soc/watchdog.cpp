#include "soc/watchdog.hpp"

#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Watchdog::Watchdog(sysc::Simulation& sim, std::string name)
    : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

sysc::Task Watchdog::run() {
  // Poll in bounded slices (same pattern as the CLINT: a re-arm while we
  // sleep cannot wake us, so the slice bounds the detection latency). The
  // checks land on the absolute 50 us grid, which lets a restored process
  // realign to the same check times a cold run would have used.
  while (true) {
    sysc::Time d = sysc::Time::us(50);
    if (resume_hop_) {
      // Restored mid-interval: sleep to the next grid point (possibly the
      // current instant) instead of a full slice. No check happens before
      // that point — a past-due deadline must still bite on the grid, as
      // it would have in a cold run.
      resume_hop_ = false;
      sysc::Time next = sysc::Time::us(sim_->now().micros() / 50 * 50);
      while (next < sim_->now()) next += sysc::Time::us(50);
      d = next - sim_->now();
    }
    co_await sim_->delay(d);
    check();
  }
}

void Watchdog::check() {
  if (!enabled_) return;
  if (sim_->now().micros() >= deadline_us_) {
    ++resets_;
    deadline_us_ = sim_->now().micros() + timeout_us_;  // re-arm
    if (on_timeout_) on_timeout_();
  }
}

void Watchdog::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(20);
  p.response = tlmlite::Response::kOk;
  auto rd_u32 = [&](std::uint32_t v) { tlmlite::fill_reg_u32(p, v); };
  auto payload_u32 = [&] { return tlmlite::collect_reg_u32(p); };
  switch (p.address) {
    case kLoad:
      if (p.is_read()) {
        rd_u32(timeout_us_);
      } else {
        timeout_us_ = payload_u32();
        deadline_us_ = sim_->now().micros() + timeout_us_;
      }
      break;
    case kPet:
      if (p.is_write() && payload_u32() == kPetMagic)
        deadline_us_ = sim_->now().micros() + timeout_us_;
      break;
    case kCtrl:
      if (p.is_read()) {
        rd_u32(enabled_ ? 1u : 0u);
      } else {
        enabled_ = (payload_u32() & 1) != 0;
        if (enabled_) deadline_us_ = sim_->now().micros() + timeout_us_;
      }
      break;
    case kStatus:
      if (p.is_read()) rd_u32(resets_);
      break;
    default:
      p.response = tlmlite::Response::kAddressError;
      break;
  }
}

}  // namespace vpdift::soc
