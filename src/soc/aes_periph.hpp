// Memory-mapped AES-128 engine with declassification.
//
// The case-study immobilizer uses this peripheral to encrypt the engine's
// challenge with the secret PIN. Per the security policy, the AES unit holds
// a high execution clearance (it may process (HC,HI) data) and — being
// trusted hardware — declassifies its ciphertext so that it can leave the
// system on the CAN bus.
//
// Register map:
//   0x00..0x0f KEY    (w)
//   0x10..0x1f INPUT  (w)
//   0x20..0x2f OUTPUT (r)  tainted with the declassified tag
//   0x30       CTRL   (w)  write 1: encrypt INPUT under KEY into OUTPUT
//   0x34       STATUS (r)  bit0: done
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "dift/policy.hpp"
#include "dift/tag.hpp"
#include "soc/aes128.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class AesPeriph : public sysc::Module {
 public:
  static constexpr std::uint64_t kKey = 0x00, kInput = 0x10, kOutput = 0x20,
                                 kCtrl = 0x30, kStatus = 0x34;

  AesPeriph(sysc::Simulation& sim, std::string name);

  tlmlite::TargetSocket& socket() { return tsock_; }

  /// Execution clearance of the engine: the combined class of KEY and INPUT
  /// must flow here, else kExecUnitClearance is raised on CTRL.
  void set_unit_clearance(std::optional<dift::Tag> tag) { unit_clearance_ = tag; }
  /// Declassification: ciphertext is re-tagged to `output_tag` using the
  /// granted right. Without a right, the ciphertext keeps the combined tag.
  void set_declass(dift::DeclassRight right, dift::Tag output_tag) {
    declass_ = std::move(right);
    output_tag_ = output_tag;
  }

  std::uint64_t encryptions() const { return encryptions_; }

  /// Snapshotable device state (key/input/output blocks with their tags;
  /// clearances and declassification rights are policy configuration).
  struct State {
    AesKey key{};
    std::array<dift::Tag, 16> key_tags{};
    AesBlock input{};
    std::array<dift::Tag, 16> input_tags{};
    AesBlock output{};
    dift::Tag output_data_tag = dift::kBottomTag;
    bool done = false;
    std::uint64_t encryptions = 0;
  };
  State save_state() const {
    return {key_,    key_tags_,        input_, input_tags_,
            output_, output_data_tag_, done_,  encryptions_};
  }
  void load_state(const State& s) {
    key_ = s.key;
    key_tags_ = s.key_tags;
    input_ = s.input;
    input_tags_ = s.input_tags;
    output_ = s.output;
    output_data_tag_ = s.output_data_tag;
    done_ = s.done;
    encryptions_ = s.encryptions;
  }

 private:
  void transport(tlmlite::Payload& p, sysc::Time& delay);
  void encrypt();

  tlmlite::TargetSocket tsock_;
  AesKey key_{};
  std::array<dift::Tag, 16> key_tags_{};
  AesBlock input_{};
  std::array<dift::Tag, 16> input_tags_{};
  AesBlock output_{};
  dift::Tag output_data_tag_ = dift::kBottomTag;
  bool done_ = false;
  std::optional<dift::Tag> unit_clearance_;
  dift::DeclassRight declass_;
  dift::Tag output_tag_ = dift::kBottomTag;
  std::uint64_t encryptions_ = 0;
};

}  // namespace vpdift::soc
