#include "soc/aes_periph.hpp"

#include "dift/context.hpp"
#include "dift/taint.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::soc {

AesPeriph::AesPeriph(sysc::Simulation& sim, std::string name)
    : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void AesPeriph::encrypt() {
  // The unit clearance guards the key port (the sensitive asset): the key's
  // combined class must flow to the engine's clearance — e.g. (HC,HI) admits
  // the confidential, integrity-protected PIN but rejects attacker-supplied
  // keys. The data input is unconstrained (encrypting untrusted challenges
  // is the peripheral's job).
  dift::Tag key_tag = key_tags_[0];
  for (int i = 1; i < 16; ++i) key_tag = dift::lub(key_tag, key_tags_[i]);
  if (unit_clearance_)
    dift::check_flow(key_tag, *unit_clearance_,
                     dift::ViolationKind::kExecUnitClearance, 0, 0,
                     (name_ + ".engine").c_str());

  // The ciphertext depends on everything the engine processed.
  dift::Tag combined = key_tag;
  for (int i = 0; i < 16; ++i) combined = dift::lub(combined, input_tags_[i]);

  output_ = aes128_encrypt(key_, input_);
  if (declass_.engaged() && combined != output_tag_) {
    // Trusted-HW declassification along a sanctioned lattice edge.
    const dift::TaintedByte sample(0, combined);
    output_data_tag_ = declass_(sample, output_tag_).tag();
  } else {
    output_data_tag_ = combined;
  }
  done_ = true;
  ++encryptions_;
}

void AesPeriph::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(100);
  p.response = tlmlite::Response::kOk;
  const std::uint64_t a = p.address;

  if (a >= kKey && a + p.length <= kKey + 16) {
    if (!p.is_write()) { p.response = tlmlite::Response::kGenericError; return; }
    for (std::uint32_t i = 0; i < p.length; ++i) {
      key_[a - kKey + i] = p.data[i];
      key_tags_[a - kKey + i] = p.tainted() ? p.tags[i] : dift::kBottomTag;
    }
    done_ = false;
    return;
  }
  if (a >= kInput && a + p.length <= kInput + 16) {
    if (!p.is_write()) { p.response = tlmlite::Response::kGenericError; return; }
    for (std::uint32_t i = 0; i < p.length; ++i) {
      input_[a - kInput + i] = p.data[i];
      input_tags_[a - kInput + i] = p.tainted() ? p.tags[i] : dift::kBottomTag;
    }
    done_ = false;
    return;
  }
  if (a >= kOutput && a + p.length <= kOutput + 16) {
    if (!p.is_read()) { p.response = tlmlite::Response::kGenericError; return; }
    for (std::uint32_t i = 0; i < p.length; ++i) {
      p.data[i] = output_[a - kOutput + i];
      if (p.tainted()) p.tags[i] = output_data_tag_;
    }
    return;
  }
  if (a == kCtrl) {
    if (p.is_write() && p.data[0] == 1) encrypt();
    return;
  }
  if (a == kStatus) {
    if (!p.is_read()) { p.response = tlmlite::Response::kGenericError; return; }
    for (std::uint32_t i = 0; i < p.length; ++i) {
      p.data[i] = i == 0 && done_ ? 1 : 0;
      if (p.tainted()) p.tags[i] = dift::kBottomTag;
    }
    return;
  }
  p.response = tlmlite::Response::kAddressError;
}

}  // namespace vpdift::soc
