// Sensor peripheral — the paper's Fig. 4 example module.
//
// A memory-mapped 64-byte data frame of tainted bytes is refilled
// periodically by a kernel thread with pseudo-random "measurement" data
// classified by the run-time configurable `data_tag` register; each refill
// raises an interrupt. Register map:
//   0x00..0x3f DATA_FRAME (r)   tainted sensor data
//   0x40       DATA_TAG   (rw)  security class of generated data; writing it
//                               from classified data trips the checked
//                               Taint -> uint8_t conversion (paper, line 47)
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "dift/taint.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class Sensor : public sysc::Module {
 public:
  static constexpr std::size_t kFrameSize = 64;
  static constexpr std::uint64_t kDataTagReg = 0x40;

  Sensor(sysc::Simulation& sim, std::string name,
         sysc::Time period = sysc::Time::ms(25));

  tlmlite::TargetSocket& socket() { return tsock_; }

  /// Interrupt line to the PLIC (pulsed on each new frame).
  void set_irq(std::function<void()> fn) { irq_ = std::move(fn); }
  /// Initial classification of generated data.
  void set_data_tag(dift::Tag tag) { data_tag_ = tag; }
  dift::Tag data_tag() const { return data_tag_; }

  /// Number of frames generated so far.
  std::uint64_t frames_generated() const { return frames_; }

  /// Fault injection: stuck-at — the ADC keeps timing frames and raising
  /// interrupts, but the data window freezes at its current contents.
  void fi_set_stuck(bool stuck) { fi_stuck_ = stuck; }
  bool fi_stuck() const { return fi_stuck_; }

  /// Starts the periodic generation thread (called by the SoC builder once
  /// the simulation graph is complete).
  void start();

  /// Snapshotable device state. Frame k is generated at absolute time
  /// k * period, so `frames` alone pins the generator's phase: a restored
  /// process sleeps to (frames + 1) * period and is back on the cold grid.
  struct State {
    std::array<dift::TaintedByte, kFrameSize> frame{};
    dift::Tag data_tag = dift::kBottomTag;
    std::uint32_t lcg = 0x12345678u;
    std::uint64_t frames = 0;
    bool fi_stuck = false;
  };
  State save_state() const { return {frame_, data_tag_, lcg_, frames_, fi_stuck_}; }
  void load_state(const State& s) {
    frame_ = s.frame;
    data_tag_ = s.data_tag;
    lcg_ = s.lcg;
    frames_ = s.frames;
    fi_stuck_ = s.fi_stuck;
    resume_hop_ = true;
  }

 private:
  sysc::Task run();
  void transport(tlmlite::Payload& p, sysc::Time& delay);

  tlmlite::TargetSocket tsock_;
  std::array<dift::TaintedByte, kFrameSize> frame_{};
  dift::Tag data_tag_ = dift::kBottomTag;
  sysc::Time period_;
  std::uint32_t lcg_ = 0x12345678u;
  std::uint64_t frames_ = 0;
  bool fi_stuck_ = false;
  bool resume_hop_ = false;
  std::function<void()> irq_;
};

}  // namespace vpdift::soc
