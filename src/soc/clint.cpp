#include "soc/clint.hpp"

#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Clint::Clint(sysc::Simulation& sim, std::string name)
    : Module(sim, std::move(name)), cmp_changed_(sim) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void Clint::update_timer_irq() {
  if (timer_irq_) timer_irq_(mtime() >= mtimecmp_);
}

sysc::Task Clint::run() {
  if (resume_hop_) {
    // First activation after a snapshot restore: re-join the saved wake
    // chain instead of starting a fresh one.
    resume_hop_ = false;
    if (parked_ && mtime() >= mtimecmp_) {
      co_await cmp_changed_;
      parked_ = false;
      update_timer_irq();
    } else if (!parked_ && next_wake_ > sim_->now()) {
      co_await sim_->delay(next_wake_ - sim_->now());
      update_timer_irq();
    }
    // parked-but-cmp-already-moved-forward means the waking notification was
    // pending (same delta) at capture time: the cold process resumes at the
    // capture instant and starts a fresh slice — exactly what falling into
    // the loop does. A slice ending right now likewise falls through.
  }
  while (true) {
    if (mtime() >= mtimecmp_) {
      update_timer_irq();
      // Wait for SW to move mtimecmp forward (or clear it).
      parked_ = true;
      co_await cmp_changed_;
      parked_ = false;
      update_timer_irq();
      continue;
    }
    // Sleep until the compare point, in bounded slices: a cmp rewrite while
    // we sleep cannot wake us (the notification has no waiter then), so the
    // slice bounds the interrupt latency for a cmp that moved *earlier*.
    const std::uint64_t delta_us = mtimecmp_ - mtime();
    const std::uint64_t slice = delta_us > 100 ? 100 : delta_us;
    next_wake_ = sim_->now() + sysc::Time::us(slice);
    co_await sim_->delay(sysc::Time::us(slice));
    update_timer_irq();
  }
}

void Clint::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(20);
  p.response = tlmlite::Response::kOk;
  auto rd64 = [&](std::uint64_t v, std::uint64_t reg_base) {
    for (std::uint32_t i = 0; i < p.length; ++i) {
      const std::uint64_t byte_index = p.address - reg_base + i;
      p.data[i] = static_cast<std::uint8_t>(v >> (8 * byte_index));
      if (p.tainted()) p.tags[i] = dift::kBottomTag;
    }
  };
  if (p.address >= kMtime && p.address + p.length <= kMtime + 8) {
    if (p.is_read()) rd64(mtime(), kMtime);
    return;
  }
  if (p.address >= kMtimecmp && p.address + p.length <= kMtimecmp + 8) {
    if (p.is_read()) {
      rd64(mtimecmp_, kMtimecmp);
    } else {
      for (std::uint32_t i = 0; i < p.length; ++i) {
        const std::uint64_t byte_index = p.address - kMtimecmp + i;
        mtimecmp_ &= ~(0xffull << (8 * byte_index));
        mtimecmp_ |= std::uint64_t(p.data[i]) << (8 * byte_index);
      }
      update_timer_irq();
      cmp_changed_.notify();
    }
    return;
  }
  if (p.address >= kMsip && p.address + p.length <= kMsip + 4) {
    if (p.is_read()) {
      rd64(msip_, kMsip);
    } else {
      msip_ = p.data[0] & 1;
      if (soft_irq_) soft_irq_(msip_ != 0);
    }
    return;
  }
  p.response = tlmlite::Response::kAddressError;
}

}  // namespace vpdift::soc
