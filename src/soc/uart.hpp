// UART peripheral: clearance-checked TX, attacker-classified RX.
//
// Register map (word access):
//   0x00 TXDATA  (w)  transmit one byte; raises kOutputClearance if the byte's
//                     class may not flow to the configured TX clearance
//   0x04 RXDATA  (r)  next received byte, or 0xffffffff when empty
//   0x08 STATUS  (r)  bit0: tx ready (always 1), bit1: rx available
//   0x0c IE      (rw) bit0: rx interrupt enable
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "dift/tag.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class Uart : public sysc::Module {
 public:
  static constexpr std::uint64_t kTxData = 0x00, kRxData = 0x04, kStatus = 0x08,
                                 kIe = 0x0c;

  Uart(sysc::Simulation& sim, std::string name);

  tlmlite::TargetSocket& socket() { return tsock_; }

  /// Output clearance of the TX interface (disengaged = unchecked).
  void set_output_clearance(std::optional<dift::Tag> tag) { tx_clearance_ = tag; }
  /// Classification applied to received bytes (the attacker's input class).
  void set_input_tag(dift::Tag tag) { rx_tag_ = tag; }
  /// Interrupt line (wired to the PLIC by the SoC builder).
  void set_irq(std::function<void(bool)> fn) { irq_ = std::move(fn); }

  /// Host-side stimulus: enqueues bytes as if received on the wire.
  void feed_input(std::string_view bytes);
  /// Everything transmitted so far.
  const std::string& output() const { return tx_log_; }
  void clear_output() { tx_log_.clear(); }
  std::size_t rx_pending() const { return rx_.size(); }

  /// Fault injection: drops up to `n` pending RX bytes (frame losses on the
  /// wire). Returns how many were actually dropped.
  std::size_t fi_drop_rx(std::size_t n);
  /// Fault injection: XORs up to `n` pending RX bytes with `mask` (bit
  /// errors on the wire). Returns how many bytes were corrupted.
  std::size_t fi_corrupt_rx(std::size_t n, std::uint8_t mask);

  /// Snapshotable device state (FIFO contents and interrupt enable; the TX
  /// log is included so a restored run's cumulative output matches a cold
  /// replay). Clearances/input tags are policy configuration, not state.
  struct State {
    std::deque<std::uint8_t> rx;
    std::string tx_log;
    std::uint32_t ie = 0;
  };
  State save_state() const { return {rx_, tx_log_, ie_}; }
  /// Restores device state. Deliberately does NOT re-derive the IRQ line:
  /// the restored PLIC pending set is authoritative (a cold run may have
  /// claimed-and-cleared the level-triggered source already).
  void load_state(const State& s) {
    rx_ = s.rx;
    tx_log_ = s.tx_log;
    ie_ = s.ie;
  }

 private:
  void transport(tlmlite::Payload& p, sysc::Time& delay);
  void update_irq();

  tlmlite::TargetSocket tsock_;
  std::deque<std::uint8_t> rx_;
  std::string tx_log_;
  std::optional<dift::Tag> tx_clearance_;
  dift::Tag rx_tag_ = dift::kBottomTag;
  std::uint32_t ie_ = 0;
  std::function<void(bool)> irq_;
};

}  // namespace vpdift::soc
