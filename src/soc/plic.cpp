#include "soc/plic.hpp"

#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Plic::Plic(sysc::Simulation& sim, std::string name) : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void Plic::raise(std::uint32_t src) {
  pending_ |= (1u << (src & 31)) & ~fi_suppress_;
  update();
}

void Plic::set_level(std::uint32_t src, bool level) {
  if (level)
    pending_ |= (1u << (src & 31)) & ~fi_suppress_;
  else
    pending_ &= ~(1u << (src & 31));
  update();
}

void Plic::fi_set_suppressed(std::uint32_t mask) {
  fi_suppress_ = mask;
  pending_ &= ~mask;
  update();
}

void Plic::update() {
  if (ext_irq_) ext_irq_((pending_ & enable_) != 0);
}

void Plic::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(20);
  p.response = tlmlite::Response::kOk;
  auto rd_u32 = [&](std::uint32_t v) { tlmlite::fill_reg_u32(p, v); };
  switch (p.address) {
    case kPending:
      if (p.is_read()) rd_u32(pending_);
      break;
    case kEnable:
      if (p.is_read()) {
        rd_u32(enable_);
      } else {
        enable_ = tlmlite::collect_reg_u32(p);
        update();
      }
      break;
    case kClaim:
      if (p.is_read()) {
        std::uint32_t src = 0;
        const std::uint32_t active = pending_ & enable_;
        for (std::uint32_t s = 1; s < 32; ++s)
          if (active & (1u << s)) { src = s; break; }
        if (src != 0) {
          pending_ &= ~(1u << src);
          update();
        }
        rd_u32(src);
      }
      break;
    default: p.response = tlmlite::Response::kAddressError; break;
  }
}

}  // namespace vpdift::soc
