// Watchdog timer: if the firmware stops petting it, the SoC is reset.
//
// Register map:
//   0x00 LOAD   (rw) timeout in microseconds (writing re-arms)
//   0x04 PET    (w)  write the magic value 0x5afe to restart the countdown
//   0x08 CTRL   (rw) bit0: enable
//   0x0c STATUS (r)  number of watchdog resets fired so far
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class Watchdog : public sysc::Module {
 public:
  static constexpr std::uint64_t kLoad = 0x00, kPet = 0x04, kCtrl = 0x08,
                                 kStatus = 0x0c;
  static constexpr std::uint32_t kPetMagic = 0x5afe;

  Watchdog(sysc::Simulation& sim, std::string name);

  tlmlite::TargetSocket& socket() { return tsock_; }

  /// Fired on expiry (the SoC wires this to a CPU reset).
  void set_on_timeout(std::function<void()> fn) { on_timeout_ = std::move(fn); }

  void start() { sim_->spawn(run()); }

  bool enabled() const { return enabled_; }
  std::uint32_t resets_fired() const { return resets_; }

  /// Snapshotable device state. `deadline_us` is absolute simulated time, so
  /// it stays meaningful across a sim-time-preserving restore.
  struct State {
    std::uint32_t timeout_us = 0;
    std::uint64_t deadline_us = ~0ull;
    bool enabled = false;
    std::uint32_t resets = 0;
  };
  State save_state() const { return {timeout_us_, deadline_us_, enabled_, resets_}; }
  void load_state(const State& s) {
    timeout_us_ = s.timeout_us;
    deadline_us_ = s.deadline_us;
    enabled_ = s.enabled;
    resets_ = s.resets;
    resume_hop_ = true;
  }

 private:
  sysc::Task run();
  void check();
  void transport(tlmlite::Payload& p, sysc::Time& delay);

  tlmlite::TargetSocket tsock_;
  std::uint32_t timeout_us_ = 0;
  std::uint64_t deadline_us_ = ~0ull;
  bool enabled_ = false;
  std::uint32_t resets_ = 0;
  bool resume_hop_ = false;
  std::function<void()> on_timeout_;
};

}  // namespace vpdift::soc
