#include "soc/gpio.hpp"

#include "dift/context.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Gpio::Gpio(sysc::Simulation& sim, std::string name) : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void Gpio::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(20);
  p.response = tlmlite::Response::kOk;
  auto rd_u32 = [&](std::uint32_t v, dift::Tag tag) {
    tlmlite::fill_reg_u32(p, v, tag);
  };
  auto wr_u32 = [&](std::uint32_t& v) {
    // Byte-lane merge, clamped to the register width (shift-UB otherwise).
    const std::uint32_t n = p.length < 4 ? p.length : 4;
    for (std::uint32_t i = 0; i < n; ++i) {
      v &= ~(0xffu << (8 * i));
      v |= std::uint32_t(p.data[i]) << (8 * i);
    }
  };
  switch (p.address) {
    case kOut:
      if (p.is_read()) {
        rd_u32(out_, dift::kBottomTag);
      } else {
        if (p.tainted() && out_clearance_)
          for (std::uint32_t i = 0; i < p.length; ++i)
            dift::check_flow(p.tags[i], *out_clearance_,
                             dift::ViolationKind::kOutputClearance, 0,
                             p.address, (name_ + ".out").c_str());
        wr_u32(out_);
        if (on_out_) on_out_(out_);
      }
      break;
    case kIn:
      if (p.is_read()) rd_u32(in_, in_tag_);
      break;
    case kDir:
      p.is_read() ? rd_u32(dir_, dift::kBottomTag) : wr_u32(dir_);
      break;
    default:
      p.response = tlmlite::Response::kAddressError;
      break;
  }
}

}  // namespace vpdift::soc
