// Simplified platform-level interrupt controller (PLIC).
//
// 32 level/pulse sources, one hart target. The external-interrupt line to
// the core is asserted while any enabled source is pending and unclaimed.
//
// Register map:
//   0x00 PENDING (r)
//   0x04 ENABLE  (rw)
//   0x08 CLAIM   (r: highest pending&enabled source, clears it; 0 if none)
//                (w: completion — ignored in this simplified model)
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class Plic : public sysc::Module {
 public:
  static constexpr std::uint64_t kPending = 0x00, kEnable = 0x04, kClaim = 0x08;

  Plic(sysc::Simulation& sim, std::string name);

  tlmlite::TargetSocket& socket() { return tsock_; }

  /// External-interrupt line (level) into the core.
  void set_ext_irq(std::function<void(bool)> fn) { ext_irq_ = std::move(fn); }

  /// Gateway: peripheral raises source `src` (1..31).
  void raise(std::uint32_t src);
  /// Gateway for level-style sources.
  void set_level(std::uint32_t src, bool level);

  std::uint32_t pending() const { return pending_; }

  /// Fault injection: sources whose bit is set in `mask` never reach the
  /// pending register (a dead interrupt line); already-pending suppressed
  /// sources are cleared.
  void fi_set_suppressed(std::uint32_t mask);
  std::uint32_t fi_suppressed() const { return fi_suppress_; }

  /// Snapshotable device state. Load does not re-drive the ext-irq line;
  /// the restored CSR mip carries the captured level.
  struct State {
    std::uint32_t pending = 0;
    std::uint32_t enable = 0;
    std::uint32_t fi_suppress = 0;
  };
  State save_state() const { return {pending_, enable_, fi_suppress_}; }
  void load_state(const State& s) {
    pending_ = s.pending;
    enable_ = s.enable;
    fi_suppress_ = s.fi_suppress;
  }

 private:
  void transport(tlmlite::Payload& p, sysc::Time& delay);
  void update();

  tlmlite::TargetSocket tsock_;
  std::uint32_t pending_ = 0;
  std::uint32_t enable_ = 0;
  std::uint32_t fi_suppress_ = 0;
  std::function<void(bool)> ext_irq_;
};

}  // namespace vpdift::soc
