// Main RAM with an optional per-byte tag plane.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dift/shadow.hpp"
#include "dift/tag.hpp"
#include "rvasm/program.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

/// Byte-addressable RAM. In the DIFT build every byte carries a dift::Tag in
/// a parallel plane; the plain VP allocates no tag storage at all.
class Memory : public sysc::Module {
 public:
  Memory(sysc::Simulation& sim, std::string name, std::size_t size, bool track_tags);

  tlmlite::TargetSocket& socket() { return tsock_; }

  std::uint8_t* data() { return data_.data(); }
  dift::Tag* tags() { return tags_.empty() ? nullptr : tags_.data(); }
  std::size_t size() const { return data_.size(); }
  bool tracks_tags() const { return !tags_.empty(); }

  /// Copies all program segments into RAM. Segment addresses are absolute
  /// bus addresses; `ram_base` is this memory's mapping base.
  void load_image(const rvasm::Program& program, std::uint64_t ram_base);

  /// Tags [offset, offset+length) (no-op when tags are not tracked).
  void classify(std::size_t offset, std::size_t length, dift::Tag tag);
  /// Tag at `offset` (kBottomTag when untracked).
  dift::Tag tag_at(std::size_t offset) const;

  /// Direct read/write helpers for tests and host-side tooling.
  std::uint32_t read_u32(std::size_t offset) const;
  void write_u32(std::size_t offset, std::uint32_t value);

  /// Taint map statistics: bytes per security class (policy debugging aid).
  /// Empty when tags are not tracked.
  std::map<dift::Tag, std::size_t> tag_histogram() const;

  /// Block-summary layer over the tag plane (unattached when untracked).
  dift::ShadowSummary& shadow() { return shadow_; }
  const dift::ShadowSummary& shadow() const { return shadow_; }
  /// Call after writing the tag plane directly (e.g. snapshot restore).
  void rebuild_summary() { shadow_.rebuild(); }
  /// Reads served from a uniform block without touching the tag plane.
  std::uint64_t summary_hits() const { return summary_hits_; }

 private:
  void transport(tlmlite::Payload& p, sysc::Time& delay);

  tlmlite::TargetSocket tsock_;
  std::vector<std::uint8_t> data_;
  std::vector<dift::Tag> tags_;
  dift::ShadowSummary shadow_;
  std::uint64_t summary_hits_ = 0;
};

}  // namespace vpdift::soc
