// Default SoC address map (mirrors the riscv-vp layout style).
#pragma once

#include <cstdint>

namespace vpdift::soc::addrmap {

inline constexpr std::uint64_t kClintBase = 0x02000000, kClintSize = 0x10000;
inline constexpr std::uint64_t kPlicBase = 0x0c000000, kPlicSize = 0x1000;
inline constexpr std::uint64_t kUartBase = 0x10000000, kUartSize = 0x100;
inline constexpr std::uint64_t kSysCtrlBase = 0x11000000, kSysCtrlSize = 0x100;
inline constexpr std::uint64_t kSensorBase = 0x50000000, kSensorSize = 0x100;
inline constexpr std::uint64_t kAesBase = 0x51000000, kAesSize = 0x100;
inline constexpr std::uint64_t kCanBase = 0x52000000, kCanSize = 0x100;
inline constexpr std::uint64_t kDmaBase = 0x53000000, kDmaSize = 0x100;
inline constexpr std::uint64_t kGpioBase = 0x54000000, kGpioSize = 0x100;
inline constexpr std::uint64_t kWdtBase = 0x55000000, kWdtSize = 0x100;
inline constexpr std::uint64_t kFlashBase = 0x20000000;  // size = image size
inline constexpr std::uint64_t kRamBase = 0x80000000;

// PLIC interrupt source numbers.
inline constexpr std::uint32_t kIrqSensor = 2;
inline constexpr std::uint32_t kIrqUartRx = 3;
inline constexpr std::uint32_t kIrqDma = 4;
inline constexpr std::uint32_t kIrqCanRx = 5;

}  // namespace vpdift::soc::addrmap
