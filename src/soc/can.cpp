#include "soc/can.hpp"

#include "dift/context.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::soc {

CanPeriph::CanPeriph(sysc::Simulation& sim, std::string name)
    : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void CanPeriph::receive(const CanFrame& frame) {
  if (bus_off_) return;  // a bus-off controller sees nothing on the wire
  rx_.push_back(frame);
  update_irq();
}

bool CanPeriph::fi_drop_rx_frame() {
  if (rx_.empty()) return false;
  rx_.pop_front();
  update_irq();
  return true;
}

void CanPeriph::fi_set_bus_off(bool off) {
  bus_off_ = off;
  if (off) {
    rx_.clear();  // pending mailbox content is lost with the bus
    update_irq();
  }
}

void CanPeriph::update_irq() {
  if (irq_) irq_((ie_ & 1u) != 0 && !rx_.empty());
}

void CanPeriph::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(80);
  p.response = tlmlite::Response::kOk;
  const std::uint64_t a = p.address;

  auto rd_u32 = [&](std::uint32_t v) { tlmlite::fill_reg_u32(p, v); };
  auto wr_u32 = [&](std::uint32_t& v) { v = tlmlite::collect_reg_u32(p); };

  if (a >= kTxData && a + p.length <= kTxData + 8) {
    if (p.is_write()) {
      for (std::uint32_t i = 0; i < p.length; ++i) {
        tx_.data[a - kTxData + i] = p.data[i];
        tx_tags_[a - kTxData + i] = p.tainted() ? p.tags[i] : dift::kBottomTag;
      }
    } else {
      for (std::uint32_t i = 0; i < p.length; ++i) {
        p.data[i] = tx_.data[a - kTxData + i];
        if (p.tainted()) p.tags[i] = tx_tags_[a - kTxData + i];
      }
    }
    return;
  }
  if (a >= kRxData && a + p.length <= kRxData + 8) {
    if (!p.is_read()) { p.response = tlmlite::Response::kGenericError; return; }
    for (std::uint32_t i = 0; i < p.length; ++i) {
      p.data[i] = rx_.empty() ? 0 : rx_.front().data[a - kRxData + i];
      if (p.tainted()) p.tags[i] = rx_tag_;
    }
    return;
  }

  switch (a) {
    case kTxId: p.is_read() ? rd_u32(tx_.id) : wr_u32(tx_.id); break;
    case kTxDlc: p.is_read() ? rd_u32(tx_.dlc) : wr_u32(tx_.dlc); break;
    case kTxCtrl:
      if (p.is_write() && p.data[0] == 1 && !bus_off_) {
        // Output clearance: every payload byte must be allowed to leave.
        if (tx_clearance_) {
          for (std::uint32_t i = 0; i < tx_.dlc && i < 8; ++i)
            dift::check_flow(tx_tags_[i], *tx_clearance_,
                             dift::ViolationKind::kOutputClearance, 0,
                             kTxData + i, (name_ + ".tx").c_str());
        }
        ++tx_count_;
        if (on_tx_) on_tx_(tx_);
      }
      break;
    case kRxId: rd_u32(rx_.empty() ? 0 : rx_.front().id); break;
    case kRxDlc: rd_u32(rx_.empty() ? 0 : rx_.front().dlc); break;
    case kRxStatus: rd_u32(rx_.empty() ? 0u : 1u); break;
    case kRxPop:
      if (p.is_write() && !rx_.empty()) {
        rx_.pop_front();
        update_irq();
      }
      break;
    case kIe:
      if (p.is_write()) {
        wr_u32(ie_);
        update_irq();
      } else {
        rd_u32(ie_);
      }
      break;
    default: p.response = tlmlite::Response::kAddressError; break;
  }
}

EngineEcu::EngineEcu(sysc::Simulation& sim, std::string name, CanPeriph& immo_can,
                     AesKey pin, sysc::Time period)
    : Module(sim, std::move(name)),
      immo_can_(&immo_can),
      pin_(pin),
      period_(period) {}

sysc::Task EngineEcu::run() {
  while (true) {
    sysc::Time d = period_;
    if (resume_hop_) {
      // Restored mid-interval: challenge k lands at k * period in a cold
      // run; sleep to the next challenge's absolute due time.
      resume_hop_ = false;
      d = period_ * (challenges_ + 1) - sim_->now();
    }
    co_await sim_->delay(d);
    // New random challenge.
    for (auto& b : challenge_) {
      lcg_ = lcg_ * 1103515245u + 12345u;
      b = static_cast<std::uint8_t>(lcg_ >> 16);
    }
    CanFrame f;
    f.id = kChallengeId;
    f.dlc = 8;
    f.data = challenge_;
    awaiting_response_ = true;
    ++challenges_;
    immo_can_->receive(f);
  }
}

void EngineEcu::on_frame(const CanFrame& frame) {
  if (frame.id != kResponseId || !awaiting_response_) return;
  awaiting_response_ = false;
  AesBlock block{};
  for (int i = 0; i < 8; ++i) block[i] = challenge_[i];
  const AesBlock expected = aes128_encrypt(pin_, block);
  bool ok = frame.dlc == 8;
  for (int i = 0; ok && i < 8; ++i) ok = frame.data[i] == expected[i];
  if (ok) ++auth_ok_; else ++auth_fail_;
}

}  // namespace vpdift::soc
