// Execute-in-place (XIP) SPI flash model.
//
// A read-only memory-mapped image, reached only through TLM transactions
// (no DMI window) — code fetched from flash therefore exercises the core's
// slow fetch path, and the whole image carries one security class (typically
// HI: factory-programmed trusted code, or LI to model an untrusted external
// part).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dift/tag.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class SpiFlash : public sysc::Module {
 public:
  SpiFlash(sysc::Simulation& sim, std::string name, std::vector<std::uint8_t> image,
           dift::Tag image_tag = dift::kBottomTag);

  tlmlite::TargetSocket& socket() { return tsock_; }
  std::size_t size() const { return image_.size(); }
  dift::Tag image_tag() const { return tag_; }
  void set_image_tag(dift::Tag tag) { tag_ = tag; }

 private:
  void transport(tlmlite::Payload& p, sysc::Time& delay);

  tlmlite::TargetSocket tsock_;
  std::vector<std::uint8_t> image_;
  dift::Tag tag_;
};

}  // namespace vpdift::soc
