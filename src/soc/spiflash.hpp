// Execute-in-place (XIP) SPI flash model.
//
// A read-only memory-mapped image, reached only through TLM transactions
// (no DMI window) — code fetched from flash therefore exercises the core's
// slow fetch path, and the whole image carries one security class (typically
// HI: factory-programmed trusted code, or LI to model an untrusted external
// part).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dift/tag.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class SpiFlash : public sysc::Module {
 public:
  SpiFlash(sysc::Simulation& sim, std::string name, std::vector<std::uint8_t> image,
           dift::Tag image_tag = dift::kBottomTag);

  tlmlite::TargetSocket& socket() { return tsock_; }
  std::size_t size() const { return image_.size(); }
  dift::Tag image_tag() const { return tag_; }
  void set_image_tag(dift::Tag tag) { tag_ = tag; }

  /// Fault injection: the next `n` read transactions return data with byte 0
  /// XORed by `mask` (a marginal SPI line). The backing image is untouched.
  void fi_corrupt_reads(std::uint32_t n, std::uint8_t mask) {
    fi_reads_ = n;
    fi_mask_ = mask;
  }
  std::uint32_t fi_reads_left() const { return fi_reads_; }

  /// Snapshotable device state. The image itself is immutable and owned by
  /// the constructing VP config — only the fault latches are state.
  struct State {
    std::uint32_t fi_reads = 0;
    std::uint8_t fi_mask = 0;
  };
  State save_state() const { return {fi_reads_, fi_mask_}; }
  void load_state(const State& s) {
    fi_reads_ = s.fi_reads;
    fi_mask_ = s.fi_mask;
  }

 private:
  void transport(tlmlite::Payload& p, sysc::Time& delay);

  tlmlite::TargetSocket tsock_;
  std::vector<std::uint8_t> image_;
  dift::Tag tag_;
  std::uint32_t fi_reads_ = 0;
  std::uint8_t fi_mask_ = 0;
};

}  // namespace vpdift::soc
