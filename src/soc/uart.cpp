#include "soc/uart.hpp"

#include "dift/context.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Uart::Uart(sysc::Simulation& sim, std::string name) : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void Uart::feed_input(std::string_view bytes) {
  for (char c : bytes) rx_.push_back(static_cast<std::uint8_t>(c));
  update_irq();
}

void Uart::update_irq() {
  if (irq_) irq_((ie_ & 1u) != 0 && !rx_.empty());
}

void Uart::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(50);
  p.response = tlmlite::Response::kOk;
  switch (p.address) {
    case kTxData:
      if (!p.is_write()) break;
      if (p.tainted() && tx_clearance_)
        dift::check_flow(p.tags[0], *tx_clearance_,
                         dift::ViolationKind::kOutputClearance, 0, p.address,
                         (name_ + ".tx").c_str());
      tx_log_.push_back(static_cast<char>(p.data[0]));
      break;
    case kRxData: {
      if (!p.is_read()) break;
      std::uint32_t v = 0xffffffffu;
      dift::Tag t = dift::kBottomTag;
      if (!rx_.empty()) {
        v = rx_.front();
        rx_.pop_front();
        t = rx_tag_;
        update_irq();
      }
      for (std::uint32_t i = 0; i < p.length; ++i) {
        p.data[i] = static_cast<std::uint8_t>(v >> (8 * i));
        if (p.tainted()) p.tags[i] = t;
      }
      break;
    }
    case kStatus: {
      if (!p.is_read()) break;
      const std::uint32_t v = 1u | (rx_.empty() ? 0u : 2u);
      for (std::uint32_t i = 0; i < p.length; ++i) {
        p.data[i] = static_cast<std::uint8_t>(v >> (8 * i));
        if (p.tainted()) p.tags[i] = dift::kBottomTag;
      }
      break;
    }
    case kIe:
      if (p.is_write()) {
        ie_ = p.data[0];
        update_irq();
      } else {
        for (std::uint32_t i = 0; i < p.length; ++i) {
          p.data[i] = i == 0 ? static_cast<std::uint8_t>(ie_) : 0;
          if (p.tainted()) p.tags[i] = dift::kBottomTag;
        }
      }
      break;
    default:
      p.response = tlmlite::Response::kAddressError;
      break;
  }
}

}  // namespace vpdift::soc
