#include "soc/uart.hpp"

#include "dift/context.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Uart::Uart(sysc::Simulation& sim, std::string name) : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void Uart::feed_input(std::string_view bytes) {
  for (char c : bytes) rx_.push_back(static_cast<std::uint8_t>(c));
  update_irq();
}

std::size_t Uart::fi_drop_rx(std::size_t n) {
  std::size_t dropped = 0;
  while (dropped < n && !rx_.empty()) {
    rx_.pop_front();
    ++dropped;
  }
  if (dropped) update_irq();
  return dropped;
}

std::size_t Uart::fi_corrupt_rx(std::size_t n, std::uint8_t mask) {
  const std::size_t hit = n < rx_.size() ? n : rx_.size();
  for (std::size_t i = 0; i < hit; ++i) rx_[i] ^= mask;
  return hit;
}

void Uart::update_irq() {
  if (irq_) irq_((ie_ & 1u) != 0 && !rx_.empty());
}

void Uart::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(50);
  p.response = tlmlite::Response::kOk;
  switch (p.address) {
    case kTxData:
      if (!p.is_write()) {
        // Write-only register: reads must still fill the payload (kOk with
        // uninitialized data/tags leaks whatever the initiator had there).
        tlmlite::fill_reg_u32(p, 0);
        break;
      }
      if (p.tainted() && tx_clearance_) {
        // Every payload byte must be cleared to leave, not just byte 0 — a
        // multi-byte store with a classified high byte must not slip out.
        dift::Tag t = p.tags[0];
        for (std::uint32_t i = 1; i < p.length; ++i) t = dift::lub(t, p.tags[i]);
        dift::check_flow(t, *tx_clearance_,
                         dift::ViolationKind::kOutputClearance, 0, p.address,
                         (name_ + ".tx").c_str());
      }
      tx_log_.push_back(static_cast<char>(p.data[0]));
      break;
    case kRxData: {
      if (!p.is_read()) break;
      std::uint32_t v = 0xffffffffu;
      dift::Tag t = dift::kBottomTag;
      if (!rx_.empty()) {
        v = rx_.front();
        rx_.pop_front();
        t = rx_tag_;
        update_irq();
      }
      tlmlite::fill_reg_u32(p, v, t);
      break;
    }
    case kStatus:
      if (p.is_read()) tlmlite::fill_reg_u32(p, 1u | (rx_.empty() ? 0u : 2u));
      break;
    case kIe:
      if (p.is_write()) {
        ie_ = p.data[0];
        update_irq();
      } else {
        tlmlite::fill_reg_u32(p, ie_);
      }
      break;
    default:
      p.response = tlmlite::Response::kAddressError;
      break;
  }
}

}  // namespace vpdift::soc
