// FIPS-197 AES-128 block encryption (host-side reference used by the AES
// peripheral model and the behavioural engine ECU).
#pragma once

#include <array>
#include <cstdint>

namespace vpdift::soc {

using AesBlock = std::array<std::uint8_t, 16>;
using AesKey = std::array<std::uint8_t, 16>;

/// Encrypts one 16-byte block with AES-128 (ECB, single block).
AesBlock aes128_encrypt(const AesKey& key, const AesBlock& plaintext);

}  // namespace vpdift::soc
