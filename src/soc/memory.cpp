#include "soc/memory.hpp"

#include <cstring>
#include <stdexcept>

#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Memory::Memory(sysc::Simulation& sim, std::string name, std::size_t size,
               bool track_tags)
    : Module(sim, std::move(name)), data_(size, 0) {
  if (track_tags) {
    tags_.assign(size, dift::kBottomTag);
    shadow_.attach(tags_.data(), tags_.size());
  }
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void Memory::load_image(const rvasm::Program& program, std::uint64_t ram_base) {
  for (const auto& seg : program.segments) {
    if (seg.bytes.empty()) continue;
    if (seg.base < ram_base || seg.end() > ram_base + data_.size())
      throw std::out_of_range(name_ + ": program segment outside RAM");
    std::memcpy(data_.data() + (seg.base - ram_base), seg.bytes.data(),
                seg.bytes.size());
  }
}

void Memory::classify(std::size_t offset, std::size_t length, dift::Tag tag) {
  if (tags_.empty()) return;
  if (offset + length > tags_.size())
    throw std::out_of_range(name_ + ": classify out of range");
  std::memset(tags_.data() + offset, tag, length);
  shadow_.on_classify(offset, length, tag);
}

dift::Tag Memory::tag_at(std::size_t offset) const {
  return tags_.empty() ? dift::kBottomTag : tags_.at(offset);
}

std::uint32_t Memory::read_u32(std::size_t offset) const {
  std::uint32_t v;
  std::memcpy(&v, data_.data() + offset, 4);
  return v;
}

void Memory::write_u32(std::size_t offset, std::uint32_t value) {
  std::memcpy(data_.data() + offset, &value, 4);
}

std::map<dift::Tag, std::size_t> Memory::tag_histogram() const {
  std::map<dift::Tag, std::size_t> h;
  for (dift::Tag t : tags_) ++h[t];
  return h;
}

void Memory::transport(tlmlite::Payload& p, sysc::Time& delay) {
  if (p.address + p.length > data_.size()) {
    p.response = tlmlite::Response::kAddressError;
    return;
  }
  const std::size_t off = p.address;
  if (p.is_read()) {
    std::memcpy(p.data, data_.data() + off, p.length);
    if (p.tainted()) {
      dift::Tag t = dift::kBottomTag;
      if (tags_.empty()) {
        std::memset(p.tags, dift::kBottomTag, p.length);
        p.set_tag_summary(dift::kBottomTag);
      } else if (shadow_.uniform(off, p.length, &t)) {
        std::memset(p.tags, t, p.length);
        p.set_tag_summary(t);
        ++summary_hits_;
      } else {
        std::memcpy(p.tags, tags_.data() + off, p.length);
      }
    }
  } else {
    std::memcpy(data_.data() + off, p.data, p.length);
    if (p.tainted() && !tags_.empty()) {
      std::memcpy(tags_.data() + off, p.tags, p.length);
      if (p.tags_uniform())
        shadow_.on_store(off, p.length, static_cast<dift::Tag>(p.tag_summary));
      else
        shadow_.on_store_bytes(off, p.length);
    }
  }
  delay += sysc::Time::ns(10);
  p.response = tlmlite::Response::kOk;
}

}  // namespace vpdift::soc
