#include "soc/sensor.hpp"

#include "dift/context.hpp"
#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Sensor::Sensor(sysc::Simulation& sim, std::string name, sysc::Time period)
    : Module(sim, std::move(name)), period_(period) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void Sensor::start() { sim_->spawn(run()); }

sysc::Task Sensor::run() {
  while (true) {
    sysc::Time d = period_;
    if (resume_hop_) {
      // Restored mid-interval: frame k lands at k * period in a cold run,
      // so sleep to the next frame's absolute due time instead of a full
      // period from the (arbitrary) restore instant.
      resume_hop_ = false;
      d = period_ * (frames_ + 1) - sim_->now();
    }
    co_await sim_->delay(d);
    // Fill with pseudo-random printable data of the configured class. A
    // stuck sensor keeps its timing (frames and interrupts fire) but the
    // data window freezes — the classic undetectable ADC failure.
    if (!fi_stuck_) {
      for (auto& b : frame_) {
        lcg_ = lcg_ * 1103515245u + 12345u;
        b = dift::TaintedByte(static_cast<std::uint8_t>((lcg_ >> 16) % 96 + 32),
                              data_tag_);
      }
    }
    ++frames_;
    if (irq_) irq_();
  }
}

void Sensor::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(50);
  p.response = tlmlite::Response::kOk;
  if (p.address + p.length <= kFrameSize) {
    // Data-frame window.
    for (std::uint32_t i = 0; i < p.length; ++i) {
      auto& cell = frame_[p.address + i];
      if (p.is_read()) {
        p.data[i] = cell.value();
        if (p.tainted()) p.tags[i] = cell.tag();
      } else {
        cell = dift::TaintedByte(p.data[i],
                                 p.tainted() ? p.tags[i] : dift::kBottomTag);
      }
    }
    return;
  }
  if (p.address == kDataTagReg) {
    if (p.is_read()) {
      // The configured security class itself is not confidential.
      for (std::uint32_t i = 0; i < p.length; ++i) {
        p.data[i] = i == 0 ? data_tag_ : 0;
        if (p.tainted()) p.tags[i] = dift::kBottomTag;
      }
    } else {
      // Mirrors the paper's `data_tag = *ptr`: the implicit Taint ->
      // uint8_t conversion requires the incoming byte to be cleared for the
      // engine's conversion clearance.
      const dift::TaintedByte incoming(p.data[0],
                                       p.tainted() ? p.tags[0] : dift::kBottomTag);
      data_tag_ = incoming;
    }
    return;
  }
  p.response = tlmlite::Response::kAddressError;
}

}  // namespace vpdift::soc
