// CAN controller model (mailbox style) plus the behavioural engine ECU used
// by the immobilizer case study.
//
// Register map:
//   0x00 TX_ID    (rw)
//   0x04 TX_DLC   (rw) 0..8
//   0x08..0x0f TX_DATA (rw)
//   0x10 TX_CTRL  (w)  write 1: transmit (clearance-checked per data byte)
//   0x14 RX_ID    (r)
//   0x18 RX_DLC   (r)
//   0x1c..0x23 RX_DATA (r) classified with the configured input tag
//   0x24 RX_STATUS(r)  bit0: frame available
//   0x28 RX_POP   (w)  write 1: consume current frame
//   0x2c IE       (rw) bit0: rx interrupt enable
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "dift/tag.hpp"
#include "soc/aes128.hpp"
#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

/// One CAN frame on the wire (tags only meaningful system-internally).
struct CanFrame {
  std::uint32_t id = 0;
  std::uint32_t dlc = 0;
  std::array<std::uint8_t, 8> data{};
};

class CanPeriph : public sysc::Module {
 public:
  static constexpr std::uint64_t kTxId = 0x00, kTxDlc = 0x04, kTxData = 0x08,
                                 kTxCtrl = 0x10, kRxId = 0x14, kRxDlc = 0x18,
                                 kRxData = 0x1c, kRxStatus = 0x24, kRxPop = 0x28,
                                 kIe = 0x2c;

  CanPeriph(sysc::Simulation& sim, std::string name);

  tlmlite::TargetSocket& socket() { return tsock_; }

  /// Output clearance of the TX path (disengaged = unchecked).
  void set_output_clearance(std::optional<dift::Tag> tag) { tx_clearance_ = tag; }
  /// Classification of received frame data.
  void set_input_tag(dift::Tag tag) { rx_tag_ = tag; }
  /// Wire: frames transmitted by the SW land here.
  void set_on_tx(std::function<void(const CanFrame&)> fn) { on_tx_ = std::move(fn); }
  /// RX interrupt line.
  void set_irq(std::function<void(bool)> fn) { irq_ = std::move(fn); }

  /// Wire: delivers a frame from the bus into the RX mailbox.
  void receive(const CanFrame& frame);

  std::uint64_t frames_sent() const { return tx_count_; }
  std::size_t rx_pending() const { return rx_.size(); }

  /// Fault injection: an error frame on the wire destroys the frame at the
  /// head of the RX mailbox. Returns true if a frame was actually dropped.
  bool fi_drop_rx_frame();
  /// Fault injection: bus-off — TX requests are silently discarded and
  /// incoming frames are lost until the condition is cleared.
  void fi_set_bus_off(bool off);
  bool fi_bus_off() const { return bus_off_; }

  /// Snapshotable device state (mailboxes, counters, fault latches).
  /// Clearances/input tags are policy configuration, not state.
  struct State {
    CanFrame tx;
    std::array<dift::Tag, 8> tx_tags{};
    std::deque<CanFrame> rx;
    std::uint32_t ie = 0;
    std::uint64_t tx_count = 0;
    bool bus_off = false;
  };
  State save_state() const { return {tx_, tx_tags_, rx_, ie_, tx_count_, bus_off_}; }
  /// Restores device state without re-deriving the IRQ line (the restored
  /// PLIC pending set is authoritative for level-triggered sources).
  void load_state(const State& s) {
    tx_ = s.tx;
    tx_tags_ = s.tx_tags;
    rx_ = s.rx;
    ie_ = s.ie;
    tx_count_ = s.tx_count;
    bus_off_ = s.bus_off;
  }

 private:
  void transport(tlmlite::Payload& p, sysc::Time& delay);
  void update_irq();

  tlmlite::TargetSocket tsock_;
  CanFrame tx_;
  std::array<dift::Tag, 8> tx_tags_{};
  std::deque<CanFrame> rx_;
  std::optional<dift::Tag> tx_clearance_;
  dift::Tag rx_tag_ = dift::kBottomTag;
  std::uint32_t ie_ = 0;
  std::uint64_t tx_count_ = 0;
  bool bus_off_ = false;
  std::function<void(const CanFrame&)> on_tx_;
  std::function<void(bool)> irq_;
};

/// Behavioural model of the engine ECU on the other end of the CAN bus.
/// Periodically sends a random challenge and verifies the immobilizer's
/// response (AES-128 encryption of the challenge under the shared PIN).
class EngineEcu : public sysc::Module {
 public:
  EngineEcu(sysc::Simulation& sim, std::string name, CanPeriph& immo_can,
            AesKey pin, sysc::Time period = sysc::Time::ms(10));

  static constexpr std::uint32_t kChallengeId = 0x100;
  static constexpr std::uint32_t kResponseId = 0x101;

  void start() { sim_->spawn(run()); }

  /// Called by the CAN wiring when the immobilizer transmits.
  void on_frame(const CanFrame& frame);

  std::uint64_t challenges_sent() const { return challenges_; }
  std::uint64_t auth_ok() const { return auth_ok_; }
  std::uint64_t auth_fail() const { return auth_fail_; }

  /// Snapshotable ECU state. Challenge k goes out at absolute time
  /// k * period, so `challenges` pins the generator's phase the same way
  /// the sensor's frame counter does.
  struct State {
    std::uint32_t lcg = 0xcafebabe;
    std::array<std::uint8_t, 8> challenge{};
    bool awaiting_response = false;
    std::uint64_t challenges = 0, auth_ok = 0, auth_fail = 0;
  };
  State save_state() const {
    return {lcg_, challenge_, awaiting_response_, challenges_, auth_ok_, auth_fail_};
  }
  void load_state(const State& s) {
    lcg_ = s.lcg;
    challenge_ = s.challenge;
    awaiting_response_ = s.awaiting_response;
    challenges_ = s.challenges;
    auth_ok_ = s.auth_ok;
    auth_fail_ = s.auth_fail;
    resume_hop_ = true;
  }

 private:
  sysc::Task run();

  CanPeriph* immo_can_;
  AesKey pin_;
  sysc::Time period_;
  std::uint32_t lcg_ = 0xcafebabe;
  std::array<std::uint8_t, 8> challenge_{};
  bool awaiting_response_ = false;
  std::uint64_t challenges_ = 0, auth_ok_ = 0, auth_fail_ = 0;
  bool resume_hop_ = false;
};

}  // namespace vpdift::soc
