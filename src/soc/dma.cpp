#include "soc/dma.hpp"

#include <algorithm>

#include "tlmlite/payload.hpp"

namespace vpdift::soc {

Dma::Dma(sysc::Simulation& sim, std::string name, bool tainted_mode)
    : Module(sim, std::move(name)),
      start_event_(sim),
      tainted_mode_(tainted_mode) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

sysc::Task Dma::run() {
  if (resume_hop_ && busy_) {
    // Restored mid-transfer: the cold process is asleep in the pacing delay
    // of the burst it just issued; wait out the remainder, then continue
    // the copy from the saved cursors.
    resume_hop_ = false;
    if (next_burst_due_ > sim_->now())
      co_await sim_->delay(next_burst_due_ - sim_->now());
  } else {
    resume_hop_ = false;
  }
  while (true) {
    // A start command may have arrived before this thread first ran (the
    // notification would then be lost); the busy flag covers that window.
    while (!busy_) co_await start_event_;
    while (remaining_ > 0) {
      burst();
      next_burst_due_ = sim_->now() + sysc::Time::ns(100);
      co_await sim_->delay(sysc::Time::ns(100));  // burst pacing
    }
    busy_ = false;
    done_ = true;
    ++transfers_;
    if (irq_) irq_();
  }
}

void Dma::burst() {
  const std::uint32_t n = std::min(remaining_, kBurstBytes);
  std::uint8_t buf[kBurstBytes];
  dift::Tag tbuf[kBurstBytes];
  sysc::Time delay;

  tlmlite::Payload rd;
  rd.command = tlmlite::Command::kRead;
  rd.address = cur_src_;
  rd.data = buf;
  rd.tags = tainted_mode_ ? tbuf : nullptr;
  rd.length = n;
  isock_.b_transport(rd, delay);

  tlmlite::Payload wr;
  wr.command = tlmlite::Command::kWrite;
  wr.address = cur_dst_;
  wr.data = buf;
  wr.tags = tainted_mode_ ? tbuf : nullptr;
  wr.length = n;
  // Forward the source's uniform-tag summary so the destination can
  // update its block summaries without rescanning the burst.
  if (tainted_mode_ && rd.ok() && rd.tags_uniform()) {
    wr.tag_summary = rd.tag_summary;
    ++summary_hits_;
  }
  isock_.b_transport(wr, delay);

  cur_src_ += n;
  cur_dst_ += n;
  remaining_ -= n;
}

void Dma::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(50);
  p.response = tlmlite::Response::kOk;
  auto rd_u32 = [&](std::uint32_t v) { tlmlite::fill_reg_u32(p, v); };
  auto wr_u32 = [&](std::uint32_t& v) { v = tlmlite::collect_reg_u32(p); };
  switch (p.address) {
    case kSrc: p.is_read() ? rd_u32(src_) : wr_u32(src_); break;
    case kDst: p.is_read() ? rd_u32(dst_) : wr_u32(dst_); break;
    case kLen: p.is_read() ? rd_u32(len_) : wr_u32(len_); break;
    case kCtrl:
      if (p.is_read()) {
        rd_u32(0);  // write-only register reads as zero, never as stale bytes
      } else if (p.data[0] == 1 && !busy_) {
        busy_ = true;
        done_ = false;
        cur_src_ = src_;
        cur_dst_ = dst_;
        remaining_ = len_;
        start_event_.notify();
      }
      break;
    case kStatus:
      // Read-only: a write must not scribble status bytes into the
      // initiator's payload buffer.
      if (p.is_read()) rd_u32((busy_ ? 1u : 0u) | (done_ ? 2u : 0u));
      break;
    default: p.response = tlmlite::Response::kAddressError; break;
  }
}

}  // namespace vpdift::soc
