#include "soc/spiflash.hpp"

#include <cstring>

#include "tlmlite/payload.hpp"

namespace vpdift::soc {

SpiFlash::SpiFlash(sysc::Simulation& sim, std::string name,
                   std::vector<std::uint8_t> image, dift::Tag image_tag)
    : Module(sim, std::move(name)), image_(std::move(image)), tag_(image_tag) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void SpiFlash::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(200);  // XIP flash is slow
  if (p.address + p.length > image_.size()) {
    p.response = tlmlite::Response::kAddressError;
    return;
  }
  if (!p.is_read()) {
    p.response = tlmlite::Response::kGenericError;  // read-only device
    return;
  }
  std::memcpy(p.data, image_.data() + p.address, p.length);
  if (fi_reads_ > 0) {
    p.data[0] ^= fi_mask_;
    --fi_reads_;
  }
  if (p.tainted())
    for (std::uint32_t i = 0; i < p.length; ++i) p.tags[i] = tag_;
  p.response = tlmlite::Response::kOk;
}

}  // namespace vpdift::soc
