#include "soc/sysctrl.hpp"

#include "tlmlite/payload.hpp"

namespace vpdift::soc {

SysCtrl::SysCtrl(sysc::Simulation& sim, std::string name)
    : Module(sim, std::move(name)) {
  tsock_.register_transport(
      [this](tlmlite::Payload& p, sysc::Time& d) { transport(p, d); });
}

void SysCtrl::transport(tlmlite::Payload& p, sysc::Time& delay) {
  delay += sysc::Time::ns(10);
  p.response = tlmlite::Response::kOk;
  switch (p.address) {
    case kExit:
      if (p.is_write()) {
        exit_code_ = tlmlite::collect_reg_u32(p);
        exited_ = true;
        sim_->stop();
      }
      break;
    case kMark:
      if (p.is_write()) markers_.push_back(static_cast<char>(p.data[0]));
      break;
    default:
      p.response = tlmlite::Response::kAddressError;
      break;
  }
}

}  // namespace vpdift::soc
