// System controller: firmware-visible exit and test-status interface.
//
// Register map:
//   0x00 EXIT   (w) stop the simulation with this exit code
//   0x04 MARK   (w) append a marker byte to the host-visible marker log
//                   (used by the attack suite to flag "payload executed")
#pragma once

#include <cstdint>
#include <string>

#include "sysc/kernel.hpp"
#include "tlmlite/socket.hpp"

namespace vpdift::soc {

class SysCtrl : public sysc::Module {
 public:
  static constexpr std::uint64_t kExit = 0x00, kMark = 0x04;

  SysCtrl(sysc::Simulation& sim, std::string name);

  tlmlite::TargetSocket& socket() { return tsock_; }

  bool exited() const { return exited_; }
  std::uint32_t exit_code() const { return exit_code_; }
  const std::string& markers() const { return markers_; }

  /// Snapshotable device state (the marker log is cumulative, like the UART
  /// TX log, so restored runs compose with the golden prefix).
  struct State {
    bool exited = false;
    std::uint32_t exit_code = 0;
    std::string markers;
  };
  State save_state() const { return {exited_, exit_code_, markers_}; }
  void load_state(const State& s) {
    exited_ = s.exited;
    exit_code_ = s.exit_code;
    markers_ = s.markers;
  }

 private:
  void transport(tlmlite::Payload& p, sysc::Time& delay);

  tlmlite::TargetSocket tsock_;
  bool exited_ = false;
  std::uint32_t exit_code_ = 0;
  std::string markers_;
};

}  // namespace vpdift::soc
