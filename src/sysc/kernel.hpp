// Compact event-driven simulation kernel (SystemC stand-in).
//
// The paper builds on the IEEE-1666 SystemC kernel; this module reproduces
// the subset its VP relies on, using C++20 coroutines for processes:
//   * Task            — an SC_THREAD-like cooperative process,
//   * Simulation      — the scheduler: timed queue + delta queue, run/stop,
//   * Event           — notifiable wake-up point (immediate or timed),
//   * Module          — named structural unit that spawns processes.
// Processes suspend with `co_await sim.delay(t)` or `co_await event` and are
// resumed by the scheduler in (time, scheduling-order) order. Exceptions
// escaping any process (e.g. a dift::PolicyViolation raised inside a
// peripheral thread) abort the simulation and are rethrown from run().
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sysc/time.hpp"

namespace vpdift::sysc {

class Simulation;
class Event;

/// Fire-and-forget coroutine process owned by the Simulation.
class [[nodiscard]] Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception();
  };

  Task(Task&& o) noexcept : handle_(o.handle_) { o.handle_ = nullptr; }
  Task& operator=(Task&& o) noexcept;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task();

  bool done() const { return !handle_ || handle_.done(); }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

/// The scheduler. Single-threaded and thread-confined. A different
/// Simulation may run nested inside a dispatched handler (the fork engine
/// runs tail VPs from inside the golden run); re-entering run() on the
/// same instance throws.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Rebases the simulation clock — only valid while the kernel is idle
  /// (no pending timed or delta activity) and not inside run(). Used by
  /// snapshot restore to resume a forked VP at the capture time so every
  /// subsequent delay lands at the same absolute instant as a cold replay.
  void set_now(Time t);

  /// Rewinds the kernel to its post-construction state: destroys every
  /// process, drops all timed and delta activity, clears the waiter lists
  /// of every Event registered with this simulation (their coroutine
  /// handles die with the tasks), and resets the clock to zero. Invalid
  /// inside run(). This is what lets a long-lived service re-arm one warm
  /// VP per job instead of rebuilding it.
  void reset();

  /// Registers a process; it first runs at the current time (delta phase).
  void spawn(Task task);

  /// Schedules `fn` to run `after` from now (kernel-internal callbacks).
  void schedule_in(Time after, std::function<void()> fn);
  /// Schedules `fn` into the current delta phase.
  void post(std::function<void()> fn);

  /// Runs until no activity remains, stop() is called, or `until` is reached
  /// (events at `until` still execute). Rethrows process exceptions.
  void run(Time until = Time::max());

  /// Requests the run loop to exit after the current activation.
  void stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  /// True when neither timed nor delta activity is pending.
  bool idle() const { return timed_.empty() && delta_.empty(); }

  /// Process count (for diagnostics).
  std::size_t process_count() const { return tasks_.size(); }

  /// The simulation currently inside run() *on this thread*, if any (used
  /// by Task's exception plumbing and by awaitables). Thread-local so that
  /// independent simulations may run concurrently on different threads;
  /// each Simulation remains single-threaded (thread-confined).
  static Simulation* current() { return current_; }

  // -- awaitable: co_await sim.delay(t) --
  struct DelayAwaiter {
    Simulation* sim;
    Time d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->schedule_in(d, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(Time d) { return {this, d}; }

 private:
  friend struct Task::promise_type;
  friend class Event;

  struct TimedItem {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const TimedItem& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void dispatch(const std::function<void()>& fn);

  Time now_;
  std::uint64_t seq_ = 0;
  std::priority_queue<TimedItem, std::vector<TimedItem>, std::greater<>> timed_;
  std::vector<std::function<void()>> delta_;
  std::vector<Task> tasks_;
  std::vector<Event*> events_;  ///< registered events (waiters cleared on reset)
  bool stop_requested_ = false;
  std::exception_ptr pending_exception_;
  static thread_local constinit Simulation* current_;
};

/// Notifiable synchronisation point (sc_event equivalent). Registers with
/// its Simulation so a kernel reset can clear the waiter list — after
/// reset() destroys the tasks, those coroutine handles are dead, and a
/// later notify() must not try to resume them.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {
    sim_->events_.push_back(this);
  }
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Wakes all waiters in the current delta phase.
  void notify();
  /// Wakes all waiters registered at notification time, `after` from now.
  void notify(Time after);

  struct Awaiter {
    Event* ev;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() { return {this}; }

 private:
  friend class Simulation;
  Simulation* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Named structural unit (sc_module equivalent).
class Module {
 public:
  Module(Simulation& sim, std::string name) : sim_(&sim), name_(std::move(name)) {}
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  Simulation& sim() const { return *sim_; }

 protected:
  Simulation* sim_;
  std::string name_;
};

}  // namespace vpdift::sysc
