#include "sysc/kernel.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace vpdift::sysc {

thread_local constinit Simulation* Simulation::current_ = nullptr;

std::string Time::to_string() const {
  char buf[64];
  if (ps_ >= 1'000'000'000ull && ps_ % 1'000'000'000ull == 0)
    std::snprintf(buf, sizeof buf, "%llu ms", static_cast<unsigned long long>(millis()));
  else if (ps_ >= 1'000'000ull && ps_ % 1'000'000ull == 0)
    std::snprintf(buf, sizeof buf, "%llu us", static_cast<unsigned long long>(micros()));
  else if (ps_ >= 1'000ull && ps_ % 1'000ull == 0)
    std::snprintf(buf, sizeof buf, "%llu ns", static_cast<unsigned long long>(nanos()));
  else
    std::snprintf(buf, sizeof buf, "%llu ps", static_cast<unsigned long long>(ps_));
  return buf;
}

void Task::promise_type::unhandled_exception() {
  if (Simulation* sim = Simulation::current()) {
    sim->pending_exception_ = std::current_exception();
    sim->stop();
  } else {
    std::terminate();
  }
}

Task& Task::operator=(Task&& o) noexcept {
  if (this != &o) {
    if (handle_) handle_.destroy();
    handle_ = std::exchange(o.handle_, nullptr);
  }
  return *this;
}

Task::~Task() {
  if (handle_) handle_.destroy();
}

void Simulation::spawn(Task task) {
  auto h = task.handle_;
  tasks_.push_back(std::move(task));
  post([h] {
    if (h && !h.done()) h.resume();
  });
}

void Simulation::schedule_in(Time after, std::function<void()> fn) {
  timed_.push(TimedItem{now_ + after, seq_++, std::move(fn)});
}

void Simulation::post(std::function<void()> fn) { delta_.push_back(std::move(fn)); }

void Simulation::dispatch(const std::function<void()>& fn) {
  fn();
  if (pending_exception_) {
    auto e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Simulation::reset() {
  if (current_ == this)
    throw std::logic_error("Simulation::reset() inside run() is not supported");
  // Destroy processes first, then drop the queued lambdas that captured
  // their handles, then clear every registered event's waiter list — after
  // this, nothing in the kernel references a coroutine frame.
  tasks_.clear();
  delta_.clear();
  timed_ = {};
  for (Event* ev : events_) ev->waiters_.clear();
  now_ = Time();
  seq_ = 0;
  stop_requested_ = false;
  pending_exception_ = nullptr;
}

void Simulation::set_now(Time t) {
  if (!idle())
    throw std::logic_error("Simulation::set_now() requires an idle kernel");
  if (current_ == this)
    throw std::logic_error("Simulation::set_now() inside run() is not supported");
  now_ = t;
}

void Simulation::run(Time until) {
  // A simulation must not re-enter its own run loop, but a *different*
  // simulation may run nested inside a dispatched handler — the snapshot/fork
  // campaign engine executes forked-tail VPs (each with its own kernel)
  // from inside the golden run's callbacks. Save and restore the outer
  // kernel's `current_` so exception plumbing keeps targeting the right one.
  if (current_ == this)
    throw std::logic_error("Simulation::run() re-entered on the same instance");
  Simulation* outer = current_;
  current_ = this;
  struct Reset {
    Simulation* outer;
    ~Reset() { Simulation::current_ = outer; }
  } reset{outer};

  stop_requested_ = false;
  while (!stop_requested_) {
    if (!delta_.empty()) {
      // Drain one delta phase; handlers may post into the next one.
      std::vector<std::function<void()>> phase;
      phase.swap(delta_);
      for (const auto& fn : phase) {
        dispatch(fn);
        if (stop_requested_) return;
      }
      continue;
    }
    if (timed_.empty()) return;
    if (timed_.top().t > until) return;
    TimedItem item = timed_.top();
    timed_.pop();
    now_ = item.t;
    dispatch(item.fn);
  }
}

Event::~Event() {
  if (!sim_) return;
  auto& evs = sim_->events_;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    if (evs[i] == this) {
      evs[i] = evs.back();
      evs.pop_back();
      break;
    }
  }
}

void Event::notify() {
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters)
    sim_->post([h] {
      if (h && !h.done()) h.resume();
    });
}

void Event::notify(Time after) {
  sim_->schedule_in(after, [this] { notify(); });
}

}  // namespace vpdift::sysc
