// Simulation time with picosecond resolution (sc_time equivalent).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace vpdift::sysc {

/// Absolute simulation time / duration, counted in picoseconds.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time ps(std::uint64_t v) { return Time(v); }
  static constexpr Time ns(std::uint64_t v) { return Time(v * 1'000ull); }
  static constexpr Time us(std::uint64_t v) { return Time(v * 1'000'000ull); }
  static constexpr Time ms(std::uint64_t v) { return Time(v * 1'000'000'000ull); }
  static constexpr Time sec(std::uint64_t v) { return Time(v * 1'000'000'000'000ull); }
  static constexpr Time max() { return Time(std::numeric_limits<std::uint64_t>::max()); }

  constexpr std::uint64_t picos() const { return ps_; }
  constexpr std::uint64_t nanos() const { return ps_ / 1'000ull; }
  constexpr std::uint64_t micros() const { return ps_ / 1'000'000ull; }
  constexpr std::uint64_t millis() const { return ps_ / 1'000'000'000ull; }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ps_ + b.ps_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ps_ - b.ps_); }
  friend constexpr Time operator*(Time a, std::uint64_t k) { return Time(a.ps_ * k); }
  constexpr Time& operator+=(Time o) { ps_ += o.ps_; return *this; }
  friend constexpr auto operator<=>(Time, Time) = default;

  std::string to_string() const;

 private:
  constexpr explicit Time(std::uint64_t ps) : ps_(ps) {}
  std::uint64_t ps_ = 0;
};

}  // namespace vpdift::sysc
