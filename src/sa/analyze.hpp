// Static firmware analysis (ahead-of-time companion to the DIFT engine).
//
// Three cooperating passes over a loaded rvasm::Program:
//
//   1. CFG recovery — recursive descent from the entry point (plus every
//      trap vector installed through a resolvable `csrrw mtvec`), reusing
//      the rv/decode decoder and the block-terminator predicate the core's
//      block builder uses. Direct jumps and branches are followed exactly;
//      `jalr` targets are resolved through the value analysis (singleton
//      intervals) or, for returns (`jalr x0, ra, 0`), structurally via the
//      call graph (return sites feed every recorded continuation of their
//      containing function). Unresolvable indirects mark the CFG incomplete.
//
//   2. Taint reachability — a forward abstract interpretation over the
//      domain (u32 interval x may-taint tag) per register, with a
//      flow-insensitive may-taint map over RAM seeded from the policy's
//      memory classification and a per-peripheral MMIO source/sink model
//      mirroring src/soc. To keep counted copy loops precise without a
//      relational domain, up to kMaxStatesPerPc distinct abstract states
//      are kept per instruction (bounded disjunction) before collapsing
//      into one widened join state; interval bounds lost to widening are
//      recovered through branch refinement (beq/bne/bltu/bgeu).
//
//   3. Policy lint + pinning — statically reachable clearance violations
//      (a source reaching a sink without a sanctioned declassification),
//      dead flow rules, unused declassification grants, unreachable
//      clearance sites, SMC-capable stores; plus the set of "plain-pinnable"
//      instruction boundaries fed to rv::Core::set_pinned_blocks (see
//      pin_mode below for the two soundness tiers).
//
// Soundness caveats are documented in docs/analysis.md (DMA, MMIO readback
// conservatism, the structural-return assumption, trap-handler modelling).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dift/policy.hpp"
#include "rv/decode.hpp"
#include "rvasm/program.hpp"

namespace vpdift::sa {

/// Coarse instruction classification driving the analyzer's transfer
/// functions and the pin-window safety scan. Exactly one class per Op.
enum class InsnClass : std::uint8_t {
  kTerminator,  ///< ends a translated block (rv::is_block_terminator)
  kBranch,      ///< conditional branch (falls through inside a block)
  kLoad,
  kStore,
  kCompute,  ///< everything else (ALU, lui/auipc)
};

/// Classification of a decoded instruction. Terminator status agrees with
/// rv::is_block_terminator by construction (tested exhaustively).
InsnClass classify(const rv::Insn& insn);

/// Closed u32 interval [lo, hi]; top = [0, 0xffffffff].
struct Interval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0xffffffffu;
  bool is_top() const { return lo == 0 && hi == 0xffffffffu; }
  bool singleton() const { return lo == hi; }
  static Interval top() { return {}; }
  static Interval exact(std::uint32_t v) { return {v, v}; }
};

/// One lint/analysis finding. `kind` is a stable machine-readable slug:
///   reachable-violation   policy violation on a statically reachable path
///   dead-flow-rule        configured lattice flow edge never exercised
///   unused-declass-grant  declassifying peripheral whose output is never read
///   unreachable-clearance-site  clearance-configured interface never written
///   smc-store             store that may overwrite reachable code
///   unresolved-indirect   jalr whose target set could not be resolved
///   imprecise-store       store through an unbounded pointer (analysis note)
///   analysis-limit        exploration budget exhausted / malformed image
struct Finding {
  std::string kind;
  std::string where;      ///< check site / device ("uart0.tx", "core.branch", ...)
  std::uint64_t pc = 0;   ///< anchoring instruction (0 when not pc-anchored)
  std::string detail;     ///< human-readable one-liner
  bool reachable = false; ///< true only for kind == "reachable-violation"
};

/// Recovered basic block (report granularity; the core's translated blocks
/// are windows over these, capped at its op limit).
struct BlockSummary {
  std::uint64_t start = 0;
  std::uint64_t end = 0;           ///< exclusive
  bool touches_taint = false;      ///< may load/store non-bottom data or trip a check
  bool pinned = false;             ///< start is in the pinned set
};

struct AnalysisResult {
  // CFG facts.
  std::uint64_t entry = 0;
  std::size_t reachable_instructions = 0;
  std::size_t linear_sweep_instructions = 0;  ///< decodable by linear sweep
  std::size_t unreachable_bytes = 0;          ///< text bytes recursive descent never hit
  std::vector<BlockSummary> blocks;
  std::vector<std::uint64_t> trap_entries;
  std::vector<std::uint64_t> call_entries;      ///< discovered function entries
  std::vector<std::uint64_t> unresolved_indirects;  ///< jalr pcs, unresolved
  std::vector<std::uint64_t> smc_stores;            ///< store pcs that may hit code

  /// CFG closed: every indirect resolved, every trap vector known, budget
  /// not exhausted. Required for windowed pinning, not for taint-free.
  bool complete = false;
  /// The policy introduces no non-bottom tag anywhere (no classified
  /// memory/inputs, no declassification targets) — tier-A pinning.
  bool taint_free = false;

  std::vector<Finding> findings;
  std::size_t reachable_violations = 0;  ///< count of reachable-violation findings

  /// "taint-free": every reachable boundary pinned (no tag can ever exist).
  /// "windowed":   per-window memory-obligation proofs (tier B).
  /// "none":       pinning disabled (incomplete CFG / escape hatches tripped).
  std::string pin_mode = "none";
  std::vector<std::uint64_t> pinned_pcs;  ///< sorted guest addresses

  /// FNV-1a64 over the sorted pin set (0 when empty) — the identity the CI
  /// analyzer smoke gate compares against.
  std::uint64_t pin_hash() const;
};

struct AnalyzeOptions {
  std::uint64_t ram_size = 4u << 20;       ///< must match the VP config
  std::size_t max_steps = 4u << 20;        ///< abstract-transfer budget
  std::size_t max_states_per_pc = 24;      ///< bounded-disjunction width
};

/// Analyzes `prog` under `policy` (nullptr = no policy: pure CFG recovery,
/// everything taint-free). Never throws on malformed firmware — degrades to
/// an incomplete result with an "analysis-limit" finding.
AnalysisResult analyze(const rvasm::Program& prog,
                       const dift::SecurityPolicy* policy,
                       const AnalyzeOptions& opts = {});

/// Machine-readable report (one JSON object, schema stable for ci gating).
std::string to_json(const AnalysisResult& r);
/// Human-readable report for the CLI's --format text.
std::string to_text(const AnalysisResult& r);

}  // namespace vpdift::sa
