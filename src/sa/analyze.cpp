#include "sa/analyze.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "soc/addrmap.hpp"
#include "soc/aes_periph.hpp"
#include "soc/can.hpp"
#include "soc/dma.hpp"
#include "soc/gpio.hpp"
#include "soc/sensor.hpp"
#include "soc/uart.hpp"

namespace vpdift::sa {

using dift::kBottomTag;
using dift::Tag;
using rv::Insn;
using rv::Op;

InsnClass classify(const rv::Insn& insn) {
  if (rv::is_block_terminator(insn.op)) return InsnClass::kTerminator;
  switch (insn.op) {
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return InsnClass::kBranch;
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      return InsnClass::kLoad;
    case Op::kSb: case Op::kSh: case Op::kSw:
      return InsnClass::kStore;
    default:
      return InsnClass::kCompute;
  }
}

namespace {

namespace am = soc::addrmap;

constexpr std::uint32_t kU32Max = 0xffffffffu;
/// Accesses wider than this are treated as unbounded (poison on taint).
constexpr std::uint64_t kWideAccess = 4096;
/// Joins into the per-pc overflow state before widening kicks in.
constexpr int kWidenAfter = 4;
/// A capped-out state merges into an existing slot when at most this many
/// registers would widen (outer-loop counters, spilled temporaries).
constexpr int kMergeCostMax = 8;
/// In-place merges a slot absorbs before its growing bounds widen.
constexpr int kSlotWidenJoins = 64;

// ---- interval arithmetic -------------------------------------------------

Interval ijoin(Interval a, Interval b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

bool isubset(Interval a, Interval b) { return a.lo >= b.lo && a.hi <= b.hi; }

/// [a] + [b] with consistent wrap-around: exact when both bounds land in the
/// same 2^32 window, top otherwise.
Interval iadd(Interval a, Interval b) {
  if (a.is_top() || b.is_top()) return Interval::top();
  const std::uint64_t lo = std::uint64_t(a.lo) + b.lo;
  const std::uint64_t hi = std::uint64_t(a.hi) + b.hi;
  if ((lo >> 32) != (hi >> 32)) return Interval::top();
  return {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
}

Interval iadd_const(Interval a, std::int32_t k) {
  if (a.is_top()) return Interval::top();
  const std::int64_t lo = std::int64_t(a.lo) + k;
  const std::int64_t hi = std::int64_t(a.hi) + k;
  if (lo >= 0 && hi <= std::int64_t(kU32Max))
    return {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
  if (lo < 0 && hi < 0)  // consistent borrow: wrap both
    return {static_cast<std::uint32_t>(lo + (1ll << 32)),
            static_cast<std::uint32_t>(hi + (1ll << 32))};
  return Interval::top();
}

Interval isub(Interval a, Interval b) {
  if (a.is_top() || b.is_top()) return Interval::top();
  const std::int64_t lo = std::int64_t(a.lo) - b.hi;
  const std::int64_t hi = std::int64_t(a.hi) - b.lo;
  if (lo >= 0 && hi <= std::int64_t(kU32Max))
    return {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
  if (lo < 0 && hi < 0)
    return {static_cast<std::uint32_t>(lo + (1ll << 32)),
            static_cast<std::uint32_t>(hi + (1ll << 32))};
  return Interval::top();
}

struct AbsVal {
  Interval iv = Interval::top();
  Tag t = kBottomTag;
};

struct RegState {
  std::array<AbsVal, 32> r{};
  AbsVal& operator[](std::size_t i) { return r[i]; }
  const AbsVal& operator[](std::size_t i) const { return r[i]; }
};

/// Byte span touched by one access (inclusive bounds); `wide` subsumes top
/// and cross-space spans — the analyzer stops tracking it precisely.
struct Span {
  std::uint64_t lo = 0, hi = 0;
  bool wide = false;
};

Span span_of(Interval addr, std::uint32_t size) {
  if (addr.is_top()) return {0, 0, true};
  const std::uint64_t lo = addr.lo;
  const std::uint64_t hi = std::uint64_t(addr.hi) + size - 1;
  if (hi < lo || hi - lo > kWideAccess) return {0, 0, true};
  return {lo, hi, false};
}

bool overlaps(const Span& s, std::uint64_t base, std::uint64_t size) {
  return !s.wide && size != 0 && s.lo < base + size && s.hi >= base;
}

enum class AccKind : std::uint8_t { kNone, kRam, kMmio, kWide };

class Analyzer {
 public:
  Analyzer(const rvasm::Program& prog, const dift::SecurityPolicy* policy,
           const AnalyzeOptions& opts)
      : prog_(prog), pol_(policy), opts_(opts) {}

  AnalysisResult run();

 private:
  // ---- image -------------------------------------------------------------
  std::uint32_t fetch_u32(std::uint64_t off) const {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) |
          (off + i < image_.size() ? image_[static_cast<std::size_t>(off) + i] : 0);
    return v;
  }
  Insn decode_at(std::uint32_t pc) const {
    return rv::decode_any(fetch_u32(pc - base_));
  }
  bool in_ram(std::uint64_t a) const { return a >= base_ && a - base_ < ram_size_; }

  // ---- lattice helpers ---------------------------------------------------
  Tag lub(Tag a, Tag b) const {
    if (a == b || b == kBottomTag) return a;
    if (a == kBottomTag) return b;
    return lat_ ? lat_->lub(a, b) : kBottomTag;
  }
  bool flows(Tag from, Tag to) {
    checked_.insert({from, to});
    if (!lat_ || from == to) return true;
    return lat_->allowed_flow(from, to);
  }
  bool taint_le(Tag a, Tag b) const { return lub(a, b) == b; }

  // ---- state plumbing ----------------------------------------------------
  struct Slot {
    RegState st;
    int joins = 0;  ///< in-place merges absorbed; widen past kSlotWidenJoins
  };
  struct PcInfo {
    std::vector<Slot> states;
    std::optional<RegState> over;  ///< widened join of everything past the cap
    int over_joins = 0;
    std::set<int> funcs;  ///< structural containing-function ids
    // Cumulative access facts (pin-window safety + SMC/lint, judged at end).
    AccKind acc = AccKind::kNone;
    std::uint64_t acc_lo = 0, acc_hi = 0;
    bool is_store = false;
    Tag store_ub = kBottomTag;  ///< lub of stored data tags seen here
    bool taint_touch = false;   ///< non-bottom data observed at this insn
  };

  void enqueue(std::uint32_t pc, int idx) {
    if (in_wl_.insert({pc, idx}).second) wl_.push_back({pc, idx});
  }
  void requeue_all(std::uint32_t pc) {
    auto& pi = pcs_[pc];
    for (int i = 0; i < static_cast<int>(pi.states.size()); ++i) enqueue(pc, i);
    if (pi.over) enqueue(pc, -1);
  }

  bool state_le(const RegState& a, const RegState& b) const {
    for (int i = 1; i < 32; ++i)
      if (!isubset(a[i].iv, b[i].iv) || !taint_le(a[i].t, b[i].t)) return false;
    return true;
  }
  RegState state_join(const RegState& a, const RegState& b) const {
    RegState j;
    for (int i = 1; i < 32; ++i)
      j[i] = {ijoin(a[i].iv, b[i].iv), lub(a[i].t, b[i].t)};
    j[0] = {Interval::exact(0), kBottomTag};
    return j;
  }

  /// Delivers `s` to `pc`, merging `funcs` into its membership. Bounded
  /// disjunction: distinct states up to the cap; past the cap the incoming
  /// state merges into the *closest* existing slot (fewest registers would
  /// widen) so that e.g. outer-loop counters don't smear inner-loop pointer
  /// precision; states unlike any slot fall into one widened overflow join.
  void deliver(std::uint32_t pc, RegState s, const std::set<int>& funcs) {
    if (!in_ram(pc)) return;  // control flow left RAM: runtime fetch fault
    s[0] = {Interval::exact(0), kBottomTag};
    auto& pi = pcs_[pc];
    bool funcs_grew = false;
    for (int f : funcs) funcs_grew |= pi.funcs.insert(f).second;
    if (funcs_grew) requeue_all(pc);  // return edges depend on membership
    for (const auto& ex : pi.states)
      if (state_le(s, ex.st)) return;
    if (pi.over && state_le(s, *pi.over)) return;
    if (pi.states.size() < opts_.max_states_per_pc) {
      pi.states.push_back({std::move(s), 0});
      enqueue(pc, static_cast<int>(pi.states.size()) - 1);
      return;
    }
    int best = -1, best_cost = 32;
    for (int i = 0; i < static_cast<int>(pi.states.size()); ++i) {
      int cost = 0;
      const RegState& ex = pi.states[static_cast<std::size_t>(i)].st;
      for (int r = 1; r < 32 && cost < best_cost; ++r)
        if (!isubset(s[r].iv, ex[r].iv) || !taint_le(s[r].t, ex[r].t)) ++cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    if (best_cost <= kMergeCostMax) {
      Slot& sl = pi.states[static_cast<std::size_t>(best)];
      RegState j = state_join(sl.st, s);
      if (++sl.joins > kSlotWidenJoins) {
        for (int i = 1; i < 32; ++i) {  // widen bounds that keep growing
          if (j[i].iv.lo < sl.st[i].iv.lo) j[i].iv.lo = 0;
          if (j[i].iv.hi > sl.st[i].iv.hi) j[i].iv.hi = kU32Max;
        }
      }
      if (!state_le(j, sl.st)) {
        sl.st = std::move(j);
        enqueue(pc, best);
      }
      return;
    }
    RegState joined = pi.over ? state_join(*pi.over, s) : std::move(s);
    if (pi.over && ++pi.over_joins > kWidenAfter) {
      for (int i = 1; i < 32; ++i) {  // widen bounds that are still growing
        if (joined[i].iv.lo < (*pi.over)[i].iv.lo) joined[i].iv.lo = 0;
        if (joined[i].iv.hi > (*pi.over)[i].iv.hi) joined[i].iv.hi = kU32Max;
      }
    }
    if (!pi.over || !state_le(joined, *pi.over)) {
      pi.over = std::move(joined);
      enqueue(pc, -1);
    }
  }

  // ---- findings ----------------------------------------------------------
  void finding(const std::string& kind, const std::string& where,
               std::uint64_t pc, std::string detail, bool reachable) {
    const std::string key =
        kind + "|" + where + "|" + std::to_string(pc);
    if (!keys_.insert(key).second) return;
    findings_.push_back({kind, where, pc, std::move(detail), reachable});
  }
  void violation(const std::string& where, std::uint32_t pc, Tag from, Tag to,
                 const char* what) {
    finding("reachable-violation", where, pc,
            std::string(what) + ": class '" + name_of(from) +
                "' may not flow to clearance '" + name_of(to) + "'",
            true);
  }
  std::string name_of(Tag t) const {
    return lat_ ? lat_->name_of(t) : std::string("bottom");
  }

  // ---- memory / MMIO model -----------------------------------------------
  void grow_tag(Tag& slot, Tag t) {
    const Tag n = lub(slot, t);
    if (n != slot) {
      slot = n;
      mem_dirty_ = true;
    }
  }
  void poison() {
    if (poisoned_) return;
    poisoned_ = true;
    mem_dirty_ = true;
  }
  /// May-taint of RAM bytes [lo, hi] against the *current* map.
  Tag ram_taint(std::uint64_t lo, std::uint64_t hi) const {
    if (poisoned_) return program_ub_;
    Tag t = kBottomTag;
    const std::uint64_t ext = image_.size();
    for (std::uint64_t a = std::max(lo, base_) - base_;
         a <= hi - base_ && a < ext; ++a)
      t = lub(t, mem_taint_[static_cast<std::size_t>(a)]);
    if (hi - base_ >= ext) t = lub(t, beyond_tag_);
    return t;
  }
  void ram_taint_store(std::uint64_t lo, std::uint64_t hi, Tag t) {
    if (t == kBottomTag) return;
    const std::uint64_t ext = image_.size();
    for (std::uint64_t a = std::max(lo, base_) - base_;
         a <= hi - base_ && a < ext; ++a) {
      auto& cell = mem_taint_[static_cast<std::size_t>(a)];
      const Tag n = lub(cell, t);
      if (n != cell) {
        cell = n;
        mem_dirty_ = true;
      }
    }
    if (hi - base_ >= ext) grow_tag(beyond_tag_, t);
  }

  Tag mmio_read_taint(const Span& s) {
    Tag t = kBottomTag;
    auto input = [&](const char* dev) {
      return pol_ ? pol_->input_class(dev) : kBottomTag;
    };
    if (overlaps(s, am::kUartBase + soc::Uart::kRxData, 4))
      t = lub(t, input("uart0.rx"));
    if (overlaps(s, am::kCanBase + soc::CanPeriph::kRxData, 8))
      t = lub(t, input("can0.rx"));
    if (overlaps(s, am::kSensorBase, soc::Sensor::kFrameSize))
      t = lub(t, input("sensor0"));
    if (overlaps(s, am::kGpioBase + soc::Gpio::kIn, 4))
      t = lub(t, input("gpio0.in"));
    if (overlaps(s, am::kAesBase + soc::AesPeriph::kOutput, 16)) {
      aes_output_read_ = true;
      const auto declass = pol_ ? pol_->declass_output("aes0") : std::nullopt;
      t = lub(t, declass ? *declass : aes_ub_);
    }
    if (overlaps(s, am::kCanBase + soc::CanPeriph::kTxData, 8)) t = lub(t, can_tx_ub_);
    return t;
  }

  void mmio_store(const Span& s, Tag data, std::uint32_t pc) {
    if (overlaps(s, am::kUartBase + soc::Uart::kTxData, 4)) {
      uart_tx_stored_ = true;
      if (pol_)
        if (auto c = pol_->output_clearance("uart0.tx"); c && !flows(data, *c))
          violation("uart0.tx", pc, data, *c, "UART transmit");
    }
    if (overlaps(s, am::kCanBase + soc::CanPeriph::kTxData, 8)) {
      can_tx_stored_ = true;
      grow_tag(can_tx_ub_, data);
      if (pol_)
        if (auto c = pol_->output_clearance("can0.tx"); c && !flows(data, *c))
          violation("can0.tx", pc, data, *c, "CAN transmit");
    }
    if (overlaps(s, am::kGpioBase + soc::Gpio::kOut, 4)) {
      gpio_out_stored_ = true;
      if (pol_)
        if (auto c = pol_->output_clearance("gpio0.out"); c && !flows(data, *c))
          violation("gpio0.out", pc, data, *c, "GPIO output");
    }
    if (overlaps(s, am::kAesBase + soc::AesPeriph::kKey, 16)) {
      aes_key_stored_ = true;
      grow_tag(aes_ub_, data);
      if (pol_)
        if (auto c = pol_->unit_clearance("aes0"); c && !flows(data, *c))
          violation("aes0.engine", pc, data, *c, "AES key load");
    }
    if (overlaps(s, am::kAesBase + soc::AesPeriph::kInput, 16))
      grow_tag(aes_ub_, data);
    if (overlaps(s, am::kDmaBase + soc::Dma::kCtrl, 4)) {
      dma_engaged_ = true;
      // The DMA copies RAM->RAM with tags the analyzer does not track
      // per-transfer; everything it could have read may now be anywhere.
      if (program_ub_ != kBottomTag) poison();
    }
  }

  // ---- transfer function --------------------------------------------------
  void exec_mem_addr_check(Tag addr_taint, std::uint32_t pc) {
    if (!pol_) return;
    if (auto c = pol_->execution_clearance().mem_addr;
        c && !flows(addr_taint, *c))
      violation("core.lsu", pc, addr_taint, *c, "memory-access address");
  }
  void branch_check(Tag t, std::uint32_t pc, const char* where) {
    if (!pol_) return;
    if (auto c = pol_->execution_clearance().branch; c && !flows(t, *c))
      violation(where, pc, t, *c, "control-flow condition/target");
  }

  void record_access(PcInfo& pi, const Span& s, bool store, Tag data) {
    AccKind k;
    if (s.wide)
      k = AccKind::kWide;
    else if (in_ram(s.lo) && in_ram(s.hi))
      k = AccKind::kRam;
    else if (!in_ram(s.lo) && !in_ram(s.hi) && s.hi < base_)
      k = AccKind::kMmio;
    else
      k = AccKind::kWide;
    if (pi.acc == AccKind::kNone) {
      pi.acc = k;
      pi.acc_lo = s.lo;
      pi.acc_hi = s.hi;
    } else if (pi.acc == k && k != AccKind::kWide) {
      pi.acc_lo = std::min(pi.acc_lo, s.lo);
      pi.acc_hi = std::max(pi.acc_hi, s.hi);
    } else if (pi.acc != k) {
      pi.acc = AccKind::kWide;
    }
    if (store) {
      pi.is_store = true;
      pi.store_ub = lub(pi.store_ub, data);
    }
  }

  void register_function(std::uint32_t entry) {
    if (func_id_.count(entry)) return;
    const int id = static_cast<int>(func_entry_.size());
    func_id_[entry] = id;
    func_entry_.push_back(entry);
  }

  void register_trap_entry(std::uint32_t pc) {
    if (!trap_entries_.insert(pc).second) return;
    register_function(pc);
    leaders_.insert(pc);
    RegState s;  // everything unknown, tainted up to the program's source lub
    for (int i = 1; i < 32; ++i) s[i] = {Interval::top(), program_ub_};
    deliver(pc, s, {func_id_[pc]});
  }

  /// Handles a call edge: flows `s` (rd already set) into the callee and
  /// records the continuation so returns can feed it.
  void call_edge(std::uint32_t target, std::uint32_t cont, RegState s,
                 const std::set<int>& caller_funcs) {
    register_function(target);
    leaders_.insert(target);
    leaders_.insert(cont);
    const int fid = func_id_[target];
    if (continuations_[fid].insert(cont).second) {
      // A fresh continuation: already-seen returns of the callee must
      // re-deliver their states.
      for (std::uint32_t ret : returns_of_[fid]) requeue_all(ret);
    }
    // The continuation belongs to the caller's function(s), not the callee's.
    auto& ci = pcs_[cont];
    bool grew = false;
    for (int f : caller_funcs) grew |= ci.funcs.insert(f).second;
    if (grew) requeue_all(cont);
    deliver(target, std::move(s), {fid});
  }

  void process(std::uint32_t pc, const RegState& in);

  // ---- final passes -------------------------------------------------------
  bool pin_safe_access(const PcInfo& pi) const {
    switch (pi.acc) {
      case AccKind::kNone:
        return true;
      case AccKind::kMmio:
        // Plain blocks run full tag semantics on the bus path (and break out
        // of the block on any non-bottom tag), so MMIO is always pin-safe.
        return true;
      case AccKind::kRam: {
        if (ram_taint(pi.acc_lo, pi.acc_hi) != kBottomTag) return false;
        if (pol_)  // the plain store path skips the integrity-protection check
          for (const auto& p : pol_->store_protection())
            if (pi.is_store && pi.acc_lo < p.base + p.size &&
                pi.acc_hi >= p.base)
              return false;
        return true;
      }
      case AccKind::kWide:
        return false;
    }
    return false;
  }

  AnalysisResult finish();

  // ---- members ------------------------------------------------------------
  const rvasm::Program& prog_;
  const dift::SecurityPolicy* pol_;
  const AnalyzeOptions opts_;
  const dift::Lattice* lat_ = nullptr;

  std::uint64_t base_ = am::kRamBase;
  std::uint64_t ram_size_ = 4u << 20;
  std::vector<std::uint8_t> image_;
  std::vector<Tag> mem_taint_;
  Tag beyond_tag_ = kBottomTag;  ///< RAM beyond the image extent (incl. stack)
  Tag aes_ub_ = kBottomTag;      ///< lub of data stored to the AES ports
  Tag can_tx_ub_ = kBottomTag;   ///< lub of data stored to the CAN TX buffer
  Tag csr_ub_ = kBottomTag;      ///< lub of data written to any CSR
  Tag program_ub_ = kBottomTag;  ///< lub of every taint source the policy adds
  bool poisoned_ = false;
  bool mem_dirty_ = false;

  std::map<std::uint32_t, PcInfo> pcs_;
  std::deque<std::pair<std::uint32_t, int>> wl_;
  std::set<std::pair<std::uint32_t, int>> in_wl_;
  std::set<std::uint32_t> taint_dep_pcs_;  ///< loads/CSR reads: re-run on map growth

  std::set<std::uint32_t> leaders_;
  std::map<std::uint32_t, int> func_id_;
  std::vector<std::uint32_t> func_entry_;
  std::map<int, std::set<std::uint32_t>> continuations_;
  std::map<int, std::set<std::uint32_t>> returns_of_;
  std::set<std::uint32_t> trap_entries_;
  std::set<std::uint32_t> unresolved_;

  bool mtvec_unknown_ = false;
  bool reachable_mret_ = false;
  bool wide_store_ = false;
  bool dma_engaged_ = false;
  bool budget_out_ = false;
  bool image_bad_ = false;
  bool uart_tx_stored_ = false, can_tx_stored_ = false,
       gpio_out_stored_ = false, aes_key_stored_ = false,
       aes_output_read_ = false;
  std::size_t steps_ = 0;

  std::vector<Finding> findings_;
  std::set<std::string> keys_;
  std::set<std::pair<Tag, Tag>> checked_;  ///< (from, to) at evaluated checks
};

void Analyzer::process(std::uint32_t pc, const RegState& in) {
  ++steps_;
  const Insn insn = decode_at(pc);
  const std::uint32_t next = pc + insn.len;
  auto& pi = pcs_[pc];
  const std::set<int> funcs = pi.funcs;  // copy: deliver() may mutate pcs_

  auto val = [&](int r) { return in[static_cast<std::size_t>(r)]; };
  auto fall = [&](RegState s) { deliver(next, std::move(s), funcs); };

  switch (classify(insn)) {
    case InsnClass::kCompute: {
      RegState out = in;
      AbsVal d;
      const AbsVal a = val(insn.rs1), b = val(insn.rs2);
      switch (insn.op) {
        case Op::kLui: d = {Interval::exact(static_cast<std::uint32_t>(insn.imm)), kBottomTag}; break;
        case Op::kAuipc:
          d = {Interval::exact(pc + static_cast<std::uint32_t>(insn.imm)), kBottomTag};
          break;
        case Op::kAddi: d = {iadd_const(a.iv, insn.imm), a.t}; break;
        case Op::kAdd: d = {iadd(a.iv, b.iv), lub(a.t, b.t)}; break;
        case Op::kSub: d = {isub(a.iv, b.iv), lub(a.t, b.t)}; break;
        case Op::kAndi:
          if (a.iv.singleton())
            d = {Interval::exact(a.iv.lo & static_cast<std::uint32_t>(insn.imm)), a.t};
          else if (insn.imm >= 0)
            d = {{0, static_cast<std::uint32_t>(insn.imm)}, a.t};
          else
            d = {Interval::top(), a.t};
          break;
        case Op::kOri:
          d = {a.iv.singleton()
                   ? Interval::exact(a.iv.lo | static_cast<std::uint32_t>(insn.imm))
                   : Interval::top(),
               a.t};
          break;
        case Op::kXori:
          d = {a.iv.singleton()
                   ? Interval::exact(a.iv.lo ^ static_cast<std::uint32_t>(insn.imm))
                   : Interval::top(),
               a.t};
          break;
        case Op::kSlli: {
          const auto sh = static_cast<std::uint32_t>(insn.imm) & 31;
          if (a.iv.hi <= (kU32Max >> sh))
            d = {{a.iv.lo << sh, a.iv.hi << sh}, a.t};
          else
            d = {Interval::top(), a.t};
          break;
        }
        case Op::kSrli: {
          const auto sh = static_cast<std::uint32_t>(insn.imm) & 31;
          d = {{a.iv.lo >> sh, a.iv.hi >> sh}, a.t};
          break;
        }
        case Op::kSrai:
          d = {a.iv.singleton()
                   ? Interval::exact(static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(a.iv.lo) >>
                         (static_cast<std::uint32_t>(insn.imm) & 31)))
                   : Interval::top(),
               a.t};
          break;
        case Op::kSlti: case Op::kSltiu:
          d = {{0, 1}, a.t};
          break;
        case Op::kSlt: case Op::kSltu:
          d = {{0, 1}, lub(a.t, b.t)};
          break;
        case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kSll:
        case Op::kSrl: case Op::kSra: case Op::kMul: case Op::kMulh:
        case Op::kMulhsu: case Op::kMulhu: case Op::kDiv: case Op::kDivu:
        case Op::kRem: case Op::kRemu:
          d = {Interval::top(), lub(a.t, b.t)};
          break;
        default:
          d = {Interval::top(), kBottomTag};
          break;
      }
      if (insn.rd != 0) out[insn.rd] = d;
      fall(std::move(out));
      return;
    }

    case InsnClass::kBranch: {
      const AbsVal a = val(insn.rs1), b = val(insn.rs2);
      const std::uint32_t target = pc + static_cast<std::uint32_t>(insn.imm);
      leaders_.insert(target);
      leaders_.insert(next);
      branch_check(lub(a.t, b.t), pc, "core.branch");
      if (lub(a.t, b.t) != kBottomTag) pi.taint_touch = true;

      // Refinement on equality / unsigned-order guards. An empty refined
      // interval means the edge is infeasible for this state — skip it.
      auto taken = in, not_taken = in;
      bool taken_ok = true, fall_ok = true;
      auto refine = [&](RegState& s, int r, Interval iv) {
        const Interval cur = s[static_cast<std::size_t>(r)].iv;
        const Interval meet{std::max(cur.lo, iv.lo), std::min(cur.hi, iv.hi)};
        if (meet.lo > meet.hi) return false;
        if (r != 0) s[static_cast<std::size_t>(r)].iv = meet;
        return true;
      };
      switch (insn.op) {
        case Op::kBeq:
          // Can't refine inequality on intervals, so fall-through keeps `in`.
          taken_ok = refine(taken, insn.rs1, b.iv) && refine(taken, insn.rs2, a.iv);
          break;
        case Op::kBne:
          fall_ok = refine(not_taken, insn.rs1, b.iv) &&
                    refine(not_taken, insn.rs2, a.iv);
          if (b.iv.singleton() && a.iv.singleton() && a.iv.lo == b.iv.lo)
            taken_ok = false;
          break;
        case Op::kBltu:
          if (b.iv.lo > 0) taken_ok = refine(taken, insn.rs1, {0, b.iv.hi - (b.iv.hi > 0 ? 1 : 0)});
          if (b.iv.hi == 0) taken_ok = false;  // nothing is < 0 unsigned
          fall_ok = refine(not_taken, insn.rs1, {b.iv.lo, kU32Max});
          break;
        case Op::kBgeu:
          taken_ok = refine(taken, insn.rs1, {b.iv.lo, kU32Max});
          if (b.iv.hi > 0)
            fall_ok = refine(not_taken, insn.rs1, {0, b.iv.hi - 1});
          else
            fall_ok = false;  // rs1 < 0 unsigned: infeasible
          break;
        default:  // blt/bge: signed, no refinement
          break;
      }
      if (taken_ok) deliver(target, std::move(taken), funcs);
      if (fall_ok) fall(std::move(not_taken));
      return;
    }

    case InsnClass::kLoad: {
      const AbsVal a = val(insn.rs1);
      exec_mem_addr_check(a.t, pc);
      const std::uint32_t size =
          insn.op == Op::kLw ? 4 : (insn.op == Op::kLh || insn.op == Op::kLhu) ? 2 : 1;
      const Span s = span_of(iadd_const(a.iv, insn.imm), size);
      record_access(pi, s, /*store=*/false, kBottomTag);
      taint_dep_pcs_.insert(pc);
      Tag t;
      if (s.wide)
        t = program_ub_;
      else if (in_ram(s.lo) && in_ram(s.hi))
        t = ram_taint(s.lo, s.hi);
      else if (s.hi < base_)
        t = mmio_read_taint(s);
      else
        t = program_ub_;  // spans RAM and MMIO
      if (t != kBottomTag) pi.taint_touch = true;
      Interval v = Interval::top();
      if (insn.op == Op::kLbu) v = {0, 0xff};
      if (insn.op == Op::kLhu) v = {0, 0xffff};
      RegState out = in;
      if (insn.rd != 0) out[insn.rd] = {v, t};
      fall(std::move(out));
      return;
    }

    case InsnClass::kStore: {
      const AbsVal a = val(insn.rs1), data = val(insn.rs2);
      exec_mem_addr_check(a.t, pc);
      const std::uint32_t size =
          insn.op == Op::kSw ? 4 : insn.op == Op::kSh ? 2 : 1;
      const Span s = span_of(iadd_const(a.iv, insn.imm), size);
      record_access(pi, s, /*store=*/true, data.t);
      if (data.t != kBottomTag) pi.taint_touch = true;
      if (s.wide) {
        wide_store_ = true;
        if (data.t != kBottomTag) {
          poison();
          grow_tag(aes_ub_, data.t);
          grow_tag(can_tx_ub_, data.t);
          finding("imprecise-store", "core.lsu", pc,
                  "store through an unbounded pointer with classified data; "
                  "the memory taint map is saturated",
                  false);
        }
      } else if (in_ram(s.lo) && in_ram(s.hi)) {
        ram_taint_store(s.lo, s.hi, data.t);
        if (pol_)
          for (const auto& p : pol_->store_protection())
            if (overlaps(s, p.base, p.size) && !flows(data.t, p.tag))
              violation("store-protection", pc, data.t, p.tag,
                        "store into an integrity-protected region");
      } else if (s.hi < base_) {
        mmio_store(s, data.t, pc);
      } else {
        wide_store_ = true;
        if (data.t != kBottomTag) poison();
      }
      fall(in);
      return;
    }

    case InsnClass::kTerminator:
      break;  // handled below
  }

  // ---- terminators ---------------------------------------------------------
  switch (insn.op) {
    case Op::kJal: {
      const std::uint32_t target = pc + static_cast<std::uint32_t>(insn.imm);
      RegState out = in;
      if (insn.rd != 0) {
        out[insn.rd] = {Interval::exact(next), kBottomTag};
        call_edge(target, next, std::move(out), funcs);
      } else {
        leaders_.insert(target);
        deliver(target, std::move(out), funcs);
      }
      return;
    }
    case Op::kJalr: {
      const AbsVal a = val(insn.rs1);
      branch_check(a.t, pc, "core.jalr");
      if (a.t != kBottomTag) pi.taint_touch = true;
      RegState out = in;
      if (insn.rd != 0) out[insn.rd] = {Interval::exact(next), kBottomTag};
      if (insn.rd == 0 && insn.rs1 == 1 && insn.imm == 0 && !funcs.empty()) {
        // Structural return: feed every recorded continuation of each
        // containing function (context-insensitive may-edges).
        for (int f : funcs) {
          returns_of_[f].insert(pc);
          for (std::uint32_t cont : continuations_[f])
            deliver(cont, out, {});
        }
        return;
      }
      if (a.iv.singleton()) {
        const std::uint32_t target =
            (a.iv.lo + static_cast<std::uint32_t>(insn.imm)) & ~1u;
        if (insn.rd != 0)
          call_edge(target, next, std::move(out), funcs);
        else {
          leaders_.insert(target);
          deliver(target, std::move(out), funcs);
        }
        return;
      }
      unresolved_.insert(pc);
      return;
    }
    case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
    case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci: {
      const bool imm_form = insn.op == Op::kCsrrwi || insn.op == Op::kCsrrsi ||
                            insn.op == Op::kCsrrci;
      const AbsVal src = imm_form
                             ? AbsVal{Interval::exact(insn.rs1), kBottomTag}
                             : val(insn.rs1);
      const bool writes = insn.op == Op::kCsrrw || insn.op == Op::kCsrrwi ||
                          insn.rs1 != 0;  // csrrs/c with x0/zimm 0 are reads
      if (writes) grow_tag(csr_ub_, src.t);
      if (insn.imm == 0x305 && writes) {  // mtvec
        branch_check(src.t, pc, "core.trap-vector");
        const bool set_like = insn.op == Op::kCsrrs || insn.op == Op::kCsrrc ||
                              insn.op == Op::kCsrrsi || insn.op == Op::kCsrrci;
        if (set_like && !(src.iv.singleton() && src.iv.lo == 0)) {
          mtvec_unknown_ = true;
        } else if (!set_like) {
          if (src.iv.singleton() && (src.iv.lo & 3) == 0)
            register_trap_entry(src.iv.lo);
          else
            mtvec_unknown_ = true;
        }
      }
      taint_dep_pcs_.insert(pc);  // rd taint tracks csr_ub_ growth
      RegState out = in;
      if (insn.rd != 0) out[insn.rd] = {Interval::top(), csr_ub_};
      fall(std::move(out));
      return;
    }
    case Op::kMret:
      reachable_mret_ = true;
      branch_check(csr_ub_, pc, "core.mret");
      return;  // return-to-interrupted-context: no static successor
    case Op::kFence:
    case Op::kWfi:
      fall(in);
      return;
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kIllegal:
      // Synchronous trap: the handler entries are analyzed with a
      // conservative entry state already; the trapping path itself ends.
      return;
    default:
      return;
  }
}

AnalysisResult Analyzer::run() {
  lat_ = pol_ ? &pol_->lattice() : nullptr;
  ram_size_ = opts_.ram_size;

  // Materialize the image (zero-filled to the segment extent).
  std::uint64_t ext = 0;
  for (const auto& seg : prog_.segments) {
    if (seg.base < base_ || seg.base + seg.bytes.size() > base_ + ram_size_) {
      image_bad_ = true;
      finding("analysis-limit", "image", 0,
              "segment outside RAM; analysis skipped", false);
      return finish();
    }
    ext = std::max(ext, seg.base + seg.bytes.size() - base_);
  }
  image_.assign(static_cast<std::size_t>(ext), 0);
  for (const auto& seg : prog_.segments)
    std::copy(seg.bytes.begin(), seg.bytes.end(),
              image_.begin() + static_cast<std::ptrdiff_t>(seg.base - base_));
  mem_taint_.assign(image_.size(), kBottomTag);

  // Taint sources: load-time memory classification + peripheral inputs +
  // declassification targets (a declassifying peripheral *introduces* its
  // target class into the system).
  if (pol_) {
    for (const auto& mc : pol_->memory_classification()) {
      program_ub_ = lub(program_ub_, mc.tag);
      if (mc.tag == kBottomTag) continue;
      const std::uint64_t lo = std::max(mc.base, base_);
      const std::uint64_t hi = mc.base + mc.size;  // exclusive
      for (std::uint64_t a = lo; a < hi && a - base_ < image_.size(); ++a)
        mem_taint_[static_cast<std::size_t>(a - base_)] =
            lub(mem_taint_[static_cast<std::size_t>(a - base_)], mc.tag);
      if (hi > base_ + image_.size() && mc.base < base_ + ram_size_)
        beyond_tag_ = lub(beyond_tag_, mc.tag);
    }
    for (const auto& [dev, tag] : pol_->input_classes())
      program_ub_ = lub(program_ub_, tag);
    for (const auto& [dev, tag] : pol_->declass_outputs())
      program_ub_ = lub(program_ub_, tag);
  }

  if (!in_ram(prog_.entry)) {
    image_bad_ = true;
    finding("analysis-limit", "image", prog_.entry,
            "entry point outside RAM", false);
    return finish();
  }

  // Boot state matches rv::Core::reset(): every register zero, untainted.
  register_function(static_cast<std::uint32_t>(prog_.entry));
  leaders_.insert(static_cast<std::uint32_t>(prog_.entry));
  RegState boot;
  for (int i = 0; i < 32; ++i) boot[i] = {Interval::exact(0), kBottomTag};
  deliver(static_cast<std::uint32_t>(prog_.entry), boot,
          {func_id_[static_cast<std::uint32_t>(prog_.entry)]});

  // Fixpoint: drain the worklist; when the global taint state grew, re-run
  // every taint-dependent instruction (loads, CSR reads) and drain again.
  for (;;) {
    while (!wl_.empty()) {
      if (steps_ > opts_.max_steps) {
        budget_out_ = true;
        finding("analysis-limit", "budget", 0,
                "abstract-transfer budget exhausted; result incomplete", false);
        wl_.clear();
        in_wl_.clear();
        break;
      }
      const auto [pc, idx] = wl_.front();
      wl_.pop_front();
      in_wl_.erase({pc, idx});
      const auto it = pcs_.find(pc);
      if (it == pcs_.end()) continue;
      if (idx >= 0 && idx < static_cast<int>(it->second.states.size()))
        process(pc, it->second.states[static_cast<std::size_t>(idx)].st);
      else if (idx == -1 && it->second.over)
        process(pc, *it->second.over);
    }
    if (!mem_dirty_ || budget_out_) break;
    mem_dirty_ = false;
    for (std::uint32_t pc : taint_dep_pcs_) requeue_all(pc);
  }

  return finish();
}

AnalysisResult Analyzer::finish() {
  AnalysisResult r;
  r.entry = prog_.entry;
  r.trap_entries.assign(trap_entries_.begin(), trap_entries_.end());
  for (std::uint32_t f : func_entry_) r.call_entries.push_back(f);
  r.unresolved_indirects.assign(unresolved_.begin(), unresolved_.end());
  r.reachable_instructions = pcs_.size();

  // Which image bytes hold reachable instructions (for SMC + coverage).
  std::vector<std::uint8_t> code(image_.size(), 0);
  for (const auto& [pc, pi] : pcs_) {
    const Insn insn = decode_at(pc);
    for (std::uint32_t i = 0; i < insn.len; ++i) {
      const std::uint64_t off = pc - base_ + i;
      if (off < code.size()) code[static_cast<std::size_t>(off)] = 1;
    }
  }

  // SMC: reachable stores whose (hull) range intersects reachable code.
  for (const auto& [pc, pi] : pcs_) {
    if (!pi.is_store || pi.acc != AccKind::kRam) continue;
    bool hits_code = false;
    for (std::uint64_t a = pi.acc_lo; a <= pi.acc_hi && !hits_code; ++a) {
      const std::uint64_t off = a - base_;
      hits_code = off < code.size() && code[static_cast<std::size_t>(off)];
    }
    if (hits_code) {
      r.smc_stores.push_back(pc);
      finding("smc-store", "core.lsu", pc,
              "store may overwrite reachable code (self-modifying or "
              "code-injection capable)",
              false);
    }
  }

  // Linear sweep over the text region (coverage comparison only).
  if (!prog_.segments.empty()) {
    const std::uint64_t text_base = prog_.segments.front().base;
    const std::uint64_t text_end = text_base + prog_.text_bytes;
    for (std::uint64_t pc = text_base; pc + 2 <= text_end;) {
      const Insn insn = rv::decode_any(fetch_u32(pc - base_));
      if (insn.op != Op::kIllegal) {
        ++r.linear_sweep_instructions;
        pc += insn.len;
      } else {
        pc += 2;
      }
    }
    for (std::uint64_t a = text_base; a < text_end; ++a) {
      const std::uint64_t off = a - base_;
      if (off < code.size() && !code[static_cast<std::size_t>(off)])
        ++r.unreachable_bytes;
    }
  }

  r.complete = !image_bad_ && !budget_out_ && !mtvec_unknown_ &&
               unresolved_.empty();
  r.taint_free = program_ub_ == kBottomTag;

  for (std::uint32_t pc : unresolved_)
    finding("unresolved-indirect", "core.jalr", pc,
            "indirect jump target could not be resolved; CFG incomplete",
            false);
  if (mtvec_unknown_)
    finding("analysis-limit", "core.trap-vector", 0,
            "a trap-vector write could not be resolved; CFG incomplete",
            false);

  // Fetch clearance: reachable code bytes that may be classified.
  if (pol_) {
    if (auto c = pol_->execution_clearance().fetch) {
      Tag code_tag = kBottomTag;
      for (std::size_t i = 0; i < code.size(); ++i)
        if (code[i]) code_tag = lub(code_tag, poisoned_ ? program_ub_ : mem_taint_[i]);
      if (!flows(code_tag, *c))
        violation("core.fetch", 0, code_tag, *c, "instruction fetch");
    }
  }

  // ---- policy lint ---------------------------------------------------------
  if (pol_ && lat_) {
    for (const auto& [a, b] : lat_->flow_edges()) {
      bool exercised = false;
      for (const auto& [f, t] : checked_)
        if (lat_->allowed_flow(f, a) && lat_->allowed_flow(b, t)) {
          exercised = true;
          break;
        }
      if (!exercised)
        finding("dead-flow-rule",
                "'" + lat_->name_of(a) + "' -> '" + lat_->name_of(b) + "'", 0,
                "flow rule is never exercised by any statically reachable "
                "check",
                false);
    }
    for (const auto& [dev, tag] : pol_->declass_outputs())
      if (dev == "aes0" && !aes_output_read_)
        finding("unused-declass-grant", dev, 0,
                "declassified output of '" + dev +
                    "' is never read on any reachable path",
                false);
    for (const auto& [dev, tag] : pol_->output_clearances()) {
      const bool reached = dev == "uart0.tx"    ? uart_tx_stored_
                           : dev == "can0.tx"   ? can_tx_stored_
                           : dev == "gpio0.out" ? gpio_out_stored_
                                                : true;  // unknown: assume used
      if (!reached)
        finding("unreachable-clearance-site", dev, 0,
                "output clearance on '" + dev +
                    "' guards an interface no reachable store writes",
                false);
    }
    for (const auto& [dev, tag] : pol_->unit_clearances())
      if (dev == "aes0" && !aes_key_stored_)
        finding("unreachable-clearance-site", dev, 0,
                "unit clearance on '" + dev +
                    "' guards a port no reachable store writes",
                false);
    for (const auto& p : pol_->store_protection()) {
      bool stored = false;
      for (const auto& [pc, pi] : pcs_) {
        if (!pi.is_store || pi.acc == AccKind::kNone) continue;
        if (pi.acc == AccKind::kWide ||
            (pi.acc_lo < p.base + p.size && pi.acc_hi >= p.base)) {
          stored = true;
          break;
        }
      }
      if (!stored) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "0x%llx",
                      static_cast<unsigned long long>(p.base));
        finding("unreachable-clearance-site",
                std::string("store-protection@") + buf, 0,
                "integrity-protected region is never stored to on any "
                "reachable path",
                false);
      }
    }
  }

  // ---- pin computation -----------------------------------------------------
  const bool escape_free = r.complete && !reachable_mret_ && !wide_store_ &&
                           !poisoned_ && !dma_engaged_ && r.smc_stores.empty();
  if (r.taint_free && !image_bad_ && !budget_out_) {
    // Tier A: the policy admits no non-bottom tag anywhere, so skipping the
    // plain-state re-proof is sound at every boundary regardless of CFG
    // completeness (unanalyzed boundaries simply stay unpinned).
    r.pin_mode = "taint-free";
    for (const auto& [pc, pi] : pcs_) r.pinned_pcs.push_back(pc);
  } else if (escape_free) {
    // Tier B: per-window proofs. A boundary is pinnable when every
    // instruction from it to the next block terminator touches only
    // never-tainted RAM or pure MMIO (full semantics on the bus path), and
    // the code bytes themselves can never be tainted. The runtime guard
    // (reg_tag_or_ == bottom) covers every register-sourced obligation.
    r.pin_mode = "windowed";
    // safe_from[off]: the run from half-word offset `off` to the terminator
    // meets all memory obligations. Computed backwards; offsets beyond the
    // extent decode zeros -> illegal -> terminator, so the recursion bases
    // out at the extent edge.
    const std::size_t hw = image_.size() / 2;
    std::vector<std::uint8_t> safe_from(hw + 1, 1);
    for (std::size_t i = hw; i-- > 0;) {
      const std::uint64_t off = i * 2;
      const Insn insn = rv::decode_any(fetch_u32(off));
      bool ok = true;
      // Code bytes of this instruction must be untaintable.
      if (poisoned_ || ram_taint(base_ + off, base_ + off + insn.len - 1) !=
                           kBottomTag)
        ok = false;
      const InsnClass c = classify(insn);
      if (c == InsnClass::kLoad || c == InsnClass::kStore) {
        const auto it = pcs_.find(static_cast<std::uint32_t>(base_ + off));
        ok = ok && it != pcs_.end() && pin_safe_access(it->second);
      }
      if (c == InsnClass::kTerminator)
        safe_from[i] = ok;
      else {
        const std::size_t nxt = i + insn.len / 2;
        safe_from[i] = ok && (nxt <= hw ? safe_from[nxt] : 1);
      }
    }
    for (const auto& [pc, pi] : pcs_) {
      const std::uint64_t off = pc - base_;
      if (off / 2 < safe_from.size() && safe_from[off / 2])
        r.pinned_pcs.push_back(pc);
    }
    if (r.pinned_pcs.empty()) r.pin_mode = "none";
  }
  std::sort(r.pinned_pcs.begin(), r.pinned_pcs.end());

  // ---- basic blocks --------------------------------------------------------
  const std::set<std::uint64_t> pin_set(r.pinned_pcs.begin(),
                                        r.pinned_pcs.end());
  std::optional<BlockSummary> cur;
  std::uint32_t expected_next = 0;
  for (const auto& [pc, pi] : pcs_) {
    const Insn insn = decode_at(pc);
    const bool leader = leaders_.count(pc) != 0;
    if (cur && (pc != expected_next || leader)) {
      r.blocks.push_back(*cur);
      cur.reset();
    }
    if (!cur) {
      cur = BlockSummary{pc, pc, false, pin_set.count(pc) != 0};
    }
    cur->end = pc + insn.len;
    cur->touches_taint |= pi.taint_touch;
    expected_next = static_cast<std::uint32_t>(pc) + insn.len;
    if (classify(insn) == InsnClass::kTerminator ||
        classify(insn) == InsnClass::kBranch) {
      r.blocks.push_back(*cur);
      cur.reset();
    }
  }
  if (cur) r.blocks.push_back(*cur);

  r.findings = findings_;
  for (const auto& f : r.findings)
    if (f.reachable) ++r.reachable_violations;
  return r;
}

}  // namespace

AnalysisResult analyze(const rvasm::Program& prog,
                       const dift::SecurityPolicy* policy,
                       const AnalyzeOptions& opts) {
  return Analyzer(prog, policy, opts).run();
}

}  // namespace vpdift::sa
