#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "sa/analyze.hpp"

namespace vpdift::sa {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, v);
  return buf;
}

}  // namespace

std::uint64_t AnalysisResult::pin_hash() const {
  if (pinned_pcs.empty()) return 0;
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (std::uint64_t pc : pinned_pcs) mix(pc);
  return h;
}

std::string to_json(const AnalysisResult& r) {
  std::ostringstream os;
  std::size_t tainted_blocks = 0, pinned_blocks = 0;
  for (const auto& b : r.blocks) {
    if (b.touches_taint) ++tainted_blocks;
    if (b.pinned) ++pinned_blocks;
  }
  os << "{";
  os << "\"entry\":\"" << hex(r.entry) << "\"";
  os << ",\"reachable_instructions\":" << r.reachable_instructions;
  os << ",\"linear_sweep_instructions\":" << r.linear_sweep_instructions;
  os << ",\"unreachable_bytes\":" << r.unreachable_bytes;
  os << ",\"blocks\":" << r.blocks.size();
  os << ",\"tainted_blocks\":" << tainted_blocks;
  os << ",\"pinned_blocks\":" << pinned_blocks;
  os << ",\"trap_entries\":" << r.trap_entries.size();
  os << ",\"call_entries\":" << r.call_entries.size();
  os << ",\"unresolved_indirects\":" << r.unresolved_indirects.size();
  os << ",\"smc_stores\":" << r.smc_stores.size();
  os << ",\"complete\":" << (r.complete ? "true" : "false");
  os << ",\"taint_free\":" << (r.taint_free ? "true" : "false");
  os << ",\"reachable_violations\":" << r.reachable_violations;
  os << ",\"pin_mode\":\"" << r.pin_mode << "\"";
  os << ",\"pinned_pcs\":" << r.pinned_pcs.size();
  os << ",\"pin_hash\":\"" << hex(r.pin_hash()) << "\"";
  os << ",\"findings\":[";
  bool first = true;
  for (const auto& f : r.findings) {
    if (!first) os << ",";
    first = false;
    os << "{\"kind\":\"" << json_escape(f.kind) << "\""
       << ",\"where\":\"" << json_escape(f.where) << "\""
       << ",\"pc\":\"" << hex(f.pc) << "\""
       << ",\"reachable\":" << (f.reachable ? "true" : "false")
       << ",\"detail\":\"" << json_escape(f.detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string to_text(const AnalysisResult& r) {
  std::ostringstream os;
  std::size_t tainted_blocks = 0, pinned_blocks = 0;
  for (const auto& b : r.blocks) {
    if (b.touches_taint) ++tainted_blocks;
    if (b.pinned) ++pinned_blocks;
  }
  os << "static analysis report\n"
     << "  entry                : " << hex(r.entry) << "\n"
     << "  reachable insns      : " << r.reachable_instructions
     << " (linear sweep " << r.linear_sweep_instructions << ", "
     << r.unreachable_bytes << " unreachable text bytes)\n"
     << "  basic blocks         : " << r.blocks.size() << " (" << tainted_blocks
     << " may touch taint, " << pinned_blocks << " pinned)\n"
     << "  functions / traps    : " << r.call_entries.size() << " / "
     << r.trap_entries.size() << "\n"
     << "  cfg complete         : " << (r.complete ? "yes" : "no")
     << "  taint-free policy: " << (r.taint_free ? "yes" : "no") << "\n"
     << "  pin mode             : " << r.pin_mode << " (" << r.pinned_pcs.size()
     << " boundaries, hash " << hex(r.pin_hash()) << ")\n"
     << "  reachable violations : " << r.reachable_violations << "\n";
  if (r.findings.empty()) {
    os << "  findings             : none\n";
  } else {
    os << "  findings (" << r.findings.size() << "):\n";
    for (const auto& f : r.findings) {
      os << "    [" << f.kind << "] " << f.where;
      if (f.pc != 0) os << " @ " << hex(f.pc);
      os << "\n      " << f.detail << "\n";
    }
  }
  return os.str();
}

}  // namespace vpdift::sa
