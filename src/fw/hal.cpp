#include "fw/hal.hpp"

namespace vpdift::fw {

using namespace rvasm::reg;

void emit_crt0(rvasm::Assembler& a, std::uint32_t stack_top) {
  a.label("_start");
  a.li(sp, stack_top);
  a.la(t0, "_default_trap");
  a.csrrw(zero, 0x305 /*mtvec*/, t0);
  a.call("main");
  a.j("exit");
}

void emit_stdlib(rvasm::Assembler& a) {
  // uart_putc: transmit a0's low byte.
  a.label("uart_putc");
  a.li(t0, mmio::kUartTx);
  a.sb(a0, t0, 0);
  a.ret();

  // uart_puts: transmit the NUL-terminated string at a0. Clobbers a0,t0-t2.
  a.label("uart_puts");
  a.li(t0, mmio::kUartTx);
  a.label("uart_puts.loop");
  a.lbu(t1, a0, 0);
  a.beqz(t1, "uart_puts.done");
  a.sb(t1, t0, 0);
  a.addi(a0, a0, 1);
  a.j("uart_puts.loop");
  a.label("uart_puts.done");
  a.ret();

  // uart_getc: block until a byte is available, return it in a0.
  a.label("uart_getc");
  a.li(t0, mmio::kUartStatus);
  a.label("uart_getc.wait");
  a.lw(t1, t0, 0);
  a.andi(t1, t1, 2);
  a.beqz(t1, "uart_getc.wait");
  a.li(t0, mmio::kUartRx);
  a.lw(a0, t0, 0);
  a.andi(a0, a0, 0xff);
  a.ret();

  // uart_read_n: read a1 bytes into the buffer at a0 (blocking).
  // Clobbers a0,a1,t0-t2.
  a.label("uart_read_n");
  a.li(t0, mmio::kUartStatus);
  a.li(t2, mmio::kUartRx);
  a.label("uart_read_n.loop");
  a.beqz(a1, "uart_read_n.done");
  a.label("uart_read_n.wait");
  a.lw(t1, t0, 0);
  a.andi(t1, t1, 2);
  a.beqz(t1, "uart_read_n.wait");
  a.lw(t1, t2, 0);
  a.sb(t1, a0, 0);
  a.addi(a0, a0, 1);
  a.addi(a1, a1, -1);
  a.j("uart_read_n.loop");
  a.label("uart_read_n.done");
  a.ret();

  // print_hex32: print a0 as 8 hex digits. Clobbers a0,t0-t2.
  a.label("print_hex32");
  a.li(t2, 8);
  a.li(t0, mmio::kUartTx);
  a.label("print_hex32.loop");
  a.srli(t1, a0, 28);
  a.slli(a0, a0, 4);
  a.addi(t1, t1, -10);
  a.bltz(t1, "print_hex32.digit");
  a.addi(t1, t1, 'a');
  a.j("print_hex32.put");
  a.label("print_hex32.digit");
  a.addi(t1, t1, 10 + '0');
  a.label("print_hex32.put");
  a.sb(t1, t0, 0);
  a.addi(t2, t2, -1);
  a.bnez(t2, "print_hex32.loop");
  a.ret();

  // exit: write a0 to the EXIT register; the simulation stops.
  a.label("exit");
  a.li(t0, mmio::kSysExit);
  a.sw(a0, t0, 0);
  a.label("exit.hang");
  a.j("exit.hang");

  // _default_trap: unexpected trap — mark and die.
  a.align(4);
  a.label("_default_trap");
  a.li(t0, mmio::kSysMark);
  a.li(t1, 'T');
  a.sb(t1, t0, 0);
  a.li(a0, 0xff);
  a.j("exit");
}

}  // namespace vpdift::fw
