// Engine-ECU firmware: the other side of the immobilizer protocol, as a real
// binary for a second ISS node (the behavioural soc::EngineEcu's firmware
// twin, used by the dual-ECU co-simulation).
//
// Protocol loop, `challenges` times:
//   1. generate an 8-byte pseudo-random challenge,
//   2. transmit it on CAN (id 0x100),
//   3. wait for the immobilizer's response (id 0x101),
//   4. encrypt the challenge under its own PIN copy with the local AES
//      peripheral, compare with the response,
//   5. count mismatches.
// Exits with the number of failed authentications (0 = success).
// Symbol "pin" marks the engine's PIN copy for classification.
#pragma once

#include <cstdint>

#include "rvasm/program.hpp"
#include "soc/aes128.hpp"

namespace vpdift::fw {

rvasm::Program make_engine_ecu_fw(const soc::AesKey& pin,
                                  std::uint32_t challenges);

}  // namespace vpdift::fw
