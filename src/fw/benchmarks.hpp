// Firmware benchmark programs (the workloads of Table II).
//
// Every program is self-checking: main returns 0 (exit code 0) when the
// computed result matches the expectation, a nonzero error code otherwise.
// Host-side reference implementations used to derive expectations live in
// host_ref.hpp.
#pragma once

#include <cstdint>

#include "rvasm/program.hpp"

namespace vpdift::fw {

/// Counts primes below `limit` by trial division; exits 0 iff the count
/// equals the host-computed expectation.
rvasm::Program make_primes(std::uint32_t limit);

/// Fills an `n`-element word array from an LCG, sorts it with an iterative
/// in-place quicksort, then verifies order and checksum.
rvasm::Program make_qsort(std::uint32_t n, std::uint32_t seed);

/// Dhrystone-style synthetic mix: function calls, string copy/compare,
/// branches and integer arithmetic; exits 0 iff the final checksum matches
/// the host mirror.
rvasm::Program make_dhrystone(std::uint32_t iterations);

/// SHA-256 over an LCG-filled message, iterated (`rounds` re-hashes of the
/// digest); exits 0 iff the first digest word matches the host mirror.
rvasm::Program make_sha256(std::uint32_t msg_len, std::uint32_t rounds);

/// SHA-512 over an LCG-filled message, iterated — the paper's actual Table II
/// workload. All 64-bit arithmetic is synthesised as RV32 register-pair
/// operations (add-with-carry, 64-bit rotates) by the emitter.
rvasm::Program make_sha512(std::uint32_t msg_len, std::uint32_t rounds);

/// Interrupt-driven sensor-to-UART copy: waits for `frames` sensor frames
/// (PLIC external interrupt), copies each 64-byte frame to the UART.
rvasm::Program make_simple_sensor(std::uint32_t frames);

/// Two preemptively scheduled tasks (timer-interrupt context switching, the
/// FreeRTOS stand-in); exits 0 after `target_switches` context switches iff
/// both tasks made progress.
rvasm::Program make_rtos_tasks(std::uint32_t target_switches,
                               std::uint32_t slice_us = 50);

/// Extra workload (beyond the paper's set): chained bitwise CRC-32.
rvasm::Program make_crc32(std::uint32_t len, std::uint32_t iterations);

/// Extra workload (beyond the paper's set): n x n integer matrix multiply.
rvasm::Program make_matmul(std::uint32_t n);

/// Adversarial workload: a tight counting loop that never exits and never
/// touches a peripheral. It retires instructions forever, so only an
/// external budget ends it — the service resilience layer's reference
/// firmware for wall-budget clamping and hang escalation.
rvasm::Program make_spin();

}  // namespace vpdift::fw
