#include "fw/immobilizer.hpp"

#include "fw/hal.hpp"
#include "rvasm/assembler.hpp"
#include "soc/addrmap.hpp"
#include "soc/can.hpp"

namespace vpdift::fw {

using namespace rvasm::reg;
using rvasm::Assembler;

rvasm::Program make_immobilizer(ImmoVariant variant, const soc::AesKey& pin,
                                std::uint32_t challenges_to_serve) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  a.addi(sp, sp, -16);
  a.sw(ra, sp, 12);

  // Injected attack scenarios run once, up front.
  switch (variant) {
    case ImmoVariant::kAttackDirectLeak:
      // Scenario 1a: write a PIN byte directly to the UART.
      a.la(t0, "pin");
      a.lbu(t1, t0, 0);
      a.li(t2, mmio::kUartTx);
      a.sb(t1, t2, 0);
      break;
    case ImmoVariant::kAttackIndirectLeak:
      // Scenario 1b: copy the PIN through an intermediate buffer, then send
      // the buffer on the CAN bus.
      a.la(t0, "pin");
      a.la(t1, "scratch_buf");
      a.li(t2, 8);
      a.label("il_copy");
      a.lbu(t3, t0, 0);
      a.sb(t3, t1, 0);
      a.addi(t0, t0, 1);
      a.addi(t1, t1, 1);
      a.addi(t2, t2, -1);
      a.bnez(t2, "il_copy");
      a.la(t0, "scratch_buf");
      a.li(t1, mmio::kCanTxData);
      a.li(t2, 8);
      a.label("il_copy2");
      a.lbu(t3, t0, 0);
      a.sb(t3, t1, 0);
      a.addi(t0, t0, 1);
      a.addi(t1, t1, 1);
      a.addi(t2, t2, -1);
      a.bnez(t2, "il_copy2");
      a.li(t0, mmio::kCanTxId);
      a.li(t1, 0x2ff);
      a.sw(t1, t0, 0);
      a.li(t0, mmio::kCanTxDlc);
      a.li(t1, 8);
      a.sw(t1, t0, 0);
      a.li(t0, mmio::kCanTxCtrl);
      a.li(t1, 1);
      a.sw(t1, t0, 0);  // transmit -> output clearance check
      break;
    case ImmoVariant::kAttackOverflowLeak:
      // Scenario 1c: out-of-bounds read — dump 40 bytes "of app_data" (the
      // buffer is 32 bytes; bytes 32..39 are the PIN) to the UART.
      a.la(t0, "app_data");
      a.li(t2, 40);
      a.li(t3, mmio::kUartTx);
      a.label("ofl_copy");
      a.lbu(t1, t0, 0);
      a.sb(t1, t3, 0);
      a.addi(t0, t0, 1);
      a.addi(t2, t2, -1);
      a.bnez(t2, "ofl_copy");
      break;
    case ImmoVariant::kAttackBranchLeak:
      // Scenario 2: branch on a PIN bit, then emit a public byte.
      a.la(t0, "pin");
      a.lbu(t1, t0, 0);
      a.andi(t1, t1, 1);
      a.li(t2, mmio::kUartTx);
      a.beqz(t1, "bl_zero");  // branch-clearance check fires here
      a.li(t3, 'B');
      a.sb(t3, t2, 0);
      a.j("bl_done");
      a.label("bl_zero");
      a.li(t3, 'A');
      a.sb(t3, t2, 0);
      a.label("bl_done");
      break;
    case ImmoVariant::kAttackOverwriteExternal:
      // Scenario 3: wait for external (CAN) data and store a byte of it over
      // the PIN -> store-clearance violation.
      a.label("owx_wait");
      a.li(t0, mmio::kCanRxStatus);
      a.lw(t1, t0, 0);
      a.beqz(t1, "owx_wait");
      a.li(t0, mmio::kCanRxData);
      a.lbu(t1, t0, 0);
      a.la(t0, "pin");
      a.sb(t1, t0, 2);
      break;
    case ImmoVariant::kAttackOverwriteTrusted:
      // Scenario 4 (entropy reduction): copy PIN byte 0 over bytes 1..15.
      // Allowed under the plain IFP-3 policy; detected by the per-byte one.
      a.la(t0, "pin");
      a.lbu(t1, t0, 0);
      a.li(t2, 15);
      a.label("owt_copy");
      a.sb(t1, t0, 1);
      a.addi(t0, t0, 1);
      a.addi(t2, t2, -1);
      a.bnez(t2, "owt_copy");
      break;
    default:
      break;
  }

  // Main service loop: s0 = challenges served, s1 = target.
  a.li(s0, 0);
  a.li(s1, challenges_to_serve);
  a.label("serve");
  // --- CAN: challenge pending? ---
  a.li(t0, mmio::kCanRxStatus);
  a.lw(t1, t0, 0);
  a.beqz(t1, "check_uart");
  a.li(t0, mmio::kCanRxId);
  a.lw(t1, t0, 0);
  a.li(t2, soc::EngineEcu::kChallengeId);
  a.beq(t1, t2, "handle_challenge");
  a.li(t0, mmio::kCanRxPop);  // unknown frame: drop
  a.li(t1, 1);
  a.sw(t1, t0, 0);
  a.j("check_uart");
  a.label("handle_challenge");
  // Key <- PIN.
  a.la(t0, "pin");
  a.li(t1, mmio::kAesKey);
  a.li(t2, 16);
  a.label("key_copy");
  a.lbu(t3, t0, 0);
  a.sb(t3, t1, 0);
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t2, t2, -1);
  a.bnez(t2, "key_copy");
  // Input <- challenge (8 bytes) + zero padding (8 bytes).
  a.li(t0, mmio::kCanRxData);
  a.li(t1, mmio::kAesInput);
  a.li(t2, 8);
  a.label("chal_copy");
  a.lbu(t3, t0, 0);
  a.sb(t3, t1, 0);
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t2, t2, -1);
  a.bnez(t2, "chal_copy");
  a.li(t2, 8);
  a.label("pad_zero");
  a.sb(zero, t1, 0);
  a.addi(t1, t1, 1);
  a.addi(t2, t2, -1);
  a.bnez(t2, "pad_zero");
  a.li(t0, mmio::kCanRxPop);
  a.li(t1, 1);
  a.sw(t1, t0, 0);
  // Encrypt.
  a.li(t0, mmio::kAesCtrl);
  a.li(t1, 1);
  a.sw(t1, t0, 0);
  a.label("aes_wait");
  a.li(t0, mmio::kAesStatus);
  a.lw(t1, t0, 0);
  a.beqz(t1, "aes_wait");
  // Response <- first 8 ciphertext bytes.
  a.li(t0, mmio::kAesOutput);
  a.li(t1, mmio::kCanTxData);
  a.li(t2, 8);
  a.label("resp_copy");
  a.lbu(t3, t0, 0);
  a.sb(t3, t1, 0);
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t2, t2, -1);
  a.bnez(t2, "resp_copy");
  a.li(t0, mmio::kCanTxId);
  a.li(t1, soc::EngineEcu::kResponseId);
  a.sw(t1, t0, 0);
  a.li(t0, mmio::kCanTxDlc);
  a.li(t1, 8);
  a.sw(t1, t0, 0);
  a.li(t0, mmio::kCanTxCtrl);
  a.li(t1, 1);
  a.sw(t1, t0, 0);
  a.addi(s0, s0, 1);
  // --- UART: debug command pending? ---
  a.label("check_uart");
  a.li(t0, mmio::kUartStatus);
  a.lw(t1, t0, 0);
  a.andi(t1, t1, 2);
  a.beqz(t1, "check_done");
  a.li(t0, mmio::kUartRx);
  a.lw(t1, t0, 0);
  a.andi(t1, t1, 0xff);
  a.li(t2, 'd');
  a.bne(t1, t2, "check_done");
  a.call("debug_dump");
  a.label("check_done");
  a.bltu(s0, s1, "serve");
  a.li(a0, 0);
  a.lw(ra, sp, 12);
  a.addi(sp, sp, 16);
  a.ret();

  // debug_dump: print [dump_lo, dump_hi) on the UART.
  // The vulnerable variant's range covers the PIN; the fixed one stops
  // before it (the paper's SW fix).
  a.label("debug_dump");
  a.la(t0, "app_data");
  if (variant == ImmoVariant::kFixedDump) {
    a.la(t1, "pin");  // stop before the secret
  } else {
    a.la(t1, "data_end");  // full dump, PIN included
  }
  a.li(t2, mmio::kUartTx);
  a.label("dump_loop");
  a.bgeu(t0, t1, "dump_done");
  a.lbu(t3, t0, 0);
  a.sb(t3, t2, 0);
  a.addi(t0, t0, 1);
  a.j("dump_loop");
  a.label("dump_done");
  a.ret();

  emit_stdlib(a);

  a.align(8);
  a.label("app_data");
  for (int i = 0; i < 32; ++i) a.byte(static_cast<std::uint8_t>('a' + i % 26));
  a.label("pin");
  a.bytes(pin.data(), pin.size());
  a.label("scratch_buf");
  a.zero_fill(16);
  a.label("data_end");
  a.entry("_start");
  return a.assemble();
}

}  // namespace vpdift::fw
