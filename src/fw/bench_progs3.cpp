// Benchmark firmware, part 3: interrupt-driven workloads (simple-sensor and
// the preemptive two-task scheduler standing in for FreeRTOS).
#include "fw/benchmarks.hpp"
#include "fw/hal.hpp"
#include "rvasm/assembler.hpp"
#include "soc/addrmap.hpp"

namespace vpdift::fw {

using namespace rvasm::reg;
using rvasm::Assembler;

namespace {
constexpr std::uint32_t kCsrMstatus = 0x300, kCsrMie = 0x304, kCsrMtvec = 0x305,
                        kCsrMscratch = 0x340, kCsrMepc = 0x341;
}  // namespace

rvasm::Program make_simple_sensor(std::uint32_t frames) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  // Trap vector -> sensor handler.
  a.la(t0, "sensor_trap");
  a.csrrw(zero, kCsrMtvec, t0);
  // PLIC: enable the sensor source.
  a.li(t0, mmio::kPlicEnable);
  a.li(t1, 1u << soc::addrmap::kIrqSensor);
  a.sw(t1, t0, 0);
  // mie.MEIE, mstatus.MIE.
  a.li(t0, 0x800);
  a.csrrs(zero, kCsrMie, t0);
  a.csrrsi(zero, kCsrMstatus, 8);
  // Sleep until the handler reports completion.
  a.label("sensor_idle");
  a.wfi();
  a.la(t0, "done_flag");
  a.lw(t1, t0, 0);
  a.beqz(t1, "sensor_idle");
  a.li(a0, 0);
  a.ret();

  // External-interrupt handler: claim, copy one frame to the UART, count.
  a.align(4);
  a.label("sensor_trap");
  a.addi(sp, sp, -32);
  a.sw(t0, sp, 0);
  a.sw(t1, sp, 4);
  a.sw(t2, sp, 8);
  a.sw(t3, sp, 12);
  a.sw(t4, sp, 16);
  a.sw(t5, sp, 20);
  a.li(t0, mmio::kPlicClaim);
  a.lw(t1, t0, 0);
  a.li(t2, soc::addrmap::kIrqSensor);
  a.bne(t1, t2, "sensor_trap.out");
  // Copy the 64-byte frame to the UART.
  a.li(t2, mmio::kSensorFrame);
  a.li(t3, mmio::kUartTx);
  a.li(t4, 64);
  a.label("sensor_trap.copy");
  a.lbu(t5, t2, 0);
  a.sb(t5, t3, 0);
  a.addi(t2, t2, 1);
  a.addi(t4, t4, -1);
  a.bnez(t4, "sensor_trap.copy");
  // frame_count++; done when the target is reached.
  a.la(t2, "frame_count");
  a.lw(t3, t2, 0);
  a.addi(t3, t3, 1);
  a.sw(t3, t2, 0);
  a.li(t4, frames);
  a.bltu(t3, t4, "sensor_trap.out");
  a.la(t2, "done_flag");
  a.li(t3, 1);
  a.sw(t3, t2, 0);
  a.label("sensor_trap.out");
  a.lw(t0, sp, 0);
  a.lw(t1, sp, 4);
  a.lw(t2, sp, 8);
  a.lw(t3, sp, 12);
  a.lw(t4, sp, 16);
  a.lw(t5, sp, 20);
  a.addi(sp, sp, 32);
  a.mret();

  emit_stdlib(a);

  a.align(4);
  a.label("frame_count");
  a.word(0);
  a.label("done_flag");
  a.word(0);
  a.entry("_start");
  return a.assemble();
}

rvasm::Program make_rtos_tasks(std::uint32_t target_switches,
                               std::uint32_t slice_us) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  // Context layout: x1..x31 at word offsets 0..30, pc at offset 31 (byte 124).
  a.label("main");
  // tcb2 bootstrap: entry pc + its own stack.
  a.la(t0, "tcb2");
  a.la(t1, "task2_entry");
  a.sw(t1, t0, 124);
  a.la(t1, "task2_stack_top");
  a.sw(t1, t0, 4);  // x2 (sp) slot
  // current task = task1; mscratch -> tcb1.
  a.la(t1, "tcb1");
  a.csrrw(zero, kCsrMscratch, t1);
  // Trap vector.
  a.la(t0, "rtos_trap");
  a.csrrw(zero, kCsrMtvec, t0);
  // First time slice.
  a.li(t0, mmio::kClintMtime);
  a.lw(t1, t0, 0);
  a.li(t2, slice_us);
  a.add(t1, t1, t2);
  a.li(t0, mmio::kClintMtimecmp);
  a.sw(t1, t0, 0);
  a.sw(zero, t0, 4);
  // mie.MTIE, task1 stack, global MIE, enter task1.
  a.li(t0, 0x80);
  a.csrrs(zero, kCsrMie, t0);
  a.la(sp, "task1_stack_top");
  a.csrrsi(zero, kCsrMstatus, 8);
  a.j("task1_entry");

  // Task bodies: bump a counter, stir an xorshift state.
  for (int task = 1; task <= 2; ++task) {
    const std::string n = std::to_string(task);
    a.label("task" + n + "_entry");
    a.la(a1, "task" + n + "_count");
    a.li(a2, 0x1234 * task);
    a.label("task" + n + "_loop");
    a.lw(a3, a1, 0);
    a.addi(a3, a3, 1);
    a.sw(a3, a1, 0);
    // xorshift32 stir.
    a.slli(a4, a2, 13);
    a.xor_(a2, a2, a4);
    a.srli(a4, a2, 17);
    a.xor_(a2, a2, a4);
    a.slli(a4, a2, 5);
    a.xor_(a2, a2, a4);
    a.j("task" + n + "_loop");
  }

  // Timer trap: full context switch.
  a.align(4);
  a.label("rtos_trap");
  a.csrrw(t6, kCsrMscratch, t6);  // t6 = current tcb, mscratch = old t6
  for (int r = 1; r <= 30; ++r)
    a.sw(static_cast<rvasm::Reg>(r), t6, 4 * (r - 1));
  a.mv(t5, t6);                     // t5 = tcb (x30 already saved)
  a.csrrw(t6, kCsrMscratch, zero);  // t6 = original t6
  a.sw(t6, t5, 120);                // save x31
  a.csrrs(t0, kCsrMepc, zero);
  a.sw(t0, t5, 124);                // save pc
  // switch_count++; exit when the target is reached.
  a.la(t0, "switch_count");
  a.lw(t1, t0, 0);
  a.addi(t1, t1, 1);
  a.sw(t1, t0, 0);
  a.li(t2, target_switches);
  a.bltu(t1, t2, "rtos_continue");
  // Verify both tasks made progress.
  a.la(t0, "task1_count");
  a.lw(t1, t0, 0);
  a.la(t0, "task2_count");
  a.lw(t2, t0, 0);
  a.li(a0, 0);
  a.bnez(t1, "rtos_chk2");
  a.li(a0, 1);
  a.label("rtos_chk2");
  a.bnez(t2, "rtos_exit");
  a.li(a0, 1);
  a.label("rtos_exit");
  a.j("exit");
  a.label("rtos_continue");
  // next = (cur == tcb1) ? tcb2 : tcb1
  a.la(t0, "tcb1");
  a.la(t4, "tcb2");
  a.bne(t5, t0, "rtos_pick1");
  a.j("rtos_store");
  a.label("rtos_pick1");
  a.mv(t4, t0);
  a.label("rtos_store");
  // Re-arm the timer.
  a.li(t0, mmio::kClintMtime);
  a.lw(t1, t0, 0);
  a.li(t2, slice_us);
  a.add(t1, t1, t2);
  a.li(t0, mmio::kClintMtimecmp);
  a.sw(t1, t0, 0);
  // Restore the next task's context.
  a.csrrw(zero, kCsrMscratch, t4);
  a.lw(t0, t4, 124);
  a.csrrw(zero, kCsrMepc, t0);
  a.mv(t6, t4);
  for (int r = 1; r <= 30; ++r)
    a.lw(static_cast<rvasm::Reg>(r), t6, 4 * (r - 1));
  a.lw(t6, t6, 120);  // restore x31 last (overwrites the base register)
  a.mret();

  emit_stdlib(a);

  a.align(8);
  a.label("tcb1");
  a.zero_fill(128);
  a.label("tcb2");
  a.zero_fill(128);
  a.label("switch_count");
  a.word(0);
  a.label("task1_count");
  a.word(0);
  a.label("task2_count");
  a.word(0);
  a.zero_fill(1024);
  a.label("task1_stack_top");
  a.zero_fill(1024);
  a.label("task2_stack_top");
  a.entry("_start");
  return a.assemble();
}

}  // namespace vpdift::fw
