#include "fw/attacks.hpp"

#include <stdexcept>

#include "fw/hal.hpp"
#include "rvasm/assembler.hpp"
#include "soc/addrmap.hpp"

namespace vpdift::fw {

using namespace rvasm::reg;
using rvasm::Assembler;

namespace {

// sp as seen by the vulnerable function: crt0 sets sp to the stack top, main
// pushes a 16-byte frame before calling vuln.
constexpr std::uint32_t kSpAtVuln = kDefaultStackTop - 16;

void put_u32le(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// Common epilogue of every attack image: benign function, the LI-classified
/// "malicious" payload, stdlib, and data labels.
void emit_attack_tail(Assembler& a) {
  a.label("benign_func");
  a.li(t0, mmio::kSysMark);
  a.li(t1, 'b');
  a.sb(t1, t0, 0);
  a.ret();

  a.align(4);
  a.label("attack_payload");
  a.li(t0, mmio::kSysMark);
  a.li(t1, 'X');  // "malicious payload executed"
  a.sb(t1, t0, 0);
  a.li(a0, 42);
  a.j("exit");
  a.label("attack_payload_end");

  emit_stdlib(a);

  a.align(8);
  a.label("tmp4");
  a.zero_fill(4);
  a.label("dummy_word");
  a.zero_fill(4);
}

/// Emits `call uart_getc; read that many bytes into base+offset`.
/// base == sp reads into the stack frame; otherwise into the label `buf`.
void emit_overflow_read_sp(Assembler& a) {
  a.call("uart_getc");
  a.mv(a1, a0);
  a.mv(a0, sp);
  a.call("uart_read_n");
}

void emit_overflow_read_label(Assembler& a, const std::string& label) {
  a.call("uart_getc");
  a.mv(a1, a0);
  a.la(a0, label);
  a.call("uart_read_n");
}

/// Emits the second stage of an indirect attack: read 4 bytes into tmp4 and
/// store them through the pointer found at offset(sp).
void emit_indirect_write(Assembler& a, int ptr_offset) {
  a.la(a0, "tmp4");
  a.li(a1, 4);
  a.call("uart_read_n");
  a.la(t0, "tmp4");
  a.lw(t1, t0, 0);
  a.lw(t2, sp, ptr_offset);
  a.sw(t1, t2, 0);
}

void emit_main_calling(Assembler& a, const char* vuln,
                       bool pass_benign_fnptr = false) {
  a.label("main");
  a.addi(sp, sp, -16);
  a.sw(ra, sp, 12);
  if (pass_benign_fnptr) a.la(a0, "benign_func");
  a.call(vuln);
  a.li(a0, 0);
  a.lw(ra, sp, 12);
  a.addi(sp, sp, 16);
  a.ret();
}

std::string filler(std::size_t n) { return std::string(n, 'A'); }

}  // namespace

const std::array<AttackSpec, 18>& attack_specs() {
  static const std::array<AttackSpec, 18> specs = {{
      {1, "Stack", "Function Pointer (param)", "Direct", false,
       "parameter passed in a register (RISC-V calling convention): not "
       "reachable by a contiguous stack overflow"},
      {2, "Stack", "Longjmp Buffer (param)", "Direct", false,
       "parameter passed in a register (RISC-V calling convention)"},
      {3, "Stack", "Return Address", "Direct", true, ""},
      {4, "Stack", "Base Pointer", "Direct", false,
       "RISC-V ABI does not maintain a saved base/frame pointer chain"},
      {5, "Stack", "Function Pointer (local)", "Direct", true, ""},
      {6, "Stack", "Longjmp Buffer", "Direct", true, ""},
      {7, "Heap/BSS/Data", "Function Pointer", "Direct", true, ""},
      {8, "Heap/BSS/Data", "Longjmp Buffer", "Direct", false,
       "longjmp buffer not adjacent to an overflowable buffer in the RISC-V "
       "port of the suite"},
      {9, "Stack", "Function Pointer (param)", "Indirect", true, ""},
      {10, "Stack", "Longjump Buffer (param)", "Indirect", true, ""},
      {11, "Stack", "Return Address", "Indirect", true, ""},
      {12, "Stack", "Base Pointer", "Indirect", false,
       "RISC-V ABI does not maintain a saved base/frame pointer chain"},
      {13, "Stack", "Function Pointer (local)", "Indirect", true, ""},
      {14, "Stack", "Longjmp Buffer", "Indirect", true, ""},
      {15, "Heap/BSS/Data", "Return Address", "Indirect", false,
       "return address is a stack-resident datum; the heap variant does not "
       "apply under the RISC-V calling convention"},
      {16, "Heap/BSS/Data", "Base Pointer", "Indirect", false,
       "RISC-V ABI does not maintain a saved base/frame pointer chain"},
      {17, "Heap/BSS/Data", "Function Pointer (local)", "Indirect", true, ""},
      {18, "Heap/BSS/Data", "Longjmp Buffer", "Indirect", false,
       "longjmp buffer not reachable in the RISC-V port of the suite"},
  }};
  return specs;
}

AttackCase make_attack(int id) {
  const AttackSpec& spec = attack_specs().at(static_cast<std::size_t>(id - 1));
  if (!spec.applicable)
    throw std::invalid_argument("attack " + std::to_string(id) +
                                " is N/A on RISC-V: " + spec.note);

  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);
  std::string input;

  switch (id) {
    case 3: {
      // Stack / return address / direct: 16-byte buffer at sp+0, saved ra at
      // sp+28; a 32-byte overflow rewrites it.
      emit_main_calling(a, "vuln");
      a.label("vuln");
      a.addi(sp, sp, -32);
      a.sw(ra, sp, 28);
      emit_overflow_read_sp(a);
      a.lw(ra, sp, 28);
      a.addi(sp, sp, 32);
      a.ret();  // jumps to the payload
      emit_attack_tail(a);
      break;
    }
    case 5: {
      // Stack / local function pointer / direct: fnptr at sp+16 after the
      // buffer; 20-byte overflow rewrites it, then it is called.
      emit_main_calling(a, "vuln");
      a.label("vuln");
      a.addi(sp, sp, -32);
      a.sw(ra, sp, 28);
      a.la(t0, "benign_func");
      a.sw(t0, sp, 16);
      emit_overflow_read_sp(a);
      a.lw(t1, sp, 16);
      a.jalr(ra, t1, 0);
      a.lw(ra, sp, 28);
      a.addi(sp, sp, 32);
      a.ret();
      emit_attack_tail(a);
      break;
    }
    case 6: {
      // Stack / longjmp buffer / direct: jmp_buf {pc, sp} at sp+16; the
      // overflow rewrites jb.pc; longjmp dispatches to it.
      emit_main_calling(a, "vuln");
      a.label("vuln");
      a.addi(sp, sp, -48);
      a.sw(ra, sp, 44);
      a.la(t0, "lj_cont");  // setjmp
      a.sw(t0, sp, 16);
      a.sw(sp, sp, 20);
      emit_overflow_read_sp(a);
      a.lw(t0, sp, 16);  // longjmp
      a.lw(t1, sp, 20);
      a.mv(sp, t1);
      a.jr(t0);
      a.label("lj_cont");
      a.lw(ra, sp, 44);
      a.addi(sp, sp, 48);
      a.ret();
      emit_attack_tail(a);
      break;
    }
    case 7: {
      // Heap/BSS/Data / function pointer / direct: global fnptr right after
      // a global buffer.
      emit_main_calling(a, "vuln");
      a.label("vuln");
      a.addi(sp, sp, -16);
      a.sw(ra, sp, 12);
      emit_overflow_read_label(a, "gbuf");
      a.la(t0, "gfnptr");
      a.lw(t1, t0, 0);
      a.jalr(ra, t1, 0);
      a.lw(ra, sp, 12);
      a.addi(sp, sp, 16);
      a.ret();
      emit_attack_tail(a);
      a.label("gbuf");
      a.zero_fill(16);
      a.label("gfnptr");
      a.word_of("benign_func");
      break;
    }
    case 9: {
      // Stack / function pointer (param) / indirect: the register-passed
      // fnptr parameter is spilled to sp+32 (as an -O0 compiler does); the
      // overflow rewrites a pointer variable at sp+16 to address that spill
      // slot, and a second attacker-controlled write lands the payload
      // address there before the call.
      emit_main_calling(a, "vuln", /*pass_benign_fnptr=*/true);
      a.label("vuln");
      a.addi(sp, sp, -48);
      a.sw(ra, sp, 44);
      a.sw(a0, sp, 32);  // spill the fnptr parameter
      a.la(t0, "dummy_word");
      a.sw(t0, sp, 16);  // pointer variable after the buffer
      emit_overflow_read_sp(a);
      emit_indirect_write(a, 16);
      a.lw(t3, sp, 32);
      a.jalr(ra, t3, 0);
      a.lw(ra, sp, 44);
      a.addi(sp, sp, 48);
      a.ret();
      emit_attack_tail(a);
      break;
    }
    case 10: {
      // Stack / longjmp buffer (param) / indirect: jmp_buf passed by
      // reference; the overflow redirects the pointer variable at g_jb.pc,
      // the indirect write stores the payload address, longjmp dispatches.
      a.label("main");
      a.addi(sp, sp, -16);
      a.sw(ra, sp, 12);
      a.la(t0, "g_jb");  // setjmp(g_jb)
      a.la(t1, "lj_cont");
      a.sw(t1, t0, 0);
      a.sw(sp, t0, 4);
      a.la(a0, "g_jb");
      a.call("vuln");
      a.label("lj_cont");
      a.li(a0, 0);
      a.lw(ra, sp, 12);
      a.addi(sp, sp, 16);
      a.ret();
      a.label("vuln");
      a.addi(sp, sp, -48);
      a.sw(ra, sp, 44);
      a.sw(a0, sp, 32);  // spill the jmp_buf pointer
      a.la(t0, "dummy_word");
      a.sw(t0, sp, 16);
      emit_overflow_read_sp(a);
      emit_indirect_write(a, 16);
      a.lw(t0, sp, 32);  // longjmp(param)
      a.lw(t1, t0, 0);
      a.lw(t2, t0, 4);
      a.mv(sp, t2);
      a.jr(t1);
      emit_attack_tail(a);
      a.label("g_jb");
      a.zero_fill(8);
      break;
    }
    case 11: {
      // Stack / return address / indirect.
      emit_main_calling(a, "vuln");
      a.label("vuln");
      a.addi(sp, sp, -48);
      a.sw(ra, sp, 44);
      a.la(t0, "dummy_word");
      a.sw(t0, sp, 16);
      emit_overflow_read_sp(a);
      emit_indirect_write(a, 16);
      a.lw(ra, sp, 44);
      a.addi(sp, sp, 48);
      a.ret();
      emit_attack_tail(a);
      break;
    }
    case 13: {
      // Stack / function pointer (local) / indirect.
      emit_main_calling(a, "vuln");
      a.label("vuln");
      a.addi(sp, sp, -48);
      a.sw(ra, sp, 44);
      a.la(t0, "benign_func");
      a.sw(t0, sp, 32);  // local fnptr
      a.la(t0, "dummy_word");
      a.sw(t0, sp, 16);  // pointer variable
      emit_overflow_read_sp(a);
      emit_indirect_write(a, 16);
      a.lw(t3, sp, 32);
      a.jalr(ra, t3, 0);
      a.lw(ra, sp, 44);
      a.addi(sp, sp, 48);
      a.ret();
      emit_attack_tail(a);
      break;
    }
    case 14: {
      // Stack / longjmp buffer (local) / indirect.
      emit_main_calling(a, "vuln");
      a.label("vuln");
      a.addi(sp, sp, -64);
      a.sw(ra, sp, 60);
      a.la(t0, "lj_cont");  // setjmp into the local jmp_buf at sp+32
      a.sw(t0, sp, 32);
      a.sw(sp, sp, 36);
      a.la(t0, "dummy_word");
      a.sw(t0, sp, 16);
      emit_overflow_read_sp(a);
      emit_indirect_write(a, 16);
      a.lw(t1, sp, 32);  // longjmp(local jb)
      a.lw(t2, sp, 36);
      a.mv(sp, t2);
      a.jr(t1);
      a.label("lj_cont");
      a.lw(ra, sp, 60);
      a.addi(sp, sp, 64);
      a.ret();
      emit_attack_tail(a);
      break;
    }
    case 17: {
      // Heap/BSS/Data / function pointer / indirect: global buffer, then a
      // global pointer variable the overflow retargets at a global fnptr.
      emit_main_calling(a, "vuln");
      a.label("vuln");
      a.addi(sp, sp, -16);
      a.sw(ra, sp, 12);
      emit_overflow_read_label(a, "gbuf");
      a.la(a0, "tmp4");  // indirect write through the global pointer
      a.li(a1, 4);
      a.call("uart_read_n");
      a.la(t0, "tmp4");
      a.lw(t1, t0, 0);
      a.la(t0, "gptr");
      a.lw(t2, t0, 0);
      a.sw(t1, t2, 0);
      a.la(t0, "gfnptr");
      a.lw(t3, t0, 0);
      a.jalr(ra, t3, 0);
      a.lw(ra, sp, 12);
      a.addi(sp, sp, 16);
      a.ret();
      emit_attack_tail(a);
      a.label("gbuf");
      a.zero_fill(16);
      a.label("gptr");
      a.word_of("dummy_word");
      a.label("gfnptr");
      a.word_of("benign_func");
      break;
    }
    default:
      throw std::logic_error("unhandled applicable attack id");
  }

  a.entry("_start");
  rvasm::Program program = a.assemble();
  const auto payload = static_cast<std::uint32_t>(program.symbol("attack_payload"));

  // Attacker input per attack shape.
  switch (id) {
    case 3:
      input.push_back(32);
      input += filler(28);
      put_u32le(input, payload);
      break;
    case 5:
    case 6:
      input.push_back(20);
      input += filler(16);
      put_u32le(input, payload);
      break;
    case 7:
      input.push_back(20);
      input += filler(16);
      put_u32le(input, payload);
      break;
    case 9: {
      input.push_back(20);
      input += filler(16);
      put_u32le(input, kSpAtVuln - 48 + 32);  // -> fnptr spill slot
      put_u32le(input, payload);
      break;
    }
    case 10: {
      input.push_back(20);
      input += filler(16);
      put_u32le(input, static_cast<std::uint32_t>(program.symbol("g_jb")));
      put_u32le(input, payload);
      break;
    }
    case 11: {
      input.push_back(20);
      input += filler(16);
      put_u32le(input, kSpAtVuln - 48 + 44);  // -> saved ra slot
      put_u32le(input, payload);
      break;
    }
    case 13: {
      input.push_back(20);
      input += filler(16);
      put_u32le(input, kSpAtVuln - 48 + 32);  // -> local fnptr slot
      put_u32le(input, payload);
      break;
    }
    case 14: {
      input.push_back(20);
      input += filler(16);
      put_u32le(input, kSpAtVuln - 64 + 32);  // -> local jb.pc
      put_u32le(input, payload);
      break;
    }
    case 17: {
      input.push_back(20);  // 16 buffer bytes + 4 overwriting gptr
      input += filler(16);
      put_u32le(input, static_cast<std::uint32_t>(program.symbol("gfnptr")));
      put_u32le(input, payload);
      break;
    }
    default:
      break;
  }

  return AttackCase{spec, std::move(program), std::move(input)};
}

AttackCase make_code_reuse_attack() {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);
  // Same vulnerable shape as attack #3 (stack buffer, saved ra at sp+28).
  emit_main_calling(a, "vuln");
  a.label("vuln");
  a.addi(sp, sp, -32);
  a.sw(ra, sp, 28);
  emit_overflow_read_sp(a);
  a.lw(ra, sp, 28);
  a.addi(sp, sp, 32);
  a.ret();  // returns into privileged_action
  // The privileged function the attacker re-uses; part of the trusted image.
  a.label("privileged_action");
  a.li(t0, mmio::kSysMark);
  a.li(t1, 'P');
  a.sb(t1, t0, 0);
  a.li(a0, 43);
  a.j("exit");
  emit_attack_tail(a);
  a.entry("_start");
  rvasm::Program program = a.assemble();

  std::string input;
  input.push_back(32);
  input += filler(28);
  put_u32le(input,
            static_cast<std::uint32_t>(program.symbol("privileged_action")));

  AttackCase c;
  c.spec = {19, "Stack", "Return Address (code reuse)", "Direct", true, ""};
  c.program = std::move(program);
  c.uart_input = std::move(input);
  return c;
}

}  // namespace vpdift::fw
