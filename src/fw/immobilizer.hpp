// Car-engine-immobilizer ECU firmware (the case study of Section VI-A).
//
// The immobilizer serves a challenge-response authentication protocol over
// CAN: the engine ECU sends an 8-byte random challenge (CAN id 0x100); the
// immobilizer encrypts it with the secret PIN using the AES peripheral and
// returns the first 8 ciphertext bytes (CAN id 0x101). A UART debug console
// accepts the command 'd' to dump an application-data memory region.
//
// Variants reproduce the paper's narrative:
//   * kVulnerableDump — the debug dump range includes the PIN (the SW bug
//     the security policy catches),
//   * kFixedDump — the dump excludes the PIN region (the paper's fix),
//   * kAttack* — the injected attack scenarios 1-4 of Section VI-A.
#pragma once

#include <cstdint>

#include "rvasm/program.hpp"
#include "soc/aes128.hpp"

namespace vpdift::fw {

enum class ImmoVariant {
  kVulnerableDump,          ///< 'd' dumps app data *and* the PIN
  kFixedDump,               ///< 'd' dumps app data only
  kAttackDirectLeak,        ///< scenario 1a: PIN byte straight to the UART
  kAttackIndirectLeak,      ///< scenario 1b: PIN via intermediate buffer to CAN
  kAttackOverflowLeak,      ///< scenario 1c: out-of-bounds read past a buffer into the PIN
  kAttackBranchLeak,        ///< scenario 2: control flow depends on a PIN bit
  kAttackOverwriteExternal, ///< scenario 3: CAN data byte stored over the PIN
  kAttackOverwriteTrusted,  ///< scenario 4: PIN byte 0 copied over bytes 1..15
};

/// Builds the immobilizer firmware. Symbols of interest:
///   "pin"       — 16-byte secret key (classify per policy)
///   "app_data"  — 32-byte public application data preceding the PIN
/// The firmware exits 0 after serving `challenges_to_serve` challenges.
rvasm::Program make_immobilizer(ImmoVariant variant, const soc::AesKey& pin,
                                std::uint32_t challenges_to_serve);

}  // namespace vpdift::fw
