// Benchmark firmware, part 2: dhrystone-style mix and SHA-256.
#include "fw/benchmarks.hpp"
#include "fw/hal.hpp"
#include "fw/host_ref.hpp"
#include "rvasm/assembler.hpp"
#include "soc/addrmap.hpp"

namespace vpdift::fw {

using namespace rvasm::reg;
using rvasm::Assembler;

rvasm::Program make_dhrystone(std::uint32_t iterations) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  // Register plan (mirrors host_ref::dhrystone_checksum):
  //   s2=int1  s3=int2  s4=chk  s5=i  s6=iterations  s7=strcmp result
  a.label("main");
  a.addi(sp, sp, -16);
  a.sw(ra, sp, 12);
  a.li(s2, 2);
  a.li(s3, 3);
  a.li(s4, 0);
  a.li(s5, 0);
  a.li(s6, iterations);
  a.label("dhry_loop");
  a.bgeu(s5, s6, "dhry_done");
  a.call("dhry_proc1");
  a.call("dhry_strcpy");
  a.call("dhry_strcmp");
  a.mv(s7, a0);
  // proc_2: 4-way select on (int1 ^ i) & 3.
  a.xor_(t0, s2, s5);
  a.andi(t0, t0, 3);
  a.beqz(t0, "sel0");
  a.li(t1, 1);
  a.beq(t0, t1, "sel1");
  a.li(t1, 2);
  a.beq(t0, t1, "sel2");
  a.add(t2, s2, s3);
  a.xor_(s4, s4, t2);
  a.j("sel_done");
  a.label("sel0");
  a.add(s4, s4, s2);
  a.j("sel_done");
  a.label("sel1");
  a.xor_(s4, s4, s3);
  a.j("sel_done");
  a.label("sel2");
  a.add(s4, s4, s5);
  a.label("sel_done");
  a.add(s4, s4, s7);
  a.addi(s5, s5, 1);
  a.j("dhry_loop");
  a.label("dhry_done");
  a.li(t0, dhrystone_checksum(iterations));
  a.li(a0, 0);
  a.beq(s4, t0, "dhry_ret");
  a.li(a0, 1);
  a.label("dhry_ret");
  a.lw(ra, sp, 12);
  a.addi(sp, sp, 16);
  a.ret();

  // proc1: int1 = int1*5 + int2; int2 += int1 >> 3.
  a.label("dhry_proc1");
  a.li(t0, 5);
  a.mul(s2, s2, t0);
  a.add(s2, s2, s3);
  a.srli(t0, s2, 3);
  a.add(s3, s3, t0);
  a.ret();

  // strcpy: copy 16 bytes dhry_src -> dhry_dst.
  a.label("dhry_strcpy");
  a.la(t0, "dhry_src");
  a.la(t1, "dhry_dst");
  a.li(t2, 16);
  a.label("dhry_strcpy.loop");
  a.lbu(t3, t0, 0);
  a.sb(t3, t1, 0);
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t2, t2, -1);
  a.bnez(t2, "dhry_strcpy.loop");
  a.ret();

  // strcmp over 16 bytes: a0 = 1 if equal else 0.
  a.label("dhry_strcmp");
  a.la(t0, "dhry_src");
  a.la(t1, "dhry_dst");
  a.li(t2, 16);
  a.li(a0, 1);
  a.label("dhry_strcmp.loop");
  a.lbu(t3, t0, 0);
  a.lbu(t4, t1, 0);
  a.beq(t3, t4, "dhry_strcmp.next");
  a.li(a0, 0);
  a.ret();
  a.label("dhry_strcmp.next");
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t2, t2, -1);
  a.bnez(t2, "dhry_strcmp.loop");
  a.ret();

  emit_stdlib(a);

  a.align(4);
  a.label("dhry_src");
  a.ascii("DHRYSTONE-VPDIFT");
  a.label("dhry_dst");
  a.zero_fill(16);
  a.entry("_start");
  return a.assemble();
}

namespace {

constexpr std::uint32_t kShaK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t kShaH0[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                     0xa54ff53a, 0x510e527f, 0x9b05688c,
                                     0x1f83d9ab, 0x5be0cd19};

// Emits: dst = src rotated right by n (clobbers tmp).
void rotr_into(Assembler& a, rvasm::Reg dst, rvasm::Reg src, unsigned n,
               rvasm::Reg tmp) {
  a.srli(dst, src, n);
  a.slli(tmp, src, 32 - n);
  a.or_(dst, dst, tmp);
}

}  // namespace

rvasm::Program make_sha256(std::uint32_t msg_len, std::uint32_t rounds) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  a.addi(sp, sp, -16);
  a.sw(ra, sp, 12);
  // Fill msg with LCG bytes (x = 0xdeadbeef; b = (x := lcg(x)) >> 16).
  a.la(t5, "sha_msg");
  a.li(t6, msg_len);
  a.li(t0, 0xdeadbeef);
  a.li(t3, 1103515245);
  a.li(t4, 12345);
  a.label("msg_fill");
  a.beqz(t6, "msg_done");
  a.mul(t0, t0, t3);
  a.add(t0, t0, t4);
  a.srli(t1, t0, 16);
  a.sb(t1, t5, 0);
  a.addi(t5, t5, 1);
  a.addi(t6, t6, -1);
  a.j("msg_fill");
  a.label("msg_done");
  // First hash: sha256(msg, msg_len, digest).
  a.la(a0, "sha_msg");
  a.li(a1, msg_len);
  a.la(a2, "sha_digest");
  a.call("sha256");
  // Chain: rounds-1 re-hashes of the digest.
  a.li(s0, rounds > 0 ? rounds - 1 : 0);
  a.label("chain");
  a.beqz(s0, "chain_done");
  a.la(a0, "sha_digest");
  a.li(a1, 32);
  a.la(a2, "sha_digest");
  a.call("sha256");
  a.addi(s0, s0, -1);
  a.j("chain");
  a.label("chain_done");
  a.la(t0, "sha_digest");
  a.lw(t1, t0, 0);  // little-endian word0, as in the host mirror
  a.li(t2, sha256_chain_word0(msg_len, rounds));
  a.li(a0, 0);
  a.beq(t1, t2, "main_ret");
  a.li(a0, 1);
  a.label("main_ret");
  a.lw(ra, sp, 12);
  a.addi(sp, sp, 16);
  a.ret();

  // ---- sha256(a0=ptr, a1=len, a2=out) ----
  a.label("sha256");
  a.addi(sp, sp, -32);
  a.sw(ra, sp, 28);
  a.sw(s0, sp, 24);
  a.sw(s1, sp, 20);
  a.sw(s10, sp, 16);
  a.sw(s11, sp, 12);
  a.mv(s0, a0);   // cursor
  a.mv(s1, a1);   // remaining
  a.mv(s10, a1);  // total length
  a.mv(s11, a2);  // out
  // hstate = H0
  a.la(t0, "sha_hstate");
  a.la(t1, "sha_h0");
  for (int i = 0; i < 8; ++i) {
    a.lw(t2, t1, 4 * i);
    a.sw(t2, t0, 4 * i);
  }
  // Full blocks.
  a.label("sha_full");
  a.li(t0, 64);
  a.bltu(s1, t0, "sha_pad");
  a.mv(a0, s0);
  a.call("sha_compress");
  a.addi(s0, s0, 64);
  a.addi(s1, s1, -64);
  a.j("sha_full");
  // Padding: zero 128-byte padbuf, copy remainder, 0x80, bit length BE.
  a.label("sha_pad");
  a.la(t0, "sha_padbuf");
  for (int i = 0; i < 128; i += 4) a.sw(zero, t0, i);
  a.mv(t1, s0);
  a.mv(t2, s1);
  a.label("sha_pad.copy");
  a.beqz(t2, "sha_pad.copied");
  a.lbu(t3, t1, 0);
  a.sb(t3, t0, 0);
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t2, t2, -1);
  a.j("sha_pad.copy");
  a.label("sha_pad.copied");
  a.li(t3, 0x80);
  a.sb(t3, t0, 0);  // t0 == padbuf + remainder
  // bit length: t1 = len*8 (low), t2 = len >> 29 (high)
  a.slli(t1, s10, 3);
  a.srli(t2, s10, 29);
  a.la(t0, "sha_padbuf");
  a.li(t3, 56);
  a.bltu(s1, t3, "sha_pad.short");
  a.addi(t0, t0, 64);  // length goes into the second block
  a.label("sha_pad.short");
  // Store t2:t1 big-endian at t0+56.
  for (int i = 0; i < 4; ++i) {
    a.srli(t4, t2, 24 - 8 * i);
    a.sb(t4, t0, 56 + i);
  }
  for (int i = 0; i < 4; ++i) {
    a.srli(t4, t1, 24 - 8 * i);
    a.sb(t4, t0, 60 + i);
  }
  a.la(a0, "sha_padbuf");
  a.call("sha_compress");
  a.li(t3, 56);
  a.bltu(s1, t3, "sha_out");
  a.la(a0, "sha_padbuf");
  a.addi(a0, a0, 64);
  a.call("sha_compress");
  // Output: hstate words stored big-endian.
  a.label("sha_out");
  a.la(t0, "sha_hstate");
  for (int i = 0; i < 8; ++i) {
    a.lw(t1, t0, 4 * i);
    for (int b = 0; b < 4; ++b) {
      a.srli(t2, t1, 24 - 8 * b);
      a.sb(t2, s11, 4 * i + b);
    }
  }
  a.lw(ra, sp, 28);
  a.lw(s0, sp, 24);
  a.lw(s1, sp, 20);
  a.lw(s10, sp, 16);
  a.lw(s11, sp, 12);
  a.addi(sp, sp, 32);
  a.ret();

  // ---- sha_compress(a0 = 64-byte block) ----
  // Leaf routine; clobbers t0-t6, a1-a7, s2-s9.
  a.label("sha_compress");
  a.la(a5, "sha_w");
  a.la(a6, "sha_k");
  // W[0..15]: big-endian loads.
  a.li(a7, 0);
  a.label("shc_wload");
  a.slli(t0, a7, 2);
  a.add(t1, a0, t0);
  a.lbu(t2, t1, 0);
  a.slli(t2, t2, 24);
  a.lbu(t3, t1, 1);
  a.slli(t3, t3, 16);
  a.or_(t2, t2, t3);
  a.lbu(t3, t1, 2);
  a.slli(t3, t3, 8);
  a.or_(t2, t2, t3);
  a.lbu(t3, t1, 3);
  a.or_(t2, t2, t3);
  a.add(t3, a5, t0);
  a.sw(t2, t3, 0);
  a.addi(a7, a7, 1);
  a.li(t3, 16);
  a.bltu(a7, t3, "shc_wload");
  // W[16..63] message-schedule extension.
  a.label("shc_ext");
  a.slli(t0, a7, 2);
  a.add(t0, t0, a5);
  a.lw(t1, t0, -60);  // W[i-15]
  rotr_into(a, t2, t1, 7, t3);
  rotr_into(a, t3, t1, 18, t4);
  a.xor_(t2, t2, t3);
  a.srli(t3, t1, 3);
  a.xor_(t2, t2, t3);  // s0
  a.lw(t1, t0, -8);    // W[i-2]
  rotr_into(a, t3, t1, 17, t4);
  rotr_into(a, t4, t1, 19, t5);
  a.xor_(t3, t3, t4);
  a.srli(t4, t1, 10);
  a.xor_(t3, t3, t4);  // s1
  a.lw(t1, t0, -64);   // W[i-16]
  a.add(t1, t1, t2);
  a.lw(t2, t0, -28);   // W[i-7]
  a.add(t1, t1, t2);
  a.add(t1, t1, t3);
  a.sw(t1, t0, 0);
  a.addi(a7, a7, 1);
  a.li(t2, 64);
  a.bltu(a7, t2, "shc_ext");
  // Load working vars a..h into s2..s9.
  a.la(t0, "sha_hstate");
  for (int i = 0; i < 8; ++i) a.lw(static_cast<rvasm::Reg>(s2 + i), t0, 4 * i);
  // 64 rounds.
  a.li(a7, 0);
  a.label("shc_round");
  rotr_into(a, t0, s6, 6, t1);
  rotr_into(a, t1, s6, 11, t2);
  a.xor_(t3, t0, t1);
  rotr_into(a, t0, s6, 25, t1);
  a.xor_(t3, t3, t0);  // S1(e)
  a.and_(t0, s6, s7);
  a.not_(t1, s6);
  a.and_(t1, t1, s8);
  a.xor_(t4, t0, t1);  // ch
  a.add(t5, s9, t3);
  a.add(t5, t5, t4);
  a.slli(t0, a7, 2);
  a.add(t1, t0, a6);
  a.lw(t2, t1, 0);  // K[i]
  a.add(t5, t5, t2);
  a.add(t1, t0, a5);
  a.lw(t2, t1, 0);  // W[i]
  a.add(t5, t5, t2);  // t1c
  rotr_into(a, t6, s2, 2, t1);
  rotr_into(a, t0, s2, 13, t1);
  a.xor_(t6, t6, t0);
  rotr_into(a, t0, s2, 22, t1);
  a.xor_(t6, t6, t0);  // S0(a)
  a.and_(t0, s2, s3);
  a.and_(t1, s2, s4);
  a.xor_(t3, t0, t1);
  a.and_(t1, s3, s4);
  a.xor_(t3, t3, t1);  // maj
  a.add(t6, t6, t3);   // t2c
  a.mv(s9, s8);
  a.mv(s8, s7);
  a.mv(s7, s6);
  a.add(s6, s5, t5);
  a.mv(s5, s4);
  a.mv(s4, s3);
  a.mv(s3, s2);
  a.add(s2, t5, t6);
  a.addi(a7, a7, 1);
  a.li(t0, 64);
  a.bltu(a7, t0, "shc_round");
  // Fold back into hstate.
  a.la(t0, "sha_hstate");
  for (int i = 0; i < 8; ++i) {
    a.lw(t1, t0, 4 * i);
    a.add(t1, t1, static_cast<rvasm::Reg>(s2 + i));
    a.sw(t1, t0, 4 * i);
  }
  a.ret();

  emit_stdlib(a);

  a.align(8);
  a.label("sha_k");
  for (std::uint32_t k : kShaK) a.word(k);
  a.label("sha_h0");
  for (std::uint32_t h : kShaH0) a.word(h);
  a.label("sha_hstate");
  a.zero_fill(32);
  a.label("sha_w");
  a.zero_fill(256);
  a.label("sha_padbuf");
  a.zero_fill(128);
  a.label("sha_digest");
  a.zero_fill(32);
  a.label("sha_msg");
  a.zero_fill(msg_len);
  a.entry("_start");
  return a.assemble();
}

}  // namespace vpdift::fw
