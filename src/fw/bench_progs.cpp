#include "fw/benchmarks.hpp"

#include "fw/hal.hpp"
#include "fw/host_ref.hpp"
#include "rvasm/assembler.hpp"
#include "soc/addrmap.hpp"

namespace vpdift::fw {

using namespace rvasm::reg;
using rvasm::Assembler;

rvasm::Program make_primes(std::uint32_t limit) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  a.li(s0, 2);          // candidate
  a.li(s1, 0);          // count
  a.li(s2, limit);
  a.label("outer");
  a.bgeu(s0, s2, "count_done");
  a.li(t0, 2);          // divisor
  a.label("trial");
  a.mul(t1, t0, t0);
  a.bgtu(t1, s0, "is_prime");
  a.remu(t1, s0, t0);
  a.beqz(t1, "not_prime");
  a.addi(t0, t0, 1);
  a.j("trial");
  a.label("is_prime");
  a.addi(s1, s1, 1);
  a.label("not_prime");
  a.addi(s0, s0, 1);
  a.j("outer");
  a.label("count_done");
  a.li(t0, count_primes(limit));
  a.li(a0, 0);
  a.beq(s1, t0, "main_ret");
  a.li(a0, 1);
  a.label("main_ret");
  a.ret();

  emit_stdlib(a);
  a.entry("_start");
  return a.assemble();
}

rvasm::Program make_qsort(std::uint32_t n, std::uint32_t seed) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  // Fill arr[0..n) from the LCG; accumulate the input checksum in s4.
  a.la(s0, "arr");
  a.li(s1, n);
  a.li(t0, seed);
  a.li(t3, 1103515245);
  a.li(t4, 12345);
  a.li(s3, 0);  // i
  a.li(s4, 0);  // checksum in
  a.label("fill");
  a.bgeu(s3, s1, "fill_done");
  a.mul(t0, t0, t3);
  a.add(t0, t0, t4);
  a.slli(t2, s3, 2);
  a.add(t2, t2, s0);
  a.sw(t0, t2, 0);
  a.add(s4, s4, t0);
  a.addi(s3, s3, 1);
  a.j("fill");
  a.label("fill_done");

  // Iterative quicksort with an explicit (lo, hi) work stack.
  a.la(s8, "qstack");  // stack base
  a.mv(s5, s8);        // stack pointer
  a.sw(zero, s5, 0);   // push (0, n-1)
  a.addi(t0, s1, -1);
  a.sw(t0, s5, 4);
  a.addi(s5, s5, 8);
  a.label("qs_loop");
  a.beq(s5, s8, "verify");
  a.addi(s5, s5, -8);
  a.lw(s2, s5, 0);  // lo
  a.lw(s3, s5, 4);  // hi
  a.bge(s2, s3, "qs_loop");
  // partition: pivot = arr[hi]
  a.slli(t0, s3, 2);
  a.add(t0, t0, s0);
  a.lw(t5, t0, 0);    // pivot
  a.addi(t6, s2, -1); // i
  a.mv(s7, s2);       // j
  a.label("part");
  a.bge(s7, s3, "part_done");
  a.slli(t0, s7, 2);
  a.add(t0, t0, s0);
  a.lw(t1, t0, 0);  // arr[j]
  a.bgtu(t1, t5, "no_swap");
  a.addi(t6, t6, 1);
  a.slli(t2, t6, 2);
  a.add(t2, t2, s0);
  a.lw(t3, t2, 0);  // arr[i]
  a.sw(t1, t2, 0);
  a.sw(t3, t0, 0);
  a.label("no_swap");
  a.addi(s7, s7, 1);
  a.j("part");
  a.label("part_done");
  a.addi(t6, t6, 1);  // p = i + 1
  a.slli(t0, t6, 2);
  a.add(t0, t0, s0);
  a.lw(t1, t0, 0);  // arr[p]
  a.slli(t2, s3, 2);
  a.add(t2, t2, s0);
  a.lw(t3, t2, 0);  // arr[hi]
  a.sw(t3, t0, 0);
  a.sw(t1, t2, 0);
  // push (lo, p-1) and (p+1, hi)
  a.sw(s2, s5, 0);
  a.addi(t0, t6, -1);
  a.sw(t0, s5, 4);
  a.addi(s5, s5, 8);
  a.addi(t0, t6, 1);
  a.sw(t0, s5, 0);
  a.sw(s3, s5, 4);
  a.addi(s5, s5, 8);
  a.j("qs_loop");

  // Verify ascending order and unchanged checksum.
  a.label("verify");
  a.li(s3, 0);   // i
  a.li(t4, 0);   // prev (unsigned min)
  a.li(s6, 0);   // checksum out
  a.label("verify_loop");
  a.bgeu(s3, s1, "verify_done");
  a.slli(t0, s3, 2);
  a.add(t0, t0, s0);
  a.lw(t1, t0, 0);
  a.bltu(t1, t4, "fail_order");
  a.mv(t4, t1);
  a.add(s6, s6, t1);
  a.addi(s3, s3, 1);
  a.j("verify_loop");
  a.label("verify_done");
  a.li(a0, 0);
  a.beq(s6, s4, "main_ret");
  a.li(a0, 2);  // checksum mismatch
  a.label("main_ret");
  a.ret();
  a.label("fail_order");
  a.li(a0, 1);  // not sorted
  a.ret();

  emit_stdlib(a);

  a.align(8);
  a.label("arr");
  a.zero_fill(4ull * n);
  a.label("qstack");
  a.zero_fill(8ull * (2 * n + 64));
  a.entry("_start");
  return a.assemble();
}

rvasm::Program make_spin() {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  a.li(t0, 0);
  a.label("loop");
  a.addi(t0, t0, 1);
  a.j("loop");
  // main never returns; the ret below is unreachable but keeps the symbol
  // shaped like every other benchmark for the static analyzer.
  a.ret();

  emit_stdlib(a);
  a.entry("_start");
  return a.assemble();
}

}  // namespace vpdift::fw
