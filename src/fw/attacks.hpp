// Wilander-Kamkar buffer-overflow attack suite, RISC-V port (Table I).
//
// Each applicable attack is a small firmware image with a deliberately
// vulnerable function. The attacker input (fed through the UART and thus
// classified LI by the code-injection policy) overflows a buffer to clobber
// a control datum — return address, function pointer (parameter or local) or
// longjmp buffer — either directly (contiguous overflow) or indirectly
// (overflow clobbers a pointer which is then used to write the target).
// Control eventually transfers to `attack_payload`, a function the policy
// classifies LI (the paper's stand-in for injected code): the instruction
// fetch unit's HI clearance then raises the violation.
//
// Non-applicable attacks (N/A in Table I) are structural consequences of the
// RISC-V port (register-passed parameters, no frame pointer, layout of the
// heap port) and carry an explanatory note instead of a program.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "rvasm/program.hpp"

namespace vpdift::fw {

struct AttackSpec {
  int id;                  // 1..18, row number in Table I
  const char* location;    // "Stack" or "Heap/BSS/Data"
  const char* target;      // clobbered control datum
  const char* technique;   // "Direct" or "Indirect"
  bool applicable;         // false => N/A row
  const char* note;        // reason for N/A ("" otherwise)
};

/// The 18 rows of Table I.
const std::array<AttackSpec, 18>& attack_specs();

struct AttackCase {
  AttackSpec spec;
  rvasm::Program program;
  std::string uart_input;  ///< attacker bytes to feed into the UART
};

/// Builds the firmware + attacker input for attack `id` (1..18).
/// Throws std::invalid_argument for N/A rows.
AttackCase make_attack(int id);

/// Code-reuse attack (paper §V-B2b: "an attacker might be able to ... inject
/// malicious code by re-using trusted code"). The overflow of attack #3
/// redirects the return address at an existing *trusted* (HI) function
/// `privileged_action` instead of injected code. The HI fetch clearance
/// cannot catch this — all executed code is trusted — but a branch clearance
/// does: the jump target itself is LI attacker data. `privileged_action`
/// writes marker 'P' and exits 43 when reached.
AttackCase make_code_reuse_attack();

}  // namespace vpdift::fw
