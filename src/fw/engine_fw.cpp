#include "fw/engine_fw.hpp"

#include "fw/hal.hpp"
#include "rvasm/assembler.hpp"
#include "soc/addrmap.hpp"
#include "soc/can.hpp"

namespace vpdift::fw {

using namespace rvasm::reg;
using rvasm::Assembler;

rvasm::Program make_engine_ecu_fw(const soc::AesKey& pin,
                                  std::uint32_t challenges) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  a.li(s0, 0);           // challenges completed
  a.li(s1, challenges);  // target
  a.li(s2, 0);           // failures
  a.li(s5, 0x1ee7c0de);  // challenge LCG state

  a.label("eng_loop");
  // 1. Generate the challenge into "chal" and straight into the CAN TX data.
  a.la(t6, "chal");
  a.li(t5, 8);
  a.li(t3, 1103515245);
  a.li(t4, 12345);
  a.label("eng_gen");
  a.mul(s5, s5, t3);
  a.add(s5, s5, t4);
  a.srli(t0, s5, 16);
  a.sb(t0, t6, 0);
  a.addi(t6, t6, 1);
  a.addi(t5, t5, -1);
  a.bnez(t5, "eng_gen");
  a.la(t0, "chal");
  a.li(t1, mmio::kCanTxData);
  a.li(t5, 8);
  a.label("eng_txcopy");
  a.lbu(t2, t0, 0);
  a.sb(t2, t1, 0);
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t5, t5, -1);
  a.bnez(t5, "eng_txcopy");
  // 2. Send (id = challenge, dlc 8).
  a.li(t0, mmio::kCanTxId);
  a.li(t1, soc::EngineEcu::kChallengeId);
  a.sw(t1, t0, 0);
  a.li(t0, mmio::kCanTxDlc);
  a.li(t1, 8);
  a.sw(t1, t0, 0);
  a.li(t0, mmio::kCanTxCtrl);
  a.li(t1, 1);
  a.sw(t1, t0, 0);
  // 3. Wait for the response frame.
  a.label("eng_wait");
  a.li(t0, mmio::kCanRxStatus);
  a.lw(t1, t0, 0);
  a.beqz(t1, "eng_wait");
  a.li(t0, mmio::kCanRxId);
  a.lw(t1, t0, 0);
  a.li(t2, soc::EngineEcu::kResponseId);
  a.beq(t1, t2, "eng_got_resp");
  a.li(t0, mmio::kCanRxPop);  // stray frame: drop and keep waiting
  a.li(t1, 1);
  a.sw(t1, t0, 0);
  a.j("eng_wait");
  a.label("eng_got_resp");
  // 4. Expected response: AES(pin, chal || 0) via the local AES engine.
  a.la(t0, "pin");
  a.li(t1, mmio::kAesKey);
  a.li(t5, 16);
  a.label("eng_keycopy");
  a.lbu(t2, t0, 0);
  a.sb(t2, t1, 0);
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t5, t5, -1);
  a.bnez(t5, "eng_keycopy");
  a.la(t0, "chal");
  a.li(t1, mmio::kAesInput);
  a.li(t5, 8);
  a.label("eng_incopy");
  a.lbu(t2, t0, 0);
  a.sb(t2, t1, 0);
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t5, t5, -1);
  a.bnez(t5, "eng_incopy");
  a.li(t5, 8);
  a.label("eng_pad");
  a.sb(zero, t1, 0);
  a.addi(t1, t1, 1);
  a.addi(t5, t5, -1);
  a.bnez(t5, "eng_pad");
  a.li(t0, mmio::kAesCtrl);
  a.li(t1, 1);
  a.sw(t1, t0, 0);
  a.label("eng_aeswait");
  a.li(t0, mmio::kAesStatus);
  a.lw(t1, t0, 0);
  a.beqz(t1, "eng_aeswait");
  // 5. Compare the first 8 ciphertext bytes with the response payload.
  a.li(t0, mmio::kAesOutput);
  a.li(t1, mmio::kCanRxData);
  a.li(t5, 8);
  a.li(t6, 0);  // mismatch flag
  a.label("eng_cmp");
  a.lbu(t2, t0, 0);
  a.lbu(t3, t1, 0);
  a.beq(t2, t3, "eng_cmp_next");
  a.li(t6, 1);
  a.label("eng_cmp_next");
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t5, t5, -1);
  a.bnez(t5, "eng_cmp");
  a.add(s2, s2, t6);
  a.li(t0, mmio::kCanRxPop);
  a.li(t1, 1);
  a.sw(t1, t0, 0);
  a.addi(s0, s0, 1);
  a.bltu(s0, s1, "eng_loop");
  a.mv(a0, s2);  // exit code = failed authentications
  a.ret();

  emit_stdlib(a);

  a.align(8);
  a.label("pin");
  a.bytes(pin.data(), pin.size());
  a.label("chal");
  a.zero_fill(8);
  a.entry("_start");
  return a.assemble();
}

}  // namespace vpdift::fw
