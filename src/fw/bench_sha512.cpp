// SHA-512 firmware for RV32IM.
//
// SHA-512 operates on 64-bit words; RV32 has none, so every 64-bit operation
// is synthesised over (lo, hi) register pairs: add64 is add + carry (sltu) +
// add, rotr64/shr64 split across the two halves. Working state and message
// schedule live in memory (not enough registers for eight 64-bit variables).
// This reproduces the paper's sha512 Table II workload faithfully — it is
// exactly the kind of code newlib's sha512 compiles to at -O0/-O1 on RV32.
#include <cassert>

#include "fw/benchmarks.hpp"
#include "fw/hal.hpp"
#include "fw/host_ref.hpp"
#include "rvasm/assembler.hpp"
#include "soc/addrmap.hpp"

namespace vpdift::fw {

using namespace rvasm::reg;
using rvasm::Assembler;
using rvasm::Reg;

namespace {

constexpr std::uint64_t kK512[80] = {
    0x428a2f98d728ae22ull, 0x7137449123ef65cdull, 0xb5c0fbcfec4d3b2full,
    0xe9b5dba58189dbbcull, 0x3956c25bf348b538ull, 0x59f111f1b605d019ull,
    0x923f82a4af194f9bull, 0xab1c5ed5da6d8118ull, 0xd807aa98a3030242ull,
    0x12835b0145706fbeull, 0x243185be4ee4b28cull, 0x550c7dc3d5ffb4e2ull,
    0x72be5d74f27b896full, 0x80deb1fe3b1696b1ull, 0x9bdc06a725c71235ull,
    0xc19bf174cf692694ull, 0xe49b69c19ef14ad2ull, 0xefbe4786384f25e3ull,
    0x0fc19dc68b8cd5b5ull, 0x240ca1cc77ac9c65ull, 0x2de92c6f592b0275ull,
    0x4a7484aa6ea6e483ull, 0x5cb0a9dcbd41fbd4ull, 0x76f988da831153b5ull,
    0x983e5152ee66dfabull, 0xa831c66d2db43210ull, 0xb00327c898fb213full,
    0xbf597fc7beef0ee4ull, 0xc6e00bf33da88fc2ull, 0xd5a79147930aa725ull,
    0x06ca6351e003826full, 0x142929670a0e6e70ull, 0x27b70a8546d22ffcull,
    0x2e1b21385c26c926ull, 0x4d2c6dfc5ac42aedull, 0x53380d139d95b3dfull,
    0x650a73548baf63deull, 0x766a0abb3c77b2a8ull, 0x81c2c92e47edaee6ull,
    0x92722c851482353bull, 0xa2bfe8a14cf10364ull, 0xa81a664bbc423001ull,
    0xc24b8b70d0f89791ull, 0xc76c51a30654be30ull, 0xd192e819d6ef5218ull,
    0xd69906245565a910ull, 0xf40e35855771202aull, 0x106aa07032bbd1b8ull,
    0x19a4c116b8d2d0c8ull, 0x1e376c085141ab53ull, 0x2748774cdf8eeb99ull,
    0x34b0bcb5e19b48a8ull, 0x391c0cb3c5c95a63ull, 0x4ed8aa4ae3418acbull,
    0x5b9cca4f7763e373ull, 0x682e6ff3d6b2b8a3ull, 0x748f82ee5defb2fcull,
    0x78a5636f43172f60ull, 0x84c87814a1f0ab72ull, 0x8cc702081a6439ecull,
    0x90befffa23631e28ull, 0xa4506cebde82bde9ull, 0xbef9a3f7b2c67915ull,
    0xc67178f2e372532bull, 0xca273eceea26619cull, 0xd186b8c721c0c207ull,
    0xeada7dd6cde0eb1eull, 0xf57d4f7fee6ed178ull, 0x06f067aa72176fbaull,
    0x0a637dc5a2c898a6ull, 0x113f9804bef90daeull, 0x1b710b35131c471bull,
    0x28db77f523047d84ull, 0x32caab7b40c72493ull, 0x3c9ebe0a15c9bebcull,
    0x431d67c49c100d4cull, 0x4cc5d4becb3e42b6ull, 0x597f299cfc657e2aull,
    0x5fcb6fab3ad6faecull, 0x6c44198c4a475817ull};

constexpr std::uint64_t kH512[8] = {
    0x6a09e667f3bcc908ull, 0xbb67ae8584caa73bull, 0x3c6ef372fe94f82bull,
    0xa54ff53a5f1d36f1ull, 0x510e527fade682d1ull, 0x9b05688c2b3e6c1full,
    0x1f83d9abfb41bd6bull, 0x5be0cd19137e2179ull};

/// A 64-bit value held as an RV32 register pair.
struct Pair {
  Reg lo, hi;
};

bool disjoint(Pair a, Pair b) {
  return a.lo != b.lo && a.lo != b.hi && a.hi != b.lo && a.hi != b.hi;
}
bool in_pair(Reg r, Pair p) { return r == p.lo || r == p.hi; }

void load64(Assembler& a, Pair d, Reg base, int off) {
  a.lw(d.lo, base, off);
  a.lw(d.hi, base, off + 4);
}

void store64(Assembler& a, Pair s, Reg base, int off) {
  a.sw(s.lo, base, off);
  a.sw(s.hi, base, off + 4);
}

void xor64(Assembler& a, Pair d, Pair x, Pair y) {
  assert(d.lo != x.hi && d.lo != y.hi);
  a.xor_(d.lo, x.lo, y.lo);
  a.xor_(d.hi, x.hi, y.hi);
}

void and64(Assembler& a, Pair d, Pair x, Pair y) {
  assert(d.lo != x.hi && d.lo != y.hi);
  a.and_(d.lo, x.lo, y.lo);
  a.and_(d.hi, x.hi, y.hi);
}

void not64(Assembler& a, Pair d, Pair s) {
  assert(d.lo != s.hi);
  a.xori(d.lo, s.lo, -1);
  a.xori(d.hi, s.hi, -1);
}

/// d = x + y with carry between the halves (carry computed in `tmp`).
void add64(Assembler& a, Pair d, Pair x, Pair y, Reg tmp) {
  assert(d.lo != y.lo && d.lo != x.hi && d.lo != y.hi);
  assert(tmp != d.hi && tmp != d.lo && !in_pair(tmp, x) && !in_pair(tmp, y));
  a.add(d.lo, x.lo, y.lo);
  a.sltu(tmp, d.lo, y.lo);  // carry iff the 32-bit sum wrapped
  a.add(d.hi, x.hi, y.hi);
  a.add(d.hi, d.hi, tmp);
}

/// d = s rotated right by n (1..63). d, s, tmp pairwise disjoint.
void rotr64(Assembler& a, Pair d, Pair s, unsigned n, Reg tmp) {
  assert(disjoint(d, s) && !in_pair(tmp, d) && !in_pair(tmp, s));
  if (n == 32) {
    a.mv(d.lo, s.hi);
    a.mv(d.hi, s.lo);
    return;
  }
  const Reg from_lo = n < 32 ? s.lo : s.hi;
  const Reg from_hi = n < 32 ? s.hi : s.lo;
  const unsigned m = n < 32 ? n : n - 32;
  a.srli(d.lo, from_lo, m);
  a.slli(tmp, from_hi, 32 - m);
  a.or_(d.lo, d.lo, tmp);
  a.srli(d.hi, from_hi, m);
  a.slli(tmp, from_lo, 32 - m);
  a.or_(d.hi, d.hi, tmp);
}

/// d = s >> n (logical, 1..31). d and s disjoint.
void shr64(Assembler& a, Pair d, Pair s, unsigned n) {
  assert(disjoint(d, s) && n > 0 && n < 32);
  a.srli(d.lo, s.lo, n);
  a.slli(d.hi, s.hi, 32 - n);  // bits crossing into the low half
  a.or_(d.lo, d.lo, d.hi);
  a.srli(d.hi, s.hi, n);
}

/// Loads 8 bytes at base+off (big-endian on the wire) into the (lo,hi) pair.
/// Clobbers `t` and `u`.
void load64_be(Assembler& a, Pair d, Reg base, int off, Reg t) {
  assert(!in_pair(t, d) && t != base && d.lo != base && d.hi != base);
  // hi = bytes [off..off+3], lo = bytes [off+4..off+7].
  a.lbu(d.hi, base, off);
  a.slli(d.hi, d.hi, 24);
  for (int b = 1; b < 4; ++b) {
    a.lbu(t, base, off + b);
    if (b < 3) a.slli(t, t, 8 * (3 - b));
    a.or_(d.hi, d.hi, t);
  }
  a.lbu(d.lo, base, off + 4);
  a.slli(d.lo, d.lo, 24);
  for (int b = 1; b < 4; ++b) {
    a.lbu(t, base, off + 4 + b);
    if (b < 3) a.slli(t, t, 8 * (3 - b));
    a.or_(d.lo, d.lo, t);
  }
}

/// Emits sha512_compress(a0 = 128-byte block). Leaf routine; clobbers
/// t0-t6, a1-a7, s2-s9. State layout: sha512_st / sha512_hstate hold eight
/// 64-bit words as (lo32, hi32) little-endian pairs, a..h at offsets 0..56.
void emit_compress(Assembler& a) {
  const Pair PA{t0, t1}, PB{t2, t3}, PC{t4, t5}, PD{a4, a5}, PX{s6, s7},
      ACC1{s2, s3}, ACC2{s4, s5}, PS{s8, s9};
  const Reg tmp = a3;

  a.label("sha512_compress");
  // Working copy: st = hstate.
  a.la(t6, "sha512_hstate");
  a.la(a2, "sha512_st");
  for (int j = 0; j < 16; ++j) {
    a.lw(t0, t6, 4 * j);
    a.sw(t0, a2, 4 * j);
  }

  // W[0..15]: big-endian 64-bit loads from the block.
  a.la(t6, "sha512_w");
  a.li(a1, 0);
  a.label("s512_wload");
  a.slli(t0, a1, 3);
  a.add(a2, a0, t0);
  load64_be(a, PB, a2, 0, t4);
  a.slli(t0, a1, 3);
  a.add(a2, t6, t0);
  store64(a, PB, a2, 0);
  a.addi(a1, a1, 1);
  a.li(t0, 16);
  a.bltu(a1, t0, "s512_wload");

  // Message-schedule extension: W[i] = s1(W[i-2]) + W[i-7] + s0(W[i-15]) + W[i-16].
  a.label("s512_wext");
  a.slli(t0, a1, 3);
  a.add(a2, t6, t0);       // &W[i]
  load64(a, PX, a2, -120);  // W[i-15]
  rotr64(a, PA, PX, 1, tmp);
  rotr64(a, PB, PX, 8, tmp);
  xor64(a, PA, PA, PB);
  shr64(a, PB, PX, 7);
  xor64(a, PA, PA, PB);    // sigma0
  load64(a, PX, a2, -16);  // W[i-2]
  rotr64(a, PB, PX, 19, tmp);
  rotr64(a, PC, PX, 61, tmp);
  xor64(a, PB, PB, PC);
  shr64(a, PC, PX, 6);
  xor64(a, PB, PB, PC);     // sigma1
  load64(a, PC, a2, -128);  // W[i-16]
  add64(a, PA, PA, PC, tmp);
  load64(a, PC, a2, -56);   // W[i-7]
  add64(a, PA, PA, PC, tmp);
  add64(a, PA, PA, PB, tmp);
  store64(a, PA, a2, 0);
  a.addi(a1, a1, 1);
  a.li(t0, 80);
  a.bltu(a1, t0, "s512_wext");

  // 80 rounds over the memory-resident state.
  a.la(t6, "sha512_st");
  a.li(a1, 0);
  a.label("s512_round");
  load64(a, PX, t6, 32);  // e
  rotr64(a, PA, PX, 14, tmp);
  rotr64(a, PB, PX, 18, tmp);
  xor64(a, PA, PA, PB);
  rotr64(a, PB, PX, 41, tmp);
  xor64(a, PA, PA, PB);   // S1(e)
  load64(a, PB, t6, 40);  // f
  and64(a, PB, PX, PB);   // e & f
  not64(a, PS, PX);       // ~e
  load64(a, PC, t6, 48);  // g
  and64(a, PS, PS, PC);
  xor64(a, PB, PB, PS);     // ch
  load64(a, ACC1, t6, 56);  // h
  add64(a, ACC1, ACC1, PA, tmp);
  add64(a, ACC1, ACC1, PB, tmp);
  a.slli(a2, a1, 3);
  a.la(t4, "sha512_k");
  a.add(t4, t4, a2);
  load64(a, PB, t4, 0);  // K[i]
  add64(a, ACC1, ACC1, PB, tmp);
  a.la(t4, "sha512_w");
  a.add(t4, t4, a2);
  load64(a, PB, t4, 0);  // W[i]
  add64(a, ACC1, ACC1, PB, tmp);  // t1 accumulator done

  load64(a, PX, t6, 0);  // a
  rotr64(a, PA, PX, 28, tmp);
  rotr64(a, PB, PX, 34, tmp);
  xor64(a, PA, PA, PB);
  rotr64(a, PB, PX, 39, tmp);
  xor64(a, PA, PA, PB);   // S0(a)
  load64(a, PB, t6, 8);   // b
  load64(a, PC, t6, 16);  // c
  and64(a, PS, PX, PB);   // a&b
  and64(a, PD, PX, PC);   // a&c
  xor64(a, PS, PS, PD);
  and64(a, PB, PB, PC);  // b&c
  xor64(a, PS, PS, PB);  // maj
  add64(a, ACC2, PA, PS, tmp);

  // State rotation: h=g, g=f, f=e (copy downwards, highest pair first).
  for (int src = 48; src >= 32; src -= 8)
    for (int word = 0; word < 8; word += 4) {
      a.lw(t0, t6, src + word);
      a.sw(t0, t6, src + 8 + word);
    }
  // e = d + t1
  load64(a, PA, t6, 24);
  add64(a, PA, PA, ACC1, tmp);
  store64(a, PA, t6, 32);
  // d=c, c=b, b=a
  for (int src = 16; src >= 0; src -= 8)
    for (int word = 0; word < 8; word += 4) {
      a.lw(t0, t6, src + word);
      a.sw(t0, t6, src + 8 + word);
    }
  // a = t1 + t2
  add64(a, PA, ACC1, ACC2, tmp);
  store64(a, PA, t6, 0);
  a.addi(a1, a1, 1);
  a.li(t0, 80);
  a.bltu(a1, t0, "s512_round");

  // hstate += st.
  a.la(a2, "sha512_hstate");
  for (int j = 0; j < 8; ++j) {
    load64(a, PA, a2, 8 * j);
    load64(a, PB, t6, 8 * j);
    add64(a, PA, PA, PB, tmp);
    store64(a, PA, a2, 8 * j);
  }
  a.ret();
}

/// Emits sha512(a0 = ptr, a1 = len, a2 = out[64]).
void emit_sha512_fn(Assembler& a) {
  a.label("sha512");
  a.addi(sp, sp, -32);
  a.sw(ra, sp, 28);
  a.sw(s0, sp, 24);
  a.sw(s1, sp, 20);
  a.sw(s10, sp, 16);
  a.sw(s11, sp, 12);
  a.mv(s0, a0);   // cursor
  a.mv(s1, a1);   // remaining
  a.mv(s10, a1);  // total length
  a.mv(s11, a2);  // out
  // hstate = H0.
  a.la(t0, "sha512_hstate");
  a.la(t1, "sha512_h0");
  for (int j = 0; j < 16; ++j) {
    a.lw(t2, t1, 4 * j);
    a.sw(t2, t0, 4 * j);
  }
  // Full 128-byte blocks.
  a.label("s512_full");
  a.li(t0, 128);
  a.bltu(s1, t0, "s512_pad");
  a.mv(a0, s0);
  a.call("sha512_compress");
  a.addi(s0, s0, 128);
  a.addi(s1, s1, -128);
  a.j("s512_full");
  // Padding into the 256-byte pad buffer.
  a.label("s512_pad");
  a.la(t0, "sha512_pad");
  for (int j = 0; j < 256; j += 4) a.sw(zero, t0, j);
  a.mv(t1, s0);
  a.mv(t2, s1);
  a.label("s512_pad.copy");
  a.beqz(t2, "s512_pad.copied");
  a.lbu(t3, t1, 0);
  a.sb(t3, t0, 0);
  a.addi(t0, t0, 1);
  a.addi(t1, t1, 1);
  a.addi(t2, t2, -1);
  a.j("s512_pad.copy");
  a.label("s512_pad.copied");
  a.li(t3, 0x80);
  a.sb(t3, t0, 0);  // t0 == pad + remainder
  // 128-bit big-endian bit length at the end of the final block; only the
  // low 64 bits are ever nonzero here. t1 = len*8 low, t2 = len >> 29.
  a.slli(t1, s10, 3);
  a.srli(t2, s10, 29);
  a.la(t0, "sha512_pad");
  a.li(t3, 112);
  a.bltu(s1, t3, "s512_pad.one");
  a.addi(t0, t0, 128);  // length lands in the second block
  a.label("s512_pad.one");
  for (int b = 0; b < 4; ++b) {
    a.srli(t4, t2, 24 - 8 * b);
    a.sb(t4, t0, 120 + b);
  }
  for (int b = 0; b < 4; ++b) {
    a.srli(t4, t1, 24 - 8 * b);
    a.sb(t4, t0, 124 + b);
  }
  a.la(a0, "sha512_pad");
  a.call("sha512_compress");
  a.li(t3, 112);
  a.bltu(s1, t3, "s512_out");
  a.la(a0, "sha512_pad");
  a.addi(a0, a0, 128);
  a.call("sha512_compress");
  // Output: big-endian bytes of the eight (lo,hi) state pairs.
  a.label("s512_out");
  a.la(t0, "sha512_hstate");
  for (int j = 0; j < 8; ++j) {
    a.lw(t1, t0, 8 * j);      // lo
    a.lw(t2, t0, 8 * j + 4);  // hi
    for (int b = 0; b < 4; ++b) {
      a.srli(t3, t2, 24 - 8 * b);
      a.sb(t3, s11, 8 * j + b);
    }
    for (int b = 0; b < 4; ++b) {
      a.srli(t3, t1, 24 - 8 * b);
      a.sb(t3, s11, 8 * j + 4 + b);
    }
  }
  a.lw(ra, sp, 28);
  a.lw(s0, sp, 24);
  a.lw(s1, sp, 20);
  a.lw(s10, sp, 16);
  a.lw(s11, sp, 12);
  a.addi(sp, sp, 32);
  a.ret();
}

}  // namespace

rvasm::Program make_sha512(std::uint32_t msg_len, std::uint32_t rounds) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  a.addi(sp, sp, -16);
  a.sw(ra, sp, 12);
  // Fill msg with LCG bytes (same generator as the sha256 workload).
  a.la(t5, "sha512_msg");
  a.li(t6, msg_len);
  a.li(t0, 0xdeadbeef);
  a.li(t3, 1103515245);
  a.li(t4, 12345);
  a.label("s512_msgfill");
  a.beqz(t6, "s512_msgdone");
  a.mul(t0, t0, t3);
  a.add(t0, t0, t4);
  a.srli(t1, t0, 16);
  a.sb(t1, t5, 0);
  a.addi(t5, t5, 1);
  a.addi(t6, t6, -1);
  a.j("s512_msgfill");
  a.label("s512_msgdone");
  a.la(a0, "sha512_msg");
  a.li(a1, msg_len);
  a.la(a2, "sha512_digest");
  a.call("sha512");
  a.li(s0, rounds > 0 ? rounds - 1 : 0);
  a.label("s512_chain");
  a.beqz(s0, "s512_chaindone");
  a.la(a0, "sha512_digest");
  a.li(a1, 64);
  a.la(a2, "sha512_digest");
  a.call("sha512");
  a.addi(s0, s0, -1);
  a.j("s512_chain");
  a.label("s512_chaindone");
  a.la(t0, "sha512_digest");
  a.lw(t1, t0, 0);
  a.li(t2, sha512_chain_word0(msg_len, rounds));
  a.li(a0, 0);
  a.beq(t1, t2, "s512_mainret");
  a.li(a0, 1);
  a.label("s512_mainret");
  a.lw(ra, sp, 12);
  a.addi(sp, sp, 16);
  a.ret();

  emit_sha512_fn(a);
  emit_compress(a);
  emit_stdlib(a);

  a.align(8);
  a.label("sha512_k");
  for (std::uint64_t k : kK512) {
    a.word(static_cast<std::uint32_t>(k));
    a.word(static_cast<std::uint32_t>(k >> 32));
  }
  a.label("sha512_h0");
  for (std::uint64_t h : kH512) {
    a.word(static_cast<std::uint32_t>(h));
    a.word(static_cast<std::uint32_t>(h >> 32));
  }
  a.label("sha512_hstate");
  a.zero_fill(64);
  a.label("sha512_st");
  a.zero_fill(64);
  a.label("sha512_w");
  a.zero_fill(640);
  a.label("sha512_pad");
  a.zero_fill(256);
  a.label("sha512_digest");
  a.zero_fill(64);
  a.label("sha512_msg");
  a.zero_fill(msg_len);
  a.entry("_start");
  return a.assemble();
}

}  // namespace vpdift::fw
