// Host-side reference computations mirroring the firmware benchmarks
// (used to embed expected results into the self-checking programs and to
// cross-check firmware behaviour in tests).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vpdift::fw {

/// Number of primes strictly below `limit`.
std::uint32_t count_primes(std::uint32_t limit);

/// The firmware LCG: x' = x * 1103515245 + 12345.
inline std::uint32_t lcg_next(std::uint32_t x) { return x * 1103515245u + 12345u; }

/// Checksum computed by the dhrystone-style firmware loop (host mirror).
std::uint32_t dhrystone_checksum(std::uint32_t iterations);

/// SHA-256 of `data`.
std::array<std::uint8_t, 32> sha256(const std::uint8_t* data, std::size_t len);

/// First digest word (little-endian load of bytes 0..3) after hashing an
/// LCG-filled `msg_len`-byte message and re-hashing the 32-byte digest
/// `rounds - 1` more times (host mirror of make_sha256's firmware).
std::uint32_t sha256_chain_word0(std::uint32_t msg_len, std::uint32_t rounds);

/// Chained CRC-32 (reflected, poly 0xedb88320) of an LCG-filled buffer,
/// iterated without re-seeding (host mirror of make_crc32's firmware).
std::uint32_t crc32_ref(std::uint32_t len, std::uint32_t iterations);

/// Wrap-around checksum of the n*n integer matrix product of two LCG-filled
/// matrices (host mirror of make_matmul's firmware).
std::uint32_t matmul_checksum(std::uint32_t n);

/// SHA-512 of `data`.
std::array<std::uint8_t, 64> sha512(const std::uint8_t* data, std::size_t len);

/// SHA-512 chain analogous to sha256_chain_word0 (64-byte digests re-hashed).
std::uint32_t sha512_chain_word0(std::uint32_t msg_len, std::uint32_t rounds);

}  // namespace vpdift::fw
