// Benchmark firmware, part 4: extra workloads beyond the paper's Table II
// set (CRC-32 and integer matrix multiply) — used to widen the overhead
// characterisation.
#include "fw/benchmarks.hpp"
#include "fw/hal.hpp"
#include "fw/host_ref.hpp"
#include "rvasm/assembler.hpp"
#include "soc/addrmap.hpp"

namespace vpdift::fw {

using namespace rvasm::reg;
using rvasm::Assembler;

rvasm::Program make_crc32(std::uint32_t len, std::uint32_t iterations) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  // Fill the buffer from the LCG.
  a.la(t5, "crc_buf");
  a.li(t6, len);
  a.li(t0, 0xbadc0de5);
  a.li(t3, 1103515245);
  a.li(t4, 12345);
  a.label("crc_fill");
  a.beqz(t6, "crc_filled");
  a.mul(t0, t0, t3);
  a.add(t0, t0, t4);
  a.srli(t1, t0, 16);
  a.sb(t1, t5, 0);
  a.addi(t5, t5, 1);
  a.addi(t6, t6, -1);
  a.j("crc_fill");
  a.label("crc_filled");

  // Chained CRC-32 (reflected, poly 0xedb88320), bit-at-a-time.
  a.li(s2, 0xffffffff);  // crc
  a.li(s3, iterations);
  a.li(s6, 0xedb88320);
  a.label("crc_iter");
  a.la(s4, "crc_buf");
  a.li(s5, len);
  a.label("crc_byte");
  a.lbu(t0, s4, 0);
  a.xor_(s2, s2, t0);
  for (int b = 0; b < 8; ++b) {
    // if (crc & 1) crc = (crc >> 1) ^ poly else crc >>= 1
    a.andi(t1, s2, 1);
    a.srli(s2, s2, 1);
    a.beqz(t1, "crc_nobit" + std::to_string(b) + "x");
    a.xor_(s2, s2, s6);
    a.label("crc_nobit" + std::to_string(b) + "x");
  }
  a.addi(s4, s4, 1);
  a.addi(s5, s5, -1);
  a.bnez(s5, "crc_byte");
  a.addi(s3, s3, -1);
  a.bnez(s3, "crc_iter");
  a.xori(s2, s2, -1);  // final inversion

  a.li(t0, crc32_ref(len, iterations));
  a.li(a0, 0);
  a.beq(s2, t0, "crc_ret");
  a.li(a0, 1);
  a.label("crc_ret");
  a.ret();

  emit_stdlib(a);
  a.align(8);
  a.label("crc_buf");
  a.zero_fill(len);
  a.entry("_start");
  return a.assemble();
}

namespace {
// Unique labels per loop nest are required (one global label namespace).
}  // namespace

rvasm::Program make_matmul(std::uint32_t n) {
  Assembler a(soc::addrmap::kRamBase);
  emit_crt0(a);

  a.label("main");
  // Fill A and B with LCG words.
  a.li(t0, 0x600df00d);
  a.li(t3, 1103515245);
  a.li(t4, 12345);
  for (const char* mat : {"mat_a", "mat_b"}) {
    const std::string m = mat;
    a.la(t5, m);
    a.li(t6, n * n);
    a.label(m + "_fill");
    a.mul(t0, t0, t3);
    a.add(t0, t0, t4);
    a.sw(t0, t5, 0);
    a.addi(t5, t5, 4);
    a.addi(t6, t6, -1);
    a.bnez(t6, m + "_fill");
  }

  // checksum = sum over i,j of (A row i) dot (B col j); 32-bit wrap-around.
  a.li(s2, 0);  // checksum
  a.li(s3, 0);  // i
  a.label("mm_i");
  a.li(s4, 0);  // j
  a.label("mm_j");
  a.li(s5, 0);  // k
  a.li(s6, 0);  // acc
  // s7 = &A[i*n], recomputed per (i): A + i*n*4
  a.li(t0, n * 4);
  a.mul(t1, s3, t0);
  a.la(s7, "mat_a");
  a.add(s7, s7, t1);
  // s8 = &B[j], stride n*4
  a.slli(t1, s4, 2);
  a.la(s8, "mat_b");
  a.add(s8, s8, t1);
  a.label("mm_k");
  a.lw(t1, s7, 0);
  a.lw(t2, s8, 0);
  a.mul(t1, t1, t2);
  a.add(s6, s6, t1);
  a.addi(s7, s7, 4);
  a.li(t0, n * 4);
  a.add(s8, s8, t0);
  a.addi(s5, s5, 1);
  a.li(t0, n);
  a.bltu(s5, t0, "mm_k");
  a.add(s2, s2, s6);
  a.addi(s4, s4, 1);
  a.li(t0, n);
  a.bltu(s4, t0, "mm_j");
  a.addi(s3, s3, 1);
  a.bltu(s3, t0, "mm_i");

  a.li(t0, matmul_checksum(n));
  a.li(a0, 0);
  a.beq(s2, t0, "mm_ret");
  a.li(a0, 1);
  a.label("mm_ret");
  a.ret();

  emit_stdlib(a);
  a.align(8);
  a.label("mat_a");
  a.zero_fill(4ull * n * n);
  a.label("mat_b");
  a.zero_fill(4ull * n * n);
  a.entry("_start");
  return a.assemble();
}

}  // namespace vpdift::fw
