#include "fw/host_ref.hpp"

#include <cstring>

namespace vpdift::fw {

std::uint32_t count_primes(std::uint32_t limit) {
  std::uint32_t count = 0;
  for (std::uint32_t c = 2; c < limit; ++c) {
    bool prime = true;
    for (std::uint32_t d = 2; d * d <= c; ++d)
      if (c % d == 0) { prime = false; break; }
    if (prime) ++count;
  }
  return count;
}

std::uint32_t dhrystone_checksum(std::uint32_t iterations) {
  // Mirrors the firmware loop in make_dhrystone() exactly (same ops, same
  // order, 32-bit wrap-around arithmetic).
  std::uint32_t int1 = 2, int2 = 3, chk = 0;
  const char src[16 + 1] = "DHRYSTONE-VPDIFT";
  char dst[17] = {};
  for (std::uint32_t i = 0; i < iterations; ++i) {
    // proc_1: arithmetic on "record" fields.
    int1 = int1 * 5 + int2;
    int2 = int2 + (int1 >> 3);
    // string copy + compare (strcmp-style loop over 16 bytes).
    std::memcpy(dst, src, 16);
    std::uint32_t equal = 1;
    for (int k = 0; k < 16; ++k)
      if (dst[k] != src[k]) { equal = 0; break; }
    // proc_2: conditional chain.
    std::uint32_t sel = (int1 ^ i) & 3;
    if (sel == 0) chk += int1;
    else if (sel == 1) chk ^= int2;
    else if (sel == 2) chk += i;
    else chk ^= (int1 + int2);
    chk += equal;
  }
  return chk;
}

namespace {

constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

void sha256_block(std::uint32_t h[8], const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i)
    w[i] = (std::uint32_t(block[4 * i]) << 24) | (std::uint32_t(block[4 * i + 1]) << 16) |
           (std::uint32_t(block[4 * i + 2]) << 8) | block[4 * i + 3];
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4], f = h[5],
                g = h[6], hh = h[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = hh + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    hh = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  h[0] += a; h[1] += b; h[2] += c; h[3] += d;
  h[4] += e; h[5] += f; h[6] += g; h[7] += hh;
}

}  // namespace

std::array<std::uint8_t, 32> sha256(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  std::vector<std::uint8_t> msg(data, data + len);
  msg.push_back(0x80);
  while (msg.size() % 64 != 56) msg.push_back(0);
  const std::uint64_t bits = std::uint64_t(len) * 8;
  for (int i = 7; i >= 0; --i) msg.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  for (std::size_t off = 0; off < msg.size(); off += 64) sha256_block(h, msg.data() + off);
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(h[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h[i]);
  }
  return out;
}

std::uint32_t sha256_chain_word0(std::uint32_t msg_len, std::uint32_t rounds) {
  std::vector<std::uint8_t> msg(msg_len);
  std::uint32_t x = 0xdeadbeef;
  for (auto& b : msg) {
    x = lcg_next(x);
    b = static_cast<std::uint8_t>(x >> 16);
  }
  auto digest = sha256(msg.data(), msg.size());
  for (std::uint32_t r = 1; r < rounds; ++r)
    digest = sha256(digest.data(), digest.size());
  return std::uint32_t(digest[0]) | (std::uint32_t(digest[1]) << 8) |
         (std::uint32_t(digest[2]) << 16) | (std::uint32_t(digest[3]) << 24);
}


namespace {

constexpr std::uint64_t kSha512K[80] = {
    0x428a2f98d728ae22ull, 0x7137449123ef65cdull, 0xb5c0fbcfec4d3b2full,
    0xe9b5dba58189dbbcull, 0x3956c25bf348b538ull, 0x59f111f1b605d019ull,
    0x923f82a4af194f9bull, 0xab1c5ed5da6d8118ull, 0xd807aa98a3030242ull,
    0x12835b0145706fbeull, 0x243185be4ee4b28cull, 0x550c7dc3d5ffb4e2ull,
    0x72be5d74f27b896full, 0x80deb1fe3b1696b1ull, 0x9bdc06a725c71235ull,
    0xc19bf174cf692694ull, 0xe49b69c19ef14ad2ull, 0xefbe4786384f25e3ull,
    0x0fc19dc68b8cd5b5ull, 0x240ca1cc77ac9c65ull, 0x2de92c6f592b0275ull,
    0x4a7484aa6ea6e483ull, 0x5cb0a9dcbd41fbd4ull, 0x76f988da831153b5ull,
    0x983e5152ee66dfabull, 0xa831c66d2db43210ull, 0xb00327c898fb213full,
    0xbf597fc7beef0ee4ull, 0xc6e00bf33da88fc2ull, 0xd5a79147930aa725ull,
    0x06ca6351e003826full, 0x142929670a0e6e70ull, 0x27b70a8546d22ffcull,
    0x2e1b21385c26c926ull, 0x4d2c6dfc5ac42aedull, 0x53380d139d95b3dfull,
    0x650a73548baf63deull, 0x766a0abb3c77b2a8ull, 0x81c2c92e47edaee6ull,
    0x92722c851482353bull, 0xa2bfe8a14cf10364ull, 0xa81a664bbc423001ull,
    0xc24b8b70d0f89791ull, 0xc76c51a30654be30ull, 0xd192e819d6ef5218ull,
    0xd69906245565a910ull, 0xf40e35855771202aull, 0x106aa07032bbd1b8ull,
    0x19a4c116b8d2d0c8ull, 0x1e376c085141ab53ull, 0x2748774cdf8eeb99ull,
    0x34b0bcb5e19b48a8ull, 0x391c0cb3c5c95a63ull, 0x4ed8aa4ae3418acbull,
    0x5b9cca4f7763e373ull, 0x682e6ff3d6b2b8a3ull, 0x748f82ee5defb2fcull,
    0x78a5636f43172f60ull, 0x84c87814a1f0ab72ull, 0x8cc702081a6439ecull,
    0x90befffa23631e28ull, 0xa4506cebde82bde9ull, 0xbef9a3f7b2c67915ull,
    0xc67178f2e372532bull, 0xca273eceea26619cull, 0xd186b8c721c0c207ull,
    0xeada7dd6cde0eb1eull, 0xf57d4f7fee6ed178ull, 0x06f067aa72176fbaull,
    0x0a637dc5a2c898a6ull, 0x113f9804bef90daeull, 0x1b710b35131c471bull,
    0x28db77f523047d84ull, 0x32caab7b40c72493ull, 0x3c9ebe0a15c9bebcull,
    0x431d67c49c100d4cull, 0x4cc5d4becb3e42b6ull, 0x597f299cfc657e2aull,
    0x5fcb6fab3ad6faecull, 0x6c44198c4a475817ull};

std::uint64_t rotr64(std::uint64_t x, int n) { return (x >> n) | (x << (64 - n)); }

void sha512_block(std::uint64_t h[8], const std::uint8_t* block) {
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | block[8 * i + b];
    w[i] = v;
  }
  for (int i = 16; i < 80; ++i) {
    const std::uint64_t s0 =
        rotr64(w[i - 15], 1) ^ rotr64(w[i - 15], 8) ^ (w[i - 15] >> 7);
    const std::uint64_t s1 =
        rotr64(w[i - 2], 19) ^ rotr64(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint64_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4], f = h[5],
                g = h[6], hh = h[7];
  for (int i = 0; i < 80; ++i) {
    const std::uint64_t s1 = rotr64(e, 14) ^ rotr64(e, 18) ^ rotr64(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = hh + s1 + ch + kSha512K[i] + w[i];
    const std::uint64_t s0 = rotr64(a, 28) ^ rotr64(a, 34) ^ rotr64(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = s0 + maj;
    hh = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  h[0] += a; h[1] += b; h[2] += c; h[3] += d;
  h[4] += e; h[5] += f; h[6] += g; h[7] += hh;
}

}  // namespace

std::array<std::uint8_t, 64> sha512(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h[8] = {0x6a09e667f3bcc908ull, 0xbb67ae8584caa73bull,
                        0x3c6ef372fe94f82bull, 0xa54ff53a5f1d36f1ull,
                        0x510e527fade682d1ull, 0x9b05688c2b3e6c1full,
                        0x1f83d9abfb41bd6bull, 0x5be0cd19137e2179ull};
  std::vector<std::uint8_t> msg(data, data + len);
  msg.push_back(0x80);
  while (msg.size() % 128 != 112) msg.push_back(0);
  const std::uint64_t bits = std::uint64_t(len) * 8;
  for (int i = 0; i < 8; ++i) msg.push_back(0);  // length high 64 bits
  for (int i = 7; i >= 0; --i) msg.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  for (std::size_t off = 0; off < msg.size(); off += 128)
    sha512_block(h, msg.data() + off);
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 8; ++i)
    for (int b = 0; b < 8; ++b)
      out[8 * i + b] = static_cast<std::uint8_t>(h[i] >> (8 * (7 - b)));
  return out;
}

std::uint32_t sha512_chain_word0(std::uint32_t msg_len, std::uint32_t rounds) {
  std::vector<std::uint8_t> msg(msg_len);
  std::uint32_t x = 0xdeadbeef;
  for (auto& b : msg) {
    x = lcg_next(x);
    b = static_cast<std::uint8_t>(x >> 16);
  }
  auto digest = sha512(msg.data(), msg.size());
  for (std::uint32_t r = 1; r < rounds; ++r)
    digest = sha512(digest.data(), digest.size());
  return std::uint32_t(digest[0]) | (std::uint32_t(digest[1]) << 8) |
         (std::uint32_t(digest[2]) << 16) | (std::uint32_t(digest[3]) << 24);
}


std::uint32_t crc32_ref(std::uint32_t len, std::uint32_t iterations) {
  std::vector<std::uint8_t> buf(len);
  std::uint32_t x = 0xbadc0de5;
  for (auto& b : buf) {
    x = lcg_next(x);
    b = static_cast<std::uint8_t>(x >> 16);
  }
  std::uint32_t crc = 0xffffffffu;
  for (std::uint32_t it = 0; it < iterations; ++it)
    for (std::uint8_t b : buf) {
      crc ^= b;
      for (int k = 0; k < 8; ++k) {
        const bool lsb = crc & 1;
        crc >>= 1;
        if (lsb) crc ^= 0xedb88320u;
      }
    }
  return crc ^ 0xffffffffu;
}

std::uint32_t matmul_checksum(std::uint32_t n) {
  std::vector<std::uint32_t> a(n * n), b(n * n);
  std::uint32_t x = 0x600df00d;
  for (auto& v : a) { x = lcg_next(x); v = x; }
  for (auto& v : b) { x = lcg_next(x); v = x; }
  std::uint32_t chk = 0;
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = 0; j < n; ++j) {
      std::uint32_t acc = 0;
      for (std::uint32_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      chk += acc;
    }
  return chk;
}

}  // namespace vpdift::fw
