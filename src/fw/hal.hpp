// Firmware-side hardware abstraction layer.
//
// All firmware in this repo is authored with the rvasm DSL (no offline
// cross-compiler exists in this environment). This header provides the MMIO
// map as the firmware sees it and emitters for the common runtime: crt0,
// UART console routines, and the exit path.
//
// Conventions:
//   * programs start at label "_start" (RAM base), define "main",
//   * stdlib routines clobber only t0-t2 and their argument registers,
//   * exit code is main's a0, written to the SYSCTRL EXIT register.
#pragma once

#include <cstdint>

#include "rvasm/assembler.hpp"
#include "soc/addrmap.hpp"

namespace vpdift::fw {

namespace mmio {
inline constexpr std::uint32_t kUartTx = soc::addrmap::kUartBase + 0x00;
inline constexpr std::uint32_t kUartRx = soc::addrmap::kUartBase + 0x04;
inline constexpr std::uint32_t kUartStatus = soc::addrmap::kUartBase + 0x08;
inline constexpr std::uint32_t kUartIe = soc::addrmap::kUartBase + 0x0c;
inline constexpr std::uint32_t kSysExit = soc::addrmap::kSysCtrlBase + 0x00;
inline constexpr std::uint32_t kSysMark = soc::addrmap::kSysCtrlBase + 0x04;
inline constexpr std::uint32_t kSensorFrame = soc::addrmap::kSensorBase + 0x00;
inline constexpr std::uint32_t kSensorTag = soc::addrmap::kSensorBase + 0x40;
inline constexpr std::uint32_t kAesKey = soc::addrmap::kAesBase + 0x00;
inline constexpr std::uint32_t kAesInput = soc::addrmap::kAesBase + 0x10;
inline constexpr std::uint32_t kAesOutput = soc::addrmap::kAesBase + 0x20;
inline constexpr std::uint32_t kAesCtrl = soc::addrmap::kAesBase + 0x30;
inline constexpr std::uint32_t kAesStatus = soc::addrmap::kAesBase + 0x34;
inline constexpr std::uint32_t kCanTxId = soc::addrmap::kCanBase + 0x00;
inline constexpr std::uint32_t kCanTxDlc = soc::addrmap::kCanBase + 0x04;
inline constexpr std::uint32_t kCanTxData = soc::addrmap::kCanBase + 0x08;
inline constexpr std::uint32_t kCanTxCtrl = soc::addrmap::kCanBase + 0x10;
inline constexpr std::uint32_t kCanRxId = soc::addrmap::kCanBase + 0x14;
inline constexpr std::uint32_t kCanRxDlc = soc::addrmap::kCanBase + 0x18;
inline constexpr std::uint32_t kCanRxData = soc::addrmap::kCanBase + 0x1c;
inline constexpr std::uint32_t kCanRxStatus = soc::addrmap::kCanBase + 0x24;
inline constexpr std::uint32_t kCanRxPop = soc::addrmap::kCanBase + 0x28;
inline constexpr std::uint32_t kCanIe = soc::addrmap::kCanBase + 0x2c;
inline constexpr std::uint32_t kDmaSrc = soc::addrmap::kDmaBase + 0x00;
inline constexpr std::uint32_t kDmaDst = soc::addrmap::kDmaBase + 0x04;
inline constexpr std::uint32_t kDmaLen = soc::addrmap::kDmaBase + 0x08;
inline constexpr std::uint32_t kDmaCtrl = soc::addrmap::kDmaBase + 0x0c;
inline constexpr std::uint32_t kDmaStatus = soc::addrmap::kDmaBase + 0x10;
inline constexpr std::uint32_t kClintMsip = soc::addrmap::kClintBase + 0x0000;
inline constexpr std::uint32_t kClintMtimecmp = soc::addrmap::kClintBase + 0x4000;
inline constexpr std::uint32_t kClintMtime = soc::addrmap::kClintBase + 0xbff8;
inline constexpr std::uint32_t kPlicPending = soc::addrmap::kPlicBase + 0x00;
inline constexpr std::uint32_t kPlicEnable = soc::addrmap::kPlicBase + 0x04;
inline constexpr std::uint32_t kPlicClaim = soc::addrmap::kPlicBase + 0x08;
}  // namespace mmio

/// Default top-of-RAM used for the initial stack pointer (4 MiB RAM).
inline constexpr std::uint32_t kDefaultStackTop = 0x80000000u + (4u << 20);

/// Emits `_start`: stack setup, default trap vector, call main, exit(a0).
/// Must be the first thing in the image (execution starts at RAM base).
void emit_crt0(rvasm::Assembler& a, std::uint32_t stack_top = kDefaultStackTop);

/// Emits the runtime library used by the firmware in this repo:
///   uart_putc(a0)           print one byte
///   uart_puts(a0)           print a NUL-terminated string
///   uart_getc() -> a0       blocking read of one byte
///   uart_read_n(a0,a1)      read a1 bytes into buffer a0 (blocking)
///   print_hex32(a0)         print 8 hex digits
///   exit(a0)                terminate the simulation (noreturn)
///   _default_trap           marks 'T' and exits with code 0xff
void emit_stdlib(rvasm::Assembler& a);

}  // namespace vpdift::fw
