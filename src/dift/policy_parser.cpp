#include "dift/policy_parser.hpp"

#include <optional>
#include <sstream>
#include <vector>

namespace vpdift::dift {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // comment
    if (tok == "->") continue; // decorative arrow
    out.push_back(tok);
  }
  return out;
}

std::uint64_t parse_address(const std::string& tok, std::size_t line,
                            const std::map<std::string, std::uint64_t>* symbols) {
  if (!tok.empty() && tok[0] == '$') {
    std::string name = tok.substr(1);
    std::uint64_t offset = 0;
    if (const auto plus = name.find('+'); plus != std::string::npos) {
      offset = std::stoull(name.substr(plus + 1), nullptr, 0);
      name = name.substr(0, plus);
    }
    if (!symbols)
      throw PolicyParseError(line, "symbol reference '" + tok +
                                       "' but no symbol table provided");
    const auto it = symbols->find(name);
    if (it == symbols->end())
      throw PolicyParseError(line, "unknown symbol: " + name);
    return it->second + offset;
  }
  try {
    return std::stoull(tok, nullptr, 0);
  } catch (const std::exception&) {
    throw PolicyParseError(line, "bad address: " + tok);
  }
}

}  // namespace

PolicySpec PolicySpec::parse(std::string_view text,
                             const std::map<std::string, std::uint64_t>* symbols) {
  PolicySpec spec;
  Lattice::Builder builder;
  std::map<std::string, Tag> classes;
  bool lattice_frozen = false;

  auto freeze = [&](std::size_t line) {
    if (lattice_frozen) return;
    try {
      spec.lattice_ = std::make_unique<Lattice>(builder.build());
    } catch (const LatticeError& e) {
      throw PolicyParseError(line, e.what());
    }
    spec.policy_ = std::make_unique<SecurityPolicy>(*spec.lattice_);
    lattice_frozen = true;
  };
  auto tag_of = [&](const std::string& name, std::size_t line) -> Tag {
    const auto it = classes.find(name);
    if (it == classes.end())
      throw PolicyParseError(line, "unknown security class: " + name);
    return it->second;
  };
  auto want = [&](const std::vector<std::string>& t, std::size_t n,
                  std::size_t line, const char* usage) {
    if (t.size() != n) throw PolicyParseError(line, std::string("usage: ") + usage);
  };

  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t lineno = 0;
  ExecutionClearance exec;
  bool exec_touched = false;

  while (std::getline(in, raw)) {
    ++lineno;
    const auto t = tokenize(raw);
    if (t.empty()) continue;
    const std::string& cmd = t[0];

    if (cmd == "class") {
      if (lattice_frozen)
        throw PolicyParseError(lineno, "lattice lines must precede policy lines");
      want(t, 2, lineno, "class NAME");
      try {
        classes[t[1]] = builder.add_class(t[1]);
      } catch (const LatticeError& e) {
        throw PolicyParseError(lineno, e.what());
      }
    } else if (cmd == "flow" || cmd == "declass") {
      if (lattice_frozen)
        throw PolicyParseError(lineno, "lattice lines must precede policy lines");
      want(t, 3, lineno, "flow|declass FROM -> TO");
      const Tag from = tag_of(t[1], lineno), to = tag_of(t[2], lineno);
      if (cmd == "flow") builder.add_flow(from, to);
      else builder.add_declass(from, to);
    } else if (cmd == "classify") {
      freeze(lineno);
      if (t.size() == 5 && t[1] == "memory") {
        const auto base = parse_address(t[2], lineno, symbols);
        const auto size = parse_address(t[3], lineno, symbols);
        spec.policy_->classify_memory(base, size, tag_of(t[4], lineno));
      } else if (t.size() == 4 && t[1] == "input") {
        spec.policy_->classify_input(t[2], tag_of(t[3], lineno));
      } else {
        throw PolicyParseError(
            lineno, "usage: classify memory ADDR SIZE CLASS | classify input DEV CLASS");
      }
    } else if (cmd == "clear") {
      freeze(lineno);
      want(t, 4, lineno, "clear output|unit DEVICE CLASS");
      if (t[1] == "output") spec.policy_->clear_output(t[2], tag_of(t[3], lineno));
      else if (t[1] == "unit") spec.policy_->clear_unit(t[2], tag_of(t[3], lineno));
      else throw PolicyParseError(lineno, "clear expects 'output' or 'unit'");
    } else if (cmd == "declassify") {
      freeze(lineno);
      want(t, 3, lineno, "declassify DEVICE CLASS");
      spec.policy_->declassify_output(t[1], tag_of(t[2], lineno));
    } else if (cmd == "exec") {
      freeze(lineno);
      want(t, 3, lineno, "exec fetch|branch|memaddr CLASS");
      const Tag tag = tag_of(t[2], lineno);
      if (t[1] == "fetch") exec.fetch = tag;
      else if (t[1] == "branch") exec.branch = tag;
      else if (t[1] == "memaddr") exec.mem_addr = tag;
      else throw PolicyParseError(lineno, "exec expects fetch|branch|memaddr");
      exec_touched = true;
    } else if (cmd == "protect") {
      freeze(lineno);
      want(t, 4, lineno, "protect ADDR SIZE CLASS");
      const auto base = parse_address(t[1], lineno, symbols);
      const auto size = parse_address(t[2], lineno, symbols);
      spec.policy_->protect_store(base, size, tag_of(t[3], lineno));
    } else {
      throw PolicyParseError(lineno, "unknown directive: " + cmd);
    }
  }

  freeze(lineno);  // lattice-only specs are valid too
  if (exec_touched) spec.policy_->set_execution_clearance(exec);
  return spec;
}

}  // namespace vpdift::dift
