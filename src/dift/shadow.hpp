// Shadow-tag summary layer.
//
// Per-byte tag planes make every load/fetch pay a per-byte LUB loop, yet in
// all of the paper's Table II workloads the overwhelming majority of memory
// is uniformly unclassified (kBottomTag) — and classified regions (a PIN, a
// key schedule) are themselves uniform within a block. Low-overhead DIFT
// designs exploit exactly this by coarsening the shadow granularity when
// tags are homogeneous (PAGURUS; hardware-assisted ARM DIFT). ShadowSummary
// partitions a tag plane into fixed 64-byte blocks, each carrying a 16-bit
// summary: the block's single tag when every byte agrees, or kMixed. Readers
// (the core's DMI load/fetch paths, Memory::transport, the DMA burst loop)
// consult the summary first and skip the per-byte loop on uniform blocks;
// writers keep the summary coherent on every tag-plane store.
//
// Coherence contract: every write to the attached tag plane MUST be followed
// by on_store()/on_store_bytes() over the written range (or rebuild() after
// a bulk restore). The summary is conservative — kMixed is always safe — but
// a uniform summary must never disagree with the plane.
//
// A generation counter bumps on every summary change; the core memoises
// "this fetch block is uniform and cleared for execution" against it, which
// reduces the per-instruction fetch-clearance check to four compares.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dift/tag.hpp"

namespace vpdift::dift {

class ShadowSummary {
 public:
  static constexpr std::size_t kBlockShift = 6;  ///< 64-byte blocks
  static constexpr std::size_t kBlockBytes = std::size_t(1) << kBlockShift;
  /// Block summary sentinel: bytes of the block carry differing tags.
  static constexpr std::uint16_t kMixed = 0x8000;

  ShadowSummary() = default;

  /// Attaches to (and scans) a tag plane. Pass nullptr to detach.
  void attach(Tag* tags, std::size_t size);
  bool attached() const { return tags_ != nullptr; }

  std::size_t block_count() const { return blocks_.size(); }
  std::uint16_t block_summary(std::size_t block) const { return blocks_[block]; }
  std::uint64_t generation() const { return generation_; }

  /// Number of blocks whose summary is not uniformly kBottomTag (kMixed
  /// counts: a mixed block necessarily holds a non-bottom byte). Maintained
  /// incrementally by set_block, so all_bottom() is an O(1) exact answer —
  /// the core's taint-liveness gate dispatches block variants on it.
  std::size_t live_blocks() const { return live_blocks_; }
  /// True iff the whole attached plane is uniformly kBottomTag.
  bool all_bottom() const { return live_blocks_ == 0; }

  /// True iff every byte of [off, off+len) lies in blocks summarised as one
  /// identical tag; that tag is written to *out. O(1) per touched block —
  /// the caller skips its per-byte LUB loop on success. Bounds are the
  /// caller's responsibility (off+len <= attached size, len >= 1).
  bool uniform(std::size_t off, std::size_t len, Tag* out) const {
    if (len == 0) return false;
    const std::size_t b0 = off >> kBlockShift;
    const std::uint16_t s = blocks_[b0];
    if (s == kMixed) return false;
    const std::size_t b1 = (off + len - 1) >> kBlockShift;
    for (std::size_t b = b0 + 1; b <= b1; ++b)
      if (blocks_[b] != s) return false;
    *out = static_cast<Tag>(s);
    return true;
  }

  /// Tag-plane store of `len` bytes, all carrying `tag`, at [off, off+len).
  /// Call after writing the plane. Uniform-into-matching-block (the common
  /// case: unclassified data over unclassified memory) costs one compare per
  /// block; a full-block overwrite re-uniforms a mixed block; a partial
  /// store with a differing tag marks the block mixed.
  void on_store(std::size_t off, std::size_t len, Tag tag) {
    if (!tags_ || len == 0) return;
    const std::size_t b0 = off >> kBlockShift;
    const std::size_t b1 = (off + len - 1) >> kBlockShift;
    for (std::size_t b = b0; b <= b1; ++b) {
      if (blocks_[b] == tag) continue;
      const std::size_t base = b << kBlockShift;
      const std::size_t bend = std::min(base + kBlockBytes, size_);
      if (off <= base && off + len >= bend)
        set_block(b, tag);  // full overwrite: re-uniform
      else
        set_block(b, kMixed);
    }
  }

  /// Classification is a uniform fill of the plane.
  void on_classify(std::size_t off, std::size_t len, Tag tag) {
    on_store(off, len, tag);
  }

  /// Tag-plane store whose bytes may carry differing tags (already written
  /// to the plane at [off, off+len)). Scans only the written run per block.
  void on_store_bytes(std::size_t off, std::size_t len);

  /// Rescans the whole plane (e.g. after a snapshot restore memcpy'd it).
  void rebuild();

  /// Rescans one block; returns its new summary. Used by rebuild() and by
  /// tests asserting the summary/plane coherence invariant.
  std::uint16_t rescan_block(std::size_t block);

 private:
  void set_block(std::size_t b, std::uint16_t s) {
    const std::uint16_t old = blocks_[b];
    if (old != s) {
      live_blocks_ += std::size_t(s != 0) - std::size_t(old != 0);
      blocks_[b] = s;
      ++generation_;
    }
  }

  Tag* tags_ = nullptr;
  std::size_t size_ = 0;
  std::vector<std::uint16_t> blocks_;
  std::uint64_t generation_ = 0;
  std::size_t live_blocks_ = 0;
};

}  // namespace vpdift::dift
