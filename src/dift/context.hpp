// Active DIFT engine context.
//
// Taint<T> operators need the active IFP to combine tags (LUB) and to check
// flows. Because they run on the simulation's hottest path (every executed
// instruction of the VP+), the active lattice's dense tables are exposed
// through module-level pointers consulted by the inline free functions
// lub()/allowed_flow() below. A DiftContext is a RAII scope that installs a
// lattice as the active one (contexts nest; the previous one is restored).
//
// Each simulation is single-threaded (like a SystemC kernel), but several
// independent simulations may run concurrently on different threads (the
// campaign runner does exactly that), so the active tables are thread_local:
// every thread carries its own active-IFP slot, and a VP is *thread-confined*
// — all calls into one VirtualPrototype must come from the thread that runs
// its simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dift/lattice.hpp"
#include "dift/tag.hpp"
#include "dift/violation.hpp"

namespace vpdift::dift {

namespace detail {
struct ActiveTables {
  const Tag* lub = nullptr;
  const std::uint8_t* flow = nullptr;
  std::size_t n = 0;
  std::uint64_t lub_calls = 0;
  std::uint64_t flow_checks = 0;
  std::uint64_t pc_hint = 0;  ///< pc of the instruction driving the bus
};
// constinit: guarantees constant (wrapper-free) TLS initialization — the
// hot path must not pay a guard check, and g++'s lazy-init TLS wrapper
// trips UBSan's null-member check when the object escapes through it.
extern thread_local constinit ActiveTables g_active;
}  // namespace detail

/// A violation captured in monitor (record-and-continue) mode.
struct ViolationRecord {
  ViolationKind kind{};
  Tag source = 0;
  Tag required = 0;
  std::uint64_t pc = 0;
  std::uint64_t address = 0;
  std::string where;
};

/// RAII scope installing `lattice` as the engine's active IFP.
class DiftContext {
 public:
  explicit DiftContext(const Lattice& lattice);
  ~DiftContext();

  DiftContext(const DiftContext&) = delete;
  DiftContext& operator=(const DiftContext&) = delete;

  const Lattice& lattice() const { return *lattice_; }

  /// Clearance used by checked Taint<T> -> T conversions (default: kBottomTag,
  /// i.e. only unclassified data converts implicitly — mirrors the paper's
  /// "requires by default a low confidentiality tag").
  Tag conversion_clearance = kBottomTag;

  /// Monitor mode: instead of throwing, check_flow() records the violation
  /// and lets execution continue. Useful while *developing* a policy — one
  /// run surfaces every flow the policy would forbid (enforcement mode stops
  /// at the first).
  void set_monitor_mode(bool on) { monitor_ = on; }
  bool monitor_mode() const { return monitor_; }
  const std::vector<ViolationRecord>& recorded() const { return recorded_; }
  void record(ViolationRecord r) { recorded_.push_back(std::move(r)); }

  /// Number of LUB combinations / flow checks since construction.
  std::uint64_t lub_calls() const { return detail::g_active.lub_calls; }
  std::uint64_t flow_checks() const { return detail::g_active.flow_checks; }

  static DiftContext* active() { return s_active_; }

 private:
  const Lattice* lattice_;
  DiftContext* previous_;
  detail::ActiveTables saved_;
  bool monitor_ = false;
  std::vector<ViolationRecord> recorded_;
  static thread_local constinit DiftContext* s_active_;
};

/// Least upper bound of two tags under the active IFP.
inline Tag lub(Tag a, Tag b) {
  if (a == b) return a;
  auto& t = detail::g_active;
  if (!t.lub) throw LatticeError("DIFT: tag combination without an active DiftContext");
  ++t.lub_calls;
  return t.lub[static_cast<std::size_t>(a) * t.n + b];
}

/// True iff data of class `from` may flow to `to` under the active IFP.
inline bool allowed_flow(Tag from, Tag to) {
  if (from == to) return true;
  auto& t = detail::g_active;
  if (!t.flow) throw LatticeError("DIFT: flow check without an active DiftContext");
  ++t.flow_checks;
  return t.flow[static_cast<std::size_t>(from) * t.n + to] != 0;
}

/// Non-counting variant of allowed_flow() for *memoisable* answers: the
/// core's taint-liveness gate asks "would bottom-tagged data clear this
/// clearance?" once per memo establishment, not per instruction, so the
/// query must not perturb the flow_checks ledger (warm-vs-cold and
/// fork-vs-replay runs compare it bit-for-bit). Returns false when no
/// context is active — the caller then stays on the always-correct path.
inline bool allowed_flow_peek(Tag from, Tag to) {
  if (from == to) return true;
  auto& t = detail::g_active;
  return t.flow && t.flow[static_cast<std::size_t>(from) * t.n + to] != 0;
}

/// Set by the CPU before it drives a bus transaction so that clearance
/// checks raised inside peripherals can attribute the violation to the
/// offending instruction.
inline void set_pc_hint(std::uint64_t pc) { detail::g_active.pc_hint = pc; }

/// Raises PolicyViolation(kind) unless allowed_flow(source, required).
/// In monitor mode the violation is recorded instead and execution continues.
inline void check_flow(Tag source, Tag required, ViolationKind kind,
                       std::uint64_t pc = 0, std::uint64_t address = 0,
                       const char* where = "") {
  if (allowed_flow(source, required)) return;
  if (pc == 0) pc = detail::g_active.pc_hint;
  if (DiftContext* ctx = DiftContext::active(); ctx && ctx->monitor_mode()) {
    ctx->record({kind, source, required, pc, address, where});
    return;
  }
  throw PolicyViolation(kind, source, required, pc, address, where);
}

}  // namespace vpdift::dift
