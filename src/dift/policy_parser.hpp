// Text format for security policies.
//
// Lets an engineer keep the security policy next to the firmware instead of
// in C++ — the early-policy-development workflow the paper advocates. The
// format is line-oriented ('#' starts a comment). Lattice lines come first,
// policy lines after; addresses may reference firmware symbols:
//
//   # lattice
//   class LC
//   class HC
//   flow LC -> HC
//   declass HC -> LC
//
//   # policy
//   classify memory $secret 16 HC
//   classify input uart0.rx LC
//   clear output uart0.tx LC
//   clear unit aes0 HC
//   declassify aes0 LC
//   exec fetch LC
//   exec branch LC
//   exec memaddr LC
//   protect $secret 16 HC
//
// Addresses are hex (0x...), decimal, or `$symbol` / `$symbol+offset` looked
// up in the symbol table passed to parse().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "dift/lattice.hpp"
#include "dift/policy.hpp"

namespace vpdift::dift {

class PolicyParseError : public std::runtime_error {
 public:
  PolicyParseError(std::size_t line, const std::string& message)
      : std::runtime_error("policy line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// A parsed lattice + policy pair (the policy references the lattice, so the
/// two are owned together; move-only).
class PolicySpec {
 public:
  /// Parses `text`; `symbols` resolves `$name` address references (pass a
  /// Program's symbol map). Throws PolicyParseError with the line number.
  static PolicySpec parse(
      std::string_view text,
      const std::map<std::string, std::uint64_t>* symbols = nullptr);

  PolicySpec(PolicySpec&&) = default;
  PolicySpec& operator=(PolicySpec&&) = default;

  const Lattice& lattice() const { return *lattice_; }
  SecurityPolicy& policy() { return *policy_; }
  const SecurityPolicy& policy() const { return *policy_; }

 private:
  PolicySpec() = default;
  std::unique_ptr<Lattice> lattice_;
  std::unique_ptr<SecurityPolicy> policy_;
};

}  // namespace vpdift::dift
