#include "dift/lattice.hpp"

#include <algorithm>

namespace vpdift::dift {

// ---- Builder ----

Tag Lattice::Builder::add_class(std::string name) {
  if (names_.size() >= kMaxClasses)
    throw LatticeError("lattice exceeds " + std::to_string(kMaxClasses) + " classes");
  if (std::find(names_.begin(), names_.end(), name) != names_.end())
    throw LatticeError("duplicate security class name: " + name);
  names_.push_back(std::move(name));
  return static_cast<Tag>(names_.size() - 1);
}

Lattice::Builder& Lattice::Builder::add_flow(Tag from, Tag to) {
  if (from >= names_.size() || to >= names_.size())
    throw LatticeError("flow edge references unknown class");
  flows_.emplace_back(from, to);
  return *this;
}

Lattice::Builder& Lattice::Builder::add_declass(Tag from, Tag to) {
  if (from >= names_.size() || to >= names_.size())
    throw LatticeError("declass edge references unknown class");
  declass_.emplace_back(from, to);
  return *this;
}

namespace {

// Reflexive-transitive closure of an adjacency matrix (Floyd-Warshall style).
void close(std::vector<std::uint8_t>& m, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) m[i * n + i] = 1;
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i)
      if (m[i * n + k])
        for (std::size_t j = 0; j < n; ++j)
          if (m[k * n + j]) m[i * n + j] = 1;
}

}  // namespace

Lattice Lattice::Builder::build() const {
  const std::size_t n = names_.size();
  if (n == 0) throw LatticeError("lattice has no security classes");

  Lattice l;
  l.names_ = names_;
  l.flow_edges_ = flows_;
  l.declass_edges_ = declass_;

  l.flow_.assign(n * n, 0);
  for (auto [a, b] : flows_) l.flow_[static_cast<std::size_t>(a) * n + b] = 1;
  close(l.flow_, n);

  // Declassification reachability: closure over flow edges plus declass edges.
  l.declass_reach_ = l.flow_;
  for (auto [a, b] : declass_) l.declass_reach_[static_cast<std::size_t>(a) * n + b] = 1;
  close(l.declass_reach_, n);

  // LUB table; validates the join-semilattice property.
  l.lub_.assign(n * n, 0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      // Common upper bounds of {a, b}.
      std::vector<Tag> ubs;
      for (std::size_t c = 0; c < n; ++c)
        if (l.flow_[a * n + c] && l.flow_[b * n + c]) ubs.push_back(static_cast<Tag>(c));
      if (ubs.empty())
        throw LatticeError("classes '" + names_[a] + "' and '" + names_[b] +
                           "' have no common upper bound");
      // Least = an upper bound that flows to every other upper bound.
      std::optional<Tag> least;
      for (Tag c : ubs) {
        bool is_least = true;
        for (Tag d : ubs)
          if (!l.flow_[static_cast<std::size_t>(c) * n + d]) { is_least = false; break; }
        if (is_least) {
          if (least) throw LatticeError("LUB of '" + names_[a] + "' and '" + names_[b] +
                                        "' is not unique");
          least = c;
        }
      }
      if (!least)
        throw LatticeError("classes '" + names_[a] + "' and '" + names_[b] +
                           "' lack a least upper bound");
      l.lub_[a * n + b] = *least;
      l.lub_[b * n + a] = *least;
    }
  }
  return l;
}

// ---- queries ----

Tag Lattice::tag_of(std::string_view name) const {
  if (auto t = find(name)) return *t;
  throw LatticeError("unknown security class: " + std::string(name));
}

std::optional<Tag> Lattice::find(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<Tag>(i);
  return std::nullopt;
}

const std::string& Lattice::name_of(Tag tag) const {
  if (tag >= names_.size()) throw LatticeError("tag out of range");
  return names_[tag];
}

// ---- factories ----

Lattice Lattice::ifp1() {
  Builder b;
  const Tag lc = b.add_class("LC");
  const Tag hc = b.add_class("HC");
  b.add_flow(lc, hc).add_declass(hc, lc);
  return b.build();
}

Lattice Lattice::ifp2() {
  Builder b;
  const Tag hi = b.add_class("HI");
  const Tag li = b.add_class("LI");
  b.add_flow(hi, li).add_declass(li, hi);
  return b.build();
}

Lattice Lattice::ifp3() { return product(ifp1(), ifp2()); }

Lattice Lattice::product(const Lattice& x, const Lattice& y) {
  Builder b;
  const std::size_t nx = x.size(), ny = y.size();
  if (nx * ny > kMaxClasses) throw LatticeError("product lattice too large");
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      b.add_class("(" + x.name_of(static_cast<Tag>(i)) + "," +
                  y.name_of(static_cast<Tag>(j)) + ")");
  auto tag = [ny](std::size_t i, std::size_t j) {
    return static_cast<Tag>(i * ny + j);
  };
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t k = 0; k < nx; ++k)
        for (std::size_t m = 0; m < ny; ++m) {
          const Tag from = tag(i, j), to = tag(k, m);
          if (from == to) continue;
          const bool fx = x.allowed_flow(static_cast<Tag>(i), static_cast<Tag>(k));
          const bool fy = y.allowed_flow(static_cast<Tag>(j), static_cast<Tag>(m));
          const bool dx = x.allowed_declass(static_cast<Tag>(i), static_cast<Tag>(k));
          const bool dy = y.allowed_declass(static_cast<Tag>(j), static_cast<Tag>(m));
          if (fx && fy)
            b.add_flow(from, to);
          else if (dx && dy)  // at least one component crosses a declass edge
            b.add_declass(from, to);
        }
  return b.build();
}

Lattice Lattice::with_per_byte_secret(const Lattice& base, Tag joins_into,
                                      std::size_t count, std::string prefix) {
  if (joins_into >= base.size()) throw LatticeError("joins_into tag out of range");
  Builder b;
  for (std::size_t i = 0; i < base.size(); ++i) b.add_class(base.name_of(static_cast<Tag>(i)));
  for (auto [f, t] : base.flow_edges()) b.add_flow(f, t);
  for (auto [f, t] : base.declass_edges()) b.add_declass(f, t);
  for (std::size_t i = 0; i < count; ++i) {
    const Tag c = b.add_class(prefix + std::to_string(i));
    b.add_flow(c, joins_into);
  }
  return b.build();
}

Lattice Lattice::powerset(const std::vector<std::string>& categories) {
  const std::size_t n = categories.size();
  if (n > 8) throw LatticeError("powerset lattice limited to 8 categories");
  Builder b;
  const std::size_t count = 1u << n;
  for (std::size_t mask = 0; mask < count; ++mask) {
    std::string name = "{";
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (1u << i)) {
        if (name.size() > 1) name += ",";
        name += categories[i];
      }
    name += "}";
    b.add_class(name);
  }
  // Flow edges: immediate supersets suffice (transitive closure completes
  // the subset order).
  for (std::size_t mask = 0; mask < count; ++mask)
    for (std::size_t i = 0; i < n; ++i)
      if (!(mask & (1u << i)))
        b.add_flow(static_cast<Tag>(mask), static_cast<Tag>(mask | (1u << i)));
  return b.build();
}

Lattice Lattice::linear(std::size_t levels, std::string prefix) {
  Builder b;
  Tag prev = 0;
  for (std::size_t i = 0; i < levels; ++i) {
    const Tag c = b.add_class(prefix + std::to_string(i));
    if (i > 0) b.add_flow(prev, c);
    prev = c;
  }
  return b.build();
}

}  // namespace vpdift::dift
