// Security policies (Section IV-A of the paper).
//
// A SecurityPolicy bundles the three parts the paper defines:
//   (i)   classification — security classes assigned to data entering the
//         system (memory regions at load time, peripheral input sources),
//   (ii)  the IFP lattice itself, and
//   (iii) clearance — classes assigned to output interfaces and to the CPU's
//         execution units (instruction fetch, branch unit, memory access)
//         plus integrity-protected ("store clearance") memory regions.
// It also manages declassification rights: only peripherals explicitly
// granted a right may re-tag data, and only along sanctioned declass edges.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dift/lattice.hpp"
#include "dift/tag.hpp"
#include "dift/taint.hpp"
#include "dift/violation.hpp"

namespace vpdift::dift {

/// A classified address range [base, base+size).
struct MemoryClass {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  Tag tag = kBottomTag;
  bool contains(std::uint64_t addr) const { return addr - base < size; }
};

/// Clearance tags of the three CPU execution units the paper identifies
/// (Section V-B2). A disengaged optional disables the respective check.
struct ExecutionClearance {
  std::optional<Tag> fetch;     ///< fetched instruction must flow here
  std::optional<Tag> branch;    ///< branch conditions / indirect targets / trap vectors
  std::optional<Tag> mem_addr;  ///< load/store effective addresses
};

class SecurityPolicy;

/// Capability handed to trusted peripherals allowing declassification.
/// Obtainable only through SecurityPolicy::grant_declass().
class DeclassRight {
 public:
  DeclassRight() = default;  // disengaged right: every declassify attempt throws

  /// Re-tags `v` to `to`, enforcing that (a) this right is engaged and
  /// (b) the lattice sanctions a declassification path from v's tag to `to`.
  template <typename T>
  Taint<T> operator()(const Taint<T>& v, Tag to) const {
    check(v.tag(), to);
    return retag(v, to);
  }

  void check(Tag from, Tag to) const;
  bool engaged() const { return lattice_ != nullptr; }

 private:
  friend class SecurityPolicy;
  DeclassRight(const Lattice* lattice, std::string holder)
      : lattice_(lattice), holder_(std::move(holder)) {}
  const Lattice* lattice_ = nullptr;
  std::string holder_;
};

class SecurityPolicy {
 public:
  explicit SecurityPolicy(const Lattice& lattice) : lattice_(&lattice) {}

  const Lattice& lattice() const { return *lattice_; }

  // ---- (i) classification ----

  /// Tags memory [base, base+size) at program-load time.
  SecurityPolicy& classify_memory(std::uint64_t base, std::uint64_t size, Tag tag);
  /// Tags the data produced by the named input peripheral (e.g. "uart0.rx").
  SecurityPolicy& classify_input(const std::string& device, Tag tag);

  const std::vector<MemoryClass>& memory_classification() const { return mem_class_; }
  /// Classification tag for the named input source (kBottomTag if unset).
  Tag input_class(const std::string& device) const;
  /// True iff an input classification was configured for `device`.
  bool has_input_class(const std::string& device) const {
    return input_class_.count(device) != 0;
  }

  // ---- (iii) clearance ----

  /// Clearance of the named output interface (e.g. "uart0.tx", "can0.tx").
  SecurityPolicy& clear_output(const std::string& device, Tag tag);
  /// Clearance of a named execution unit outside the CPU (e.g. "aes0").
  SecurityPolicy& clear_unit(const std::string& device, Tag tag);
  /// CPU execution clearance (fetch / branch / memory-address checks).
  SecurityPolicy& set_execution_clearance(ExecutionClearance ec);
  /// Integrity protection: stores into [base, base+size) must carry data
  /// whose class may flow to `tag`.
  SecurityPolicy& protect_store(std::uint64_t base, std::uint64_t size, Tag tag);

  /// Output clearance for `device`; disengaged = no check configured.
  std::optional<Tag> output_clearance(const std::string& device) const;
  /// Execution-unit clearance for `device`; disengaged = no check configured.
  std::optional<Tag> unit_clearance(const std::string& device) const;
  const ExecutionClearance& execution_clearance() const { return exec_; }
  const std::vector<MemoryClass>& store_protection() const { return store_prot_; }

  /// Store-clearance tag covering `addr`, if any.
  std::optional<Tag> store_clearance_at(std::uint64_t addr) const;

  // ---- declassification ----

  /// Grants the named (trusted) peripheral the right to declassify.
  DeclassRight grant_declass(const std::string& device);
  bool may_declass(const std::string& device) const {
    return declass_holders_.count(device) != 0;
  }

  /// Declares that the named trusted peripheral declassifies its output data
  /// to `to` (e.g. the AES engine emitting (LC,LI) ciphertext). Consumed by
  /// the VP builder, which grants the corresponding right.
  SecurityPolicy& declassify_output(const std::string& device, Tag to);
  /// Declassification target configured for `device`, if any.
  std::optional<Tag> declass_output(const std::string& device) const;

  // ---- introspection (static analysis) ----
  //
  // Enumeration views over the configured maps, consumed by the src/sa
  // analyzer to derive taint sources and sinks without round-tripping
  // through per-device point queries.

  const std::map<std::string, Tag>& input_classes() const { return input_class_; }
  const std::map<std::string, Tag>& output_clearances() const { return output_clear_; }
  const std::map<std::string, Tag>& unit_clearances() const { return unit_clear_; }
  const std::map<std::string, Tag>& declass_outputs() const { return declass_output_; }
  const std::set<std::string>& declass_holders() const { return declass_holders_; }

 private:
  const Lattice* lattice_;
  std::vector<MemoryClass> mem_class_;
  std::vector<MemoryClass> store_prot_;
  std::map<std::string, Tag> input_class_;
  std::map<std::string, Tag> output_clear_;
  std::map<std::string, Tag> unit_clear_;
  std::set<std::string> declass_holders_;
  std::map<std::string, Tag> declass_output_;
  ExecutionClearance exec_;
};

}  // namespace vpdift::dift
