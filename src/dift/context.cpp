#include "dift/context.hpp"

#include <cstdio>

namespace vpdift::dift {

namespace detail {
thread_local constinit ActiveTables g_active;
}  // namespace detail

thread_local constinit DiftContext* DiftContext::s_active_ = nullptr;

DiftContext::DiftContext(const Lattice& lattice)
    : lattice_(&lattice), previous_(s_active_), saved_(detail::g_active) {
  s_active_ = this;
  detail::g_active.lub = lattice.lub_table();
  detail::g_active.flow = lattice.flow_table();
  detail::g_active.n = lattice.size();
  detail::g_active.lub_calls = 0;
  detail::g_active.flow_checks = 0;
}

DiftContext::~DiftContext() {
  detail::g_active = saved_;
  s_active_ = previous_;
}

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kOutputClearance: return "output-clearance";
    case ViolationKind::kFetchClearance: return "fetch-clearance";
    case ViolationKind::kBranchClearance: return "branch-clearance";
    case ViolationKind::kMemAddrClearance: return "memaddr-clearance";
    case ViolationKind::kStoreClearance: return "store-clearance";
    case ViolationKind::kConversion: return "conversion";
    case ViolationKind::kDeclassification: return "declassification";
    case ViolationKind::kExecUnitClearance: return "exec-unit-clearance";
  }
  return "unknown";
}

PolicyViolation::PolicyViolation(ViolationKind kind, Tag source, Tag required,
                                 std::uint64_t pc, std::uint64_t address,
                                 std::string where)
    : std::runtime_error("security policy violation [" +
                         std::string(to_string(kind)) + "] at " +
                         (where.empty() ? std::string("<engine>") : where) +
                         ": flow of tag " + std::to_string(source) +
                         " to clearance " + std::to_string(required) +
                         " is forbidden (pc=0x" + [pc] {
                           char buf[17];
                           std::snprintf(buf, sizeof buf, "%llx",
                                         static_cast<unsigned long long>(pc));
                           return std::string(buf);
                         }() + ")"),
      kind_(kind),
      source_(source),
      required_(required),
      pc_(pc),
      address_(address),
      where_(std::move(where)) {}

}  // namespace vpdift::dift
