#include "dift/policy.hpp"

namespace vpdift::dift {

void DeclassRight::check(Tag from, Tag to) const {
  if (!lattice_)
    throw PolicyViolation(ViolationKind::kDeclassification, from, to, 0, 0,
                          "unauthorized declassifier");
  if (!lattice_->allowed_declass(from, to))
    throw PolicyViolation(ViolationKind::kDeclassification, from, to, 0, 0,
                          holder_ + " (no sanctioned declass edge)");
}

SecurityPolicy& SecurityPolicy::classify_memory(std::uint64_t base, std::uint64_t size,
                                                Tag tag) {
  mem_class_.push_back({base, size, tag});
  return *this;
}

SecurityPolicy& SecurityPolicy::classify_input(const std::string& device, Tag tag) {
  input_class_[device] = tag;
  return *this;
}

Tag SecurityPolicy::input_class(const std::string& device) const {
  auto it = input_class_.find(device);
  return it == input_class_.end() ? kBottomTag : it->second;
}

SecurityPolicy& SecurityPolicy::clear_output(const std::string& device, Tag tag) {
  output_clear_[device] = tag;
  return *this;
}

SecurityPolicy& SecurityPolicy::clear_unit(const std::string& device, Tag tag) {
  unit_clear_[device] = tag;
  return *this;
}

SecurityPolicy& SecurityPolicy::set_execution_clearance(ExecutionClearance ec) {
  exec_ = ec;
  return *this;
}

SecurityPolicy& SecurityPolicy::protect_store(std::uint64_t base, std::uint64_t size,
                                              Tag tag) {
  store_prot_.push_back({base, size, tag});
  return *this;
}

std::optional<Tag> SecurityPolicy::output_clearance(const std::string& device) const {
  auto it = output_clear_.find(device);
  if (it == output_clear_.end()) return std::nullopt;
  return it->second;
}

std::optional<Tag> SecurityPolicy::unit_clearance(const std::string& device) const {
  auto it = unit_clear_.find(device);
  if (it == unit_clear_.end()) return std::nullopt;
  return it->second;
}

std::optional<Tag> SecurityPolicy::store_clearance_at(std::uint64_t addr) const {
  for (const auto& r : store_prot_)
    if (r.contains(addr)) return r.tag;
  return std::nullopt;
}

SecurityPolicy& SecurityPolicy::declassify_output(const std::string& device, Tag to) {
  declass_output_[device] = to;
  return *this;
}

std::optional<Tag> SecurityPolicy::declass_output(const std::string& device) const {
  auto it = declass_output_.find(device);
  if (it == declass_output_.end()) return std::nullopt;
  return it->second;
}

DeclassRight SecurityPolicy::grant_declass(const std::string& device) {
  declass_holders_.insert(device);
  return DeclassRight(lattice_, device);
}

}  // namespace vpdift::dift
