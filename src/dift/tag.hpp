// Security-class tags for the DIFT engine.
//
// A Tag is a compact integer handle that identifies one security class of the
// active Information Flow Policy (IFP) lattice (see lattice.hpp). Tag value 0
// is, by convention, the first class registered with Lattice::Builder and is
// used as the default ("unclassified") tag of freshly constructed data.
#pragma once

#include <cstdint>

namespace vpdift::dift {

/// Handle for one security class of the active IFP lattice.
using Tag = std::uint8_t;

/// Tag carried by data that was never explicitly classified.
inline constexpr Tag kBottomTag = 0;

/// Upper bound on the number of security classes a Lattice may hold
/// (tags must fit a Tag and we reserve nothing).
inline constexpr std::size_t kMaxClasses = 256;

}  // namespace vpdift::dift
