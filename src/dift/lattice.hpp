// Information Flow Policy (IFP) lattices.
//
// An IFP is a join-semilattice of security classes. `allowed_flow(a, b)`
// answers whether data of class `a` may (transitively) flow to class `b`;
// `lub(a, b)` yields the class of data computed from both `a` and `b`.
// Lattices are built from a user-specified flow graph whose reflexive-
// transitive closure must form a join-semilattice (unique least upper bound
// for every pair) — Builder::build() validates this and precomputes dense
// flow/LUB tables for O(1) queries on the simulation fast path.
//
// The three example IFPs of the paper (Fig. 1) are available as factories:
// ifp1() (confidentiality LC->HC), ifp2() (integrity HI->LI) and their
// product ifp3(). Additional combinators cover the product of arbitrary
// lattices and the per-byte-secret refinement used to fix the immobilizer
// entropy-reduction attack (Section VI-A).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dift/tag.hpp"

namespace vpdift::dift {

/// Raised when a flow graph does not form a valid join-semilattice or is
/// otherwise malformed (duplicate class names, too many classes, ...).
class LatticeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A validated join-semilattice of security classes with O(1) queries.
class Lattice {
 public:
  /// Incrementally describes the flow graph of an IFP.
  class Builder {
   public:
    /// Registers a new security class; returns its tag.
    Tag add_class(std::string name);
    /// Permits information flow from `from` to `to`.
    Builder& add_flow(Tag from, Tag to);
    /// Adds a sanctioned declassification edge (red dashed arrow in Fig. 1).
    /// Declassification edges do NOT contribute to allowed_flow/lub; they are
    /// only usable by trusted peripherals holding a declassification right.
    Builder& add_declass(Tag from, Tag to);
    /// Validates and freezes the lattice. Throws LatticeError if any pair of
    /// classes lacks a unique least upper bound.
    Lattice build() const;

   private:
    std::vector<std::string> names_;
    std::vector<std::pair<Tag, Tag>> flows_;
    std::vector<std::pair<Tag, Tag>> declass_;
  };

  /// Number of security classes.
  std::size_t size() const { return names_.size(); }

  /// Tag of the class called `name`; throws LatticeError if unknown.
  Tag tag_of(std::string_view name) const;
  /// Tag of the class called `name`, or nullopt.
  std::optional<Tag> find(std::string_view name) const;
  /// Name of the class behind `tag`.
  const std::string& name_of(Tag tag) const;

  /// True iff data of class `from` may (transitively) flow to `to`.
  bool allowed_flow(Tag from, Tag to) const {
    return flow_[index(from, to)] != 0;
  }
  /// Least upper bound of two classes.
  Tag lub(Tag a, Tag b) const { return lub_[index(a, b)]; }

  /// True iff declassification from `from` to `to` is sanctioned, i.e. `to`
  /// is reachable over the graph of flow edges plus declassification edges.
  bool allowed_declass(Tag from, Tag to) const {
    return declass_reach_[index(from, to)] != 0;
  }

  /// Raw table access for the DIFT engine fast path (row-major, size()^2).
  const Tag* lub_table() const { return lub_.data(); }
  const std::uint8_t* flow_table() const { return flow_.data(); }

  // ---- Factories for the paper's example IFPs (Fig. 1) ----

  /// IFP-1: confidentiality. Classes LC, HC; flow LC->HC; declass HC->LC.
  static Lattice ifp1();
  /// IFP-2: integrity. Classes HI, LI; flow HI->LI; declass LI->HI.
  static Lattice ifp2();
  /// IFP-3: product of IFP-1 and IFP-2 (classes "(LC,HI)", "(LC,LI)", ...).
  static Lattice ifp3();

  /// Product lattice: classes are pairs "(a,b)"; flow allowed iff allowed in
  /// both components; declassification edges where at least one component
  /// uses a declass edge and the other an allowed flow or declass edge.
  static Lattice product(const Lattice& a, const Lattice& b);

  /// Refinement used by the per-byte PIN policy: clones `base` and appends
  /// `count` fresh classes `prefix0..prefix<count-1>`, each flowing into
  /// `joins_into` (and mutually incomparable). The LUB of two distinct
  /// per-byte classes is therefore `joins_into`, so copying byte i over
  /// byte j is no longer an allowed flow.
  static Lattice with_per_byte_secret(const Lattice& base, Tag joins_into,
                                      std::size_t count, std::string prefix);

  /// Multi-level linear lattice L0 -> L1 -> ... -> L<n-1> (for tests/ablation).
  static Lattice linear(std::size_t levels, std::string prefix = "L");

  /// Powerset (compartment) lattice over `categories` named compartments:
  /// classes are category subsets, flow is subset inclusion, LUB is union —
  /// the classic Denning-style lattice for mutually independent secrets
  /// (e.g. {"KEY","BIO"}: KEY-data and BIO-data may mix into {KEY,BIO} but
  /// never flow into each other). Class names are "{}", "{A}", "{A,B}", ...
  /// Limited to 8 categories (2^8 = 256 classes, the Tag ceiling).
  static Lattice powerset(const std::vector<std::string>& categories);

 private:
  Lattice() = default;
  std::size_t index(Tag a, Tag b) const {
    return static_cast<std::size_t>(a) * names_.size() + b;
  }

  std::vector<std::string> names_;
  std::vector<std::uint8_t> flow_;           // reflexive-transitive closure
  std::vector<Tag> lub_;                     // dense LUB table
  std::vector<std::uint8_t> declass_reach_;  // closure over flow + declass
  std::vector<std::pair<Tag, Tag>> flow_edges_;     // original edges (introspection)
  std::vector<std::pair<Tag, Tag>> declass_edges_;  // original declass edges

 public:
  /// Original (non-closed) flow edges, for printing/introspection.
  const std::vector<std::pair<Tag, Tag>>& flow_edges() const { return flow_edges_; }
  /// Original declassification edges, for printing/introspection.
  const std::vector<std::pair<Tag, Tag>>& declass_edges() const { return declass_edges_; }
};

}  // namespace vpdift::dift
