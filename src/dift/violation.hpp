// Security-policy violation reporting.
//
// Every run-time check of the DIFT engine (output clearance, execution
// clearance, store clearance, checked conversions, declassification rights)
// raises a PolicyViolation when the active IFP forbids the observed flow.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "dift/tag.hpp"

namespace vpdift::dift {

/// Which check detected the forbidden flow.
enum class ViolationKind : std::uint8_t {
  kOutputClearance,   ///< data left the system through an interface lacking clearance
  kFetchClearance,    ///< instruction-fetch unit fetched insufficiently cleared code
  kBranchClearance,   ///< branch/jump/trap-vector condition or target too classified
  kMemAddrClearance,  ///< memory access with an insufficiently cleared address
  kStoreClearance,    ///< store into an integrity-protected memory region
  kConversion,        ///< checked Taint<T> -> T conversion without clearance
  kDeclassification,  ///< declassification attempted without the right/edge
  kExecUnitClearance, ///< an execution unit (e.g. AES engine) processed data above its clearance
};

/// Human-readable name of a ViolationKind.
const char* to_string(ViolationKind kind);

/// Thrown (or captured, see vp::RunResult) when the security policy is violated.
class PolicyViolation : public std::runtime_error {
 public:
  PolicyViolation(ViolationKind kind, Tag source, Tag required,
                  std::uint64_t pc = 0, std::uint64_t address = 0,
                  std::string where = {});

  ViolationKind kind() const { return kind_; }
  /// Security class of the offending data.
  Tag source() const { return source_; }
  /// Clearance the flow was checked against.
  Tag required() const { return required_; }
  /// Program counter of the embedded binary at detection time (0 if n/a).
  std::uint64_t pc() const { return pc_; }
  /// Bus address involved in the violation (0 if n/a).
  std::uint64_t address() const { return address_; }
  /// Component that raised the violation (e.g. "uart0", "core.fetch").
  const std::string& where() const { return where_; }

 private:
  ViolationKind kind_;
  Tag source_;
  Tag required_;
  std::uint64_t pc_;
  std::uint64_t address_;
  std::string where_;
};

}  // namespace vpdift::dift
