#include "dift/shadow.hpp"

namespace vpdift::dift {

void ShadowSummary::attach(Tag* tags, std::size_t size) {
  tags_ = tags;
  size_ = tags ? size : 0;
  blocks_.assign(tags ? (size_ + kBlockBytes - 1) >> kBlockShift : 0, 0);
  live_blocks_ = 0;
  ++generation_;
  if (tags_) rebuild();
}

std::uint16_t ShadowSummary::rescan_block(std::size_t block) {
  const std::size_t base = block << kBlockShift;
  const std::size_t bend = std::min(base + kBlockBytes, size_);
  const Tag first = tags_[base];
  std::uint16_t summary = first;
  for (std::size_t i = base + 1; i < bend; ++i) {
    if (tags_[i] != first) {
      summary = kMixed;
      break;
    }
  }
  set_block(block, summary);
  return summary;
}

void ShadowSummary::rebuild() {
  for (std::size_t b = 0; b < blocks_.size(); ++b) rescan_block(b);
}

void ShadowSummary::on_store_bytes(std::size_t off, std::size_t len) {
  if (!tags_ || len == 0) return;
  const std::size_t b0 = off >> kBlockShift;
  const std::size_t b1 = (off + len - 1) >> kBlockShift;
  for (std::size_t b = b0; b <= b1; ++b) {
    const std::size_t base = b << kBlockShift;
    const std::size_t bend = std::min(base + kBlockBytes, size_);
    const std::size_t s = std::max(off, base);
    const std::size_t e = std::min(off + len, bend);
    const Tag first = tags_[s];
    bool run_uniform = true;
    for (std::size_t i = s + 1; i < e; ++i) {
      if (tags_[i] != first) {
        run_uniform = false;
        break;
      }
    }
    if (!run_uniform) {
      set_block(b, kMixed);
    } else if (s == base && e == bend) {
      set_block(b, first);  // whole block overwritten uniformly
    } else if (blocks_[b] != first) {
      set_block(b, kMixed);  // partial run with a tag differing from summary
    }
  }
}

}  // namespace vpdift::dift
