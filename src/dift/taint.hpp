// The Taint<T> data type (Fig. 3 of the paper).
//
// Taint<T> pairs a value of type T with the Tag of its security class.
// Operator overloading makes tainted values drop-in replacements for plain
// integers inside the VP: `regs[rd] = regs[rs1] + regs[rs2]` performs the
// RISC-V addition AND combines the operand tags with the IFP's least upper
// bound. Conversion back to a plain T is clearance-checked, so VP model code
// (peripherals) cannot accidentally strip a classification.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "dift/context.hpp"
#include "dift/tag.hpp"
#include "dift/violation.hpp"

namespace vpdift::dift {

template <typename T>
class Taint {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  constexpr Taint() = default;
  /// Implicit from a plain value: literals and untainted data carry kBottomTag.
  constexpr Taint(T value) : value_(value) {}  // NOLINT(google-explicit-constructor)
  constexpr Taint(T value, Tag tag) : value_(value), tag_(tag) {}

  /// Unchecked access for trusted simulator internals (the ISS itself).
  constexpr T value() const { return value_; }
  constexpr Tag tag() const { return tag_; }
  void set_tag(Tag tag) { tag_ = tag; }

  /// Checked implicit conversion: only data cleared for the context's
  /// conversion clearance may silently become a plain T (paper, Fig. 4
  /// discussion: "requires by default a low confidentiality tag").
  operator T() const {  // NOLINT(google-explicit-constructor)
    const Tag required =
        DiftContext::active() ? DiftContext::active()->conversion_clearance : kBottomTag;
    check_clearance(required);
    return value_;
  }

  /// Checked read against an explicit clearance.
  T expect(Tag required_clearance) const {
    check_clearance(required_clearance);
    return value_;
  }

  /// Raises kConversion unless this datum may flow to `required_tag`.
  void check_clearance(Tag required_tag) const {
    if (tag_ == required_tag) return;  // fast path; reflexive flow always allowed
    check_flow(tag_, required_tag, ViolationKind::kConversion);
  }

  /// Serialises into `sizeof(T)` tainted bytes (for TLM payloads).
  void to_bytes(Taint<std::uint8_t>* bytes) const {
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &value_, sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) bytes[i] = Taint<std::uint8_t>(raw[i], tag_);
  }

  /// Deserialises from `sizeof(T)` tainted bytes; the resulting tag is the
  /// LUB of all byte tags.
  void from_bytes(const Taint<std::uint8_t>* bytes) {
    std::uint8_t raw[sizeof(T)];
    Tag t = bytes[0].tag();
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      raw[i] = bytes[i].value();
      t = lub(t, bytes[i].tag());
    }
    std::memcpy(&value_, raw, sizeof(T));
    tag_ = t;
  }

  // ---- arithmetic / bitwise operators: value op + tag LUB ----
  // Overloads for (Taint, Taint), (Taint, T) and (T, Taint) are all provided
  // explicitly so that mixed expressions resolve here instead of being
  // ambiguous with the built-in operators via the checked conversion above.

#define VPDIFT_BINOP(op)                                                    \
  friend constexpr Taint operator op(const Taint& a, const Taint& b) {     \
    return Taint(static_cast<T>(a.value_ op b.value_), lub(a.tag_, b.tag_)); \
  }                                                                         \
  friend constexpr Taint operator op(const Taint& a, T b) {                \
    return Taint(static_cast<T>(a.value_ op b), a.tag_);                   \
  }                                                                         \
  friend constexpr Taint operator op(T a, const Taint& b) {                \
    return Taint(static_cast<T>(a op b.value_), b.tag_);                   \
  }

  VPDIFT_BINOP(+)
  VPDIFT_BINOP(-)
  VPDIFT_BINOP(*)
  VPDIFT_BINOP(/)
  VPDIFT_BINOP(%)
  VPDIFT_BINOP(&)
  VPDIFT_BINOP(|)
  VPDIFT_BINOP(^)
  VPDIFT_BINOP(<<)
  VPDIFT_BINOP(>>)
#undef VPDIFT_BINOP

  constexpr Taint operator~() const { return Taint(static_cast<T>(~value_), tag_); }
  constexpr Taint operator-() const { return Taint(static_cast<T>(-value_), tag_); }

  Taint& operator+=(const Taint& o) { return *this = *this + o; }
  Taint& operator-=(const Taint& o) { return *this = *this - o; }
  Taint& operator*=(const Taint& o) { return *this = *this * o; }
  Taint& operator&=(const Taint& o) { return *this = *this & o; }
  Taint& operator|=(const Taint& o) { return *this = *this | o; }
  Taint& operator^=(const Taint& o) { return *this = *this ^ o; }
  Taint& operator<<=(const Taint& o) { return *this = *this << o; }
  Taint& operator>>=(const Taint& o) { return *this = *this >> o; }
  Taint& operator++() { value_ = static_cast<T>(value_ + 1); return *this; }
  Taint& operator--() { value_ = static_cast<T>(value_ - 1); return *this; }

  // ---- comparisons: tainted booleans ----
  // The result's tag records that the outcome depends on both operands; the
  // implicit Taint<bool> -> bool conversion is clearance-checked, so VP model
  // code branching on classified data trips the engine just like embedded SW.

#define VPDIFT_CMPOP(op)                                                         \
  friend constexpr Taint<bool> operator op(const Taint& a, const Taint& b) {    \
    return Taint<bool>(a.value_ op b.value_, lub(a.tag_, b.tag_));              \
  }                                                                              \
  friend constexpr Taint<bool> operator op(const Taint& a, T b) {               \
    return Taint<bool>(a.value_ op b, a.tag_);                                  \
  }                                                                              \
  friend constexpr Taint<bool> operator op(T a, const Taint& b) {               \
    return Taint<bool>(a op b.value_, b.tag_);                                  \
  }

  VPDIFT_CMPOP(==)
  VPDIFT_CMPOP(!=)
  VPDIFT_CMPOP(<)
  VPDIFT_CMPOP(<=)
  VPDIFT_CMPOP(>)
  VPDIFT_CMPOP(>=)
#undef VPDIFT_CMPOP

 private:
  T value_{};
  Tag tag_{kBottomTag};
};

/// A single tainted byte — the unit TLM payloads are expressed in.
using TaintedByte = Taint<std::uint8_t>;
static_assert(sizeof(TaintedByte) == 2);

/// Re-tag helper preserving the value (used by declassification).
template <typename T>
Taint<T> retag(const Taint<T>& v, Tag tag) {
  return Taint<T>(v.value(), tag);
}

}  // namespace vpdift::dift
