// DIFT engine statistics.
//
// One flat counter block for everything the engine does on the hot path:
// tag combinations (LUB table lookups), flow checks, block-translation-cache
// behaviour, shadow-summary fast-path hits (see shadow.hpp) and bus traffic.
// The VP fills a DiftStats into every vp::RunResult so benchmark harnesses
// can emit machine-readable reports (BENCH_*.json) and perf PRs have a
// baseline to beat. Counters are plain 64-bit adds — cheap enough to stay
// enabled in both the plain VP and the VP+ (and the block engine hoists the
// per-instruction ones to block boundaries anyway).
#pragma once

#include <cstdint>
#include <string>

namespace vpdift::dift {

struct DiftStats {
  std::uint64_t lub_calls = 0;       ///< LUB table lookups (a != b slow path)
  std::uint64_t flow_checks = 0;     ///< flow-table lookups (from != to)
  std::uint64_t decode_hits = 0;     ///< instructions executed from cached blocks
  std::uint64_t decode_misses = 0;   ///< instructions decoded into micro-ops
  std::uint64_t block_hits = 0;      ///< block-cache lookups that found a valid block
  std::uint64_t block_misses = 0;    ///< block-cache lookups that built a new block
  std::uint64_t block_invalidations = 0;  ///< cached blocks rebuilt (raw bytes changed)
  std::uint64_t chained_transfers = 0;    ///< block entries resolved via terminator chain
  std::uint64_t fetch_summary_hits = 0;  ///< fetches cleared via block-span memo
  std::uint64_t load_summary_hits = 0;   ///< loads tagged via uniform summary
  std::uint64_t mem_summary_hits = 0;    ///< Memory reads served via summary
  std::uint64_t dma_summary_hits = 0;    ///< DMA bursts forwarded as uniform
  std::uint64_t bus_transactions = 0;    ///< b_transport calls routed by the bus
  std::uint64_t plain_variant_hits = 0;    ///< block dispatches via plain variant
  std::uint64_t tainted_variant_hits = 0;  ///< block dispatches via tainted variant
  std::uint64_t variant_promotions = 0;    ///< plain dispatches promoted pre-retire
  std::uint64_t superblock_hits = 0;       ///< dispatches executed a fused trace
  std::uint64_t superblock_transfers = 0;  ///< block transitions taken inside traces
  std::uint64_t sa_pinned_blocks = 0;      ///< blocks pinned plain by static analysis
  std::uint64_t sa_pinned_hits = 0;        ///< dispatches that used an ahead-of-time pin

  std::uint64_t summary_hits() const {
    return fetch_summary_hits + load_summary_hits + mem_summary_hits +
           dma_summary_hits;
  }

  DiftStats& operator+=(const DiftStats& o) {
    lub_calls += o.lub_calls;
    flow_checks += o.flow_checks;
    decode_hits += o.decode_hits;
    decode_misses += o.decode_misses;
    block_hits += o.block_hits;
    block_misses += o.block_misses;
    block_invalidations += o.block_invalidations;
    chained_transfers += o.chained_transfers;
    fetch_summary_hits += o.fetch_summary_hits;
    load_summary_hits += o.load_summary_hits;
    mem_summary_hits += o.mem_summary_hits;
    dma_summary_hits += o.dma_summary_hits;
    bus_transactions += o.bus_transactions;
    plain_variant_hits += o.plain_variant_hits;
    tainted_variant_hits += o.tainted_variant_hits;
    variant_promotions += o.variant_promotions;
    superblock_hits += o.superblock_hits;
    superblock_transfers += o.superblock_transfers;
    sa_pinned_blocks += o.sa_pinned_blocks;
    sa_pinned_hits += o.sa_pinned_hits;
    return *this;
  }

  DiftStats operator-(const DiftStats& o) const {
    DiftStats d;
    d.lub_calls = lub_calls - o.lub_calls;
    d.flow_checks = flow_checks - o.flow_checks;
    d.decode_hits = decode_hits - o.decode_hits;
    d.decode_misses = decode_misses - o.decode_misses;
    d.block_hits = block_hits - o.block_hits;
    d.block_misses = block_misses - o.block_misses;
    d.block_invalidations = block_invalidations - o.block_invalidations;
    d.chained_transfers = chained_transfers - o.chained_transfers;
    d.fetch_summary_hits = fetch_summary_hits - o.fetch_summary_hits;
    d.load_summary_hits = load_summary_hits - o.load_summary_hits;
    d.mem_summary_hits = mem_summary_hits - o.mem_summary_hits;
    d.dma_summary_hits = dma_summary_hits - o.dma_summary_hits;
    d.bus_transactions = bus_transactions - o.bus_transactions;
    d.plain_variant_hits = plain_variant_hits - o.plain_variant_hits;
    d.tainted_variant_hits = tainted_variant_hits - o.tainted_variant_hits;
    d.variant_promotions = variant_promotions - o.variant_promotions;
    d.superblock_hits = superblock_hits - o.superblock_hits;
    d.superblock_transfers = superblock_transfers - o.superblock_transfers;
    d.sa_pinned_blocks = sa_pinned_blocks - o.sa_pinned_blocks;
    d.sa_pinned_hits = sa_pinned_hits - o.sa_pinned_hits;
    return d;
  }
};

/// JSON object rendering, shared by the bench harnesses and the CLI runner.
inline std::string to_json(const DiftStats& s) {
  auto f = [](const char* k, std::uint64_t v, bool last = false) {
    return "\"" + std::string(k) + "\":" + std::to_string(v) + (last ? "" : ",");
  };
  return "{" + f("lub_calls", s.lub_calls) + f("flow_checks", s.flow_checks) +
         f("decode_hits", s.decode_hits) + f("decode_misses", s.decode_misses) +
         f("block_hits", s.block_hits) + f("block_misses", s.block_misses) +
         f("block_invalidations", s.block_invalidations) +
         f("chained_transfers", s.chained_transfers) +
         f("fetch_summary_hits", s.fetch_summary_hits) +
         f("load_summary_hits", s.load_summary_hits) +
         f("mem_summary_hits", s.mem_summary_hits) +
         f("dma_summary_hits", s.dma_summary_hits) +
         f("bus_transactions", s.bus_transactions) +
         f("plain_variant_hits", s.plain_variant_hits) +
         f("tainted_variant_hits", s.tainted_variant_hits) +
         f("variant_promotions", s.variant_promotions) +
         f("superblock_hits", s.superblock_hits) +
         f("superblock_transfers", s.superblock_transfers) +
         f("sa_pinned_blocks", s.sa_pinned_blocks) +
         f("sa_pinned_hits", s.sa_pinned_hits, true) + "}";
}

}  // namespace vpdift::dift
