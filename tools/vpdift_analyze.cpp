// vpdift-analyze — static firmware analysis and policy linter.
//
//   vpdift-analyze [options] <firmware>
//
//   <firmware>      a builtin name (primes, qsort, ..., immobilizer,
//                   immobilizer-vulnerable, attack:N, code-reuse) or a path
//                   to an ELF32 image — same resolution as vpdift-run
//   --policy P      policy to lint against (permissive, code-injection,
//                   immobilizer[-per-byte], or a policy file); empty = pure
//                   CFG recovery, no taint
//   --format F      json | text (default text)
//   --out FILE      write the report there instead of stdout ("-" = stdout)
//   --ram-size N    RAM size in bytes the image will run under (default 4 MiB)
//   --fail-on-violation   exit 1 when any statically reachable violation is
//                   reported (for CI gates); default exit 0 on a clean run
//
// Exit status: 0 on success (analysis ran; report written), 1 when
// --fail-on-violation tripped, 2 on usage or resolution errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "sa/analyze.hpp"

using namespace vpdift;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vpdift-analyze [--policy P] [--format json|text] "
               "[--out FILE|-] [--ram-size N] [--fail-on-violation] "
               "<firmware>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string firmware, policy, format = "text", out_path = "-";
  std::uint64_t ram_size = 4u << 20;
  bool fail_on_violation = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) { usage(); std::exit(2); }
      return argv[++i];
    };
    if (arg == "--policy") policy = next();
    else if (arg == "--format") {
      format = next();
      if (format != "json" && format != "text") {
        std::fprintf(stderr, "invalid value for --format: '%s'\n",
                     format.c_str());
        return usage();
      }
    } else if (arg == "--out") out_path = next();
    else if (arg == "--ram-size") {
      const char* v = next();
      if (!campaign::parse_u64(v, &ram_size) || ram_size == 0) {
        std::fprintf(stderr, "invalid value for --ram-size: '%s'\n", v);
        return usage();
      }
    } else if (arg == "--fail-on-violation") fail_on_violation = true;
    else if (arg == "--help" || arg == "-h") return usage();
    else if (!arg.empty() && arg[0] == '-') return usage();
    else if (firmware.empty()) firmware = arg;
    else return usage();
  }
  if (firmware.empty()) return usage();

  try {
    const rvasm::Program program = campaign::resolve_firmware(firmware);
    const campaign::ResolvedPolicy resolved =
        campaign::resolve_policy(policy, program);
    sa::AnalyzeOptions opts;
    opts.ram_size = ram_size;
    const sa::AnalysisResult r = sa::analyze(program, resolved.policy(), opts);
    const std::string report =
        format == "json" ? sa::to_json(r) + "\n" : sa::to_text(r);
    if (out_path == "-") {
      std::fwrite(report.data(), 1, report.size(), stdout);
    } else {
      std::ofstream out(out_path);
      if (!(out && (out << report))) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        return 2;
      }
    }
    return fail_on_violation && r.reachable_violations > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
