#!/bin/sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit, against a compile_commands.json export.
#
#   sh tools/run_clang_tidy.sh [build-dir]
#
# The build dir defaults to build-tidy and is configured on demand with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON. Containers without clang-tidy (the
# default dev image ships only gcc) skip with exit 0 so the script is safe
# to call unconditionally from CI matrices and pre-push hooks; the CI
# clang-tidy job installs the tool first, so there it really gates.
set -eu

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (ok)"
  exit 0
fi

BUILD_DIR="${1:-build-tidy}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Every first-party TU; third-party code (gtest) is pulled in as a target,
# never as a source file here, so no extra filtering is needed.
FILES=$(find src tools bench tests -name '*.cpp' | sort)

echo "run_clang_tidy: $TIDY over $(echo "$FILES" | wc -l) files"
# shellcheck disable=SC2086 — word splitting over the file list is the point
"$TIDY" -p "$BUILD_DIR" --quiet $FILES
echo "run_clang_tidy: clean"
