#!/usr/bin/env python3
"""Service smoke gate: a vpdift-serve daemon must reproduce the one-shot
CLI's fault-injection report bit-for-bit and demonstrate its warm cache.

The check:
  1. run `vpdift-campaign fi:qsort:20` one-shot — the baseline report;
  2. start `vpdift-serve` (2 worker processes) on a temporary socket;
  3. submit the SAME campaign twice through `vpdift-campaign --connect`;
  4. gate on
     (a) bit-identity of every deterministic report field (golden
         reference, per-fault verdicts, coverage matrix, verdict totals)
         between the baseline and BOTH service submissions — sharding
         across worker processes must not perturb a single verdict,
     (b) the second submission hitting the golden-run content-hash cache
         (service.golden_cache_hits >= 1) and retiring strictly fewer
         instructions than the first (warm fault-site snapshots).

Wall-clock fields (wall_s, mips) are host-dependent and excluded; the
"service"/"fork" counter blocks are compared only as described in (b).

Chaos mode (--chaos) gates the resilience layer instead: it runs
`vpdift-serve --self-test chaos` — which SIGKILLs a worker mid-campaign,
SIGSTOPs the pool to force the kill-escalation ladder, floods the
admission queue, submits an oversized ELF, and replays the baseline
campaign for bit-identity — and then asserts the resilience counters the
harness printed crossed their floors: hung_jobs >= 1, killed_workers >= 2,
shed_submissions >= 1, heartbeat_misses >= 1. The self-test already exits
non-zero on a behavioural failure; the counter gate here additionally
pins that every fault path was genuinely exercised (a timing change that
quietly stopped tripping the heartbeat detector would otherwise pass).

Usage: check_service_smoke.py <vpdift-serve> <vpdift-campaign>
       check_service_smoke.py --chaos <vpdift-serve>
"""
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REF = "fi:qsort:20"
SEED = 5


def run_campaign(campaign_bin, out_path, connect=None):
    cmd = [campaign_bin, "--quiet", "--force", "--jobs", "2",
           "--seed", str(SEED)]
    if connect:
        cmd += ["--connect", connect]
    cmd += [REF, "--out", out_path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(f"{' '.join(cmd)} exited {proc.returncode}\n"
                           f"{proc.stdout}{proc.stderr}")
    return json.load(open(out_path))


def deterministic_fields(report):
    """Everything a correct service must reproduce exactly."""
    return {
        "suite": report["suite"],
        "seed": report["seed"],
        "golden": report["golden"],
        "wdt_us": report["wdt_us"],
        "matrix": report["matrix"],
        "verdict_totals": report["verdict_totals"],
        "faults": report["faults"],
    }


CHAOS_FLOORS = {
    "hung_jobs": 1,
    "killed_workers": 2,
    "shed_submissions": 1,
    "heartbeat_misses": 1,
}


def chaos_gate(serve_bin) -> int:
    env = dict(os.environ)
    # The resource sandbox is compiled out under sanitizers, but the chaos
    # run still allocates aggressively while workers are being killed;
    # under ASan a failed allocation must return NULL (and surface as a
    # job-level crash) rather than abort the whole daemon.
    asan = env.get("ASAN_OPTIONS", "")
    env["ASAN_OPTIONS"] = (asan + ":" if asan else "") + \
        "allocator_may_return_null=1"
    proc = subprocess.run([serve_bin, "--self-test", "chaos"],
                          capture_output=True, text=True, env=env,
                          timeout=600)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"chaos self-test exited {proc.returncode}")
        return 1

    counters = None
    for line in proc.stdout.splitlines():
        if line.startswith("chaos-counters: "):
            counters = json.loads(line[len("chaos-counters: "):])
    if counters is None:
        print("chaos self-test printed no 'chaos-counters:' line")
        return 1

    bad = False
    for key, floor in CHAOS_FLOORS.items():
        got = counters.get(key)
        if not isinstance(got, (int, float)) or got < floor:
            print(f"chaos counter {key}={got}, need >= {floor}")
            bad = True
        else:
            print(f"chaos counter {key}={int(got)} OK (floor {floor})")
    if bad:
        return 1

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write("### Chaos self-test counters\n")
            for key, floor in CHAOS_FLOORS.items():
                f.write(f"- `{key}` = {int(counters[key])} "
                        f"(floor {floor})\n")
    return 0


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--chaos":
        return chaos_gate(sys.argv[2])
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    serve_bin, campaign_bin = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory() as td:
        baseline = run_campaign(campaign_bin, os.path.join(td, "base.json"))
        print(f"{REF} seed={SEED}: one-shot baseline "
              f"(golden {baseline['golden']['verdict']}, "
              f"{len(baseline['faults'])} faults)")

        sock = os.path.join(td, "vpdift.sock")
        daemon = subprocess.Popen(
            [serve_bin, "--socket", sock, "--workers", "2", "--quiet"])
        try:
            for _ in range(100):
                if os.path.exists(sock):
                    break
                time.sleep(0.1)
            else:
                raise RuntimeError("daemon socket never appeared")

            cold = run_campaign(campaign_bin, os.path.join(td, "cold.json"),
                                connect=sock)
            warm = run_campaign(campaign_bin, os.path.join(td, "warm.json"),
                                connect=sock)
        finally:
            daemon.send_signal(signal.SIGTERM)
            daemon.wait(timeout=30)

    bad = False
    want = deterministic_fields(baseline)
    for label, got in (("cold", cold), ("warm", warm)):
        have = deterministic_fields(got)
        for key in want:
            if have[key] != want[key]:
                print(f"[{label}] {key} differs from one-shot baseline")
                print(f"  expected: {json.dumps(want[key], sort_keys=True)}")
                print(f"  got:      {json.dumps(have[key], sort_keys=True)}")
                bad = True
        if not bad:
            print(f"[{label}] report matches the one-shot baseline")

    hits = warm["service"]["golden_cache_hits"]
    cold_instret = cold["service"]["executed_instret"]
    warm_instret = warm["service"]["executed_instret"]
    if hits < 1:
        print(f"warm submission missed the golden cache (hits={hits})")
        bad = True
    if warm_instret >= cold_instret:
        print(f"warm submission retired {warm_instret} instructions, "
              f"expected fewer than cold's {cold_instret}")
        bad = True
    if not bad:
        print(f"warm cache OK: golden hits={hits}, "
              f"instret {cold_instret} -> {warm_instret}")

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary and not bad:
        with open(summary, "a") as f:
            f.write("### Service warm-cache speedup\n"
                    f"- `{REF}` seed={SEED}: executed instret "
                    f"{cold_instret} (cold) -> {warm_instret} (warm), "
                    f"golden cache hits {hits}\n")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
