#!/usr/bin/env python3
"""CI analyzer smoke gate.

Runs vpdift-analyze over the pinned firmware/policy pairs of
ci/expected_analyze_smoke.json and compares the verdict fields exactly:

  * `reachable_violations` and the set of violation sites — the acceptance
    pair (the vulnerable immobilizer must be flagged statically, the fixed
    build must lint clean) can never silently regress;
  * `pin_mode`, `pinned_pcs` and `pin_hash` — the pin-set identity. A
    changed hash means the analyzer started pinning different blocks, which
    is only acceptable alongside a pin-parity test run (the bit-identity
    suite in tests/sa_analyze_test.cpp), so it must show up as a deliberate
    baseline update in the same change.

Usage: check_analyze_smoke.py <vpdift-analyze-binary> [--expected FILE]
Exit status: 0 when every case matches, 1 on any mismatch, 2 on usage or
tool-invocation errors.
"""

import argparse
import json
import pathlib
import subprocess
import sys


def run_analyze(binary: str, firmware: str, policy: str) -> dict:
    cmd = [binary, "--policy", policy, "--format", "json", firmware]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"{' '.join(cmd)} exited {proc.returncode}")
    return json.loads(proc.stdout)


def check_case(report: dict, want: dict) -> list:
    errors = []

    def field(name, got):
        if got != want[name]:
            errors.append(f"{name}: got {got!r}, want {want[name]!r}")

    field("complete", report.get("complete"))
    field("reachable_violations", report.get("reachable_violations"))
    field("pin_mode", report.get("pin_mode"))
    field("pinned_pcs", report.get("pinned_pcs"))
    field("pin_hash", report.get("pin_hash"))

    sites = sorted(
        f.get("where", "")
        for f in report.get("findings", [])
        if f.get("kind") == "reachable-violation"
    )
    if sites != sorted(want["violation_sites"]):
        errors.append(
            f"violation_sites: got {sites!r}, want {want['violation_sites']!r}"
        )
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="path to the vpdift-analyze binary")
    ap.add_argument(
        "--expected",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent
            / "ci"
            / "expected_analyze_smoke.json"
        ),
    )
    args = ap.parse_args()

    with open(args.expected) as f:
        expected = json.load(f)

    failed = False
    for case in expected["cases"]:
        name = f"{case['firmware']} x {case['policy']}"
        try:
            report = run_analyze(args.binary, case["firmware"], case["policy"])
        except (RuntimeError, json.JSONDecodeError, OSError) as e:
            print(f"FAIL {name}: {e}")
            return 2
        errors = check_case(report, case)
        if errors:
            failed = True
            print(f"FAIL {name}:")
            for e in errors:
                print(f"  {e}")
        else:
            print(
                f"OK   {name}: violations={case['reachable_violations']} "
                f"pin={case['pin_mode']}/{case['pinned_pcs']} "
                f"hash={case['pin_hash']}"
            )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
