// vpdift-serve — the campaign service daemon.
//
//   vpdift-serve --socket PATH [--workers N] [--quiet] [resilience knobs]
//   vpdift-serve --self-test [chaos]
//
//   --socket PATH   AF_UNIX socket to listen on (NDJSON protocol, see
//                   docs/service.md). Clients: vpdift-campaign --connect
//   --workers N     pre-forked worker processes (default 2). Each worker
//                   owns a warm content-hash cache (firmware, policies,
//                   golden runs, fault-site snapshots), so repeat
//                   submissions skip straight to the post-fault tails
//   --quiet         suppress stderr progress lines
//
// Resilience knobs (docs/service.md, "Failure modes & resilience"):
//
//   --max-job-wall S          server-side cap on per-job wall budgets;
//                             clamps client budgets, including "unlimited"
//   --max-job-mem MB          server-side cap on per-job RLIMIT_AS budgets
//   --max-queued N            admission-queue depth per worker; submissions
//                             beyond it are shed with "overloaded"
//   --heartbeat-ms MS         worker/client heartbeat period (0 disables)
//   --heartbeat-timeout-ms MS busy worker silent this long -> escalation
//   --kill-grace-ms MS        SIGTERM -> SIGKILL escalation grace
//
//   --self-test        end-to-end smoke: fork a daemon on a temporary
//                      socket, submit the same fi campaign twice, assert
//                      the two reports agree on every deterministic field
//                      and the second submission hit the golden cache and
//                      retired fewer instructions, print SELF-TEST OK
//   --self-test chaos  resilience smoke: fork a daemon with tight liveness
//                      budgets, then SIGKILL a worker, SIGSTOP the rest
//                      under an infinite-loop firmware, burst past the
//                      admission queue, feed it an oversized ELF and a
//                      client that never reads — asserting the daemon
//                      recovers every time, the surviving reports stay
//                      bit-identical to the pre-chaos baseline, and the
//                      resilience counters (hung_jobs, killed_workers,
//                      shed_submissions, heartbeat_misses) all moved.
//                      Prints "chaos-counters: {...}" then CHAOS SELF-TEST
//                      OK
//
// SIGINT/SIGTERM drain gracefully: in-flight submissions finish, queued
// ones are resolved as skipped with the report marked "interrupted", then
// the workers are told to quit and the socket is unlinked. Exit status 0
// on clean shutdown, 1 on a failed self-test, 2 on usage errors.
#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

using namespace vpdift;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: vpdift-serve --socket PATH [--workers N] [--quiet]\n"
      "                    [--max-job-wall S] [--max-job-mem MB]\n"
      "                    [--max-queued N] [--heartbeat-ms MS]\n"
      "                    [--heartbeat-timeout-ms MS] [--kill-grace-ms MS]\n"
      "       vpdift-serve --self-test [chaos]\n");
  return 2;
}

/// Strips the host-dependent lines (wall clock, cache counters) from a
/// report so two runs of the same campaign compare equal on everything
/// deterministic: schedule, per-fault verdicts, matrix, golden reference.
std::string deterministic_lines(const std::string& report) {
  std::istringstream in(report);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"wall_s\"") != std::string::npos) continue;
    if (line.find("\"service\"") != std::string::npos) continue;
    if (line.find("\"fork\"") != std::string::npos) continue;
    out << line << '\n';
  }
  return out.str();
}

int self_test() {
  char sock_template[] = "/tmp/vpdift-serve-XXXXXX";
  const int tmp_fd = ::mkstemp(sock_template);
  if (tmp_fd < 0) {
    std::fprintf(stderr, "self-test: mkstemp failed\n");
    return 1;
  }
  ::close(tmp_fd);
  const std::string sock = sock_template;
  ::unlink(sock.c_str());  // the server binds it fresh

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "self-test: fork failed\n");
    return 1;
  }
  if (pid == 0) {
    service::ServerOptions sopts;
    sopts.socket_path = sock;
    sopts.workers = 2;
    sopts.quiet = true;
    ::_exit(service::run_server(sopts));
  }

  int rc = 1;
  try {
    // The daemon needs a moment to bind; poll the socket.
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
      ::usleep(50 * 1000);
      try {
        service::Client probe(sock);
        up = probe.ping();
      } catch (const std::exception&) {
      }
    }
    if (!up) throw std::runtime_error("daemon did not come up");

    service::Client client(sock);
    const std::string ref = "fi:attack:3:4";
    std::printf("self-test: submitting %s (cold)...\n", ref.c_str());
    const service::Outcome cold = client.submit_ref(ref, 7, 2);
    if (!cold.error.empty())
      throw std::runtime_error("cold submission failed: " + cold.error);
    std::printf("self-test: cold done: %zu jobs, %llu instructions\n",
                cold.jobs,
                static_cast<unsigned long long>(cold.service.executed_instret));

    std::printf("self-test: submitting %s (warm)...\n", ref.c_str());
    const service::Outcome warm = client.submit_ref(ref, 7, 2);
    if (!warm.error.empty())
      throw std::runtime_error("warm submission failed: " + warm.error);
    std::printf(
        "self-test: warm done: golden cache hits %llu, %llu instructions\n",
        static_cast<unsigned long long>(warm.service.golden_cache_hits),
        static_cast<unsigned long long>(warm.service.executed_instret));

    if (deterministic_lines(cold.report) != deterministic_lines(warm.report))
      throw std::runtime_error("cold and warm reports differ");
    if (warm.service.golden_cache_hits < 1)
      throw std::runtime_error("warm submission missed the golden cache");
    if (warm.service.executed_instret >= cold.service.executed_instret)
      throw std::runtime_error(
          "warm submission did not retire fewer instructions (" +
          std::to_string(warm.service.executed_instret) + " vs " +
          std::to_string(cold.service.executed_instret) + ")");

    // Concurrency: two clients submitting at the same time, different seeds
    // so neither ride's the other's cache. Each runs in its own process so
    // the blocking submits genuinely overlap on the daemon.
    std::printf("self-test: two concurrent submissions...\n");
    pid_t kids[2] = {-1, -1};
    for (int k = 0; k < 2; ++k) {
      kids[k] = ::fork();
      if (kids[k] == 0) {
        try {
          service::Client c(sock);
          const service::Outcome o =
              c.submit_ref(ref, 100 + static_cast<std::uint64_t>(k), 2);
          ::_exit(o.error.empty() && !o.report.empty() ? 0 : 1);
        } catch (const std::exception&) {
          ::_exit(1);
        }
      }
    }
    for (int k = 0; k < 2; ++k) {
      int st = 0;
      ::waitpid(kids[k], &st, 0);
      if (!WIFEXITED(st) || WEXITSTATUS(st) != 0)
        throw std::runtime_error("concurrent submission " +
                                 std::to_string(k) + " failed");
    }
    std::printf("self-test: concurrent submissions ok\n");

    // Analysis cache: the same analyze submission twice. The wall budget
    // keeps the job out of the result cache (a wall-clocked run has no
    // stable identity) while the identical spec text keeps worker affinity,
    // so the warm pass re-executes the job but must reuse the cached
    // analysis instead of re-running the abstract interpreter.
    std::printf("self-test: analyze submission (cold)...\n");
    const char* aspec =
        "campaign analyze-smoke\n"
        "job immo\nfirmware immobilizer\npolicy immobilizer\n"
        "mode dift\nengine-ecu on\nmax-ms 2000\nwall-budget-s 60\n"
        "analyze on\n";
    const service::Outcome acold = client.submit_spec(aspec);
    if (!acold.error.empty())
      throw std::runtime_error("analyze cold failed: " + acold.error);
    if (acold.service.analysis_misses < 1)
      throw std::runtime_error("cold analyze did not run the analyzer");
    if (acold.report.find("\"analysis\":") == std::string::npos)
      throw std::runtime_error("analyze report lacks an analysis block");
    std::printf("self-test: analyze submission (warm)...\n");
    const service::Outcome awarm = client.submit_spec(aspec);
    if (!awarm.error.empty())
      throw std::runtime_error("analyze warm failed: " + awarm.error);
    if (awarm.service.analysis_hits < 1)
      throw std::runtime_error("warm analyze missed the analysis cache");
    std::printf("self-test: analysis cache ok (hits %llu)\n",
                static_cast<unsigned long long>(awarm.service.analysis_hits));

    client.shutdown_server();
    std::printf("SELF-TEST OK\n");
    rc = 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "self-test FAILED: %s\n", e.what());
    ::kill(pid, SIGTERM);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ::unlink(sock.c_str());
  return rc;
}

/// Live child pids of `parent`, via the /proc ppid field (field 4 of
/// /proc/<pid>/stat, after the parenthesised comm).
std::vector<pid_t> children_of(pid_t parent) {
  std::vector<pid_t> kids;
  DIR* d = ::opendir("/proc");
  if (!d) return kids;
  while (struct dirent* e = ::readdir(d)) {
    char* end = nullptr;
    const long p = std::strtol(e->d_name, &end, 10);
    if (end == e->d_name || *end != '\0' || p <= 0) continue;
    const std::string path = std::string("/proc/") + e->d_name + "/stat";
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f) continue;
    char buf[512];
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    const char* rp = std::strrchr(buf, ')');
    if (!rp) continue;
    char state = 0;
    int ppid = 0;
    if (std::sscanf(rp + 1, " %c %d", &state, &ppid) == 2 && ppid == parent)
      kids.push_back(static_cast<pid_t>(p));
  }
  ::closedir(d);
  return kids;
}

/// Waits until `parent` has at least `n` live children none of which is
/// `exclude` (a pid known to be dying). False on timeout.
bool wait_for_children(pid_t parent, std::size_t n, pid_t exclude = -1) {
  for (int i = 0; i < 200; ++i) {
    std::vector<pid_t> kids = children_of(parent);
    if (exclude > 0)
      kids.erase(std::remove(kids.begin(), kids.end(), exclude), kids.end());
    if (kids.size() >= n) return true;
    ::usleep(50 * 1000);
  }
  return false;
}

void put_u16(std::string* s, std::uint16_t v) {
  s->push_back(static_cast<char>(v & 0xff));
  s->push_back(static_cast<char>(v >> 8));
}
void put_u32(std::string* s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    s->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// A structurally valid ELF32 whose single PT_LOAD claims ~4 GiB of
/// memory backed by zero file bytes — the loader must reject it (load-size
/// cap) instead of allocating, and the daemon must survive the job.
bool write_oversized_elf(const std::string& path) {
  std::string img(16, '\0');
  img[0] = '\x7f'; img[1] = 'E'; img[2] = 'L'; img[3] = 'F';
  img[4] = 1;  // ELFCLASS32
  img[5] = 1;  // little-endian
  img[6] = 1;  // EV_CURRENT
  put_u16(&img, 2);            // e_type: ET_EXEC
  put_u16(&img, 0xF3);         // e_machine: RISC-V
  put_u32(&img, 1);            // e_version
  put_u32(&img, 0x80000000u);  // e_entry
  put_u32(&img, 52);           // e_phoff
  put_u32(&img, 0);            // e_shoff
  put_u32(&img, 0);            // e_flags
  put_u16(&img, 52);           // e_ehsize
  put_u16(&img, 32);           // e_phentsize
  put_u16(&img, 1);            // e_phnum
  put_u16(&img, 0);            // e_shentsize
  put_u16(&img, 0);            // e_shnum
  put_u16(&img, 0);            // e_shstrndx
  put_u32(&img, 1);            // p_type: PT_LOAD
  put_u32(&img, 84);           // p_offset
  put_u32(&img, 0x80000000u);  // p_vaddr
  put_u32(&img, 0x80000000u);  // p_paddr
  put_u32(&img, 0);            // p_filesz
  put_u32(&img, 0xFFFFF000u);  // p_memsz: ~4 GiB
  put_u32(&img, 7);            // p_flags: RWX
  put_u32(&img, 4);            // p_align
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(img.data(), 1, img.size(), f) == img.size();
  return std::fclose(f) == 0 && ok;
}

int chaos_test() {
  char sock_template[] = "/tmp/vpdift-chaos-XXXXXX";
  const int tmp_fd = ::mkstemp(sock_template);
  if (tmp_fd < 0) {
    std::fprintf(stderr, "chaos: mkstemp failed\n");
    return 1;
  }
  ::close(tmp_fd);
  const std::string sock = sock_template;
  ::unlink(sock.c_str());

  char elf_template[] = "/tmp/vpdift-chaos-elf-XXXXXX";
  const int elf_fd = ::mkstemp(elf_template);
  if (elf_fd < 0) {
    std::fprintf(stderr, "chaos: mkstemp failed\n");
    return 1;
  }
  ::close(elf_fd);
  const std::string elf_path = elf_template;
  if (!write_oversized_elf(elf_path)) {
    std::fprintf(stderr, "chaos: cannot write the oversized ELF\n");
    ::unlink(elf_path.c_str());
    return 1;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "chaos: fork failed\n");
    ::unlink(elf_path.c_str());
    return 1;
  }
  if (pid == 0) {
    // Tight liveness budgets so every escalation fires in test time rather
    // than operator time; the caps are what the chaos phases push against.
    service::ServerOptions sopts;
    sopts.socket_path = sock;
    sopts.workers = 2;
    sopts.quiet = true;
    sopts.heartbeat_ms = 100;
    sopts.heartbeat_timeout_ms = 1200;
    sopts.kill_grace_ms = 400;
    sopts.deadline_grace_ms = 1000;
    sopts.max_job_wall_s = 2.0;
    sopts.max_job_mem_mb = 512;
    sopts.max_queued = 4;
    ::_exit(service::run_server(sopts));
  }

  // An unbounded spin job: only the server's --max-job-wall clamp (healthy
  // worker) or heartbeat escalation (stopped worker) can end it.
  const char* spin_spec =
      "campaign chaos-spin\n"
      "job spin\n"
      "firmware spin\n"
      "mode dift\n"
      "max-ms 100000000\n";

  int rc = 1;
  try {
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
      ::usleep(50 * 1000);
      try {
        service::Client probe(sock);
        up = probe.ping();
      } catch (const std::exception&) {
      }
    }
    if (!up) throw std::runtime_error("daemon did not come up");
    if (!wait_for_children(pid, 2))
      throw std::runtime_error("workers did not come up");

    service::Client client(sock);
    const std::string ref = "fi:attack:3:4";

    std::printf("chaos: baseline %s...\n", ref.c_str());
    const service::Outcome base = client.submit_ref(ref, 7, 2);
    if (!base.error.empty())
      throw std::runtime_error("baseline submission failed: " + base.error);

    // Phase 1: SIGKILL one worker outright; the daemon must notice, count
    // it, respawn, and serve the next submission as if nothing happened.
    std::vector<pid_t> kids = children_of(pid);
    if (kids.size() < 2) throw std::runtime_error("expected 2 workers");
    std::printf("chaos: SIGKILL worker %d...\n", static_cast<int>(kids[0]));
    ::kill(kids[0], SIGKILL);
    if (!wait_for_children(pid, 2, kids[0]))
      throw std::runtime_error("daemon did not respawn the killed worker");
    const service::Outcome after = client.submit_ref(ref, 11, 2);
    if (!after.error.empty())
      throw std::runtime_error("submission after worker kill failed: " +
                               after.error);
    std::printf("chaos: recovered from worker kill\n");

    // Phase 2: an unbounded job against --max-job-wall. The healthy worker
    // keeps heartbeating, so no escalation — the clamped wall budget ends
    // the job gracefully as wall-timeout.
    std::printf("chaos: unbounded spin job vs --max-job-wall...\n");
    std::string verdict;
    const service::Outcome wall = client.submit_spec(
        spin_spec,
        [&](const service::JobEvent& je) { verdict = je.verdict; });
    if (!wall.error.empty())
      throw std::runtime_error("spin submission failed: " + wall.error);
    if (verdict != "wall-timeout")
      throw std::runtime_error("expected wall-timeout under the server cap, "
                               "got '" + verdict + "'");

    // Phase 3: SIGSTOP every worker and submit the spin job again. A
    // stopped worker cannot heartbeat, so the dispatching side must
    // escalate SIGTERM -> SIGKILL, report the job "hung" and respawn.
    kids = children_of(pid);
    std::printf("chaos: SIGSTOP all %zu workers, submitting spin...\n",
                kids.size());
    for (const pid_t k : kids) ::kill(k, SIGSTOP);
    verdict.clear();
    const service::Outcome hang = client.submit_spec(
        spin_spec,
        [&](const service::JobEvent& je) { verdict = je.verdict; });
    for (const pid_t k : kids) ::kill(k, SIGCONT);  // survivor resumes;
                                                    // ESRCH for the reaped
    if (!hang.error.empty())
      throw std::runtime_error("hang submission failed: " + hang.error);
    if (verdict != "hung")
      throw std::runtime_error("expected a hung verdict, got '" + verdict +
                               "'");
    if (hang.ok)
      throw std::runtime_error("a hung campaign must not report ok");
    std::printf("chaos: hung job escalated and reported\n");

    // Phase 4: burst past the admission queue (9 jobs > 4 queued x 2
    // workers). A client with retries disabled must see the structured
    // shed reply instead of hanging in the backlog.
    if (!wait_for_children(pid, 2))
      throw std::runtime_error("daemon did not respawn after the hang");
    std::string burst = "campaign chaos-burst\n";
    for (int i = 0; i < 9; ++i)
      burst += "job burst" + std::to_string(i) +
               "\nfirmware qsort\nmode plain\nmax-ms 5\n";
    service::ClientOptions no_retry;
    no_retry.submit_retries = 0;
    service::Client impatient(sock, no_retry);
    const service::Outcome shed = impatient.submit_spec(burst);
    if (shed.error != "overloaded")
      throw std::runtime_error("expected the burst to be shed, got '" +
                               (shed.error.empty() ? std::string("ok")
                                                   : shed.error) + "'");
    if (shed.retry_after_ms == 0)
      throw std::runtime_error("overloaded reply lacks retry_after_ms");
    std::printf("chaos: burst shed with retry_after_ms=%llu\n",
                static_cast<unsigned long long>(shed.retry_after_ms));

    // Phase 5: an ELF whose PT_LOAD claims ~4 GiB. The loader must reject
    // it inside the worker and the daemon must stay up.
    std::printf("chaos: oversized ELF...\n");
    const service::Outcome evil = client.submit_spec(
        "campaign chaos-evil\njob evil\nfirmware " + elf_path +
        "\nmode plain\nmax-ms 100\n");
    if (evil.ok)
      throw std::runtime_error("oversized ELF reported ok");
    if (!client.ping())
      throw std::runtime_error("daemon died on the oversized ELF");
    std::printf("chaos: oversized ELF contained\n");

    // Phase 6: a client that submits and then never reads. The daemon's
    // write queue must absorb it without blocking other connections, and
    // the eventual hangup must drop the submission cleanly.
    std::printf("chaos: slow-reader client...\n");
    const int sfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (sfd < 0) throw std::runtime_error("socket() failed");
    struct sockaddr_un addr {};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
    if (::connect(sfd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(sfd);
      throw std::runtime_error("slow reader cannot connect");
    }
    service::write_line(
        sfd, "{\"op\":\"submit\",\"id\":1,\"ref\":\"" + ref +
                 "\",\"seed\":99,\"workers\":2}");
    ::usleep(500 * 1000);  // let the daemon stream into the unread socket
    if (!client.ping())
      throw std::runtime_error("daemon blocked by a slow reader");
    ::close(sfd);  // hang up mid-submission
    if (!client.ping())
      throw std::runtime_error("daemon died dropping the slow reader");
    std::printf("chaos: slow reader absorbed and dropped\n");

    // Phase 7: after all of the above, the same campaign must still
    // produce a bit-identical deterministic report.
    const service::Outcome fin = client.submit_ref(ref, 7, 2);
    if (!fin.error.empty())
      throw std::runtime_error("final submission failed: " + fin.error);
    if (deterministic_lines(base.report) != deterministic_lines(fin.report))
      throw std::runtime_error("reports diverged after chaos");

    const service::CacheStats s = client.server_stats();
    std::printf("chaos-counters: %s\n", s.to_json().c_str());
    if (s.hung_jobs < 1)
      throw std::runtime_error("expected hung_jobs >= 1");
    if (s.killed_workers < 2)
      throw std::runtime_error("expected killed_workers >= 2");
    if (s.shed_submissions < 1)
      throw std::runtime_error("expected shed_submissions >= 1");
    if (s.heartbeat_misses < 1)
      throw std::runtime_error("expected heartbeat_misses >= 1");

    client.shutdown_server();
    std::printf("CHAOS SELF-TEST OK\n");
    rc = 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos self-test FAILED: %s\n", e.what());
    ::kill(pid, SIGKILL);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (rc == 0 && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
    std::fprintf(stderr, "chaos self-test FAILED: daemon exit status %d\n",
                 status);
    rc = 1;
  }
  ::unlink(sock.c_str());
  ::unlink(elf_path.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerOptions opts;
  bool run_self_test = false;
  bool chaos = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) { usage(); std::exit(2); }
      return argv[++i];
    };
    auto next_u64 = [&](std::uint64_t* out) {
      const char* v = next();
      if (!campaign::parse_u64(v, out)) {
        std::fprintf(stderr, "invalid value for %s: '%s'\n", arg.c_str(), v);
        usage();
        std::exit(2);
      }
    };
    if (arg == "--socket") {
      opts.socket_path = next();
    } else if (arg == "--workers") {
      std::uint64_t n = 0;
      const char* v = next();
      if (!campaign::parse_u64(v, &n) || n < 1 || n > 64) {
        std::fprintf(stderr, "invalid value for --workers: '%s'\n", v);
        return usage();
      }
      opts.workers = static_cast<std::size_t>(n);
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--max-job-wall") {
      double v = 0;
      const char* s = next();
      if (!campaign::parse_f64(s, &v) || v < 0) {
        std::fprintf(stderr, "invalid value for --max-job-wall: '%s'\n", s);
        return usage();
      }
      opts.max_job_wall_s = v;
    } else if (arg == "--max-job-mem") {
      next_u64(&opts.max_job_mem_mb);
    } else if (arg == "--max-queued") {
      std::uint64_t n = 0;
      next_u64(&n);
      opts.max_queued = static_cast<std::size_t>(n);
    } else if (arg == "--heartbeat-ms") {
      next_u64(&opts.heartbeat_ms);
    } else if (arg == "--heartbeat-timeout-ms") {
      next_u64(&opts.heartbeat_timeout_ms);
    } else if (arg == "--kill-grace-ms") {
      next_u64(&opts.kill_grace_ms);
    } else if (arg == "--self-test") {
      run_self_test = true;
      if (i + 1 < argc && std::strcmp(argv[i + 1], "chaos") == 0) {
        chaos = true;
        ++i;
      }
    } else {
      return usage();
    }
  }

  if (run_self_test) return chaos ? chaos_test() : self_test();
  if (opts.socket_path.empty()) return usage();
  try {
    return service::run_server(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vpdift-serve: fatal: %s\n", e.what());
    return 2;
  }
}
