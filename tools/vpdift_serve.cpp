// vpdift-serve — the campaign service daemon.
//
//   vpdift-serve --socket PATH [--workers N] [--quiet]
//   vpdift-serve --self-test
//
//   --socket PATH   AF_UNIX socket to listen on (NDJSON protocol, see
//                   docs/service.md). Clients: vpdift-campaign --connect
//   --workers N     pre-forked worker processes (default 2). Each worker
//                   owns a warm content-hash cache (firmware, policies,
//                   golden runs, fault-site snapshots), so repeat
//                   submissions skip straight to the post-fault tails
//   --quiet         suppress stderr progress lines
//   --self-test     end-to-end smoke: fork a daemon on a temporary socket,
//                   submit the same fi campaign twice, assert the two
//                   reports agree on every deterministic field and the
//                   second submission hit the golden cache and retired
//                   fewer instructions, print SELF-TEST OK
//
// SIGINT/SIGTERM drain gracefully: in-flight submissions finish, then the
// workers are told to quit and the socket is unlinked. Exit status 0 on
// clean shutdown, 1 on a failed self-test, 2 on usage errors.
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "campaign/spec.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

using namespace vpdift;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vpdift-serve --socket PATH [--workers N] [--quiet]\n"
               "       vpdift-serve --self-test\n");
  return 2;
}

/// Strips the host-dependent lines (wall clock, cache counters) from a
/// report so two runs of the same campaign compare equal on everything
/// deterministic: schedule, per-fault verdicts, matrix, golden reference.
std::string deterministic_lines(const std::string& report) {
  std::istringstream in(report);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"wall_s\"") != std::string::npos) continue;
    if (line.find("\"service\"") != std::string::npos) continue;
    if (line.find("\"fork\"") != std::string::npos) continue;
    out << line << '\n';
  }
  return out.str();
}

int self_test() {
  char sock_template[] = "/tmp/vpdift-serve-XXXXXX";
  const int tmp_fd = ::mkstemp(sock_template);
  if (tmp_fd < 0) {
    std::fprintf(stderr, "self-test: mkstemp failed\n");
    return 1;
  }
  ::close(tmp_fd);
  const std::string sock = sock_template;
  ::unlink(sock.c_str());  // the server binds it fresh

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "self-test: fork failed\n");
    return 1;
  }
  if (pid == 0) {
    service::ServerOptions sopts;
    sopts.socket_path = sock;
    sopts.workers = 2;
    sopts.quiet = true;
    ::_exit(service::run_server(sopts));
  }

  int rc = 1;
  try {
    // The daemon needs a moment to bind; poll the socket.
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
      ::usleep(50 * 1000);
      try {
        service::Client probe(sock);
        up = probe.ping();
      } catch (const std::exception&) {
      }
    }
    if (!up) throw std::runtime_error("daemon did not come up");

    service::Client client(sock);
    const std::string ref = "fi:attack:3:4";
    std::printf("self-test: submitting %s (cold)...\n", ref.c_str());
    const service::Outcome cold = client.submit_ref(ref, 7, 2);
    if (!cold.error.empty())
      throw std::runtime_error("cold submission failed: " + cold.error);
    std::printf("self-test: cold done: %zu jobs, %llu instructions\n",
                cold.jobs,
                static_cast<unsigned long long>(cold.service.executed_instret));

    std::printf("self-test: submitting %s (warm)...\n", ref.c_str());
    const service::Outcome warm = client.submit_ref(ref, 7, 2);
    if (!warm.error.empty())
      throw std::runtime_error("warm submission failed: " + warm.error);
    std::printf(
        "self-test: warm done: golden cache hits %llu, %llu instructions\n",
        static_cast<unsigned long long>(warm.service.golden_cache_hits),
        static_cast<unsigned long long>(warm.service.executed_instret));

    if (deterministic_lines(cold.report) != deterministic_lines(warm.report))
      throw std::runtime_error("cold and warm reports differ");
    if (warm.service.golden_cache_hits < 1)
      throw std::runtime_error("warm submission missed the golden cache");
    if (warm.service.executed_instret >= cold.service.executed_instret)
      throw std::runtime_error(
          "warm submission did not retire fewer instructions (" +
          std::to_string(warm.service.executed_instret) + " vs " +
          std::to_string(cold.service.executed_instret) + ")");

    // Concurrency: two clients submitting at the same time, different seeds
    // so neither ride's the other's cache. Each runs in its own process so
    // the blocking submits genuinely overlap on the daemon.
    std::printf("self-test: two concurrent submissions...\n");
    pid_t kids[2] = {-1, -1};
    for (int k = 0; k < 2; ++k) {
      kids[k] = ::fork();
      if (kids[k] == 0) {
        try {
          service::Client c(sock);
          const service::Outcome o =
              c.submit_ref(ref, 100 + static_cast<std::uint64_t>(k), 2);
          ::_exit(o.error.empty() && !o.report.empty() ? 0 : 1);
        } catch (const std::exception&) {
          ::_exit(1);
        }
      }
    }
    for (int k = 0; k < 2; ++k) {
      int st = 0;
      ::waitpid(kids[k], &st, 0);
      if (!WIFEXITED(st) || WEXITSTATUS(st) != 0)
        throw std::runtime_error("concurrent submission " +
                                 std::to_string(k) + " failed");
    }
    std::printf("self-test: concurrent submissions ok\n");

    // Analysis cache: the same analyze submission twice. The wall budget
    // keeps the job out of the result cache (a wall-clocked run has no
    // stable identity) while the identical spec text keeps worker affinity,
    // so the warm pass re-executes the job but must reuse the cached
    // analysis instead of re-running the abstract interpreter.
    std::printf("self-test: analyze submission (cold)...\n");
    const char* aspec =
        "campaign analyze-smoke\n"
        "job immo\nfirmware immobilizer\npolicy immobilizer\n"
        "mode dift\nengine-ecu on\nmax-ms 2000\nwall-budget-s 60\n"
        "analyze on\n";
    const service::Outcome acold = client.submit_spec(aspec);
    if (!acold.error.empty())
      throw std::runtime_error("analyze cold failed: " + acold.error);
    if (acold.service.analysis_misses < 1)
      throw std::runtime_error("cold analyze did not run the analyzer");
    if (acold.report.find("\"analysis\":") == std::string::npos)
      throw std::runtime_error("analyze report lacks an analysis block");
    std::printf("self-test: analyze submission (warm)...\n");
    const service::Outcome awarm = client.submit_spec(aspec);
    if (!awarm.error.empty())
      throw std::runtime_error("analyze warm failed: " + awarm.error);
    if (awarm.service.analysis_hits < 1)
      throw std::runtime_error("warm analyze missed the analysis cache");
    std::printf("self-test: analysis cache ok (hits %llu)\n",
                static_cast<unsigned long long>(awarm.service.analysis_hits));

    client.shutdown_server();
    std::printf("SELF-TEST OK\n");
    rc = 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "self-test FAILED: %s\n", e.what());
    ::kill(pid, SIGTERM);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ::unlink(sock.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerOptions opts;
  bool run_self_test = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) { usage(); std::exit(2); }
      return argv[++i];
    };
    if (arg == "--socket") {
      opts.socket_path = next();
    } else if (arg == "--workers") {
      std::uint64_t n = 0;
      const char* v = next();
      if (!campaign::parse_u64(v, &n) || n < 1 || n > 64) {
        std::fprintf(stderr, "invalid value for --workers: '%s'\n", v);
        return usage();
      }
      opts.workers = static_cast<std::size_t>(n);
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--self-test") {
      run_self_test = true;
    } else {
      return usage();
    }
  }

  if (run_self_test) return self_test();
  if (opts.socket_path.empty()) return usage();
  try {
    return service::run_server(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vpdift-serve: fatal: %s\n", e.what());
    return 2;
  }
}
