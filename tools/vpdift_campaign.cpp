// vpdift-campaign — batch-execution front end for the virtual prototype.
//
//   vpdift-campaign [options] <spec-file>
//   vpdift-campaign [options] fi:<benchmark>:<n-faults>
//   vpdift-campaign [options] --suite table1
//   vpdift-campaign [options] --suite table2[:scale]
//
//   <spec-file>     campaign spec, text or JSON (see src/campaign/spec.hpp
//                   and docs/campaign.md for the format)
//   fi:<bm>:<n>     fault-injection campaign: n seeded faults against
//                   benchmark bm, classified against a fault-free golden
//                   run (see docs/fault_injection.md)
//   --suite NAME    a built-in suite instead of a spec file: the paper's
//                   Table I attack sweep or Table II overhead matrix
//   --jobs N        worker threads (default: $VPDIFT_JOBS, else 1 = serial)
//   --seed N        master seed of the fi: fault schedule (default 1)
//   --fork          fi: campaigns only — fork mode: one golden run per
//                   worker, snapshot at each fault site, execute only the
//                   post-fault tails (bit-identical matrix, fewer retired
//                   instructions; see docs/fault_injection.md)
//   --connect SOCK  submit to a running vpdift-serve daemon on the AF_UNIX
//                   socket SOCK instead of executing locally (spec files
//                   and fi: refs; built-in suites stay local-only). The
//                   report is the daemon's, bit-identical to a local run
//                   plus a "service" cache-counter block (docs/service.md)
//   --connect-timeout S   with --connect: give up after S seconds waiting
//                   for the connection or a control-plane reply (default
//                   30; 0 = wait forever). A daemon that accepted the
//                   socket but never answers fails instead of hanging
//   --analyze       run the static analyzer (CFG + taint reachability,
//                   docs/analysis.md) over every job's firmware x policy:
//                   each job result carries the lint report and, in
//                   dift/monitor modes, the plain-block pin set is
//                   installed ahead of time. Same as `analyze on` on every
//                   job. Spec files and suites only (not fi: campaigns)
//   --out FILE      JSON campaign report (default: CAMPAIGN_<name>.json,
//                   or FI_<benchmark>_<n>.json for fi: campaigns).
//                   "-" streams the report to stdout (progress lines move
//                   to stderr). An existing report file is never
//                   overwritten without --force
//   --force         overwrite an existing report file
//   --quiet         suppress the per-job progress lines
//   --list          print the parsed job list and exit without running
//
// SIGINT/SIGTERM during a local campaign cancel gracefully: in-flight jobs
// finish, the remainder are skipped, and the partial report is written with
// an "interrupted": true field; exit status 1.
//
// Exit status: 0 when every job met its expectation (for --suite table1,
// additionally when all 18 rows match the paper; for fi: campaigns, when no
// fault run crashed the VP), 1 otherwise (or interrupted), 2 on usage or
// spec errors (including a refused report overwrite).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "campaign/aggregator.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "campaign/suites.hpp"
#include "campaign/thread_pool.hpp"
#include "fi/fork.hpp"
#include "fi/suite.hpp"
#include "service/client.hpp"

using namespace vpdift;

namespace {

std::atomic<bool> g_cancel{false};

void on_cancel_signal(int) { g_cancel.store(true, std::memory_order_relaxed); }

void install_cancel_handlers() {
  struct sigaction sa {};
  sa.sa_handler = on_cancel_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // interrupt blocking calls so the cancel is prompt
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int usage() {
  std::fprintf(stderr,
               "usage: vpdift-campaign [--jobs N] [--seed N] [--fork] "
               "[--connect SOCK] [--connect-timeout S] [--analyze] "
               "[--out FILE|-] [--force] "
               "[--quiet] [--list]\n"
               "                       <spec-file | fi:<benchmark>:<n-faults> "
               "| --suite table1 | --suite table2[:scale]>\n");
  return 2;
}

bool file_exists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

/// Writes `text` to `path`, or to stdout when path is "-". An existing file
/// is refused without `force` (exit-code-2 contract). Returns 0/1/2 style:
/// 0 ok, 1 write failure, 2 refused.
int emit_report(const std::string& path, const std::string& text, bool force,
                FILE* prog) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
    return 0;
  }
  if (!force && file_exists(path)) {
    std::fprintf(stderr, "refusing to overwrite %s (use --force)\n",
                 path.c_str());
    return 2;
  }
  std::ofstream out(path);
  if (!(out && (out << text))) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(prog, "wrote %s\n", path.c_str());
  return 0;
}

int print_table1(const std::vector<campaign::JobResult>& results, FILE* prog) {
  const auto rows = campaign::suites::table1_rows(results);
  std::fprintf(prog, "\nTable I — buffer-overflow test-suite results\n");
  std::fprintf(prog, "%-4s %-14s %-26s %-10s %-10s %-10s %s\n", "Atk",
               "Location", "Target", "Technique", "Result", "Paper", "Match");
  int mismatches = 0;
  for (const auto& row : rows) {
    if (!row.match) ++mismatches;
    std::fprintf(prog, "%-4d %-14s %-26s %-10s %-10s %-10s %s%s\n", row.id,
                 row.location, row.target, row.technique, row.result.c_str(),
                 row.expected.c_str(), row.match ? "yes" : "NO",
                 row.result != "N/A" && !row.exploit_works
                     ? "  [warning: exploit inert on plain VP]"
                     : "");
  }
  std::fprintf(prog, "\n%s: %d/18 rows match the paper's Table I.\n",
               mismatches == 0 ? "OK" : "FAILED", 18 - mismatches);
  return mismatches == 0 ? 0 : 1;
}

int print_table2(const std::vector<campaign::JobResult>& results,
                 std::uint32_t scale, FILE* prog) {
  const auto rows = campaign::suites::table2_rows(results, scale);
  std::fprintf(prog,
               "\nTable II — performance overhead of VP-based DIFT "
               "(VP vs VP+)\n");
  std::fprintf(prog, "%-14s %14s | %9s %9s | %5s\n", "Benchmark",
               "#instr exec.", "VP [s]", "VP+ [s]", "Ov");
  bool all_ok = true;
  for (const auto& row : rows) {
    all_ok = all_ok && row.plain.ok && row.dift.ok;
    std::fprintf(prog, "%-14s %14llu | %9.2f %9.2f | %4.1fx%s\n",
                 row.name.c_str(),
                 static_cast<unsigned long long>(row.plain.run.instret),
                 row.plain.run.wall_seconds, row.dift.run.wall_seconds,
                 row.overhead,
                 row.plain.ok && row.dift.ok ? "" : "  [SELF-CHECK FAILED]");
  }
  std::fprintf(prog, "%s\n", all_ok ? "OK: all self-checks passed."
                                    : "FAILED: a workload self-check failed.");
  return all_ok ? 0 : 1;
}

/// Client mode: submit to a vpdift-serve daemon and relay its report.
int run_connected(const std::string& socket_path, const std::string& spec_path,
                  std::uint64_t seed, std::size_t jobs, bool analyze,
                  std::uint64_t connect_timeout_s, const std::string& out_path,
                  bool force, bool quiet, FILE* prog) {
  fi::FiSuiteSpec fi_spec;
  const bool is_fi = fi::parse_fi_ref(spec_path, &fi_spec);
  if (is_fi && analyze) {
    std::fprintf(stderr, "--analyze applies to spec campaigns, not fi:\n");
    return 2;
  }

  std::string report_path = out_path;
  if (report_path.empty()) {
    if (is_fi) {
      report_path = "FI_" + fi_spec.benchmark + "_" +
                    std::to_string(fi_spec.n_faults) + ".json";
      for (char& c : report_path)
        if (c == ':' || c == '/') c = '-';
    } else {
      report_path = "CAMPAIGN_remote.json";
    }
  }
  if (report_path != "-" && !force && file_exists(report_path)) {
    std::fprintf(stderr, "refusing to overwrite %s (use --force)\n",
                 report_path.c_str());
    return 2;
  }

  service::ClientOptions copts;
  copts.timeout_ms = connect_timeout_s * 1000;
  service::Client client(socket_path, copts);
  std::size_t done = 0;
  const auto on_job = [&](const service::JobEvent& je) {
    ++done;
    if (!quiet)
      std::fprintf(prog, "[%zu] %-20s %-28s %s\n", done, je.name.c_str(),
                   je.verdict.c_str(), je.ok ? "ok" : "FAILED");
  };

  service::Outcome out;
  if (is_fi) {
    out = client.submit_ref(spec_path, seed, jobs, on_job);
  } else {
    std::ifstream in(spec_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", spec_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    out = client.submit_spec(text.str(), on_job, analyze);
  }
  if (!out.error.empty()) {
    std::fprintf(stderr, "error: server: %s\n", out.error.c_str());
    return 2;
  }
  std::fprintf(prog,
               "service: %zu jobs, golden cache %llu hit%s / %llu miss, "
               "%llu instructions executed\n",
               out.jobs,
               static_cast<unsigned long long>(out.service.golden_cache_hits),
               out.service.golden_cache_hits == 1 ? "" : "s",
               static_cast<unsigned long long>(out.service.golden_cache_misses),
               static_cast<unsigned long long>(out.service.executed_instret));
  const int emit = emit_report(report_path, out.report, force, prog);
  if (emit == 2) return 2;
  return out.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, suite, out_path, connect_path;
  std::size_t jobs = campaign::ThreadPool::jobs_from_env(1);
  std::uint64_t seed = 1;
  std::uint64_t connect_timeout_s = 30;
  bool quiet = false, list = false, fork_mode = false, force = false;
  bool analyze = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) { usage(); std::exit(2); }
      return argv[++i];
    };
    if (arg == "--jobs") {
      std::uint64_t n = 0;
      const char* v = next();
      if (!campaign::parse_u64(v, &n) || n < 1 || n > 1024) {
        std::fprintf(stderr, "invalid value for --jobs: '%s'\n", v);
        return usage();
      }
      jobs = static_cast<std::size_t>(n);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!campaign::parse_u64(v, &seed)) {
        std::fprintf(stderr, "invalid value for --seed: '%s'\n", v);
        return usage();
      }
    } else if (arg == "--connect-timeout") {
      const char* v = next();
      if (!campaign::parse_u64(v, &connect_timeout_s) ||
          connect_timeout_s > 86400) {
        std::fprintf(stderr, "invalid value for --connect-timeout: '%s'\n", v);
        return usage();
      }
    } else if (arg == "--suite") suite = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--connect") connect_path = next();
    else if (arg == "--fork") fork_mode = true;
    else if (arg == "--analyze") analyze = true;
    else if (arg == "--force") force = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--list") list = true;
    else if (arg == "--help" || arg == "-h") return usage();
    else if (!arg.empty() && arg[0] == '-' && arg != "-") return usage();
    else spec_path = arg;
  }
  if (spec_path.empty() == suite.empty()) return usage();  // exactly one

  // With --out - the report owns stdout; everything else moves to stderr.
  FILE* const prog = out_path == "-" ? stderr : stdout;

  if (!connect_path.empty()) {
    if (!suite.empty()) {
      std::fprintf(stderr, "--connect takes a spec file or fi: ref, "
                           "not a built-in suite\n");
      return 2;
    }
    if (fork_mode || list) {
      std::fprintf(stderr, "--fork/--list do not apply with --connect "
                           "(the daemon decides the execution mode)\n");
      return 2;
    }
    try {
      return run_connected(connect_path, spec_path, seed, jobs, analyze,
                           connect_timeout_s, out_path, force, quiet, prog);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  try {
    campaign::CampaignSpec spec;
    std::uint32_t table2_scale = 1;
    fi::FiSuiteSpec fi_spec;
    std::optional<fi::FiSuite> fi_suite;
    if (!spec_path.empty() && fi::parse_fi_ref(spec_path, &fi_spec)) {
      fi_spec.seed = seed;
      std::fprintf(prog, "fi: golden run of %s (serial)...\n",
                   fi_spec.benchmark.c_str());
      fi_suite = fi::build_suite(fi_spec);
      std::fprintf(
          prog,
          "fi: golden %s, %llu instructions, %llu us simulated; "
          "%zu faults from seed %llu, watchdog %u us\n",
          fi_suite->golden.verdict.c_str(),
          static_cast<unsigned long long>(fi_suite->golden.run.instret),
          static_cast<unsigned long long>(fi_suite->golden_us),
          fi_suite->faults.size(),
          static_cast<unsigned long long>(fi_spec.seed), fi_suite->wdt_us);
      spec = fi_suite->jobs;
    } else if (suite.empty()) {
      spec = campaign::CampaignSpec::load_file(spec_path);
    } else if (suite == "table1") {
      spec = campaign::suites::table1();
    } else if (suite == "table2" || suite.rfind("table2:", 0) == 0) {
      if (suite.size() > 7) {
        std::uint64_t s = 0;
        if (!campaign::parse_u64(suite.substr(7), &s) || s < 1) {
          std::fprintf(stderr, "invalid table2 scale in '%s'\n", suite.c_str());
          return 2;
        }
        table2_scale = static_cast<std::uint32_t>(s);
      }
      spec = campaign::suites::table2(table2_scale);
    } else {
      std::fprintf(stderr, "unknown suite '%s' (table1 | table2[:scale])\n",
                   suite.c_str());
      return 2;
    }
    if (fork_mode && !fi_suite) {
      std::fprintf(stderr,
                   "--fork applies to fi:<benchmark>:<n> campaigns only\n");
      return 2;
    }
    if (analyze) {
      if (fi_suite) {
        std::fprintf(stderr, "--analyze applies to spec campaigns, not fi:\n");
        return 2;
      }
      for (auto& j : spec.jobs) j.analyze = true;
    }

    // The report path is fixed before anything runs so a refused overwrite
    // costs nothing.
    std::string report_path = out_path;
    if (report_path.empty()) {
      if (fi_suite) {
        report_path = "FI_" + fi_spec.benchmark + "_" +
                      std::to_string(fi_spec.n_faults) + ".json";
        for (char& c : report_path)
          if (c == ':' || c == '/') c = '-';
      } else {
        report_path = "CAMPAIGN_" + spec.name + ".json";
      }
    }
    if (report_path != "-" && !force && file_exists(report_path)) {
      std::fprintf(stderr, "refusing to overwrite %s (use --force)\n",
                   report_path.c_str());
      return 2;
    }

    std::fprintf(prog, "campaign %s: %zu jobs on %zu worker%s\n",
                 spec.name.c_str(), spec.jobs.size(), jobs,
                 jobs == 1 ? "" : "s");
    if (list) {
      for (const auto& j : spec.jobs)
        std::fprintf(prog,
                     "  %-20s fw=%-12s mode=%-7s policy=%-20s max-ms=%llu%s\n",
                     j.name.c_str(), j.firmware.c_str(),
                     campaign::to_string(j.mode),
                     j.policy.empty() ? "-" : j.policy.c_str(),
                     static_cast<unsigned long long>(j.max_ms),
                     j.expect.empty() ? "" : (" expect=" + j.expect).c_str());
      return 0;
    }

    campaign::Aggregator agg;
    std::size_t done = 0;
    campaign::RunnerOptions opts;
    opts.jobs = jobs;
    opts.cancel = &g_cancel;
    opts.on_done = [&](const campaign::JobResult& r) {
      agg.add(r);
      ++done;
      if (!quiet)
        std::fprintf(
            prog, "[%zu/%zu] %-20s %-28s %s (%.2f s%s)\n", done,
            spec.jobs.size(), r.name.c_str(), r.verdict.c_str(),
            r.ok ? "ok" : "FAILED", r.wall_seconds,
            r.attempts > 1
                ? (", " + std::to_string(r.attempts) + " attempts").c_str()
                : "");
    };
    install_cancel_handlers();

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<campaign::JobResult> results;
    fi::ForkStats fork_stats;
    if (fork_mode) {
      results = fi::run_forked(*fi_suite, jobs, opts.on_done, &fork_stats,
                               &g_cancel);
    } else {
      campaign::Runner runner(opts);
      results = runner.run(spec);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (g_cancel.load(std::memory_order_relaxed)) {
      // Graceful interrupt: in-flight jobs finished, the rest were skipped.
      // The partial report (finished jobs only) is always the aggregate
      // shape — a detection-coverage matrix over skipped fault runs would
      // misclassify them — and carries "interrupted": true.
      agg.set_interrupted(true);
      std::fprintf(prog, "interrupted: %zu of %zu jobs finished\n", done,
                   spec.jobs.size());
      std::fprintf(prog, "%s\n", agg.summary(spec.name, wall).c_str());
      emit_report(report_path, agg.to_json(spec.name, jobs, wall), force,
                  prog);
      return 1;
    }

    std::fprintf(prog, "%s\n", agg.summary(spec.name, wall).c_str());

    if (fi_suite) {
      std::vector<fi::Verdict> verdicts;
      const fi::CoverageMatrix matrix =
          fi::build_matrix(*fi_suite, results, &verdicts);
      std::fprintf(prog, "\nDetection coverage (%zu faults, golden = %s)\n",
                   matrix.total, fi_suite->golden.verdict.c_str());
      std::fprintf(prog, "%s", fi::matrix_table(matrix).c_str());
      if (fork_mode)
        std::fprintf(
            prog,
            "fork: %zu snapshots; executed %llu instructions "
            "(golden %llu + tails %llu) vs %llu full-replay — %.2fx\n",
            fork_stats.snapshots,
            static_cast<unsigned long long>(fork_stats.executed()),
            static_cast<unsigned long long>(fork_stats.golden_instret),
            static_cast<unsigned long long>(fork_stats.tail_instret),
            static_cast<unsigned long long>(fork_stats.replay_instret),
            fork_stats.speedup());

      const int emit = emit_report(
          report_path, fi::matrix_json(*fi_suite, results, verdicts, jobs, wall),
          force, prog);
      if (emit == 2) return 2;

      const std::size_t crashes = matrix.verdict_total(fi::Verdict::kCrash);
      if (crashes > 0)
        std::fprintf(prog, "FAILED: %zu fault run%s crashed the VP.\n",
                     crashes, crashes == 1 ? "" : "s");
      return crashes == 0 ? 0 : 1;
    }

    const int emit = emit_report(
        report_path, agg.to_json(spec.name, jobs, wall), force, prog);
    if (emit == 2) return 2;

    if (suite == "table1") return print_table1(results, prog);
    if (!suite.empty()) return print_table2(results, table2_scale, prog);
    return agg.all_ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
