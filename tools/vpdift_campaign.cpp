// vpdift-campaign — batch-execution front end for the virtual prototype.
//
//   vpdift-campaign [options] <spec-file>
//   vpdift-campaign [options] fi:<benchmark>:<n-faults>
//   vpdift-campaign [options] --suite table1
//   vpdift-campaign [options] --suite table2[:scale]
//
//   <spec-file>     campaign spec, text or JSON (see src/campaign/spec.hpp
//                   and docs/campaign.md for the format)
//   fi:<bm>:<n>     fault-injection campaign: n seeded faults against
//                   benchmark bm, classified against a fault-free golden
//                   run (see docs/fault_injection.md)
//   --suite NAME    a built-in suite instead of a spec file: the paper's
//                   Table I attack sweep or Table II overhead matrix
//   --jobs N        worker threads (default: $VPDIFT_JOBS, else 1 = serial)
//   --seed N        master seed of the fi: fault schedule (default 1)
//   --fork          fi: campaigns only — fork mode: one golden run per
//                   worker, snapshot at each fault site, execute only the
//                   post-fault tails (bit-identical matrix, fewer retired
//                   instructions; see docs/fault_injection.md)
//   --out FILE      JSON campaign report (default: CAMPAIGN_<name>.json,
//                   or FI_<benchmark>_<n>.json for fi: campaigns)
//   --quiet         suppress the per-job progress lines
//   --list          print the parsed job list and exit without running
//
// Exit status: 0 when every job met its expectation (for --suite table1,
// additionally when all 18 rows match the paper; for fi: campaigns, when no
// fault run crashed the VP), 1 otherwise, 2 on usage or spec errors.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "campaign/aggregator.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "campaign/suites.hpp"
#include "campaign/thread_pool.hpp"
#include "fi/fork.hpp"
#include "fi/suite.hpp"

using namespace vpdift;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vpdift-campaign [--jobs N] [--seed N] [--fork] "
               "[--out FILE] [--quiet] [--list]\n"
               "                       <spec-file | fi:<benchmark>:<n-faults> "
               "| --suite table1 | --suite table2[:scale]>\n");
  return 2;
}

int print_table1(const std::vector<campaign::JobResult>& results) {
  const auto rows = campaign::suites::table1_rows(results);
  std::printf("\nTable I — buffer-overflow test-suite results\n");
  std::printf("%-4s %-14s %-26s %-10s %-10s %-10s %s\n", "Atk", "Location",
              "Target", "Technique", "Result", "Paper", "Match");
  int mismatches = 0;
  for (const auto& row : rows) {
    if (!row.match) ++mismatches;
    std::printf("%-4d %-14s %-26s %-10s %-10s %-10s %s%s\n", row.id,
                row.location, row.target, row.technique, row.result.c_str(),
                row.expected.c_str(), row.match ? "yes" : "NO",
                row.result != "N/A" && !row.exploit_works
                    ? "  [warning: exploit inert on plain VP]"
                    : "");
  }
  std::printf("\n%s: %d/18 rows match the paper's Table I.\n",
              mismatches == 0 ? "OK" : "FAILED", 18 - mismatches);
  return mismatches == 0 ? 0 : 1;
}

int print_table2(const std::vector<campaign::JobResult>& results,
                 std::uint32_t scale) {
  const auto rows = campaign::suites::table2_rows(results, scale);
  std::printf("\nTable II — performance overhead of VP-based DIFT (VP vs VP+)\n");
  std::printf("%-14s %14s | %9s %9s | %5s\n", "Benchmark", "#instr exec.",
              "VP [s]", "VP+ [s]", "Ov");
  bool all_ok = true;
  for (const auto& row : rows) {
    all_ok = all_ok && row.plain.ok && row.dift.ok;
    std::printf("%-14s %14llu | %9.2f %9.2f | %4.1fx%s\n", row.name.c_str(),
                static_cast<unsigned long long>(row.plain.run.instret),
                row.plain.run.wall_seconds, row.dift.run.wall_seconds,
                row.overhead,
                row.plain.ok && row.dift.ok ? "" : "  [SELF-CHECK FAILED]");
  }
  std::printf("%s\n", all_ok ? "OK: all self-checks passed."
                             : "FAILED: a workload self-check failed.");
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, suite, out_path;
  std::size_t jobs = campaign::ThreadPool::jobs_from_env(1);
  std::uint64_t seed = 1;
  bool quiet = false, list = false, fork_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) { usage(); std::exit(2); }
      return argv[++i];
    };
    if (arg == "--jobs") {
      std::uint64_t n = 0;
      const char* v = next();
      if (!campaign::parse_u64(v, &n) || n < 1 || n > 1024) {
        std::fprintf(stderr, "invalid value for --jobs: '%s'\n", v);
        return usage();
      }
      jobs = static_cast<std::size_t>(n);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!campaign::parse_u64(v, &seed)) {
        std::fprintf(stderr, "invalid value for --seed: '%s'\n", v);
        return usage();
      }
    } else if (arg == "--suite") suite = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--fork") fork_mode = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--list") list = true;
    else if (arg == "--help" || arg == "-h") return usage();
    else if (!arg.empty() && arg[0] == '-') return usage();
    else spec_path = arg;
  }
  if (spec_path.empty() == suite.empty()) return usage();  // exactly one

  try {
    campaign::CampaignSpec spec;
    std::uint32_t table2_scale = 1;
    fi::FiSuiteSpec fi_spec;
    std::optional<fi::FiSuite> fi_suite;
    if (!spec_path.empty() && fi::parse_fi_ref(spec_path, &fi_spec)) {
      fi_spec.seed = seed;
      std::printf("fi: golden run of %s (serial)...\n",
                  fi_spec.benchmark.c_str());
      fi_suite = fi::build_suite(fi_spec);
      std::printf(
          "fi: golden %s, %llu instructions, %llu us simulated; "
          "%zu faults from seed %llu, watchdog %u us\n",
          fi_suite->golden.verdict.c_str(),
          static_cast<unsigned long long>(fi_suite->golden.run.instret),
          static_cast<unsigned long long>(fi_suite->golden_us),
          fi_suite->faults.size(),
          static_cast<unsigned long long>(fi_spec.seed), fi_suite->wdt_us);
      spec = fi_suite->jobs;
    } else if (suite.empty()) {
      spec = campaign::CampaignSpec::load_file(spec_path);
    } else if (suite == "table1") {
      spec = campaign::suites::table1();
    } else if (suite == "table2" || suite.rfind("table2:", 0) == 0) {
      if (suite.size() > 7) {
        std::uint64_t s = 0;
        if (!campaign::parse_u64(suite.substr(7), &s) || s < 1) {
          std::fprintf(stderr, "invalid table2 scale in '%s'\n", suite.c_str());
          return 2;
        }
        table2_scale = static_cast<std::uint32_t>(s);
      }
      spec = campaign::suites::table2(table2_scale);
    } else {
      std::fprintf(stderr, "unknown suite '%s' (table1 | table2[:scale])\n",
                   suite.c_str());
      return 2;
    }
    if (fork_mode && !fi_suite) {
      std::fprintf(stderr, "--fork applies to fi:<benchmark>:<n> campaigns only\n");
      return 2;
    }

    std::printf("campaign %s: %zu jobs on %zu worker%s\n", spec.name.c_str(),
                spec.jobs.size(), jobs, jobs == 1 ? "" : "s");
    if (list) {
      for (const auto& j : spec.jobs)
        std::printf("  %-20s fw=%-12s mode=%-7s policy=%-20s max-ms=%llu%s\n",
                    j.name.c_str(), j.firmware.c_str(),
                    campaign::to_string(j.mode),
                    j.policy.empty() ? "-" : j.policy.c_str(),
                    static_cast<unsigned long long>(j.max_ms),
                    j.expect.empty() ? "" : (" expect=" + j.expect).c_str());
      return 0;
    }

    campaign::Aggregator agg;
    std::size_t done = 0;
    campaign::RunnerOptions opts;
    opts.jobs = jobs;
    opts.on_done = [&](const campaign::JobResult& r) {
      agg.add(r);
      ++done;
      if (!quiet)
        std::printf("[%zu/%zu] %-20s %-28s %s (%.2f s%s)\n", done,
                    spec.jobs.size(), r.name.c_str(), r.verdict.c_str(),
                    r.ok ? "ok" : "FAILED", r.wall_seconds,
                    r.attempts > 1
                        ? (", " + std::to_string(r.attempts) + " attempts").c_str()
                        : "");
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<campaign::JobResult> results;
    fi::ForkStats fork_stats;
    if (fork_mode) {
      results = fi::run_forked(*fi_suite, jobs, opts.on_done, &fork_stats);
    } else {
      campaign::Runner runner(opts);
      results = runner.run(spec);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("%s\n", agg.summary(spec.name, wall).c_str());

    if (fi_suite) {
      std::vector<fi::Verdict> verdicts;
      const fi::CoverageMatrix matrix =
          fi::build_matrix(*fi_suite, results, &verdicts);
      std::printf("\nDetection coverage (%zu faults, golden = %s)\n",
                  matrix.total, fi_suite->golden.verdict.c_str());
      std::printf("%s", fi::matrix_table(matrix).c_str());
      if (fork_mode)
        std::printf(
            "fork: %zu snapshots; executed %llu instructions "
            "(golden %llu + tails %llu) vs %llu full-replay — %.2fx\n",
            fork_stats.snapshots,
            static_cast<unsigned long long>(fork_stats.executed()),
            static_cast<unsigned long long>(fork_stats.golden_instret),
            static_cast<unsigned long long>(fork_stats.tail_instret),
            static_cast<unsigned long long>(fork_stats.replay_instret),
            fork_stats.speedup());

      std::string report = out_path;
      if (report.empty()) {
        report = "FI_" + fi_spec.benchmark + "_" +
                 std::to_string(fi_spec.n_faults) + ".json";
        for (char& c : report)
          if (c == ':' || c == '/') c = '-';
      }
      std::ofstream out(report);
      if (out && (out << fi::matrix_json(*fi_suite, results, verdicts, jobs,
                                         wall)))
        std::printf("wrote %s\n", report.c_str());
      else
        std::fprintf(stderr, "warning: cannot write %s\n", report.c_str());

      const std::size_t crashes =
          matrix.verdict_total(fi::Verdict::kCrash);
      if (crashes > 0)
        std::printf("FAILED: %zu fault run%s crashed the VP.\n", crashes,
                    crashes == 1 ? "" : "s");
      return crashes == 0 ? 0 : 1;
    }

    const std::string report =
        out_path.empty() ? "CAMPAIGN_" + spec.name + ".json" : out_path;
    if (agg.write_json(report, spec.name, jobs, wall))
      std::printf("wrote %s\n", report.c_str());
    else
      std::fprintf(stderr, "warning: cannot write %s\n", report.c_str());

    if (suite == "table1") return print_table1(results);
    if (!suite.empty()) return print_table2(results, table2_scale);
    return agg.all_ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
