#!/bin/sh
# Configures a separate AddressSanitizer+UBSan build tree (build-asan/) and
# runs the full tier-1 ctest suite under it. Any sanitizer report aborts the
# offending test (-fno-sanitize-recover=all), so a green run means the suite
# is clean of UB and memory errors, not just functionally passing.
#
#   tools/run_sanitized_ctest.sh [build-dir]
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-asan"}

cmake -B "$build" -S "$repo" -DVPDIFT_SANITIZE=ON
cmake --build "$build" -j "$(nproc)"
cd "$build"
ctest --output-on-failure -j "$(nproc)"
