#!/bin/sh
# Configures a separate sanitizer build tree and runs ctest under it. Any
# sanitizer report aborts the offending test (-fno-sanitize-recover=all), so
# a green run means the suite is clean, not just functionally passing.
#
#   tools/run_sanitized_ctest.sh [asan|tsan] [build-dir]
#
# asan (default): AddressSanitizer+UBSan over the full tier-1 suite in
#                 build-asan/.
# tsan:           ThreadSanitizer over the concurrency surface — the campaign
#                 subsystem (thread pool, runner, parallel VPs), the parallel
#                 fuzz harness, and the CLI front ends — in build-tsan/.
#                 TSan and ASan cannot share a process, hence the mode split.
#
# Back-compat: a first argument that is not a mode name is taken as the
# build dir of an asan run (the script's original single-argument form).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

mode=asan
case "${1:-}" in
  asan|tsan) mode=$1; shift ;;
esac

if [ "$mode" = tsan ]; then
  build=${1:-"$repo/build-tsan"}
  sanitize=thread
  # The threading tests: campaign subsystem + parallel fuzz + CLI tests that
  # exercise --jobs, plus the fork-campaign and block-engine suites so the
  # variant-dispatch/superblock paths run under TSan too (ForkCampaign and
  # BlockEngine are NOT matched by Fi[A-Z] — spell them out). The service
  # resilience suite joins the list because the worker heartbeat thread
  # shares the socketpair (and a progress counter) with the op loop.
  filter='campaign|Campaign|ParallelVp|ThreadPool|Runner\.|Aggregator|FuzzCampaign|cli\.|Fi[A-Z]|ForkCampaign|BlockEngine|ServiceResilience|WorkerHeartbeat|ClientDeadline'
else
  build=${1:-"$repo/build-asan"}
  sanitize=ON
  filter=''
fi

cmake -B "$build" -S "$repo" -DVPDIFT_SANITIZE="$sanitize"
cmake --build "$build" -j "$(nproc)"
cd "$build"
if [ -n "$filter" ]; then
  ctest --output-on-failure -j "$(nproc)" -R "$filter"
else
  ctest --output-on-failure -j "$(nproc)"
fi
